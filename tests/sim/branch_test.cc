/** @file Unit tests for the hybrid branch predictor. */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/branch.h"

namespace poat {
namespace sim {
namespace {

TEST(Branch, LearnsAlwaysTaken)
{
    BranchPredictor bp;
    int misses = 0;
    for (int i = 0; i < 100; ++i)
        misses += bp.predictAndUpdate(0x100, true);
    EXPECT_LE(misses, 3); // only warm-up mispredicts
}

TEST(Branch, LearnsAlwaysNotTaken)
{
    BranchPredictor bp;
    int late_misses = 0;
    for (int i = 0; i < 100; ++i) {
        const bool m = bp.predictAndUpdate(0x200, false);
        if (i >= 10)
            late_misses += m;
    }
    EXPECT_EQ(late_misses, 0);
}

TEST(Branch, GlobalHistoryCatchesAlternation)
{
    // T,N,T,N... is hard for bimodal but trivial for gshare.
    BranchPredictor bp;
    int late_misses = 0;
    for (int i = 0; i < 400; ++i) {
        const bool m = bp.predictAndUpdate(0x300, i % 2 == 0);
        if (i >= 200)
            late_misses += m;
    }
    EXPECT_LT(late_misses, 20);
}

TEST(Branch, RandomBranchesMispredictRoughlyHalf)
{
    BranchPredictor bp;
    Rng rng(77);
    int misses = 0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i)
        misses += bp.predictAndUpdate(0x400, rng.chance(1, 2));
    EXPECT_GT(misses, kN * 35 / 100);
    EXPECT_LT(misses, kN * 65 / 100);
}

TEST(Branch, DistinctSitesDoNotDestructivelyAlias)
{
    BranchPredictor bp;
    int late_misses = 0;
    for (int i = 0; i < 400; ++i) {
        bool m = bp.predictAndUpdate(0x500, true);
        m |= bp.predictAndUpdate(0x508, false);
        if (i >= 100)
            late_misses += m;
    }
    EXPECT_LT(late_misses, 40);
}

TEST(Branch, StatsAccumulate)
{
    BranchPredictor bp;
    for (int i = 0; i < 10; ++i)
        bp.predictAndUpdate(0x600, true);
    EXPECT_EQ(bp.branches(), 10u);
    EXPECT_LE(bp.mispredicts(), 10u);
    EXPECT_GE(bp.mispredictRate(), 0.0);
    EXPECT_LE(bp.mispredictRate(), 1.0);
}

} // namespace
} // namespace sim
} // namespace poat
