/** @file Unit tests for the POLB (both key disciplines use it). */
#include <gtest/gtest.h>

#include "sim/polb.h"

namespace poat {
namespace sim {
namespace {

TEST(Polb, MissThenHit)
{
    Polb p(4);
    EXPECT_FALSE(p.lookup(7).has_value());
    p.insert(7, 0xabc);
    auto v = p.lookup(7);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 0xabcu);
    EXPECT_EQ(p.hits(), 1u);
    EXPECT_EQ(p.misses(), 1u);
}

TEST(Polb, LruEvictionOrder)
{
    Polb p(2);
    p.insert(1, 10);
    p.insert(2, 20);
    p.lookup(1);     // 2 becomes LRU
    p.insert(3, 30); // evicts 2
    EXPECT_TRUE(p.contains(1));
    EXPECT_FALSE(p.contains(2));
    EXPECT_TRUE(p.contains(3));
}

TEST(Polb, InsertRefreshesExistingKey)
{
    Polb p(2);
    p.insert(1, 10);
    p.insert(1, 11);
    EXPECT_EQ(p.occupancy(), 1u);
    EXPECT_EQ(*p.lookup(1), 11u);
}

TEST(Polb, ZeroEntriesAlwaysMisses)
{
    Polb p(0);
    p.insert(1, 10);
    EXPECT_FALSE(p.lookup(1).has_value());
    EXPECT_EQ(p.occupancy(), 0u);
    EXPECT_EQ(p.missRate(), 1.0);
}

TEST(Polb, InvalidateIfRemovesMatching)
{
    Polb p(8);
    for (uint64_t k = 0; k < 8; ++k)
        p.insert((k << 20) | 5, k); // Parallel-style keys, pools 0..7
    p.invalidateIf([](uint64_t key) { return (key >> 20) == 3; });
    EXPECT_EQ(p.occupancy(), 7u);
    EXPECT_FALSE(p.contains((3ull << 20) | 5));
    EXPECT_TRUE(p.contains((4ull << 20) | 5));
}

TEST(Polb, CyclicSweepLargerThanCapacityAlwaysMisses)
{
    // The LL-EACH pathology from the paper: a cyclic pool sequence
    // longer than the POLB thrashes true-LRU completely.
    Polb p(32);
    for (int i = 0; i < 33; ++i)
        if (!p.lookup(i % 33))
            p.insert(i % 33, i);
    const uint64_t warm_misses = p.misses();
    for (int i = 33; i < 330; ++i)
        if (!p.lookup(i % 33))
            p.insert(i % 33, i);
    EXPECT_EQ(p.misses() - warm_misses, 297u); // every access missed
}

TEST(Polb, WorkingSetWithinCapacityOnlyColdMisses)
{
    // The RANDOM pattern with 32 pools on a 32-entry POLB: only the 32
    // warm-up misses (paper Table 8 footnote).
    Polb p(32);
    for (int i = 0; i < 10000; ++i) {
        const uint64_t key = (i * 7) % 32;
        if (!p.lookup(key))
            p.insert(key, key);
    }
    EXPECT_EQ(p.misses(), 32u);
}

} // namespace
} // namespace sim
} // namespace poat
