/** @file Integration tests: Machine as a TraceSink over both designs. */
#include <gtest/gtest.h>

#include <sstream>

#include "pmem/runtime.h"
#include "sim/machine.h"

namespace poat {
namespace sim {
namespace {

MachineConfig
inorder(PolbDesign d = PolbDesign::Pipelined)
{
    MachineConfig c;
    c.core = CoreType::InOrder;
    c.polb_design = d;
    return c;
}

TEST(Machine, CountsInstructionsAndEvents)
{
    Machine m(inorder());
    m.alu(5, 0);
    m.branch(true, 0x10, 0);
    m.load(0x1000, 0, 0);
    m.store(0x2000, 0);
    m.fence();
    const auto met = m.metrics();
    EXPECT_EQ(met.instructions, 9u);
    EXPECT_EQ(met.loads, 1u);
    EXPECT_EQ(met.stores, 1u);
    EXPECT_EQ(met.fences, 1u);
    EXPECT_GT(met.cycles, 0u);
}

TEST(Machine, TlbMissChargesPenalty)
{
    Machine hot(inorder()), cold(inorder());
    // Touch one page repeatedly vs. 128 distinct pages (TLB holds 64).
    for (int i = 0; i < 128; ++i)
        hot.load(0x1000, 0, 0);
    for (int i = 0; i < 128; ++i)
        cold.load(0x1000 + static_cast<uint64_t>(i) * kPageSize, 0, 0);
    EXPECT_GT(cold.cycles(), hot.cycles());
    EXPECT_GT(cold.metrics().tlb_misses, 100u);
}

TEST(Machine, PipelinedNvLoadHitCostsPolbLatency)
{
    Machine m(inorder());
    m.poolMapped(1, 0x100000, 1 << 20);
    m.nvLoad(ObjectID(1, 0), 0, 0); // cold: POLB miss + walk
    const uint64_t after_miss = m.cycles();
    m.nvLoad(ObjectID(1, 0), 0, 0); // hot: POLB hit, L1 hit
    // Hit: 3-cycle blocking L1 access; the pipelined POLB is hidden.
    EXPECT_EQ(m.cycles() - after_miss, 3u);
    EXPECT_EQ(m.metrics().polb_hits, 1u);
    EXPECT_EQ(m.metrics().polb_misses, 1u);
}

TEST(Machine, PipelinedNvMissChargesPotWalk)
{
    Machine m(inorder());
    m.poolMapped(1, 0x100000, 1 << 20);
    const uint64_t before = m.cycles();
    m.nvLoad(ObjectID(1, 0), 0, 0);
    // POT walk 30 + TLB miss 30 + mem 120.
    EXPECT_GE(m.cycles() - before, 30u + 30u + 120u);
    EXPECT_EQ(m.metrics().pot_walks, 1u);
}

TEST(Machine, ParallelNvHitHasNoTranslationCost)
{
    Machine m(inorder(PolbDesign::Parallel));
    m.poolMapped(1, 0x100000, 1 << 20);
    m.nvLoad(ObjectID(1, 0), 0, 0); // cold
    const uint64_t after_miss = m.cycles();
    m.nvLoad(ObjectID(1, 8), 0, 0); // same page: POLB hit
    EXPECT_EQ(m.cycles() - after_miss, 3u); // plain L1 hit only
}

TEST(Machine, ParallelTracksPagesNotPools)
{
    Machine m(inorder(PolbDesign::Parallel));
    m.poolMapped(1, 0x100000, 1 << 20);
    // Touch 3 pages of one pool: 3 POLB entries.
    m.nvLoad(ObjectID(1, 0), 0, 0);
    m.nvLoad(ObjectID(1, 4096), 0, 0);
    m.nvLoad(ObjectID(1, 8192), 0, 0);
    EXPECT_EQ(m.polb().occupancy(), 3u);
    EXPECT_EQ(m.metrics().polb_misses, 3u);

    Machine p(inorder(PolbDesign::Pipelined));
    p.poolMapped(1, 0x100000, 1 << 20);
    p.nvLoad(ObjectID(1, 0), 0, 0);
    p.nvLoad(ObjectID(1, 4096), 0, 0);
    p.nvLoad(ObjectID(1, 8192), 0, 0);
    EXPECT_EQ(p.polb().occupancy(), 1u);
    EXPECT_EQ(p.metrics().polb_misses, 1u);
}

TEST(Machine, ParallelMissCostsMoreThanPipelinedMiss)
{
    MachineConfig pc = inorder(PolbDesign::Pipelined);
    MachineConfig qc = inorder(PolbDesign::Parallel);
    Machine p(pc), q(qc);
    p.poolMapped(1, 0x100000, 1 << 20);
    q.poolMapped(1, 0x100000, 1 << 20);
    // First access misses the POLB in both; Parallel pays 60 vs 30+3
    // but skips the TLB-miss penalty, so compare pre-warmed TLB.
    p.load(0x100000, 0, 0); // warm TLB for the pool page
    const uint64_t p0 = p.cycles();
    p.nvLoad(ObjectID(1, 64), 0, 0);
    const uint64_t p_miss = p.cycles() - p0;

    q.load(0x100000, 0, 0);
    const uint64_t q0 = q.cycles();
    q.nvLoad(ObjectID(1, 64), 0, 0);
    const uint64_t q_miss = q.cycles() - q0;
    EXPECT_GT(q_miss, p_miss);
}

TEST(Machine, IdealTranslationIsFree)
{
    MachineConfig c = inorder();
    c.ideal_translation = true;
    Machine m(c);
    m.poolMapped(1, 0x100000, 1 << 20);
    m.load(0x100000, 0, 0); // warm TLB + cache line
    const uint64_t before = m.cycles();
    m.nvLoad(ObjectID(1, 0), 0, 0); // same line: pure L1 hit
    EXPECT_EQ(m.cycles() - before, 3u);
}

TEST(Machine, PoolUnmapInvalidatesTranslations)
{
    Machine m(inorder());
    m.poolMapped(1, 0x100000, 1 << 20);
    m.nvLoad(ObjectID(1, 0), 0, 0);
    EXPECT_TRUE(m.polb().contains(1));
    m.poolUnmapped(1);
    EXPECT_FALSE(m.polb().contains(1));
    EXPECT_FALSE(m.pot().walk(1).found);
}

TEST(Machine, NvClwbFlushesAndCharges)
{
    Machine m(inorder());
    m.poolMapped(1, 0x100000, 1 << 20);
    m.nvStore(ObjectID(1, 0), 0);
    const uint64_t before = m.cycles();
    m.nvClwb(ObjectID(1, 0));
    EXPECT_GE(m.cycles() - before, 100u);
    EXPECT_EQ(m.metrics().clwbs, 1u);
}

TEST(Machine, SharedCacheSeesBothRegularAndNvAccesses)
{
    // A regular store then an nv load of the same pool byte must hit in
    // the cache: both paths resolve to the same physical line.
    Machine m(inorder());
    m.poolMapped(1, 0x100000, 1 << 20);
    m.store(0x100040, 0); // vaddr of pool offset 0x40
    const uint64_t before = m.cycles();
    m.nvLoad(ObjectID(1, 0x40), 0, 0);
    // POLB miss (30) + L1 hit (3): no memory latency.
    EXPECT_LE(m.cycles() - before, 35u);
}

/** End-to-end smoke: drive a runtime-produced trace into machines of
 *  all designs and check consistency invariants. */
TEST(Machine, EndToEndWithRuntime)
{
    for (const auto design : {PolbDesign::Pipelined, PolbDesign::Parallel}) {
        for (const auto core : {CoreType::InOrder, CoreType::OutOfOrder}) {
            MachineConfig c;
            c.core = core;
            c.polb_design = design;
            Machine m(c);
            RuntimeOptions o;
            o.mode = TranslationMode::Hardware;
            PmemRuntime rt(o, &m);

            const uint32_t pool = rt.poolCreate("p", 1 << 20);
            ObjectID head = OID_NULL;
            for (int i = 0; i < 50; ++i) {
                const ObjectID n = rt.pmalloc(pool, 16);
                ObjectRef r = rt.deref(n);
                rt.write<uint64_t>(r, 0, i);
                rt.write<uint64_t>(r, 8, head.raw);
                head = n;
            }
            // Walk the list.
            uint64_t sum = 0;
            ObjectID cur = head;
            while (!cur.isNull()) {
                ObjectRef r = rt.deref(cur);
                sum += rt.read<uint64_t>(r, 0);
                cur = ObjectID(rt.read<uint64_t>(r, 8));
            }
            EXPECT_EQ(sum, 49u * 50u / 2u);
            const auto met = m.metrics();
            EXPECT_GT(met.cycles, 0u);
            EXPECT_GT(met.nv_loads, 100u);
            EXPECT_EQ(met.polb_hits + met.polb_misses,
                      met.nv_loads + met.nv_stores + met.clwbs);
        }
    }
}

TEST(Machine, SetTracerAcquiresAndDestructorReleases)
{
    EventTracer t(64);
    {
        Machine m(inorder());
        m.setTracer(&t);
        EXPECT_TRUE(t.acquired());
        // Re-attaching the same tracer to the same machine is a no-op.
        m.setTracer(&t);
        EXPECT_TRUE(t.acquired());
    }
    // ~Machine released the tracer: a later run may reuse it.
    EXPECT_FALSE(t.acquired());

    Machine m2(inorder());
    m2.setTracer(&t);
    EXPECT_TRUE(t.acquired());
    m2.setTracer(nullptr);
    EXPECT_FALSE(t.acquired());
}

TEST(MachineDeathTest, TwoMachinesSharingOneTracerPanic)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EventTracer t(64);
    Machine a(inorder());
    a.setTracer(&t);
    Machine b(inorder());
    // The ring buffer is single-producer; a second concurrent machine
    // must panic instead of silently racing (see common/trace_event.h).
    EXPECT_DEATH(b.setTracer(&t), "shared by two concurrent producers");
}

TEST(Machine, DumpStatsListsAllSubsystems)
{
    Machine m(inorder());
    m.poolMapped(1, 0x100000, 1 << 20);
    m.alu(10, 0);
    m.nvLoad(ObjectID(1, 0), 0, 0);
    m.branch(true, 0x1, 0);
    std::ostringstream os;
    m.dumpStats(os);
    const std::string s = os.str();
    for (const char *key :
         {"core.cycles", "core.instructions", "cache.l1d.misses",
          "tlb.misses", "polb.hits", "pot.walks", "branch.lookups",
          "vm.mapped_pages", "core.cpi.total", "core.cpi.pot_walk"}) {
        EXPECT_NE(s.find(key), std::string::npos) << key;
    }
    // Values are consistent with the metrics accessors.
    std::istringstream is(s);
    std::string name;
    uint64_t value;
    bool saw_cycles = false;
    while (is >> name >> value) {
        if (name == "core.cycles") {
            EXPECT_EQ(value, m.cycles());
            saw_cycles = true;
        }
    }
    EXPECT_TRUE(saw_cycles);
}

} // namespace
} // namespace sim
} // namespace poat
