/** @file Timing-model tests for the in-order and OoO cores. */
#include <gtest/gtest.h>

#include "sim/config.h"
#include "sim/core_inorder.h"
#include "sim/core_ooo.h"

namespace poat {
namespace sim {
namespace {

MachineConfig
cfg()
{
    return MachineConfig{};
}

/** Access with @p pre translation pre-stall cycles and a @p mem -cycle
 *  memory access (charged to L1D by default; the component does not
 *  affect timing). */
AccessCosts
costs(uint32_t pre, uint32_t mem)
{
    AccessCosts c;
    c.pot = pre;
    c.mem = mem;
    return c;
}

// ---------------------------------------------------------------- in-order

TEST(InOrder, AluIsOneCyclePerInstruction)
{
    InOrderCore c(cfg());
    c.alu(10, 0);
    EXPECT_EQ(c.cycles(), 10u);
    EXPECT_EQ(c.uopCount(), 10u);
}

TEST(InOrder, LoadsAreBlocking)
{
    InOrderCore c(cfg());
    c.load(costs(0, 3), 0, 0); // L1 hit: full 3-cycle blocking access
    EXPECT_EQ(c.cycles(), 3u);
}

TEST(InOrder, MissLatencyStallsFully)
{
    InOrderCore c(cfg());
    c.load(costs(0, 120), 0, 0); // memory access
    EXPECT_EQ(c.cycles(), 120u);
}

TEST(InOrder, PreStallChargesFully)
{
    InOrderCore c(cfg());
    c.load(costs(33, 3), 0, 0); // POLB residue + POT walk before an L1 hit
    EXPECT_EQ(c.cycles(), 36u);
}

TEST(InOrder, BranchMispredictCostsEightExtra)
{
    InOrderCore c(cfg());
    c.branch(false, 0);
    EXPECT_EQ(c.cycles(), 1u);
    c.branch(true, 0);
    EXPECT_EQ(c.cycles(), 10u);
}

TEST(InOrder, StoresAbsorbedByStoreBuffer)
{
    InOrderCore c(cfg());
    for (int i = 0; i < 8; ++i)
        c.store(costs(0, 120), 0);
    // 8 entries absorb 8 stores at 1 cycle each.
    EXPECT_EQ(c.cycles(), 8u);
    // The 9th store stalls until the first slot drains.
    c.store(costs(0, 120), 0);
    EXPECT_GT(c.cycles(), 100u);
}

TEST(InOrder, FenceDrainsStoreBuffer)
{
    InOrderCore c(cfg());
    c.store(costs(0, 120), 0); // drains at 1 + 120
    c.fence();
    EXPECT_GE(c.cycles(), 121u);
}

TEST(InOrder, ClwbChargesItsLatency)
{
    InOrderCore c(cfg());
    c.clwb({}, 100);
    EXPECT_EQ(c.cycles(), 100u);
}

// ---------------------------------------------------------------- OoO

TEST(Ooo, IndependentAluRunAtIssueWidth)
{
    OooCore c(cfg());
    c.alu(400, 0);
    // Width 4: ~100 cycles plus small pipeline slack.
    EXPECT_GE(c.cycles(), 100u);
    EXPECT_LE(c.cycles(), 110u);
}

TEST(Ooo, IndependentLoadsOverlap)
{
    OooCore c(cfg());
    for (int i = 0; i < 8; ++i)
        c.load(costs(0, 120), 0, 0);
    // All eight miss to memory in parallel: ~120 cycles, not ~960.
    EXPECT_LT(c.cycles(), 160u);
}

TEST(Ooo, DependentLoadsSerialize)
{
    OooCore c(cfg());
    uint64_t tag = 0;
    for (int i = 0; i < 8; ++i)
        tag = c.load(costs(0, 120), tag, 0);
    // A pointer chase: completion grows by ~120 per link.
    EXPECT_GE(c.cycles(), 8u * 120u);
}

TEST(Ooo, DepThroughSecondOperand)
{
    OooCore c(cfg());
    const uint64_t t = c.load(costs(0, 120), 0, 0);
    c.load(costs(0, 3), 0, t); // address depends on the first load
    EXPECT_GE(c.cycles(), 123u);
}

TEST(Ooo, RobLimitsMemoryLevelParallelism)
{
    // More independent misses than the ROB can hold: they can no
    // longer all overlap.
    OooCore c(cfg());
    for (int i = 0; i < 256; ++i)
        c.load(costs(0, 120), 0, 0);
    // 256 loads / min(ROB 128, LQ 48) -> several memory rounds, but far
    // fewer than fully serial execution (256 * 120).
    EXPECT_GE(c.cycles(), 2u * 120u);
    EXPECT_LT(c.cycles(), 8u * 120u);
}

TEST(Ooo, LqLimitsOutstandingLoads)
{
    MachineConfig small = cfg();
    small.lq_size = 2;
    OooCore c(small);
    for (int i = 0; i < 8; ++i)
        c.load(costs(0, 120), 0, 0);
    // Two at a time: ~4 rounds of 120.
    EXPECT_GE(c.cycles(), 4u * 120u);
}

TEST(Ooo, MispredictStallsFetch)
{
    OooCore a(cfg()), b(cfg());
    for (int i = 0; i < 50; ++i) {
        a.branch(false, 0);
        a.alu(4, 0);
        b.branch(true, 0);
        b.alu(4, 0);
    }
    EXPECT_GT(b.cycles(), a.cycles() + 50 * 8 - 50);
}

TEST(Ooo, FenceSerializes)
{
    OooCore c(cfg());
    c.clwb({}, 100);
    c.fence();
    c.alu(1, 0);
    // The ALU op dispatches only after the CLWB completed.
    EXPECT_GE(c.cycles(), 100u);
}

TEST(Ooo, PreStallExtendsLoadLatency)
{
    OooCore a(cfg()), b(cfg());
    uint64_t ta = 0, tb = 0;
    for (int i = 0; i < 10; ++i) {
        ta = a.load(costs(0, 3), ta, 0);
        tb = b.load(costs(33, 3), tb, 0); // POLB+POT in AGEN
    }
    EXPECT_GE(b.cycles(), a.cycles() + 10 * 33 - 5);
}

TEST(Ooo, CyclesAreMonotonic)
{
    OooCore c(cfg());
    uint64_t prev = 0;
    for (int i = 0; i < 1000; ++i) {
        if (i % 3 == 0)
            c.load(costs(0, i % 2 ? 120 : 3), 0, 0);
        else if (i % 7 == 0)
            c.branch(i % 2, 0);
        else
            c.alu(2, 0);
        EXPECT_GE(c.cycles(), prev);
        prev = c.cycles();
    }
}

/** Property: OoO is never slower than in-order on the same stream, and
 *  never faster than the dataflow bound would allow. */
TEST(Ooo, BoundedByInOrderAboveAndCriticalPathBelow)
{
    MachineConfig conf = cfg();
    InOrderCore io(conf);
    OooCore oo(conf);
    uint64_t tio = 0, too = 0;
    uint64_t chain_latency = 0;
    for (int i = 0; i < 500; ++i) {
        const uint32_t lat = (i % 5 == 0) ? 120 : 3;
        tio = io.load(costs(0, lat), tio, 0);
        too = oo.load(costs(0, lat), too, 0);
        chain_latency += lat;
        io.alu(3, 0);
        oo.alu(3, 0);
    }
    EXPECT_LE(oo.cycles(), io.cycles());
    EXPECT_GE(oo.cycles(), chain_latency); // serial load chain bound
}

} // namespace
} // namespace sim
} // namespace poat
