/** @file Unit tests for the page table and TLB. */
#include <gtest/gtest.h>

#include "sim/vm.h"

namespace poat {
namespace sim {
namespace {

TEST(PageTable, SamePageSameFrame)
{
    PageTable pt;
    const uint64_t pa1 = pt.translate(0x7000'0000'0123ull);
    const uint64_t pa2 = pt.translate(0x7000'0000'0456ull);
    EXPECT_EQ(pa1 / kPageSize, pa2 / kPageSize);
    EXPECT_EQ(pa1 % kPageSize, 0x123u);
    EXPECT_EQ(pa2 % kPageSize, 0x456u);
}

TEST(PageTable, DistinctPagesDistinctFrames)
{
    PageTable pt;
    const uint64_t a = pt.translate(0x1000);
    const uint64_t b = pt.translate(0x2000);
    EXPECT_NE(a / kPageSize, b / kPageSize);
    EXPECT_EQ(pt.mappedPages(), 2u);
}

TEST(PageTable, FrameZeroIsNeverUsed)
{
    PageTable pt;
    EXPECT_NE(pt.translate(0x0) / kPageSize, 0u);
}

TEST(PageTable, FrameOfMatchesTranslate)
{
    PageTable pt;
    const uint64_t va = 0x5555'0000ull + 123;
    EXPECT_EQ(pt.frameOf(va), pt.translate(va) / kPageSize);
}

TEST(Tlb, HitAfterFill)
{
    Tlb tlb(4);
    EXPECT_FALSE(tlb.access(0x1000));
    EXPECT_TRUE(tlb.access(0x1fff)); // same page
    EXPECT_FALSE(tlb.access(0x2000));
}

TEST(Tlb, LruEviction)
{
    Tlb tlb(2);
    tlb.access(0x1000);
    tlb.access(0x2000);
    tlb.access(0x1000);  // page 1 is MRU
    tlb.access(0x3000);  // evicts page 2
    EXPECT_TRUE(tlb.access(0x1000));
    EXPECT_FALSE(tlb.access(0x2000));
}

TEST(Tlb, MissRateOnCyclicSweep)
{
    Tlb tlb(4);
    // 5 pages cycled through a 4-entry LRU TLB: every access misses.
    for (int i = 0; i < 50; ++i)
        tlb.access(static_cast<uint64_t>(i % 5) * kPageSize);
    EXPECT_DOUBLE_EQ(tlb.missRate(), 1.0);
}

TEST(Tlb, ResetClears)
{
    Tlb tlb(4);
    tlb.access(0x1000);
    tlb.reset();
    EXPECT_FALSE(tlb.access(0x1000));
}

} // namespace
} // namespace sim
} // namespace poat
