/**
 * @file
 * The CPI-stack accounting invariant, end to end: for every workload,
 * both translation modes, and both core models, the per-component
 * cycle charges must sum *exactly* to the run's total cycles — no
 * unattributed and no double-counted cycles. Software-translation runs
 * must charge the sw_translate component (the paper's Table 2 software
 * overhead) and never the hardware POLB/POT components; hardware runs
 * the reverse.
 */
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "driver/experiment.h"

namespace poat {
namespace driver {
namespace {

class CpiInvariant
    : public testing::TestWithParam<std::tuple<std::string, bool, bool>>
{
};

TEST_P(CpiInvariant, ComponentsSumExactlyToTotalCycles)
{
    const auto &[wl, hw, ooo] = GetParam();

    ExperimentConfig cfg;
    cfg.workload = wl;
    cfg.pattern = workloads::PoolPattern::Random;
    cfg.scale_pct = 5;
    cfg.tpcc_scale_pct = 1;
    cfg.tpcc_txns = 25;
    cfg.mode =
        hw ? TranslationMode::Hardware : TranslationMode::Software;
    cfg.machine.core =
        ooo ? sim::CoreType::OutOfOrder : sim::CoreType::InOrder;

    const ExperimentResult res = runExperiment(cfg);
    ASSERT_GT(res.metrics.cycles, 0u);

    // The invariant (also enforced by POAT_ASSERT in Machine): every
    // cycle is charged to exactly one component.
    uint64_t sum = 0;
    for (size_t i = 0; i < kCpiComponents; ++i)
        sum += res.cpi[static_cast<CpiComponent>(i)];
    EXPECT_EQ(sum, res.metrics.cycles);
    EXPECT_EQ(res.cpi.total(), res.metrics.cycles);

    // Translation overhead lands on the mode's own components.
    if (hw) {
        EXPECT_EQ(res.cpi[CpiComponent::SwTranslate], 0u);
        EXPECT_GT(res.cpi[CpiComponent::Polb] +
                      res.cpi[CpiComponent::PotWalk],
                  0u);
    } else {
        EXPECT_GT(res.cpi[CpiComponent::SwTranslate], 0u);
        EXPECT_EQ(res.cpi[CpiComponent::Polb], 0u);
        EXPECT_EQ(res.cpi[CpiComponent::PotWalk], 0u);
    }
    EXPECT_GT(res.cpi[CpiComponent::Base], 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsModesCores, CpiInvariant,
    testing::Combine(testing::Values("LL", "BST", "SPS", "RBT", "BT",
                                     "B+T", "TPCC"),
                     testing::Bool(), testing::Bool()),
    [](const testing::TestParamInfo<CpiInvariant::ParamType> &info) {
        std::string name = std::get<0>(info.param);
        for (char &c : name)
            if (c == '+')
                c = 'p';
        name += std::get<1>(info.param) ? "_Hardware" : "_Software";
        name += std::get<2>(info.param) ? "_Ooo" : "_InOrder";
        return name;
    });

} // namespace
} // namespace driver
} // namespace poat
