/** @file Unit tests for the POT hash table and hardware walk. */
#include <gtest/gtest.h>

#include "sim/pot.h"

namespace poat {
namespace sim {
namespace {

TEST(Pot, WalkFindsInsertedPool)
{
    Pot pot(1024);
    pot.insert(42, 0xdead000);
    const PotWalk w = pot.walk(42);
    EXPECT_TRUE(w.found);
    EXPECT_EQ(w.base, 0xdead000u);
    EXPECT_GE(w.probes, 1u);
}

TEST(Pot, WalkOfUnknownPoolFails)
{
    Pot pot(1024);
    pot.insert(42, 1);
    EXPECT_FALSE(pot.walk(43).found);
}

TEST(Pot, LinearProbingResolvesCollisions)
{
    Pot pot(16); // small table to force collisions
    for (uint32_t id = 1; id <= 12; ++id)
        pot.insert(id, id * 100);
    for (uint32_t id = 1; id <= 12; ++id) {
        const PotWalk w = pot.walk(id);
        ASSERT_TRUE(w.found) << "pool " << id;
        EXPECT_EQ(w.base, id * 100u);
    }
    EXPECT_GE(pot.avgProbes(), 1.0);
}

TEST(Pot, RemoveLeavesChainsWalkable)
{
    Pot pot(16);
    for (uint32_t id = 1; id <= 12; ++id)
        pot.insert(id, id * 100);
    pot.remove(5);
    EXPECT_FALSE(pot.walk(5).found);
    // Pools whose probe chains pass through the tombstone still work.
    for (uint32_t id = 1; id <= 12; ++id) {
        if (id == 5)
            continue;
        EXPECT_TRUE(pot.walk(id).found) << "pool " << id;
    }
    EXPECT_EQ(pot.liveEntries(), 11u);
}

TEST(Pot, ReinsertAfterRemoveReusesTombstone)
{
    Pot pot(16);
    for (uint32_t id = 1; id <= 8; ++id)
        pot.insert(id, id);
    pot.remove(3);
    pot.insert(3, 333);
    EXPECT_EQ(pot.walk(3).base, 333u);
    EXPECT_EQ(pot.liveEntries(), 8u);
}

TEST(Pot, InsertRefreshesExisting)
{
    Pot pot(16);
    pot.insert(7, 1);
    pot.insert(7, 2);
    EXPECT_EQ(pot.liveEntries(), 1u);
    EXPECT_EQ(pot.walk(7).base, 2u);
}

TEST(Pot, PaperSizeHoldsManyPools)
{
    Pot pot(16384); // 256 KB as in the paper
    for (uint32_t id = 1; id <= 1024; ++id)
        pot.insert(id, id * 4096);
    for (uint32_t id = 1; id <= 1024; ++id)
        EXPECT_TRUE(pot.walk(id).found);
    // Load factor 1/16: probe chains stay short.
    EXPECT_LT(pot.avgProbes(), 2.0);
}

} // namespace
} // namespace sim
} // namespace poat
