/** @file Unit and property tests for the cache model. */
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "sim/cache.h"

namespace poat {
namespace sim {
namespace {

CacheConfig
tiny()
{
    return CacheConfig{1024, 2, 3}; // 8 sets x 2 ways x 64 B
}

TEST(Cache, FirstAccessMissesSecondHits)
{
    Cache c("t", tiny());
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x103f, false)); // same 64 B line
    EXPECT_FALSE(c.access(0x1040, false)); // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEvictsLeastRecentlyUsedWay)
{
    Cache c("t", tiny());
    // Three lines mapping to the same set of a 2-way cache:
    // set stride = 8 sets * 64 B = 512 B.
    c.access(0x0000, false);
    c.access(0x0200, false);
    c.access(0x0000, false); // touch A so B is LRU
    c.access(0x0400, false); // evicts B
    EXPECT_TRUE(c.contains(0x0000));
    EXPECT_FALSE(c.contains(0x0200));
    EXPECT_TRUE(c.contains(0x0400));
}

TEST(Cache, DirtyEvictionCountsWriteback)
{
    Cache c("t", tiny());
    c.access(0x0000, true); // dirty
    c.access(0x0200, false);
    c.access(0x0400, false); // evicts dirty 0x0000
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, FlushLineCleansButKeepsResident)
{
    Cache c("t", tiny());
    c.access(0x0000, true);
    EXPECT_TRUE(c.flushLine(0x0000));
    EXPECT_TRUE(c.contains(0x0000));
    EXPECT_FALSE(c.flushLine(0x0000)); // already clean
    // A clean eviction must not count a writeback again.
    const uint64_t wb = c.writebacks();
    c.access(0x0200, false);
    c.access(0x0400, false);
    EXPECT_EQ(c.writebacks(), wb);
}

TEST(Cache, ResetEmptiesEverything)
{
    Cache c("t", tiny());
    c.access(0x0000, true);
    c.reset();
    EXPECT_FALSE(c.contains(0x0000));
    EXPECT_FALSE(c.access(0x0000, false));
}

TEST(Cache, WorkingSetSmallerThanCacheEventuallyAllHits)
{
    Cache c("t", tiny()); // 16 lines
    for (int round = 0; round < 3; ++round)
        for (uint64_t line = 0; line < 16; ++line)
            c.access(line * 64, false);
    // Rounds 2 and 3 hit entirely.
    EXPECT_EQ(c.misses(), 16u);
    EXPECT_EQ(c.hits(), 32u);
}

TEST(Cache, WorkingSetLargerThanWayCountThrashesOneSet)
{
    Cache c("t", tiny());
    // Cyclic sweep over 3 lines in one 2-way set: LRU always evicts the
    // line that is needed next, so every access misses.
    for (int i = 0; i < 30; ++i)
        c.access((i % 3) * 0x200, false);
    EXPECT_EQ(c.hits(), 0u);
}

TEST(Hierarchy, LatenciesMatchLevelOfHit)
{
    MachineConfig cfg;
    CacheHierarchy h(cfg);
    // Cold: full miss -> memory latency.
    EXPECT_EQ(h.access(0x10000, false), cfg.mem_latency);
    // Hot: L1 hit.
    EXPECT_EQ(h.access(0x10000, false), cfg.l1d.latency);
}

TEST(Hierarchy, L2CatchesL1Evictions)
{
    MachineConfig cfg;
    CacheHierarchy h(cfg);
    h.access(0x0, false);
    // Blow L1 (32 KB, 8-way, 64 sets): 9 lines in set 0 evict line 0
    // from L1 but it stays in L2.
    const uint64_t set_stride = 64 * 64; // sets * line
    for (uint64_t i = 1; i <= 8; ++i)
        h.access(i * set_stride, false);
    EXPECT_EQ(h.access(0x0, false), cfg.l2.latency);
}

TEST(Hierarchy, FlushLineReachesAllLevels)
{
    MachineConfig cfg;
    CacheHierarchy h(cfg);
    h.access(0x40, true);
    h.flushLine(0x40);
    // The line is still resident: next access is an L1 hit.
    EXPECT_EQ(h.access(0x40, false), cfg.l1d.latency);
}

/** Property: hit/miss sequence matches a reference fully-mapped model
 *  for a direct-mapped configuration (assoc 1 makes LRU trivial). */
TEST(Cache, DirectMappedMatchesReferenceModel)
{
    CacheConfig cfg{4096, 1, 3}; // 64 sets
    Cache c("dm", cfg);
    std::vector<uint64_t> ref(64, ~0ull); // set -> resident line addr
    Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        const uint64_t line = rng.below(512);
        const uint64_t addr = line * 64;
        const uint32_t set = line % 64;
        const bool expect_hit = (ref[set] == line);
        EXPECT_EQ(c.access(addr, false), expect_hit) << "access " << i;
        ref[set] = line;
    }
}

} // namespace
} // namespace sim
} // namespace poat
