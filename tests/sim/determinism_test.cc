/**
 * @file
 * Cross-cutting determinism and invariance tests: the properties every
 * experiment in EXPERIMENTS.md silently depends on.
 */
#include <gtest/gtest.h>

#include "driver/experiment.h"

namespace poat {
namespace driver {
namespace {

ExperimentConfig
cfg(const std::string &wl, sim::CoreType core, TranslationMode mode)
{
    ExperimentConfig c;
    c.workload = wl;
    c.pattern = workloads::PoolPattern::Random;
    c.scale_pct = 10;
    c.mode = mode;
    c.machine.core = core;
    return c;
}

TEST(Determinism, IdenticalRunsProduceIdenticalCycles)
{
    for (const auto mode :
         {TranslationMode::Software, TranslationMode::Hardware}) {
        const auto a =
            runExperiment(cfg("BST", sim::CoreType::InOrder, mode));
        const auto b =
            runExperiment(cfg("BST", sim::CoreType::InOrder, mode));
        EXPECT_EQ(a.metrics.cycles, b.metrics.cycles);
        EXPECT_EQ(a.metrics.instructions, b.metrics.instructions);
        EXPECT_EQ(a.metrics.polb_misses, b.metrics.polb_misses);
        EXPECT_EQ(a.workload_checksum, b.workload_checksum);
    }
}

TEST(Determinism, CoreModelDoesNotChangeTheInstructionStream)
{
    // The in-order and OoO machines consume the same trace: identical
    // dynamic instruction and event counts, different cycles.
    for (const auto &wl : workloads::microbenchNames()) {
        const auto io = runExperiment(
            cfg(wl, sim::CoreType::InOrder, TranslationMode::Hardware));
        const auto oo = runExperiment(cfg(
            wl, sim::CoreType::OutOfOrder, TranslationMode::Hardware));
        EXPECT_EQ(io.metrics.instructions, oo.metrics.instructions) << wl;
        EXPECT_EQ(io.metrics.nv_loads, oo.metrics.nv_loads) << wl;
        EXPECT_EQ(io.metrics.clwbs, oo.metrics.clwbs) << wl;
        EXPECT_NE(io.metrics.cycles, oo.metrics.cycles) << wl;
        EXPECT_EQ(io.workload_checksum, oo.workload_checksum) << wl;
    }
}

TEST(Determinism, PolbDesignDoesNotChangeTheInstructionStream)
{
    // Pipelined vs Parallel differ only in translation *timing*.
    auto pipe = cfg("B+T", sim::CoreType::InOrder,
                    TranslationMode::Hardware);
    auto par = pipe;
    par.machine.polb_design = sim::PolbDesign::Parallel;
    const auto a = runExperiment(pipe);
    const auto b = runExperiment(par);
    EXPECT_EQ(a.metrics.instructions, b.metrics.instructions);
    EXPECT_EQ(a.workload_checksum, b.workload_checksum);
}

TEST(Determinism, SeedChangesWorkButNotValidity)
{
    ExperimentConfig a =
        cfg("LL", sim::CoreType::InOrder, TranslationMode::Software);
    ExperimentConfig b = a;
    b.seed = a.seed + 1;
    const auto ra = runExperiment(a);
    const auto rb = runExperiment(b);
    EXPECT_NE(ra.workload_checksum, rb.workload_checksum);
    EXPECT_EQ(ra.workload_operations, rb.workload_operations);
}

TEST(Determinism, IdealNeverChangesInstructionsOnlyCycles)
{
    auto base = cfg("RBT", sim::CoreType::InOrder,
                    TranslationMode::Hardware);
    auto ideal = base;
    ideal.machine.ideal_translation = true;
    const auto r = runExperiment(base);
    const auto ri = runExperiment(ideal);
    EXPECT_EQ(r.metrics.instructions, ri.metrics.instructions);
    EXPECT_LE(ri.metrics.cycles, r.metrics.cycles);
}

} // namespace
} // namespace driver
} // namespace poat
