/** @file Tests for the microarchitectural extensions: CPI stack,
 *  set-associative POLB, replacement policies, memory-backed POT walk. */
#include <gtest/gtest.h>

#include "pmem/runtime.h"
#include "sim/machine.h"

namespace poat {
namespace sim {
namespace {

// ------------------------------------------------------------ CPI stack

/** Hardware-translation cycles of the stack (no sw path involved). */
uint64_t
hwTranslateCycles(const CpiStack &c)
{
    return c[CpiComponent::Polb] + c[CpiComponent::PotWalk] +
        c[CpiComponent::Tlb];
}

TEST(CpiStack, ComponentsSumToTotalCycles)
{
    MachineConfig cfg;
    Machine m(cfg);
    m.poolMapped(1, 0x100000, 1 << 20);
    m.alu(100, 0);
    for (int i = 0; i < 20; ++i) {
        m.load(0x1000 + 64 * i, 0, 0);
        m.load(0x1000 + 64 * i, 0, 0); // warm re-access: L1 hit
        m.nvLoad(ObjectID(1, 64u * i), 0, 0);
        m.branch(i % 2, 0x99, 0);
    }
    m.store(0x2000, 0);
    m.clwb(0x2000);
    m.fence();
    const CpiStack &c = m.cpi();
    EXPECT_EQ(c.total(), m.cycles());
    EXPECT_GT(c[CpiComponent::Base], 0u);
    EXPECT_GT(c[CpiComponent::L1D], 0u);
    EXPECT_GT(hwTranslateCycles(c), 0u); // POT walk + TLB misses
    EXPECT_GT(c[CpiComponent::Flush], 0u);
}

TEST(CpiStack, TranslationShareShrinksUnderIdealHardware)
{
    // Ideal translation yields zero translation cycles.
    MachineConfig ideal_cfg;
    ideal_cfg.ideal_translation = true;
    Machine ideal(ideal_cfg);
    ideal.poolMapped(1, 0x100000, 1 << 20);
    ideal.load(0x100000, 0, 0); // charges its own cold TLB miss
    const uint64_t pre_nv = hwTranslateCycles(ideal.cpi());
    ideal.nvLoad(ObjectID(1, 0), 0, 0);
    // Ideal hardware translation adds no translation cycles at all.
    EXPECT_EQ(hwTranslateCycles(ideal.cpi()), pre_nv);
}

TEST(CpiStack, MemoryAccessesChargeTheServicingLevel)
{
    MachineConfig cfg;
    Machine m(cfg);
    // A cold load misses every level: the full latency lands on mem.
    m.load(0x1000, 0, 0);
    const CpiStack &c = m.cpi();
    EXPECT_GT(c[CpiComponent::Mem], 0u);
    EXPECT_EQ(c[CpiComponent::L1D], 0u);
    const uint64_t mem_before = c[CpiComponent::Mem];
    // A re-access of the same line hits the (warm) L1.
    m.load(0x1000, 0, 0);
    EXPECT_GT(c[CpiComponent::L1D], 0u);
    EXPECT_EQ(c[CpiComponent::Mem], mem_before);
    EXPECT_EQ(c.total(), m.cycles());
}

// ------------------------------------------------- set-associative POLB

TEST(PolbOrg, DirectMappedConflictsWhereFullyAssocDoesNot)
{
    // Two keys that collide in a 1-way, 4-set POLB still coexist in the
    // fully associative one.
    Polb full(4, 0);
    Polb direct(4, 1);
    // Find two keys mapping to the same direct-mapped set.
    uint64_t k1 = 1, k2 = 0;
    auto set_of = [](uint64_t key) {
        return ((key * 0x9e3779b97f4a7c15ull) >> 32) % 4;
    };
    for (uint64_t k = 2; k < 100; ++k) {
        if (set_of(k) == set_of(k1)) {
            k2 = k;
            break;
        }
    }
    ASSERT_NE(k2, 0u);
    for (Polb *p : {&full, &direct}) {
        p->insert(k1, 10);
        p->insert(k2, 20);
    }
    EXPECT_TRUE(full.contains(k1));
    EXPECT_TRUE(full.contains(k2));
    EXPECT_FALSE(direct.contains(k1)); // evicted by the conflict
    EXPECT_TRUE(direct.contains(k2));
}

TEST(PolbOrg, AssocMustDivideEntries)
{
    Polb p(32, 8); // 4 sets x 8 ways: fine
    EXPECT_EQ(p.associativity(), 8u);
    EXPECT_EQ(p.capacity(), 32u);
}

TEST(PolbOrg, FifoDoesNotPromoteOnHit)
{
    // LRU keeps a re-referenced key; FIFO evicts by insertion order
    // regardless of hits.
    Polb lru(2, 0, PolbReplacement::Lru);
    Polb fifo(2, 0, PolbReplacement::Fifo);
    for (Polb *p : {&lru, &fifo}) {
        p->insert(1, 10);
        p->insert(2, 20);
        p->lookup(1); // touch key 1
        p->insert(3, 30);
    }
    EXPECT_TRUE(lru.contains(1));
    EXPECT_FALSE(lru.contains(2));
    EXPECT_FALSE(fifo.contains(1)); // oldest regardless of the hit
    EXPECT_TRUE(fifo.contains(2));
}

TEST(PolbOrg, RandomReplacementStaysWithinSet)
{
    Polb p(4, 0, PolbReplacement::Random);
    for (uint64_t k = 1; k <= 40; ++k)
        p.insert(k, k);
    EXPECT_EQ(p.occupancy(), 4u);
}

TEST(PolbOrg, LowerAssociativityRaisesMissRate)
{
    // A cyclic working set equal to capacity: fully associative LRU
    // holds it perfectly; direct-mapped conflicts.
    Polb full(16, 0);
    Polb direct(16, 1);
    for (int round = 0; round < 50; ++round) {
        for (uint64_t k = 1; k <= 16; ++k) {
            for (Polb *p : {&full, &direct}) {
                if (!p->lookup(k))
                    p->insert(k, k);
            }
        }
    }
    EXPECT_LT(full.missRate(), direct.missRate());
    EXPECT_EQ(full.misses(), 16u); // warm-up only
}

// ------------------------------------------------- memory-backed POT walk

TEST(PotMemoryWalk, HotWalksAreCheaperThanFixedCharge)
{
    // With the POT slot cached, a walk costs an L1 hit + logic, far
    // below the fixed 30-cycle charge; repeated misses to the same
    // pool (POLB size 0 forces a walk per access) show it.
    MachineConfig fixed;
    fixed.polb_entries = 0;
    MachineConfig memory = fixed;
    memory.pot_walk_in_memory = true;

    Machine mf(fixed), mm(memory);
    for (Machine *m : {&mf, &mm}) {
        m->poolMapped(1, 0x100000, 1 << 20);
        m->load(0x100000, 0, 0); // warm TLB
        for (int i = 0; i < 50; ++i)
            m->nvLoad(ObjectID(1, 0), 0, 0);
    }
    EXPECT_LT(mm.cycles(), mf.cycles());
}

TEST(PotMemoryWalk, ColdWalkCostsAMemoryAccess)
{
    MachineConfig cfg;
    cfg.polb_entries = 0;
    cfg.pot_walk_in_memory = true;
    Machine m(cfg);
    m.poolMapped(1, 0x100000, 1 << 20);
    m.load(0x100000, 0, 0); // warm TLB + data line
    const uint64_t before = m.cycles();
    m.nvLoad(ObjectID(1, 0), 0, 0);
    // Cold POT slot: full memory latency plus logic plus the L1 data
    // hit.
    EXPECT_GE(m.cycles() - before, 120u);
}

TEST(PotMemoryWalk, ParallelStillPaysThePageWalk)
{
    MachineConfig cfg;
    cfg.polb_entries = 0;
    cfg.pot_walk_in_memory = true;
    cfg.polb_design = PolbDesign::Parallel;
    Machine m(cfg);
    m.poolMapped(1, 0x100000, 1 << 20);
    // Warm the POT slot.
    m.nvLoad(ObjectID(1, 0), 0, 0);
    const uint64_t before = m.cycles();
    m.nvLoad(ObjectID(1, 0), 0, 0);
    // Hot walk: L1 hit (3) + logic (2) + page walk (30) + data (3).
    EXPECT_GE(m.cycles() - before, 35u);
    EXPECT_LE(m.cycles() - before, 45u);
}

TEST(PotMemoryWalk, EndToEndRunsMatchFixedModeResults)
{
    // Timing differs but simulated program behavior must not.
    RuntimeOptions ro;
    ro.mode = TranslationMode::Hardware;
    auto run = [&](bool memory_walk) {
        MachineConfig cfg;
        cfg.pot_walk_in_memory = memory_walk;
        Machine m(cfg);
        PmemRuntime rt(ro, &m);
        const uint32_t pool = rt.poolCreate("p", 1 << 20);
        uint64_t sum = 0;
        for (int i = 0; i < 100; ++i) {
            const ObjectID o = rt.pmalloc(pool, 32);
            rt.write<uint64_t>(rt.deref(o), 0, i);
            sum += rt.read<uint64_t>(rt.deref(o), 0);
        }
        return sum;
    };
    EXPECT_EQ(run(false), run(true));
}

} // namespace
} // namespace sim
} // namespace poat
