#!/usr/bin/env python3
"""Bench smoke test: bench binaries through the parallel sweep.

Runs fig9a at tiny scale with --jobs=2 --stats-json and validates the
report: the JSON parses, there is exactly one run record per submitted
config (6 microbenchmarks x 3 patterns x 4 variants = 72), labels are
unique and in submission order (base before opt for every workload x
pattern group), every record carries its config and hierarchical stats,
and the summary block holds the headline geomeans. A second pass with
--cpi-stack --seeds=42,43 validates the CPI stacks (components sum
exactly to each run's cycles, both in the printed tables and in every
recorded run's core.cpi stats) and the multi-seed error bars (one
error_bars record per config with mean/stddev for every headline
metric).

When a fig11 binary is also given, exercises --trace-cache end to end:
a cached --quick run must emit a stats report byte-for-byte identical
to the uncached one, populate the cache directory with .itrace files on
the first (capturing) pass, and reuse them untouched on the second
(replaying) pass.

When a crash_explore binary is also given, runs a tiny exhaustive
crash-point exploration (must pass and print coverage), replays a
reproducer string, and checks the strict CLI: --help exits 0, an
unknown flag is rejected with exit status 2.

When a timeline_dump binary is also given, exercises --timeline=N end
to end: the stats report stays byte-identical to a timeline-off run,
every run emits a parseable poat-timeline stream whose row count is
exactly ceil(cycles / N), per-row CPI component deltas sum to the row's
cycle delta, and the --chrome conversion yields loadable JSON of
"ph":"C" counter events.

When fig_cores and contention_report binaries are also given, checks
the concurrency-observability surface: --contention prints per-run
lock/abort/critical-path reports, the lock.*/sched.*/cp.* subtrees in
the saved stats satisfy their invariants (critical path bounded by the
makespan; running + blocked cycles tile it per core), the
contention_report tool renders text and JSON from the saved report
(strict CLI: unknown flag exits 2, unreadable input exits 1), a
sequential bench accepts --contention with a "no multi-core runs"
note, and a --timeline-cores run leaves the stats report
byte-identical.

Usage: bench_smoke.py <fig9a_speedup_inorder> [<fig11_polb_size>
       [<crash_explore> [<timeline_dump> [<fig_cores>
       [<contention_report>]]]]]
"""

import json
import subprocess
import sys
import tempfile
import os


def fail(msg):
    print("FAIL:", msg)
    sys.exit(1)


def run_bench(cmd, timeout=1200):
    proc = subprocess.run(
        cmd, capture_output=True, text=True, timeout=timeout
    )
    if proc.returncode != 0:
        fail(
            "%s exited %d\nstdout:\n%s\nstderr:\n%s"
            % (cmd[0], proc.returncode, proc.stdout, proc.stderr)
        )
    return proc


CPI_COMPONENTS = [
    "base", "branch", "iside", "l1d", "l2", "l3", "mem", "tlb",
    "sw_translate", "polb", "pot_walk", "flush", "fence",
]


def check_cpi_and_seeds(bench):
    """--cpi-stack prints per-run stacks; --seeds emits error bars."""
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "seeds.json")
        proc = run_bench(
            [
                bench,
                "--scale=5",
                "--no-tpcc",
                "--jobs=2",
                "--cpi-stack",
                "--seeds=42,43",
                "--stats-json=" + out,
            ]
        )
        with open(out) as f:
            report = json.load(f)

    if "CPI stack:" not in proc.stdout:
        fail("--cpi-stack printed no stacks")
    for needle in ("sw_translate", "total", "error bars over 2 seeds"):
        if needle not in proc.stdout:
            fail("--cpi-stack/--seeds output missing %r" % needle)

    bars = report.get("error_bars")
    n_configs = 6 * 3 * 4
    if not isinstance(bars, list) or len(bars) != n_configs:
        fail(
            "expected %d error_bars, got %s"
            % (n_configs, len(bars) if isinstance(bars, list) else bars)
        )
    for b in bars:
        if b.get("samples") != 2:
            fail("error bar %r has samples != 2" % b.get("label"))
        for metric in ("cycles", "instructions", "ipc"):
            m = b.get(metric)
            if (
                not isinstance(m, dict)
                or not isinstance(m.get("mean"), (int, float))
                or not isinstance(m.get("stddev"), (int, float))
            ):
                fail(
                    "error bar %r metric %r malformed: %r"
                    % (b.get("label"), metric, m)
                )

    # Every recorded run carries a CPI stack whose components sum
    # exactly to the run's total cycles.
    for r in report["runs"]:
        cpi = r["stats"].get("core", {}).get("cpi")
        if not isinstance(cpi, dict):
            fail("run %r has no core.cpi stack" % r["label"])
        total = cpi.get("total")
        summed = sum(cpi.get(c, 0) for c in CPI_COMPONENTS)
        if total != summed or total != r["cycles"]:
            fail(
                "run %r CPI stack does not sum: total=%r sum=%r "
                "cycles=%r" % (r["label"], total, summed, r["cycles"])
            )
    print(
        "OK: CPI stacks sum exactly on %d runs, %d error bars over 2 "
        "seeds" % (len(report["runs"]), len(bars))
    )


def check_trace_cache(bench):
    """fig11 --quick with --trace-cache: identical report, cache reused."""
    with tempfile.TemporaryDirectory() as tmp:
        cache = os.path.join(tmp, "itrace-cache")
        plain = os.path.join(tmp, "plain.json")
        cold = os.path.join(tmp, "cold.json")
        warm = os.path.join(tmp, "warm.json")
        base = [bench, "--quick", "--jobs=2"]

        run_bench(base + ["--stats-json=" + plain])
        run_bench(base + ["--stats-json=" + cold, "--trace-cache=" + cache])

        with open(plain, "rb") as f:
            plain_bytes = f.read()
        with open(cold, "rb") as f:
            cold_bytes = f.read()
        if plain_bytes != cold_bytes:
            fail("cold --trace-cache stats report differs from uncached")

        traces = sorted(
            f for f in os.listdir(cache) if f.endswith(".itrace")
        )
        # fig11 --quick: 6 workloads x (base, opt, opt_ntx) fingerprints.
        if len(traces) != 18:
            fail("expected 18 cached traces, found %d: %s"
                 % (len(traces), traces))
        stamps = {
            f: os.stat(os.path.join(cache, f)).st_mtime_ns
            for f in traces
        }

        run_bench(base + ["--stats-json=" + warm, "--trace-cache=" + cache])
        with open(warm, "rb") as f:
            warm_bytes = f.read()
        if plain_bytes != warm_bytes:
            fail("warm --trace-cache stats report differs from uncached")
        for f in traces:
            if os.stat(os.path.join(cache, f)).st_mtime_ns != stamps[f]:
                fail("cached trace %s was rewritten on the warm run" % f)
        leftovers = sorted(
            f for f in os.listdir(cache) if not f.endswith(".itrace")
        )
        if leftovers:
            fail("stray files in cache dir: %s" % leftovers)
        print(
            "OK: trace cache byte-identical (cold+warm), %d traces reused"
            % len(traces)
        )


def check_timeline(bench, dump_tool):
    """--timeline=N: report unchanged, streams parse, rows counted."""
    interval = 50000
    with tempfile.TemporaryDirectory() as tmp:
        off = os.path.join(tmp, "off.json")
        on = os.path.join(tmp, "on.json")
        tldir = os.path.join(tmp, "timelines")
        base = [bench, "--scale=5", "--no-tpcc", "--jobs=2"]

        run_bench(base + ["--stats-json=" + off])
        run_bench(
            base
            + [
                "--stats-json=" + on,
                "--timeline=%d" % interval,
                "--timeline-dir=" + tldir,
            ]
        )
        with open(off, "rb") as f:
            off_bytes = f.read()
        with open(on, "rb") as f:
            on_bytes = f.read()
        if off_bytes != on_bytes:
            fail("--timeline changed the stats report")
        with open(on) as f:
            report = json.load(f)

        # One parseable stream per run, with exactly ceil(cycles/N)
        # rows each (a zero-cycle run would still get one finish row).
        for r in report["runs"]:
            path = os.path.join(tldir, r["label"] + ".poattl")
            if not os.path.exists(path):
                fail("run %r emitted no timeline" % r["label"])
            proc = run_bench([dump_tool, "--json", path])
            tl = json.loads(proc.stdout)
            want = max(1, -(-r["cycles"] // interval))
            got = len(tl["samples"])
            if got != want:
                fail(
                    "run %r: %d timeline rows, want ceil(%d/%d)=%d"
                    % (r["label"], got, r["cycles"], interval, want)
                )

        # Deep-check one stream: CPI component deltas sum to the cycle
        # delta row by row, and the rows tile the whole run.
        label = report["runs"][0]["label"]
        path = os.path.join(tldir, label + ".poattl")
        proc = run_bench([dump_tool, "--json", path])
        tl = json.loads(proc.stdout)
        names = tl["counters"]
        cyc_at = names.index("core.cycles")
        cpi_at = [
            i for i, n in enumerate(names) if n.startswith("core.cpi.")
        ]
        if len(cpi_at) != len(CPI_COMPONENTS):
            fail("expected %d core.cpi.* series, got %d"
                 % (len(CPI_COMPONENTS), len(cpi_at)))
        total = 0
        for row in tl["samples"]:
            s = sum(row["deltas"][i] for i in cpi_at)
            if s != row["deltas"][cyc_at]:
                fail(
                    "run %r row %d: CPI deltas sum to %d, cycle delta "
                    "%d" % (label, row["end_cycle"], s,
                            row["deltas"][cyc_at])
                )
            total += row["deltas"][cyc_at]
        if total != report["runs"][0]["cycles"]:
            fail(
                "run %r: timeline cycle deltas sum to %d, run took %d"
                % (label, total, report["runs"][0]["cycles"])
            )

        # The Chrome conversion is loadable JSON of counter events plus
        # process_name metadata rows naming the per-core lanes (v2).
        proc = run_bench([dump_tool, "--chrome", path])
        events = json.loads(proc.stdout)
        if not isinstance(events, list) or not events:
            fail("--chrome emitted no events")
        for e in events:
            if e.get("ph") not in ("C", "M") or "args" not in e:
                fail("malformed Chrome counter event: %r" % e)
        if not any(
            e.get("ph") == "M" and e.get("name") == "process_name"
            for e in events
        ):
            fail("--chrome emitted no process_name metadata")

        # Strict CLI: unknown flags exit 2 with a stderr note.
        proc = subprocess.run(
            [dump_tool, "--bogus", path], capture_output=True,
            text=True, timeout=120
        )
        if proc.returncode != 2:
            fail("unknown flag should exit 2, got %d" % proc.returncode)
        if "unknown argument" not in proc.stderr:
            fail("unknown flag not reported on stderr")
        print(
            "OK: --timeline report byte-identical, %d streams with "
            "exact row counts, CPI deltas sum per row, Chrome JSON "
            "loads" % len(report["runs"])
        )


BLOCK_REASONS = ["token_wait", "lock_wait", "commit_wait", "idle_done"]


def check_contention(bench, fig9a, report_tool):
    """fig_cores --contention: reports print, invariants hold, tool
    round-trips the saved stats, CLIs are strict."""
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "fig_cores.json")
        base = [bench, "--quick", "--no-tpcc", "--jobs=2"]
        proc = run_bench(base + ["--contention", "--stats-json=" + out])
        for needle in ("critical path:", "group commit:",
                       "blocked cycles", "aborts:"):
            if needle not in proc.stdout:
                fail("--contention output missing %r" % needle)
        with open(out, "rb") as f:
            plain_bytes = f.read()
        report = json.loads(plain_bytes)

        # The observability subtrees hold their invariants in every
        # multi-core run: cp.length positive and bounded by the
        # makespan, and running + the four blocked reasons tile the
        # makespan exactly on every core.
        present = 0
        checked = 0
        for r in report["runs"]:
            s = r["stats"]
            if "length" not in s.get("cp", {}):
                continue  # uninstrumented row: no contention subtrees
            present += 1
            makespan = s["core"]["cycles"]
            cp = s["cp"]["length"]
            if not 0 < cp <= makespan:
                fail("run %r: cp.length %d outside (0, %d]"
                     % (r["label"], cp, makespan))
            # Blocked attribution tiles the makespan on every core of
            # the multi-core rows (single-core rows have no lanes).
            for c in range(s["core"].get("count", 0)):
                lane = s["sched"]["core"][str(c)]
                total = lane["running"] + sum(
                    lane["blocked"][b] for b in BLOCK_REASONS)
                if total != makespan:
                    fail("run %r core %d: running+blocked=%d, "
                         "makespan=%d" % (r["label"], c, total, makespan))
                checked += 1
        if present == 0 or checked == 0:
            fail("no runs carried contention subtrees")

        # contention_report renders text and JSON from the same file.
        txt = os.path.join(tmp, "contention.txt")
        run_bench([report_tool, out, "-o", txt])
        with open(txt) as f:
            text = f.read()
        for needle in ("makespan", "critical path:", "locks:"):
            if needle not in text:
                fail("contention_report text missing %r" % needle)
        proc = run_bench([report_tool, "--json", out])
        rows = json.loads(proc.stdout)
        if not isinstance(rows, list) or len(rows) != present:
            fail("contention_report --json: %r rows, want %d"
                 % (len(rows) if isinstance(rows, list) else rows,
                    present))
        for row in rows:
            if row["critical_path"]["length"] > row["makespan"]:
                fail("tool row %r: cp exceeds makespan" % row["label"])

        # Strict CLIs: unknown flags exit 2, unreadable input exits 1,
        # and a sequential bench accepts --contention with a note.
        proc = subprocess.run([report_tool, "--bogus", out],
                              capture_output=True, text=True, timeout=120)
        if proc.returncode != 2:
            fail("contention_report unknown flag: exit %d, want 2"
                 % proc.returncode)
        proc = subprocess.run([report_tool, os.path.join(tmp, "nope")],
                              capture_output=True, text=True, timeout=120)
        if proc.returncode != 1:
            fail("contention_report missing input: exit %d, want 1"
                 % proc.returncode)
        proc = subprocess.run([bench, "--bogus"], capture_output=True,
                              text=True, timeout=120)
        if proc.returncode != 2 or "unknown argument" not in proc.stderr:
            fail("bench unknown flag: exit %d, want 2" % proc.returncode)
        proc = run_bench([fig9a, "--scale=5", "--no-tpcc", "--jobs=2",
                          "--contention"])
        if "no multi-core runs" not in proc.stdout:
            fail("sequential --contention did not print its note")

        # Per-core timeline lanes are observer-only: byte-identical
        # stats report with the instrumentation on.
        lanes = os.path.join(tmp, "lanes.json")
        run_bench(base + [
            "--stats-json=" + lanes, "--timeline=50000",
            "--timeline-cores", "--timeline-dir=" + os.path.join(tmp, "tl"),
        ])
        with open(lanes, "rb") as f:
            if f.read() != plain_bytes:
                fail("--timeline-cores changed the stats report")
        print("OK: contention reports on %d runs (%d core lanes tiled), "
              "tool round-trips, lanes observer-only" % (present, checked))


def check_crash_explore(tool):
    """crash_explore: tiny exploration passes; CLI parsing is strict."""
    proc = run_bench([tool, "--workload=LL", "--steps=8", "--jobs=2"])
    if "PASS" not in proc.stdout or "coverage:" not in proc.stdout:
        fail("crash_explore output missing PASS/coverage:\n%s"
             % proc.stdout)

    run_bench([tool, "--repro=LL:8:1:5"])
    run_bench([tool, "--help"])

    proc = subprocess.run(
        [tool, "--bogus-flag"], capture_output=True, text=True,
        timeout=120
    )
    if proc.returncode != 2:
        fail("unknown flag should exit 2, got %d" % proc.returncode)
    if "unknown argument" not in proc.stderr:
        fail("unknown flag not reported on stderr:\n%s" % proc.stderr)

    proc = subprocess.run(
        [tool, "--repro=not-a-repro"], capture_output=True, text=True,
        timeout=120
    )
    if proc.returncode != 2:
        fail("malformed --repro should exit 2, got %d" % proc.returncode)
    print("OK: crash_explore smoke + strict CLI")


def main():
    if len(sys.argv) not in (2, 3, 4, 5, 6, 7):
        fail("usage: bench_smoke.py <fig9a-binary> [<fig11-binary>"
             " [<crash_explore-binary> [<timeline_dump-binary>"
             " [<fig_cores-binary> [<contention_report-binary>]]]]]")
    bench = sys.argv[1]

    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "fig9a.json")
        cmd = [
            bench,
            "--scale=5",
            "--no-tpcc",
            "--jobs=2",
            "--stats-json=" + out,
        ]
        run_bench(cmd)
        with open(out) as f:
            report = json.load(f)

    if report.get("bench") != "fig9a_speedup_inorder":
        fail("unexpected bench name: %r" % report.get("bench"))

    runs = report.get("runs")
    expected = 6 * 3 * 4  # workloads x patterns x (base,pipe,par,ideal)
    if not isinstance(runs, list) or len(runs) != expected:
        fail(
            "expected %d run records, got %s"
            % (expected, len(runs) if isinstance(runs, list) else runs)
        )

    labels = [r.get("label") for r in runs]
    if len(set(labels)) != len(labels):
        dupes = sorted({l for l in labels if labels.count(l) > 1})
        fail("duplicate run labels: %s" % dupes)

    # Submission order survives the parallel sweep: every group of four
    # is base, opt_pipelined, opt_parallel, opt_ideal of one workload
    # and pattern.
    for i in range(0, expected, 4):
        group = labels[i : i + 4]
        prefix = group[0].rsplit(".base", 1)[0]
        suffixes = [".base", ".opt_pipelined", ".opt_parallel", ".opt_ideal"]
        for label, suffix in zip(group, suffixes):
            want = prefix + suffix + ".inorder"
            if label != want:
                fail(
                    "run %d out of submission order: got %r, want %r"
                    % (i, label, want)
                )

    for r in runs:
        for key in ("config", "cycles", "instructions", "ipc", "stats"):
            if key not in r:
                fail("run %r missing %r" % (r.get("label"), key))
        if r["cycles"] <= 0:
            fail("run %r has no cycles" % r["label"])
        if not isinstance(r["stats"], dict) or not r["stats"]:
            fail("run %r has empty stats" % r["label"])
        if r["config"].get("workload") is None:
            fail("run %r has malformed config" % r["label"])

    summary = report.get("summary")
    if not isinstance(summary, dict) or not summary:
        fail("missing summary block")
    for name, value in summary.items():
        if not isinstance(value, (int, float)):
            fail("summary metric %r is not numeric: %r" % (name, value))

    print(
        "OK: %d runs, %d summary metrics, labels unique and ordered"
        % (len(runs), len(summary))
    )

    check_cpi_and_seeds(bench)

    if len(sys.argv) >= 3:
        check_trace_cache(sys.argv[2])
    if len(sys.argv) >= 4:
        check_crash_explore(sys.argv[3])
    if len(sys.argv) >= 5:
        check_timeline(bench, sys.argv[4])
    if len(sys.argv) >= 7:
        check_contention(sys.argv[5], bench, sys.argv[6])


if __name__ == "__main__":
    main()
