#!/usr/bin/env python3
"""Bench smoke test: one bench binary through the parallel sweep.

Runs fig9a at tiny scale with --jobs=2 --stats-json and validates the
report: the JSON parses, there is exactly one run record per submitted
config (6 microbenchmarks x 3 patterns x 4 variants = 72), labels are
unique and in submission order (base before opt for every workload x
pattern group), every record carries its config and hierarchical stats,
and the summary block holds the headline geomeans.

Usage: bench_smoke.py <path-to-fig9a_speedup_inorder>
"""

import json
import subprocess
import sys
import tempfile
import os


def fail(msg):
    print("FAIL:", msg)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: bench_smoke.py <bench-binary>")
    bench = sys.argv[1]

    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "fig9a.json")
        cmd = [
            bench,
            "--scale=5",
            "--no-tpcc",
            "--jobs=2",
            "--stats-json=" + out,
        ]
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=1200
        )
        if proc.returncode != 0:
            fail(
                "bench exited %d\nstdout:\n%s\nstderr:\n%s"
                % (proc.returncode, proc.stdout, proc.stderr)
            )
        with open(out) as f:
            report = json.load(f)

    if report.get("bench") != "fig9a_speedup_inorder":
        fail("unexpected bench name: %r" % report.get("bench"))

    runs = report.get("runs")
    expected = 6 * 3 * 4  # workloads x patterns x (base,pipe,par,ideal)
    if not isinstance(runs, list) or len(runs) != expected:
        fail(
            "expected %d run records, got %s"
            % (expected, len(runs) if isinstance(runs, list) else runs)
        )

    labels = [r.get("label") for r in runs]
    if len(set(labels)) != len(labels):
        dupes = sorted({l for l in labels if labels.count(l) > 1})
        fail("duplicate run labels: %s" % dupes)

    # Submission order survives the parallel sweep: every group of four
    # is base, opt_pipelined, opt_parallel, opt_ideal of one workload
    # and pattern.
    for i in range(0, expected, 4):
        group = labels[i : i + 4]
        prefix = group[0].rsplit(".base", 1)[0]
        suffixes = [".base", ".opt_pipelined", ".opt_parallel", ".opt_ideal"]
        for label, suffix in zip(group, suffixes):
            want = prefix + suffix + ".inorder"
            if label != want:
                fail(
                    "run %d out of submission order: got %r, want %r"
                    % (i, label, want)
                )

    for r in runs:
        for key in ("config", "cycles", "instructions", "ipc", "stats"):
            if key not in r:
                fail("run %r missing %r" % (r.get("label"), key))
        if r["cycles"] <= 0:
            fail("run %r has no cycles" % r["label"])
        if not isinstance(r["stats"], dict) or not r["stats"]:
            fail("run %r has empty stats" % r["label"])
        if r["config"].get("workload") is None:
            fail("run %r has malformed config" % r["label"])

    summary = report.get("summary")
    if not isinstance(summary, dict) or not summary:
        fail("missing summary block")
    for name, value in summary.items():
        if not isinstance(value, (int, float)):
            fail("summary metric %r is not numeric: %r" % (name, value))

    print(
        "OK: %d runs, %d summary metrics, labels unique and ordered"
        % (len(runs), len(summary))
    )


if __name__ == "__main__":
    main()
