/** @file Unit tests for the pool registry (create/open/close cycle). */
#include <gtest/gtest.h>

#include "pmem/registry.h"

namespace poat {
namespace {

TEST(Registry, CreateAssignsSequentialIdsFromOne)
{
    PoolRegistry r;
    EXPECT_EQ(r.create("a", 1 << 20).pool.id(), 1u);
    EXPECT_EQ(r.create("b", 1 << 20).pool.id(), 2u);
    EXPECT_EQ(r.openCount(), 2u);
}

TEST(Registry, PoolsGetDistinctPageAlignedVbases)
{
    PoolRegistry r;
    auto &a = r.create("a", 1 << 20);
    auto &b = r.create("b", 1 << 20);
    EXPECT_NE(a.pool.vbase(), b.pool.vbase());
    EXPECT_EQ(a.pool.vbase() % kPageSize, 0u);
    EXPECT_EQ(b.pool.vbase() % kPageSize, 0u);
}

TEST(Registry, AslrSeedChangesPlacementDeterministically)
{
    PoolRegistry r1(7), r2(7), r3(8);
    EXPECT_EQ(r1.create("a", 1 << 20).pool.vbase(),
              r2.create("a", 1 << 20).pool.vbase());
    EXPECT_NE(r1.create("b", 1 << 20).pool.vbase(),
              r3.create("b", 1 << 20).pool.vbase());
}

TEST(Registry, FindAndGet)
{
    PoolRegistry r;
    auto &a = r.create("a", 1 << 20);
    EXPECT_EQ(r.find(a.pool.id()), &a);
    EXPECT_EQ(r.find(999), nullptr);
    EXPECT_EQ(&r.get(a.pool.id()), &a);
}

TEST(Registry, CloseThenReopenPreservesDataAndId)
{
    PoolRegistry r;
    auto &a = r.create("a", 1 << 20);
    const uint32_t id = a.pool.id();
    const uint32_t off = a.alloc.alloc(64);
    a.pool.writeAs<uint64_t>(off, 123);
    // No explicit persist: close must flush dirty lines like a file
    // close writes back page-cache contents.
    r.close(id);
    EXPECT_EQ(r.openCount(), 0u);

    auto &b = r.open("a");
    EXPECT_EQ(b.pool.id(), id);
    EXPECT_EQ(b.pool.readAs<uint64_t>(off), 123u);
    EXPECT_TRUE(b.alloc.isAllocated(off));
}

TEST(Registry, ReopenGetsAFreshRandomizedMapping)
{
    PoolRegistry r;
    auto &a = r.create("a", 1 << 20);
    const uint64_t vbase1 = a.pool.vbase();
    r.close(a.pool.id());
    auto &b = r.open("a");
    // ASLR: a reopened pool (almost surely) lands elsewhere, which is
    // exactly why ObjectIDs rather than raw pointers are needed.
    EXPECT_NE(b.pool.vbase(), vbase1);
}

TEST(Registry, OpenRunsLogRecovery)
{
    PoolRegistry r;
    auto &a = r.create("a", 1 << 20);
    const uint32_t id = a.pool.id();
    const uint32_t off = a.alloc.alloc(64);
    a.pool.writeAs<uint64_t>(off, 1);
    a.pool.persist(off, 8);

    a.log.begin();
    a.log.addRange(off, 8);
    a.pool.writeAs<uint64_t>(off, 2);
    a.pool.persist(off, 8);
    // Crash with the transaction still active, then close-less reopen
    // via crashAll + recoverAll.
    r.crashAll();
    r.recoverAll();
    EXPECT_EQ(r.get(id).pool.readAs<uint64_t>(off), 1u);
}

TEST(Registry, CrashAllRevertsUnpersistedWrites)
{
    PoolRegistry r;
    auto &a = r.create("a", 1 << 20);
    const uint32_t off = a.alloc.alloc(64);
    a.pool.writeAs<uint64_t>(off, 55);
    r.crashAll();
    EXPECT_EQ(a.pool.readAs<uint64_t>(off), 0u);
    EXPECT_TRUE(a.alloc.validate());
}

TEST(Registry, OpenIdsAreSorted)
{
    PoolRegistry r;
    r.create("a", 1 << 20);
    r.create("b", 1 << 20);
    r.create("c", 1 << 20);
    r.close(2);
    const auto ids = r.openIds();
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], 1u);
    EXPECT_EQ(ids[1], 3u);
}

TEST(Registry, ManyPoolsCoexist)
{
    PoolRegistry r;
    for (int i = 0; i < 200; ++i)
        r.create("pool" + std::to_string(i), Pool::kMinSize);
    EXPECT_EQ(r.openCount(), 200u);
    EXPECT_EQ(r.addressSpace().regionCount(), 200u);
}

} // namespace
} // namespace poat
