/** @file Tests pinning the software-translation cost model (Table 2). */
#include <gtest/gtest.h>

#include "pmem/addrspace.h"
#include "pmem/translate.h"

namespace poat {
namespace {

struct Fixture
{
    Fixture() : space(1), tr(space) {}
    AddressSpace space;
    SoftwareTranslator tr;
};

TEST(Translate, ReturnsBasePlusOffset)
{
    Fixture f;
    NullTraceSink sink;
    f.tr.addPool(5, 0x1000000);
    EXPECT_EQ(f.tr.translate(ObjectID(5, 0x42), sink), 0x1000042u);
    EXPECT_EQ(f.tr.translateQuiet(ObjectID(5, 0x100)), 0x1000100u);
}

TEST(Translate, PredictorHitCostsExactly17Instructions)
{
    // Paper Table 2: oid_direct costs 17.0 instructions when the most
    // recent translation is reused.
    Fixture f;
    CountingTraceSink sink;
    f.tr.addPool(5, 0x1000000);
    f.tr.translate(ObjectID(5, 0), sink); // warm the predictor
    sink.reset();
    f.tr.resetStats();
    f.tr.translate(ObjectID(5, 8), sink);
    EXPECT_EQ(sink.instructions, 17u);
    EXPECT_EQ(f.tr.instructionsEmitted(), 17u);
    EXPECT_EQ(f.tr.predictorMisses(), 0u);
}

TEST(Translate, FullLookupCostsRoughly100Instructions)
{
    // Paper Table 2: ~95-110 instructions when the hash lookup runs.
    Fixture f;
    CountingTraceSink sink;
    for (uint32_t p = 1; p <= 64; ++p)
        f.tr.addPool(p, 0x1000000ull * p);
    f.tr.translate(ObjectID(1, 0), sink); // predictor now holds pool 1
    sink.reset();
    f.tr.translate(ObjectID(2, 0), sink); // full lookup
    EXPECT_GE(sink.instructions, 90u);
    EXPECT_LE(sink.instructions, 115u);
}

TEST(Translate, AlternatingPoolsAlwaysMissPredictor)
{
    Fixture f;
    NullTraceSink sink;
    f.tr.addPool(1, 0x10000000);
    f.tr.addPool(2, 0x20000000);
    f.tr.translate(ObjectID(2, 0), sink); // predictor holds pool 2
    f.tr.resetStats();
    for (int i = 0; i < 100; ++i) {
        // Stream 1,2,1,2,...: every access changes pool.
        f.tr.translate(ObjectID(1 + (i % 2), 0), sink);
    }
    EXPECT_EQ(f.tr.predictorMissRate(), 1.0);
    // And the average cost reflects the slow path.
    EXPECT_GT(f.tr.avgInstructionsPerCall(), 90.0);
}

TEST(Translate, SamePoolStreamHitsPredictor)
{
    Fixture f;
    NullTraceSink sink;
    f.tr.addPool(1, 0x10000000);
    f.tr.translate(ObjectID(1, 0), sink);
    f.tr.resetStats();
    for (int i = 0; i < 100; ++i)
        f.tr.translate(ObjectID(1, 8 * i), sink);
    EXPECT_EQ(f.tr.predictorMisses(), 0u);
    EXPECT_DOUBLE_EQ(f.tr.avgInstructionsPerCall(), 17.0);
}

TEST(Translate, RemovePoolInvalidatesPredictor)
{
    Fixture f;
    NullTraceSink sink;
    f.tr.addPool(1, 0x10000000);
    f.tr.addPool(2, 0x20000000);
    f.tr.translate(ObjectID(1, 0), sink);
    f.tr.removePool(1);
    EXPECT_EQ(f.tr.poolCount(), 1u);
    // Pool 2 still translates correctly after the removal.
    EXPECT_EQ(f.tr.translate(ObjectID(2, 4), sink), 0x20000004u);
}

TEST(Translate, ReAddingAPoolIdAfterRemovalWorks)
{
    Fixture f;
    NullTraceSink sink;
    f.tr.addPool(9, 0x90000000);
    f.tr.removePool(9);
    f.tr.addPool(9, 0xa0000000);
    EXPECT_EQ(f.tr.translate(ObjectID(9, 1), sink), 0xa0000001u);
}

TEST(Translate, ProbeCountGrowsWithCollisions)
{
    // Force many pools so some buckets chain; probes/misses must then
    // exceed 1 on average.
    Fixture f;
    NullTraceSink sink;
    for (uint32_t p = 1; p <= 4096; ++p)
        f.tr.addPool(p, 0x1000000ull * p);
    f.tr.resetStats();
    for (uint32_t p = 1; p <= 4096; ++p)
        f.tr.translate(ObjectID(p * 7 % 4096 + 1, 0), sink);
    EXPECT_GT(f.tr.probesTotal(), f.tr.predictorMisses());
}

TEST(Translate, BlendedEachPatternAverageMatchesTable2Band)
{
    // Emulate an EACH-style stream over many pools with a ~90% miss
    // rate; the blended average must fall in the paper's 77-110 band.
    Fixture f;
    NullTraceSink sink;
    for (uint32_t p = 1; p <= 300; ++p)
        f.tr.addPool(p, 0x1000000ull * p);
    f.tr.resetStats();
    for (int i = 0; i < 3000; ++i) {
        const uint32_t pool = 1 + (i % 10 == 0 ? 1 : (i * 13) % 300);
        f.tr.translate(ObjectID(pool, 0), sink);
    }
    EXPECT_GT(f.tr.avgInstructionsPerCall(), 70.0);
    EXPECT_LT(f.tr.avgInstructionsPerCall(), 115.0);
}

TEST(Translate, DisabledPredictorAlwaysTakesSlowPath)
{
    Fixture f;
    NullTraceSink sink;
    f.tr.addPool(1, 0x10000000);
    f.tr.setPredictorEnabled(false);
    for (int i = 0; i < 50; ++i)
        f.tr.translate(ObjectID(1, 8 * i), sink); // same pool every time
    EXPECT_EQ(f.tr.predictorMissRate(), 1.0);
    EXPECT_GT(f.tr.avgInstructionsPerCall(), 90.0);
    // Results stay correct.
    EXPECT_EQ(f.tr.translate(ObjectID(1, 4), sink), 0x10000004u);
    // Re-enabling resumes fast-path behavior after one warm-up miss.
    f.tr.setPredictorEnabled(true);
    f.tr.resetStats();
    f.tr.translate(ObjectID(1, 0), sink);
    f.tr.translate(ObjectID(1, 8), sink);
    EXPECT_EQ(f.tr.predictorMisses(), 1u);
}

} // namespace
} // namespace poat
