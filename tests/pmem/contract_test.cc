/**
 * @file
 * API-contract tests: misuse of the pmem interface must fail loudly
 * (fatal for user errors, panic for internal invariants), matching the
 * gem5-style error discipline in common/logging.h.
 */
#include <gtest/gtest.h>

#include "pmem/runtime.h"

namespace poat {
namespace {

using ContractDeath = ::testing::Test;

TEST(ContractDeath, DuplicatePoolNameIsFatal)
{
    PmemRuntime rt;
    rt.poolCreate("dup", 1 << 20);
    EXPECT_EXIT(rt.poolCreate("dup", 1 << 20),
                ::testing::ExitedWithCode(1), "already exists");
}

TEST(ContractDeath, OpeningUnknownPoolIsFatal)
{
    PmemRuntime rt;
    EXPECT_EXIT(rt.poolOpen("never-created"),
                ::testing::ExitedWithCode(1), "unknown pool");
}

TEST(ContractDeath, DerefOfNullPanics)
{
    PmemRuntime rt;
    EXPECT_DEATH(rt.deref(OID_NULL), "OID_NULL");
}

TEST(ContractDeath, TranslationOfUnopenedPoolIsFatal)
{
    PmemRuntime rt;
    rt.poolCreate("p", 1 << 20);
    // Pool id 999 was never created: the paper treats this as a
    // program error surfaced by oid_direct.
    EXPECT_EXIT(rt.deref(ObjectID(999, 0)),
                ::testing::ExitedWithCode(1), "not open");
}

TEST(ContractDeath, TxAddRangeWithoutBeginPanics)
{
    PmemRuntime rt;
    const uint32_t pool = rt.poolCreate("p", 1 << 20);
    const ObjectID oid = rt.pmalloc(pool, 64);
    EXPECT_DEATH(rt.txAddRange(oid, 8), "without an open transaction");
}

TEST(ContractDeath, NestedTxOnSamePoolPanics)
{
    PmemRuntime rt;
    const uint32_t pool = rt.poolCreate("p", 1 << 20);
    rt.txBegin(pool);
    EXPECT_DEATH(rt.txBegin(pool), "nested");
}

TEST(ContractDeath, DoubleFreePanics)
{
    PmemRuntime rt;
    const uint32_t pool = rt.poolCreate("p", 1 << 20);
    const ObjectID oid = rt.pmalloc(pool, 64);
    rt.pfree(oid);
    EXPECT_DEATH(rt.pfree(oid), "double pfree");
}

TEST(ContractDeath, PoolExhaustionIsFatal)
{
    PmemRuntime rt;
    const uint32_t pool = rt.poolCreate("tiny", 1 << 16, 8 * 1024);
    EXPECT_EXIT(rt.pmalloc(pool, 1 << 20),
                ::testing::ExitedWithCode(1), "exhausted");
}

TEST(ContractDeath, ImportOfGarbageFileIsFatal)
{
    const std::string path =
        std::string(::testing::TempDir()) + "garbage.pool";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[4096] = "not a pool image";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
    PmemRuntime rt;
    EXPECT_EXIT(rt.registry().importPool("g", path),
                ::testing::ExitedWithCode(1), "not a valid pool");
    std::remove(path.c_str());
}

TEST(ContractDeath, PoolCloseWithLiveTransactionPanics)
{
    PmemRuntime rt;
    const uint32_t pool = rt.poolCreate("p", 1 << 20);
    rt.txBegin(pool);
    EXPECT_DEATH(rt.poolClose(pool), "live transaction");
}

} // namespace
} // namespace poat
