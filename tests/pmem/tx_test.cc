/** @file Unit and crash-matrix property tests for the undo log. */
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.h"
#include "pmem/alloc.h"
#include "pmem/pool.h"
#include "pmem/tx.h"

namespace poat {
namespace {

struct Fixture
{
    Fixture() : pool("p", 1, 1 << 20), alloc(pool), log(pool, alloc) {}
    Pool pool;
    PoolAllocator alloc;
    UndoLog log;
};

TEST(Tx, CommitMakesDataDurable)
{
    Fixture f;
    const uint32_t off = f.alloc.alloc(64);
    f.log.begin();
    f.log.addRange(off, 8);
    f.pool.writeAs<uint64_t>(off, 42);
    f.log.commit();
    f.pool.crash();
    EXPECT_EQ(f.pool.readAs<uint64_t>(off), 42u);
}

TEST(Tx, AbortRestoresOldData)
{
    Fixture f;
    const uint32_t off = f.alloc.alloc(64);
    f.pool.writeAs<uint64_t>(off, 7);
    f.pool.persist(off, 8);
    f.log.begin();
    f.log.addRange(off, 8);
    f.pool.writeAs<uint64_t>(off, 8);
    f.log.abort();
    EXPECT_EQ(f.pool.readAs<uint64_t>(off), 7u);
}

TEST(Tx, CrashBeforeCommitRollsBack)
{
    Fixture f;
    const uint32_t off = f.alloc.alloc(64);
    f.pool.writeAs<uint64_t>(off, 7);
    f.pool.persist(off, 8);
    f.log.begin();
    f.log.addRange(off, 8);
    f.pool.writeAs<uint64_t>(off, 8);
    f.pool.persist(off, 8); // even a persisted update must roll back

    f.pool.crash();
    f.alloc.rescan();
    f.log.markCrashed();
    EXPECT_TRUE(f.log.recover());
    EXPECT_EQ(f.pool.readAs<uint64_t>(off), 7u);
    // Recovery itself persisted the rollback.
    f.pool.crash();
    EXPECT_EQ(f.pool.readAs<uint64_t>(off), 7u);
}

TEST(Tx, RecoverOnIdleLogIsNoop)
{
    Fixture f;
    EXPECT_FALSE(f.log.recover());
}

TEST(Tx, TxAllocIsRolledBackOnCrash)
{
    Fixture f;
    f.log.begin();
    const uint32_t off = f.alloc.alloc(64);
    f.log.logAlloc(off);
    EXPECT_TRUE(f.alloc.isAllocated(off));

    f.pool.crash();
    f.alloc.rescan();
    f.log.markCrashed();
    f.log.recover();
    EXPECT_FALSE(f.alloc.isAllocated(off));
    EXPECT_TRUE(f.alloc.validate());
}

TEST(Tx, TxFreeIsDeferredUntilCommit)
{
    Fixture f;
    const uint32_t off = f.alloc.alloc(64);
    f.log.begin();
    f.log.logFree(off);
    EXPECT_TRUE(f.alloc.isAllocated(off)) << "free must be deferred";
    f.log.commit();
    EXPECT_FALSE(f.alloc.isAllocated(off));
    EXPECT_TRUE(f.alloc.validate());
}

TEST(Tx, AbortedFreeLeavesBlockAllocated)
{
    Fixture f;
    const uint32_t off = f.alloc.alloc(64);
    f.log.begin();
    f.log.logFree(off);
    f.log.abort();
    EXPECT_TRUE(f.alloc.isAllocated(off));
}

TEST(Tx, MultipleRangesUndoInReverseOrder)
{
    Fixture f;
    const uint32_t off = f.alloc.alloc(64);
    f.pool.writeAs<uint64_t>(off, 1);
    f.pool.persist(off, 8);
    f.log.begin();
    // Log the same range twice with an intermediate modification; undo
    // must restore the value from before the *first* snapshot.
    f.log.addRange(off, 8);
    f.pool.writeAs<uint64_t>(off, 2);
    f.log.addRange(off, 8);
    f.pool.writeAs<uint64_t>(off, 3);
    f.log.abort();
    EXPECT_EQ(f.pool.readAs<uint64_t>(off), 1u);
}

TEST(Tx, LogCapacityIsTracked)
{
    Fixture f;
    const uint32_t before = f.log.remainingCapacity();
    f.log.begin();
    const uint32_t off = f.alloc.alloc(256);
    f.log.addRange(off, 256);
    EXPECT_LT(f.log.remainingCapacity(), before);
    f.log.commit();
    EXPECT_EQ(f.log.entryCount(), 0u);
}

TEST(Tx, RecordsExposeEntries)
{
    Fixture f;
    const uint32_t a = f.alloc.alloc(64);
    f.log.begin();
    f.log.addRange(a, 16);
    const uint32_t b = f.alloc.alloc(32);
    f.log.logAlloc(b);
    f.log.logFree(a);
    const auto recs = f.log.records();
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[0].type, LogEntryHeader::kData);
    EXPECT_EQ(recs[0].target_off, a);
    EXPECT_EQ(recs[0].size, 16u);
    EXPECT_EQ(recs[1].type, LogEntryHeader::kAlloc);
    EXPECT_EQ(recs[1].target_off, b);
    EXPECT_EQ(recs[2].type, LogEntryHeader::kFree);
    f.log.commit();
}

TEST(Tx, ExhaustionThrowsDescriptiveError)
{
    // 2 KiB log region (128 bytes of it are the mirrored header lines):
    // one big range fits, the second cannot.
    Pool pool("tiny", 1, 1 << 20, 2048);
    PoolAllocator alloc(pool);
    UndoLog log(pool, alloc);

    const uint32_t off = alloc.alloc(2048);
    log.begin();
    log.addRange(off, 1000);
    try {
        log.addRange(off + 1024, 1000);
        FAIL() << "second addRange should exhaust the log";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("undo log exhausted"), std::string::npos) << msg;
        EXPECT_NE(msg.find("'tiny'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("log_size=2048"), std::string::npos) << msg;
        EXPECT_NE(msg.find("requested="), std::string::npos) << msg;
    }
    // The log is untouched by the failed append: abort still works.
    log.abort();
    EXPECT_EQ(log.entryCount(), 0u);
}

TEST(Tx, CommitPersistsTxAllocatedPayload)
{
    // Stores into a freshly tx-allocated object have no kData snapshot;
    // commit must persist them through the kAlloc entry's alloc_size or
    // a crash after commit silently loses the object's contents.
    Fixture f;
    f.log.begin();
    const uint32_t off = f.alloc.alloc(64, /*persist_now=*/false);
    f.log.logAlloc(off, 64);
    f.alloc.persistTouched();
    f.pool.writeAs<uint64_t>(off, 123); // note: no addRange, no persist
    f.log.commit();

    f.pool.crash();
    f.alloc.rescan();
    EXPECT_TRUE(f.alloc.isAllocated(off));
    EXPECT_EQ(f.pool.readAs<uint64_t>(off), 123u);
}

TEST(Tx, RecoverTwiceIsIdempotent)
{
    Fixture f;
    const uint32_t off = f.alloc.alloc(64);
    f.pool.writeAs<uint64_t>(off, 7);
    f.pool.persist(off, 8);
    f.log.begin();
    f.log.addRange(off, 8);
    f.pool.writeAs<uint64_t>(off, 8);
    f.pool.persist(off, 8);

    f.pool.crash();
    f.alloc.rescan();
    f.log.markCrashed();
    EXPECT_TRUE(f.log.recover());
    EXPECT_EQ(f.pool.readAs<uint64_t>(off), 7u);

    // A second recovery of the now-idle log must be a no-op.
    EXPECT_FALSE(f.log.recover());
    EXPECT_EQ(f.pool.readAs<uint64_t>(off), 7u);
    EXPECT_EQ(f.log.entryCount(), 0u);
    EXPECT_TRUE(f.alloc.validate());
}

/**
 * A crashed image with a kCommitting (or kActive) log header whose
 * trailing entries are garbage or truncated must fail recovery with a
 * descriptive error — never walk the corrupt entries (UB).
 */
class TxCorruptLog : public ::testing::Test
{
  protected:
    TxCorruptLog() : pool("p", 1, 1 << 20), alloc(pool), log(pool, alloc)
    {
        log_off = pool.header().log_off;
    }

    /**
     * Fixtures target the *structural* validation, so headers and
     * entries are correctly crc-sealed — a stale checksum would trip
     * the (earlier) checksum check instead of the message under test.
     */
    void writeLogHeader(uint32_t state, uint32_t entries, uint32_t used)
    {
        LogHeader h{state, entries, used, 0};
        h.seal();
        pool.writeRaw(log_off, &h, sizeof(h));
        pool.writeRaw(log_off + LogHeader::kMirrorLineOff, &h, sizeof(h));
        pool.persist(log_off, LogHeader::kEntriesOff);
    }

    void writeEntry(uint32_t at, LogEntryHeader eh)
    {
        eh.seal();
        pool.writeRaw(at, &eh, sizeof(eh));
        pool.persist(at, sizeof(eh));
    }

    std::string recoverError()
    {
        pool.crash();
        alloc.rescan();
        log.markCrashed();
        try {
            log.recover();
        } catch (const std::runtime_error &e) {
            return e.what();
        }
        return "";
    }

    Pool pool;
    PoolAllocator alloc;
    UndoLog log;
    uint32_t log_off = 0;
};

TEST_F(TxCorruptLog, CommittingWithGarbageEntryTypeFailsClearly)
{
    writeEntry(log_off + LogHeader::kEntriesOff,
               LogEntryHeader{77, 16, 4096, 0});
    writeLogHeader(LogHeader::kCommitting, 1,
                   sizeof(LogEntryHeader) + 16);
    const std::string msg = recoverError();
    EXPECT_NE(msg.find("corrupt undo log"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unknown type"), std::string::npos) << msg;
}

TEST_F(TxCorruptLog, CommittingWithTruncatedEntryFailsClearly)
{
    // One entry whose claimed payload runs past the end of the log
    // region: the walk must stop at the bounds check, not read off the
    // end.
    writeEntry(log_off + LogHeader::kEntriesOff,
               LogEntryHeader{LogEntryHeader::kData, 1u << 20, 4096, 0});
    writeLogHeader(LogHeader::kCommitting, 1, 64);
    const std::string msg = recoverError();
    EXPECT_NE(msg.find("corrupt undo log"), std::string::npos) << msg;
    EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
}

TEST_F(TxCorruptLog, ActiveWithEntryWalkUsedMismatchFailsClearly)
{
    writeEntry(log_off + LogHeader::kEntriesOff,
               LogEntryHeader{LogEntryHeader::kFree, 0, 4096, 0});
    writeLogHeader(LogHeader::kActive, 1, 999);
    const std::string msg = recoverError();
    EXPECT_NE(msg.find("corrupt undo log"), std::string::npos) << msg;
}

TEST_F(TxCorruptLog, UnknownStateMachineValueFailsClearly)
{
    writeLogHeader(9, 0, 0);
    const std::string msg = recoverError();
    EXPECT_NE(msg.find("unknown state machine value"), std::string::npos)
        << msg;
}

/**
 * Crash matrix: run a multi-step transactional update and crash after
 * every possible step (with random early line evictions thrown in);
 * recovery must always land on either the pre-transaction or the
 * post-transaction state — never anything in between.
 */
class TxCrashMatrix
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>>
{
};

TEST_P(TxCrashMatrix, RecoveryIsAtomic)
{
    const auto [crash_step, seed] = GetParam();
    Rng rng(seed);

    Pool pool("p", 1, 1 << 20);
    PoolAllocator alloc(pool);
    UndoLog log(pool, alloc);

    // Committed initial state: three cells = 10, 20, 30.
    const uint32_t off = alloc.alloc(64);
    pool.writeAs<uint64_t>(off, 10);
    pool.writeAs<uint64_t>(off + 8, 20);
    pool.writeAs<uint64_t>(off + 16, 30);
    pool.persist(off, 24);

    // Transaction: cells := 11, 21, 31 plus one tx-alloc and the free
    // of a scratch block. Crash after step `crash_step`.
    const uint32_t scratch = alloc.alloc(48);
    pool.persist(scratch, 8);

    int step = 0;
    auto maybe_crash = [&]() -> bool {
        if (step++ == crash_step) {
            pool.evictRandomLines(rng, 1, 3);
            pool.crash();
            return true;
        }
        return false;
    };

    bool crashed = false;
    uint32_t txblock = 0;
    do {
        log.begin();
        if ((crashed = maybe_crash()))
            break;
        log.addRange(off, 24);
        if ((crashed = maybe_crash()))
            break;
        pool.writeAs<uint64_t>(off, 11);
        pool.writeAs<uint64_t>(off + 8, 21);
        if ((crashed = maybe_crash()))
            break;
        pool.writeAs<uint64_t>(off + 16, 31);
        txblock = alloc.alloc(40);
        log.logAlloc(txblock);
        if ((crashed = maybe_crash()))
            break;
        log.logFree(scratch);
        if ((crashed = maybe_crash()))
            break;
        log.commit();
        crashed = maybe_crash();
    } while (false);

    if (!crashed) {
        // Steps exhausted without a crash: transaction committed.
        EXPECT_EQ(pool.readAs<uint64_t>(off), 11u);
        return;
    }

    alloc.rescan();
    log.markCrashed();
    log.recover();
    ASSERT_TRUE(alloc.validate());

    const uint64_t a = pool.readAs<uint64_t>(off);
    const uint64_t b = pool.readAs<uint64_t>(off + 8);
    const uint64_t c = pool.readAs<uint64_t>(off + 16);
    const bool old_state = (a == 10 && b == 20 && c == 30);
    const bool new_state = (a == 11 && b == 21 && c == 31);
    EXPECT_TRUE(old_state || new_state)
        << "torn state after crash at step " << crash_step << ": "
        << a << "," << b << "," << c;

    if (old_state) {
        // Rolled back: the tx allocation must not survive.
        if (txblock != 0) {
            EXPECT_FALSE(alloc.isAllocated(txblock));
        }
        EXPECT_TRUE(alloc.isAllocated(scratch));
    } else {
        // Committed: the deferred free must have completed.
        EXPECT_FALSE(alloc.isAllocated(scratch));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllStepsAndSeeds, TxCrashMatrix,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(1u, 17u, 99u, 1234u)));

} // namespace
} // namespace poat
