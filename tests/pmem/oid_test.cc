/** @file Unit tests for ObjectID packing and arithmetic. */
#include <gtest/gtest.h>

#include <unordered_set>

#include "pmem/oid.h"

namespace poat {
namespace {

TEST(ObjectID, PacksPoolIdAndOffset)
{
    const ObjectID oid(0x12345678u, 0x9abcdef0u);
    EXPECT_EQ(oid.poolId(), 0x12345678u);
    EXPECT_EQ(oid.offset(), 0x9abcdef0u);
    EXPECT_EQ(oid.raw, 0x123456789abcdef0ull);
}

TEST(ObjectID, NullHasPoolIdZero)
{
    EXPECT_TRUE(OID_NULL.isNull());
    EXPECT_EQ(OID_NULL.raw, 0u);
    // Pool id 0 with any offset is still null: pool 0 cannot exist.
    EXPECT_TRUE(ObjectID(0u, 123u).isNull());
    EXPECT_FALSE(ObjectID(1u, 0u).isNull());
}

TEST(ObjectID, PlusMovesWithinPool)
{
    const ObjectID oid(7u, 100u);
    const ObjectID moved = oid.plus(28);
    EXPECT_EQ(moved.poolId(), 7u);
    EXPECT_EQ(moved.offset(), 128u);
}

TEST(ObjectID, EqualityComparesRawBits)
{
    EXPECT_EQ(ObjectID(1u, 2u), ObjectID(1u, 2u));
    EXPECT_NE(ObjectID(1u, 2u), ObjectID(2u, 1u));
    EXPECT_NE(ObjectID(1u, 2u), OID_NULL);
}

TEST(ObjectID, HashIsUsableInUnorderedContainers)
{
    std::unordered_set<ObjectID> set;
    for (uint32_t p = 1; p <= 10; ++p)
        for (uint32_t o = 0; o < 10; ++o)
            set.insert(ObjectID(p, o * 16));
    EXPECT_EQ(set.size(), 100u);
    EXPECT_TRUE(set.count(ObjectID(3u, 48u)));
    EXPECT_FALSE(set.count(ObjectID(11u, 0u)));
}

TEST(ObjectID, RoundTripsThroughRaw)
{
    const ObjectID oid(0xffffffffu, 0xffffffffu);
    EXPECT_EQ(ObjectID(oid.raw), oid);
    EXPECT_EQ(oid.poolId(), 0xffffffffu);
    EXPECT_EQ(oid.offset(), 0xffffffffu);
}

} // namespace
} // namespace poat
