/** @file Integration tests for PmemRuntime (the paper's Table 1 API). */
#include <gtest/gtest.h>

#include <vector>

#include "pmem/runtime.h"

namespace poat {
namespace {

RuntimeOptions
softwareOpts()
{
    RuntimeOptions o;
    o.mode = TranslationMode::Software;
    return o;
}

RuntimeOptions
hardwareOpts()
{
    RuntimeOptions o;
    o.mode = TranslationMode::Hardware;
    return o;
}

TEST(Runtime, CreateWriteReadRoundTrip)
{
    for (const auto &opts : {softwareOpts(), hardwareOpts()}) {
        PmemRuntime rt(opts);
        const uint32_t pool = rt.poolCreate("p", 1 << 20);
        const ObjectID oid = rt.pmalloc(pool, 64);
        ObjectRef ref = rt.deref(oid);
        rt.write<uint64_t>(ref, 0, 0xdead);
        rt.write<uint32_t>(ref, 8, 0xbeef);
        EXPECT_EQ(rt.read<uint64_t>(ref, 0), 0xdeadu);
        EXPECT_EQ(rt.read<uint32_t>(ref, 8), 0xbeefu);
    }
}

TEST(Runtime, RootObjectIsStableAcrossCalls)
{
    PmemRuntime rt(softwareOpts());
    const uint32_t pool = rt.poolCreate("p", 1 << 20);
    const ObjectID r1 = rt.poolRoot(pool, 128);
    const ObjectID r2 = rt.poolRoot(pool, 128);
    EXPECT_EQ(r1, r2);
    // Root starts zeroed.
    ObjectRef ref = rt.deref(r1);
    EXPECT_EQ(rt.read<uint64_t>(ref, 0), 0u);
    EXPECT_EQ(rt.read<uint64_t>(ref, 120), 0u);
}

TEST(Runtime, RootSurvivesCloseAndReopen)
{
    PmemRuntime rt(softwareOpts());
    uint32_t pool = rt.poolCreate("p", 1 << 20);
    const ObjectID root = rt.poolRoot(pool, 64);
    ObjectRef ref = rt.deref(root);
    rt.write<uint64_t>(ref, 0, 42);
    rt.persist(root, 8);
    rt.poolClose(pool);

    pool = rt.poolOpen("p");
    const ObjectID root2 = rt.poolRoot(pool, 64);
    EXPECT_EQ(root2.offset(), root.offset());
    EXPECT_EQ(rt.read<uint64_t>(rt.deref(root2), 0), 42u);
}

TEST(Runtime, SoftwareModeEmitsTranslationOnDeref)
{
    CountingTraceSink sink;
    PmemRuntime rt(softwareOpts(), &sink);
    const uint32_t pool = rt.poolCreate("p", 1 << 20);
    const ObjectID oid = rt.pmalloc(pool, 64);

    sink.reset();
    ObjectRef ref = rt.deref(oid);
    EXPECT_GE(sink.instructions, 17u); // at least the fast path
    EXPECT_EQ(sink.nvLoads, 0u);

    sink.reset();
    rt.read<uint64_t>(ref, 0);
    EXPECT_EQ(sink.loads, 1u);
    EXPECT_EQ(sink.nvLoads, 0u);
}

TEST(Runtime, HardwareModeDerefIsFreeAndAccessesAreNv)
{
    CountingTraceSink sink;
    PmemRuntime rt(hardwareOpts(), &sink);
    const uint32_t pool = rt.poolCreate("p", 1 << 20);
    const ObjectID oid = rt.pmalloc(pool, 64);

    sink.reset();
    ObjectRef ref = rt.deref(oid);
    EXPECT_EQ(sink.instructions, 0u);

    rt.read<uint64_t>(ref, 0);
    rt.write<uint64_t>(ref, 8, 5);
    EXPECT_EQ(sink.nvLoads, 1u);
    EXPECT_EQ(sink.nvStores, 1u);
    EXPECT_EQ(sink.loads, 0u);
    EXPECT_EQ(sink.stores, 0u);
}

TEST(Runtime, WideAccessesEmitOneEventPerWord)
{
    CountingTraceSink sink;
    PmemRuntime rt(hardwareOpts(), &sink);
    const uint32_t pool = rt.poolCreate("p", 1 << 20);
    const ObjectID oid = rt.pmalloc(pool, 256);
    ObjectRef ref = rt.deref(oid);

    std::vector<uint8_t> buf(100, 7);
    sink.reset();
    rt.writeBytes(ref, 0, buf.data(), buf.size());
    EXPECT_EQ(sink.nvStores, 13u); // ceil(100/8)
    sink.reset();
    rt.readBytes(ref, 0, buf.data(), buf.size());
    EXPECT_EQ(sink.nvLoads, 13u);
}

TEST(Runtime, PersistEmitsClwbPerLinePlusFence)
{
    CountingTraceSink sink;
    PmemRuntime rt(hardwareOpts(), &sink);
    const uint32_t pool = rt.poolCreate("p", 1 << 20);
    const ObjectID oid = rt.pmalloc(pool, 256);
    sink.reset();
    rt.persist(oid, 200); // 200 bytes from a 16-aligned offset
    const uint32_t lines = Pool::lineSpan(oid.offset(), 200);
    EXPECT_EQ(sink.clwbs, lines);
    EXPECT_EQ(sink.fences, 1u);
}

TEST(Runtime, TransactionalUpdateIsCrashAtomic)
{
    for (const auto &opts : {softwareOpts(), hardwareOpts()}) {
        PmemRuntime rt(opts);
        const uint32_t pool = rt.poolCreate("p", 1 << 20);
        const ObjectID oid = rt.pmalloc(pool, 64);
        ObjectRef ref = rt.deref(oid);
        rt.write<uint64_t>(ref, 0, 1);
        rt.persist(oid, 8);

        rt.txBegin(pool);
        rt.txAddRange(oid, 8);
        rt.write<uint64_t>(ref, 0, 2);
        // Crash before tx_end: must roll back to 1.
        rt.crashAndRecover();
        EXPECT_EQ(rt.read<uint64_t>(rt.deref(oid), 0), 1u);

        rt.txBegin(pool);
        rt.txAddRange(oid, 8);
        rt.write<uint64_t>(rt.deref(oid), 0, 2);
        rt.txEnd();
        rt.crashAndRecover();
        EXPECT_EQ(rt.read<uint64_t>(rt.deref(oid), 0), 2u);
    }
}

TEST(Runtime, TxPmallocRollsBackOnCrash)
{
    PmemRuntime rt(softwareOpts());
    const uint32_t pool = rt.poolCreate("p", 1 << 20);
    rt.txBegin(pool);
    const ObjectID obj = rt.txPmalloc(pool, 64);
    rt.crashAndRecover();
    EXPECT_FALSE(
        rt.registry().get(pool).alloc.isAllocated(obj.offset()));
}

TEST(Runtime, TxPfreeTakesEffectOnlyAtCommit)
{
    PmemRuntime rt(softwareOpts());
    const uint32_t pool = rt.poolCreate("p", 1 << 20);
    const ObjectID obj = rt.pmalloc(pool, 64);
    rt.txBegin(pool);
    rt.txPfree(obj);
    EXPECT_TRUE(rt.registry().get(pool).alloc.isAllocated(obj.offset()));
    rt.txEnd();
    EXPECT_FALSE(rt.registry().get(pool).alloc.isAllocated(obj.offset()));
}

TEST(Runtime, BaseAndOptProduceIdenticalDurableImages)
{
    // The two systems differ only in *how* translation happens; the
    // persistent state a program produces must be byte-identical.
    auto run = [](TranslationMode mode) {
        RuntimeOptions o;
        o.mode = mode;
        o.aslr_seed = 12345;
        PmemRuntime rt(o);
        const uint32_t pool = rt.poolCreate("p", 1 << 20);
        const ObjectID root = rt.poolRoot(pool, 64);
        rt.txBegin(pool);
        rt.txAddRange(root, 64);
        ObjectRef ref = rt.deref(root);
        for (uint32_t i = 0; i < 8; ++i)
            rt.write<uint64_t>(ref, 8 * i, 100 + i);
        const ObjectID extra = rt.txPmalloc(pool, 48);
        ObjectRef eref = rt.deref(extra);
        rt.write<uint64_t>(eref, 0, 777);
        rt.txAddRange(extra, 8);
        rt.txEnd();
        return rt.registry().get(pool).pool.durableImage();
    };
    EXPECT_EQ(run(TranslationMode::Software),
              run(TranslationMode::Hardware));
}

TEST(Runtime, NtxModeSkipsLibraryFlushEvents)
{
    RuntimeOptions o = hardwareOpts();
    o.durability = false;
    CountingTraceSink sink;
    PmemRuntime rt(o, &sink);
    const uint32_t pool = rt.poolCreate("p", 1 << 20);
    sink.reset();
    rt.pmalloc(pool, 64);
    EXPECT_EQ(sink.clwbs, 0u);
    EXPECT_EQ(sink.fences, 0u);
}

TEST(Runtime, PointerChaseTagsFlowThroughHandles)
{
    CountingTraceSink sink;
    PmemRuntime rt(hardwareOpts(), &sink);
    const uint32_t pool = rt.poolCreate("p", 1 << 20);
    const ObjectID a = rt.pmalloc(pool, 16);
    const ObjectID b = rt.pmalloc(pool, 16);
    rt.write<uint64_t>(rt.deref(a), 0, b.raw);

    const uint64_t next_raw = rt.read<uint64_t>(rt.deref(a), 0);
    const uint64_t tag = rt.lastLoadTag();
    EXPECT_NE(tag, kNoDep);
    ObjectRef bref = rt.deref(ObjectID(next_raw), tag);
    EXPECT_EQ(bref.dep_b, tag);
    EXPECT_EQ(rt.read<uint64_t>(bref, 0), 0u);
}

} // namespace
} // namespace poat
