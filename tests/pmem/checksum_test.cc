/**
 * @file
 * On-media header checksum tests, table-driven over every sealed
 * structure kind (PoolHeader, LogHeader, LogEntryHeader, BlockHeader):
 * every single-bit flip inside a structure's covered extent must fail
 * validation, reseal-after-update must round-trip, and the per-kind
 * seed choices must give a zeroed image the decoding each structure
 * needs. Also pins the MediaError diagnostic contract (pool, offset,
 * structure kind).
 */
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <string>

#include "pmem/alloc.h"
#include "pmem/checksum.h"
#include "pmem/pool.h"
#include "pmem/tx.h"

namespace poat {
namespace {

/**
 * Flip every bit of @p sealed in [0, covered_end) one at a time and
 * require @p valid to reject each flipped copy. Works on any standard-
 * layout on-media header.
 */
template <typename T, typename Valid>
void
expectEveryFlipDetected(const T &sealed, size_t covered_end, Valid valid)
{
    ASSERT_TRUE(valid(sealed));
    ASSERT_LE(covered_end, sizeof(T));
    for (size_t byte = 0; byte < covered_end; ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            T copy = sealed;
            reinterpret_cast<uint8_t *>(&copy)[byte] ^=
                static_cast<uint8_t>(1u << bit);
            EXPECT_FALSE(valid(copy))
                << "undetected flip at byte " << byte << " bit " << bit;
        }
    }
}

PoolHeader
samplePoolHeader()
{
    PoolHeader h{};
    h.magic = PoolHeader::kMagic;
    h.version = PoolHeader::kVersion;
    h.pool_id = 7;
    h.pool_size = 1 << 20;
    h.root_off = 4096;
    h.root_size = 128;
    h.heap_off = Pool::kHeaderSize;
    h.heap_size = (1 << 20) - Pool::kHeaderSize - Pool::kDefaultLogSize;
    h.log_off = (1 << 20) - Pool::kDefaultLogSize;
    h.log_size = Pool::kDefaultLogSize;
    h.seal();
    return h;
}

TEST(HeaderChecksums, PoolHeaderEveryFieldFlipDetected)
{
    const PoolHeader h = samplePoolHeader();
    // Everything up to and including the crc word is covered.
    expectEveryFlipDetected(
        h, offsetof(PoolHeader, crc) + sizeof(h.crc),
        [](const PoolHeader &x) { return x.crcValid(); });
}

TEST(HeaderChecksums, PoolHeaderPadIsCoveredByTheMirrorNotTheCrc)
{
    // The trailing pad sits after the crc and is not summed; flips
    // there are caught by the primary/mirror comparison instead (the
    // scrub resyncs whichever copy differs from the authoritative one).
    PoolHeader h = samplePoolHeader();
    h.pad ^= 1u;
    EXPECT_TRUE(h.crcValid());
}

TEST(HeaderChecksums, PoolHeaderFullValidityChecksMagicAndSize)
{
    PoolHeader h = samplePoolHeader();
    EXPECT_TRUE(h.valid(1 << 20));
    EXPECT_FALSE(h.valid(1 << 19)); // right crc, wrong image size
    h.magic = 0;
    h.seal();
    EXPECT_TRUE(h.crcValid());
    EXPECT_FALSE(h.valid(1 << 20)); // sealed garbage is still garbage
}

TEST(HeaderChecksums, LogHeaderEveryFieldFlipDetected)
{
    LogHeader h{};
    h.state = LogHeader::kActive;
    h.num_entries = 3;
    h.used = 160;
    h.seal();
    expectEveryFlipDetected(
        h, sizeof(LogHeader),
        [](const LogHeader &x) { return x.crcValid(); });
}

TEST(HeaderChecksums, ZeroedLogHeaderIsValidIdle)
{
    // Seed 0: a freshly zeroed log region decodes as a validly sealed
    // idle header — fresh pools have nothing to recover.
    LogHeader h{};
    EXPECT_TRUE(h.crcValid());
    EXPECT_EQ(h.state, LogHeader::kIdle);
}

TEST(HeaderChecksums, LogEntryHeaderEveryFieldFlipDetected)
{
    LogEntryHeader e{};
    e.type = LogEntryHeader::kData;
    e.payload_size = 48;
    e.target_off = 4096;
    e.alloc_size = 0;
    e.data_crc = 0x12345678;
    e.seal();
    // hdr_crc covers every preceding field including the pads, so the
    // whole 32-byte header is covered.
    expectEveryFlipDetected(
        e, sizeof(LogEntryHeader),
        [](const LogEntryHeader &x) { return x.hdrCrcValid(); });
}

TEST(HeaderChecksums, ZeroedLogEntryHeaderIsInvalid)
{
    // kCrcSeed is nonzero so zeroed media past the published entries
    // can never parse as a sealed entry.
    LogEntryHeader e{};
    EXPECT_FALSE(e.hdrCrcValid());
}

TEST(HeaderChecksums, BlockHeaderSealedWordFlipDetected)
{
    BlockHeader b{};
    b.size = 64;
    b.prev_size = 32;
    b.flags = BlockHeader::kAllocated;
    b.seal();
    // The sealed word (size, flags) must reject every flip...
    expectEveryFlipDetected(
        b, offsetof(BlockHeader, prev_size),
        [](const BlockHeader &x) { return x.crcValid(); });
    // ...and so must the crc itself.
    for (size_t byte = offsetof(BlockHeader, crc);
         byte < sizeof(BlockHeader); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            BlockHeader copy = b;
            reinterpret_cast<uint8_t *>(&copy)[byte] ^=
                static_cast<uint8_t>(1u << bit);
            EXPECT_FALSE(copy.crcValid())
                << "undetected flip at byte " << byte << " bit " << bit;
        }
    }
}

TEST(HeaderChecksums, BlockHeaderPrevSizeIsUnsealed)
{
    // prev_size is derivable redundancy, deliberately outside the
    // checksum: a torn neighbour update that only rewrote prev_size
    // must leave the header valid (the chain walk repairs the stale
    // value). This is what makes a bystander block's header
    // tear-proof — see BlockHeader's class comment.
    BlockHeader b{};
    b.size = 64;
    b.prev_size = 32;
    b.flags = BlockHeader::kAllocated;
    b.seal();
    BlockHeader stale = b;
    stale.prev_size = 4096;
    EXPECT_TRUE(stale.crcValid());
    EXPECT_EQ(stale.crc, b.crc);
}

TEST(HeaderChecksums, ZeroedBlockHeaderIsInvalid)
{
    // Seeded with kMagic: a fresh (never-written) heap header fails
    // validation, which is how the allocator detects an unformatted
    // heap instead of trusting garbage.
    BlockHeader b{};
    EXPECT_FALSE(b.crcValid());
}

TEST(HeaderChecksums, ResealAfterUpdateRoundTrips)
{
    // The incremental maintenance pattern every writer uses: mutate a
    // field, reseal, and the structure validates again with a new sum.
    BlockHeader b{};
    b.size = 64;
    b.prev_size = 0;
    b.flags = 0;
    b.seal();
    const uint32_t old_crc = b.crc;
    ASSERT_TRUE(b.crcValid());

    b.flags = BlockHeader::kAllocated;
    EXPECT_FALSE(b.crcValid());
    b.seal();
    EXPECT_TRUE(b.crcValid());
    EXPECT_NE(b.crc, old_crc);
}

TEST(HeaderChecksums, MediaErrorCarriesPreciseDiagnostics)
{
    const MediaError e("accounts", 4096, MediaStructure::BlockHeader,
                       "both copies corrupt");
    EXPECT_EQ(e.poolName(), "accounts");
    EXPECT_EQ(e.offset(), 4096u);
    EXPECT_EQ(e.kind(), MediaStructure::BlockHeader);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("accounts"), std::string::npos);
    EXPECT_NE(msg.find("4096"), std::string::npos);
    EXPECT_NE(msg.find("block header"), std::string::npos);
    EXPECT_NE(msg.find("both copies corrupt"), std::string::npos);
}

TEST(HeaderChecksums, StructureNamesAreStable)
{
    // These names appear in MediaError messages and operator-facing
    // tooling; renaming them is a user-visible change.
    EXPECT_STREQ(mediaStructureName(MediaStructure::Superblock),
                 "superblock");
    EXPECT_STREQ(mediaStructureName(MediaStructure::LogHeader),
                 "log header");
    EXPECT_STREQ(mediaStructureName(MediaStructure::LogEntry),
                 "log entry");
    EXPECT_STREQ(mediaStructureName(MediaStructure::BlockHeader),
                 "block header");
}

} // namespace
} // namespace poat
