/**
 * @file
 * Unit tests for the concurrency subsystem: deterministic scheduler,
 * two-phase lock manager with deadlock detection, transaction table,
 * group commit, and the engine's abort-retry loop.
 */
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "pmem/concurrent/engine.h"
#include "pmem/runtime.h"
#include "workloads/harness.h"

namespace poat {
namespace concurrent {
namespace {

/** The switch sequence (incoming worker ids) of one scheduled run. */
std::vector<uint32_t>
switchTrace(uint64_t seed, uint32_t nthreads, uint32_t yields_each)
{
    DetScheduler sched(seed, 3 /*max_quantum*/);
    std::vector<uint32_t> trace;
    sched.setSwitchHandler([&trace](uint32_t t) { trace.push_back(t); });
    sched.run(nthreads, [&sched, yields_each](uint32_t) {
        for (uint32_t i = 0; i < yields_each; ++i)
            sched.yield();
    });
    return trace;
}

TEST(DetScheduler, SameSeedSameSchedule)
{
    const auto a = switchTrace(17, 3, 40);
    const auto b = switchTrace(17, 3, 40);
    EXPECT_EQ(a, b);
    EXPECT_GT(a.size(), 3u); // first entries alone would be nthreads
}

TEST(DetScheduler, DifferentSeedsDifferentSchedules)
{
    EXPECT_NE(switchTrace(1, 3, 40), switchTrace(2, 3, 40));
}

TEST(DetScheduler, RunsEveryWorkerToCompletion)
{
    DetScheduler sched(5);
    std::vector<uint32_t> count(4, 0);
    sched.run(4, [&](uint32_t t) {
        for (uint32_t i = 0; i < 10; ++i) {
            ++count[t];
            sched.yield();
        }
    });
    for (uint32_t t = 0; t < 4; ++t)
        EXPECT_EQ(count[t], 10u);
    EXPECT_EQ(sched.yields(), 40u);
}

TEST(TxTable, CountsBeginsCommitsAbortsRetries)
{
    TxTable table(2);
    table.noteBegin(0, false);
    table.noteCommit(0);
    table.noteBegin(1, false);
    table.noteAbort(1);
    table.noteBegin(1, true);
    table.noteCommit(1);
    EXPECT_EQ(table.totalCommits(), 2u);
    EXPECT_EQ(table.totalAborts(), 1u);
    EXPECT_EQ(table.totalRetries(), 1u);
    EXPECT_EQ(table.slot(0).begins, 1u);
    EXPECT_EQ(table.slot(1).begins, 2u);
    EXPECT_EQ(table.slot(1).status, TxStatus::Committed);
}

TEST(LockManager, SharedCoexistsExclusiveConflicts)
{
    LockManager lm;
    EXPECT_TRUE(lm.tryAcquire(0, 7, LockMode::Shared));
    EXPECT_TRUE(lm.tryAcquire(1, 7, LockMode::Shared));
    EXPECT_FALSE(lm.tryAcquire(2, 7, LockMode::Exclusive));
    lm.release(0, 7);
    lm.release(1, 7);
    EXPECT_TRUE(lm.tryAcquire(2, 7, LockMode::Exclusive));
    EXPECT_FALSE(lm.tryAcquire(0, 7, LockMode::Shared));
    EXPECT_TRUE(lm.holds(2, 7));
    lm.releaseAll(2);
    EXPECT_EQ(lm.heldCount(2), 0u);
}

TEST(LockManager, ReacquireAndUpgradeWhenSoleHolder)
{
    LockManager lm;
    EXPECT_TRUE(lm.tryAcquire(0, 9, LockMode::Shared));
    // Re-acquiring a held lock (same or weaker mode) is a no-op.
    EXPECT_TRUE(lm.tryAcquire(0, 9, LockMode::Shared));
    EXPECT_EQ(lm.heldCount(0), 1u);
    // Sole holder upgrades in place; a peer's Shared must now conflict.
    EXPECT_TRUE(lm.tryAcquire(0, 9, LockMode::Exclusive));
    EXPECT_FALSE(lm.tryAcquire(1, 9, LockMode::Shared));
}

TEST(LockManager, DeadlockCycleAbortsTheRequester)
{
    // w0: lock A, yield, lock B; w1: lock B, yield, lock A. With a
    // quantum of 1 the schedule interleaves at every yield, so one
    // worker closes the waits-for cycle and must be the victim.
    LockManager lm;
    DetScheduler sched(1, 1 /*max_quantum*/);
    std::vector<uint32_t> victims;
    sched.run(2, [&](uint32_t t) {
        const uint64_t first = t == 0 ? 0xA : 0xB;
        const uint64_t second = t == 0 ? 0xB : 0xA;
        try {
            lm.acquire(t, first, LockMode::Exclusive, sched);
            sched.yield();
            lm.acquire(t, second, LockMode::Exclusive, sched);
        } catch (const DeadlockAbort &d) {
            EXPECT_EQ(d.worker(), t);
            victims.push_back(t);
        }
        lm.releaseAll(t); // commit or abort: strict 2PL unlock point
    });
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(lm.deadlocks(), 1u);
    EXPECT_EQ(lm.heldCount(0), 0u);
    EXPECT_EQ(lm.heldCount(1), 0u);
}

/** Two-worker engine fixture over a real runtime with two log slots. */
struct EngineHarness
{
    EngineHarness(uint64_t sched_seed, uint32_t commit_window,
                  uint32_t max_quantum = 1)
        : rt(options()), sched(sched_seed, max_quantum)
    {
        EngineOptions eo;
        eo.threads = 2;
        eo.commit_window = commit_window;
        eng.emplace(rt, sched, eo);
        pool = rt.poolCreate("p", 1 << 20);
        for (int i = 0; i < 2; ++i)
            obj[i] = rt.pmalloc(pool, 64);
    }

    static RuntimeOptions
    options()
    {
        RuntimeOptions o;
        o.log_slots = 2;
        return o;
    }

    PmemRuntime rt;
    DetScheduler sched;
    std::optional<ConcurrentEngine> eng;
    uint32_t pool = 0;
    ObjectID obj[2];
};

TEST(Engine, AbortRetryReleasesLocksAndStaysLive)
{
    EngineHarness h(1, 1);
    const uint32_t kTxPerWorker = 8;
    h.eng->run([&](uint32_t t) {
        for (uint32_t i = 0; i < kTxPerWorker; ++i) {
            h.eng->txRun([&] {
                // Opposite lock orders manufacture real deadlock
                // cycles; locks strictly before the undo transaction
                // (draw->lock->mutate), so DeadlockAbort never unwinds
                // an open TxScope.
                h.eng->lockExclusive(t == 0 ? 0xA : 0xB);
                h.eng->yield();
                h.eng->lockExclusive(t == 0 ? 0xB : 0xA);
                workloads::TxScope tx(h.rt, true);
                tx.addRange(h.obj[t], 8);
                ObjectRef ref = h.rt.deref(h.obj[t]);
                h.rt.write<uint64_t>(
                    ref, 0, h.rt.read<uint64_t>(ref, 0) + 1);
            });
            h.eng->yield();
        }
    });
    const EngineStats s = h.eng->stats();
    // Completion itself is the liveness property; every transaction
    // eventually commits despite deadlock aborts along the way.
    EXPECT_EQ(s.commits, 2 * kTxPerWorker);
    EXPECT_GE(s.aborts, 1u);
    EXPECT_EQ(s.aborts, s.retries);
    EXPECT_EQ(s.deadlocks, s.aborts);
    EXPECT_EQ(h.eng->locks().heldCount(0), 0u);
    EXPECT_EQ(h.eng->locks().heldCount(1), 0u);
    for (int t = 0; t < 2; ++t) {
        EXPECT_EQ(h.rt.read<uint64_t>(h.rt.deref(h.obj[t]), 0),
                  kTxPerWorker);
    }
}

TEST(Engine, GroupCommitBatchesFences)
{
    auto runWindow = [](uint32_t window) {
        EngineHarness h(3, window, 4);
        h.eng->run([&](uint32_t t) {
            for (uint32_t i = 0; i < 8; ++i) {
                h.eng->txRun([&] {
                    h.eng->lockExclusive(t);
                    workloads::TxScope tx(h.rt, true);
                    tx.addRange(h.obj[t], 8);
                    h.rt.write<uint64_t>(h.rt.deref(h.obj[t]), 0, i);
                });
                h.eng->yield();
            }
        });
        return h.eng->stats();
    };

    const EngineStats batched = runWindow(4);
    EXPECT_EQ(batched.commits, 16u);
    EXPECT_EQ(batched.gc_members, 16u);
    EXPECT_LE(batched.gc_windows, 5u); // 16 commits / window of 4 (+tail)
    EXPECT_GE(batched.gc_windows, 4u);
    EXPECT_GT(batched.fences_elided, 0u);

    const EngineStats unbatched = runWindow(1);
    EXPECT_EQ(unbatched.commits, 16u);
    EXPECT_EQ(unbatched.gc_members, 0u);
    EXPECT_EQ(unbatched.fences_elided, 0u);
}

TEST(Engine, RestoresWorkerZeroAfterRun)
{
    EngineHarness h(2, 1);
    h.eng->run([&](uint32_t t) {
        h.eng->txRun([&] {
            h.eng->lockExclusive(t);
            workloads::TxScope tx(h.rt, true);
            tx.addRange(h.obj[t], 8);
            h.rt.write<uint64_t>(h.rt.deref(h.obj[t]), 0, 1);
        });
    });
    // Subsequent single-threaded emission must land on worker 0's
    // context: a plain transaction works and uses slot 0.
    workloads::TxScope tx(h.rt, true);
    tx.addRange(h.obj[0], 8);
    h.rt.write<uint64_t>(h.rt.deref(h.obj[0]), 0, 2);
}

} // namespace
} // namespace concurrent
} // namespace poat
