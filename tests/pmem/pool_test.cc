/** @file Unit and property tests for Pool storage and durability. */
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "pmem/pool.h"

namespace poat {
namespace {

Pool
makePool(uint64_t size = 1 << 20)
{
    return Pool("p", 1, size);
}

TEST(Pool, FreshPoolHasSaneHeader)
{
    Pool p = makePool();
    const PoolHeader &h = p.header();
    EXPECT_EQ(h.magic, PoolHeader::kMagic);
    EXPECT_EQ(h.pool_id, 1u);
    EXPECT_EQ(h.pool_size, p.size());
    EXPECT_EQ(h.root_off, 0u);
    EXPECT_EQ(h.heap_off, Pool::kHeaderSize);
    EXPECT_EQ(h.heap_off + h.heap_size, h.log_off);
    EXPECT_EQ(h.log_off + h.log_size, p.size());
}

TEST(Pool, SizeIsClampedToMinimum)
{
    Pool p("tiny", 2, 16);
    EXPECT_GE(p.size(), Pool::kMinSize);
}

TEST(Pool, ReadBackWhatWasWritten)
{
    Pool p = makePool();
    const uint64_t v = 0xfeedfacecafebeefull;
    p.writeAs<uint64_t>(4096, v);
    EXPECT_EQ(p.readAs<uint64_t>(4096), v);
}

TEST(Pool, WritesAreNotDurableUntilFlushed)
{
    Pool p = makePool();
    p.writeAs<uint64_t>(4096, 77);
    p.crash();
    EXPECT_EQ(p.readAs<uint64_t>(4096), 0u);
}

TEST(Pool, PersistSurvivesCrash)
{
    Pool p = makePool();
    p.writeAs<uint64_t>(4096, 77);
    p.persist(4096, 8);
    p.writeAs<uint64_t>(4096, 88); // dirty again, not persisted
    p.crash();
    EXPECT_EQ(p.readAs<uint64_t>(4096), 77u);
}

TEST(Pool, ClwbWithoutFenceUnderStrictPolicyIsNotDurable)
{
    Pool p = makePool();
    p.setDurabilityPolicy(DurabilityPolicy::Strict);
    p.writeAs<uint64_t>(4096, 55);
    p.clwb(4096);
    p.crash(); // no fence: line may not have reached media
    EXPECT_EQ(p.readAs<uint64_t>(4096), 0u);
}

TEST(Pool, ClwbThenFenceUnderStrictPolicyIsDurable)
{
    Pool p = makePool();
    p.setDurabilityPolicy(DurabilityPolicy::Strict);
    p.writeAs<uint64_t>(4096, 55);
    p.clwb(4096);
    p.fence();
    p.crash();
    EXPECT_EQ(p.readAs<uint64_t>(4096), 55u);
}

TEST(Pool, StrictPolicyStoreAfterClwbReDirtiesLine)
{
    Pool p = makePool();
    p.setDurabilityPolicy(DurabilityPolicy::Strict);
    p.writeAs<uint64_t>(4096, 55);
    p.clwb(4096);
    p.writeAs<uint64_t>(4096, 66); // re-dirty before the fence
    p.fence();
    p.crash();
    // The line was unstaged by the second store, so nothing is durable.
    EXPECT_EQ(p.readAs<uint64_t>(4096), 0u);
}

TEST(Pool, EagerClwbIsImmediatelyDurable)
{
    Pool p = makePool();
    p.writeAs<uint64_t>(4096, 99);
    p.clwb(4096);
    p.crash();
    EXPECT_EQ(p.readAs<uint64_t>(4096), 99u);
}

TEST(Pool, PersistSpanningMultipleLines)
{
    Pool p = makePool();
    std::vector<uint8_t> buf(300, 0xab);
    p.writeRaw(4090, buf.data(), buf.size()); // straddles line boundaries
    p.persist(4090, buf.size());
    p.crash();
    std::vector<uint8_t> out(300);
    p.readRaw(4090, out.data(), out.size());
    EXPECT_EQ(out, buf);
}

TEST(Pool, LineSpanCounts)
{
    EXPECT_EQ(Pool::lineSpan(0, 0), 0u);
    EXPECT_EQ(Pool::lineSpan(0, 1), 1u);
    EXPECT_EQ(Pool::lineSpan(0, 64), 1u);
    EXPECT_EQ(Pool::lineSpan(0, 65), 2u);
    EXPECT_EQ(Pool::lineSpan(63, 2), 2u);
    EXPECT_EQ(Pool::lineSpan(60, 200), 5u);
}

TEST(Pool, DirtyLineTracking)
{
    Pool p = makePool();
    const size_t base = p.dirtyLineCount();
    p.writeAs<uint64_t>(8192, 1);
    EXPECT_EQ(p.dirtyLineCount(), base + 1);
    p.writeAs<uint64_t>(8192 + 8, 2); // same line
    EXPECT_EQ(p.dirtyLineCount(), base + 1);
    p.writeAs<uint64_t>(8192 + 64, 3); // next line
    EXPECT_EQ(p.dirtyLineCount(), base + 2);
    p.persist(8192, 128);
    EXPECT_EQ(p.dirtyLineCount(), base);
}

TEST(Pool, RandomEvictionMakesSomeLinesDurable)
{
    Pool p = makePool();
    Rng rng(3);
    for (uint32_t i = 0; i < 64; ++i)
        p.writeAs<uint64_t>(4096 + 64 * i, i + 1);
    p.evictRandomLines(rng, 1, 2); // ~half evicted
    p.crash();
    int durable = 0;
    for (uint32_t i = 0; i < 64; ++i)
        durable += (p.readAs<uint64_t>(4096 + 64 * i) == i + 1);
    EXPECT_GT(durable, 10);
    EXPECT_LT(durable, 54);
}

TEST(Pool, ReopenFromDurableImage)
{
    Pool p = makePool();
    p.writeAs<uint64_t>(5000, 1234);
    p.persist(5000, 8);
    Pool q("p", 1, p.durableImage());
    EXPECT_EQ(q.readAs<uint64_t>(5000), 1234u);
    EXPECT_EQ(q.header().pool_size, p.size());
}

TEST(Pool, VaddrAndOidHelpers)
{
    Pool p = makePool();
    p.setVbase(0x7000000000ull);
    EXPECT_EQ(p.vaddrOf(0x123), 0x7000000123ull);
    EXPECT_EQ(p.oidOf(0x123), ObjectID(1u, 0x123u));
}

/** Property: any interleaving of writes/evictions/crashes only ever
 *  exposes either the old or the new value of each 8-byte cell. */
TEST(Pool, CrashExposesOnlyOldOrNewValues)
{
    Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        Pool p = makePool(1 << 16);
        // Old values, fully persisted.
        for (uint32_t i = 0; i < 32; ++i)
            p.writeAs<uint64_t>(1024 + 8 * i, 1000 + i);
        p.persist(1024, 8 * 32);
        // New values, partially persisted via random eviction.
        for (uint32_t i = 0; i < 32; ++i)
            p.writeAs<uint64_t>(1024 + 8 * i, 2000 + i);
        p.evictRandomLines(rng, 1, 3);
        p.crash();
        for (uint32_t i = 0; i < 32; ++i) {
            const uint64_t v = p.readAs<uint64_t>(1024 + 8 * i);
            EXPECT_TRUE(v == 1000 + i || v == 2000 + i)
                << "cell " << i << " saw torn value " << v;
        }
    }
}

TEST(Pool, DurableViewIsZeroCopyAndMatchesImage)
{
    Pool p = makePool();
    p.writeAs<uint64_t>(4096, 0xfeedfacecafebeefull);
    p.persist(4096, 8);

    const std::vector<uint8_t> &view = p.durableView();
    EXPECT_EQ(&view, &p.durableView()) << "durableView must not copy";
    EXPECT_EQ(p.durableImage(), view);

    uint64_t v = 0;
    std::memcpy(&v, view.data() + 4096, 8);
    EXPECT_EQ(v, 0xfeedfacecafebeefull);

    // The reference stays live and tracks later write-backs.
    p.writeAs<uint64_t>(4096, 7);
    p.persist(4096, 8);
    std::memcpy(&v, view.data() + 4096, 8);
    EXPECT_EQ(v, 7u);
    EXPECT_EQ(p.durableImage(), view);
}

} // namespace
} // namespace poat
