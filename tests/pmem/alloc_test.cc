/** @file Unit and property tests for the in-pool allocator. */
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "pmem/alloc.h"
#include "pmem/pool.h"

namespace poat {
namespace {

struct Fixture
{
    explicit Fixture(uint64_t size = 1 << 20) : pool("p", 1, size) {}
    Pool pool;
};

TEST(Alloc, FreshHeapIsOneFreeBlock)
{
    Fixture f;
    PoolAllocator a(f.pool);
    EXPECT_EQ(a.freeBlockCount(), 1u);
    EXPECT_EQ(a.freeBytes(), f.pool.header().heap_size);
    EXPECT_TRUE(a.validate());
}

TEST(Alloc, AllocReturnsAlignedNonOverlappingBlocks)
{
    Fixture f;
    PoolAllocator a(f.pool);
    std::vector<std::pair<uint32_t, uint32_t>> blocks;
    for (int i = 0; i < 100; ++i) {
        const uint32_t sz = 24 + 8 * (i % 5);
        const uint32_t off = a.alloc(sz);
        ASSERT_NE(off, 0u);
        EXPECT_EQ(off % PoolAllocator::kAlign, 0u);
        for (const auto &[o, s] : blocks) {
            EXPECT_TRUE(off + sz <= o || o + s <= off)
                << "blocks overlap";
        }
        blocks.emplace_back(off, sz);
    }
    EXPECT_TRUE(a.validate());
}

TEST(Alloc, PayloadSizeCoversRequest)
{
    Fixture f;
    PoolAllocator a(f.pool);
    const uint32_t off = a.alloc(100);
    EXPECT_GE(a.blockPayloadSize(off), 100u);
}

TEST(Alloc, FreeMakesSpaceReusable)
{
    Fixture f;
    PoolAllocator a(f.pool);
    const uint64_t before = a.freeBytes();
    const uint32_t off = a.alloc(128);
    EXPECT_LT(a.freeBytes(), before);
    a.free(off);
    EXPECT_EQ(a.freeBytes(), before);
    EXPECT_TRUE(a.validate());
}

TEST(Alloc, FreeCoalescesWithBothNeighbors)
{
    Fixture f;
    PoolAllocator a(f.pool);
    const uint32_t x = a.alloc(64);
    const uint32_t y = a.alloc(64);
    const uint32_t z = a.alloc(64);
    (void)z;
    a.free(x);
    a.free(z);
    // Freeing y must merge x|y|z plus the trailing free region.
    a.free(y);
    EXPECT_EQ(a.freeBlockCount(), 1u);
    EXPECT_TRUE(a.validate());
}

TEST(Alloc, IsAllocatedTracksState)
{
    Fixture f;
    PoolAllocator a(f.pool);
    const uint32_t off = a.alloc(48);
    EXPECT_TRUE(a.isAllocated(off));
    a.free(off);
    EXPECT_FALSE(a.isAllocated(off));
    EXPECT_FALSE(a.isAllocated(4)); // outside heap
}

TEST(Alloc, ExhaustionReturnsZero)
{
    Fixture f(Pool::kMinSize);
    PoolAllocator a(f.pool);
    EXPECT_EQ(a.alloc(1 << 20), 0u);
    // And the heap is still usable afterwards.
    EXPECT_NE(a.alloc(64), 0u);
    EXPECT_TRUE(a.validate());
}

TEST(Alloc, ManySmallAllocationsUntilFull)
{
    Fixture f(Pool::kMinSize + 16 * 1024);
    PoolAllocator a(f.pool);
    int count = 0;
    while (a.alloc(32) != 0)
        ++count;
    EXPECT_GT(count, 100);
    EXPECT_TRUE(a.validate());
}

TEST(Alloc, SurvivesReopenFromDurableImage)
{
    Fixture f;
    PoolAllocator a(f.pool);
    const uint32_t keep = a.alloc(64);
    const uint32_t drop = a.alloc(64);
    a.free(drop);

    Pool reopened("p", 1, f.pool.durableImage());
    PoolAllocator b(reopened);
    EXPECT_TRUE(b.validate());
    EXPECT_TRUE(b.isAllocated(keep));
    EXPECT_FALSE(b.isAllocated(drop));
    EXPECT_EQ(b.freeBytes(), a.freeBytes());
}

TEST(Alloc, AllocatorStateIsDurableWithoutExplicitPersist)
{
    Fixture f;
    PoolAllocator a(f.pool);
    const uint32_t off = a.alloc(64);
    f.pool.crash(); // allocator metadata persists inside alloc()
    PoolAllocator b(f.pool);
    EXPECT_TRUE(b.validate());
    EXPECT_TRUE(b.isAllocated(off));
}

/** Parameterized property test: random alloc/free against a shadow
 *  model, with periodic reopen-from-durable checks. */
class AllocProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(AllocProperty, RandomOpsMatchShadowModel)
{
    Rng rng(GetParam());
    Pool pool("p", 1, 1 << 20);
    PoolAllocator a(pool);

    // Shadow: payload offset -> (size, fill byte).
    std::map<uint32_t, std::pair<uint32_t, uint8_t>> shadow;
    std::vector<uint32_t> live;

    for (int step = 0; step < 2000; ++step) {
        const bool do_alloc = live.empty() || rng.chance(3, 5);
        if (do_alloc) {
            const uint32_t sz =
                static_cast<uint32_t>(rng.range(1, 256));
            const uint32_t off = a.alloc(sz);
            if (off == 0)
                continue; // full; keep going with frees
            const uint8_t fill = static_cast<uint8_t>(off * 31 + sz);
            std::vector<uint8_t> buf(sz, fill);
            pool.writeRaw(off, buf.data(), sz);
            shadow.emplace(off, std::make_pair(sz, fill));
            live.push_back(off);
        } else {
            const size_t idx = rng.below(live.size());
            const uint32_t off = live[idx];
            // Contents of other live blocks must be untouched: check
            // this block before freeing it.
            const auto &[sz, fill] = shadow.at(off);
            std::vector<uint8_t> buf(sz);
            pool.readRaw(off, buf.data(), sz);
            for (uint8_t b : buf)
                ASSERT_EQ(b, fill) << "block contents corrupted";
            a.free(off);
            shadow.erase(off);
            live[idx] = live.back();
            live.pop_back();
        }
        if (step % 500 == 499) {
            ASSERT_TRUE(a.validate());
            // Reopen from durable image: all live blocks still there.
            Pool re("p", 1, pool.durableImage());
            PoolAllocator b(re);
            ASSERT_TRUE(b.validate());
            for (const auto &kv : shadow)
                ASSERT_TRUE(b.isAllocated(kv.first));
        }
    }
    ASSERT_TRUE(a.validate());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Alloc, DeferredPersistLeavesDurableHeapUntouched)
{
    // alloc(size, false) must not touch durable media: tx_pmalloc
    // relies on this to order the undo record before the allocation.
    Pool pool("p", 1, 1 << 20);
    PoolAllocator alloc(pool);
    const uint32_t a = alloc.alloc(64, /*persist_now=*/false);
    ASSERT_NE(a, 0u);
    EXPECT_TRUE(alloc.isAllocated(a)); // volatile view sees it

    pool.crash();
    alloc.rescan();
    EXPECT_FALSE(alloc.isAllocated(a)) << "allocation leaked to media";
    EXPECT_TRUE(alloc.validate());

    // persistTouched() completes the allocation durably.
    const uint32_t b = alloc.alloc(64, /*persist_now=*/false);
    alloc.persistTouched();
    pool.crash();
    alloc.rescan();
    EXPECT_TRUE(alloc.isAllocated(b));
    EXPECT_TRUE(alloc.validate());
}

TEST(Alloc, StaleAbsorbedHeaderIsNotAllocated)
{
    // Freeing a block that coalesces into its previous neighbour
    // rewrites the surviving merged header — and must POISON the
    // absorbed block's old header bytes: a crc-valid allocated header
    // surviving inside a free extent fools both isAllocated (recovery
    // uses it to decide whether a logged alloc/free already took
    // effect) and, worse, scrub's extent reconstruction after a torn
    // fence drain, which can resurrect the stale bytes as a live
    // allocation no log record covers (a permanent leak — found by the
    // reorder explorer, LHT:8:1:139:r01:S:t1:n3).
    Pool pool("p", 1, 1 << 20);
    PoolAllocator alloc(pool);
    const uint32_t a = alloc.alloc(32);
    const uint32_t b = alloc.alloc(32);
    const uint32_t c = alloc.alloc(32); // guard: keeps b's region bounded
    ASSERT_NE(c, 0u);

    alloc.free(a);
    alloc.free(b); // merges into a's free block, absorbing b's header
    BlockHeader stale{};
    pool.readRaw(b - static_cast<uint32_t>(sizeof(BlockHeader)), &stale,
                 sizeof(stale));
    EXPECT_FALSE(stale.crcValid())
        << "the absorbed header must be poisoned, not left readable";
    EXPECT_EQ(stale.size, 0u);
    EXPECT_EQ(stale.flags, 0u);

    EXPECT_FALSE(alloc.isAllocated(b));
    EXPECT_TRUE(alloc.isAllocated(c));
    EXPECT_TRUE(alloc.validate());
}

TEST(Alloc, RebuildSweepsStaleHeadersOutOfFreeExtents)
{
    // The poison fence can be lost in a crash between the merged
    // header's persist and the poison's persist. The next pool open
    // must sweep free-extent interiors and finish the job, so scrub's
    // back-link scan never again meets the stale bytes.
    Pool pool("p", 1, 1 << 20);
    PoolAllocator alloc(pool);
    const uint32_t a = alloc.alloc(32);
    const uint32_t b = alloc.alloc(32);
    const uint32_t c = alloc.alloc(32);
    ASSERT_NE(c, 0u);
    alloc.free(a);

    // Forge the lost-poison state: re-plant b's pre-free header bytes
    // inside what free(b) turns into a's merged free extent.
    const uint32_t b_hdr = b - static_cast<uint32_t>(sizeof(BlockHeader));
    BlockHeader old_b{};
    pool.readRaw(b_hdr, &old_b, sizeof(old_b));
    alloc.free(b);
    pool.writeRaw(b_hdr, &old_b, sizeof(old_b));
    pool.persist(b_hdr, sizeof(old_b));

    alloc.rescan();
    BlockHeader swept{};
    pool.readRaw(b_hdr, &swept, sizeof(swept));
    EXPECT_FALSE(swept.crcValid());
    EXPECT_EQ(swept.size, 0u);
    EXPECT_FALSE(alloc.isAllocated(b));
    EXPECT_TRUE(alloc.isAllocated(c));
    EXPECT_TRUE(alloc.validate());
}

} // namespace
} // namespace poat
