/** @file Tests for file-backed pool export/import. */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "pmem/runtime.h"

namespace poat {
namespace {

std::string
tmpPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

TEST(ExportImport, RoundTripsPoolContents)
{
    const std::string path = tmpPath("poat_roundtrip.pool");

    // Producer process: build and export.
    {
        PmemRuntime rt;
        const uint32_t pool = rt.poolCreate("src", 1 << 20);
        const ObjectID root = rt.poolRoot(pool, 32);
        ObjectRef r = rt.deref(root);
        rt.write<uint64_t>(r, 0, 0xfeedface);
        rt.write<uint64_t>(r, 8, 0xcafe);
        rt.persist(root, 16);
        rt.registry().exportPool("src", path);
    }

    // Consumer process: import under a new name and read back.
    {
        PmemRuntime rt;
        rt.registry().importPool("dst", path);
        const uint32_t pool = rt.poolOpen("dst");
        const ObjectID root = rt.poolRoot(pool, 32);
        ObjectRef r = rt.deref(root);
        EXPECT_EQ(rt.read<uint64_t>(r, 0), 0xfeedfaceu);
        EXPECT_EQ(rt.read<uint64_t>(r, 8), 0xcafeu);
    }
    std::remove(path.c_str());
}

TEST(ExportImport, ExportReflectsOnlyDurableState)
{
    const std::string path = tmpPath("poat_durable.pool");
    PmemRuntime rt;
    const uint32_t pool = rt.poolCreate("src", 1 << 20);
    const ObjectID root = rt.poolRoot(pool, 16);
    rt.write<uint64_t>(rt.deref(root), 0, 111);
    rt.persist(root, 8);
    rt.write<uint64_t>(rt.deref(root), 0, 222); // dirty, not flushed
    rt.registry().exportPool("src", path);

    PmemRuntime rt2;
    rt2.registry().importPool("dst", path);
    const uint32_t p2 = rt2.poolOpen("dst");
    EXPECT_EQ(rt2.read<uint64_t>(rt2.deref(rt2.poolRoot(p2, 16)), 0),
              111u);
    std::remove(path.c_str());
}

TEST(ExportImport, ImportRunsLogRecovery)
{
    const std::string path = tmpPath("poat_recovery.pool");
    {
        PmemRuntime rt;
        const uint32_t pool = rt.poolCreate("src", 1 << 20);
        const ObjectID root = rt.poolRoot(pool, 16);
        rt.write<uint64_t>(rt.deref(root), 0, 1);
        rt.persist(root, 8);
        rt.txBegin(pool);
        rt.txAddRange(root, 8);
        rt.write<uint64_t>(rt.deref(root), 0, 2);
        rt.persist(root, 8);
        // Export mid-transaction: the image carries an ACTIVE log.
        rt.registry().exportPool("src", path);
    }
    PmemRuntime rt;
    rt.registry().importPool("dst", path);
    const uint32_t pool = rt.poolOpen("dst"); // recovery rolls back
    EXPECT_EQ(rt.read<uint64_t>(rt.deref(rt.poolRoot(pool, 16)), 0), 1u);
    std::remove(path.c_str());
}

TEST(ExportImport, ClosedPoolCanBeExported)
{
    const std::string path = tmpPath("poat_closed.pool");
    PmemRuntime rt;
    const uint32_t pool = rt.poolCreate("src", 1 << 20);
    const ObjectID root = rt.poolRoot(pool, 16);
    rt.write<uint64_t>(rt.deref(root), 0, 77);
    rt.poolClose(pool); // close flushes
    rt.registry().exportPool("src", path);

    PmemRuntime rt2;
    rt2.registry().importPool("dst", path);
    const uint32_t p2 = rt2.poolOpen("dst");
    EXPECT_EQ(rt2.read<uint64_t>(rt2.deref(rt2.poolRoot(p2, 16)), 0),
              77u);
    std::remove(path.c_str());
}

} // namespace
} // namespace poat
