/** @file Unit tests for the ASLR-style address space allocator. */
#include <gtest/gtest.h>

#include <vector>

#include "pmem/addrspace.h"

namespace poat {
namespace {

TEST(AddressSpace, RegionsArePageAligned)
{
    AddressSpace as(1);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(as.mapRandom(12345) % kPageSize, 0u);
}

TEST(AddressSpace, RegionsNeverOverlap)
{
    AddressSpace as(2);
    std::vector<std::pair<uint64_t, uint64_t>> regions;
    for (int i = 0; i < 200; ++i) {
        const uint64_t size = kPageSize * (1 + i % 7);
        const uint64_t base = as.mapRandom(size);
        for (const auto &[b, s] : regions) {
            EXPECT_TRUE(base + size <= b || b + s <= base)
                << "overlap at iteration " << i;
        }
        regions.emplace_back(base, size);
    }
    EXPECT_EQ(as.regionCount(), 200u);
}

TEST(AddressSpace, SameSeedSamePlacement)
{
    AddressSpace a(7), b(7);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(a.mapRandom(kPageSize), b.mapRandom(kPageSize));
}

TEST(AddressSpace, DifferentSeedsDifferentPlacement)
{
    AddressSpace a(7), b(8);
    int same = 0;
    for (int i = 0; i < 20; ++i)
        same += (a.mapRandom(kPageSize) == b.mapRandom(kPageSize));
    EXPECT_LT(same, 2);
}

TEST(AddressSpace, ContainsTracksLiveRegions)
{
    AddressSpace as(3);
    const uint64_t base = as.mapRandom(2 * kPageSize);
    EXPECT_TRUE(as.contains(base));
    EXPECT_TRUE(as.contains(base + 2 * kPageSize - 1));
    EXPECT_FALSE(as.contains(base + 2 * kPageSize));
    as.unmap(base);
    EXPECT_FALSE(as.contains(base));
    EXPECT_EQ(as.regionCount(), 0u);
}

TEST(AddressSpace, UnmappedRangeCanBeReused)
{
    AddressSpace as(4);
    // Unmap and re-map many times: the allocator must not leak ranges.
    for (int i = 0; i < 1000; ++i) {
        const uint64_t base = as.mapRandom(1 << 20);
        as.unmap(base);
    }
    EXPECT_EQ(as.regionCount(), 0u);
}

} // namespace
} // namespace poat
