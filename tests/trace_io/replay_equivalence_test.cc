/**
 * @file
 * End-to-end replay fidelity: for every workload in both translation
 * modes, a capture-then-replay run must be bit-identical to a live run
 * — every MachineMetrics field, the CPI stack, the workload
 * outcome, and the complete serialized stats JSON. This is the
 * property that lets driver::runSweep substitute replays for repeated
 * functional execution without changing any reported number.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>

#include "driver/experiment.h"
#include "trace_io/itrace.h"

namespace poat {
namespace driver {
namespace {

std::string
tmpDir()
{
    static const std::string dir = [] {
        std::string d = testing::TempDir() + "replay_equiv." +
            std::to_string(::getpid());
        std::filesystem::create_directories(d);
        return d;
    }();
    return dir;
}

ExperimentConfig
tinyCfg(const std::string &wl, TranslationMode mode)
{
    ExperimentConfig c;
    c.workload = wl;
    c.pattern = workloads::PoolPattern::Random;
    c.scale_pct = 5;
    c.tpcc_scale_pct = 1;
    c.tpcc_txns = 25;
    c.mode = mode;
    return c;
}

std::string
statsJson(const ExperimentResult &res)
{
    std::ostringstream os;
    res.stats.dumpJson(os);
    return os.str();
}

void
expectIdentical(const ExperimentResult &a, const ExperimentResult &b,
                const std::string &what)
{
    const sim::MachineMetrics &ma = a.metrics, &mb = b.metrics;
    EXPECT_EQ(ma.cycles, mb.cycles) << what;
    EXPECT_EQ(ma.instructions, mb.instructions) << what;
    EXPECT_EQ(ma.loads, mb.loads) << what;
    EXPECT_EQ(ma.stores, mb.stores) << what;
    EXPECT_EQ(ma.nv_loads, mb.nv_loads) << what;
    EXPECT_EQ(ma.nv_stores, mb.nv_stores) << what;
    EXPECT_EQ(ma.clwbs, mb.clwbs) << what;
    EXPECT_EQ(ma.fences, mb.fences) << what;
    EXPECT_EQ(ma.polb_hits, mb.polb_hits) << what;
    EXPECT_EQ(ma.polb_misses, mb.polb_misses) << what;
    EXPECT_EQ(ma.polb_evictions, mb.polb_evictions) << what;
    EXPECT_EQ(ma.tlb_misses, mb.tlb_misses) << what;
    EXPECT_EQ(ma.l1d_misses, mb.l1d_misses) << what;
    EXPECT_EQ(ma.branch_mispredicts, mb.branch_mispredicts) << what;
    EXPECT_EQ(ma.pot_walks, mb.pot_walks) << what;
    EXPECT_EQ(ma.pot_walk_probes, mb.pot_walk_probes) << what;

    // The whole CPI stack, component by component.
    for (size_t i = 0; i < kCpiComponents; ++i) {
        const auto comp = static_cast<CpiComponent>(i);
        EXPECT_EQ(a.cpi[comp], b.cpi[comp])
            << what << " cpi." << cpiComponentName(comp);
    }
    EXPECT_EQ(a.cpi.total(), a.metrics.cycles) << what;

    EXPECT_EQ(a.workload_checksum, b.workload_checksum) << what;
    EXPECT_EQ(a.workload_operations, b.workload_operations) << what;
    EXPECT_EQ(a.translate_calls, b.translate_calls) << what;
    EXPECT_EQ(a.translate_misses, b.translate_misses) << what;
    EXPECT_EQ(a.translate_insns_per_call, b.translate_insns_per_call)
        << what;

    // The full hierarchical stats dump — every counter, histogram, and
    // formula — must serialize byte-for-byte identically.
    EXPECT_EQ(statsJson(a), statsJson(b)) << what;
}

class ReplayEquivalence
    : public testing::TestWithParam<std::tuple<std::string, bool>>
{
};

TEST_P(ReplayEquivalence, CaptureThenReplayIsBitIdentical)
{
    const std::string wl = std::get<0>(GetParam());
    const TranslationMode mode = std::get<1>(GetParam())
        ? TranslationMode::Hardware
        : TranslationMode::Software;
    const ExperimentConfig cfg = tinyCfg(wl, mode);
    const std::string path = tmpDir() + "/" + wl + "." +
        (std::get<1>(GetParam()) ? "hw" : "sw") + ".itrace";

    const ExperimentResult live = detail::runExperimentLive(cfg);
    const ExperimentResult captured =
        detail::runExperimentCaptured(cfg, path);
    const ExperimentResult replayed =
        detail::runExperimentReplayed(cfg, path);

    // Recording must be transparent to the machine...
    expectIdentical(live, captured, wl + " live vs captured");
    // ...and replaying must reproduce the run without executing it.
    expectIdentical(live, replayed, wl + " live vs replayed");
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ReplayEquivalence,
    testing::Combine(testing::Values("LL", "BST", "SPS", "RBT", "BT",
                                     "B+T", "TPCC"),
                     testing::Bool()),
    [](const testing::TestParamInfo<ReplayEquivalence::ParamType> &info) {
        std::string name = std::get<0>(info.param) +
            (std::get<1>(info.param) ? "_Hardware" : "_Software");
        for (char &c : name)
            if (c == '+')
                c = 'p';
        return name;
    });

TEST(ReplayErrors, WrongFingerprintThrows)
{
    const ExperimentConfig cfg = tinyCfg("LL", TranslationMode::Hardware);
    const std::string path = tmpDir() + "/fpr_mismatch.itrace";
    detail::runExperimentCaptured(cfg, path);

    // Same trace, different functional config: the replayer must
    // refuse rather than report numbers for the wrong experiment.
    ExperimentConfig other = cfg;
    other.seed = cfg.seed + 1;
    try {
        detail::runExperimentReplayed(other, path);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("fingerprint mismatch"),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(ReplayErrors, TruncatedFileThrows)
{
    const ExperimentConfig cfg = tinyCfg("LL", TranslationMode::Hardware);
    const std::string path = tmpDir() + "/truncated.itrace";
    detail::runExperimentCaptured(cfg, path);

    std::string bytes;
    {
        std::ifstream f(path, std::ios::binary);
        std::ostringstream ss;
        ss << f.rdbuf();
        bytes = ss.str();
    }
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size() * 3 / 4));
    }
    EXPECT_THROW(detail::runExperimentReplayed(cfg, path),
                 std::runtime_error);
    std::remove(path.c_str());
}

TEST(ReplayErrors, CorruptedRecordThrows)
{
    const ExperimentConfig cfg = tinyCfg("BST", TranslationMode::Software);
    const std::string path = tmpDir() + "/corrupt.itrace";
    detail::runExperimentCaptured(cfg, path);

    // Flip one byte in the middle of the record region.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(0, std::ios::end);
    const std::streamoff mid = static_cast<std::streamoff>(f.tellg()) / 2;
    f.seekg(mid);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x20);
    f.seekp(mid);
    f.write(&byte, 1);
    f.close();

    EXPECT_THROW(detail::runExperimentReplayed(cfg, path),
                 std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceCache, RunExperimentPopulatesAndReusesTheCache)
{
    // End-to-end through the public entry point: first run captures,
    // second run replays, both match an uncached run exactly.
    ExperimentConfig cfg = tinyCfg("SPS", TranslationMode::Hardware);
    const ExperimentResult plain = runExperiment(cfg);

    cfg.trace_cache = tmpDir() + "/cache";
    const std::string path = traceCachePath(cfg);

    const ExperimentResult first = runExperiment(cfg);
    EXPECT_TRUE(
        trace_io::TraceReplayer::matches(path, traceFingerprint(cfg)));
    const ExperimentResult second = runExperiment(cfg);

    expectIdentical(plain, first, "uncached vs capturing");
    expectIdentical(plain, second, "uncached vs replaying");
    std::filesystem::remove_all(cfg.trace_cache);
}

TEST(TraceCache, FingerprintSeparatesFunctionalKnobs)
{
    const ExperimentConfig base = tinyCfg("LL", TranslationMode::Software);

    auto changed = [&](auto mutate) {
        ExperimentConfig c = base;
        mutate(c);
        return traceFingerprint(c);
    };

    const std::string fpr = traceFingerprint(base);
    EXPECT_NE(fpr, changed([](ExperimentConfig &c) { c.seed = 7; }));
    EXPECT_NE(fpr, changed([](ExperimentConfig &c) { c.scale_pct = 6; }));
    EXPECT_NE(fpr, changed([](ExperimentConfig &c) {
                  c.mode = TranslationMode::Hardware;
              }));
    EXPECT_NE(fpr, changed([](ExperimentConfig &c) {
                  c.transactions = false;
              }));
    EXPECT_NE(fpr, changed([](ExperimentConfig &c) {
                  c.base_predictor = false;
              }));
    EXPECT_NE(fpr, changed([](ExperimentConfig &c) {
                  c.pattern = workloads::PoolPattern::Each;
              }));

    // Timing-only knobs must NOT change the fingerprint: the whole
    // point is sharing one trace across machine variants.
    EXPECT_EQ(fpr, changed([](ExperimentConfig &c) {
                  c.machine.polb_entries = 1;
              }));
    EXPECT_EQ(fpr, changed([](ExperimentConfig &c) {
                  c.machine.core = sim::CoreType::OutOfOrder;
              }));
    EXPECT_EQ(fpr, changed([](ExperimentConfig &c) {
                  c.machine.ideal_translation = true;
              }));
    EXPECT_EQ(fpr, changed([](ExperimentConfig &c) {
                  c.label = "renamed";
              }));
}

} // namespace
} // namespace driver
} // namespace poat
