/**
 * @file
 * Unit tests for the poat-itrace v1 format: varint coding, recorder /
 * replayer roundtrips, dep-tag canonicalization, and the required
 * failure modes (every malformed file must raise std::runtime_error
 * with a descriptive message, never UB).
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "trace_io/itrace.h"

namespace poat {
namespace trace_io {
namespace {

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "itrace_test." + name + "." +
        std::to_string(::getpid()) + ".itrace";
}

/** Sink that journals every call (with deps) as one line of text. */
class JournalSink : public TraceSink
{
  public:
    /**
     * Tags handed out for load-like events. Deliberately NOT dense
     * sequence numbers: start + stride mimic a core model whose tags
     * are uop sequence numbers, so canonicalization is actually
     * exercised.
     */
    JournalSink(uint64_t start, uint64_t stride)
        : next_(start), stride_(stride)
    {}

    std::vector<std::string> lines;

    void
    alu(uint32_t count, uint64_t dep) override
    {
        add("alu " + std::to_string(count) + " d" + rel(dep));
    }

    void
    branch(bool taken, uint64_t pc, uint64_t dep) override
    {
        add("branch " + std::to_string(taken) + " " +
            std::to_string(pc) + " d" + rel(dep));
    }

    uint64_t
    load(uint64_t vaddr, uint64_t dep, uint64_t dep2) override
    {
        add("load " + std::to_string(vaddr) + " d" + rel(dep) + " d" +
            rel(dep2));
        return issue();
    }

    void
    store(uint64_t vaddr, uint64_t dep) override
    {
        add("store " + std::to_string(vaddr) + " d" + rel(dep));
    }

    uint64_t
    nvLoad(ObjectID oid, uint64_t dep, uint64_t dep2) override
    {
        add("nvLoad " + std::to_string(oid.raw) + " d" + rel(dep) +
            " d" + rel(dep2));
        return issue();
    }

    void
    nvStore(ObjectID oid, uint64_t dep) override
    {
        add("nvStore " + std::to_string(oid.raw) + " d" + rel(dep));
    }

    void clwb(uint64_t vaddr) override
    {
        add("clwb " + std::to_string(vaddr));
    }

    void nvClwb(ObjectID oid) override
    {
        add("nvClwb " + std::to_string(oid.raw));
    }

    void fence() override { add("fence"); }

    void
    poolMapped(uint32_t pool_id, uint64_t vbase, uint64_t size) override
    {
        add("poolMapped " + std::to_string(pool_id) + " " +
            std::to_string(vbase) + " " + std::to_string(size));
    }

    void
    poolUnmapped(uint32_t pool_id) override
    {
        add("poolUnmapped " + std::to_string(pool_id));
    }

    void swTranslateBegin() override { add("swTranslateBegin"); }
    void swTranslateEnd() override { add("swTranslateEnd"); }

  private:
    void add(std::string s) { lines.push_back(std::move(s)); }

    uint64_t
    issue()
    {
        issued_.push_back(next_);
        const uint64_t tag = next_;
        next_ += stride_;
        return tag;
    }

    /**
     * Render a dep tag relative to this sink's own issue order ("#3" =
     * my third load), so journals from sinks with different tag
     * schemes compare equal exactly when the dependence structure is
     * preserved.
     */
    std::string
    rel(uint64_t dep) const
    {
        if (dep == kNoDep)
            return "0";
        for (size_t i = 0; i < issued_.size(); ++i)
            if (issued_[i] == dep)
                return "#" + std::to_string(i + 1);
        return "?" + std::to_string(dep);
    }

    uint64_t next_;
    uint64_t stride_;
    std::vector<uint64_t> issued_;
};

/** Drive a fixed little scenario against any sink, chaining deps. */
void
runScenario(TraceSink &sink)
{
    sink.poolMapped(1, 0x7000'0000'0000ull, 1 << 20);
    sink.alu(3, kNoDep);
    const uint64_t a = sink.load(0x1000, kNoDep, kNoDep);
    const uint64_t b = sink.load(0x2000, a, kNoDep);
    sink.alu(1, b);
    sink.branch(true, 42, b);
    sink.store(0x3000, a);
    const uint64_t c = sink.nvLoad(ObjectID(1, 0x40), b, a);
    sink.nvStore(ObjectID(1, 0x80), c);
    sink.clwb(0x3000);
    sink.nvClwb(ObjectID(1, 0x80));
    sink.swTranslateBegin();
    const uint64_t d = sink.load(0x4000, c, kNoDep);
    sink.alu(2, d);
    sink.swTranslateEnd();
    sink.fence();
    sink.poolUnmapped(1);
}

constexpr uint64_t kScenarioEvents = 17;

TEST(Varint, RoundtripsEdgeValues)
{
    const uint64_t values[] = {0,
                               1,
                               0x7f,
                               0x80,
                               0x3fff,
                               0x4000,
                               1ull << 32,
                               (1ull << 63) - 1,
                               ~0ull};
    std::vector<uint8_t> buf;
    for (const uint64_t v : values)
        appendVarint(buf, v);
    size_t pos = 0;
    for (const uint64_t v : values)
        EXPECT_EQ(readVarint(buf.data(), buf.size(), &pos), v);
    EXPECT_EQ(pos, buf.size());
}

TEST(Varint, TruncationThrows)
{
    std::vector<uint8_t> buf;
    appendVarint(buf, ~0ull);
    for (size_t cut = 0; cut < buf.size(); ++cut) {
        size_t pos = 0;
        EXPECT_THROW(readVarint(buf.data(), cut, &pos),
                     std::runtime_error);
    }
}

TEST(Varint, OverlongEncodingThrows)
{
    // 11 continuation bytes encode more than 64 bits.
    const std::vector<uint8_t> buf(11, 0x80);
    size_t pos = 0;
    EXPECT_THROW(readVarint(buf.data(), buf.size(), &pos),
                 std::runtime_error);
}

TEST(Recorder, RoundtripPreservesEventsAndDeps)
{
    const std::string path = tmpPath("roundtrip");
    JournalSink live(1, 1);

    {
        JournalSink inner(1, 1);
        TraceRecorder rec(&inner, path, "fpr");
        runScenario(rec);
        rec.setProfile("sidecar blob");
        rec.finish();

        // The capture run drove its inner sink exactly like a live run.
        runScenario(live);
        EXPECT_EQ(inner.lines, live.lines);
        EXPECT_EQ(rec.eventCount(), kScenarioEvents);
    }

    const TraceReplayer trace(path);
    EXPECT_EQ(trace.fingerprint(), "fpr");
    EXPECT_EQ(trace.profile(), "sidecar blob");
    EXPECT_EQ(trace.eventCount(), kScenarioEvents);

    JournalSink replayed(1, 1);
    trace.replayInto(replayed);
    EXPECT_EQ(replayed.lines, live.lines);

    // replayInto is repeatable: each replay starts a fresh tag map.
    JournalSink again(1, 1);
    trace.replayInto(again);
    EXPECT_EQ(again.lines, live.lines);

    std::remove(path.c_str());
}

TEST(Recorder, CanonicalizesSparseInnerTags)
{
    // Inner tags 1000, 1007, 1014, ... (OoO-style uop numbers); the
    // replay sink hands out 5, 10, 15, ... Dependence structure must
    // survive both remappings.
    const std::string path = tmpPath("canonical");
    {
        JournalSink inner(1000, 7);
        TraceRecorder rec(&inner, path, "fpr");
        // The workload sees canonical dense sequence numbers.
        const uint64_t a = rec.load(0x10, kNoDep, kNoDep);
        const uint64_t b = rec.load(0x20, a, kNoDep);
        EXPECT_EQ(a, 1u);
        EXPECT_EQ(b, 2u);
        rec.store(0x30, b);
        // The inner sink saw its own tags, not the canonical ones.
        EXPECT_EQ(inner.lines[1], "load 32 d#1 d0");
        EXPECT_EQ(inner.lines[2], "store 48 d#2");
        rec.finish();
    }

    const TraceReplayer trace(path);
    JournalSink sink(5, 5);
    trace.replayInto(sink);
    EXPECT_EQ(sink.lines[0], "load 16 d0 d0");
    EXPECT_EQ(sink.lines[1], "load 32 d#1 d0");
    EXPECT_EQ(sink.lines[2], "store 48 d#2");
    std::remove(path.c_str());
}

TEST(Recorder, UnknownDepClampsToNoDep)
{
    // A dep that is not a sequence number the recorder handed out
    // (e.g. garbage from a buggy caller) must degrade to kNoDep, not
    // index out of bounds.
    const std::string path = tmpPath("clamp");
    {
        JournalSink inner(1, 1);
        TraceRecorder rec(nullptr, path, "fpr");
        rec.store(0x10, 999);
        rec.finish();
    }
    const TraceReplayer trace(path);
    JournalSink sink(1, 1);
    trace.replayInto(sink);
    EXPECT_EQ(sink.lines[0], "store 16 d0");
    std::remove(path.c_str());
}

TEST(Recorder, AbandonedRecorderLeavesNoFile)
{
    const std::string path = tmpPath("abandon");
    {
        TraceRecorder rec(nullptr, path, "fpr");
        rec.alu(1, kNoDep);
        // No finish(): destructor must discard the temporary.
    }
    EXPECT_FALSE(TraceReplayer::matches(path, "fpr"));
    std::ifstream f(path);
    EXPECT_FALSE(f.good());
}

TEST(Replayer, MissingFileThrows)
{
    EXPECT_THROW(TraceReplayer("/nonexistent/nope.itrace"),
                 std::runtime_error);
}

TEST(Replayer, MatchesChecksFingerprintAndShape)
{
    const std::string path = tmpPath("matches");
    {
        TraceRecorder rec(nullptr, path, "the-right-fingerprint");
        runScenario(rec);
        rec.finish();
    }
    EXPECT_TRUE(TraceReplayer::matches(path, "the-right-fingerprint"));
    EXPECT_FALSE(TraceReplayer::matches(path, "some-other-fingerprint"));
    EXPECT_FALSE(TraceReplayer::matches(path + ".missing", "x"));
    std::remove(path.c_str());
}

/** Load a finished trace file into memory for corruption tests. */
std::string
slurp(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class Corruption : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = tmpPath("corrupt");
        TraceRecorder rec(nullptr, path_, "fpr-corruption-test");
        runScenario(rec);
        rec.setProfile("profile");
        rec.finish();
        good_ = slurp(path_);
        ASSERT_GT(good_.size(), kHeaderSize);
    }

    void TearDown() override { std::remove(path_.c_str()); }

    void
    expectThrows(const std::string &bytes, const char *what_substr)
    {
        spit(path_, bytes);
        try {
            TraceReplayer trace(path_);
            // Header defects throw in the constructor; record defects
            // may only surface during decode.
            NullTraceSink sink;
            trace.replayInto(sink);
            FAIL() << "expected std::runtime_error (" << what_substr
                   << ")";
        } catch (const std::runtime_error &e) {
            EXPECT_NE(std::string(e.what()).find(what_substr),
                      std::string::npos)
                << e.what();
        }
    }

    std::string path_;
    std::string good_;
};

TEST_F(Corruption, BadMagic)
{
    std::string bad = good_;
    bad[0] = 'X';
    expectThrows(bad, "bad magic");
}

TEST_F(Corruption, WrongVersion)
{
    std::string bad = good_;
    bad[8] = 99;
    expectThrows(bad, "unsupported format version");
}

TEST_F(Corruption, TruncatedHeader)
{
    expectThrows(good_.substr(0, kHeaderSize / 2), "truncated header");
}

TEST_F(Corruption, TruncatedRecords)
{
    expectThrows(good_.substr(0, good_.size() / 2), path_.c_str());
}

TEST_F(Corruption, MissingTrailer)
{
    // Cut exactly the profile trailer off the end.
    expectThrows(good_.substr(0, good_.size() - 4 - 7 - 1),
                 path_.c_str());
}

TEST_F(Corruption, FlippedRecordByteFailsHashCheck)
{
    std::string bad = good_;
    bad[kHeaderSize + 20 + 3] ^= 0x40; // inside the record region
    expectThrows(bad, "hash mismatch");
}

TEST_F(Corruption, TrailingGarbage)
{
    expectThrows(good_ + "extra", "trailing garbage");
}

TEST_F(Corruption, EventCountMismatch)
{
    // Patch the header's event count without touching the records.
    std::string bad = good_;
    bad[16] = static_cast<char>(kScenarioEvents + 3);
    expectThrows(bad, "event count mismatch");
}

} // namespace
} // namespace trace_io
} // namespace poat
