/** @file Tests for the TPC-C application workload. */
#include <gtest/gtest.h>

#include "workloads/tpcc/tpcc.h"

namespace poat {
namespace workloads {
namespace tpcc {
namespace {

PmemRuntime
makeRuntime(TranslationMode mode)
{
    RuntimeOptions o;
    o.mode = mode;
    o.aslr_seed = 7;
    return PmemRuntime(o);
}

TEST(Tpcc, PopulationMatchesScaledCardinalities)
{
    PmemRuntime rt = makeRuntime(TranslationMode::Software);
    TpccDb db(rt, Placement::All, 2, 1); // 2% scale
    const auto &c = db.cards();
    EXPECT_EQ(db.tree(kWarehouse).size(), 1u);
    EXPECT_EQ(db.tree(kDistrict).size(), c.districts);
    EXPECT_EQ(db.tree(kCustomer).size(),
              uint64_t(c.districts) * c.customers_per_district);
    EXPECT_EQ(db.tree(kItem).size(), c.items);
    EXPECT_EQ(db.tree(kStock).size(), c.stock);
    // One initial order per customer.
    EXPECT_EQ(db.tree(kOrder).size(), db.tree(kCustomer).size());
    // ~30% of initial orders are undelivered.
    const uint64_t orders = db.tree(kOrder).size();
    EXPECT_NEAR(double(db.tree(kNewOrder).size()), orders * 0.3,
                orders * 0.02 + 1);
    EXPECT_GT(db.tree(kOrderLine).size(), orders * 4);
    EXPECT_TRUE(db.consistent());
}

TEST(Tpcc, TransactionsPreserveConsistency)
{
    PmemRuntime rt = makeRuntime(TranslationMode::Software);
    TpccDb db(rt, Placement::All, 2, 3);
    const TpccResult res = db.run(200);
    EXPECT_EQ(res.transactions, 200u);
    EXPECT_GT(res.new_orders, 50u);  // ~45% of 200 less rollbacks
    EXPECT_GT(res.payments, 50u);    // ~43%
    EXPECT_GT(res.order_statuses + res.deliveries + res.stock_levels,
              5u);
    EXPECT_TRUE(db.consistent());
}

TEST(Tpcc, NewOrderAdvancesDistrictAndInsertsRows)
{
    PmemRuntime rt = makeRuntime(TranslationMode::Software);
    TpccDb db(rt, Placement::All, 2, 5);
    const uint64_t orders_before = db.tree(kOrder).size();
    const uint64_t lines_before = db.tree(kOrderLine).size();
    TpccResult res;
    int accepted = 0;
    for (int i = 0; i < 20; ++i)
        accepted += db.newOrder(res);
    EXPECT_EQ(db.tree(kOrder).size(), orders_before + accepted);
    EXPECT_GT(db.tree(kOrderLine).size(), lines_before + accepted * 4);
    EXPECT_TRUE(db.consistent());
}

TEST(Tpcc, DeliveryDrainsNewOrders)
{
    PmemRuntime rt = makeRuntime(TranslationMode::Software);
    TpccDb db(rt, Placement::All, 2, 7);
    const uint64_t backlog = db.tree(kNewOrder).size();
    TpccResult res;
    db.delivery(res);
    // One NEW-ORDER popped per district with a backlog.
    EXPECT_EQ(db.tree(kNewOrder).size(),
              backlog - db.cards().districts);
    EXPECT_TRUE(db.consistent());
}

TEST(Tpcc, PaymentMovesMoney)
{
    PmemRuntime rt = makeRuntime(TranslationMode::Software);
    TpccDb db(rt, Placement::All, 2, 9);
    TpccResult res;
    db.payment(res);
    EXPECT_EQ(res.payments, 1u);
    EXPECT_GT(res.checksum, 0u);
    EXPECT_EQ(db.tree(kHistory).size(), 1u);
}

TEST(Tpcc, EachPlacementUsesOnePoolPerTable)
{
    PmemRuntime rt = makeRuntime(TranslationMode::Hardware);
    TpccDb db(rt, Placement::Each, 2, 11);
    EXPECT_EQ(rt.registry().openCount(), size_t(kTableCount));
    db.run(50);
    EXPECT_TRUE(db.consistent());
}

TEST(Tpcc, ChecksumsMatchAcrossBaseAndOpt)
{
    auto run = [](TranslationMode mode, Placement p) {
        PmemRuntime rt = makeRuntime(mode);
        TpccWorkload w(p, 2, 13, 150);
        return w.run(rt);
    };
    for (const auto p : {Placement::All, Placement::Each}) {
        const TpccResult base = run(TranslationMode::Software, p);
        const TpccResult opt = run(TranslationMode::Hardware, p);
        EXPECT_EQ(base.checksum, opt.checksum);
        EXPECT_EQ(base.new_orders, opt.new_orders);
        EXPECT_EQ(base.rollbacks, opt.rollbacks);
    }
}

TEST(Tpcc, CrashAfterRunRecoversConsistent)
{
    PmemRuntime rt = makeRuntime(TranslationMode::Software);
    TpccDb db(rt, Placement::Each, 2, 17);
    db.run(100);
    rt.crashAndRecover();
    EXPECT_TRUE(db.consistent());
}

TEST(Tpcc, OptExecutesFewerInstructions)
{
    auto count = [](TranslationMode mode) {
        CountingTraceSink sink;
        RuntimeOptions o;
        o.mode = mode;
        o.aslr_seed = 7;
        PmemRuntime rt(o, &sink);
        TpccWorkload w(Placement::Each, 2, 19, 100);
        w.run(rt);
        return sink.instructions;
    };
    const uint64_t base = count(TranslationMode::Software);
    const uint64_t opt = count(TranslationMode::Hardware);
    EXPECT_LT(opt, base);
}

TEST(Tpcc, LastNameFollowsSpecSyllables)
{
    EXPECT_EQ(lastNameOf(0), "BARBARBAR");
    EXPECT_EQ(lastNameOf(371), "PRICALLYOUGHT"); // 3-7-1
    EXPECT_EQ(lastNameOf(999), "EINGEINGEING");
    EXPECT_EQ(lastNameOf(123), "OUGHTABLEPRI");
}

TEST(Tpcc, NameIndexCoversAllCustomers)
{
    PmemRuntime rt = makeRuntime(TranslationMode::Software);
    TpccDb db(rt, Placement::All, 2, 21);
    EXPECT_EQ(db.tree(kCustomerName).size(), db.tree(kCustomer).size());
    EXPECT_TRUE(db.tree(kCustomerName).validate());
}

TEST(Tpcc, NewOrderRollbackLeavesNoTrace)
{
    PmemRuntime rt = makeRuntime(TranslationMode::Software);
    TpccDb db(rt, Placement::All, 2, 23);
    const uint64_t orders = db.tree(kOrder).size();
    const uint64_t lines = db.tree(kOrderLine).size();
    // Run NewOrders until at least one rollback happens (1% each).
    TpccResult res;
    int accepted = 0;
    for (int i = 0; i < 1500 && res.rollbacks == 0; ++i)
        accepted += db.newOrder(res);
    ASSERT_GT(res.rollbacks, 0u) << "no rollback in 1500 tries";
    // Orders/lines grew only by the accepted transactions; the aborted
    // one left nothing behind (tuples freed, trees restored).
    EXPECT_EQ(db.tree(kOrder).size(), orders + accepted);
    EXPECT_GT(db.tree(kOrderLine).size(), lines);
    EXPECT_TRUE(db.consistent());
}

TEST(Tpcc, RollbackCountsMatchAcrossTxAndNtx)
{
    // The reject-first (NTX) and abort (TX) paths must agree on which
    // transactions roll back and on the final logical state.
    auto run = [](bool tx) {
        PmemRuntime rt = makeRuntime(TranslationMode::Software);
        TpccWorkload w(Placement::All, 2, 29, 400, tx);
        return w.run(rt);
    };
    const TpccResult with_tx = run(true);
    const TpccResult without = run(false);
    EXPECT_EQ(with_tx.rollbacks, without.rollbacks);
    EXPECT_EQ(with_tx.new_orders, without.new_orders);
    EXPECT_EQ(with_tx.checksum, without.checksum);
}

TEST(TpccMultiWarehouse, PopulatesEveryWarehouse)
{
    PmemRuntime rt = makeRuntime(TranslationMode::Software);
    TpccDb db(rt, Placement::All, 2, 31, true, /*warehouses=*/3);
    const auto &c = db.cards();
    EXPECT_EQ(db.tree(kWarehouse).size(), 3u);
    EXPECT_EQ(db.tree(kDistrict).size(), 3u * c.districts);
    EXPECT_EQ(db.tree(kCustomer).size(),
              3ull * c.districts * c.customers_per_district);
    EXPECT_EQ(db.tree(kStock).size(), 3ull * c.stock);
    EXPECT_EQ(db.tree(kItem).size(), c.items); // items are shared
    EXPECT_TRUE(db.consistent());
}

TEST(TpccMultiWarehouse, PerWarehousePlacementCreatesPoolGrid)
{
    PmemRuntime rt = makeRuntime(TranslationMode::Hardware);
    TpccDb db(rt, Placement::PerWarehouse, 2, 33, true, 2);
    EXPECT_EQ(rt.registry().openCount(), 2u * kTableCount);
    const auto res = db.run(100);
    EXPECT_GT(res.new_orders, 20u);
    EXPECT_TRUE(db.consistent());
}

TEST(TpccMultiWarehouse, RemoteTransactionsHappen)
{
    PmemRuntime rt = makeRuntime(TranslationMode::Software);
    TpccDb db(rt, Placement::All, 2, 35, true, 4);
    const auto res = db.run(400);
    // ~15% of payments are remote plus ~1% of order lines: with ~170
    // payments expect a couple dozen remote touches.
    EXPECT_GT(res.remote_touches, 5u);
    EXPECT_TRUE(db.consistent());
}

TEST(TpccMultiWarehouse, SingleWarehouseHasNoRemoteTouches)
{
    PmemRuntime rt = makeRuntime(TranslationMode::Software);
    TpccDb db(rt, Placement::All, 2, 37, true, 1);
    const auto res = db.run(200);
    EXPECT_EQ(res.remote_touches, 0u);
}

TEST(TpccMultiWarehouse, ChecksumsMatchAcrossModes)
{
    auto run = [](TranslationMode mode) {
        PmemRuntime rt = makeRuntime(mode);
        TpccWorkload w(Placement::PerWarehouse, 2, 39, 150, true, 2);
        return w.run(rt);
    };
    const TpccResult base = run(TranslationMode::Software);
    const TpccResult opt = run(TranslationMode::Hardware);
    EXPECT_EQ(base.checksum, opt.checksum);
    EXPECT_EQ(base.remote_touches, opt.remote_touches);
}

} // namespace
} // namespace tpcc
} // namespace workloads
} // namespace poat
