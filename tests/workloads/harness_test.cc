/** @file Unit tests for the workload harness (PoolSet/TxScope/etc). */
#include <gtest/gtest.h>

#include "workloads/harness.h"

namespace poat {
namespace workloads {
namespace {

PmemRuntime
makeRt()
{
    RuntimeOptions o;
    o.mode = TranslationMode::Hardware;
    return PmemRuntime(o);
}

TEST(PoolSet, AllPatternUsesOnePool)
{
    PmemRuntime rt = makeRt();
    PoolSet ps(rt, PoolPattern::All, "t");
    const uint32_t home = ps.homePool();
    for (uint64_t k = 0; k < 100; ++k)
        EXPECT_EQ(ps.poolForNew(k), home);
    EXPECT_EQ(ps.poolsCreated(), 1u);
}

TEST(PoolSet, RandomPatternUses32PoolsByKeyModulo)
{
    PmemRuntime rt = makeRt();
    PoolSet ps(rt, PoolPattern::Random, "t");
    EXPECT_EQ(ps.poolsCreated(), PoolSet::kRandomPools + 0u);
    // Keys congruent mod 32 share a pool; others differ.
    EXPECT_EQ(ps.poolForNew(5), ps.poolForNew(37));
    EXPECT_NE(ps.poolForNew(5), ps.poolForNew(6));
    // No new pools are created on demand.
    EXPECT_EQ(rt.registry().openCount(), PoolSet::kRandomPools + 0u);
}

TEST(PoolSet, EachPatternCreatesAFreshPoolPerStructure)
{
    PmemRuntime rt = makeRt();
    PoolSet ps(rt, PoolPattern::Each, "t");
    const uint32_t a = ps.poolForNew(1);
    const uint32_t b = ps.poolForNew(1);
    EXPECT_NE(a, b);
    EXPECT_NE(a, ps.homePool());
    EXPECT_EQ(ps.poolsCreated(), 3u); // home + two structures
}

TEST(TxScope, DisabledScopeIsPassThrough)
{
    PmemRuntime rt = makeRt();
    const uint32_t pool = rt.poolCreate("p", 1 << 20);
    TxScope tx(rt, false);
    const ObjectID o = tx.pmalloc(pool, 32);
    EXPECT_FALSE(rt.txActive());
    tx.addRange(o, 8); // no-op
    EXPECT_FALSE(rt.txActive());
    tx.pfree(o); // immediate free
    EXPECT_FALSE(rt.registry().get(pool).alloc.isAllocated(o.offset()));
}

TEST(TxScope, OpensOneTransactionPerTouchedPool)
{
    PmemRuntime rt = makeRt();
    const uint32_t p1 = rt.poolCreate("p1", 1 << 20);
    const uint32_t p2 = rt.poolCreate("p2", 1 << 20);
    const ObjectID a = rt.pmalloc(p1, 32);
    const ObjectID b = rt.pmalloc(p2, 32);
    {
        TxScope tx(rt, true);
        tx.addRange(a, 8);
        EXPECT_TRUE(rt.txActiveOn(p1));
        EXPECT_FALSE(rt.txActiveOn(p2));
        tx.addRange(b, 8);
        EXPECT_TRUE(rt.txActiveOn(p2));
    } // destructor commits both
    EXPECT_FALSE(rt.txActive());
}

TEST(TxScope, DeferredFreeHappensAtScopeExit)
{
    PmemRuntime rt = makeRt();
    const uint32_t pool = rt.poolCreate("p", 1 << 20);
    const ObjectID o = rt.pmalloc(pool, 32);
    {
        TxScope tx(rt, true);
        tx.pfree(o);
        EXPECT_TRUE(
            rt.registry().get(pool).alloc.isAllocated(o.offset()));
    }
    EXPECT_FALSE(rt.registry().get(pool).alloc.isAllocated(o.offset()));
}

TEST(NodeLogger, LogsEachNodeOnce)
{
    CountingTraceSink sink;
    RuntimeOptions o;
    o.mode = TranslationMode::Hardware;
    PmemRuntime rt(o, &sink);
    const uint32_t pool = rt.poolCreate("p", 1 << 20);
    const ObjectID node = rt.pmalloc(pool, 64);

    TxScope tx(rt, true);
    NodeLogger log(tx);
    log.log(node, 64);
    const uint64_t after_first = sink.instructions;
    log.log(node, 64); // duplicate: free
    log.log(node, 64);
    EXPECT_EQ(sink.instructions, after_first);
    EXPECT_EQ(rt.registry().get(pool).log.entryCount(), 1u);
}

TEST(Harness, PatternNames)
{
    EXPECT_STREQ(patternName(PoolPattern::All), "ALL");
    EXPECT_STREQ(patternName(PoolPattern::Each), "EACH");
    EXPECT_STREQ(patternName(PoolPattern::Random), "RANDOM");
}

TEST(Harness, MicrobenchNamesMatchPaperTable5)
{
    const auto &names = microbenchNames();
    ASSERT_EQ(names.size(), 6u);
    EXPECT_EQ(names[0], "LL");
    EXPECT_EQ(names[5], "B+T");
    for (const auto &n : names)
        EXPECT_NE(makeWorkload(n, {}), nullptr);
}

} // namespace
} // namespace workloads
} // namespace poat
