/** @file Property tests for the persistent B+ tree (order 7). */
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "workloads/bplustree.h"

namespace poat {
namespace workloads {
namespace {

struct Fixture
{
    explicit Fixture(bool transactions = true)
        : rt(RuntimeOptions{}), tx_enabled(transactions)
    {
        pool = rt.poolCreate("bpt", 64 << 20);
        anchor = rt.poolRoot(pool, 16);
        tree = std::make_unique<BPlusTree>(
            rt, anchor, [this](uint64_t) { return pool; });
    }

    bool
    insert(uint64_t k, uint64_t v)
    {
        TxScope tx(rt, tx_enabled);
        return tree->insert(tx, k, v);
    }

    bool
    erase(uint64_t k)
    {
        TxScope tx(rt, tx_enabled);
        return tree->erase(tx, k);
    }

    bool
    update(uint64_t k, uint64_t v)
    {
        TxScope tx(rt, tx_enabled);
        return tree->update(tx, k, v);
    }

    PmemRuntime rt;
    bool tx_enabled;
    uint32_t pool = 0;
    ObjectID anchor;
    std::unique_ptr<BPlusTree> tree;
};

TEST(BPlusTree, EmptyTreeBehaves)
{
    Fixture f;
    EXPECT_FALSE(f.tree->find(1).has_value());
    EXPECT_FALSE(f.erase(1));
    EXPECT_EQ(f.tree->size(), 0u);
    EXPECT_TRUE(f.tree->validate());
}

TEST(BPlusTree, InsertFindSingle)
{
    Fixture f;
    EXPECT_TRUE(f.insert(5, 50));
    EXPECT_EQ(f.tree->find(5).value(), 50u);
    EXPECT_FALSE(f.tree->find(4).has_value());
    EXPECT_TRUE(f.tree->validate());
}

TEST(BPlusTree, DuplicateInsertRejected)
{
    Fixture f;
    EXPECT_TRUE(f.insert(5, 50));
    EXPECT_FALSE(f.insert(5, 51));
    EXPECT_EQ(f.tree->find(5).value(), 50u);
}

TEST(BPlusTree, UpdateChangesValue)
{
    Fixture f;
    f.insert(5, 50);
    EXPECT_TRUE(f.update(5, 99));
    EXPECT_EQ(f.tree->find(5).value(), 99u);
    EXPECT_FALSE(f.update(6, 1));
}

TEST(BPlusTree, SequentialInsertSplitsCorrectly)
{
    Fixture f;
    for (uint64_t k = 1; k <= 100; ++k) {
        ASSERT_TRUE(f.insert(k, k * 10));
        ASSERT_TRUE(f.tree->validate()) << "after insert " << k;
    }
    for (uint64_t k = 1; k <= 100; ++k)
        ASSERT_EQ(f.tree->find(k).value(), k * 10);
    EXPECT_EQ(f.tree->size(), 100u);
}

TEST(BPlusTree, ReverseInsertSplitsCorrectly)
{
    Fixture f;
    for (uint64_t k = 100; k >= 1; --k)
        ASSERT_TRUE(f.insert(k, k));
    EXPECT_TRUE(f.tree->validate());
    EXPECT_EQ(f.tree->size(), 100u);
}

TEST(BPlusTree, EraseToEmpty)
{
    Fixture f;
    for (uint64_t k = 1; k <= 50; ++k)
        f.insert(k, k);
    for (uint64_t k = 1; k <= 50; ++k) {
        ASSERT_TRUE(f.erase(k)) << k;
        ASSERT_TRUE(f.tree->validate()) << "after erase " << k;
    }
    EXPECT_EQ(f.tree->size(), 0u);
    // The tree is reusable after draining.
    EXPECT_TRUE(f.insert(7, 70));
    EXPECT_EQ(f.tree->find(7).value(), 70u);
}

TEST(BPlusTree, ScanRange)
{
    Fixture f;
    for (uint64_t k = 1; k <= 60; ++k)
        f.insert(k * 2, k); // even keys 2..120
    std::vector<uint64_t> seen;
    f.tree->scan(10, 30, [&](uint64_t k, uint64_t) {
        seen.push_back(k);
        return true;
    });
    ASSERT_EQ(seen.size(), 11u); // 10,12,...,30
    EXPECT_EQ(seen.front(), 10u);
    EXPECT_EQ(seen.back(), 30u);
}

TEST(BPlusTree, ScanEarlyStop)
{
    Fixture f;
    for (uint64_t k = 1; k <= 30; ++k)
        f.insert(k, k);
    uint64_t count = 0;
    f.tree->scan(1, 30, [&](uint64_t, uint64_t) {
        return ++count < 5;
    });
    EXPECT_EQ(count, 5u);
}

TEST(BPlusTree, FindLast)
{
    Fixture f;
    for (uint64_t k = 10; k <= 100; k += 10)
        f.insert(k, k + 1);
    const auto last = f.tree->findLast(15, 75);
    ASSERT_TRUE(last.has_value());
    EXPECT_EQ(last->first, 70u);
    EXPECT_EQ(last->second, 71u);
    EXPECT_FALSE(f.tree->findLast(101, 200).has_value());
}

TEST(BPlusTree, TransactionalInsertSurvivesCrash)
{
    Fixture f(true);
    for (uint64_t k = 1; k <= 40; ++k)
        f.insert(k, k * 3);
    f.rt.crashAndRecover();
    EXPECT_TRUE(f.tree->validate());
    for (uint64_t k = 1; k <= 40; ++k)
        ASSERT_EQ(f.tree->find(k).value(), k * 3) << k;
}

TEST(BPlusTree, CrashMidOperationIsAtomic)
{
    // Insert enough to force splits, crash before the last op commits.
    Fixture f(true);
    for (uint64_t k = 1; k <= 20; ++k)
        f.insert(k, k);
    {
        TxScope tx(f.rt, true);
        f.tree->insert(tx, 21, 21);
        f.rt.crashAndRecover(); // before tx commit
    }
    EXPECT_TRUE(f.tree->validate());
    EXPECT_FALSE(f.tree->find(21).has_value());
    EXPECT_EQ(f.tree->size(), 20u);
}

/** Parameterized property: random mixed ops track a std::map oracle. */
class BPlusProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(BPlusProperty, MatchesMapOracle)
{
    Fixture f;
    Rng rng(GetParam());
    std::map<uint64_t, uint64_t> oracle;
    for (int step = 0; step < 3000; ++step) {
        const uint64_t key = 1 + rng.below(500);
        const int action = static_cast<int>(rng.below(3));
        if (action == 0) {
            const bool ins = f.insert(key, key * 7);
            EXPECT_EQ(ins, oracle.emplace(key, key * 7).second);
        } else if (action == 1) {
            const bool erased = f.erase(key);
            EXPECT_EQ(erased, oracle.erase(key) > 0);
        } else {
            const auto v = f.tree->find(key);
            const auto it = oracle.find(key);
            EXPECT_EQ(v.has_value(), it != oracle.end());
            if (v && it != oracle.end()) {
                EXPECT_EQ(*v, it->second);
            }
        }
        if (step % 250 == 249) {
            ASSERT_TRUE(f.tree->validate()) << "step " << step;
            ASSERT_EQ(f.tree->size(), oracle.size());
        }
    }
    // Full scan agrees with the oracle.
    auto it = oracle.begin();
    f.tree->scan(0, ~0ull, [&](uint64_t k, uint64_t v) {
        EXPECT_NE(it, oracle.end());
        EXPECT_EQ(k, it->first);
        EXPECT_EQ(v, it->second);
        ++it;
        return true;
    });
    EXPECT_EQ(it, oracle.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusProperty,
                         ::testing::Values(3, 7, 11, 19, 42, 1001));

} // namespace
} // namespace workloads
} // namespace poat
