/**
 * @file
 * Workload-level crash-recovery property tests: a B+ tree driven by
 * random operations with power failures and random cache-line
 * evictions injected between (and effectively within, via eviction)
 * transactions. After every recovery the tree must contain exactly the
 * committed prefix of operations — nothing torn, nothing lost.
 */
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "workloads/bplustree.h"

namespace poat {
namespace workloads {
namespace {

class CrashProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(CrashProperty, CommittedOperationsSurviveArbitraryCrashes)
{
    Rng rng(GetParam());
    RuntimeOptions ro;
    ro.mode = TranslationMode::Software;
    PmemRuntime rt(ro);
    const uint32_t pool = rt.poolCreate("crash", 16 << 20);
    const ObjectID anchor = rt.poolRoot(pool, 16);
    BPlusTree tree(rt, anchor, [pool](uint64_t) { return pool; });

    // Oracle of *committed* state.
    std::map<uint64_t, uint64_t> committed;

    for (int step = 0; step < 1200; ++step) {
        const uint64_t key = 1 + rng.below(300);
        const bool do_insert = rng.chance(3, 5);
        {
            TxScope tx(rt, true);
            if (do_insert) {
                if (tree.insert(tx, key, key * 13))
                    committed.emplace(key, key * 13);
            } else {
                if (tree.erase(tx, key))
                    committed.erase(key);
            }
        } // commit point

        // Random cache pressure makes arbitrary subsets of un-flushed
        // lines durable.
        if (rng.chance(1, 4)) {
            rt.registry().get(pool).pool.evictRandomLines(rng, 1, 3);
        }

        if (rng.chance(1, 20)) {
            rt.crashAndRecover();
            // The recovered tree equals the committed oracle exactly.
            ASSERT_TRUE(tree.validate()) << "step " << step;
            auto it = committed.begin();
            uint64_t seen = 0;
            tree.scan(0, ~0ull, [&](uint64_t k, uint64_t v) {
                EXPECT_NE(it, committed.end());
                if (it == committed.end())
                    return false;
                EXPECT_EQ(k, it->first) << "step " << step;
                EXPECT_EQ(v, it->second) << "step " << step;
                ++it;
                ++seen;
                return true;
            });
            ASSERT_EQ(seen, committed.size()) << "step " << step;
            ASSERT_EQ(it, committed.end());
        }
    }
    EXPECT_TRUE(tree.validate());
    EXPECT_EQ(tree.size(), committed.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashProperty,
                         ::testing::Values(11, 23, 47, 83));

/** The same property across a pool close/reopen cycle. */
TEST(CrashProperty, SurvivesCloseReopenAfterCrash)
{
    RuntimeOptions ro;
    PmemRuntime rt(ro);
    uint32_t pool = rt.poolCreate("cr", 16 << 20);
    ObjectID anchor = rt.poolRoot(pool, 16);
    {
        BPlusTree tree(rt, anchor, [pool](uint64_t) { return pool; });
        for (uint64_t k = 1; k <= 100; ++k) {
            TxScope tx(rt, true);
            tree.insert(tx, k, k + 1000);
        }
    }
    rt.crashAndRecover();
    rt.poolClose(pool);

    pool = rt.poolOpen("cr");
    anchor = rt.poolRoot(pool, 16);
    BPlusTree tree(rt, anchor, [pool](uint64_t) { return pool; });
    EXPECT_TRUE(tree.validate());
    EXPECT_EQ(tree.size(), 100u);
    for (uint64_t k = 1; k <= 100; ++k)
        ASSERT_EQ(tree.find(k).value(), k + 1000);
}

} // namespace
} // namespace workloads
} // namespace poat
