/**
 * @file
 * Functional tests for the concurrent workloads: the persistent linear
 * hash table (LHT) and multi-threaded TPC-C (MTPCC), plus multi-slot
 * undo-log recovery of a crash image holding several workers' logs.
 */
#include <gtest/gtest.h>

#include <string>

#include "pmem/concurrent/engine.h"
#include "workloads/lhash.h"
#include "workloads/tpcc/mtpcc.h"

namespace poat {
namespace workloads {
namespace {

TEST(LinearHash, SingleThreadedInsertLookupEraseVerify)
{
    PmemRuntime rt;
    const uint32_t pool = rt.poolCreate("lht", 4 << 20);
    LinearHashTable ht(rt, nullptr, pool);
    ht.create();

    for (uint64_t k = 1; k <= 300; ++k)
        EXPECT_TRUE(ht.insert(k, k * 3));
    EXPECT_EQ(ht.size(), 300u);
    EXPECT_GT(ht.buckets(), LinearHashTable::kStripes); // splits ran

    uint64_t v = 0;
    for (uint64_t k = 1; k <= 300; ++k) {
        ASSERT_TRUE(ht.lookup(k, &v));
        EXPECT_EQ(v, k * 3);
    }
    EXPECT_FALSE(ht.lookup(10'000, &v));

    // Update-in-place returns false (key not new).
    EXPECT_FALSE(ht.insert(7, 99));
    ASSERT_TRUE(ht.lookup(7, &v));
    EXPECT_EQ(v, 99u);

    for (uint64_t k = 1; k <= 150; ++k)
        EXPECT_TRUE(ht.erase(k));
    EXPECT_FALSE(ht.erase(1));
    EXPECT_EQ(ht.size(), 150u);

    std::string why;
    EXPECT_TRUE(ht.verify(&why)) << why;
}

uint64_t
lhtChecksum(uint32_t threads, uint64_t sched_seed, uint32_t window)
{
    RuntimeOptions ro;
    ro.log_slots = threads;
    PmemRuntime rt(ro);
    WorkloadConfig wc;
    wc.scale_pct = 20;
    LhtWorkload w(wc, threads, sched_seed, window);
    const WorkloadResult r = w.run(rt);
    EXPECT_GT(r.operations, 0u);
    EXPECT_GT(w.engineStats().commits, 0u);
    return r.checksum;
}

TEST(LhtWorkload, DeterministicAndWindowInvariant)
{
    // Same (threads, seed) twice: bit-identical result.
    EXPECT_EQ(lhtChecksum(4, 9, 4), lhtChecksum(4, 9, 4));
    // Group commit is a timing effect only — the committed state (and
    // so the checksum) must not depend on the window.
    EXPECT_EQ(lhtChecksum(4, 9, 1), lhtChecksum(4, 9, 4));
}

TEST(MtpccWorkload, DeterministicAcrossRuns)
{
    auto run = [](uint64_t sched_seed) {
        RuntimeOptions ro;
        ro.log_slots = 2;
        PmemRuntime rt(ro);
        tpcc::MtpccWorkload w(tpcc::Placement::All, 2 /*scale%*/,
                              42 /*seed*/, 40 /*txns*/, 2 /*threads*/,
                              sched_seed, 4 /*window*/);
        return w.run(rt).checksum;
    };
    EXPECT_EQ(run(5), run(5));
}

TEST(MtpccWorkload, RunsTheFullMixAcrossWorkers)
{
    RuntimeOptions ro;
    ro.log_slots = 4;
    PmemRuntime rt(ro);
    tpcc::MtpccWorkload w(tpcc::Placement::All, 2, 42, 120, 4, 1, 4);
    const tpcc::TpccResult r = w.run(rt);
    EXPECT_EQ(r.transactions, 120u);
    // 120 transactions of the standard mix hit every type.
    EXPECT_GT(r.new_orders, 0u);
    EXPECT_GT(r.payments, 0u);
    EXPECT_GT(r.order_statuses + r.deliveries + r.stock_levels, 0u);
    EXPECT_EQ(w.engineStats().commits, 120u);
}

TEST(MultiSlotLog, RecoveryRollsBackEveryWorkersOpenTransaction)
{
    RuntimeOptions ro;
    ro.log_slots = 3;
    PmemRuntime rt(ro);
    const uint32_t pool = rt.poolCreate("p", 1 << 20);
    ObjectID obj[3];
    for (int t = 0; t < 3; ++t) {
        obj[t] = rt.pmalloc(pool, 64);
        rt.write<uint64_t>(rt.deref(obj[t]), 0, 100 + t);
        rt.persist(obj[t], 64);
    }

    // Three workers crash with a transaction each mid-flight: every
    // slot's undo log holds a snapshot at the same instant.
    for (uint32_t t = 0; t < 3; ++t) {
        rt.setWorker(t);
        rt.txBegin(pool);
        rt.txAddRange(obj[t], 16);
        rt.write<uint64_t>(rt.deref(obj[t]), 0, 999);
    }
    rt.setWorker(0);
    rt.registry().crashAll();
    rt.registry().recoverAll();

    for (int t = 0; t < 3; ++t) {
        EXPECT_EQ(rt.read<uint64_t>(rt.deref(obj[t]), 0),
                  100u + static_cast<uint64_t>(t))
            << "worker " << t << "'s slot was not rolled back";
    }
    OpenPool &op = rt.registry().get(pool);
    EXPECT_EQ(op.logSlotCount(), 3u);
    op.forEachLog([](UndoLog &log) {
        EXPECT_EQ(log.state(), LogHeader::kIdle);
    });
}

} // namespace
} // namespace workloads
} // namespace poat
