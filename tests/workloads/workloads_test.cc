/** @file Cross-configuration tests for the six microbenchmarks. */
#include <gtest/gtest.h>

#include "sim/machine.h"
#include "workloads/bplustree.h"
#include "workloads/workloads.h"

namespace poat {
namespace workloads {
namespace {

WorkloadResult
runOnce(const std::string &abbr, PoolPattern pattern, bool tx,
        TranslationMode mode, uint32_t scale_pct = 10,
        TraceSink *sink = nullptr)
{
    WorkloadConfig wc;
    wc.pattern = pattern;
    wc.transactions = tx;
    wc.seed = 42;
    wc.scale_pct = scale_pct;
    RuntimeOptions ro;
    ro.mode = mode;
    ro.durability = tx;
    ro.aslr_seed = 7;
    PmemRuntime rt(ro, sink);
    return makeWorkload(abbr, wc)->run(rt);
}

/** Every (workload, pattern) must produce identical results in all
 *  four Table 7 configurations: BASE, OPT, BASE_NTX, OPT_NTX. */
class CrossConfig
    : public ::testing::TestWithParam<std::tuple<std::string, PoolPattern>>
{
};

TEST_P(CrossConfig, ChecksumInvariantAcrossConfigurations)
{
    const auto [abbr, pattern] = GetParam();
    const WorkloadResult base =
        runOnce(abbr, pattern, true, TranslationMode::Software);
    const WorkloadResult opt =
        runOnce(abbr, pattern, true, TranslationMode::Hardware);
    const WorkloadResult base_ntx =
        runOnce(abbr, pattern, false, TranslationMode::Software);
    const WorkloadResult opt_ntx =
        runOnce(abbr, pattern, false, TranslationMode::Hardware);

    EXPECT_GT(base.operations, 0u);
    EXPECT_EQ(base.checksum, opt.checksum);
    EXPECT_EQ(base.checksum, base_ntx.checksum);
    EXPECT_EQ(base.checksum, opt_ntx.checksum);
    EXPECT_EQ(base.found, opt.found);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchesAllPatterns, CrossConfig,
    ::testing::Combine(::testing::Values("LL", "BST", "SPS", "RBT", "BT",
                                         "B+T"),
                       ::testing::Values(PoolPattern::All,
                                         PoolPattern::Each,
                                         PoolPattern::Random)),
    [](const auto &info) {
        std::string n = std::get<0>(info.param);
        if (n == "B+T")
            n = "BpT";
        return n + "_" + patternName(std::get<1>(info.param));
    });

TEST(Workloads, SameSeedIsDeterministic)
{
    for (const auto &abbr : microbenchNames()) {
        const auto a = runOnce(abbr, PoolPattern::All, true,
                               TranslationMode::Software);
        const auto b = runOnce(abbr, PoolPattern::All, true,
                               TranslationMode::Software);
        EXPECT_EQ(a.checksum, b.checksum) << abbr;
    }
}

TEST(Workloads, OperationsFollowPaperCounts)
{
    // At scale 100 the op counts are the paper's Table 5 numbers.
    EXPECT_EQ(runOnce("LL", PoolPattern::All, false,
                      TranslationMode::Hardware, 100)
                  .operations,
              700u);
    EXPECT_EQ(runOnce("RBT", PoolPattern::All, false,
                      TranslationMode::Hardware, 20)
                  .operations,
              600u); // 3000 * 20%
}

TEST(Workloads, BaseEmitsNoNvInstructions)
{
    CountingTraceSink sink;
    runOnce("BST", PoolPattern::Random, true, TranslationMode::Software,
            5, &sink);
    EXPECT_EQ(sink.nvLoads + sink.nvStores, 0u);
    EXPECT_GT(sink.loads, 0u);
}

TEST(Workloads, OptEmitsNvInsteadOfTranslatedAccesses)
{
    CountingTraceSink base, opt;
    runOnce("BST", PoolPattern::Random, true, TranslationMode::Software,
            5, &base);
    runOnce("BST", PoolPattern::Random, true, TranslationMode::Hardware,
            5, &opt);
    EXPECT_GT(opt.nvLoads, 0u);
    EXPECT_GT(opt.nvStores, 0u);
    // Hardware translation removes the oid_direct expansions: the OPT
    // run must execute substantially fewer dynamic instructions.
    EXPECT_LT(opt.instructions, base.instructions * 85 / 100);
}

TEST(Workloads, NtxEmitsNoFlushes)
{
    CountingTraceSink sink;
    runOnce("LL", PoolPattern::All, false, TranslationMode::Hardware, 20,
            &sink);
    EXPECT_EQ(sink.clwbs, 0u);
    EXPECT_EQ(sink.fences, 0u);
}

TEST(Workloads, TxEmitsFlushesAndFences)
{
    CountingTraceSink sink;
    runOnce("LL", PoolPattern::All, true, TranslationMode::Hardware, 20,
            &sink);
    EXPECT_GT(sink.clwbs, 0u);
    EXPECT_GT(sink.fences, 0u);
}

TEST(Workloads, EachPatternCreatesManyPools)
{
    RuntimeOptions ro;
    ro.mode = TranslationMode::Hardware;
    PmemRuntime rt(ro);
    WorkloadConfig wc;
    wc.pattern = PoolPattern::Each;
    wc.scale_pct = 10;
    LinkedListWorkload(wc).run(rt);
    EXPECT_GT(rt.registry().openCount(), 20u);

    PmemRuntime rt2(ro);
    wc.pattern = PoolPattern::Random;
    LinkedListWorkload(wc).run(rt2);
    EXPECT_EQ(rt2.registry().openCount(), PoolSet::kRandomPools + 0u);
}

TEST(Workloads, FullRunUnderSimulationEndToEnd)
{
    // A small LL run on the full machine: sanity metrics only.
    sim::MachineConfig mc;
    mc.core = sim::CoreType::InOrder;
    sim::Machine machine(mc);
    const auto res = runOnce("LL", PoolPattern::Random, true,
                             TranslationMode::Hardware, 10, &machine);
    EXPECT_GT(res.operations, 0u);
    const auto met = machine.metrics();
    EXPECT_GT(met.cycles, met.instructions / 4);
    EXPECT_GT(met.nv_loads, 0u);
    EXPECT_GT(met.polb_hits, 0u);
}

/** Crash-recovery: a workload interrupted mid-run recovers to a state
 *  where all structural invariants hold. */
TEST(Workloads, CrashMidRunRecoversConsistently)
{
    RuntimeOptions ro;
    ro.mode = TranslationMode::Software;
    PmemRuntime rt(ro);
    WorkloadConfig wc;
    wc.pattern = PoolPattern::Random;
    wc.scale_pct = 4;
    // Run the B+T workload fully (its final validate() must pass), then
    // crash and validate the recovered image still passes.
    BplusWorkload(wc).run(rt);
    rt.crashAndRecover();
    // Re-attach a tree over the recovered anchor and validate.
    const uint32_t home = 1; // first pool created by PoolSet(Random)
    const ObjectID anchor = rt.poolRoot(home, 16);
    BPlusTree tree(rt, anchor, [home](uint64_t) { return home; });
    EXPECT_TRUE(tree.validate());
    EXPECT_GT(tree.size(), 0u);
}

} // namespace
} // namespace workloads
} // namespace poat
