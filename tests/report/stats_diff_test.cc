/** @file Unit tests for the --stats-json tolerance diff
 *  (report/stats_diff.h): flattening, tolerance math, regression
 *  detection, structural mismatches, and malformed-input errors. */
#include <gtest/gtest.h>

#include <stdexcept>

#include "report/stats_diff.h"

namespace poat {
namespace report {
namespace {

// ------------------------------------------------------------- flatten

TEST(FlattenJson, LeavesGetDottedAndIndexedPaths)
{
    const FlatJson f = flattenJson(
        R"({"a": 1, "b": {"c": 2.5, "d": [3, {"e": 4}]},
            "s": "hello", "t": true, "f": false, "n": null})");
    EXPECT_EQ(f.numbers.at("a"), 1);
    EXPECT_EQ(f.numbers.at("b.c"), 2.5);
    EXPECT_EQ(f.numbers.at("b.d[0]"), 3);
    EXPECT_EQ(f.numbers.at("b.d[1].e"), 4);
    EXPECT_EQ(f.strings.at("s"), "hello");
    EXPECT_EQ(f.numbers.at("t"), 1);
    EXPECT_EQ(f.numbers.at("f"), 0);
    EXPECT_EQ(f.numbers.count("n"), 0u); // nulls are dropped
}

TEST(FlattenJson, EscapesAndNegativeExponents)
{
    const FlatJson f =
        flattenJson(R"({"k\"ey": "a\nb", "x": -1.5e-3})");
    EXPECT_EQ(f.strings.at("k\"ey"), "a\nb");
    EXPECT_DOUBLE_EQ(f.numbers.at("x"), -1.5e-3);
}

TEST(FlattenJson, MalformedInputThrowsWithOffset)
{
    for (const char *bad :
         {"{", "{\"a\": }", "[1, 2", "{\"a\" 1}", "tru", "{\"a\": 1} x",
          "\"unterminated", "{\"a\": 01x}"}) {
        try {
            flattenJson(bad);
            // "{\"a\": 01x}" parses 01 then fails on 'x'; every case
            // must throw.
            FAIL() << "expected throw for: " << bad;
        } catch (const std::runtime_error &e) {
            EXPECT_NE(std::string(e.what()).find("malformed JSON"),
                      std::string::npos)
                << bad;
        }
    }
}

// ------------------------------------------------------ tolerance math

TEST(Tolerance, DeviationIsSymmetricAndZeroSafe)
{
    EXPECT_EQ(relativeDeviation(0, 0), 0);
    EXPECT_EQ(relativeDeviation(5, 5), 0);
    EXPECT_DOUBLE_EQ(relativeDeviation(100, 110),
                     relativeDeviation(110, 100));
    EXPECT_DOUBLE_EQ(relativeDeviation(100, 110), 10.0 / 110.0);
    EXPECT_EQ(relativeDeviation(0, 7), 1); // from zero: 100%
}

TEST(Tolerance, LongestPrefixOverrideWins)
{
    DiffOptions opt;
    opt.tolerance = 0.05;
    opt.overrides = {{"runs", 0.0}, {"runs[2].stats", 0.5}};
    EXPECT_EQ(toleranceFor("summary.geomean", opt), 0.05);
    EXPECT_EQ(toleranceFor("runs[0].cycles", opt), 0.0);
    EXPECT_EQ(toleranceFor("runs[2].stats.core.cycles", opt), 0.5);
}

// ------------------------------------------------- regression detection

TEST(DiffStats, SelfDiffPasses)
{
    const FlatJson a = flattenJson(
        R"({"bench": "fig9a", "runs": [{"cycles": 71782,
            "ipc": 0.433}], "summary": {"geomean": 1.54}})");
    const DiffResult res = diffStats(a, a);
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(res.compared, 3u);
    EXPECT_TRUE(res.regressions.empty());
}

TEST(DiffStats, InjectedCycleRegressionIsCaught)
{
    const FlatJson base =
        flattenJson(R"({"runs": [{"cycles": 100000}]})");
    // +6% cycles against a 5% band: must fail.
    const FlatJson worse =
        flattenJson(R"({"runs": [{"cycles": 106000}]})");
    const DiffResult res = diffStats(base, worse);
    EXPECT_FALSE(res.ok());
    ASSERT_EQ(res.regressions.size(), 1u);
    EXPECT_EQ(res.regressions[0].path, "runs[0].cycles");
    EXPECT_GT(res.regressions[0].deviation, 0.05);

    // +4% stays inside the default band.
    const FlatJson okay =
        flattenJson(R"({"runs": [{"cycles": 104000}]})");
    EXPECT_TRUE(diffStats(base, okay).ok());

    // ...but a zero-tolerance override pins it exactly.
    DiffOptions strict;
    strict.overrides = {{"runs", 0.0}};
    EXPECT_FALSE(diffStats(base, okay, strict).ok());
}

TEST(DiffStats, ImprovementsAreAlsoOutOfBand)
{
    // The gate is two-sided: a 10% "improvement" is a changed result
    // and must be re-goldened deliberately, not slip through.
    const FlatJson base = flattenJson(R"({"cycles": 100000})");
    const FlatJson faster = flattenJson(R"({"cycles": 90000})");
    EXPECT_FALSE(diffStats(base, faster).ok());
}

TEST(DiffStats, StructuralMismatchesFailUnlessIgnored)
{
    const FlatJson a = flattenJson(R"({"x": 1, "label": "LL"})");
    const FlatJson b = flattenJson(R"({"x": 1, "y": 2, "label": "BST"})");
    const DiffResult res = diffStats(a, b);
    EXPECT_FALSE(res.ok());
    ASSERT_EQ(res.only_candidate.size(), 1u);
    EXPECT_EQ(res.only_candidate[0], "y");
    ASSERT_EQ(res.mismatched_strings.size(), 1u);
    EXPECT_EQ(res.mismatched_strings[0], "label");

    // ignore_missing forgives the one-sided metric, never the
    // string mismatch.
    EXPECT_FALSE(res.ok(/*ignore_missing=*/true));
    const FlatJson c = flattenJson(R"({"x": 1, "y": 2, "label": "LL"})");
    EXPECT_TRUE(diffStats(a, c).only_candidate.size() == 1 &&
                diffStats(a, c).ok(/*ignore_missing=*/true));
}

} // namespace
} // namespace report
} // namespace poat
