/** @file Unit tests for the statistics registry. */
#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.h"

namespace poat {
namespace {

TEST(Stats, CounterStartsAtZeroAndIncrements)
{
    StatsRegistry s;
    EXPECT_EQ(s.get("x"), 0u);
    s.counter("x") += 3;
    EXPECT_EQ(s.get("x"), 3u);
}

TEST(Stats, GetOfUnknownIsZeroAndDoesNotCreate)
{
    StatsRegistry s;
    EXPECT_EQ(s.get("nope"), 0u);
    EXPECT_EQ(s.size(), 0u);
}

TEST(Stats, ResetAllZeroesEverything)
{
    StatsRegistry s;
    s.counter("a") = 5;
    s.counter("b") = 7;
    s.resetAll();
    EXPECT_EQ(s.get("a"), 0u);
    EXPECT_EQ(s.get("b"), 0u);
    EXPECT_EQ(s.size(), 2u); // names survive reset
}

TEST(Stats, RatioHandlesZeroDenominator)
{
    StatsRegistry s;
    s.counter("hits") = 10;
    EXPECT_DOUBLE_EQ(s.ratio("hits", "accesses"), 0.0);
    s.counter("accesses") = 40;
    EXPECT_DOUBLE_EQ(s.ratio("hits", "accesses"), 0.25);
}

TEST(Stats, DumpIsSortedByName)
{
    StatsRegistry s;
    s.counter("zeta") = 1;
    s.counter("alpha") = 2;
    std::ostringstream os;
    s.dump(os);
    EXPECT_EQ(os.str(), "alpha 2\nzeta 1\n");
}

} // namespace
} // namespace poat
