/** @file Unit tests for the statistics registry. */
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "common/stats.h"

namespace poat {
namespace {

/**
 * Minimal recursive-descent JSON reader, strict enough to prove
 * dumpJson() emits well-formed JSON: it accepts objects, arrays,
 * strings, numbers, booleans and null, and flattens every number into
 * a dotted-path -> value map ("polb.lookup_latency.p95" etc.).
 */
struct MiniJson
{
    std::map<std::string, double> numbers;
    std::set<std::string> objects;
    const char *p;
    bool ok = true;

    explicit MiniJson(const std::string &s) : p(s.c_str())
    {
        value("");
        skip();
        ok = ok && *p == '\0';
    }

    void
    skip()
    {
        while (*p == ' ' || *p == '\n' || *p == '\t' || *p == '\r')
            ++p;
    }

    bool
    consume(char c)
    {
        skip();
        if (*p != c)
            return false;
        ++p;
        return true;
    }

    std::string
    string_()
    {
        std::string out;
        if (!consume('"')) {
            ok = false;
            return out;
        }
        while (*p && *p != '"') {
            if (*p == '\\' && p[1])
                ++p;
            out += *p++;
        }
        if (*p != '"') {
            ok = false;
            return out;
        }
        ++p;
        return out;
    }

    void
    number(const std::string &path)
    {
        char *end = nullptr;
        const double v = std::strtod(p, &end);
        if (end == p) {
            ok = false;
            return;
        }
        p = end;
        if (!path.empty())
            numbers[path] = v;
    }

    void
    object(const std::string &path)
    {
        consume('{');
        objects.insert(path);
        skip();
        if (consume('}'))
            return;
        do {
            const std::string key = string_();
            if (!consume(':')) {
                ok = false;
                return;
            }
            value(path.empty() ? key : path + "." + key);
        } while (consume(','));
        if (!consume('}'))
            ok = false;
    }

    void
    array(const std::string &path)
    {
        consume('[');
        skip();
        if (consume(']'))
            return;
        size_t i = 0;
        do {
            value(path + "[" + std::to_string(i++) + "]");
        } while (consume(','));
        if (!consume(']'))
            ok = false;
    }

    void
    value(const std::string &path)
    {
        skip();
        if (*p == '{')
            object(path);
        else if (*p == '[')
            array(path);
        else if (*p == '"')
            string_();
        else if (!std::strncmp(p, "true", 4))
            p += 4;
        else if (!std::strncmp(p, "false", 5))
            p += 5;
        else if (!std::strncmp(p, "null", 4))
            p += 4;
        else
            number(path);
    }
};

TEST(Stats, CounterStartsAtZeroAndIncrements)
{
    StatsRegistry s;
    EXPECT_EQ(s.get("x"), 0u);
    s.counter("x") += 3;
    EXPECT_EQ(s.get("x"), 3u);
}

TEST(Stats, GetOfUnknownIsZeroAndDoesNotCreate)
{
    StatsRegistry s;
    EXPECT_EQ(s.get("nope"), 0u);
    EXPECT_EQ(s.size(), 0u);
}

TEST(Stats, ResetAllZeroesEverything)
{
    StatsRegistry s;
    s.counter("a") = 5;
    s.counter("b") = 7;
    s.resetAll();
    EXPECT_EQ(s.get("a"), 0u);
    EXPECT_EQ(s.get("b"), 0u);
    EXPECT_EQ(s.size(), 2u); // names survive reset
}

TEST(Stats, RatioHandlesZeroDenominator)
{
    StatsRegistry s;
    s.counter("hits") = 10;
    EXPECT_DOUBLE_EQ(s.ratio("hits", "accesses"), 0.0);
    s.counter("accesses") = 40;
    EXPECT_DOUBLE_EQ(s.ratio("hits", "accesses"), 0.25);
}

TEST(Stats, DumpIsSortedByName)
{
    StatsRegistry s;
    s.counter("zeta") = 1;
    s.counter("alpha") = 2;
    std::ostringstream os;
    s.dump(os);
    EXPECT_EQ(os.str(), "alpha 2\nzeta 1\n");
}

TEST(Stats, HistogramRegistersAndAccumulates)
{
    StatsRegistry s;
    EXPECT_EQ(s.findHistogram("lat"), nullptr);
    s.histogram("lat").record(4);
    s.histogram("lat").record(8);
    const Histogram *h = s.findHistogram("lat");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 2u);
    EXPECT_EQ(h->sum(), 12u);
    EXPECT_EQ(s.size(), 1u);
}

TEST(Stats, FormulaEvaluatesAgainstLiveCounters)
{
    StatsRegistry s;
    s.formula("miss_rate", "misses", "accesses");
    EXPECT_DOUBLE_EQ(s.eval("miss_rate"), 0.0); // denominator absent
    s.counter("misses") = 1;
    s.counter("accesses") = 4;
    EXPECT_DOUBLE_EQ(s.eval("miss_rate"), 0.25);
    s.counter("misses") = 2; // formulas are lazy: no re-registration
    EXPECT_DOUBLE_EQ(s.eval("miss_rate"), 0.5);
    EXPECT_DOUBLE_EQ(s.eval("no_such_formula"), 0.0);
}

TEST(Stats, ResetAllClearsHistogramsToo)
{
    StatsRegistry s;
    s.counter("c") = 9;
    s.histogram("h").record(100);
    s.resetAll();
    EXPECT_EQ(s.get("c"), 0u);
    const Histogram *h = s.findHistogram("h");
    ASSERT_NE(h, nullptr); // name survives
    EXPECT_EQ(h->count(), 0u);
    EXPECT_EQ(h->max(), 0u);
}

TEST(Stats, DumpOrdersCountersThenHistogramsThenFormulas)
{
    // machine_test parses the text dump as "name uint64" pairs until
    // the stream fails, so every counter must precede the first
    // floating-point histogram/formula line regardless of name order.
    StatsRegistry s;
    s.counter("zz.counter") = 7;
    s.histogram("aa.hist").record(3);
    s.formula("ab.ratio", "zz.counter", "zz.counter");
    std::ostringstream os;
    s.dump(os);
    const std::string text = os.str();
    const size_t counter_pos = text.find("zz.counter 7");
    const size_t hist_pos = text.find("aa.hist.count");
    const size_t formula_pos = text.find("ab.ratio");
    ASSERT_NE(counter_pos, std::string::npos);
    ASSERT_NE(hist_pos, std::string::npos);
    ASSERT_NE(formula_pos, std::string::npos);
    EXPECT_LT(counter_pos, hist_pos);
    EXPECT_LT(hist_pos, formula_pos);
}

TEST(StatsJson, NestsDottedPaths)
{
    StatsRegistry s;
    s.counter("polb.hits") = 90;
    s.counter("polb.misses") = 10;
    s.counter("core.cycles") = 1000;
    std::ostringstream os;
    s.dumpJson(os);
    MiniJson j(os.str());
    ASSERT_TRUE(j.ok) << os.str();
    EXPECT_DOUBLE_EQ(j.numbers.at("polb.hits"), 90.0);
    EXPECT_DOUBLE_EQ(j.numbers.at("polb.misses"), 10.0);
    EXPECT_DOUBLE_EQ(j.numbers.at("core.cycles"), 1000.0);
    EXPECT_TRUE(j.objects.count("polb"));
    EXPECT_TRUE(j.objects.count("core"));
}

TEST(StatsJson, LeafAndInteriorNodeKeepsLeafUnderSelf)
{
    StatsRegistry s;
    s.counter("core.cycles") = 100;
    s.counter("core.cycles.alu") = 60;
    std::ostringstream os;
    s.dumpJson(os);
    MiniJson j(os.str());
    ASSERT_TRUE(j.ok) << os.str();
    EXPECT_DOUBLE_EQ(j.numbers.at("core.cycles.self"), 100.0);
    EXPECT_DOUBLE_EQ(j.numbers.at("core.cycles.alu"), 60.0);
}

TEST(StatsJson, RoundTripsCountersHistogramsAndFormulas)
{
    StatsRegistry s;
    s.counter("polb.hits") = 90;
    s.counter("polb.misses") = 10;
    s.counter("polb.accesses") = 100;
    s.formula("polb.miss_rate", "polb.misses", "polb.accesses");
    Histogram &h = s.histogram("polb.lookup_latency");
    for (uint64_t v = 1; v <= 100; ++v)
        h.record(v);
    std::ostringstream os;
    s.dumpJson(os);
    MiniJson j(os.str());
    ASSERT_TRUE(j.ok) << os.str();
    EXPECT_DOUBLE_EQ(j.numbers.at("polb.hits"), 90.0);
    EXPECT_DOUBLE_EQ(j.numbers.at("polb.miss_rate"), 0.1);
    EXPECT_DOUBLE_EQ(j.numbers.at("polb.lookup_latency.count"), 100.0);
    EXPECT_DOUBLE_EQ(j.numbers.at("polb.lookup_latency.min"), 1.0);
    EXPECT_DOUBLE_EQ(j.numbers.at("polb.lookup_latency.max"), 100.0);
    ASSERT_TRUE(j.numbers.count("polb.lookup_latency.p50"));
    ASSERT_TRUE(j.numbers.count("polb.lookup_latency.p95"));
    ASSERT_TRUE(j.numbers.count("polb.lookup_latency.p99"));
    const double p50 = j.numbers.at("polb.lookup_latency.p50");
    const double p95 = j.numbers.at("polb.lookup_latency.p95");
    EXPECT_LE(p50, p95);
    // Buckets serialize as [lo, hi, count] triples.
    EXPECT_TRUE(j.numbers.count("polb.lookup_latency.buckets[0][0]"));
}

TEST(StatsJson, EmptyRegistryIsAnEmptyObject)
{
    StatsRegistry s;
    std::ostringstream os;
    s.dumpJson(os);
    MiniJson j(os.str());
    EXPECT_TRUE(j.ok) << os.str();
}

TEST(StatsJson, IndentParameterOnlyShiftsLines)
{
    StatsRegistry s;
    s.counter("a.b") = 1;
    std::ostringstream plain, shifted;
    s.dumpJson(plain);
    s.dumpJson(shifted, 4);
    MiniJson j(shifted.str());
    EXPECT_TRUE(j.ok) << shifted.str();
    EXPECT_DOUBLE_EQ(j.numbers.at("a.b"), 1.0);
}

} // namespace
} // namespace poat
