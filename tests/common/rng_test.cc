/** @file Unit tests for the deterministic RNG. */
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace poat {
namespace {

TEST(Rng, SameSeedReplaysIdentically)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const uint64_t v = r.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng r(11);
    constexpr int kBuckets = 8;
    constexpr int kDraws = 80000;
    int counts[kBuckets] = {};
    for (int i = 0; i < kDraws; ++i)
        ++counts[r.below(kBuckets)];
    for (int c : counts) {
        EXPECT_GT(c, kDraws / kBuckets * 9 / 10);
        EXPECT_LT(c, kDraws / kBuckets * 11 / 10);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0, 10));
        EXPECT_TRUE(r.chance(10, 10));
    }
}

TEST(Rng, NoShortCycle)
{
    Rng r(17);
    std::set<uint64_t> seen;
    for (int i = 0; i < 10000; ++i)
        seen.insert(r.next());
    EXPECT_EQ(seen.size(), 10000u);
}

} // namespace
} // namespace poat
