/** @file Unit tests for the log2-bucketed histogram. */
#include <gtest/gtest.h>

#include "common/histogram.h"

namespace poat {
namespace {

TEST(Histogram, BucketBoundaries)
{
    // Bucket 0 is {0}; bucket k (k>=1) is [2^(k-1), 2^k).
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(7), 3u);
    EXPECT_EQ(Histogram::bucketOf(8), 4u);
    EXPECT_EQ(Histogram::bucketOf(~0ull), 64u);

    EXPECT_EQ(Histogram::bucketLo(0), 0u);
    EXPECT_EQ(Histogram::bucketHi(0), 0u);
    EXPECT_EQ(Histogram::bucketLo(4), 8u);
    EXPECT_EQ(Histogram::bucketHi(4), 15u);

    // Every value lands inside its own bucket's [lo, hi] range.
    for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 100ull, 1ull << 40}) {
        const uint32_t b = Histogram::bucketOf(v);
        EXPECT_GE(v, Histogram::bucketLo(b));
        EXPECT_LE(v, Histogram::bucketHi(b));
    }
}

TEST(Histogram, EmptyHistogramIsAllZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 0.0);
}

TEST(Histogram, TracksCountSumMinMaxMean)
{
    Histogram h;
    h.record(10);
    h.record(2);
    h.record(30);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 42u);
    EXPECT_EQ(h.min(), 2u);
    EXPECT_EQ(h.max(), 30u);
    EXPECT_DOUBLE_EQ(h.mean(), 14.0);
}

TEST(Histogram, SingleValueMakesEveryPercentileThatValue)
{
    // Clamping to [min, max] pins all percentiles of a constant
    // distribution to the constant, despite the bucket's width.
    Histogram h;
    for (int i = 0; i < 100; ++i)
        h.record(8);
    EXPECT_DOUBLE_EQ(h.percentile(1), 8.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 8.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 8.0);
}

TEST(Histogram, PercentilesOrderAndBracketBimodalDistribution)
{
    // 90% fast path (1 cycle), 10% slow path (~1000 cycles): p50 must
    // report the fast mode, p99 the slow mode's bucket.
    Histogram h;
    for (int i = 0; i < 90; ++i)
        h.record(1);
    for (int i = 0; i < 10; ++i)
        h.record(1000);
    EXPECT_DOUBLE_EQ(h.percentile(50), 1.0);
    const double p99 = h.percentile(99);
    EXPECT_GE(p99, 512.0); // inside 1000's bucket [512, 1023]
    EXPECT_LE(p99, 1000.0);
    EXPECT_LE(h.percentile(95), p99);
    EXPECT_LE(p99, h.percentile(100));
    EXPECT_DOUBLE_EQ(h.percentile(100), 1000.0);
}

TEST(Histogram, PercentileIsClampedToObservedRange)
{
    Histogram h;
    h.record(5); // bucket [4, 7]
    EXPECT_DOUBLE_EQ(h.percentile(0), 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 5.0);
}

TEST(Histogram, QuantileTakesFractionsAndMatchesPercentile)
{
    Histogram h;
    for (int i = 0; i < 90; ++i)
        h.record(1);
    for (int i = 0; i < 10; ++i)
        h.record(1000);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), h.percentile(50));
    EXPECT_DOUBLE_EQ(h.quantile(0.95), h.percentile(95));
    EXPECT_DOUBLE_EQ(h.quantile(0.99), h.percentile(99));
    // Out-of-range arguments clamp instead of misbehaving.
    EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
    EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(Histogram, QuantileOfEmptyHistogramIsZero)
{
    Histogram h;
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, QuantileOfSingleSampleIsThatSample)
{
    Histogram h;
    h.record(37); // bucket [32, 63]: clamping must still pin to 37
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 37.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 37.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 37.0);
}

TEST(Histogram, QuantileEdgeBuckets)
{
    // Values in bucket 0 ({0}) and the top bucket both survive the
    // interpolation math.
    Histogram h;
    for (int i = 0; i < 50; ++i)
        h.record(0);
    for (int i = 0; i < 50; ++i)
        h.record(~0ull);
    EXPECT_DOUBLE_EQ(h.quantile(0.25), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0),
                     static_cast<double>(~0ull));
    EXPECT_LE(h.quantile(0.25), h.quantile(0.75));
}

TEST(Histogram, BucketCountsMatchRecords)
{
    Histogram h;
    h.record(0);
    h.record(0);
    h.record(5);
    h.record(6);
    h.record(7);
    EXPECT_EQ(h.bucketCount(0), 2u); // {0}
    EXPECT_EQ(h.bucketCount(3), 3u); // [4, 7]
    EXPECT_EQ(h.bucketCount(1), 0u);
}

TEST(Histogram, ResetForgetsEverything)
{
    Histogram h;
    h.record(100);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.bucketCount(Histogram::bucketOf(100)), 0u);
    h.record(3); // usable after reset
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), 3u);
}

} // namespace
} // namespace poat
