/** @file Unit tests for bit utilities. */
#include <gtest/gtest.h>

#include "common/bits.h"

namespace poat {
namespace {

TEST(Bits, AlignUp)
{
    EXPECT_EQ(alignUp(0, 16), 0u);
    EXPECT_EQ(alignUp(1, 16), 16u);
    EXPECT_EQ(alignUp(16, 16), 16u);
    EXPECT_EQ(alignUp(17, 16), 32u);
    EXPECT_EQ(alignUp(4095, 4096), 4096u);
}

TEST(Bits, AlignDown)
{
    EXPECT_EQ(alignDown(0, 64), 0u);
    EXPECT_EQ(alignDown(63, 64), 0u);
    EXPECT_EQ(alignDown(64, 64), 64u);
    EXPECT_EQ(alignDown(130, 64), 128u);
}

TEST(Bits, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ull << 40));
    EXPECT_FALSE(isPow2((1ull << 40) + 1));
}

TEST(Bits, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2(~0ull), 63u);
}

TEST(Bits, BitsOf)
{
    EXPECT_EQ(bitsOf(0xdeadbeef, 7, 0), 0xefu);
    EXPECT_EQ(bitsOf(0xdeadbeef, 31, 16), 0xdeadu);
    EXPECT_EQ(bitsOf(~0ull, 63, 0), ~0ull);
    EXPECT_EQ(bitsOf(0b1100, 3, 2), 0b11u);
}

} // namespace
} // namespace poat
