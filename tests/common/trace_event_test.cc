/** @file Unit tests for the ring-buffered event tracer. */
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/trace_event.h"

namespace poat {
namespace {

std::vector<std::string>
lines(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string line;
    while (std::getline(is, line))
        out.push_back(line);
    return out;
}

TEST(EventTracer, StartsEmpty)
{
    EventTracer t(16);
    EXPECT_EQ(t.recorded(), 0u);
    EXPECT_EQ(t.total(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
    EXPECT_EQ(t.capacity(), 16u);
}

TEST(EventTracer, RecordsUpToCapacity)
{
    EventTracer t(8);
    for (uint64_t i = 0; i < 5; ++i)
        t.record(100 + i, TraceComponent::Polb, TraceOutcome::Hit, i, 3);
    EXPECT_EQ(t.recorded(), 5u);
    EXPECT_EQ(t.dropped(), 0u);
}

TEST(EventTracer, RingOverwritesOldestAndCountsDropped)
{
    EventTracer t(4);
    for (uint64_t i = 0; i < 6; ++i)
        t.record(i, TraceComponent::Pot, TraceOutcome::Walk, i, 30);
    EXPECT_EQ(t.recorded(), 4u);
    EXPECT_EQ(t.total(), 6u);
    EXPECT_EQ(t.dropped(), 2u);

    // Serialization starts at the oldest survivor (cycle 2).
    std::ostringstream os;
    t.serialize(os);
    const auto ls = lines(os.str());
    std::vector<std::string> events;
    for (const auto &l : ls)
        if (l.rfind("E ", 0) == 0)
            events.push_back(l);
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().rfind("E 2 ", 0), 0u);
    EXPECT_EQ(events.back().rfind("E 5 ", 0), 0u);
}

TEST(EventTracer, SerializeFormat)
{
    EventTracer t(16);
    t.marker(0, "begin run");
    t.record(7, TraceComponent::Polb, TraceOutcome::Miss, 0xabc, 60);
    t.marker(9, "end run");
    std::ostringstream os;
    t.serialize(os);
    const auto ls = lines(os.str());
    ASSERT_GE(ls.size(), 5u);
    EXPECT_EQ(ls[0], "poat-trace v1");
    // Comment lines carry the dropped count for trace_convert.
    bool saw_dropped = false;
    for (const auto &l : ls)
        if (l.rfind("# dropped 0", 0) == 0)
            saw_dropped = true;
    EXPECT_TRUE(saw_dropped);
    bool saw_marker = false, saw_event = false;
    for (const auto &l : ls) {
        if (l == "M 0 begin run")
            saw_marker = true;
        if (l == "E 7 polb miss 0xabc 60")
            saw_event = true;
    }
    EXPECT_TRUE(saw_marker) << os.str();
    EXPECT_TRUE(saw_event) << os.str();
}

TEST(EventTracer, ResetDropsEventsAndMarkers)
{
    EventTracer t(4);
    t.record(1, TraceComponent::Tlb, TraceOutcome::Miss, 1, 7);
    t.marker(2, "m");
    t.reset();
    EXPECT_EQ(t.recorded(), 0u);
    EXPECT_EQ(t.total(), 0u);
    std::ostringstream os;
    t.serialize(os);
    for (const auto &l : lines(os.str())) {
        EXPECT_NE(l.rfind("E ", 0), 0u) << l;
        EXPECT_NE(l.rfind("M ", 0), 0u) << l;
    }
}

TEST(EventTracer, ComponentAndOutcomeNamesAreStable)
{
    // These strings are part of the poat-trace v1 format; renaming them
    // breaks tools/trace_convert and saved traces.
    EXPECT_STREQ(traceComponentName(TraceComponent::Polb), "polb");
    EXPECT_STREQ(traceComponentName(TraceComponent::Pot), "pot");
    EXPECT_STREQ(traceComponentName(TraceComponent::Tlb), "tlb");
    EXPECT_STREQ(traceComponentName(TraceComponent::NvAccess), "nv");
    EXPECT_STREQ(traceComponentName(TraceComponent::SwTranslate),
                 "sw_translate");
    EXPECT_STREQ(traceOutcomeName(TraceOutcome::Hit), "hit");
    EXPECT_STREQ(traceOutcomeName(TraceOutcome::Miss), "miss");
    EXPECT_STREQ(traceOutcomeName(TraceOutcome::Walk), "walk");
    EXPECT_STREQ(traceOutcomeName(TraceOutcome::Load), "load");
    EXPECT_STREQ(traceOutcomeName(TraceOutcome::Store), "store");
    EXPECT_STREQ(traceOutcomeName(TraceOutcome::Flush), "flush");
}

TEST(EventTracer, AcquireGrantsExclusiveProducerRights)
{
    EventTracer t(4);
    EXPECT_FALSE(t.acquired());
    t.acquire();
    EXPECT_TRUE(t.acquired());
    t.release();
    EXPECT_FALSE(t.acquired());

    // Sequential reuse is explicitly allowed.
    t.acquire();
    t.release();
    t.acquire();
    EXPECT_TRUE(t.acquired());
    t.release();
}

TEST(EventTracerDeathTest, DoubleAcquirePanics)
{
    // "threadsafe" re-executes the death test in a fresh process, which
    // keeps it valid under TSan and in multi-threaded test binaries.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EventTracer t(4);
    t.acquire();
    EXPECT_DEATH(t.acquire(), "shared by two concurrent producers");
    t.release();
}

TEST(EventTracerDeathTest, ReleaseWithoutAcquirePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EventTracer t(4);
    EXPECT_DEATH(t.release(), "release without acquire");
}

TEST(PoatTraceMacro, NullTracerIsSafe)
{
    EventTracer *none = nullptr;
    POAT_TRACE(none, 1, TraceComponent::Polb, TraceOutcome::Hit, 2, 3);
    SUCCEED();
}

TEST(PoatTraceMacro, RecordsThroughNonNullTracer)
{
    EventTracer t(4);
    EventTracer *tp = &t;
    POAT_TRACE(tp, 11, TraceComponent::NvAccess, TraceOutcome::Store,
               0x5, 9);
#if POAT_TRACE_ENABLED
    EXPECT_EQ(t.recorded(), 1u);
#else
    EXPECT_EQ(t.recorded(), 0u);
#endif
}

} // namespace
} // namespace poat
