/**
 * @file
 * CRC32C codec tests: known-answer vectors against the published
 * CRC-32C (Castagnoli) check values, the incremental/rolling property
 * every on-media structure relies on for resealing, and the seed
 * conventions that make an all-zero image decode the way each
 * structure needs (valid-idle for the undo log, invalid for heap block
 * headers).
 */
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/crc32c.h"

namespace poat {
namespace {

TEST(Crc32c, KnownAnswerVectors)
{
    // The canonical CRC-32C check value (RFC 3720 appendix, every CRC
    // catalogue): "123456789" -> 0xE3069283.
    EXPECT_EQ(crc32cStd("123456789", 9), 0xE3069283u);

    // iSCSI test vectors from RFC 3720: 32 bytes of zeros and 32 bytes
    // of 0xFF.
    std::vector<uint8_t> buf(32, 0x00);
    EXPECT_EQ(crc32cStd(buf.data(), buf.size()), 0x8A9136AAu);
    buf.assign(32, 0xFF);
    EXPECT_EQ(crc32cStd(buf.data(), buf.size()), 0x62A8AB43u);

    // An ascending byte ramp, also from RFC 3720.
    for (size_t i = 0; i < 32; ++i)
        buf[i] = static_cast<uint8_t>(i);
    EXPECT_EQ(crc32cStd(buf.data(), buf.size()), 0x46DD794Eu);
}

TEST(Crc32c, StdFormIsInvertedRawForm)
{
    const char *msg = "123456789";
    EXPECT_EQ(crc32cStd(msg, 9), ~crc32c(msg, 9, 0xFFFFFFFFu));
}

TEST(Crc32c, EmptyInputReturnsSeed)
{
    EXPECT_EQ(crc32c(nullptr, 0, 0u), 0u);
    EXPECT_EQ(crc32c(nullptr, 0, 0xDEADBEEFu), 0xDEADBEEFu);
}

TEST(Crc32c, IncrementalMatchesOneShot)
{
    // crc32c(a + b) == crc32c(b, crc32c(a)) for every split point —
    // the rolling property that lets recovery reseal a structure
    // without re-reading what it already summed.
    const std::string data = "hardware supported persistent object "
                             "address translation";
    const uint32_t whole = crc32c(data.data(), data.size(), 0x12345678u);
    for (size_t split = 0; split <= data.size(); ++split) {
        const uint32_t part = crc32c(data.data(), split, 0x12345678u);
        EXPECT_EQ(crc32c(data.data() + split, data.size() - split, part),
                  whole)
            << "split at " << split;
    }
}

TEST(Crc32c, ZeroSeedMakesAllZerosSelfConsistent)
{
    // Seed 0 over zeros stays 0: a freshly zeroed undo-log header
    // (state/num_entries/used/crc all zero) is validly sealed, which is
    // exactly the "nothing to recover" a fresh pool means.
    std::vector<uint8_t> zeros(64, 0);
    EXPECT_EQ(crc32c(zeros.data(), zeros.size(), 0u), 0u);
}

TEST(Crc32c, NonzeroSeedRejectsAllZeros)
{
    // A nonzero seed (BlockHeader::kMagic style) makes the all-zero
    // image checksum to something nonzero, so a never-written header
    // cannot masquerade as valid.
    std::vector<uint8_t> zeros(12, 0);
    EXPECT_NE(crc32c(zeros.data(), zeros.size(), 0xb10cb10cu), 0u);
}

TEST(Crc32c, EveryBitFlipChangesTheSum)
{
    uint8_t block[24];
    for (size_t i = 0; i < sizeof(block); ++i)
        block[i] = static_cast<uint8_t>(0xA5 ^ i);
    const uint32_t ref = crc32c(block, sizeof(block), 7u);
    for (size_t byte = 0; byte < sizeof(block); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            block[byte] ^= static_cast<uint8_t>(1u << bit);
            EXPECT_NE(crc32c(block, sizeof(block), 7u), ref)
                << "undetected flip at byte " << byte << " bit " << bit;
            block[byte] ^= static_cast<uint8_t>(1u << bit);
        }
    }
    EXPECT_EQ(crc32c(block, sizeof(block), 7u), ref);
}

} // namespace
} // namespace poat
