/**
 * @file
 * Shape tests for the paper's headline results: these assert the
 * *qualitative* claims of the evaluation at reduced scale, so any
 * change that breaks the reproduction fails here before the full
 * bench harness would show it.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "driver/experiment.h"

namespace poat {
namespace driver {
namespace {

using workloads::PoolPattern;

ExperimentConfig
base(const std::string &wl, PoolPattern p,
     sim::CoreType core = sim::CoreType::InOrder, bool tx = true)
{
    ExperimentConfig c;
    c.workload = wl;
    c.pattern = p;
    c.scale_pct = 15;
    c.transactions = tx;
    c.machine.core = core;
    return c;
}

ExperimentConfig
opt(ExperimentConfig c, sim::PolbDesign d = sim::PolbDesign::Pipelined,
    bool ideal = false)
{
    c.mode = TranslationMode::Hardware;
    c.machine.polb_design = d;
    c.machine.ideal_translation = ideal;
    return c;
}

TEST(Shapes, HardwareTranslationWinsOnRandom)
{
    // Figure 9(a): every benchmark speeds up on RANDOM; LL the most.
    double ll_speedup = 0;
    for (const auto &wl : workloads::microbenchNames()) {
        const auto b = runExperiment(base(wl, PoolPattern::Random));
        const auto o = runExperiment(opt(base(wl, PoolPattern::Random)));
        const double s = speedup(b, o);
        EXPECT_GT(s, 1.15) << wl;
        if (wl == "LL")
            ll_speedup = s;
        else
            EXPECT_LT(s, ll_speedup) << wl << " should trail LL";
    }
}

TEST(Shapes, AllPatternShowsSmallestGains)
{
    // ALL leverages the BASE predictor, so hardware helps least there.
    for (const auto &wl : {"LL", "BST", "B+T"}) {
        const auto b_all = runExperiment(base(wl, PoolPattern::All));
        const auto o_all = runExperiment(opt(base(wl, PoolPattern::All)));
        const auto b_rnd = runExperiment(base(wl, PoolPattern::Random));
        const auto o_rnd =
            runExperiment(opt(base(wl, PoolPattern::Random)));
        EXPECT_LT(speedup(b_all, o_all), speedup(b_rnd, o_rnd)) << wl;
    }
}

TEST(Shapes, PipelinedBeatsParallelWithTransactions)
{
    // Figure 9(a)/Table 8: Parallel pays double miss penalty and page-
    // granular contention; with logging it never beats Pipelined.
    for (const auto &wl : {"LL", "BST", "BT"}) {
        for (const auto p : {PoolPattern::Each, PoolPattern::Random}) {
            const auto b = runExperiment(base(wl, p));
            const auto pipe = runExperiment(opt(base(wl, p)));
            const auto par = runExperiment(
                opt(base(wl, p), sim::PolbDesign::Parallel));
            EXPECT_GE(speedup(b, pipe) * 1.02, speedup(b, par))
                << wl << " " << static_cast<int>(p);
        }
    }
}

TEST(Shapes, IdealBoundsPipelined)
{
    for (const auto &wl : {"LL", "RBT"}) {
        const auto b = runExperiment(base(wl, PoolPattern::Each));
        const auto pipe = runExperiment(opt(base(wl, PoolPattern::Each)));
        const auto ideal = runExperiment(
            opt(base(wl, PoolPattern::Each), sim::PolbDesign::Pipelined,
                /*ideal=*/true));
        EXPECT_LE(speedup(b, pipe), speedup(b, ideal) + 1e-9) << wl;
    }
    // LL-EACH thrashes the POLB, so its gap to ideal is large (paper
    // calls this out explicitly).
    const auto b = runExperiment(base("LL", PoolPattern::Each));
    const auto pipe = runExperiment(opt(base("LL", PoolPattern::Each)));
    const auto ideal = runExperiment(opt(
        base("LL", PoolPattern::Each), sim::PolbDesign::Pipelined, true));
    EXPECT_GT(speedup(b, ideal), speedup(b, pipe) * 1.1);
}

TEST(Shapes, OutOfOrderHidesPartOfTheSoftwareCost)
{
    // Figure 9(b): OoO speedups are lower than in-order ones.
    for (const auto &wl : {"LL", "BST", "B+T"}) {
        const auto bio = runExperiment(base(wl, PoolPattern::Random));
        const auto oio = runExperiment(opt(base(wl, PoolPattern::Random)));
        const auto boo = runExperiment(
            base(wl, PoolPattern::Random, sim::CoreType::OutOfOrder));
        const auto ooo = runExperiment(opt(
            base(wl, PoolPattern::Random, sim::CoreType::OutOfOrder)));
        EXPECT_LT(speedup(boo, ooo), speedup(bio, oio)) << wl;
        // And the OoO machine is itself faster than the in-order one.
        EXPECT_LT(boo.metrics.cycles, bio.metrics.cycles) << wl;
    }
}

TEST(Shapes, NtxSpeedupsExceedTxSpeedups)
{
    // Figure 10: without logging/persists the translation fraction
    // grows, so OPT helps more.
    for (const auto &wl : {"LL", "BST", "BT"}) {
        const auto btx = runExperiment(base(wl, PoolPattern::Random));
        const auto otx = runExperiment(opt(base(wl, PoolPattern::Random)));
        const auto bntx = runExperiment(
            base(wl, PoolPattern::Random, sim::CoreType::InOrder, false));
        const auto ontx = runExperiment(opt(base(
            wl, PoolPattern::Random, sim::CoreType::InOrder, false)));
        EXPECT_GT(speedup(bntx, ontx), speedup(btx, otx)) << wl;
    }
}

TEST(Shapes, PolbSizeSaturatesAtPoolCount)
{
    // Figure 11: on RANDOM (32 pools), size 32 recovers nearly all of
    // size 128's performance, and no POLB is clearly worse than 32.
    const auto b = runExperiment(base("BST", PoolPattern::Random));
    auto cfg0 = opt(base("BST", PoolPattern::Random));
    cfg0.machine.polb_entries = 0;
    auto cfg32 = opt(base("BST", PoolPattern::Random));
    cfg32.machine.polb_entries = 32;
    auto cfg128 = opt(base("BST", PoolPattern::Random));
    cfg128.machine.polb_entries = 128;
    const double s0 = speedup(b, runExperiment(cfg0));
    const double s32 = speedup(b, runExperiment(cfg32));
    const double s128 = speedup(b, runExperiment(cfg128));
    EXPECT_LT(s0, s32 * 0.8);
    EXPECT_GT(s32, s128 * 0.97);
}

TEST(Shapes, PotWalkPenaltyHurtsHighMissWorkloads)
{
    // Figure 12: LL-EACH degrades steeply with POT-walk latency; B+T
    // barely moves.
    auto sweep = [&](const char *wl, uint32_t penalty) {
        const auto b = runExperiment(base(wl, PoolPattern::Each));
        auto cfg = opt(base(wl, PoolPattern::Each));
        cfg.machine.pot_walk_pipelined = penalty;
        return speedup(b, runExperiment(cfg));
    };
    const double ll30 = sweep("LL", 30);
    const double ll500 = sweep("LL", 500);
    const double bpt30 = sweep("B+T", 30);
    const double bpt500 = sweep("B+T", 500);
    EXPECT_LT(ll500, ll30 * 0.6);
    EXPECT_GT(bpt500, bpt30 * 0.6);
}

TEST(Shapes, HardwareReducesDynamicInstructions)
{
    // Headline: large dynamic-instruction reduction from removing
    // oid_direct expansions.
    const auto b = runExperiment(base("BST", PoolPattern::Random));
    const auto o = runExperiment(opt(base("BST", PoolPattern::Random)));
    const double reduction = 1.0 -
        static_cast<double>(o.metrics.instructions) /
            static_cast<double>(b.metrics.instructions);
    EXPECT_GT(reduction, 0.30);
    EXPECT_LT(reduction, 0.95);
    // Checksums agree: same logical work was simulated.
    EXPECT_EQ(b.workload_checksum, o.workload_checksum);
}

TEST(Shapes, TpccGainsAreModestButReal)
{
    ExperimentConfig b;
    b.workload = "TPCC";
    b.placement = workloads::tpcc::Placement::Each;
    b.tpcc_scale_pct = 2;
    b.tpcc_txns = 120;
    const auto rb = runExperiment(b);
    auto o = b;
    o.mode = TranslationMode::Hardware;
    const auto ro = runExperiment(o);
    const double s = speedup(rb, ro);
    EXPECT_GT(s, 1.05);
    EXPECT_LT(s, 1.6);
    EXPECT_EQ(rb.workload_checksum, ro.workload_checksum);
}

TEST(Geomean, MatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 2.0, 4.0}), 2.0, 1e-12);
}

TEST(Telemetry, ResultCarriesTheFullStatsRegistry)
{
    const auto r = runExperiment(opt(base("LL", PoolPattern::Random)));
    EXPECT_EQ(r.stats.get("core.cycles"), r.metrics.cycles);
    EXPECT_EQ(r.stats.get("core.instructions"), r.metrics.instructions);
    EXPECT_GT(r.stats.get("polb.accesses"), 0u);
    EXPECT_GT(r.stats.get("workload.operations"), 0u);
    // The POLB lookup-latency histogram saw every translated access.
    const Histogram *h = r.stats.findHistogram("polb.lookup_latency");
    ASSERT_NE(h, nullptr);
    EXPECT_GT(h->count(), 0u);
}

TEST(Telemetry, BaseRunsProfileTheSoftwareTranslator)
{
    const auto r = runExperiment(base("BST", PoolPattern::Each));
    EXPECT_EQ(r.stats.get("sw_translate.calls"), r.translate_calls);
    const Histogram *h =
        r.stats.findHistogram("sw_translate.insns_per_call");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), r.translate_calls);
    EXPECT_NEAR(h->mean(), r.translate_insns_per_call, 1e-9);
}

TEST(Telemetry, ObserverSeesEveryRunWithItsLabel)
{
    std::vector<std::string> labels;
    setExperimentObserver(
        [&](const ExperimentConfig &cfg, const ExperimentResult &res) {
            labels.push_back(configLabel(cfg));
            EXPECT_GT(res.metrics.cycles, 0u);
        });
    runExperiment(base("LL", PoolPattern::All));
    runExperiment(opt(base("LL", PoolPattern::All)));
    setExperimentObserver(nullptr);
    ASSERT_EQ(labels.size(), 2u);
    EXPECT_EQ(labels[0], "LL.ALL.base.inorder");
    EXPECT_EQ(labels[1], "LL.ALL.opt_pipelined.inorder");
}

TEST(Telemetry, ConfigLabelCoversTheVariantAxes)
{
    auto c = base("BT", PoolPattern::Random, sim::CoreType::OutOfOrder,
                  /*tx=*/false);
    EXPECT_EQ(configLabel(c), "BT.RANDOM.base.ooo.ntx");
    EXPECT_EQ(configLabel(opt(c, sim::PolbDesign::Parallel)),
              "BT.RANDOM.opt_parallel.ooo.ntx");
    EXPECT_EQ(configLabel(opt(c, sim::PolbDesign::Pipelined, true)),
              "BT.RANDOM.opt_ideal.ooo.ntx");
    c.label = "custom";
    EXPECT_EQ(configLabel(c), "custom");
}

TEST(Telemetry, AttachedTracerRecordsTranslationEvents)
{
    EventTracer tracer(1u << 16);
    auto cfg = opt(base("LL", PoolPattern::Random));
    cfg.tracer = &tracer;
    runExperiment(cfg);
#if POAT_TRACE_ENABLED
    EXPECT_GT(tracer.total(), 0u);
#endif
    // Run-boundary markers are always present.
    std::ostringstream os;
    tracer.serialize(os);
    EXPECT_NE(os.str().find("M 0 begin LL.RANDOM.opt_pipelined.inorder"),
              std::string::npos);
}

TEST(Telemetry, TracerDoesNotPerturbTiming)
{
    EventTracer tracer(1u << 16);
    auto traced = opt(base("BST", PoolPattern::Each));
    traced.tracer = &tracer;
    const auto with = runExperiment(traced);
    const auto without =
        runExperiment(opt(base("BST", PoolPattern::Each)));
    EXPECT_EQ(with.metrics.cycles, without.metrics.cycles);
    EXPECT_EQ(with.workload_checksum, without.workload_checksum);
}

} // namespace
} // namespace driver
} // namespace poat
