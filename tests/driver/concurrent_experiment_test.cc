/**
 * @file
 * Driver-level tests for the concurrent workloads: BASE/OPT functional
 * equivalence, per-core statistics (and the per-core CPI invariant),
 * single-core stats-key compatibility, engine.* counter export, sweep
 * equivalence across --jobs values, and the concurrency-observability
 * subtrees (lock.*, sched.*, cp.*, tx.abort.*, commit.batch.*) with
 * their observer-only guarantees.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "common/cpi.h"
#include "driver/experiment.h"
#include "driver/sweep.h"

namespace poat {
namespace driver {
namespace {

ExperimentConfig
lhtConfig(TranslationMode mode, uint32_t threads)
{
    ExperimentConfig c;
    c.workload = "LHT";
    c.scale_pct = 10;
    c.threads = threads;
    c.sched_seed = 7;
    c.mode = mode;
    c.seed = 1;
    return c;
}

ExperimentConfig
mtpccConfig(TranslationMode mode, uint32_t threads)
{
    ExperimentConfig c;
    c.workload = "MTPCC";
    c.placement = workloads::tpcc::Placement::All;
    c.tpcc_scale_pct = 2;
    c.tpcc_txns = 30;
    c.threads = threads;
    c.sched_seed = 7;
    c.mode = mode;
    c.seed = 1;
    return c;
}

TEST(ConcurrentExperiment, BaseAndOptAgreeFunctionally)
{
    // Translation mode is a timing choice; the committed state — and
    // so the workload checksum — must be bit-identical across it.
    const auto lht_base =
        runExperiment(lhtConfig(TranslationMode::Software, 4));
    const auto lht_opt =
        runExperiment(lhtConfig(TranslationMode::Hardware, 4));
    EXPECT_EQ(lht_base.workload_checksum, lht_opt.workload_checksum);
    EXPECT_NE(lht_base.workload_checksum, 0u);

    const auto mt_base =
        runExperiment(mtpccConfig(TranslationMode::Software, 2));
    const auto mt_opt =
        runExperiment(mtpccConfig(TranslationMode::Hardware, 2));
    EXPECT_EQ(mt_base.workload_checksum, mt_opt.workload_checksum);
}

TEST(ConcurrentExperiment, ExportsPerCoreStatsAndCpiInvariant)
{
    const auto res =
        runExperiment(lhtConfig(TranslationMode::Hardware, 4));
    const auto &counters = res.stats.counters();
    ASSERT_TRUE(counters.count("core.count"));
    EXPECT_EQ(counters.at("core.count"), 4u);

    uint64_t makespan = 0;
    for (uint32_t i = 0; i < 4; ++i) {
        const std::string p = "core." + std::to_string(i) + ".";
        ASSERT_TRUE(counters.count(p + "cycles")) << p;
        const uint64_t cycles = counters.at(p + "cycles");
        EXPECT_GT(cycles, 0u) << "core " << i << " never ran";
        makespan = std::max(makespan, cycles);

        // Per-core CPI invariant: the stack's components sum exactly
        // to that core's cycles.
        ASSERT_TRUE(res.stats.cpiStacks().count(p + "cpi"));
        EXPECT_EQ(res.stats.cpiStacks().at(p + "cpi").total(), cycles);
    }
    // Machine-wide cycles is the makespan across cores.
    EXPECT_EQ(counters.at("core.cycles"), makespan);
    EXPECT_EQ(res.metrics.cycles, makespan);

    // Engine aggregates ride along as engine.* counters.
    ASSERT_TRUE(counters.count("engine.commits"));
    EXPECT_EQ(counters.at("engine.commits"), res.engine.commits);
    EXPECT_GT(res.engine.commits, 0u);
    EXPECT_GT(res.engine.switches, 0u);
}

TEST(ConcurrentExperiment, SingleCoreKeepsFlatStatsKeys)
{
    // Sequential workloads must emit exactly the historical flat names
    // — golden baselines and stats_diff gates depend on the shape.
    ExperimentConfig c;
    c.workload = "SPS";
    c.scale_pct = 5;
    c.mode = TranslationMode::Hardware;
    const auto res = runExperiment(c);
    const auto &counters = res.stats.counters();
    EXPECT_TRUE(counters.count("core.cycles"));
    EXPECT_FALSE(counters.count("core.count"));
    EXPECT_FALSE(counters.count("core.0.cycles"));
    ASSERT_TRUE(res.stats.cpiStacks().count("core.cpi"));
    EXPECT_EQ(res.stats.cpiStacks().at("core.cpi").total(),
              res.metrics.cycles);
}

TEST(ConcurrentExperiment, SweepIsJobCountInvariant)
{
    std::vector<ExperimentConfig> cfgs = {
        lhtConfig(TranslationMode::Software, 2),
        lhtConfig(TranslationMode::Hardware, 2),
        mtpccConfig(TranslationMode::Hardware, 2),
    };
    SweepOptions serial;
    serial.jobs = 1;
    SweepOptions wide;
    wide.jobs = 4;
    const auto a = runSweep(cfgs, serial);
    const auto b = runSweep(cfgs, wide);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].metrics.cycles, b[i].metrics.cycles) << i;
        EXPECT_EQ(a[i].workload_checksum, b[i].workload_checksum) << i;
        EXPECT_EQ(a[i].engine.commits, b[i].engine.commits) << i;
        EXPECT_EQ(a[i].engine.switches, b[i].engine.switches) << i;
    }
}

TEST(ConcurrentExperiment, SchedSeedChangesInterleavingNotSafety)
{
    // A different interleaving seed reorders commits (different
    // checksum is expected and fine) but every run still completes
    // all transactions.
    const auto a =
        runExperiment(mtpccConfig(TranslationMode::Hardware, 4));
    auto cfg = mtpccConfig(TranslationMode::Hardware, 4);
    cfg.sched_seed = 99;
    const auto b = runExperiment(cfg);
    EXPECT_EQ(a.engine.commits, b.engine.commits);
    EXPECT_EQ(a.workload_operations, b.workload_operations);
}

std::string
statsJson(const ExperimentResult &res)
{
    std::ostringstream os;
    res.stats.dumpJson(os);
    return os.str();
}

std::string
scratchDir()
{
    static const std::string dir = [] {
        std::string d = testing::TempDir() + "concurrent_exp_test." +
            std::to_string(::getpid());
        std::filesystem::create_directories(d);
        return d;
    }();
    return dir;
}

TEST(ConcurrentExperiment, ContentionStatsPopulatedAtFourCores)
{
    for (const auto &cfg : {lhtConfig(TranslationMode::Hardware, 4),
                            mtpccConfig(TranslationMode::Hardware, 4)}) {
        const auto res = runExperiment(cfg);
        const auto &c = res.stats.counters();
        SCOPED_TRACE(cfg.workload);

        ASSERT_TRUE(c.count("lock.acquisitions"));
        EXPECT_GT(c.at("lock.acquisitions"), 0u);
        ASSERT_TRUE(c.count("lock.waits"));
        ASSERT_TRUE(c.count("lock.waits_for_edges"));
        ASSERT_TRUE(c.count("lock.deadlock_victims"));
        if (c.at("lock.waits") > 0) {
            // Any wait puts its key into the top-contended table.
            ASSERT_TRUE(c.count("lock.top.count"));
            EXPECT_GT(c.at("lock.top.count"), 0u);
            EXPECT_TRUE(c.count("lock.top.0.key"));
            EXPECT_TRUE(c.count("lock.top.0.wait_cycles"));
        }

        // Aborted/retried work attribution and group-commit occupancy.
        ASSERT_TRUE(c.count("tx.abort.count"));
        ASSERT_TRUE(c.count("tx.abort.wasted_total"));
        ASSERT_TRUE(c.count("commit.batch.windows"));
        EXPECT_GT(c.at("commit.batch.windows"), 0u);
        EXPECT_NE(res.stats.findHistogram("commit.batch.occupancy"),
                  nullptr);

        // Critical path: positive, bounded by the makespan, and cut
        // into at least one segment per core.
        ASSERT_TRUE(c.count("cp.length"));
        ASSERT_TRUE(c.count("core.cycles"));
        EXPECT_GT(c.at("cp.length"), 0u);
        EXPECT_LE(c.at("cp.length"), c.at("core.cycles"));
        EXPECT_GE(c.at("cp.segments"), 4u);

        // Blocked-cycle attribution: running + the four blocked
        // reasons sum exactly to the makespan on every core.
        const uint64_t mk = c.at("core.cycles");
        for (uint32_t i = 0; i < 4; ++i) {
            const std::string p =
                "sched.core." + std::to_string(i) + ".";
            ASSERT_TRUE(c.count(p + "running")) << p;
            uint64_t sum = c.at(p + "running");
            for (const char *r :
                 {"token_wait", "lock_wait", "commit_wait", "idle_done"})
                sum += c.at(p + "blocked." + std::string(r));
            EXPECT_EQ(sum, mk) << "core " << i;
        }
    }
}

TEST(ConcurrentExperiment, TimelineCoreLanesAreObserverOnly)
{
    // The per-core timeline lanes (and the timeline itself) must not
    // perturb the run: metrics, checksum, and the serialized stats
    // report are bit-identical with instrumentation on or off.
    const auto base = lhtConfig(TranslationMode::Hardware, 4);
    const auto plain = runExperiment(base);

    auto cfg = base;
    cfg.timeline_interval = 2000;
    cfg.timeline_path = scratchDir() + "/lanes.tl";
    cfg.timeline_cores = true;
    const auto instrumented = runExperiment(cfg);

    EXPECT_EQ(plain.metrics.cycles, instrumented.metrics.cycles);
    EXPECT_EQ(plain.workload_checksum, instrumented.workload_checksum);
    EXPECT_EQ(statsJson(plain), statsJson(instrumented));
}

TEST(ConcurrentExperiment, TraceReplayKeepsContentionStats)
{
    // Concurrency observability must survive the trace cache: a replay
    // hit reproduces the exact lock.*/sched.*/cp.* subtrees of the
    // live run (the instrumentation itself is excluded from the
    // functional fingerprint).
    const std::string cache = scratchDir() + "/trace_cache";
    std::filesystem::create_directories(cache);
    auto cfg = lhtConfig(TranslationMode::Hardware, 4);
    cfg.trace_cache = cache;
    const auto live = runExperiment(cfg); // miss: runs live, captures
    const auto replay = runExperiment(cfg); // hit: replays the capture
    EXPECT_EQ(live.metrics.cycles, replay.metrics.cycles);
    EXPECT_EQ(statsJson(live), statsJson(replay));

    // And the replayed stats match the uncached run too.
    auto nocache = lhtConfig(TranslationMode::Hardware, 4);
    const auto fresh = runExperiment(nocache);
    EXPECT_EQ(statsJson(fresh), statsJson(replay));
}

TEST(ConcurrentExperiment, SweepExportsContentionPerRun)
{
    std::vector<ExperimentConfig> cfgs = {
        lhtConfig(TranslationMode::Software, 2),
        lhtConfig(TranslationMode::Hardware, 2),
    };
    SweepOptions opt;
    opt.jobs = 2;
    const auto rs = runSweep(cfgs, opt);
    ASSERT_EQ(rs.size(), 2u);
    for (const auto &r : rs) {
        const auto &c = r.stats.counters();
        ASSERT_TRUE(c.count("lock.acquisitions"));
        ASSERT_TRUE(c.count("cp.length"));
        EXPECT_LE(c.at("cp.length"), c.at("core.cycles"));
    }
}

} // namespace
} // namespace driver
} // namespace poat
