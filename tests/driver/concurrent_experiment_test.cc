/**
 * @file
 * Driver-level tests for the concurrent workloads: BASE/OPT functional
 * equivalence, per-core statistics (and the per-core CPI invariant),
 * single-core stats-key compatibility, engine.* counter export, and
 * sweep equivalence across --jobs values.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/cpi.h"
#include "driver/experiment.h"
#include "driver/sweep.h"

namespace poat {
namespace driver {
namespace {

ExperimentConfig
lhtConfig(TranslationMode mode, uint32_t threads)
{
    ExperimentConfig c;
    c.workload = "LHT";
    c.scale_pct = 10;
    c.threads = threads;
    c.sched_seed = 7;
    c.mode = mode;
    c.seed = 1;
    return c;
}

ExperimentConfig
mtpccConfig(TranslationMode mode, uint32_t threads)
{
    ExperimentConfig c;
    c.workload = "MTPCC";
    c.placement = workloads::tpcc::Placement::All;
    c.tpcc_scale_pct = 2;
    c.tpcc_txns = 30;
    c.threads = threads;
    c.sched_seed = 7;
    c.mode = mode;
    c.seed = 1;
    return c;
}

TEST(ConcurrentExperiment, BaseAndOptAgreeFunctionally)
{
    // Translation mode is a timing choice; the committed state — and
    // so the workload checksum — must be bit-identical across it.
    const auto lht_base =
        runExperiment(lhtConfig(TranslationMode::Software, 4));
    const auto lht_opt =
        runExperiment(lhtConfig(TranslationMode::Hardware, 4));
    EXPECT_EQ(lht_base.workload_checksum, lht_opt.workload_checksum);
    EXPECT_NE(lht_base.workload_checksum, 0u);

    const auto mt_base =
        runExperiment(mtpccConfig(TranslationMode::Software, 2));
    const auto mt_opt =
        runExperiment(mtpccConfig(TranslationMode::Hardware, 2));
    EXPECT_EQ(mt_base.workload_checksum, mt_opt.workload_checksum);
}

TEST(ConcurrentExperiment, ExportsPerCoreStatsAndCpiInvariant)
{
    const auto res =
        runExperiment(lhtConfig(TranslationMode::Hardware, 4));
    const auto &counters = res.stats.counters();
    ASSERT_TRUE(counters.count("core.count"));
    EXPECT_EQ(counters.at("core.count"), 4u);

    uint64_t makespan = 0;
    for (uint32_t i = 0; i < 4; ++i) {
        const std::string p = "core." + std::to_string(i) + ".";
        ASSERT_TRUE(counters.count(p + "cycles")) << p;
        const uint64_t cycles = counters.at(p + "cycles");
        EXPECT_GT(cycles, 0u) << "core " << i << " never ran";
        makespan = std::max(makespan, cycles);

        // Per-core CPI invariant: the stack's components sum exactly
        // to that core's cycles.
        ASSERT_TRUE(res.stats.cpiStacks().count(p + "cpi"));
        EXPECT_EQ(res.stats.cpiStacks().at(p + "cpi").total(), cycles);
    }
    // Machine-wide cycles is the makespan across cores.
    EXPECT_EQ(counters.at("core.cycles"), makespan);
    EXPECT_EQ(res.metrics.cycles, makespan);

    // Engine aggregates ride along as engine.* counters.
    ASSERT_TRUE(counters.count("engine.commits"));
    EXPECT_EQ(counters.at("engine.commits"), res.engine.commits);
    EXPECT_GT(res.engine.commits, 0u);
    EXPECT_GT(res.engine.switches, 0u);
}

TEST(ConcurrentExperiment, SingleCoreKeepsFlatStatsKeys)
{
    // Sequential workloads must emit exactly the historical flat names
    // — golden baselines and stats_diff gates depend on the shape.
    ExperimentConfig c;
    c.workload = "SPS";
    c.scale_pct = 5;
    c.mode = TranslationMode::Hardware;
    const auto res = runExperiment(c);
    const auto &counters = res.stats.counters();
    EXPECT_TRUE(counters.count("core.cycles"));
    EXPECT_FALSE(counters.count("core.count"));
    EXPECT_FALSE(counters.count("core.0.cycles"));
    ASSERT_TRUE(res.stats.cpiStacks().count("core.cpi"));
    EXPECT_EQ(res.stats.cpiStacks().at("core.cpi").total(),
              res.metrics.cycles);
}

TEST(ConcurrentExperiment, SweepIsJobCountInvariant)
{
    std::vector<ExperimentConfig> cfgs = {
        lhtConfig(TranslationMode::Software, 2),
        lhtConfig(TranslationMode::Hardware, 2),
        mtpccConfig(TranslationMode::Hardware, 2),
    };
    SweepOptions serial;
    serial.jobs = 1;
    SweepOptions wide;
    wide.jobs = 4;
    const auto a = runSweep(cfgs, serial);
    const auto b = runSweep(cfgs, wide);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].metrics.cycles, b[i].metrics.cycles) << i;
        EXPECT_EQ(a[i].workload_checksum, b[i].workload_checksum) << i;
        EXPECT_EQ(a[i].engine.commits, b[i].engine.commits) << i;
        EXPECT_EQ(a[i].engine.switches, b[i].engine.switches) << i;
    }
}

TEST(ConcurrentExperiment, SchedSeedChangesInterleavingNotSafety)
{
    // A different interleaving seed reorders commits (different
    // checksum is expected and fine) but every run still completes
    // all transactions.
    const auto a =
        runExperiment(mtpccConfig(TranslationMode::Hardware, 4));
    auto cfg = mtpccConfig(TranslationMode::Hardware, 4);
    cfg.sched_seed = 99;
    const auto b = runExperiment(cfg);
    EXPECT_EQ(a.engine.commits, b.engine.commits);
    EXPECT_EQ(a.workload_operations, b.workload_operations);
}

} // namespace
} // namespace driver
} // namespace poat
