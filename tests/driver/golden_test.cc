/**
 * @file
 * Golden-metrics regression suite: the exact simulator outputs for one
 * small configuration of every workload, in both translation modes, are
 * pinned here. The simulator is deterministic by construction (fixed
 * seeds, no wall-clock, no address randomness outside the seeded ASLR),
 * so any drift in these numbers is a *behavioral* change — intended or
 * not — and must be reviewed, not absorbed.
 *
 * Updating after an intended model change:
 *
 *     POAT_GOLDEN_REGEN=1 ./build/tests/golden_test
 *
 * prints the replacement kGolden rows; paste them over the table below
 * and say in the commit message why the numbers moved.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "driver/experiment.h"

namespace poat {
namespace driver {
namespace {

using workloads::PoolPattern;

/**
 * Pinned outputs for one workload: the Software (BASE) and Hardware
 * (OPT, Pipelined POLB) runs of the same config. The checksum is the
 * workload's logical outcome and must also agree across modes — BASE
 * and OPT perform identical logical work.
 */
struct Golden
{
    const char *workload;
    uint64_t checksum;
    uint64_t sw_cycles;
    uint64_t sw_instructions;
    uint64_t sw_translate_calls;
    uint64_t hw_cycles;
    uint64_t hw_instructions;
    uint64_t hw_polb_hits;
    uint64_t hw_polb_misses;
};

// clang-format off
// Regenerated for the checksummed-metadata media-fault PR: crc sealing
// ALU plus mirrored superblock/log-header stores moved every cycle and
// instruction count up; workload checksums are unchanged (same logical
// work).
const Golden kGolden[] = {
    {"LL",  23333143709236722ull, 432817ull, 222896ull, 1733ull, 249517ull, 61215ull, 6722ull, 28ull},
    {"BST",  4252757654091938430ull, 2469091ull, 990303ull, 7515ull, 1699593ull, 303720ull, 41593ull, 32ull},
    {"SPS",  10778335876270138662ull, 3896420ull, 1144684ull, 6539ull, 3175189ull, 499809ull, 121335ull, 32ull},
    {"RBT",  11209304121203803616ull, 2857010ull, 1081829ull, 9911ull, 1976927ull, 304896ull, 54670ull, 32ull},
    {"BT",  15279847805131191221ull, 1565148ull, 647663ull, 5731ull, 1042953ull, 193792ull, 48180ull, 29ull},
    {"B+T",  17817965302752835562ull, 2127944ull, 805892ull, 7520ull, 1546418ull, 300496ull, 80241ull, 27ull},
    {"TPCC", 257842388ull, 50621814ull, 11577991ull, 187953ull, 46304619ull, 8382702ull, 2410074ull, 1ull},
};
// clang-format on

/** The one pinned configuration per workload: small and fast. */
ExperimentConfig
goldenConfig(const std::string &workload, TranslationMode mode)
{
    ExperimentConfig c;
    c.workload = workload;
    c.mode = mode;
    c.machine.core = sim::CoreType::InOrder;
    if (workload == "TPCC") {
        c.tpcc_scale_pct = 2;
        c.tpcc_txns = 120;
    } else {
        c.pattern = PoolPattern::Random;
        c.scale_pct = 10;
    }
    return c;
}

TEST(GoldenMetrics, PinnedOutputsPerWorkload)
{
    const bool regen = std::getenv("POAT_GOLDEN_REGEN") != nullptr;
    if (regen)
        std::printf("const Golden kGolden[] = {\n");

    for (const auto &g : kGolden) {
        const auto sw =
            runExperiment(goldenConfig(g.workload, TranslationMode::Software));
        const auto hw =
            runExperiment(goldenConfig(g.workload, TranslationMode::Hardware));

        // Mode-independent invariant, golden or not: BASE and OPT do
        // identical logical work.
        EXPECT_EQ(sw.workload_checksum, hw.workload_checksum)
            << g.workload;

        if (regen) {
            std::printf("    {\"%s\",%s %lluull, %lluull, %lluull, "
                        "%lluull, %lluull, %lluull, %lluull, %lluull},\n",
                        g.workload,
                        std::string(g.workload).size() >= 4 ? "" : " ",
                        static_cast<unsigned long long>(
                            sw.workload_checksum),
                        static_cast<unsigned long long>(sw.metrics.cycles),
                        static_cast<unsigned long long>(
                            sw.metrics.instructions),
                        static_cast<unsigned long long>(sw.translate_calls),
                        static_cast<unsigned long long>(hw.metrics.cycles),
                        static_cast<unsigned long long>(
                            hw.metrics.instructions),
                        static_cast<unsigned long long>(
                            hw.metrics.polb_hits),
                        static_cast<unsigned long long>(
                            hw.metrics.polb_misses));
            continue;
        }

        EXPECT_EQ(sw.workload_checksum, g.checksum) << g.workload;
        EXPECT_EQ(sw.metrics.cycles, g.sw_cycles) << g.workload;
        EXPECT_EQ(sw.metrics.instructions, g.sw_instructions)
            << g.workload;
        EXPECT_EQ(sw.translate_calls, g.sw_translate_calls) << g.workload;
        EXPECT_EQ(hw.metrics.cycles, g.hw_cycles) << g.workload;
        EXPECT_EQ(hw.metrics.instructions, g.hw_instructions)
            << g.workload;
        EXPECT_EQ(hw.metrics.polb_hits, g.hw_polb_hits) << g.workload;
        EXPECT_EQ(hw.metrics.polb_misses, g.hw_polb_misses) << g.workload;
    }

    if (regen) {
        std::printf("};\n");
        GTEST_SKIP() << "regeneration run; paste the rows above into "
                        "tests/driver/golden_test.cc";
    }
}

} // namespace
} // namespace driver
} // namespace poat
