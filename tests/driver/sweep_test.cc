/**
 * @file
 * The parallel sweep's contract (driver/sweep.h): a sweep at any job
 * count is *observably identical* to a serial runExperiment() loop —
 * bit-identical results in submission order, observer and progress
 * callbacks serialized on the calling thread in submission order, and
 * serial exception semantics. The equivalence property is checked on a
 * randomized batch of configurations.
 */
#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "driver/sweep.h"

namespace poat {
namespace driver {
namespace {

using workloads::PoolPattern;

std::string
statsJson(const ExperimentResult &r)
{
    std::ostringstream os;
    r.stats.dumpJson(os);
    return os.str();
}

/** Every field of two results must match exactly (no tolerances). */
void
expectBitIdentical(const ExperimentResult &a, const ExperimentResult &b,
                   const std::string &what)
{
    EXPECT_EQ(a.metrics.cycles, b.metrics.cycles) << what;
    EXPECT_EQ(a.metrics.instructions, b.metrics.instructions) << what;
    EXPECT_EQ(a.metrics.loads, b.metrics.loads) << what;
    EXPECT_EQ(a.metrics.stores, b.metrics.stores) << what;
    EXPECT_EQ(a.metrics.nv_loads, b.metrics.nv_loads) << what;
    EXPECT_EQ(a.metrics.nv_stores, b.metrics.nv_stores) << what;
    EXPECT_EQ(a.metrics.polb_hits, b.metrics.polb_hits) << what;
    EXPECT_EQ(a.metrics.polb_misses, b.metrics.polb_misses) << what;
    EXPECT_EQ(a.metrics.tlb_misses, b.metrics.tlb_misses) << what;
    EXPECT_EQ(a.metrics.l1d_misses, b.metrics.l1d_misses) << what;
    EXPECT_EQ(a.metrics.pot_walks, b.metrics.pot_walks) << what;
    EXPECT_TRUE(a.cpi == b.cpi) << what;
    EXPECT_EQ(a.workload_checksum, b.workload_checksum) << what;
    EXPECT_EQ(a.workload_operations, b.workload_operations) << what;
    EXPECT_EQ(a.translate_calls, b.translate_calls) << what;
    EXPECT_EQ(a.translate_misses, b.translate_misses) << what;
    EXPECT_EQ(a.translate_insns_per_call, b.translate_insns_per_call)
        << what;
    // The full hierarchical registry, every counter/histogram/formula:
    // serialized form must match byte for byte.
    EXPECT_EQ(statsJson(a), statsJson(b)) << what;
}

/**
 * A reproducible batch of varied configurations: every workload, both
 * modes, both POLB designs, both cores, tx on/off, varied scales and
 * seeds. Small scales keep the whole batch ctest-sized.
 */
std::vector<ExperimentConfig>
randomBatch(uint64_t seed, size_t n)
{
    std::mt19937_64 rng(seed);
    const auto &names = workloads::microbenchNames();
    std::vector<ExperimentConfig> cfgs;
    for (size_t i = 0; i < n; ++i) {
        ExperimentConfig c;
        c.workload = names[rng() % names.size()];
        c.pattern = static_cast<PoolPattern>(rng() % 3);
        c.scale_pct = 8 + static_cast<uint32_t>(rng() % 8);
        c.transactions = rng() % 2 == 0;
        c.mode = rng() % 2 ? TranslationMode::Hardware
                           : TranslationMode::Software;
        c.machine.polb_design = rng() % 2 ? sim::PolbDesign::Pipelined
                                          : sim::PolbDesign::Parallel;
        c.machine.core = rng() % 4 ? sim::CoreType::InOrder
                                   : sim::CoreType::OutOfOrder;
        c.seed = rng();
        cfgs.push_back(c);
    }
    return cfgs;
}

TEST(SweepEquivalence, ParallelMatchesSerialBitForBit)
{
    const auto cfgs = randomBatch(/*seed=*/20260806, /*n=*/10);

    std::vector<ExperimentResult> serial;
    for (const auto &c : cfgs)
        serial.push_back(runExperiment(c));

    SweepOptions one;
    one.jobs = 1;
    const auto seq = runSweep(cfgs, one);

    SweepOptions four;
    four.jobs = 4;
    const auto par = runSweep(cfgs, four);

    ASSERT_EQ(serial.size(), cfgs.size());
    ASSERT_EQ(seq.size(), cfgs.size());
    ASSERT_EQ(par.size(), cfgs.size());
    for (size_t i = 0; i < cfgs.size(); ++i) {
        const std::string what =
            "config " + std::to_string(i) + " (" + configLabel(cfgs[i]) +
            ")";
        expectBitIdentical(serial[i], seq[i], what + " jobs=1");
        expectBitIdentical(serial[i], par[i], what + " jobs=4");
    }
}

TEST(SweepEquivalence, TpccSweepMatchesSerial)
{
    ExperimentConfig c;
    c.workload = "TPCC";
    c.tpcc_scale_pct = 2;
    c.tpcc_txns = 60;
    std::vector<ExperimentConfig> cfgs;
    for (const auto pl : {workloads::tpcc::Placement::All,
                          workloads::tpcc::Placement::Each}) {
        for (const auto mode :
             {TranslationMode::Software, TranslationMode::Hardware}) {
            c.placement = pl;
            c.mode = mode;
            cfgs.push_back(c);
        }
    }
    std::vector<ExperimentResult> serial;
    for (const auto &cc : cfgs)
        serial.push_back(runExperiment(cc));
    SweepOptions so;
    so.jobs = 4;
    const auto par = runSweep(cfgs, so);
    ASSERT_EQ(par.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i)
        expectBitIdentical(serial[i], par[i],
                           "tpcc config " + std::to_string(i));
}

TEST(Sweep, ResultsComeBackInSubmissionOrder)
{
    // Give each run a distinct op count so a mixed-up order is visible.
    std::vector<ExperimentConfig> cfgs;
    for (uint32_t s : {8u, 10u, 12u, 14u, 16u, 18u}) {
        ExperimentConfig c;
        c.workload = "LL";
        c.pattern = PoolPattern::All;
        c.scale_pct = s;
        cfgs.push_back(c);
    }
    SweepOptions so;
    so.jobs = 3;
    const auto res = runSweep(cfgs, so);
    ASSERT_EQ(res.size(), cfgs.size());
    for (size_t i = 1; i < res.size(); ++i)
        EXPECT_GT(res[i].workload_operations,
                  res[i - 1].workload_operations)
            << "submission order not preserved at " << i;
}

TEST(Sweep, ProgressFiresInOrderOnTheCallingThread)
{
    const auto cfgs = randomBatch(7, 6);
    const auto caller = std::this_thread::get_id();
    std::vector<size_t> indices;
    SweepOptions so;
    so.jobs = 4;
    so.progress = [&](size_t i, size_t n, const ExperimentConfig &,
                      const ExperimentResult &r) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_EQ(n, cfgs.size());
        EXPECT_GT(r.metrics.cycles, 0u);
        indices.push_back(i);
    };
    runSweep(cfgs, so);
    ASSERT_EQ(indices.size(), cfgs.size());
    for (size_t i = 0; i < indices.size(); ++i)
        EXPECT_EQ(indices[i], i);
}

TEST(Sweep, ObserverSeesRunsInSubmissionOrder)
{
    const auto cfgs = randomBatch(99, 8);
    std::vector<std::string> seen;
    setExperimentObserver(
        [&](const ExperimentConfig &cfg, const ExperimentResult &) {
            seen.push_back(configLabel(cfg));
        });
    SweepOptions so;
    so.jobs = 4;
    runSweep(cfgs, so);
    setExperimentObserver(nullptr);
    ASSERT_EQ(seen.size(), cfgs.size());
    for (size_t i = 0; i < cfgs.size(); ++i)
        EXPECT_EQ(seen[i], configLabel(cfgs[i])) << i;
}

TEST(Sweep, FirstExceptionPropagatesWithSerialSemantics)
{
    auto cfgs = randomBatch(3, 6);
    for (auto &c : cfgs) {
        c.scale_pct = 8;
        c.workload = "LL";
    }
    cfgs[2].workload = "NOPE"; // throws std::invalid_argument
    std::vector<size_t> observed;
    size_t count = 0;
    setExperimentObserver([&](const ExperimentConfig &,
                              const ExperimentResult &) { ++count; });
    SweepOptions so;
    so.jobs = 4;
    EXPECT_THROW(runSweep(cfgs, so), std::invalid_argument);
    setExperimentObserver(nullptr);
    // Exactly the pre-exception prefix was observed, like a serial loop.
    EXPECT_EQ(count, 2u);
    (void)observed;
}

TEST(Sweep, EmptyBatchAndDefaultJobs)
{
    EXPECT_TRUE(runSweep({}).empty());
    EXPECT_GE(defaultSweepJobs(), 1u);

    // jobs=0 (auto) on a small batch still returns ordered results.
    const auto cfgs = randomBatch(5, 3);
    const auto res = runSweep(cfgs); // default options
    ASSERT_EQ(res.size(), 3u);
    for (size_t i = 0; i < res.size(); ++i)
        expectBitIdentical(res[i], runExperiment(cfgs[i]),
                           "auto-jobs config " + std::to_string(i));
}

TEST(Sweep, PerRunTracersRecordConcurrently)
{
    // Four concurrent runs, each with its own tracer: markers land in
    // the right tracer and the single-producer contract never trips.
    std::vector<ExperimentConfig> cfgs = randomBatch(11, 4);
    std::vector<std::unique_ptr<EventTracer>> tracers;
    for (auto &c : cfgs) {
        tracers.push_back(std::make_unique<EventTracer>(1u << 12));
        c.mode = TranslationMode::Hardware;
        c.tracer = tracers.back().get();
    }
    SweepOptions so;
    so.jobs = 4;
    const auto res = runSweep(cfgs, so);
    ASSERT_EQ(res.size(), cfgs.size());
    for (size_t i = 0; i < cfgs.size(); ++i) {
        std::ostringstream os;
        tracers[i]->serialize(os);
        EXPECT_NE(
            os.str().find("begin " + configLabel(cfgs[i])),
            std::string::npos)
            << i;
        EXPECT_FALSE(tracers[i]->acquired()) << i;
    }
}

TEST(Sweep, ProfilingOnlyConfigsSweepToo)
{
    // timing=false runs (Table 2 profiles) obey the same equivalence.
    std::vector<ExperimentConfig> cfgs;
    for (const auto &wl : workloads::microbenchNames()) {
        ExperimentConfig c;
        c.workload = wl;
        c.pattern = PoolPattern::Each;
        c.scale_pct = 10;
        c.mode = TranslationMode::Software;
        c.timing = false;
        cfgs.push_back(c);
    }
    SweepOptions so;
    so.jobs = 4;
    const auto par = runSweep(cfgs, so);
    ASSERT_EQ(par.size(), cfgs.size());
    for (size_t i = 0; i < cfgs.size(); ++i) {
        const auto serial = runExperiment(cfgs[i]);
        EXPECT_EQ(par[i].metrics.cycles, 0u);
        EXPECT_GT(par[i].translate_calls, 0u);
        expectBitIdentical(serial, par[i],
                           "profile config " + std::to_string(i));
    }
}

} // namespace
} // namespace driver
} // namespace poat
