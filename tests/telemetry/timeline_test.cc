/**
 * @file
 * Interval telemetry: poat-timeline sampling math, file roundtrip, and
 * the observer-only guarantee — attaching a TimelineSampler to a run
 * changes no metric, no stat, and no checksum, on the live, captured,
 * and replayed paths alike, while the stream itself reconstructs the
 * run's aggregates and keeps every row's CPI components summing to the
 * row's cycle delta.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "driver/experiment.h"
#include "telemetry/timeline.h"

namespace poat {
namespace telemetry {
namespace {

std::string
tmpDir()
{
    static const std::string dir = [] {
        std::string d = testing::TempDir() + "timeline_test." +
            std::to_string(::getpid());
        std::filesystem::create_directories(d);
        return d;
    }();
    return dir;
}

std::string
tmpFile(const std::string &name)
{
    return tmpDir() + "/" + name;
}

/** A hand-driven registry standing in for a machine's stats. */
struct FakeSource
{
    StatsRegistry reg;

    FakeSource()
    {
        reg.counter("a.ops") = 0;
        reg.counter("b.ops") = 0;
    }

    std::function<const StatsRegistry &()>
    fn()
    {
        return [this]() -> const StatsRegistry & { return reg; };
    }
};

TEST(TimelineSampler, RowCountIsCeilOfCyclesOverInterval)
{
    // 0 cycles -> 1 row (finish always records the run's end state);
    // exact multiples -> cycles/N rows; anything else rounds up.
    const struct
    {
        uint64_t cycles;
        uint64_t rows;
    } cases[] = {{0, 1}, {1, 1}, {99, 1}, {100, 1}, {101, 2},
                 {250, 3}, {300, 3}, {1000, 10}};
    for (const auto &c : cases) {
        FakeSource src;
        const std::string p = tmpFile("rows." + std::to_string(c.cycles));
        TimelineSampler s(100, p);
        s.setStatsSource(src.fn());
        for (uint64_t cyc = 0; cyc <= c.cycles; ++cyc) {
            src.reg.counter("a.ops") = cyc;
            s.tick(cyc);
        }
        s.finish(c.cycles);
        EXPECT_EQ(s.samples(), c.rows) << c.cycles << " cycles";
        const TimelineReader r(p);
        EXPECT_EQ(r.samples().size(), c.rows) << c.cycles << " cycles";
    }
}

TEST(TimelineSampler, DeltasReconstructTheAggregate)
{
    FakeSource src;
    const std::string p = tmpFile("deltas");
    TimelineSampler s(10, p);
    s.setStatsSource(src.fn());
    for (uint64_t cyc = 0; cyc <= 57; ++cyc) {
        src.reg.counter("a.ops") = 3 * cyc;
        src.reg.counter("b.ops") = cyc / 2;
        s.tick(cyc);
    }
    s.finish(57);

    const TimelineReader r(p);
    ASSERT_EQ(r.counterNames().size(), 2u);
    EXPECT_EQ(r.counterNames()[0], "a.ops");
    EXPECT_EQ(r.counterNames()[1], "b.ops");
    EXPECT_EQ(r.interval(), 10u);
    ASSERT_EQ(r.samples().size(), 6u); // ceil(57/10)

    int64_t a = 0, b = 0;
    for (const TimelineSample &row : r.samples()) {
        ASSERT_EQ(row.deltas.size(), 2u);
        a += row.deltas[0];
        b += row.deltas[1];
    }
    EXPECT_EQ(a, 3 * 57);
    EXPECT_EQ(b, 57 / 2);
    EXPECT_EQ(r.samples().back().end_cycle, 57u);
}

TEST(TimelineSampler, JumpingSeveralBoundariesEmitsZeroDeltaRows)
{
    FakeSource src;
    const std::string p = tmpFile("jump");
    TimelineSampler s(10, p);
    s.setStatsSource(src.fn());
    src.reg.counter("a.ops") = 7;
    s.tick(45); // one event landing past boundaries 10, 20, 30, 40
    s.finish(45);

    const TimelineReader r(p);
    ASSERT_EQ(r.samples().size(), 5u); // ceil(45/10)
    // The accumulated delta lands on the first crossed boundary...
    EXPECT_EQ(r.samples()[0].end_cycle, 10u);
    EXPECT_EQ(r.samples()[0].deltas[0], 7);
    // ...the jumped boundaries read zero...
    for (size_t i = 1; i < 4; ++i) {
        EXPECT_EQ(r.samples()[i].end_cycle, 10u * (i + 1));
        EXPECT_EQ(r.samples()[i].deltas[0], 0) << i;
    }
    // ...and the tail row covers the partial last interval.
    EXPECT_EQ(r.samples()[4].end_cycle, 45u);
}

TEST(TimelineSampler, GaugesAreSampledAbsolutely)
{
    FakeSource src;
    uint64_t level = 0;
    const std::string p = tmpFile("gauges");
    TimelineSampler s(10, p);
    s.setStatsSource(src.fn());
    s.addGauge("test.level", [&level] { return level; });
    level = 5;
    s.tick(10);
    level = 3;
    s.tick(20);
    s.finish(25);

    const TimelineReader r(p);
    ASSERT_EQ(r.gaugeNames().size(), 1u);
    EXPECT_EQ(r.gaugeNames()[0], "test.level");
    ASSERT_EQ(r.samples().size(), 3u);
    EXPECT_EQ(r.samples()[0].gauges[0], 5u); // absolute, not delta
    EXPECT_EQ(r.samples()[1].gauges[0], 3u);
    EXPECT_EQ(r.samples()[2].gauges[0], 3u);
}

TEST(TimelineSampler, FinishIsIdempotent)
{
    FakeSource src;
    const std::string p = tmpFile("idem");
    TimelineSampler s(10, p);
    s.setStatsSource(src.fn());
    s.tick(15);
    s.finish(15);
    const uint64_t n = s.samples();
    s.finish(15);
    EXPECT_EQ(s.samples(), n);
    const TimelineReader r(p);
    EXPECT_EQ(r.samples().size(), n);
}

TEST(TimelineReader, RejectsGarbage)
{
    const std::string p = tmpFile("garbage");
    {
        std::FILE *f = std::fopen(p.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("this is not a timeline", f);
        std::fclose(f);
    }
    EXPECT_THROW(TimelineReader r(p), std::runtime_error);
    EXPECT_THROW(TimelineReader r(tmpFile("missing")),
                 std::runtime_error);
}

// ---- driver-level properties ------------------------------------------

driver::ExperimentConfig
tinyCfg(const std::string &wl, TranslationMode mode)
{
    driver::ExperimentConfig c;
    c.workload = wl;
    c.pattern = workloads::PoolPattern::Random;
    c.scale_pct = 5;
    c.tpcc_scale_pct = 1;
    c.tpcc_txns = 25;
    c.mode = mode;
    return c;
}

std::string
statsJson(const driver::ExperimentResult &res)
{
    std::ostringstream os;
    res.stats.dumpJson(os);
    return os.str();
}

driver::ExperimentConfig
withTimeline(driver::ExperimentConfig c, const std::string &path,
             uint64_t interval = 5000)
{
    c.timeline_interval = interval;
    c.timeline_path = path;
    return c;
}

TEST(TimelineObserver, LiveRunIsBitIdenticalWithTimelineOn)
{
    for (const std::string wl : {"LL", "BST", "TPCC"}) {
        for (const auto mode :
             {TranslationMode::Software, TranslationMode::Hardware}) {
            const auto cfg = tinyCfg(wl, mode);
            const auto off = driver::runExperiment(cfg);
            const auto on = driver::runExperiment(withTimeline(
                cfg, tmpFile("obs." + wl + driver::configLabel(cfg))));
            EXPECT_EQ(off.metrics.cycles, on.metrics.cycles) << wl;
            EXPECT_EQ(off.metrics.instructions, on.metrics.instructions)
                << wl;
            EXPECT_EQ(off.workload_checksum, on.workload_checksum) << wl;
            EXPECT_EQ(statsJson(off), statsJson(on)) << wl;
        }
    }
}

TEST(TimelineObserver, CapturedAndReplayedRunsMatchWithTimelineOn)
{
    const auto cfg = tinyCfg("BST", TranslationMode::Hardware);
    const std::string trace = tmpFile("bst.itrace");
    const auto live = driver::runExperiment(cfg);
    const auto cap = driver::detail::runExperimentCaptured(
        withTimeline(cfg, tmpFile("cap.poattl")), trace);
    const auto rep = driver::detail::runExperimentReplayed(
        withTimeline(cfg, tmpFile("rep.poattl")), trace);
    EXPECT_EQ(live.metrics.cycles, cap.metrics.cycles);
    EXPECT_EQ(live.metrics.cycles, rep.metrics.cycles);
    EXPECT_EQ(statsJson(live), statsJson(cap));
    EXPECT_EQ(statsJson(live), statsJson(rep));

    // Both timelines decode; the replayed one carries the machine
    // gauges only (no live runtime to read undo-log/allocator depth).
    const TimelineReader ct(tmpFile("cap.poattl"));
    const TimelineReader rt(tmpFile("rep.poattl"));
    EXPECT_EQ(ct.gaugeNames().size(), 4u);
    EXPECT_EQ(rt.gaugeNames().size(), 2u);
    EXPECT_EQ(ct.samples().size(), rt.samples().size());
    for (size_t i = 0; i < ct.samples().size(); ++i)
        EXPECT_EQ(ct.samples()[i].deltas, rt.samples()[i].deltas) << i;
}

TEST(TimelineSampler, V2HeaderRoundtripsCoreCount)
{
    FakeSource src;
    const std::string p = tmpFile("v2cores");
    TimelineSampler s(100, p);
    s.setStatsSource(src.fn());
    s.setCores(3);
    s.tick(0);
    s.finish(10);
    const TimelineReader r(p);
    EXPECT_EQ(r.cores(), 3u);

    // A sampler that never learns a core count writes 0 (pre-v2
    // producers' files decode the same way).
    const std::string q = tmpFile("v2nocores");
    TimelineSampler s0(100, q);
    s0.setStatsSource(src.fn());
    s0.tick(0);
    s0.finish(10);
    EXPECT_EQ(TimelineReader(q).cores(), 0u);
}

TEST(TimelineObserver, ConcurrentRunEmitsPerCoreLanes)
{
    // A multi-core run with timeline_cores on: the header carries the
    // core count, every core contributes a blocked-reason gauge lane,
    // and within every interval each core's CPI-component deltas sum
    // exactly to that core's cycle delta.
    driver::ExperimentConfig cfg;
    cfg.workload = "LHT";
    cfg.scale_pct = 10;
    cfg.threads = 4;
    cfg.sched_seed = 7;
    cfg.mode = TranslationMode::Hardware;
    cfg.seed = 1;
    cfg.timeline_interval = 5000;
    cfg.timeline_path = tmpFile("lanes.poattl");
    cfg.timeline_cores = true;
    const auto res = driver::runExperiment(cfg);

    const TimelineReader r(cfg.timeline_path);
    EXPECT_EQ(r.cores(), 4u);
    for (uint32_t c = 0; c < 4; ++c) {
        for (const char *reason :
             {"token_wait", "lock_wait", "commit_wait", "idle_done"}) {
            const std::string g = "sched.core." + std::to_string(c) +
                ".blocked." + reason + ".total";
            EXPECT_NE(std::find(r.gaugeNames().begin(),
                                r.gaugeNames().end(), g),
                      r.gaugeNames().end())
                << g;
        }
    }

    for (uint32_t c = 0; c < 4; ++c) {
        const std::string pre = "core." + std::to_string(c) + ".";
        int cycles_at = -1;
        std::vector<size_t> cpi_at;
        for (size_t i = 0; i < r.counterNames().size(); ++i) {
            if (r.counterNames()[i] == pre + "cycles")
                cycles_at = static_cast<int>(i);
            if (r.counterNames()[i].rfind(pre + "cpi.", 0) == 0)
                cpi_at.push_back(i);
        }
        ASSERT_GE(cycles_at, 0) << pre;
        ASSERT_EQ(cpi_at.size(), kCpiComponents) << pre;
        int64_t total = 0;
        for (const TimelineSample &row : r.samples()) {
            int64_t sum = 0;
            for (const size_t i : cpi_at)
                sum += row.deltas[i];
            EXPECT_EQ(sum, row.deltas[static_cast<size_t>(cycles_at)])
                << pre << "row ending " << row.end_cycle;
            total += row.deltas[static_cast<size_t>(cycles_at)];
        }
        const uint64_t final_cycles = res.stats.counters().at(
            pre + "cycles");
        EXPECT_EQ(static_cast<uint64_t>(total), final_cycles) << pre;
    }

    // The lanes are observer-only: the identical run without them
    // produces a bit-identical stats report.
    auto off = cfg;
    off.timeline_interval = 0;
    off.timeline_path.clear();
    off.timeline_cores = false;
    const auto plain = driver::runExperiment(off);
    EXPECT_EQ(statsJson(plain), statsJson(res));
}

TEST(TimelineObserver, PerIntervalCpiComponentsSumToCycleDelta)
{
    const auto cfg = tinyCfg("LL", TranslationMode::Software);
    const std::string p = tmpFile("cpisum.poattl");
    const auto res = driver::runExperiment(withTimeline(cfg, p, 2000));

    const TimelineReader r(p);
    ASSERT_GT(r.samples().size(), 3u) << "want a multi-row timeline";
    int cycles_at = -1;
    std::vector<size_t> cpi_at;
    for (size_t i = 0; i < r.counterNames().size(); ++i) {
        if (r.counterNames()[i] == "core.cycles")
            cycles_at = static_cast<int>(i);
        if (r.counterNames()[i].rfind("core.cpi.", 0) == 0)
            cpi_at.push_back(i);
    }
    ASSERT_GE(cycles_at, 0);
    ASSERT_EQ(cpi_at.size(), kCpiComponents);

    uint64_t prev_end = 0, total = 0;
    for (const TimelineSample &row : r.samples()) {
        int64_t sum = 0;
        for (const size_t i : cpi_at)
            sum += row.deltas[i];
        EXPECT_EQ(sum, row.deltas[cycles_at])
            << "row ending " << row.end_cycle;
        EXPECT_GT(row.end_cycle, prev_end);
        prev_end = row.end_cycle;
        total += static_cast<uint64_t>(row.deltas[cycles_at]);
    }
    EXPECT_EQ(total, res.metrics.cycles);
    EXPECT_EQ(prev_end, res.metrics.cycles);
}

TEST(TxSpans, StatsReportCommitsAndPerOpLatencies)
{
    const auto cfg = tinyCfg("LL", TranslationMode::Software);
    const auto res = driver::runExperiment(cfg);

    const auto &c = res.stats.counters();
    ASSERT_TRUE(c.count("tx.begins"));
    const uint64_t begins = c.at("tx.begins");
    EXPECT_GT(begins, 0u);
    EXPECT_EQ(begins, c.at("tx.commits") + c.at("tx.aborts"));
    EXPECT_EQ(c.at("tx.aborts"), 0u);

    const auto &h = res.stats.histograms();
    ASSERT_TRUE(h.count("tx.latency"));
    EXPECT_EQ(h.at("tx.latency").count(), c.at("tx.commits"));
    EXPECT_GT(h.at("tx.latency").quantile(0.5), 0.0);
    ASSERT_TRUE(h.count("tx.durability_events"));
    EXPECT_GT(h.at("tx.durability_events").mean(), 0.0);

    // LL commits both operation kinds; their histograms partition the
    // overall latency population.
    ASSERT_TRUE(h.count("tx.op.insert.latency"));
    ASSERT_TRUE(h.count("tx.op.remove.latency"));
    EXPECT_EQ(h.at("tx.op.insert.latency").count() +
                  h.at("tx.op.remove.latency").count(),
              c.at("tx.commits"));
}

TEST(TxSpans, NtxRunsOpenNoTransactions)
{
    auto cfg = tinyCfg("LL", TranslationMode::Software);
    cfg.transactions = false;
    const auto res = driver::runExperiment(cfg);
    EXPECT_EQ(res.stats.counters().at("tx.begins"), 0u);
    EXPECT_EQ(res.stats.histograms().at("tx.latency").count(), 0u);
}

} // namespace
} // namespace telemetry
} // namespace poat
