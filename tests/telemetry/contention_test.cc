/**
 * @file
 * ContentionProfiler unit tests on hand-built event sequences: the
 * blocked-attribution invariant (running + blocked sums exactly to the
 * makespan on every core), lock wait/hold span time bases, the
 * critical-path DAG (length, lock edges, per-op and per-lock
 * attribution, and the length <= makespan bound), export idempotence,
 * and the sequential-run activation gate.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "common/stats.h"
#include "telemetry/contention.h"

namespace poat {
namespace telemetry {
namespace {

/** Dump @p reg to a string for whole-export comparisons. */
std::string
dumpAll(const StatsRegistry &reg)
{
    std::ostringstream os;
    reg.dumpJson(os);
    return os.str();
}

TEST(Contention, InactiveUntilConcurrencyEvent)
{
    ContentionProfiler p;
    EXPECT_FALSE(p.active());
    // Sequential runs emit op events too; they must not activate the
    // profiler (stats schema of sequential runs is golden-gated).
    p.opName(1, "alpha");
    p.opSet(0, 1, 10);
    p.txAborted(5);
    EXPECT_FALSE(p.active());
    p.coreSwitchIn(0, 0, 0);
    EXPECT_TRUE(p.active());
}

TEST(Contention, BlockedAttributionSumsToMakespanPerCore)
{
    // Events always come from the active core, as in the real feed.
    ContentionProfiler p;
    p.coreSwitchIn(0, 0, 0);
    p.lockWait(0, 0x10, 0, 1, 40); // core 0 blocks on a lock
    p.coreSwitchIn(1, 0, 40);      // core 1 takes over (created late:
                                   // backfilled as token-waiting)
    p.commitJoin(1, 90);           // core 1 waits on a commit window
    p.coreSwitchIn(2, 1, 100);
    p.workerDone(2, 120);
    p.coreSwitchIn(0, 2, 130);
    p.lockAcquired(0, 0x10, 7, 130); // core 0's wait ends
    p.commitBatch(2, 3, 180);        // core 1's window closes

    StatsRegistry reg;
    p.exportInto(reg, 200);
    for (uint32_t c = 0; c < 3; ++c) {
        const std::string pre = "sched.core." + std::to_string(c) + ".";
        uint64_t sum = reg.get(pre + "running");
        for (uint32_t r = 0; r < kBlockReasons; ++r)
            sum += reg.get(pre + "blocked." +
                           blockReasonName(static_cast<BlockReason>(r)));
        EXPECT_EQ(sum, 200u) << "core " << c;
    }
    // Spot-check the reasons: core 0 was lock-waiting for [40, 130),
    // core 1 commit-waiting for [90, 180) minus its running span
    // [90, 100), core 2 idle-done from 130 (it ran until the switch).
    EXPECT_EQ(reg.get("sched.core.0.blocked.lock_wait"), 90u);
    EXPECT_EQ(reg.get("sched.core.1.blocked.commit_wait"), 80u);
    EXPECT_EQ(reg.get("sched.core.2.blocked.idle_done"), 70u);
    // And the machine-wide rollup is the per-core sum.
    uint64_t lock_sum = 0;
    for (uint32_t c = 0; c < 3; ++c)
        lock_sum += reg.get("sched.core." + std::to_string(c) +
                            ".blocked.lock_wait");
    EXPECT_EQ(reg.get("sched.blocked.lock_wait"), lock_sum);
}

TEST(Contention, WaitSpansUseMakespanHoldSpansUseLocalClock)
{
    ContentionProfiler p;
    p.coreSwitchIn(0, 0, 0);
    p.opName(3, "put");
    p.opSet(0, 3, 0);
    // Wait span: makespan 500 -> 620 (the waiter's own clock is
    // frozen, so only the makespan can measure it).
    p.lockWait(0, 0xabc, 1, 2, 500);
    p.lockAcquired(0, 0xabc, /*local=*/100, /*makespan=*/620);
    // Hold span: local 100 -> 175 on the same core.
    p.lockReleased(0, 0xabc, /*local=*/175, /*makespan=*/700);

    StatsRegistry reg;
    p.exportInto(reg, 700);
    const Histogram *wait = reg.findHistogram("lock.wait_cycles");
    ASSERT_NE(wait, nullptr);
    EXPECT_EQ(wait->count(), 1u);
    EXPECT_EQ(wait->max(), 120u);
    const Histogram *hold = reg.findHistogram("lock.hold_cycles");
    ASSERT_NE(hold, nullptr);
    EXPECT_EQ(hold->count(), 1u);
    EXPECT_EQ(hold->max(), 75u);
    // Per-op and top-table rows carry the same spans.
    const Histogram *byop =
        reg.findHistogram("lock.op.put.wait_cycles");
    ASSERT_NE(byop, nullptr);
    EXPECT_EQ(byop->max(), 120u);
    EXPECT_EQ(reg.get("lock.top.count"), 1u);
    EXPECT_EQ(reg.get("lock.top.0.key"), 0xabcu);
    EXPECT_EQ(reg.get("lock.top.0.wait_cycles"), 120u);
    EXPECT_EQ(reg.get("lock.top.0.hold_cycles"), 75u);
    EXPECT_EQ(reg.get("lock.waits"), 1u);
    EXPECT_EQ(reg.get("lock.acquisitions"), 1u);
    EXPECT_EQ(reg.get("lock.waits_for_edges"), 2u);
}

TEST(Contention, CriticalPathFollowsLockEdge)
{
    // Core 0 does tagged work and releases key K at makespan 100;
    // core 1 acquires K at 150 and works until 200. The longest chain
    // is core 0's release path (100) plus core 1's post-acquire
    // segment (50) = 150 < makespan 200 — shorter than core 0's own
    // 120 + core 1's pre-acquire 30 summed naively.
    ContentionProfiler p;
    p.opName(1, "alpha");
    p.coreSwitchIn(0, 0, 0);
    p.opSet(0, 1, 10);
    p.lockReleased(0, 0x42, 90, 100); // never held: no hold span
    p.coreSwitchIn(1, 0, 120);
    p.lockAcquired(1, 0x42, 5, 150);
    p.coreSwitchIn(0, 1, 200);

    StatsRegistry reg;
    p.exportInto(reg, 200);
    EXPECT_EQ(reg.get("cp.length"), 150u);
    EXPECT_LE(reg.get("cp.length"), 200u);
    EXPECT_EQ(reg.get("cp.edges.lock"), 1u);
    // The path rode the K join edge: the upstream alpha segment
    // [10, 100) charges to K.
    EXPECT_EQ(reg.get("cp.lock.count"), 1u);
    EXPECT_EQ(reg.get("cp.lock.0.key"), 0x42u);
    EXPECT_EQ(reg.get("cp.lock.0.cycles"), 90u);
    EXPECT_EQ(reg.get("cp.op.alpha.cycles"), 90u);
    // untagged: [0,10) on core 0 plus [150,200) on core 1.
    EXPECT_EQ(reg.get("cp.op.untagged.cycles"), 60u);
}

TEST(Contention, OpenSegmentCountsAtExport)
{
    // A run that never switches away from core 0: the single open
    // segment is virtually closed at the makespan, so the critical
    // path is exactly the makespan.
    ContentionProfiler p;
    p.coreSwitchIn(0, 0, 0);
    p.commitJoin(0, 50);
    p.commitBatch(1, 0, 80);
    StatsRegistry reg;
    p.exportInto(reg, 300);
    EXPECT_EQ(reg.get("cp.length"), 300u);
    EXPECT_EQ(reg.get("commit.batch.windows"), 1u);
}

TEST(Contention, ExportIsIdempotent)
{
    ContentionProfiler p;
    p.opName(2, "beta");
    p.coreSwitchIn(0, 0, 0);
    p.opSet(0, 2, 20);
    p.lockWait(0, 0x7, 0, 0, 30);
    p.coreSwitchIn(1, 0, 40);
    p.commitJoin(1, 80);
    p.coreSwitchIn(0, 1, 90);
    p.lockAcquired(0, 0x7, 9, 90);
    p.commitBatch(1, 2, 110);
    p.txAborted(33);

    StatsRegistry a;
    p.exportInto(a, 140);
    p.exportInto(a, 140); // same clock: every value reassigned equal
    StatsRegistry b;
    p.exportInto(b, 140);
    EXPECT_EQ(dumpAll(a), dumpAll(b));
}

TEST(Contention, AbortAndDeadlockCounters)
{
    ContentionProfiler p;
    p.coreSwitchIn(0, 0, 0);
    p.txAborted(40);
    p.txAborted(60);
    p.lockWait(0, 0x9, 1, 3, 10);
    p.lockDeadlock(0, 0x9, 55); // aborted wait still charges 45
    StatsRegistry reg;
    p.exportInto(reg, 100);
    EXPECT_EQ(reg.get("tx.abort.count"), 2u);
    EXPECT_EQ(reg.get("tx.abort.wasted_total"), 100u);
    EXPECT_EQ(reg.get("lock.deadlock_victims"), 1u);
    const Histogram *wait = reg.findHistogram("lock.wait_cycles");
    ASSERT_NE(wait, nullptr);
    EXPECT_EQ(wait->count(), 1u);
    EXPECT_EQ(wait->max(), 45u);
}

} // namespace
} // namespace telemetry
} // namespace poat
