/** @file Unit tests for the crash-point exploration engine. */
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/stats.h"
#include "fault/explore.h"
#include "fault/injector.h"
#include "pmem/runtime.h"
#include "workloads/crash_support.h"

namespace poat {
namespace {

using fault::ExploreOptions;
using fault::ExploreReport;

ExploreOptions
smallRun(const std::string &workload)
{
    ExploreOptions o;
    o.workload = workload;
    o.steps = 6;
    o.seed = 3;
    o.jobs = 2;
    return o;
}

std::string
firstFailure(const ExploreReport &rep)
{
    if (rep.failures.empty())
        return "";
    return rep.failures[0].repro() + "  " + rep.failures[0].why;
}

TEST(Injector, EventCounterCountsByCause)
{
    fault::EventCounter counter;
    Pool pool("p", 1, 1 << 20);
    pool.setDurabilityHook(&counter);
    pool.writeAs<uint64_t>(4096, 1);
    pool.persist(4096, 8);
    EXPECT_EQ(counter.total(), 1u);
    EXPECT_EQ(counter.count(WriteBackCause::Clwb), 1u);
    EXPECT_EQ(counter.count(WriteBackCause::Evict), 0u);
    pool.setDurabilityHook(nullptr);
}

TEST(Injector, CrashAtEventFreezesDurableState)
{
    fault::CrashAtEvent crash(1);
    Pool pool("p", 1, 1 << 20);
    pool.writeAs<uint64_t>(4096, 1);
    pool.persist(4096, 8); // durable before the hook
    pool.setDurabilityHook(&crash);
    pool.writeAs<uint64_t>(4160, 2);
    pool.persist(4160, 8); // event 0: passes through
    pool.writeAs<uint64_t>(4224, 3);
    pool.persist(4224, 8); // event 1: frozen
    pool.setDurabilityHook(nullptr);
    EXPECT_TRUE(crash.fired());

    // The volatile image still sees everything; after the simulated
    // power failure only the first two stores survive.
    EXPECT_EQ(pool.readAs<uint64_t>(4224), 3u);
    pool.crash();
    EXPECT_EQ(pool.readAs<uint64_t>(4096), 1u);
    EXPECT_EQ(pool.readAs<uint64_t>(4160), 2u);
    EXPECT_EQ(pool.readAs<uint64_t>(4224), 0u);
}

TEST(Explore, ExhaustiveLinkedListPassesAllInvariants)
{
    const ExploreReport rep = fault::explore(smallRun("LL"));
    EXPECT_TRUE(rep.ok()) << firstFailure(rep);
    EXPECT_GT(rep.total_events, 0u);
    EXPECT_EQ(rep.trials, rep.total_events) << "exhaustive = one per event";
    EXPECT_GT(rep.recovery_trials, 0u);
    EXPECT_GT(rep.crashes_injected, 0u);
    EXPECT_GT(rep.undo_entries_rolled_back, 0u);
    EXPECT_EQ(rep.blocks_leaked, 0u);
}

TEST(Explore, ExhaustiveBtreeWithEvictionPressurePasses)
{
    ExploreOptions o = smallRun("BT");
    o.evict_num = 1;
    o.evict_den = 4;
    const ExploreReport rep = fault::explore(o);
    EXPECT_TRUE(rep.ok()) << firstFailure(rep);
    // Eviction only write-backs lines still dirty between steps, and a
    // committed transaction must leave none: every store goes through a
    // logged range or a tx allocation, both persisted at commit. A
    // nonzero count here means some workload store was never persisted
    // — the eviction pass is the tripwire for forgotten persists.
    EXPECT_EQ(rep.evict_events, 0u)
        << "a committed transaction left dirty lines behind";
}

TEST(Explore, DeterministicAcrossRuns)
{
    const ExploreOptions o = smallRun("BST");
    const ExploreReport a = fault::explore(o);
    const ExploreReport b = fault::explore(o);
    EXPECT_EQ(a.total_events, b.total_events);
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.recovery_trials, b.recovery_trials);
    EXPECT_EQ(a.crashes_injected, b.crashes_injected);
    EXPECT_EQ(a.undo_entries_rolled_back, b.undo_entries_rolled_back);
    EXPECT_EQ(a.frees_redone, b.frees_redone);
    ASSERT_EQ(a.failures.size(), b.failures.size());
    for (size_t i = 0; i < a.failures.size(); ++i)
        EXPECT_EQ(a.failures[i].repro(), b.failures[i].repro());
}

TEST(Explore, SamplingBoundsTrialCount)
{
    ExploreOptions o = smallRun("SPS");
    o.sample = 4;
    o.inner_cap = 1;
    o.depth = 1; // the historic single recovery-crash level
    const ExploreReport rep = fault::explore(o);
    EXPECT_TRUE(rep.ok()) << firstFailure(rep);
    EXPECT_EQ(rep.trials, 4u);
    EXPECT_LE(rep.recovery_trials, 4u);
    EXPECT_LE(rep.max_depth, 1u);
}

TEST(Explore, RecursiveRecoveryCrashesAreBudgetedByDepth)
{
    ExploreOptions o = smallRun("SPS");
    o.sample = 4;
    o.inner_cap = 1;
    o.depth = 2;
    const ExploreReport rep = fault::explore(o);
    EXPECT_TRUE(rep.ok()) << firstFailure(rep);
    // inner_cap = 1 gives at most one in-recovery crash per level:
    // <= 4 single-level trials plus <= 4 two-level trials.
    EXPECT_GT(rep.recovery_trials, 4u)
        << "depth 2 must add second-level trials";
    EXPECT_LE(rep.recovery_trials, 8u);
    EXPECT_EQ(rep.max_depth, 2u);

    // depth 0 disables in-recovery crashing entirely.
    o.depth = 0;
    const ExploreReport flat = fault::explore(o);
    EXPECT_TRUE(flat.ok()) << firstFailure(flat);
    EXPECT_EQ(flat.recovery_trials, 0u);
    EXPECT_EQ(flat.max_depth, 0u);
}

TEST(Explore, PublishExportsCounters)
{
    StatsRegistry stats;
    fault::explore(smallRun("LL")).publish(stats);
    EXPECT_GT(stats.counter("fault.events"), 0u);
    EXPECT_GT(stats.counter("fault.trials"), 0u);
    EXPECT_GT(stats.counter("fault.crashes_injected"), 0u);
    EXPECT_EQ(stats.counter("fault.failures"), 0u);
}

TEST(Explore, ReproStringRoundTrips)
{
    fault::Failure f;
    f.workload = "B+T";
    f.steps = 50;
    f.seed = 1;
    f.k = 7;
    EXPECT_EQ(f.repro(), "B+T:50:1:7");
    // A single in-recovery crash keeps the historical bare-j shape.
    f.stack = {3};
    EXPECT_EQ(f.repro(), "B+T:50:1:7:3");
    // Sampled-eviction failures carry their schedule in the string, so
    // no out-of-band --evict is needed to replay them.
    f.evict_num = 1;
    f.evict_den = 8;
    EXPECT_EQ(f.repro(), "B+T:50:1:7:3:e1/8");

    // A deeper recovery-crash stack switches to the d-token.
    f.stack = {3, 5};
    EXPECT_EQ(f.repro(), "B+T:50:1:7:d3,5:e1/8");

    // Drain-state failures carry their per-event word masks; strict
    // failures their policy.
    fault::Failure d;
    d.workload = "LL";
    d.steps = 6;
    d.seed = 3;
    d.k = 24;
    d.drain = "03ff";
    EXPECT_EQ(d.repro(), "LL:6:3:24:r03ff");
    d.strict = true;
    EXPECT_EQ(d.repro(), "LL:6:3:24:r03ff:S");
}

TEST(Explore, ReplayParsesEvictionToken)
{
    EXPECT_TRUE(fault::replayRepro("LL:5:2:3:e1/8").empty());
    EXPECT_TRUE(fault::replayRepro("LL:5:2:3:0:e1/8").empty());
    EXPECT_THROW(fault::replayRepro("LL:5:2:3:e1/8:0"),
                 std::invalid_argument);
}

TEST(Explore, ReplayOfHealthyTrialReportsNothing)
{
    EXPECT_TRUE(fault::replayRepro("LL:5:2:3").empty());
    EXPECT_TRUE(fault::replayRepro("LL:5:2:3:0").empty());
}

TEST(Explore, MalformedReproThrows)
{
    EXPECT_THROW(fault::replayRepro("nope"), std::invalid_argument);
    EXPECT_THROW(fault::replayRepro("LL:5:2"), std::invalid_argument);
    EXPECT_THROW(fault::replayRepro("LL:x:2:3"), std::invalid_argument);
    EXPECT_THROW(fault::replayRepro("LL:5:2:3:4:5"),
                 std::invalid_argument);
}

TEST(Explore, UnknownWorkloadThrows)
{
    EXPECT_THROW(workloads::makeCrashDriver("XX", 5, 1),
                 std::invalid_argument);
    ExploreOptions o = smallRun("XX");
    EXPECT_THROW(fault::explore(o), std::invalid_argument);
    EXPECT_EQ(workloads::crashWorkloadNames().size(), 9u);
}

TEST(Explore, ConcurrentReproCarriesSchedulerTokens)
{
    fault::Failure f;
    f.workload = "LHT";
    f.steps = 12;
    f.seed = 4;
    f.k = 9;
    f.sched_seed = 5;
    // tSEED always rides along for concurrent workloads; nTHREADS only
    // when the producing run overrode the default.
    EXPECT_EQ(f.repro(), "LHT:12:4:9:t5");
    f.threads = 3;
    EXPECT_EQ(f.repro(), "LHT:12:4:9:t5:n3");
    f.stack = {2};
    f.evict_num = 1;
    f.evict_den = 8;
    EXPECT_EQ(f.repro(), "LHT:12:4:9:2:t5:n3:e1/8");

    // Sequential workloads keep their historical shape: no t/n tokens
    // even when the options carried concurrency knobs.
    fault::Failure seq;
    seq.workload = "B+T";
    seq.steps = 12;
    seq.seed = 4;
    seq.k = 9;
    seq.sched_seed = 5;
    seq.threads = 3;
    EXPECT_EQ(seq.repro(), "B+T:12:4:9");
}

TEST(Explore, ConcurrentReproReplaysThroughTheParser)
{
    // A healthy LHT trial replays clean with scheduler seed and thread
    // count parsed from the string, in every token combination.
    EXPECT_TRUE(fault::replayRepro("LHT:3:1:2:t5").empty());
    EXPECT_TRUE(fault::replayRepro("LHT:3:1:2:t5:n3").empty());
    EXPECT_TRUE(fault::replayRepro("LHT:3:1:2:0:t5:n2").empty());
    EXPECT_THROW(fault::replayRepro("LHT:3:1:2:t"),
                 std::invalid_argument);
    EXPECT_THROW(fault::replayRepro("LHT:3:1:2:n2:t5"),
                 std::invalid_argument); // tokens are ordered: t then n
}

TEST(Explore, ConcurrentWorkloadsPassSmallExploration)
{
    for (const char *wl : {"LHT", "MTPCC"}) {
        ExploreOptions o;
        o.workload = wl;
        o.steps = 3;
        o.seed = 3;
        o.jobs = 2;
        o.sched_seed = 1;
        o.sample = 40;
        o.inner_cap = 2;
        const ExploreReport rep = fault::explore(o);
        EXPECT_TRUE(rep.ok()) << wl << ": " << firstFailure(rep);
        EXPECT_GT(rep.trials, 0u) << wl;
    }
}

TEST(Explore, ConcurrentExplorationIsJobCountInvariant)
{
    ExploreOptions o;
    o.workload = "LHT";
    o.steps = 4;
    o.seed = 7;
    o.sched_seed = 2;
    o.sample = 25;
    o.inner_cap = 1;
    o.jobs = 1;
    const ExploreReport serial = fault::explore(o);
    o.jobs = 4;
    const ExploreReport wide = fault::explore(o);
    EXPECT_EQ(serial.total_events, wide.total_events);
    EXPECT_EQ(serial.trials, wide.trials);
    EXPECT_EQ(serial.recovery_trials, wide.recovery_trials);
    EXPECT_EQ(serial.crashes_injected, wide.crashes_injected);
    EXPECT_EQ(serial.undo_entries_rolled_back,
              wide.undo_entries_rolled_back);
    EXPECT_EQ(serial.failures.size(), wide.failures.size());
    EXPECT_TRUE(serial.ok()) << firstFailure(serial);
}

} // namespace
} // namespace poat
