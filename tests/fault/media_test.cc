/**
 * @file
 * Media-fault exploration tests: the corruption-recovery matrix
 * (workloads x fault modes x structure kinds), outcome classification
 * (repaired / diagnosed / benign — never an undetected corruption),
 * determinism, fault-site enumeration, and the self-contained
 * reproducer grammar round trip.
 */
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/stats.h"
#include "fault/media.h"
#include "fault/injector.h"
#include "pmem/runtime.h"
#include "workloads/crash_support.h"

namespace poat {
namespace {

using fault::ExploreOptions;
using fault::MediaOptions;
using fault::MediaReport;
using fault::MediaSite;

MediaOptions
smallRun(const std::string &workload)
{
    MediaOptions o;
    o.base.workload = workload;
    o.base.steps = 6;
    o.base.seed = 3;
    o.base.jobs = 2;
    return o;
}

std::string
firstFailure(const MediaReport &rep)
{
    if (rep.failures.empty())
        return "";
    return rep.failures[0].repro() + "  " + rep.failures[0].why;
}

/** Every trial must land in exactly one of the three sanctioned bins. */
void
expectClassified(const MediaReport &rep)
{
    EXPECT_TRUE(rep.ok()) << firstFailure(rep);
    EXPECT_EQ(rep.repaired + rep.diagnosed + rep.benign, rep.trials);
}

// ---- the matrix: every micro workload, single and double faults ------

class MediaMatrix : public ::testing::TestWithParam<const char *>
{};

TEST_P(MediaMatrix, ExhaustiveSingleAndDoubleFaultsSurvive)
{
    MediaOptions o = smallRun(GetParam());
    o.doubles = 3; // three seeded double-fault trials per crash point
    const MediaReport rep = fault::exploreMedia(o);
    expectClassified(rep);
    EXPECT_GT(rep.total_events, 0u);
    EXPECT_EQ(rep.points, 5u) << "default five-point spread";
    EXPECT_GT(rep.sites, 0u);
    // Exhaustive singles (flip + tear per site) plus the doubles.
    EXPECT_GT(rep.trials, 0u);
    EXPECT_GT(rep.injected, rep.trials) << "doubles inject two faults";
    // The mirror-repair paths must actually exercise: at least one
    // trial per workload repairs instead of fail-stopping.
    EXPECT_GT(rep.repaired, 0u);
    EXPECT_GT(rep.diagnosed, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllMicroWorkloads, MediaMatrix,
                         ::testing::Values("LL", "BST", "SPS", "RBT",
                                           "BT", "B+T"),
                         [](const auto &info) {
                             std::string n = info.param;
                             if (n == "B+T")
                                 return std::string("BplusT");
                             return n;
                         });

TEST(Media, TpccSampledMatrixSurvives)
{
    // TPC-C has tens of thousands of fault sites; the matrix samples.
    MediaOptions o;
    o.base.workload = "TPCC";
    o.base.steps = 3;
    o.base.seed = 1;
    o.sample = 8;
    o.doubles = 2;
    o.points = {0}; // one frozen image keeps the test fast
    const MediaReport rep = fault::exploreMedia(o);
    expectClassified(rep);
    EXPECT_EQ(rep.trials, 10u); // 8 sampled singles + 2 doubles
}

// ---- structure-kind and block filters --------------------------------

TEST(Media, PerKindFaultsAreRepairedOrDiagnosed)
{
    struct Case
    {
        MediaStructure kind;
        bool expect_repairs; // mirror-backed kinds must repair
    };
    const Case cases[] = {
        {MediaStructure::Superblock, true},
        {MediaStructure::LogHeader, true},
        {MediaStructure::LogEntry, false},
        {MediaStructure::BlockHeader, false},
    };
    for (const Case &c : cases) {
        MediaOptions o = smallRun("B+T");
        o.kinds = {c.kind};
        const MediaReport rep = fault::exploreMedia(o);
        expectClassified(rep);
        EXPECT_GT(rep.trials, 0u) << mediaStructureName(c.kind);
        if (c.expect_repairs) {
            // Replicated structures always have an intact copy left
            // after a single fault, so every trial repairs.
            EXPECT_EQ(rep.repaired, rep.trials)
                << mediaStructureName(c.kind);
        }
    }
}

TEST(Media, BlockFilterSelectsAllocatedOrFree)
{
    MediaOptions alloc_only = smallRun("LL");
    alloc_only.kinds = {MediaStructure::BlockHeader};
    alloc_only.block_filter = 1;
    MediaOptions free_only = alloc_only;
    free_only.block_filter = 2;

    const MediaReport a = fault::exploreMedia(alloc_only);
    const MediaReport f = fault::exploreMedia(free_only);
    expectClassified(a);
    expectClassified(f);
    EXPECT_GT(a.trials, 0u);
    EXPECT_GT(f.trials, 0u);

    MediaOptions any = alloc_only;
    any.block_filter = 0;
    const MediaReport all = fault::exploreMedia(any);
    EXPECT_EQ(all.trials, a.trials + f.trials)
        << "allocated + free filters partition the block sites";
}

// ---- determinism and enumeration -------------------------------------

TEST(Media, DeterministicAcrossRuns)
{
    MediaOptions o = smallRun("BST");
    o.doubles = 2;
    const MediaReport a = fault::exploreMedia(o);
    const MediaReport b = fault::exploreMedia(o);
    EXPECT_EQ(a.total_events, b.total_events);
    EXPECT_EQ(a.sites, b.sites);
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.injected, b.injected);
    EXPECT_EQ(a.repaired, b.repaired);
    EXPECT_EQ(a.diagnosed, b.diagnosed);
    EXPECT_EQ(a.benign, b.benign);
    ASSERT_EQ(a.failures.size(), b.failures.size());
}

TEST(Media, SiteEnumerationCoversEveryStructureKind)
{
    // Freeze a mid-run image by hand and check the site table shape:
    // per pool two superblock copies and two log-header copies, plus
    // block headers for the heap; entry sites appear when the log is
    // non-empty.
    PmemRuntime rt;
    auto driver = workloads::makeCrashDriver("LL", 6, 3);
    driver->setup(rt);
    for (uint64_t i = 0; i < 6; ++i)
        driver->step(rt, i);
    rt.registry().crashAll();

    const std::vector<MediaSite> sites =
        fault::enumerateMediaSites(rt.registry());
    size_t superblocks = 0, log_headers = 0, blocks = 0, allocated = 0;
    for (const MediaSite &s : sites) {
        switch (s.kind) {
        case MediaStructure::Superblock:
            ++superblocks;
            EXPECT_EQ(s.len, sizeof(PoolHeader));
            break;
        case MediaStructure::LogHeader:
            ++log_headers;
            EXPECT_EQ(s.len, sizeof(LogHeader));
            break;
        case MediaStructure::BlockHeader:
            ++blocks;
            allocated += s.allocated_block ? 1 : 0;
            break;
        default:
            break;
        }
    }
    const size_t pools = rt.registry().openIds().size();
    EXPECT_EQ(superblocks, 2 * pools) << "primary + mirror per pool";
    EXPECT_EQ(log_headers, 2 * pools) << "primary + mirror per pool";
    EXPECT_GT(blocks, 0u);
    EXPECT_GT(allocated, 0u);

    // Enumeration is deterministic on a frozen image.
    const std::vector<MediaSite> again =
        fault::enumerateMediaSites(rt.registry());
    ASSERT_EQ(again.size(), sites.size());
    for (size_t i = 0; i < sites.size(); ++i) {
        EXPECT_EQ(again[i].pool_id, sites[i].pool_id);
        EXPECT_EQ(again[i].off, sites[i].off);
        EXPECT_EQ(again[i].len, sites[i].len);
    }
}

TEST(Media, PublishExportsCounters)
{
    StatsRegistry stats;
    fault::exploreMedia(smallRun("LL")).publish(stats);
    EXPECT_GT(stats.counter("fault.media.sites"), 0u);
    EXPECT_GT(stats.counter("fault.media.trials"), 0u);
    EXPECT_GT(stats.counter("fault.media.repaired"), 0u);
    EXPECT_EQ(stats.counter("fault.media.failures"), 0u);
}

// ---- self-contained reproducers --------------------------------------

TEST(Media, ReproStringEncodesMediaAndEviction)
{
    fault::Failure f;
    f.workload = "B+T";
    f.steps = 50;
    f.seed = 1;
    f.k = 7;
    f.media = "17";
    EXPECT_EQ(f.repro(), "B+T:50:1:7:m17");
    f.media = "17+42";
    EXPECT_EQ(f.repro(), "B+T:50:1:7:m17+42");
    f.evict_num = 1;
    f.evict_den = 8;
    EXPECT_EQ(f.repro(), "B+T:50:1:7:m17+42:e1/8");
    f.media.clear();
    EXPECT_EQ(f.repro(), "B+T:50:1:7:e1/8");
}

TEST(Media, ReproRoundTripsThroughReplay)
{
    // A healthy trial replayed from its reproducer string reports
    // nothing — and needs no out-of-band options, the string carries
    // the media fault index and the eviction schedule itself.
    EXPECT_TRUE(fault::replayRepro("LL:5:2:3:m0").empty());
    EXPECT_TRUE(fault::replayRepro("LL:5:2:3:m0+5").empty());
    EXPECT_TRUE(fault::replayRepro("LL:5:2:3:m0:e1/8").empty());
    EXPECT_TRUE(fault::replayRepro("LL:5:2:3:e1/8").empty());
}

TEST(Media, MalformedReproThrows)
{
    // Media trials have no in-recovery crash point.
    EXPECT_THROW(fault::replayRepro("LL:5:2:3:4:m1"),
                 std::invalid_argument);
    EXPECT_THROW(fault::replayRepro("LL:5:2:3:m"), std::invalid_argument);
    EXPECT_THROW(fault::replayRepro("LL:5:2:3:mx"),
                 std::invalid_argument);
    EXPECT_THROW(fault::replayRepro("LL:5:2:3:m1+"),
                 std::invalid_argument);
    EXPECT_THROW(fault::replayRepro("LL:5:2:3:m1+2+3"),
                 std::invalid_argument);
    EXPECT_THROW(fault::replayRepro("LL:5:2:3:e1"),
                 std::invalid_argument);
    EXPECT_THROW(fault::replayRepro("LL:5:2:3:e1/0"),
                 std::invalid_argument);
    // A fault index past the image's site space is an error, not UB.
    EXPECT_THROW(fault::replayRepro("LL:5:2:3:m99999999"),
                 std::invalid_argument);
}

} // namespace
} // namespace poat
