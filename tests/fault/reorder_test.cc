/**
 * @file
 * Unit tests for the persistence-reordering crash-state machinery:
 * drain-batch probing, subset/torn-state planning, the CrashWithDrain
 * full-subset equivalence with prefix freezing, the profile-pass event
 * contract, the reproducer drain/stack/strict tokens, and the committed
 * regression reproducers for the torn split-remainder header bug the
 * reorder explorer found.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/stats.h"
#include "fault/explore.h"
#include "fault/injector.h"
#include "fault/reorder.h"
#include "fault/trial.h"
#include "pmem/pool.h"

namespace poat {
namespace {

using fault::DrainBatch;
using fault::DrainPlan;
using fault::DrainProbe;
using fault::ExploreOptions;
using fault::ExploreReport;

TEST(Reorder, TornWordMasksArePrefixesAndSuffixes)
{
    const std::vector<uint8_t> &masks = fault::tornWordMasks();
    ASSERT_EQ(masks.size(), 14u);
    std::set<uint8_t> distinct(masks.begin(), masks.end());
    EXPECT_EQ(distinct.size(), 14u);
    for (uint8_t m : masks) {
        EXPECT_NE(m, 0u);
        EXPECT_NE(m, DurabilityHook::kFullLineMask);
        // A prefix is 0...01...1, a suffix 1...10...0: adding the
        // lowest set bit (suffix) or one past the highest (prefix)
        // yields a power of two.
        const bool prefix = ((m + 1) & m) == 0;
        const uint8_t low = m & static_cast<uint8_t>(-m);
        const uint8_t grown = static_cast<uint8_t>(m + low);
        const bool suffix = (grown & (grown - 1)) == 0;
        EXPECT_TRUE(prefix || suffix) << "mask " << int(m);
    }
}

TEST(Reorder, DrainProbeGroupsFenceBatches)
{
    Pool pool("p", 1, 1 << 20);
    pool.setDurabilityPolicy(DurabilityPolicy::Strict);
    DrainProbe probe;
    pool.setDurabilityHook(&probe);

    // Three dirty lines retired by one fence: one batch of three.
    pool.writeAs<uint64_t>(4096, 1);
    pool.writeAs<uint64_t>(4096 + 64, 2);
    pool.writeAs<uint64_t>(4096 + 128, 3);
    pool.persist(4096, 192);

    // A second persist is a separate batch even under the same policy.
    pool.writeAs<uint64_t>(8192, 4);
    pool.persist(8192, 8);

    pool.setDurabilityHook(nullptr);
    ASSERT_EQ(probe.batches().size(), 2u);
    const DrainBatch &b0 = probe.batches()[0];
    EXPECT_EQ(b0.start, 0u);
    EXPECT_EQ(b0.size(), 3u);
    EXPECT_EQ(b0.cause, WriteBackCause::Fence);
    const std::vector<uint32_t> want = {4096 / 64, (4096 + 64) / 64,
                                       (4096 + 128) / 64};
    EXPECT_EQ(b0.lines, want);
    EXPECT_EQ(probe.batches()[1].start, 3u);
    EXPECT_EQ(probe.batches()[1].size(), 1u);
    EXPECT_EQ(probe.total(), 4u);
}

/** Captures what the fence announces vs what the pool had staged. */
class StagedCapture final : public DurabilityHook
{
  public:
    bool
    onWriteBack(Pool &, uint32_t, WriteBackCause) override
    {
        return true;
    }

    void
    onFenceDrainBegin(Pool &pool,
                      const std::vector<uint32_t> &pending) override
    {
        announced = pending;
        staged = pool.stagedLines();
    }

    std::vector<uint32_t> announced;
    std::vector<uint32_t> staged;
};

TEST(Reorder, EveryStagedLineAppearsInTheDrainAnnouncement)
{
    Pool pool("p", 1, 1 << 20);
    pool.setDurabilityPolicy(DurabilityPolicy::Strict);
    fault::EventCounter counter;
    pool.setDurabilityHook(&counter);
    pool.writeAs<uint64_t>(4096, 1);
    pool.writeAs<uint64_t>(4096 + 64, 2);

    StagedCapture cap;
    pool.setDurabilityHook(&cap);
    pool.persist(4096, 128);
    pool.setDurabilityHook(&counter);
    pool.writeAs<uint64_t>(4096, 3);
    pool.persist(4096, 8);
    pool.setDurabilityHook(nullptr);

    // The Strict policy turns every line's retirement into a fence
    // event...
    EXPECT_GT(counter.count(WriteBackCause::Fence), 0u);
    // ...and the drain announcement names exactly the staged set.
    std::sort(cap.staged.begin(), cap.staged.end());
    std::vector<uint32_t> sorted_announce = cap.announced;
    std::sort(sorted_announce.begin(), sorted_announce.end());
    ASSERT_EQ(cap.announced.size(), 2u);
    EXPECT_EQ(sorted_announce, cap.staged);
}

/** Runs the same five-line Strict write schedule under @p hook. */
template <typename Hook>
std::vector<uint8_t>
durableAfterSchedule(Hook &hook)
{
    Pool pool("p", 1, 1 << 20);
    pool.setDurabilityPolicy(DurabilityPolicy::Strict);
    pool.setDurabilityHook(&hook);
    pool.writeAs<uint64_t>(4096, 11);
    pool.writeAs<uint64_t>(4096 + 64, 22);
    pool.writeAs<uint64_t>(4096 + 128, 33);
    pool.persist(4096, 192); // batch: events 0..2
    pool.writeAs<uint64_t>(8192, 44);
    pool.writeAs<uint64_t>(8192 + 64, 55);
    pool.persist(8192, 128); // batch: events 3..4
    pool.setDurabilityHook(nullptr);
    pool.crash();
    return pool.durableView();
}

TEST(Reorder, FullSubsetDrainIsBitIdenticalToPrefixFreeze)
{
    // Draining the full first batch and then crashing must equal the
    // prefix freeze at the batch's end: CrashWithDrain(0, {ff,ff,ff})
    // == CrashAtEvent(3), bit for bit.
    fault::CrashAtEvent prefix(3);
    fault::CrashWithDrain full(
        0, {DurabilityHook::kFullLineMask, DurabilityHook::kFullLineMask,
            DurabilityHook::kFullLineMask});
    EXPECT_EQ(durableAfterSchedule(prefix), durableAfterSchedule(full));

    // The empty subset equals the freeze at the batch's start.
    fault::CrashAtEvent before(0);
    fault::CrashWithDrain none(0, {0, 0, 0});
    EXPECT_EQ(durableAfterSchedule(before), durableAfterSchedule(none));

    // And a proper subset differs from both.
    fault::CrashWithDrain partial(
        0, {DurabilityHook::kFullLineMask, 0, 0});
    const std::vector<uint8_t> img = durableAfterSchedule(partial);
    EXPECT_NE(img, durableAfterSchedule(prefix));
    EXPECT_NE(img, durableAfterSchedule(before));
}

TEST(Reorder, TornDrainPersistsOnlyMaskedWords)
{
    // Mask 0x01 persists words [0, 8) of the interrupted line only.
    fault::CrashWithDrain torn(0, {0x01, 0, 0});
    Pool pool("p", 1, 1 << 20);
    pool.setDurabilityPolicy(DurabilityPolicy::Strict);
    pool.setDurabilityHook(&torn);
    pool.writeAs<uint64_t>(4096, 11);
    pool.writeAs<uint64_t>(4096 + 8, 99); // same line, second word
    pool.persist(4096, 72);
    pool.setDurabilityHook(nullptr);
    EXPECT_TRUE(torn.fired());
    pool.crash();
    EXPECT_EQ(pool.readAs<uint64_t>(4096), 11u);
    EXPECT_EQ(pool.readAs<uint64_t>(4096 + 8), 0u);
}

TEST(Reorder, PlanDrainStatesExhaustiveForSmallBatches)
{
    DrainBatch b;
    b.start = 10;
    b.lines = {1, 2, 3};
    b.cause = WriteBackCause::Fence;
    const std::vector<DrainPlan> plans =
        fault::planDrainStates(b, 6, 32, 42);

    uint64_t subsets = 0, torn = 0;
    std::set<std::string> distinct;
    for (const DrainPlan &p : plans) {
        EXPECT_EQ(p.start, 10u);
        distinct.insert(fault::encodeDrainMasks(p.masks));
        if (p.torn)
            ++torn;
        else
            ++subsets;
    }
    // 2^3 - 2 proper non-empty subsets; 14 torn masks at each of the
    // three interrupt positions.
    EXPECT_EQ(subsets, 6u);
    EXPECT_EQ(torn, 3u * 14u);
    EXPECT_EQ(distinct.size(), plans.size()) << "plans must be distinct";
}

TEST(Reorder, PlanDrainStatesSamplesLargeBatches)
{
    DrainBatch b;
    b.start = 0;
    b.lines.resize(12);
    for (uint32_t i = 0; i < 12; ++i)
        b.lines[i] = i;
    b.cause = WriteBackCause::Fence;
    const std::vector<DrainPlan> plans =
        fault::planDrainStates(b, 6, 16, 42);

    uint64_t subsets = 0, torn = 0;
    for (const DrainPlan &p : plans)
        (p.torn ? torn : subsets) += 1;
    EXPECT_EQ(subsets, 16u) << "sampled, not 2^12 - 2";
    EXPECT_EQ(torn, 12u * 14u);

    // Deterministic for a fixed seed, different for another.
    const std::vector<DrainPlan> again =
        fault::planDrainStates(b, 6, 16, 42);
    ASSERT_EQ(again.size(), plans.size());
    for (size_t i = 0; i < plans.size(); ++i)
        EXPECT_EQ(again[i].masks, plans[i].masks);
}

TEST(Reorder, DrainMaskCodecRoundTripsAndRejects)
{
    const std::vector<uint8_t> masks = {0x03, 0xff, 0x00, 0xe0};
    const std::string hex = fault::encodeDrainMasks(masks);
    EXPECT_EQ(hex, "03ff00e0");
    EXPECT_EQ(fault::decodeDrainMasks(hex), masks);
    EXPECT_THROW(fault::decodeDrainMasks(""), std::invalid_argument);
    EXPECT_THROW(fault::decodeDrainMasks("0"), std::invalid_argument);
    EXPECT_THROW(fault::decodeDrainMasks("zz"), std::invalid_argument);
}

TEST(Reorder, EventContractViolationNamesBothCounts)
{
    EXPECT_NO_THROW(fault::detail::checkEventContract(5, 5));
    EXPECT_NO_THROW(fault::detail::checkEventContract(
        5, fault::detail::kNoExpectedEvents));
    try {
        fault::detail::checkEventContract(5, 7);
        FAIL() << "contract violation must throw";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("contract"), std::string::npos) << what;
        EXPECT_NE(what.find("7"), std::string::npos)
            << "must name the profiled count: " << what;
        EXPECT_NE(what.find("5"), std::string::npos)
            << "must name the observed count: " << what;
    }
}

TEST(Reorder, ExplorationCoversReorderStates)
{
    ExploreOptions o;
    o.workload = "LL";
    o.steps = 4;
    o.seed = 3;
    o.jobs = 2;
    o.depth = 1;
    o.reorder = true;
    o.strict = true;
    const ExploreReport rep = fault::explore(o);
    EXPECT_TRUE(rep.ok()) << (rep.failures.empty()
                                  ? ""
                                  : rep.failures[0].repro() + "  " +
                                        rep.failures[0].why);
    EXPECT_GT(rep.reorder_states, 0u);
    EXPECT_GT(rep.torn_states, 0u);
    EXPECT_GE(rep.reorder_states, rep.torn_states);

    StatsRegistry stats;
    rep.publish(stats);
    EXPECT_EQ(stats.counter("fault.reorder.states"), rep.reorder_states);
    EXPECT_EQ(stats.counter("fault.reorder.torn_states"),
              rep.torn_states);
}

TEST(Reorder, ReproTokensRoundTripThroughReplay)
{
    // Healthy trials replay clean through every new token.
    EXPECT_TRUE(fault::replayRepro("LL:5:2:3:d1,2").empty());
    EXPECT_TRUE(fault::replayRepro("LL:5:2:3:r03").empty());
    EXPECT_TRUE(fault::replayRepro("LL:5:2:3:rff").empty());
    EXPECT_TRUE(fault::replayRepro("LL:5:2:3:S").empty());
    EXPECT_TRUE(fault::replayRepro("LL:5:2:3:r03:S").empty());
    EXPECT_TRUE(fault::replayRepro("LL:5:2:3:d1,2:S").empty());
}

TEST(Reorder, MalformedReproTokensThrow)
{
    // Empty or non-numeric stack items.
    EXPECT_THROW(fault::replayRepro("LL:5:2:3:d"), std::invalid_argument);
    EXPECT_THROW(fault::replayRepro("LL:5:2:3:d1,,2"),
                 std::invalid_argument);
    EXPECT_THROW(fault::replayRepro("LL:5:2:3:dx"),
                 std::invalid_argument);
    // Bad drain masks.
    EXPECT_THROW(fault::replayRepro("LL:5:2:3:r"), std::invalid_argument);
    EXPECT_THROW(fault::replayRepro("LL:5:2:3:r0"),
                 std::invalid_argument);
    EXPECT_THROW(fault::replayRepro("LL:5:2:3:rzz"),
                 std::invalid_argument);
    // A drain state crashes mid-batch: recursing into recovery from it
    // is not a defined trial shape.
    EXPECT_THROW(fault::replayRepro("LL:5:2:3:d1:r03"),
                 std::invalid_argument);
    // Media faults run under the Eager policy, with no drain/stack.
    EXPECT_THROW(fault::replayRepro("LL:5:2:3:r03:m1"),
                 std::invalid_argument);
    EXPECT_THROW(fault::replayRepro("LL:5:2:3:S:m1"),
                 std::invalid_argument);
}

TEST(Reorder, TornSplitRemainderHeaderRegression)
{
    // Found by the reorder explorer (and fixed in the same change): a
    // Strict fence drain tears the 64-byte line holding both a freshly
    // allocated block's header and its split remainder's header. The
    // remainder's old bytes never held a header, so no log record and
    // no second copy could prove its liveness, and scrub fail-stopped
    // a state that a real machine must recover from. The fix moves
    // prev_size out of the checksummed word (it is walk-derivable) and
    // teaches scrub the two fresh-remainder signatures; these exact
    // crash states must replay clean forever.
    for (const char *repro :
         {"LL:6:3:24:r03:S", "LL:6:3:24:r07:S", "LL:6:3:24:r0f:S",
          "LL:6:3:24:r1f:S"}) {
        EXPECT_TRUE(fault::replayRepro(repro).empty()) << repro;
    }
}

TEST(Reorder, StaleAbsorbedHeaderTornSplitRegression)
{
    // Found by the concurrent reorder explorer: a torn fence drain
    // during an allocation split persisted only the new header's
    // (size, flags) word, and scrub's extent reconstruction then
    // accepted a STALE crc-valid header — left behind by an earlier
    // coalesce — as the split's successor, resurrecting an allocation
    // no log record covers (a permanent leak). free() now poisons
    // absorbed headers and rebuildFreeList sweeps free extents, so
    // these exact crash states must replay clean forever.
    for (const char *repro :
         {"LHT:8:1:139:r01:S:t1:n3", "LHT:8:1:139:r3f:S:t1:n3"}) {
        EXPECT_TRUE(fault::replayRepro(repro).empty()) << repro;
    }
}

TEST(Reorder, TpccDeliveryPrefixStatesVerifyRegression)
{
    // Found by the first run of the TPC-C shadow verifier: delivery
    // commits one TxScope per district, so these crash points recover
    // to a proper prefix of a delivery's district credits — a state
    // that equals NO whole-step reference count. The shadow model must
    // replay delivery sub-transaction prefixes as candidates between
    // steps s and s+1 (these two points sit mid-delivery of step 2).
    for (const char *repro : {"TPCC:10:1:118", "TPCC:10:1:597"}) {
        EXPECT_TRUE(fault::replayRepro(repro).empty()) << repro;
    }
}

} // namespace
} // namespace poat
