file(REMOVE_RECURSE
  "CMakeFiles/ablation_polb_hit.dir/ablation_polb_hit.cc.o"
  "CMakeFiles/ablation_polb_hit.dir/ablation_polb_hit.cc.o.d"
  "ablation_polb_hit"
  "ablation_polb_hit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_polb_hit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
