# Empty dependencies file for ablation_polb_hit.
# This may be replaced when dependencies are built.
