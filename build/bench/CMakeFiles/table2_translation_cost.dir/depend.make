# Empty dependencies file for table2_translation_cost.
# This may be replaced when dependencies are built.
