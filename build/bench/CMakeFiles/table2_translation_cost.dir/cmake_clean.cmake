file(REMOVE_RECURSE
  "CMakeFiles/table2_translation_cost.dir/table2_translation_cost.cc.o"
  "CMakeFiles/table2_translation_cost.dir/table2_translation_cost.cc.o.d"
  "table2_translation_cost"
  "table2_translation_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_translation_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
