file(REMOVE_RECURSE
  "CMakeFiles/ablation_base_predictor.dir/ablation_base_predictor.cc.o"
  "CMakeFiles/ablation_base_predictor.dir/ablation_base_predictor.cc.o.d"
  "ablation_base_predictor"
  "ablation_base_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_base_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
