file(REMOVE_RECURSE
  "CMakeFiles/native_translate_bench.dir/native_translate_bench.cc.o"
  "CMakeFiles/native_translate_bench.dir/native_translate_bench.cc.o.d"
  "native_translate_bench"
  "native_translate_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_translate_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
