# Empty compiler generated dependencies file for native_translate_bench.
# This may be replaced when dependencies are built.
