# Empty dependencies file for table8_polb_missrate.
# This may be replaced when dependencies are built.
