file(REMOVE_RECURSE
  "CMakeFiles/table8_polb_missrate.dir/table8_polb_missrate.cc.o"
  "CMakeFiles/table8_polb_missrate.dir/table8_polb_missrate.cc.o.d"
  "table8_polb_missrate"
  "table8_polb_missrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_polb_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
