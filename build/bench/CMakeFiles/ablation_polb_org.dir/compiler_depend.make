# Empty compiler generated dependencies file for ablation_polb_org.
# This may be replaced when dependencies are built.
