file(REMOVE_RECURSE
  "CMakeFiles/ablation_polb_org.dir/ablation_polb_org.cc.o"
  "CMakeFiles/ablation_polb_org.dir/ablation_polb_org.cc.o.d"
  "ablation_polb_org"
  "ablation_polb_org.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_polb_org.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
