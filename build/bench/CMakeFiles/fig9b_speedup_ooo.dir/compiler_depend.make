# Empty compiler generated dependencies file for fig9b_speedup_ooo.
# This may be replaced when dependencies are built.
