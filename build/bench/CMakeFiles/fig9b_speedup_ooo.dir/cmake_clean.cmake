file(REMOVE_RECURSE
  "CMakeFiles/fig9b_speedup_ooo.dir/fig9b_speedup_ooo.cc.o"
  "CMakeFiles/fig9b_speedup_ooo.dir/fig9b_speedup_ooo.cc.o.d"
  "fig9b_speedup_ooo"
  "fig9b_speedup_ooo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9b_speedup_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
