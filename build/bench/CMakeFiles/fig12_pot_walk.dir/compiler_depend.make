# Empty compiler generated dependencies file for fig12_pot_walk.
# This may be replaced when dependencies are built.
