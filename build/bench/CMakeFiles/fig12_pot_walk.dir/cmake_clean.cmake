file(REMOVE_RECURSE
  "CMakeFiles/fig12_pot_walk.dir/fig12_pot_walk.cc.o"
  "CMakeFiles/fig12_pot_walk.dir/fig12_pot_walk.cc.o.d"
  "fig12_pot_walk"
  "fig12_pot_walk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_pot_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
