file(REMOVE_RECURSE
  "CMakeFiles/ext_warehouse_scaling.dir/ext_warehouse_scaling.cc.o"
  "CMakeFiles/ext_warehouse_scaling.dir/ext_warehouse_scaling.cc.o.d"
  "ext_warehouse_scaling"
  "ext_warehouse_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_warehouse_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
