# Empty dependencies file for ext_warehouse_scaling.
# This may be replaced when dependencies are built.
