file(REMOVE_RECURSE
  "CMakeFiles/fig11_polb_size.dir/fig11_polb_size.cc.o"
  "CMakeFiles/fig11_polb_size.dir/fig11_polb_size.cc.o.d"
  "fig11_polb_size"
  "fig11_polb_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_polb_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
