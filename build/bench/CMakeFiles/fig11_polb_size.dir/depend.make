# Empty dependencies file for fig11_polb_size.
# This may be replaced when dependencies are built.
