file(REMOVE_RECURSE
  "CMakeFiles/fig9a_speedup_inorder.dir/fig9a_speedup_inorder.cc.o"
  "CMakeFiles/fig9a_speedup_inorder.dir/fig9a_speedup_inorder.cc.o.d"
  "fig9a_speedup_inorder"
  "fig9a_speedup_inorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9a_speedup_inorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
