# Empty dependencies file for fig9a_speedup_inorder.
# This may be replaced when dependencies are built.
