# Empty compiler generated dependencies file for ablation_pot_memory.
# This may be replaced when dependencies are built.
