file(REMOVE_RECURSE
  "CMakeFiles/ablation_pot_memory.dir/ablation_pot_memory.cc.o"
  "CMakeFiles/ablation_pot_memory.dir/ablation_pot_memory.cc.o.d"
  "ablation_pot_memory"
  "ablation_pot_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pot_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
