
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10_ntx_speedup.cc" "bench/CMakeFiles/fig10_ntx_speedup.dir/fig10_ntx_speedup.cc.o" "gcc" "bench/CMakeFiles/fig10_ntx_speedup.dir/fig10_ntx_speedup.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/poat_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/poat_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/poat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/poat_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/poat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
