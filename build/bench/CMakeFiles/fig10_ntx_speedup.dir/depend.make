# Empty dependencies file for fig10_ntx_speedup.
# This may be replaced when dependencies are built.
