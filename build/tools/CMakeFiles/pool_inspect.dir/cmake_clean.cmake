file(REMOVE_RECURSE
  "CMakeFiles/pool_inspect.dir/pool_inspect.cc.o"
  "CMakeFiles/pool_inspect.dir/pool_inspect.cc.o.d"
  "pool_inspect"
  "pool_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pool_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
