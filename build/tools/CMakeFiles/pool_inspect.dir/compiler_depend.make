# Empty compiler generated dependencies file for pool_inspect.
# This may be replaced when dependencies are built.
