# Empty dependencies file for poat_driver.
# This may be replaced when dependencies are built.
