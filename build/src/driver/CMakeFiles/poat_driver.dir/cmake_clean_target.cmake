file(REMOVE_RECURSE
  "libpoat_driver.a"
)
