file(REMOVE_RECURSE
  "CMakeFiles/poat_driver.dir/experiment.cc.o"
  "CMakeFiles/poat_driver.dir/experiment.cc.o.d"
  "libpoat_driver.a"
  "libpoat_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poat_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
