file(REMOVE_RECURSE
  "CMakeFiles/poat_common.dir/stats.cc.o"
  "CMakeFiles/poat_common.dir/stats.cc.o.d"
  "libpoat_common.a"
  "libpoat_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poat_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
