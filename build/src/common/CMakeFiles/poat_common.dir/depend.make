# Empty dependencies file for poat_common.
# This may be replaced when dependencies are built.
