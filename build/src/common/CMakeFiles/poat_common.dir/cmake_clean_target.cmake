file(REMOVE_RECURSE
  "libpoat_common.a"
)
