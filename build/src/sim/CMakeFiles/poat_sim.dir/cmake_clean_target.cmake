file(REMOVE_RECURSE
  "libpoat_sim.a"
)
