# Empty compiler generated dependencies file for poat_sim.
# This may be replaced when dependencies are built.
