file(REMOVE_RECURSE
  "CMakeFiles/poat_sim.dir/cache.cc.o"
  "CMakeFiles/poat_sim.dir/cache.cc.o.d"
  "CMakeFiles/poat_sim.dir/machine.cc.o"
  "CMakeFiles/poat_sim.dir/machine.cc.o.d"
  "libpoat_sim.a"
  "libpoat_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poat_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
