# Empty compiler generated dependencies file for poat_workloads.
# This may be replaced when dependencies are built.
