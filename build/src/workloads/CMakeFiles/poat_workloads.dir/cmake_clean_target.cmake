file(REMOVE_RECURSE
  "libpoat_workloads.a"
)
