file(REMOVE_RECURSE
  "CMakeFiles/poat_workloads.dir/bplus.cc.o"
  "CMakeFiles/poat_workloads.dir/bplus.cc.o.d"
  "CMakeFiles/poat_workloads.dir/bplustree.cc.o"
  "CMakeFiles/poat_workloads.dir/bplustree.cc.o.d"
  "CMakeFiles/poat_workloads.dir/bst.cc.o"
  "CMakeFiles/poat_workloads.dir/bst.cc.o.d"
  "CMakeFiles/poat_workloads.dir/btree.cc.o"
  "CMakeFiles/poat_workloads.dir/btree.cc.o.d"
  "CMakeFiles/poat_workloads.dir/harness.cc.o"
  "CMakeFiles/poat_workloads.dir/harness.cc.o.d"
  "CMakeFiles/poat_workloads.dir/list.cc.o"
  "CMakeFiles/poat_workloads.dir/list.cc.o.d"
  "CMakeFiles/poat_workloads.dir/rbtree.cc.o"
  "CMakeFiles/poat_workloads.dir/rbtree.cc.o.d"
  "CMakeFiles/poat_workloads.dir/sps.cc.o"
  "CMakeFiles/poat_workloads.dir/sps.cc.o.d"
  "CMakeFiles/poat_workloads.dir/tpcc/tpcc.cc.o"
  "CMakeFiles/poat_workloads.dir/tpcc/tpcc.cc.o.d"
  "libpoat_workloads.a"
  "libpoat_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poat_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
