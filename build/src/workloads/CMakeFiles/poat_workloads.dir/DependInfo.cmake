
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bplus.cc" "src/workloads/CMakeFiles/poat_workloads.dir/bplus.cc.o" "gcc" "src/workloads/CMakeFiles/poat_workloads.dir/bplus.cc.o.d"
  "/root/repo/src/workloads/bplustree.cc" "src/workloads/CMakeFiles/poat_workloads.dir/bplustree.cc.o" "gcc" "src/workloads/CMakeFiles/poat_workloads.dir/bplustree.cc.o.d"
  "/root/repo/src/workloads/bst.cc" "src/workloads/CMakeFiles/poat_workloads.dir/bst.cc.o" "gcc" "src/workloads/CMakeFiles/poat_workloads.dir/bst.cc.o.d"
  "/root/repo/src/workloads/btree.cc" "src/workloads/CMakeFiles/poat_workloads.dir/btree.cc.o" "gcc" "src/workloads/CMakeFiles/poat_workloads.dir/btree.cc.o.d"
  "/root/repo/src/workloads/harness.cc" "src/workloads/CMakeFiles/poat_workloads.dir/harness.cc.o" "gcc" "src/workloads/CMakeFiles/poat_workloads.dir/harness.cc.o.d"
  "/root/repo/src/workloads/list.cc" "src/workloads/CMakeFiles/poat_workloads.dir/list.cc.o" "gcc" "src/workloads/CMakeFiles/poat_workloads.dir/list.cc.o.d"
  "/root/repo/src/workloads/rbtree.cc" "src/workloads/CMakeFiles/poat_workloads.dir/rbtree.cc.o" "gcc" "src/workloads/CMakeFiles/poat_workloads.dir/rbtree.cc.o.d"
  "/root/repo/src/workloads/sps.cc" "src/workloads/CMakeFiles/poat_workloads.dir/sps.cc.o" "gcc" "src/workloads/CMakeFiles/poat_workloads.dir/sps.cc.o.d"
  "/root/repo/src/workloads/tpcc/tpcc.cc" "src/workloads/CMakeFiles/poat_workloads.dir/tpcc/tpcc.cc.o" "gcc" "src/workloads/CMakeFiles/poat_workloads.dir/tpcc/tpcc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pmem/CMakeFiles/poat_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/poat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
