file(REMOVE_RECURSE
  "CMakeFiles/poat_pmem.dir/alloc.cc.o"
  "CMakeFiles/poat_pmem.dir/alloc.cc.o.d"
  "CMakeFiles/poat_pmem.dir/pool.cc.o"
  "CMakeFiles/poat_pmem.dir/pool.cc.o.d"
  "CMakeFiles/poat_pmem.dir/registry.cc.o"
  "CMakeFiles/poat_pmem.dir/registry.cc.o.d"
  "CMakeFiles/poat_pmem.dir/runtime.cc.o"
  "CMakeFiles/poat_pmem.dir/runtime.cc.o.d"
  "CMakeFiles/poat_pmem.dir/translate.cc.o"
  "CMakeFiles/poat_pmem.dir/translate.cc.o.d"
  "CMakeFiles/poat_pmem.dir/tx.cc.o"
  "CMakeFiles/poat_pmem.dir/tx.cc.o.d"
  "libpoat_pmem.a"
  "libpoat_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poat_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
