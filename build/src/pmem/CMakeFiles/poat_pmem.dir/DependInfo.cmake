
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmem/alloc.cc" "src/pmem/CMakeFiles/poat_pmem.dir/alloc.cc.o" "gcc" "src/pmem/CMakeFiles/poat_pmem.dir/alloc.cc.o.d"
  "/root/repo/src/pmem/pool.cc" "src/pmem/CMakeFiles/poat_pmem.dir/pool.cc.o" "gcc" "src/pmem/CMakeFiles/poat_pmem.dir/pool.cc.o.d"
  "/root/repo/src/pmem/registry.cc" "src/pmem/CMakeFiles/poat_pmem.dir/registry.cc.o" "gcc" "src/pmem/CMakeFiles/poat_pmem.dir/registry.cc.o.d"
  "/root/repo/src/pmem/runtime.cc" "src/pmem/CMakeFiles/poat_pmem.dir/runtime.cc.o" "gcc" "src/pmem/CMakeFiles/poat_pmem.dir/runtime.cc.o.d"
  "/root/repo/src/pmem/translate.cc" "src/pmem/CMakeFiles/poat_pmem.dir/translate.cc.o" "gcc" "src/pmem/CMakeFiles/poat_pmem.dir/translate.cc.o.d"
  "/root/repo/src/pmem/tx.cc" "src/pmem/CMakeFiles/poat_pmem.dir/tx.cc.o" "gcc" "src/pmem/CMakeFiles/poat_pmem.dir/tx.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/poat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
