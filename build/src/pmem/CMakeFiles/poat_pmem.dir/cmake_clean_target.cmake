file(REMOVE_RECURSE
  "libpoat_pmem.a"
)
