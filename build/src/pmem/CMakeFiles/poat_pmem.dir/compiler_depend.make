# Empty compiler generated dependencies file for poat_pmem.
# This may be replaced when dependencies are built.
