# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/oid_test[1]_include.cmake")
include("/root/repo/build/tests/pool_test[1]_include.cmake")
include("/root/repo/build/tests/alloc_test[1]_include.cmake")
include("/root/repo/build/tests/tx_test[1]_include.cmake")
include("/root/repo/build/tests/translate_test[1]_include.cmake")
include("/root/repo/build/tests/registry_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/sim_cache_test[1]_include.cmake")
include("/root/repo/build/tests/sim_vm_test[1]_include.cmake")
include("/root/repo/build/tests/sim_polb_test[1]_include.cmake")
include("/root/repo/build/tests/sim_pot_test[1]_include.cmake")
include("/root/repo/build/tests/sim_branch_test[1]_include.cmake")
include("/root/repo/build/tests/sim_core_test[1]_include.cmake")
include("/root/repo/build/tests/sim_machine_test[1]_include.cmake")
include("/root/repo/build/tests/bplustree_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/tpcc_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/sim_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/addrspace_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/export_import_test[1]_include.cmake")
include("/root/repo/build/tests/crash_property_test[1]_include.cmake")
include("/root/repo/build/tests/contract_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
