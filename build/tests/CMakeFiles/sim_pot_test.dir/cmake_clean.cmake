file(REMOVE_RECURSE
  "CMakeFiles/sim_pot_test.dir/sim/pot_test.cc.o"
  "CMakeFiles/sim_pot_test.dir/sim/pot_test.cc.o.d"
  "sim_pot_test"
  "sim_pot_test.pdb"
  "sim_pot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_pot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
