file(REMOVE_RECURSE
  "CMakeFiles/export_import_test.dir/pmem/export_import_test.cc.o"
  "CMakeFiles/export_import_test.dir/pmem/export_import_test.cc.o.d"
  "export_import_test"
  "export_import_test.pdb"
  "export_import_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_import_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
