file(REMOVE_RECURSE
  "CMakeFiles/sim_polb_test.dir/sim/polb_test.cc.o"
  "CMakeFiles/sim_polb_test.dir/sim/polb_test.cc.o.d"
  "sim_polb_test"
  "sim_polb_test.pdb"
  "sim_polb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_polb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
