# Empty dependencies file for sim_polb_test.
# This may be replaced when dependencies are built.
