file(REMOVE_RECURSE
  "CMakeFiles/sim_branch_test.dir/sim/branch_test.cc.o"
  "CMakeFiles/sim_branch_test.dir/sim/branch_test.cc.o.d"
  "sim_branch_test"
  "sim_branch_test.pdb"
  "sim_branch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_branch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
