# Empty dependencies file for sim_branch_test.
# This may be replaced when dependencies are built.
