# Empty compiler generated dependencies file for bplustree_test.
# This may be replaced when dependencies are built.
