file(REMOVE_RECURSE
  "CMakeFiles/bplustree_test.dir/workloads/bplustree_test.cc.o"
  "CMakeFiles/bplustree_test.dir/workloads/bplustree_test.cc.o.d"
  "bplustree_test"
  "bplustree_test.pdb"
  "bplustree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bplustree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
