/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic() is for conditions that indicate a bug in poat itself; it aborts.
 * fatal() is for user-caused conditions (bad configuration, illegal API
 * use); it exits with an error code. warn()/inform() print status without
 * stopping the program.
 */
#ifndef POAT_COMMON_LOGGING_H
#define POAT_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>

namespace poat {

/** Print a message and abort; use for internal invariant violations. */
[[noreturn]] inline void
panicImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg, file, line);
    std::abort();
}

/** Print a message and exit(1); use for user/configuration errors. */
[[noreturn]] inline void
fatalImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg, file, line);
    std::exit(1);
}

} // namespace poat

#define POAT_PANIC(msg) ::poat::panicImpl(__FILE__, __LINE__, (msg))
#define POAT_FATAL(msg) ::poat::fatalImpl(__FILE__, __LINE__, (msg))

/** Assert an internal invariant; always enabled (not tied to NDEBUG). */
#define POAT_ASSERT(cond, msg)                                             \
    do {                                                                   \
        if (!(cond))                                                       \
            POAT_PANIC(msg);                                               \
    } while (0)

#endif // POAT_COMMON_LOGGING_H
