/**
 * @file
 * Small bit-manipulation and alignment helpers shared across poat.
 */
#ifndef POAT_COMMON_BITS_H
#define POAT_COMMON_BITS_H

#include <cstdint>

namespace poat {

/** Round @p v up to the next multiple of @p align (a power of two). */
constexpr uint64_t
alignUp(uint64_t v, uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Round @p v down to a multiple of @p align (a power of two). */
constexpr uint64_t
alignDown(uint64_t v, uint64_t align)
{
    return v & ~(align - 1);
}

/** True iff @p v is a power of two (and nonzero). */
constexpr bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2; undefined for 0. */
constexpr unsigned
floorLog2(uint64_t v)
{
    unsigned r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

/** Extract bits [lo, hi] (inclusive) of @p v. */
constexpr uint64_t
bitsOf(uint64_t v, unsigned hi, unsigned lo)
{
    const unsigned width = hi - lo + 1;
    const uint64_t mask = width >= 64 ? ~0ull : ((1ull << width) - 1);
    return (v >> lo) & mask;
}

} // namespace poat

#endif // POAT_COMMON_BITS_H
