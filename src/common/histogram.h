/**
 * @file
 * Log2-bucketed latency/size histogram.
 *
 * Values land in power-of-two buckets (bucket 0 holds value 0; bucket k
 * holds [2^(k-1), 2^k)), so recording is a handful of instructions and
 * the footprint is fixed — cheap enough to sit on the simulator's
 * translation path. Percentiles are estimated by linear interpolation
 * inside the selected bucket, which keeps p50/p95/p99 honest for the
 * latency distributions the paper's evaluation cares about (POT walk
 * costs, nvld/nvst latencies) without storing samples.
 */
#ifndef POAT_COMMON_HISTOGRAM_H
#define POAT_COMMON_HISTOGRAM_H

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>

namespace poat {

/** Fixed-footprint log2 histogram over uint64 samples. */
class Histogram
{
  public:
    /** Bucket 0 is {0}; bucket k (k>=1) is [2^(k-1), 2^k). */
    static constexpr uint32_t kBuckets = 65;

    /** Bucket index of @p v. */
    static constexpr uint32_t
    bucketOf(uint64_t v)
    {
        return static_cast<uint32_t>(std::bit_width(v));
    }

    /** Inclusive lower bound of bucket @p b. */
    static constexpr uint64_t
    bucketLo(uint32_t b)
    {
        return b == 0 ? 0 : 1ull << (b - 1);
    }

    /** Inclusive upper bound of bucket @p b. */
    static constexpr uint64_t
    bucketHi(uint32_t b)
    {
        return b == 0 ? 0 : (1ull << (b - 1)) + ((1ull << (b - 1)) - 1);
    }

    /** Add one sample. */
    void
    record(uint64_t v)
    {
        if (count_ == 0) {
            min_ = v;
            max_ = v;
        } else {
            min_ = std::min(min_, v);
            max_ = std::max(max_, v);
        }
        ++count_;
        sum_ += v;
        sumsq_ += v * v; // wraps for huge samples; latencies never do
        ++buckets_[bucketOf(v)];
    }

    /** Forget every sample. */
    void
    reset()
    {
        count_ = 0;
        sum_ = 0;
        sumsq_ = 0;
        min_ = 0;
        max_ = 0;
        buckets_.fill(0);
    }

    /**
     * Restore externally serialized state wholesale (the trace-replay
     * functional profile; see docs/SIMULATOR.md). The caller vouches
     * that the fields came from a real histogram.
     */
    void
    restore(uint64_t count, uint64_t sum, uint64_t sumsq, uint64_t min,
            uint64_t max, const std::array<uint64_t, kBuckets> &buckets)
    {
        count_ = count;
        sum_ = sum;
        sumsq_ = sumsq;
        min_ = min;
        max_ = max;
        buckets_ = buckets;
    }

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t sumsq() const { return sumsq_; }
    uint64_t min() const { return min_; }
    uint64_t max() const { return max_; }
    uint64_t bucketCount(uint32_t b) const { return buckets_[b]; }

    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                static_cast<double>(count_)
                      : 0.0;
    }

    /** Population standard deviation (exact, from the sum of squares). */
    double
    stddev() const
    {
        if (count_ == 0)
            return 0.0;
        const double m = mean();
        const double var = static_cast<double>(sumsq_) /
                static_cast<double>(count_) -
            m * m;
        return var > 0.0 ? std::sqrt(var) : 0.0;
    }

    /**
     * Estimated value at quantile @p q (0..1): the bucket holding the
     * q-th sample, linearly interpolated across its value range and
     * clamped to the observed [min, max]. quantile(0.5) is the median
     * estimate; an empty histogram reports 0.
     */
    double
    quantile(double q) const
    {
        if (count_ == 0)
            return 0.0;
        q = std::clamp(q, 0.0, 1.0);
        const double target = q * static_cast<double>(count_);
        uint64_t cum = 0;
        for (uint32_t b = 0; b < kBuckets; ++b) {
            if (buckets_[b] == 0)
                continue;
            const uint64_t prev = cum;
            cum += buckets_[b];
            if (static_cast<double>(cum) < target)
                continue;
            const double frac = buckets_[b]
                ? (target - static_cast<double>(prev)) /
                    static_cast<double>(buckets_[b])
                : 0.0;
            const double lo = static_cast<double>(bucketLo(b));
            const double hi = static_cast<double>(bucketHi(b));
            const double v = lo + frac * (hi - lo);
            return std::clamp(v, static_cast<double>(min_),
                              static_cast<double>(max_));
        }
        return static_cast<double>(max_);
    }

    /** percentile(p) with @p p in 0..100; see quantile(). */
    double
    percentile(double p) const
    {
        return quantile(std::clamp(p, 0.0, 100.0) / 100.0);
    }

  private:
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t sumsq_ = 0;
    uint64_t min_ = 0;
    uint64_t max_ = 0;
    std::array<uint64_t, kBuckets> buckets_{};
};

} // namespace poat

#endif // POAT_COMMON_HISTOGRAM_H
