/**
 * @file
 * CPI-stack cycle accounting (Sniper-style "where did the time go").
 *
 * Every stall/occupancy cycle a core model spends is charged to exactly
 * one named component, so a run's components sum *exactly* to its total
 * cycles — the invariant sim::Machine asserts on every stats sync and
 * tests/sim/cpi_invariant_test.cc checks end to end. The taxonomy
 * mirrors the paper's attribution story (Table 2, Figure 12): the
 * software-translation component is the cost the POLB/POT hardware
 * removes, and the polb/pot_walk components are what it adds back.
 *
 * Components:
 *  - base:         issue/commit bandwidth of plain ALU work and the
 *                  un-attributable occupancy of a busy pipeline
 *  - branch:       mispredict redirect cycles
 *  - iside:        instruction-side stalls (no I-cache is modeled yet;
 *                  reserved so the stack's schema is stable)
 *  - l1d/l2/l3/mem: data-access cycles, charged to the level that
 *                  serviced the access
 *  - tlb:          TLB-miss page-walk cycles
 *  - sw_translate: every cycle of BASE's software ObjectID translation
 *                  (the oid_direct instruction expansion, Table 2)
 *  - polb:         POLB lookup latency (Pipelined AGEN path; the
 *                  Parallel/VIPT path is free on hits by design)
 *  - pot_walk:     hardware POT hash-walk cycles on POLB misses
 *  - flush:        CLWB latencies
 *  - fence:        SFENCE serialization / store-drain waits
 */
#ifndef POAT_COMMON_CPI_H
#define POAT_COMMON_CPI_H

#include <array>
#include <cstdint>

namespace poat {

/** One named CPI-stack component. */
enum class CpiComponent : uint8_t
{
    Base = 0,
    Branch,
    Iside,
    L1D,
    L2,
    L3,
    Mem,
    Tlb,
    SwTranslate,
    Polb,
    PotWalk,
    Flush,
    Fence,
};

inline constexpr size_t kCpiComponents = 13;

/** Stable dump name of a component ("base", "sw_translate", ...). */
constexpr const char *
cpiComponentName(CpiComponent c)
{
    constexpr const char *names[kCpiComponents] = {
        "base", "branch", "iside",        "l1d",  "l2",
        "l3",   "mem",    "tlb",          "sw_translate",
        "polb", "pot_walk", "flush",      "fence",
    };
    return names[static_cast<size_t>(c)];
}

/** Per-component cycle counts; components sum to the run's cycles. */
struct CpiStack
{
    std::array<uint64_t, kCpiComponents> cycles{};

    uint64_t &
    operator[](CpiComponent c)
    {
        return cycles[static_cast<size_t>(c)];
    }

    uint64_t
    operator[](CpiComponent c) const
    {
        return cycles[static_cast<size_t>(c)];
    }

    uint64_t
    total() const
    {
        uint64_t t = 0;
        for (uint64_t v : cycles)
            t += v;
        return t;
    }

    void
    reset()
    {
        cycles.fill(0);
    }

    CpiStack &
    operator+=(const CpiStack &o)
    {
        for (size_t i = 0; i < kCpiComponents; ++i)
            cycles[i] += o.cycles[i];
        return *this;
    }

    bool operator==(const CpiStack &) const = default;
};

} // namespace poat

#endif // POAT_COMMON_CPI_H
