/**
 * @file
 * CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum real
 * persistent-memory libraries use for media-fault detection (Pangolin;
 * hardware-accelerated by SSE4.2 crc32q). This is the table-driven
 * software form, byte-reflected like the hardware instruction.
 *
 * The primitive here is the *raw* rolling form: `crc32c(data, n, seed)`
 * starts from @p seed and applies no final inversion, so checksums can
 * be computed incrementally — crc32c(a+b) == crc32c(b, crc32c(a)) —
 * and a structure can pick a nonzero seed to keep the all-zero image
 * from checksumming to zero (or seed 0 where all-zero *should* be
 * self-consistent, e.g. an idle undo-log header in a fresh pool).
 *
 * The conventional CRC-32C value (init 0xFFFFFFFF, final xor, e.g.
 * "123456789" -> 0xE3069283) is `~crc32c(data, n, 0xFFFFFFFF)`;
 * crc32cStd() wraps that for interoperability checks and the
 * known-answer tests.
 */
#ifndef POAT_COMMON_CRC32C_H
#define POAT_COMMON_CRC32C_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace poat {

namespace detail {

constexpr std::array<uint32_t, 256>
makeCrc32cTable()
{
    // Reflected polynomial of 0x1EDC6F41.
    constexpr uint32_t kPoly = 0x82F63B78u;
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int b = 0; b < 8; ++b)
            c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32cTable =
    makeCrc32cTable();

} // namespace detail

/** Raw rolling CRC32C: continue from @p seed, no final inversion. */
inline uint32_t
crc32c(const void *data, size_t n, uint32_t seed = 0)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    uint32_t c = seed;
    for (size_t i = 0; i < n; ++i)
        c = detail::kCrc32cTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c;
}

/** Conventional CRC-32C (init 0xFFFFFFFF, final inversion). */
inline uint32_t
crc32cStd(const void *data, size_t n)
{
    return ~crc32c(data, n, 0xFFFFFFFFu);
}

} // namespace poat

#endif // POAT_COMMON_CRC32C_H
