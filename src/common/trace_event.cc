#include "common/trace_event.h"

#include "common/logging.h"

namespace poat {

const char *
traceComponentName(TraceComponent c)
{
    switch (c) {
      case TraceComponent::Polb:
        return "polb";
      case TraceComponent::Pot:
        return "pot";
      case TraceComponent::Tlb:
        return "tlb";
      case TraceComponent::NvAccess:
        return "nv";
      case TraceComponent::SwTranslate:
        return "sw_translate";
      case TraceComponent::Core:
        return "core";
    }
    return "unknown";
}

const char *
traceOutcomeName(TraceOutcome o)
{
    switch (o) {
      case TraceOutcome::Hit:
        return "hit";
      case TraceOutcome::Miss:
        return "miss";
      case TraceOutcome::Walk:
        return "walk";
      case TraceOutcome::Load:
        return "load";
      case TraceOutcome::Store:
        return "store";
      case TraceOutcome::Flush:
        return "flush";
      case TraceOutcome::Switch:
        return "switch";
    }
    return "unknown";
}

EventTracer::EventTracer(size_t capacity) : ring_(capacity ? capacity : 1)
{
    POAT_ASSERT(capacity != 0, "tracer capacity must be nonzero");
}

void
EventTracer::marker(uint64_t cycle, const std::string &label)
{
    markers_.emplace_back(cycle, label);
}

void
EventTracer::acquire()
{
    if (in_use_.exchange(true, std::memory_order_acq_rel))
        POAT_PANIC("EventTracer shared by two concurrent producers; "
                   "give each concurrent run its own tracer "
                   "(ExperimentConfig::tracer)");
}

void
EventTracer::release()
{
    POAT_ASSERT(in_use_.load(std::memory_order_acquire),
                "EventTracer::release without acquire");
    in_use_.store(false, std::memory_order_release);
}

void
EventTracer::reset()
{
    total_ = 0;
    markers_.clear();
}

void
EventTracer::serialize(std::ostream &os) const
{
    os << "poat-trace v1\n";
    os << "# M <cycle> <label> | E <cycle> <component> <outcome> "
          "<oid-hex> <latency>\n";
    os << "# dropped " << dropped() << "\n";
    for (const auto &[cycle, label] : markers_)
        os << "M " << cycle << " " << label << "\n";
    const size_t n = recorded();
    const size_t start = total_ - n; // oldest surviving event
    for (size_t i = 0; i < n; ++i) {
        const TraceEvent &e = ring_[(start + i) % ring_.size()];
        os << "E " << e.cycle << " "
           << traceComponentName(e.component) << " "
           << traceOutcomeName(e.outcome) << " " << std::hex << "0x"
           << e.oid << std::dec << " " << e.latency << "\n";
    }
}

} // namespace poat
