/**
 * @file
 * Lightweight named-counter statistics registry.
 *
 * Simulator components register scalar counters by name; the registry can
 * dump them, reset them between experiment phases, and expose derived
 * ratios (e.g., miss rates) uniformly. Deliberately simple compared to
 * gem5's stats package: experiments in poat read counters directly.
 */
#ifndef POAT_COMMON_STATS_H
#define POAT_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace poat {

/** A registry of named 64-bit counters. */
class StatsRegistry
{
  public:
    /** Get (creating if absent) a counter reference by name. */
    uint64_t &counter(const std::string &name);

    /** Read a counter; returns 0 if it was never created. */
    uint64_t get(const std::string &name) const;

    /** Set every registered counter back to zero. */
    void resetAll();

    /** Ratio of two counters; returns 0 when the denominator is zero. */
    double ratio(const std::string &num, const std::string &den) const;

    /** Print all counters, one "name value" line each, sorted by name. */
    void dump(std::ostream &os) const;

    /** Number of registered counters. */
    size_t size() const { return counters_.size(); }

  private:
    std::map<std::string, uint64_t> counters_;
};

} // namespace poat

#endif // POAT_COMMON_STATS_H
