/**
 * @file
 * Hierarchical named-statistics registry.
 *
 * Components register stats under dotted paths ("machine.polb.hits");
 * the registry dumps them flat ("name value" lines, Sniper sim.out
 * style) or as nested JSON whose object tree follows the dots. Four
 * stat kinds, in the spirit of gem5's stats package but deliberately
 * smaller:
 *
 *  - scalar counters (64-bit, returned by reference so hot paths pay
 *    one map lookup at registration and a plain increment after),
 *  - histograms (log2-bucketed distributions; see histogram.h),
 *  - CPI stacks (per-component cycle accounting whose components sum
 *    exactly to total cycles; see cpi.h),
 *  - formulas (named counter ratios, evaluated lazily at dump time so
 *    they are always consistent with the counters they summarize).
 *
 * docs/OBSERVABILITY.md specifies the naming convention and the JSON
 * schema the bench harness emits through this class.
 */
#ifndef POAT_COMMON_STATS_H
#define POAT_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "common/cpi.h"
#include "common/histogram.h"

namespace poat {

/** A registry of named counters, histograms, and formula stats. */
class StatsRegistry
{
  public:
    /** Get (creating if absent) a counter reference by name. */
    uint64_t &counter(const std::string &name);

    /** Read a counter; returns 0 if it was never created. */
    uint64_t get(const std::string &name) const;

    /** Get (creating if absent) a histogram reference by name. */
    Histogram &histogram(const std::string &name);

    /** Read-only histogram lookup; nullptr if never created. */
    const Histogram *findHistogram(const std::string &name) const;

    /** Get (creating if absent) a CPI stack reference by name. */
    CpiStack &cpiStack(const std::string &name);

    /** Read-only CPI-stack lookup; nullptr if never created. */
    const CpiStack *findCpiStack(const std::string &name) const;

    /**
     * Register a formula stat: @p name dumps as counter(@p num) /
     * counter(@p den), evaluated when the registry is dumped.
     */
    void formula(const std::string &name, const std::string &num,
                 const std::string &den);

    /** Evaluate a registered formula (0 if absent or denominator 0). */
    double eval(const std::string &name) const;

    /** Zero every counter and clear every histogram (names survive). */
    void resetAll();

    /** Ratio of two counters; returns 0 when the denominator is zero. */
    double ratio(const std::string &num, const std::string &den) const;

    /**
     * Print all stats as "name value" lines: counters first (sorted by
     * name), then histogram summaries (name.count/min/max/mean/stddev/
     * p50/p95/p99), then CPI stacks (name.total and one line per
     * component), then formulas.
     */
    void dump(std::ostream &os) const;

    /**
     * Emit the registry as a JSON object whose nesting follows the
     * dotted paths. A name that is both a leaf and an interior node
     * ("core.cycles" next to "core.cycles.alu") keeps its leaf value
     * under the key "self". Histograms serialize as objects with
     * count/min/max/mean/stddev/p50/p95/p99 plus their non-empty
     * buckets; CPI stacks as objects with "total" and every component
     * (zeros included, so the schema is fixed).
     *
     * @param indent Number of spaces prefixed to every emitted line
     *        (for embedding in a larger document).
     */
    void dumpJson(std::ostream &os, int indent = 0) const;

    /** Read-only view of every counter, sorted by name. */
    const std::map<std::string, uint64_t> &counters() const
    {
        return counters_;
    }

    /** Read-only view of every histogram, sorted by name. */
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

    /** Read-only view of every CPI stack, sorted by name. */
    const std::map<std::string, CpiStack> &cpiStacks() const
    {
        return cpiStacks_;
    }

    /** Visit every formula as (name, numerator, denominator). */
    template <typename Fn>
    void
    forEachFormula(Fn &&fn) const
    {
        for (const auto &[name, f] : formulas_)
            fn(name, f.num, f.den);
    }

    /** Number of registered stats of all kinds. */
    size_t size() const
    {
        return counters_.size() + histograms_.size() +
            cpiStacks_.size() + formulas_.size();
    }

  private:
    struct Formula
    {
        std::string num;
        std::string den;
    };

    std::map<std::string, uint64_t> counters_;
    std::map<std::string, Histogram> histograms_;
    std::map<std::string, CpiStack> cpiStacks_;
    std::map<std::string, Formula> formulas_;
};

} // namespace poat

#endif // POAT_COMMON_STATS_H
