/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic choices in poat (workload keys, ASLR-style pool
 * placement, crash-injection points) draw from this generator so that a
 * given seed reproduces a run bit-for-bit. The implementation is
 * xoshiro256** which is fast, has a 2^256-1 period, and passes BigCrush.
 */
#ifndef POAT_COMMON_RNG_H
#define POAT_COMMON_RNG_H

#include <cstdint>

namespace poat {

/** Deterministic xoshiro256** generator with splitmix64 seeding. */
class Rng
{
  public:
    /** Construct from a 64-bit seed; identical seeds replay identically. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 expansion of the seed into the four state words.
        uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        // Multiply-shift range reduction (Lemire); bias is negligible for
        // the bounds used in workloads and tests.
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform value in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw with probability num/den. */
    bool
    chance(uint64_t num, uint64_t den)
    {
        return below(den) < num;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace poat

#endif // POAT_COMMON_RNG_H
