#include "common/stats.h"

#include <cstdio>
#include <vector>

namespace poat {

namespace {

/** Render a double the way every poat JSON/text emitter does. */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/** One node of the dotted-path tree built for JSON emission. */
struct JsonNode
{
    bool hasLeaf = false;
    std::string leaf; ///< pre-rendered JSON value
    std::map<std::string, JsonNode> kids;
};

void
insertPath(JsonNode &root, const std::string &path, std::string value)
{
    JsonNode *node = &root;
    size_t start = 0;
    while (true) {
        const size_t dot = path.find('.', start);
        const std::string seg =
            path.substr(start, dot == std::string::npos ? std::string::npos
                                                        : dot - start);
        node = &node->kids[seg];
        if (dot == std::string::npos)
            break;
        start = dot + 1;
    }
    node->hasLeaf = true;
    node->leaf = std::move(value);
}

void
renderNode(const JsonNode &node, std::ostream &os, int indent)
{
    const std::string pad(indent, ' ');
    const std::string pad2(indent + 2, ' ');
    os << "{";
    bool first = true;
    // A node that both carries a value and has children keeps its own
    // value under "self" so the JSON stays a plain object tree.
    if (node.hasLeaf && !node.kids.empty()) {
        os << "\n" << pad2 << "\"self\": " << node.leaf;
        first = false;
    }
    for (const auto &[name, kid] : node.kids) {
        os << (first ? "\n" : ",\n") << pad2 << "\"" << name << "\": ";
        first = false;
        if (kid.kids.empty() && kid.hasLeaf)
            os << kid.leaf;
        else
            renderNode(kid, os, indent + 2);
    }
    if (!first)
        os << "\n" << pad;
    os << "}";
}

std::string
histogramJson(const Histogram &h)
{
    std::string s = "{\"count\": " + std::to_string(h.count());
    if (h.count() != 0) {
        s += ", \"min\": " + std::to_string(h.min());
        s += ", \"max\": " + std::to_string(h.max());
        s += ", \"mean\": " + fmtDouble(h.mean());
        s += ", \"stddev\": " + fmtDouble(h.stddev());
        s += ", \"p50\": " + fmtDouble(h.percentile(50));
        s += ", \"p95\": " + fmtDouble(h.percentile(95));
        s += ", \"p99\": " + fmtDouble(h.percentile(99));
        s += ", \"buckets\": [";
        bool first = true;
        for (uint32_t b = 0; b < Histogram::kBuckets; ++b) {
            if (h.bucketCount(b) == 0)
                continue;
            if (!first)
                s += ", ";
            first = false;
            s += "[" + std::to_string(Histogram::bucketLo(b)) + ", " +
                std::to_string(Histogram::bucketHi(b)) + ", " +
                std::to_string(h.bucketCount(b)) + "]";
        }
        s += "]";
    }
    s += "}";
    return s;
}

std::string
cpiStackJson(const CpiStack &c)
{
    std::string s = "{\"total\": " + std::to_string(c.total());
    for (size_t i = 0; i < kCpiComponents; ++i) {
        const auto comp = static_cast<CpiComponent>(i);
        s += ", \"";
        s += cpiComponentName(comp);
        s += "\": " + std::to_string(c[comp]);
    }
    s += "}";
    return s;
}

} // namespace

uint64_t &
StatsRegistry::counter(const std::string &name)
{
    return counters_[name];
}

uint64_t
StatsRegistry::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

Histogram &
StatsRegistry::histogram(const std::string &name)
{
    return histograms_[name];
}

const Histogram *
StatsRegistry::findHistogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

CpiStack &
StatsRegistry::cpiStack(const std::string &name)
{
    return cpiStacks_[name];
}

const CpiStack *
StatsRegistry::findCpiStack(const std::string &name) const
{
    auto it = cpiStacks_.find(name);
    return it == cpiStacks_.end() ? nullptr : &it->second;
}

void
StatsRegistry::formula(const std::string &name, const std::string &num,
                       const std::string &den)
{
    formulas_[name] = Formula{num, den};
}

double
StatsRegistry::eval(const std::string &name) const
{
    auto it = formulas_.find(name);
    if (it == formulas_.end())
        return 0.0;
    return ratio(it->second.num, it->second.den);
}

void
StatsRegistry::resetAll()
{
    for (auto &kv : counters_)
        kv.second = 0;
    for (auto &kv : histograms_)
        kv.second.reset();
    for (auto &kv : cpiStacks_)
        kv.second.reset();
}

double
StatsRegistry::ratio(const std::string &num, const std::string &den) const
{
    const uint64_t d = get(den);
    if (d == 0)
        return 0.0;
    return static_cast<double>(get(num)) / static_cast<double>(d);
}

void
StatsRegistry::dump(std::ostream &os) const
{
    for (const auto &kv : counters_)
        os << kv.first << " " << kv.second << "\n";
    for (const auto &[name, h] : histograms_) {
        os << name << ".count " << h.count() << "\n";
        if (h.count() == 0)
            continue;
        os << name << ".min " << h.min() << "\n";
        os << name << ".max " << h.max() << "\n";
        os << name << ".mean " << fmtDouble(h.mean()) << "\n";
        os << name << ".stddev " << fmtDouble(h.stddev()) << "\n";
        os << name << ".p50 " << fmtDouble(h.percentile(50)) << "\n";
        os << name << ".p95 " << fmtDouble(h.percentile(95)) << "\n";
        os << name << ".p99 " << fmtDouble(h.percentile(99)) << "\n";
    }
    for (const auto &[name, c] : cpiStacks_) {
        os << name << ".total " << c.total() << "\n";
        for (size_t i = 0; i < kCpiComponents; ++i) {
            const auto comp = static_cast<CpiComponent>(i);
            os << name << "." << cpiComponentName(comp) << " "
               << c[comp] << "\n";
        }
    }
    for (const auto &kv : formulas_)
        os << kv.first << " " << fmtDouble(eval(kv.first)) << "\n";
}

void
StatsRegistry::dumpJson(std::ostream &os, int indent) const
{
    JsonNode root;
    for (const auto &kv : counters_)
        insertPath(root, kv.first, std::to_string(kv.second));
    for (const auto &[name, h] : histograms_)
        insertPath(root, name, histogramJson(h));
    for (const auto &[name, c] : cpiStacks_)
        insertPath(root, name, cpiStackJson(c));
    for (const auto &kv : formulas_)
        insertPath(root, kv.first, fmtDouble(eval(kv.first)));
    renderNode(root, os, indent);
}

} // namespace poat
