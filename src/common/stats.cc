#include "common/stats.h"

namespace poat {

uint64_t &
StatsRegistry::counter(const std::string &name)
{
    return counters_[name];
}

uint64_t
StatsRegistry::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
StatsRegistry::resetAll()
{
    for (auto &kv : counters_)
        kv.second = 0;
}

double
StatsRegistry::ratio(const std::string &num, const std::string &den) const
{
    const uint64_t d = get(den);
    if (d == 0)
        return 0.0;
    return static_cast<double>(get(num)) / static_cast<double>(d);
}

void
StatsRegistry::dump(std::ostream &os) const
{
    for (const auto &kv : counters_)
        os << kv.first << " " << kv.second << "\n";
}

} // namespace poat
