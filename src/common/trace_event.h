/**
 * @file
 * Cycle-stamped event tracing of the translation machinery.
 *
 * An EventTracer is a fixed-capacity ring buffer of POD events (cycle,
 * component, outcome, ObjectID, latency) plus a small list of named
 * markers (run boundaries). Producers record through the POAT_TRACE
 * macro, which compiles to nothing when POAT_TRACE_ENABLED is 0 (the
 * -DPOAT_TRACING=OFF build) and to a single null-check when on, so the
 * default build's bench wall-time is unaffected when no tracer is
 * attached.
 *
 * serialize() writes the portable "poat-trace v1" text format, which
 * tools/trace_convert turns into Chrome trace_event JSON loadable in
 * chrome://tracing or Perfetto. See docs/OBSERVABILITY.md.
 *
 * Concurrency contract: an EventTracer is single-producer. record()
 * writes the ring unsynchronized (one store and an increment on the
 * hot path — that is the point), so at most one machine/run may feed a
 * tracer at a time. Producers enforce this through acquire()/release():
 * sim::Machine::setTracer() acquires the tracer and panics if it is
 * already attached elsewhere, which turns the otherwise silent data
 * race of two concurrent runs sharing one tracer (e.g. a parallel
 * sweep with a single --trace sink) into an immediate, attributable
 * failure. Sequential reuse across runs is fine. See
 * driver::ExperimentConfig::tracer for the per-run contract.
 */
#ifndef POAT_COMMON_TRACE_EVENT_H
#define POAT_COMMON_TRACE_EVENT_H

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace poat {

/** Which piece of machinery produced an event. */
enum class TraceComponent : uint8_t
{
    Polb,        ///< POLB lookup
    Pot,         ///< POT hardware walk
    Tlb,         ///< D-TLB fill on the translated access
    NvAccess,    ///< the nvld/nvst data access itself
    SwTranslate, ///< software oid_direct call (BASE)
    Core,        ///< scheduling: the active simulated core changed
};

/** What happened. */
enum class TraceOutcome : uint8_t
{
    Hit,
    Miss,
    Walk,
    Load,
    Store,
    Flush,
    Switch, ///< core switch-in (the "oid" field carries the core id)
};

/** Name tables (stable; part of the poat-trace v1 format). */
const char *traceComponentName(TraceComponent c);
const char *traceOutcomeName(TraceOutcome o);

/** One recorded event. */
struct TraceEvent
{
    uint64_t cycle;
    uint64_t oid;
    uint32_t latency;
    TraceComponent component;
    TraceOutcome outcome;
};

/** Ring buffer of translation events. */
class EventTracer
{
  public:
    /** @param capacity Events retained; older ones are overwritten. */
    explicit EventTracer(size_t capacity = 1u << 20);

    /** Append one event (overwrites the oldest beyond capacity). */
    void
    record(uint64_t cycle, TraceComponent component, TraceOutcome outcome,
           uint64_t oid, uint32_t latency)
    {
        ring_[total_ % ring_.size()] =
            TraceEvent{cycle, oid, latency, component, outcome};
        ++total_;
    }

    /** Add a named marker (e.g. a run boundary) at @p cycle. */
    void marker(uint64_t cycle, const std::string &label);

    /** Events currently retained. */
    size_t recorded() const
    {
        return total_ < ring_.size() ? total_ : ring_.size();
    }

    /** Events ever recorded (recorded() + overwritten). */
    uint64_t total() const { return total_; }

    /** Events lost to ring wrap-around. */
    uint64_t dropped() const { return total_ - recorded(); }

    size_t capacity() const { return ring_.size(); }

    /** Drop all events and markers. */
    void reset();

    /** Write the poat-trace v1 text format (oldest event first). */
    void serialize(std::ostream &os) const;

    /// @name Single-producer enforcement
    /// @{

    /**
     * Claim exclusive producer rights; panics if another producer
     * (machine/run) already holds the tracer. Writing the ring is
     * unsynchronized by design, so concurrent sharing is a data race —
     * give each concurrent run its own tracer instead.
     */
    void acquire();

    /** Release producer rights (acquire() must be held). */
    void release();

    /** Whether a producer currently holds the tracer. */
    bool acquired() const
    {
        return in_use_.load(std::memory_order_acquire);
    }
    /// @}

  private:
    std::vector<TraceEvent> ring_;
    std::vector<std::pair<uint64_t, std::string>> markers_;
    uint64_t total_ = 0;
    std::atomic<bool> in_use_{false};
};

} // namespace poat

/**
 * POAT_TRACE(tracer_ptr, cycle, component, outcome, oid, latency)
 *
 * Record an event iff tracing is compiled in AND @p tracer_ptr is
 * non-null. With POAT_TRACE_ENABLED == 0 the macro expands to nothing
 * and its arguments are never evaluated.
 */
#ifndef POAT_TRACE_ENABLED
#define POAT_TRACE_ENABLED 1
#endif

#if POAT_TRACE_ENABLED
#define POAT_TRACE(tracer, cycle, component, outcome, oid, latency)        \
    do {                                                                   \
        if (::poat::EventTracer *poat_tr_ = (tracer))                      \
            poat_tr_->record((cycle), (component), (outcome), (oid),       \
                             (latency));                                   \
    } while (0)
#else
#define POAT_TRACE(tracer, cycle, component, outcome, oid, latency)        \
    ((void)0)
#endif

#endif // POAT_COMMON_TRACE_EVENT_H
