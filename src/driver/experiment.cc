#include "driver/experiment.h"

#include <cmath>

#include "pmem/runtime.h"

namespace poat {
namespace driver {

namespace {

ExperimentObserver g_observer;
EventTracer *g_default_tracer = nullptr;

} // namespace

void
setExperimentObserver(ExperimentObserver obs)
{
    g_observer = std::move(obs);
}

void
setDefaultTracer(EventTracer *tracer)
{
    g_default_tracer = tracer;
}

std::string
configLabel(const ExperimentConfig &cfg)
{
    if (!cfg.label.empty())
        return cfg.label;
    std::string s = cfg.workload;
    if (cfg.workload == "TPCC") {
        s += cfg.placement == workloads::tpcc::Placement::All ? ".ALL"
                                                              : ".EACH";
    } else {
        s += ".";
        s += workloads::patternName(cfg.pattern);
    }
    if (cfg.mode == TranslationMode::Software) {
        s += ".base";
        if (!cfg.base_predictor)
            s += "_nopred";
    } else if (cfg.machine.ideal_translation) {
        s += ".opt_ideal";
    } else {
        s += cfg.machine.polb_design == sim::PolbDesign::Pipelined
            ? ".opt_pipelined"
            : ".opt_parallel";
    }
    s += cfg.machine.core == sim::CoreType::InOrder ? ".inorder"
                                                    : ".ooo";
    if (!cfg.transactions)
        s += ".ntx";
    return s;
}

ExperimentResult
runExperiment(const ExperimentConfig &cfg)
{
    sim::Machine machine(cfg.machine);

    EventTracer *tracer = cfg.tracer ? cfg.tracer : g_default_tracer;
    machine.setTracer(tracer);
    const std::string label = configLabel(cfg);
    if (tracer)
        tracer->marker(machine.cycles(), "begin " + label);

    RuntimeOptions ro;
    ro.mode = cfg.mode;
    ro.durability = cfg.transactions;
    ro.aslr_seed = cfg.seed ^ 0x517cc1b727220a95ull;
    ro.base_predictor = cfg.base_predictor;
    PmemRuntime rt(ro, &machine);

    ExperimentResult res;
    if (cfg.workload == "TPCC") {
        workloads::tpcc::TpccWorkload w(cfg.placement,
                                        cfg.tpcc_scale_pct, cfg.seed,
                                        cfg.tpcc_txns,
                                        cfg.transactions);
        const auto r = w.run(rt);
        res.workload_checksum = r.checksum;
        res.workload_operations = r.transactions;
    } else {
        workloads::WorkloadConfig wc;
        wc.pattern = cfg.pattern;
        wc.transactions = cfg.transactions;
        wc.seed = cfg.seed;
        wc.scale_pct = cfg.scale_pct;
        const auto r = workloads::makeWorkload(cfg.workload, wc)->run(rt);
        res.workload_checksum = r.checksum;
        res.workload_operations = r.operations;
    }

    if (tracer)
        tracer->marker(machine.cycles(), "end " + label);
    machine.setTracer(nullptr);

    res.metrics = machine.metrics();
    res.breakdown = machine.breakdown();
    res.translate_calls = rt.translator().calls();
    res.translate_misses = rt.translator().predictorMisses();
    res.translate_insns_per_call =
        rt.translator().avgInstructionsPerCall();

    // The run's complete hierarchical telemetry: machine registry plus
    // the software-translation profile and the workload outcome.
    res.stats = machine.stats();
    rt.translator().fillStats(res.stats);
    res.stats.counter("workload.operations") = res.workload_operations;
    res.stats.counter("workload.checksum") = res.workload_checksum;

    if (g_observer)
        g_observer(cfg, res);
    return res;
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace driver
} // namespace poat
