#include "driver/experiment.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "pmem/runtime.h"

namespace poat {
namespace driver {

namespace {

ExperimentObserver g_observer;

} // namespace

void
setExperimentObserver(ExperimentObserver obs)
{
    g_observer = std::move(obs);
}

std::string
configLabel(const ExperimentConfig &cfg)
{
    if (!cfg.label.empty())
        return cfg.label;
    std::string s = cfg.workload;
    if (cfg.workload == "TPCC") {
        switch (cfg.placement) {
        case workloads::tpcc::Placement::All:
            s += ".ALL";
            break;
        case workloads::tpcc::Placement::Each:
            s += ".EACH";
            break;
        case workloads::tpcc::Placement::PerWarehouse:
            s += ".PERW" + std::to_string(cfg.tpcc_warehouses);
            break;
        }
    } else {
        s += ".";
        s += workloads::patternName(cfg.pattern);
    }
    if (cfg.mode == TranslationMode::Software) {
        s += ".base";
        if (!cfg.base_predictor)
            s += "_nopred";
    } else if (cfg.machine.ideal_translation) {
        s += ".opt_ideal";
    } else {
        s += cfg.machine.polb_design == sim::PolbDesign::Pipelined
            ? ".opt_pipelined"
            : ".opt_parallel";
    }
    if (cfg.timing) {
        s += cfg.machine.core == sim::CoreType::InOrder ? ".inorder"
                                                        : ".ooo";
    } else {
        s += ".profile";
    }
    if (!cfg.transactions)
        s += ".ntx";
    return s;
}

namespace {

/** Run the workload against @p rt and record its outcome. */
void
executeWorkload(const ExperimentConfig &cfg, PmemRuntime &rt,
                ExperimentResult &res)
{
    if (cfg.workload == "TPCC") {
        workloads::tpcc::TpccWorkload w(cfg.placement,
                                        cfg.tpcc_scale_pct, cfg.seed,
                                        cfg.tpcc_txns, cfg.transactions,
                                        cfg.tpcc_warehouses);
        const auto r = w.run(rt);
        res.workload_checksum = r.checksum;
        res.workload_operations = r.transactions;
    } else {
        // A config (not internal-invariant) error: throw rather than
        // POAT_FATAL so a sweep can propagate it to its caller.
        const auto &names = workloads::microbenchNames();
        if (std::find(names.begin(), names.end(), cfg.workload) ==
            names.end())
            throw std::invalid_argument("unknown workload: " +
                                        cfg.workload);
        workloads::WorkloadConfig wc;
        wc.pattern = cfg.pattern;
        wc.transactions = cfg.transactions;
        wc.seed = cfg.seed;
        wc.scale_pct = cfg.scale_pct;
        const auto r = workloads::makeWorkload(cfg.workload, wc)->run(rt);
        res.workload_checksum = r.checksum;
        res.workload_operations = r.operations;
    }
}

RuntimeOptions
runtimeOptions(const ExperimentConfig &cfg)
{
    RuntimeOptions ro;
    ro.mode = cfg.mode;
    ro.durability = cfg.transactions;
    ro.aslr_seed = cfg.seed ^ 0x517cc1b727220a95ull;
    ro.base_predictor = cfg.base_predictor;
    return ro;
}

/** Snapshot the translator profile into the result. */
void
fillTranslatorProfile(const PmemRuntime &rt, ExperimentResult &res)
{
    res.translate_calls = rt.translator().calls();
    res.translate_misses = rt.translator().predictorMisses();
    res.translate_insns_per_call =
        rt.translator().avgInstructionsPerCall();
    rt.translator().fillStats(res.stats);
    res.stats.counter("workload.operations") = res.workload_operations;
    res.stats.counter("workload.checksum") = res.workload_checksum;
}

} // namespace

namespace detail {

ExperimentResult
runExperimentUnobserved(const ExperimentConfig &cfg)
{
    ExperimentResult res;

    if (!cfg.timing) {
        // Profiling-only run: no machine, no cycles — just the library
        // executing natively with its instruction accounting on.
        CountingTraceSink sink;
        PmemRuntime rt(runtimeOptions(cfg), &sink);
        executeWorkload(cfg, rt, res);
        fillTranslatorProfile(rt, res);
        return res;
    }

    sim::Machine machine(cfg.machine);

    // Per-run tracer: attached for the duration of this run only.
    // Machine::setTracer() acquires exclusive use, so two concurrent
    // runs sharing one tracer panic instead of racing.
    EventTracer *tracer = cfg.tracer;
    machine.setTracer(tracer);
    const std::string label = configLabel(cfg);
    if (tracer)
        tracer->marker(machine.cycles(), "begin " + label);

    PmemRuntime rt(runtimeOptions(cfg), &machine);
    executeWorkload(cfg, rt, res);

    if (tracer)
        tracer->marker(machine.cycles(), "end " + label);
    machine.setTracer(nullptr);

    res.metrics = machine.metrics();
    res.breakdown = machine.breakdown();

    // The run's complete hierarchical telemetry: machine registry plus
    // the software-translation profile and the workload outcome.
    res.stats = machine.stats();
    fillTranslatorProfile(rt, res);
    return res;
}

void
notifyExperimentObserver(const ExperimentConfig &cfg,
                         const ExperimentResult &res)
{
    if (g_observer)
        g_observer(cfg, res);
}

} // namespace detail

ExperimentResult
runExperiment(const ExperimentConfig &cfg)
{
    ExperimentResult res = detail::runExperimentUnobserved(cfg);
    detail::notifyExperimentObserver(cfg, res);
    return res;
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace driver
} // namespace poat
