#include "driver/experiment.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "pmem/runtime.h"
#include "telemetry/timeline.h"
#include "trace_io/itrace.h"
#include "workloads/lhash.h"
#include "workloads/tpcc/mtpcc.h"

namespace poat {
namespace driver {

namespace {

ExperimentObserver g_observer;

/** True for the workloads that run under the concurrent engine. */
bool
concurrentWorkload(const std::string &w)
{
    return w == "LHT" || w == "MTPCC";
}

/** Engine workers a config resolves to (0 = the default of 2). */
uint32_t
effectiveThreads(const ExperimentConfig &cfg)
{
    return cfg.threads != 0 ? cfg.threads : 2;
}

/**
 * Machine config a run actually uses: concurrent workloads need one
 * simulated core per engine worker, so the core count is raised to the
 * thread count (replayed runs build the same machine, since thread
 * count is part of the trace fingerprint).
 */
sim::MachineConfig
machineConfigFor(const ExperimentConfig &cfg)
{
    sim::MachineConfig mc = cfg.machine;
    if (concurrentWorkload(cfg.workload))
        mc.cores = std::max(mc.cores, effectiveThreads(cfg));
    return mc;
}

} // namespace

void
setExperimentObserver(ExperimentObserver obs)
{
    g_observer = std::move(obs);
}

std::string
configLabel(const ExperimentConfig &cfg)
{
    if (!cfg.label.empty())
        return cfg.label;
    std::string s = cfg.workload;
    if (cfg.workload == "TPCC" || cfg.workload == "MTPCC") {
        switch (cfg.placement) {
        case workloads::tpcc::Placement::All:
            s += ".ALL";
            break;
        case workloads::tpcc::Placement::Each:
            s += ".EACH";
            break;
        case workloads::tpcc::Placement::PerWarehouse:
            s += ".PERW" + std::to_string(cfg.tpcc_warehouses);
            break;
        }
    } else if (cfg.workload != "LHT") { // LHT: one pool, no pattern
        s += ".";
        s += workloads::patternName(cfg.pattern);
    }
    if (concurrentWorkload(cfg.workload)) {
        s += ".t" + std::to_string(effectiveThreads(cfg));
        if (cfg.commit_window > 1)
            s += ".w" + std::to_string(cfg.commit_window);
    }
    if (cfg.mode == TranslationMode::Software) {
        s += ".base";
        if (!cfg.base_predictor)
            s += "_nopred";
    } else if (cfg.machine.ideal_translation) {
        s += ".opt_ideal";
    } else {
        s += cfg.machine.polb_design == sim::PolbDesign::Pipelined
            ? ".opt_pipelined"
            : ".opt_parallel";
    }
    if (cfg.timing) {
        s += cfg.machine.core == sim::CoreType::InOrder ? ".inorder"
                                                        : ".ooo";
    } else {
        s += ".profile";
    }
    if (!cfg.transactions)
        s += ".ntx";
    return s;
}

std::string
traceFingerprint(const ExperimentConfig &cfg)
{
    // v2: checksummed+mirrored pmem metadata changed every instruction
    // stream, invalidating all v1 cached traces.
    std::string s = "poat-fpr v2 workload=" + cfg.workload;
    if (cfg.workload == "TPCC" || cfg.workload == "MTPCC") {
        s += " placement=";
        switch (cfg.placement) {
        case workloads::tpcc::Placement::All:
            s += "ALL";
            break;
        case workloads::tpcc::Placement::Each:
            s += "EACH";
            break;
        case workloads::tpcc::Placement::PerWarehouse:
            s += "PERW";
            break;
        }
        s += " tpcc_scale=" + std::to_string(cfg.tpcc_scale_pct);
        s += " txns=" + std::to_string(cfg.tpcc_txns);
        s += " warehouses=" + std::to_string(cfg.tpcc_warehouses);
    } else if (cfg.workload == "LHT") {
        s += " scale=" + std::to_string(cfg.scale_pct);
    } else {
        s += " pattern=";
        s += workloads::patternName(cfg.pattern);
        s += " scale=" + std::to_string(cfg.scale_pct);
    }
    if (concurrentWorkload(cfg.workload)) {
        // The interleaving shapes the instruction stream, so every
        // concurrency knob is functional.
        s += " threads=" + std::to_string(effectiveThreads(cfg));
        s += " tseed=" + std::to_string(cfg.sched_seed);
        s += " window=" + std::to_string(cfg.commit_window);
    }
    s += cfg.transactions ? " tx=1" : " tx=0";
    s += cfg.mode == TranslationMode::Software ? " mode=sw" : " mode=hw";
    s += cfg.base_predictor ? " pred=1" : " pred=0";
    s += " seed=" + std::to_string(cfg.seed);
    return s;
}

std::string
traceCachePath(const ExperimentConfig &cfg)
{
    const std::string fpr = traceFingerprint(cfg);
    uint64_t h = 14695981039346656037ull;
    for (const char c : fpr) {
        h ^= static_cast<uint8_t>(c);
        h *= 1099511628211ull;
    }
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(h));

    // Readable prefix: the functional half of the label, so a cache
    // directory listing reads like the sweep that filled it.
    std::string name = cfg.workload;
    if (cfg.workload != "TPCC" && cfg.workload != "MTPCC" &&
        cfg.workload != "LHT") {
        name += ".";
        name += workloads::patternName(cfg.pattern);
    }
    if (concurrentWorkload(cfg.workload))
        name += ".t" + std::to_string(effectiveThreads(cfg));
    name += cfg.mode == TranslationMode::Software ? ".base" : ".opt";
    if (!cfg.transactions)
        name += ".ntx";
    name += ".s" + std::to_string(cfg.seed);
    for (char &c : name)
        if (c == '/')
            c = '_';
    return cfg.trace_cache + "/" + name + "-" + hex + ".itrace";
}

namespace {

/** Run the workload against @p rt and record its outcome. */
void
executeWorkload(const ExperimentConfig &cfg, PmemRuntime &rt,
                ExperimentResult &res)
{
    if (cfg.workload == "TPCC") {
        workloads::tpcc::TpccWorkload w(cfg.placement,
                                        cfg.tpcc_scale_pct, cfg.seed,
                                        cfg.tpcc_txns, cfg.transactions,
                                        cfg.tpcc_warehouses);
        const auto r = w.run(rt);
        res.workload_checksum = r.checksum;
        res.workload_operations = r.transactions;
    } else if (cfg.workload == "MTPCC") {
        workloads::tpcc::MtpccWorkload w(
            cfg.placement, cfg.tpcc_scale_pct, cfg.seed, cfg.tpcc_txns,
            effectiveThreads(cfg), cfg.sched_seed, cfg.commit_window,
            cfg.transactions, cfg.tpcc_warehouses);
        const auto r = w.run(rt);
        res.workload_checksum = r.checksum;
        res.workload_operations = r.transactions;
        res.engine = w.engineStats();
    } else if (cfg.workload == "LHT") {
        workloads::WorkloadConfig wc;
        wc.pattern = cfg.pattern;
        wc.transactions = cfg.transactions;
        wc.seed = cfg.seed;
        wc.scale_pct = cfg.scale_pct;
        workloads::LhtWorkload w(wc, effectiveThreads(cfg),
                                 cfg.sched_seed, cfg.commit_window);
        const auto r = w.run(rt);
        res.workload_checksum = r.checksum;
        res.workload_operations = r.operations;
        res.engine = w.engineStats();
    } else {
        // A config (not internal-invariant) error: throw rather than
        // POAT_FATAL so a sweep can propagate it to its caller.
        const auto &names = workloads::microbenchNames();
        if (std::find(names.begin(), names.end(), cfg.workload) ==
            names.end())
            throw std::invalid_argument("unknown workload: " +
                                        cfg.workload);
        workloads::WorkloadConfig wc;
        wc.pattern = cfg.pattern;
        wc.transactions = cfg.transactions;
        wc.seed = cfg.seed;
        wc.scale_pct = cfg.scale_pct;
        const auto r = workloads::makeWorkload(cfg.workload, wc)->run(rt);
        res.workload_checksum = r.checksum;
        res.workload_operations = r.operations;
    }
}

RuntimeOptions
runtimeOptions(const ExperimentConfig &cfg)
{
    RuntimeOptions ro;
    ro.mode = cfg.mode;
    ro.durability = cfg.transactions;
    ro.aslr_seed = cfg.seed ^ 0x517cc1b727220a95ull;
    ro.base_predictor = cfg.base_predictor;
    if (concurrentWorkload(cfg.workload))
        ro.log_slots = effectiveThreads(cfg); // one undo log per worker
    return ro;
}

/**
 * Snapshot the functional (machine-independent) outcome of a run: the
 * translator profile and the workload result, as result fields plus a
 * standalone registry. This is everything a replayed run cannot
 * recompute — the trace capture serializes it as the file's profile
 * sidecar.
 */
void
fillFunctionalProfile(const ExperimentConfig &cfg, const PmemRuntime &rt,
                      ExperimentResult &res, StatsRegistry &prof)
{
    res.translate_calls = rt.translator().calls();
    res.translate_misses = rt.translator().predictorMisses();
    res.translate_insns_per_call =
        rt.translator().avgInstructionsPerCall();
    rt.translator().fillStats(prof);
    prof.counter("workload.operations") = res.workload_operations;
    prof.counter("workload.checksum") = res.workload_checksum;

    // Checksum-maintenance work (the functional mirror of the
    // costs::kCrc* cycles charged in the trace).
    const ChecksumCounters &cc = rt.registry().checksumCounters();
    prof.counter("pmem.checksum.superblock_updates") =
        cc.superblock_updates;
    prof.counter("pmem.checksum.block_header_updates") =
        cc.block_header_updates;
    prof.counter("pmem.checksum.log_header_updates") =
        cc.log_header_updates;
    prof.counter("pmem.checksum.log_entry_updates") = cc.log_entry_updates;
    prof.counter("pmem.checksum.bytes_summed") = cc.bytes_summed;
    prof.counter("pmem.checksum.verifies") = cc.verifies;

    // Concurrency outcome (deterministic, hence functional): exported
    // here so replayed runs restore it from the trace sidecar.
    if (concurrentWorkload(cfg.workload)) {
        const concurrent::EngineStats &e = res.engine;
        prof.counter("engine.commits") = e.commits;
        prof.counter("engine.aborts") = e.aborts;
        prof.counter("engine.retries") = e.retries;
        prof.counter("engine.lock.acquisitions") = e.lock_acquisitions;
        prof.counter("engine.lock.waits") = e.lock_waits;
        prof.counter("engine.lock.deadlocks") = e.deadlocks;
        prof.counter("engine.gc.windows") = e.gc_windows;
        prof.counter("engine.gc.members") = e.gc_members;
        prof.counter("engine.gc.fences_elided") = e.fences_elided;
        prof.counter("engine.switches") = e.switches;
        prof.counter("tx.abort.undo_bytes") = rt.abortUndoBytes();
    }
}

/** Copy every stat in @p from into @p into under the same names. */
void
mergeRegistry(const StatsRegistry &from, StatsRegistry &into)
{
    for (const auto &[name, v] : from.counters())
        into.counter(name) = v;
    for (const auto &[name, h] : from.histograms())
        into.histogram(name) = h;
    for (const auto &[name, c] : from.cpiStacks())
        into.cpiStack(name) = c;
    from.forEachFormula([&into](const std::string &name,
                                const std::string &num,
                                const std::string &den) {
        into.formula(name, num, den);
    });
}

/**
 * Serialize the functional profile as the trace file's sidecar blob.
 * Text lines; doubles travel as bit patterns so replayed results stay
 * bit-identical to live ones.
 */
std::string
serializeProfile(const ExperimentResult &res, const StatsRegistry &prof)
{
    std::ostringstream os;
    os << "poat-profile v2\n";
    os << "R checksum " << res.workload_checksum << "\n";
    os << "R operations " << res.workload_operations << "\n";
    os << "R translate_calls " << res.translate_calls << "\n";
    os << "R translate_misses " << res.translate_misses << "\n";
    os << "R translate_insns_bits "
       << std::bit_cast<uint64_t>(res.translate_insns_per_call) << "\n";
    for (const auto &[name, v] : prof.counters())
        os << "C " << name << " " << v << "\n";
    for (const auto &[name, h] : prof.histograms()) {
        os << "H " << name << " " << h.count() << " " << h.sum() << " "
           << h.sumsq() << " " << h.min() << " " << h.max();
        for (uint32_t b = 0; b < Histogram::kBuckets; ++b)
            if (h.bucketCount(b) != 0)
                os << " " << b << ":" << h.bucketCount(b);
        os << "\n";
    }
    prof.forEachFormula([&os](const std::string &name,
                              const std::string &num,
                              const std::string &den) {
        os << "F " << name << " " << num << " " << den << "\n";
    });
    return os.str();
}

/** Parse a profile sidecar back into @p res (fields and stats). */
void
applyProfile(const std::string &blob, const std::string &path,
             ExperimentResult &res)
{
    const auto corrupt = [&path](const std::string &why) {
        return std::runtime_error("poat-itrace: " + path +
                                  ": corrupt functional profile (" +
                                  why + ")");
    };
    std::istringstream is(blob);
    std::string line;
    if (!std::getline(is, line) || line != "poat-profile v2")
        throw corrupt("missing version line");

    StatsRegistry prof;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string kind, name;
        ls >> kind >> name;
        if (kind == "R") {
            uint64_t v;
            if (!(ls >> v))
                throw corrupt("bad result line");
            if (name == "checksum")
                res.workload_checksum = v;
            else if (name == "operations")
                res.workload_operations = v;
            else if (name == "translate_calls")
                res.translate_calls = v;
            else if (name == "translate_misses")
                res.translate_misses = v;
            else if (name == "translate_insns_bits")
                res.translate_insns_per_call = std::bit_cast<double>(v);
            else
                throw corrupt("unknown result field " + name);
        } else if (kind == "C") {
            uint64_t v;
            if (!(ls >> v))
                throw corrupt("bad counter line");
            prof.counter(name) = v;
        } else if (kind == "H") {
            uint64_t count, sum, sumsq, lo, hi;
            if (!(ls >> count >> sum >> sumsq >> lo >> hi))
                throw corrupt("bad histogram line");
            std::array<uint64_t, Histogram::kBuckets> buckets{};
            std::string pair;
            while (ls >> pair) {
                const size_t colon = pair.find(':');
                if (colon == std::string::npos)
                    throw corrupt("bad histogram bucket");
                unsigned long b;
                try {
                    b = std::stoul(pair.substr(0, colon));
                    buckets.at(b) = std::stoull(pair.substr(colon + 1));
                } catch (const std::exception &) {
                    throw corrupt("bad histogram bucket");
                }
            }
            prof.histogram(name).restore(count, sum, sumsq, lo, hi,
                                         buckets);
        } else if (kind == "F") {
            std::string num, den;
            if (!(ls >> num >> den))
                throw corrupt("bad formula line");
            prof.formula(name, num, den);
        } else {
            throw corrupt("unknown line kind " + kind);
        }
    }
    mergeRegistry(prof, res.stats);
}

/**
 * Attach the configured interval sampler (if any) to @p machine: the
 * machine binds its stats source and occupancy gauges, and when the
 * run executes natively (@p rt nonnull) the runtime-side gauges ride
 * along. Replayed runs have no live runtime, so their timelines carry
 * the machine gauges only.
 */
std::unique_ptr<telemetry::TimelineSampler>
makeTimeline(const ExperimentConfig &cfg, sim::Machine &machine,
             PmemRuntime *rt)
{
    if (cfg.timeline_interval == 0 || cfg.timeline_path.empty())
        return nullptr;
    auto timeline = std::make_unique<telemetry::TimelineSampler>(
        cfg.timeline_interval, cfg.timeline_path);
    machine.attachTimeline(timeline.get(), cfg.timeline_cores);
    if (rt) {
        PoolRegistry *reg = &rt->registry();
        timeline->addGauge("pmem.undo_log_bytes", [reg] {
            uint64_t total = 0;
            for (const uint32_t id : reg->openIds())
                reg->find(id)->forEachLog([&total](UndoLog &log) {
                    total += log.usedBytes();
                });
            return total;
        });
        timeline->addGauge("pmem.alloc_live_bytes", [reg] {
            uint64_t total = 0;
            for (const uint32_t id : reg->openIds())
                total += reg->find(id)->alloc.usedBytes();
            return total;
        });
    }
    return timeline;
}

} // namespace

namespace detail {

ExperimentResult
runExperimentLive(const ExperimentConfig &cfg)
{
    ExperimentResult res;

    if (!cfg.timing) {
        // Profiling-only run: no machine, no cycles — just the library
        // executing natively with its instruction accounting on.
        CountingTraceSink sink;
        PmemRuntime rt(runtimeOptions(cfg), &sink);
        executeWorkload(cfg, rt, res);
        StatsRegistry prof;
        fillFunctionalProfile(cfg, rt, res, prof);
        mergeRegistry(prof, res.stats);
        return res;
    }

    sim::Machine machine(machineConfigFor(cfg));

    // Per-run tracer: attached for the duration of this run only.
    // Machine::setTracer() acquires exclusive use, so two concurrent
    // runs sharing one tracer panic instead of racing.
    EventTracer *tracer = cfg.tracer;
    machine.setTracer(tracer);
    const std::string label = configLabel(cfg);
    if (tracer)
        tracer->marker(machine.cycles(), "begin " + label);

    PmemRuntime rt(runtimeOptions(cfg), &machine);
    const auto timeline = makeTimeline(cfg, machine, &rt);
    executeWorkload(cfg, rt, res);

    if (timeline)
        timeline->finish(machine.cycles());
    if (tracer)
        tracer->marker(machine.cycles(), "end " + label);
    machine.setTracer(nullptr);

    res.metrics = machine.metrics();
    res.cpi = machine.cpi();

    // The run's complete hierarchical telemetry: machine registry plus
    // the software-translation profile and the workload outcome.
    res.stats = machine.stats();
    StatsRegistry prof;
    fillFunctionalProfile(cfg, rt, res, prof);
    mergeRegistry(prof, res.stats);
    return res;
}

ExperimentResult
runExperimentCaptured(const ExperimentConfig &cfg,
                      const std::string &path)
{
    if (!cfg.timing)
        throw std::invalid_argument(
            "trace capture requires a timing run");

    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path(), ec);
    // An unusable directory surfaces as the recorder's open error.

    ExperimentResult res;
    sim::Machine machine(machineConfigFor(cfg));
    EventTracer *tracer = cfg.tracer;
    machine.setTracer(tracer);
    const std::string label = configLabel(cfg);
    if (tracer)
        tracer->marker(machine.cycles(), "begin " + label);

    // The recorder forwards every event to the machine with the exact
    // dep tags a direct run would pass, so capture-run metrics equal
    // live-run metrics.
    trace_io::TraceRecorder rec(&machine, path, traceFingerprint(cfg));
    PmemRuntime rt(runtimeOptions(cfg), &rec);
    const auto timeline = makeTimeline(cfg, machine, &rt);
    executeWorkload(cfg, rt, res);

    if (timeline)
        timeline->finish(machine.cycles());
    if (tracer)
        tracer->marker(machine.cycles(), "end " + label);
    machine.setTracer(nullptr);

    res.metrics = machine.metrics();
    res.cpi = machine.cpi();
    res.stats = machine.stats();
    StatsRegistry prof;
    fillFunctionalProfile(cfg, rt, res, prof);
    mergeRegistry(prof, res.stats);

    rec.setProfile(serializeProfile(res, prof));
    rec.finish();
    return res;
}

ExperimentResult
runExperimentReplayed(const ExperimentConfig &cfg,
                      const std::string &path)
{
    if (!cfg.timing)
        throw std::invalid_argument(
            "trace replay requires a timing run");

    trace_io::TraceReplayer rep(path);
    const std::string want = traceFingerprint(cfg);
    if (rep.fingerprint() != want)
        throw std::runtime_error(
            "poat-itrace: " + path + ": fingerprint mismatch: file has "
            "\"" + rep.fingerprint() + "\", config needs \"" + want +
            "\"");

    ExperimentResult res;
    sim::Machine machine(machineConfigFor(cfg));
    EventTracer *tracer = cfg.tracer;
    machine.setTracer(tracer);
    const std::string label = configLabel(cfg);
    if (tracer)
        tracer->marker(machine.cycles(), "begin " + label);

    const auto timeline = makeTimeline(cfg, machine, nullptr);
    rep.replayInto(machine);

    if (timeline)
        timeline->finish(machine.cycles());
    if (tracer)
        tracer->marker(machine.cycles(), "end " + label);
    machine.setTracer(nullptr);

    res.metrics = machine.metrics();
    res.cpi = machine.cpi();
    res.stats = machine.stats();
    applyProfile(rep.profile(), path, res);
    return res;
}

ExperimentResult
runExperimentUnobserved(const ExperimentConfig &cfg)
{
    if (!cfg.timing || cfg.trace_cache.empty())
        return runExperimentLive(cfg);

    const std::string path = traceCachePath(cfg);
    if (trace_io::TraceReplayer::matches(path, traceFingerprint(cfg))) {
        try {
            return runExperimentReplayed(cfg, path);
        } catch (const std::runtime_error &e) {
            // A cached trace that fails full validation (corruption,
            // torn write from a crashed capture) is not an error —
            // recapture it.
            std::fprintf(stderr, "trace-cache: %s; recapturing\n",
                         e.what());
        }
    }
    return runExperimentCaptured(cfg, path);
}

void
notifyExperimentObserver(const ExperimentConfig &cfg,
                         const ExperimentResult &res)
{
    if (g_observer)
        g_observer(cfg, res);
}

} // namespace detail

ExperimentResult
runExperiment(const ExperimentConfig &cfg)
{
    ExperimentResult res = detail::runExperimentUnobserved(cfg);
    detail::notifyExperimentObserver(cfg, res);
    return res;
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace driver
} // namespace poat
