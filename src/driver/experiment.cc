#include "driver/experiment.h"

#include <cmath>

#include "pmem/runtime.h"

namespace poat {
namespace driver {

ExperimentResult
runExperiment(const ExperimentConfig &cfg)
{
    sim::Machine machine(cfg.machine);

    RuntimeOptions ro;
    ro.mode = cfg.mode;
    ro.durability = cfg.transactions;
    ro.aslr_seed = cfg.seed ^ 0x517cc1b727220a95ull;
    ro.base_predictor = cfg.base_predictor;
    PmemRuntime rt(ro, &machine);

    ExperimentResult res;
    if (cfg.workload == "TPCC") {
        workloads::tpcc::TpccWorkload w(cfg.placement,
                                        cfg.tpcc_scale_pct, cfg.seed,
                                        cfg.tpcc_txns,
                                        cfg.transactions);
        const auto r = w.run(rt);
        res.workload_checksum = r.checksum;
        res.workload_operations = r.transactions;
    } else {
        workloads::WorkloadConfig wc;
        wc.pattern = cfg.pattern;
        wc.transactions = cfg.transactions;
        wc.seed = cfg.seed;
        wc.scale_pct = cfg.scale_pct;
        const auto r = workloads::makeWorkload(cfg.workload, wc)->run(rt);
        res.workload_checksum = r.checksum;
        res.workload_operations = r.operations;
    }

    res.metrics = machine.metrics();
    res.breakdown = machine.breakdown();
    res.translate_calls = rt.translator().calls();
    res.translate_misses = rt.translator().predictorMisses();
    res.translate_insns_per_call =
        rt.translator().avgInstructionsPerCall();
    return res;
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace driver
} // namespace poat
