/**
 * @file
 * Experiment driver: runs one (workload, pattern, configuration,
 * machine) combination end to end and returns its metrics.
 *
 * This is the engine behind every bench binary. A run executes the
 * workload natively against a fresh PmemRuntime whose TraceSink is a
 * fresh sim::Machine, so BASE and OPT runs of the same seed perform
 * identical logical work and differ only in the translation machinery —
 * exactly the paper's Table 7 comparison.
 */
#ifndef POAT_DRIVER_EXPERIMENT_H
#define POAT_DRIVER_EXPERIMENT_H

#include <functional>
#include <string>

#include "common/stats.h"
#include "common/trace_event.h"
#include "sim/machine.h"
#include "workloads/harness.h"
#include "workloads/tpcc/tpcc.h"

namespace poat {
namespace driver {

/** Everything one simulated run needs. */
struct ExperimentConfig
{
    /** "LL", "BST", "SPS", "RBT", "BT", "B+T", "TPCC", "LHT", "MTPCC". */
    std::string workload = "LL";

    /// @name Microbenchmark knobs
    /// @{
    workloads::PoolPattern pattern = workloads::PoolPattern::All;
    uint32_t scale_pct = 100; ///< 100 = the paper's op counts
    /// @}

    /// @name TPC-C knobs
    /// @{
    workloads::tpcc::Placement placement =
        workloads::tpcc::Placement::All;
    uint32_t tpcc_scale_pct = 10;  ///< table cardinality scale
    uint64_t tpcc_txns = 1000;     ///< paper: 1000 transactions
    uint32_t tpcc_warehouses = 1;  ///< pool-count scaling studies
    /// @}

    /// @name Concurrency knobs (LHT / MTPCC only)
    /// @{
    /**
     * Engine workers (= simulated cores; the machine config's core
     * count is raised to this if lower). 0 = the workloads' default
     * (2). Sequential workloads ignore all three knobs.
     */
    uint32_t threads = 0;
    uint64_t sched_seed = 0;    ///< scheduler interleaving seed (tSEED)
    uint32_t commit_window = 4; ///< group-commit window (<= 1 disables)
    /// @}

    /** Failure-safety + durability on (BASE/OPT) or off (*_NTX). */
    bool transactions = true;

    /** BASE (Software) or OPT (Hardware). */
    TranslationMode mode = TranslationMode::Software;

    /** BASE ablation: disable the software last-value predictor. */
    bool base_predictor = true;

    sim::MachineConfig machine;
    uint64_t seed = 42;

    /**
     * false = run against a CountingTraceSink instead of a simulated
     * machine: the workload executes and the software-translation
     * profile (Table 2) is collected, but cycles/metrics stay zero.
     * ~100x faster; used by profiling-only experiments.
     */
    bool timing = true;

    /**
     * Label used for telemetry (JSON run records, trace markers).
     * Empty = derive one from the config via configLabel().
     */
    std::string label;

    /**
     * Directory of captured instruction traces (empty = no caching).
     *
     * When set (and timing is on), the run first looks for a cached
     * poat-itrace file whose functional fingerprint — workload,
     * pattern, scale, transactions, mode, base_predictor, seed, and
     * the TPC-C knobs — matches this config (traceFingerprint). A hit
     * replays the captured stream into a fresh machine, skipping
     * native workload execution entirely; a miss runs live and
     * captures the stream for the next run. Replayed results are
     * bit-identical to live ones (MachineMetrics and serialized stats
     * JSON alike; enforced by tests/trace_io/). runSweep() groups
     * submissions by fingerprint so a machine-config sweep pays for
     * functional execution once per group.
     */
    std::string trace_cache;

    /**
     * Interval telemetry (src/telemetry/): cycles per timeline sample;
     * 0 = no timeline. When nonzero (and timing is on), the run's
     * machine gets a TimelineSampler writing timeline_path, sampling
     * every counter/CPI delta plus the occupancy gauges. Timing-only:
     * deliberately excluded from traceFingerprint(), so cached traces
     * survive toggling it. Observer-only: sampling reads synced stats
     * and nothing else, so metrics, aggregate stats, and checksums are
     * bit-identical with the timeline on or off (equivalence tests
     * assert this).
     */
    uint64_t timeline_interval = 0;

    /** Output path of the poat-timeline v2 stream (see above). */
    std::string timeline_path;

    /**
     * Per-core timeline lanes: when the timeline is on and the run is
     * multi-core, additionally register one blocked-reason gauge per
     * core ("sched.core.<i>.blocked.<reason>.total") so viewers render
     * a lane per core. Timing- and reporting-only, like the timeline
     * itself: deliberately excluded from traceFingerprint(), and the
     * stats report stays bit-identical with it on or off.
     */
    bool timeline_cores = false;

    /**
     * Cycle-stamped event tracer attached to the run's machine for the
     * duration of the run; null = no tracing. Not owned.
     *
     * Per-run tracer contract: an EventTracer accepts events from at
     * most one machine at a time (Machine::setTracer acquires it and
     * panics on concurrent sharing), so every concurrently executing
     * config needs its own tracer — there is deliberately no
     * process-wide default. Reuse across *sequential* runs is fine.
     */
    EventTracer *tracer = nullptr;
};

/** Metrics of one finished run. */
struct ExperimentResult
{
    sim::MachineMetrics metrics;

    /**
     * The run's CPI stack: every cycle charged to a named component,
     * components summing exactly to metrics.cycles (both core models;
     * see common/cpi.h). Also in stats as "core.cpi".
     */
    CpiStack cpi;
    uint64_t workload_checksum = 0;
    uint64_t workload_operations = 0;

    /**
     * Concurrency statistics (LHT/MTPCC live runs; zero otherwise).
     * Also exported as "engine.*" counters in stats, which replayed
     * runs restore from the trace sidecar.
     */
    concurrent::EngineStats engine{};

    /** Software-translation profile (BASE runs; Table 2). */
    uint64_t translate_calls = 0;
    uint64_t translate_misses = 0;
    double translate_insns_per_call = 0.0;

    /**
     * The run's full hierarchical statistics: every machine counter,
     * histogram, and formula ("polb.*", "pot.*", "cache.*", ...) plus
     * the software-translation profile ("sw_translate.*") and the
     * workload outcome ("workload.*"). See docs/OBSERVABILITY.md.
     */
    StatsRegistry stats;
};

/** Execute one experiment. */
ExperimentResult runExperiment(const ExperimentConfig &cfg);

/** Short human/machine label for a config: "LL.RANDOM.base.inorder". */
std::string configLabel(const ExperimentConfig &cfg);

/**
 * Canonical functional fingerprint of a config: every knob that shapes
 * the dynamic instruction stream (workload, pattern/placement, scale,
 * transaction counts, transactions on/off, translation mode, BASE
 * predictor, seed) and none that only shape timing (machine config).
 * Two configs with equal fingerprints submit identical event streams,
 * so one captured trace serves both; anything that changes the
 * fingerprint invalidates the cached trace. Stored verbatim in the
 * poat-itrace header and checked on every replay.
 */
std::string traceFingerprint(const ExperimentConfig &cfg);

/**
 * Path of the cached trace for @p cfg inside cfg.trace_cache:
 * "<label>-<fingerprint hash>.itrace".
 */
std::string traceCachePath(const ExperimentConfig &cfg);

/**
 * Observer invoked with every finished runExperiment() call; the bench
 * harness's --stats-json collector. Pass nullptr to uninstall.
 *
 * Threading: runSweep() (driver/sweep.h) invokes the observer on the
 * calling thread in submission order, so an observer installed around
 * a sweep never runs concurrently with itself. Code that calls
 * runExperiment() directly from several threads must install an
 * observer that does its own locking. Do not install/uninstall while
 * runs are in flight.
 */
using ExperimentObserver =
    std::function<void(const ExperimentConfig &, const ExperimentResult &)>;
void setExperimentObserver(ExperimentObserver obs);

namespace detail {

/**
 * runExperiment() minus the observer notification — the sweep executor
 * runs this on worker threads and replays the notifications serially,
 * in submission order, on its calling thread. Honors cfg.trace_cache:
 * a matching cached trace is replayed, otherwise the run executes live
 * and captures one (an unreadable cached file is recaptured with a
 * note on stderr, never an error).
 */
ExperimentResult runExperimentUnobserved(const ExperimentConfig &cfg);

/** The live path: native execution, no trace cache involvement. */
ExperimentResult runExperimentLive(const ExperimentConfig &cfg);

/**
 * Live run that also captures the instruction stream to @p path
 * (atomically; readers never see a partial file). Timing must be on.
 * @throws std::runtime_error on trace I/O failure.
 */
ExperimentResult runExperimentCaptured(const ExperimentConfig &cfg,
                                       const std::string &path);

/**
 * Replay the captured stream at @p path into a fresh machine instead
 * of executing the workload. Timing must be on.
 * @throws std::runtime_error if the file is missing, corrupt,
 *         truncated, or fingerprints a different functional config.
 */
ExperimentResult runExperimentReplayed(const ExperimentConfig &cfg,
                                       const std::string &path);

/** Invoke the installed observer (if any) for a finished run. */
void notifyExperimentObserver(const ExperimentConfig &cfg,
                              const ExperimentResult &res);

} // namespace detail

/** Speedup of OPT over BASE: cycles(base) / cycles(opt). */
inline double
speedup(const ExperimentResult &base, const ExperimentResult &opt)
{
    return opt.metrics.cycles == 0
               ? 0.0
               : static_cast<double>(base.metrics.cycles) /
                     static_cast<double>(opt.metrics.cycles);
}

/** Geometric mean of a vector of positive values. */
double geomean(const std::vector<double> &xs);

} // namespace driver
} // namespace poat

#endif // POAT_DRIVER_EXPERIMENT_H
