/**
 * @file
 * Experiment driver: runs one (workload, pattern, configuration,
 * machine) combination end to end and returns its metrics.
 *
 * This is the engine behind every bench binary. A run executes the
 * workload natively against a fresh PmemRuntime whose TraceSink is a
 * fresh sim::Machine, so BASE and OPT runs of the same seed perform
 * identical logical work and differ only in the translation machinery —
 * exactly the paper's Table 7 comparison.
 */
#ifndef POAT_DRIVER_EXPERIMENT_H
#define POAT_DRIVER_EXPERIMENT_H

#include <string>

#include "sim/machine.h"
#include "workloads/harness.h"
#include "workloads/tpcc/tpcc.h"

namespace poat {
namespace driver {

/** Everything one simulated run needs. */
struct ExperimentConfig
{
    /** "LL", "BST", "SPS", "RBT", "BT", "B+T", or "TPCC". */
    std::string workload = "LL";

    /// @name Microbenchmark knobs
    /// @{
    workloads::PoolPattern pattern = workloads::PoolPattern::All;
    uint32_t scale_pct = 100; ///< 100 = the paper's op counts
    /// @}

    /// @name TPC-C knobs
    /// @{
    workloads::tpcc::Placement placement =
        workloads::tpcc::Placement::All;
    uint32_t tpcc_scale_pct = 10; ///< table cardinality scale
    uint64_t tpcc_txns = 1000;    ///< paper: 1000 transactions
    /// @}

    /** Failure-safety + durability on (BASE/OPT) or off (*_NTX). */
    bool transactions = true;

    /** BASE (Software) or OPT (Hardware). */
    TranslationMode mode = TranslationMode::Software;

    /** BASE ablation: disable the software last-value predictor. */
    bool base_predictor = true;

    sim::MachineConfig machine;
    uint64_t seed = 42;
};

/** Metrics of one finished run. */
struct ExperimentResult
{
    sim::MachineMetrics metrics;
    sim::CycleBreakdown breakdown; ///< CPI stack (in-order core only)
    uint64_t workload_checksum = 0;
    uint64_t workload_operations = 0;

    /** Software-translation profile (BASE runs; Table 2). */
    uint64_t translate_calls = 0;
    uint64_t translate_misses = 0;
    double translate_insns_per_call = 0.0;
};

/** Execute one experiment. */
ExperimentResult runExperiment(const ExperimentConfig &cfg);

/** Speedup of OPT over BASE: cycles(base) / cycles(opt). */
inline double
speedup(const ExperimentResult &base, const ExperimentResult &opt)
{
    return opt.metrics.cycles == 0
               ? 0.0
               : static_cast<double>(base.metrics.cycles) /
                     static_cast<double>(opt.metrics.cycles);
}

/** Geometric mean of a vector of positive values. */
double geomean(const std::vector<double> &xs);

} // namespace driver
} // namespace poat

#endif // POAT_DRIVER_EXPERIMENT_H
