#include "driver/sweep.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "trace_io/itrace.h"

namespace poat {
namespace driver {

namespace {

/**
 * How one submission interacts with the trace cache. The sweep groups
 * submissions by functional fingerprint: the first submission of each
 * group captures the instruction stream, the rest replay it — but a
 * replay must not start before its capture has published the file, so
 * the parallel executor gates dependents on the capture's completion.
 */
struct TracePlan
{
    enum Action : uint8_t
    {
        kLive,        ///< no caching for this config
        kCapture,     ///< run live and record the trace
        kReplayReady, ///< a matching file already exists on disk
        kReplayAfter, ///< replay once the capture at `capture` is done
    };

    Action action = kLive;
    size_t capture = SIZE_MAX; ///< gating index for kReplayAfter
    std::string path;
};

/** Capture progress, observed by gated replays. */
enum class CaptureState : uint8_t
{
    Pending,
    Published,
    Failed,
};

std::vector<TracePlan>
planTraceCache(const std::vector<ExperimentConfig> &configs)
{
    std::vector<TracePlan> plans(configs.size());
    std::unordered_map<std::string, size_t> capture_of;
    for (size_t i = 0; i < configs.size(); ++i) {
        const ExperimentConfig &cfg = configs[i];
        if (!cfg.timing || cfg.trace_cache.empty())
            continue;
        TracePlan &p = plans[i];
        p.path = traceCachePath(cfg);
        if (trace_io::TraceReplayer::matches(p.path,
                                             traceFingerprint(cfg))) {
            p.action = TracePlan::kReplayReady;
            continue;
        }
        const auto [it, inserted] = capture_of.emplace(p.path, i);
        if (inserted) {
            p.action = TracePlan::kCapture;
        } else {
            p.action = TracePlan::kReplayAfter;
            p.capture = it->second;
        }
    }
    return plans;
}

} // namespace

unsigned
defaultSweepJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
runTasks(size_t count, unsigned jobs, const std::function<void(size_t)> &fn)
{
    jobs = jobs ? jobs : defaultSweepJobs();
    jobs = static_cast<unsigned>(
        std::min<size_t>(jobs, std::max<size_t>(count, 1)));

    if (jobs <= 1) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::mutex mu;
    size_t next_index = 0;
    size_t first_error_index = SIZE_MAX;
    std::exception_ptr first_error;

    auto worker = [&] {
        for (;;) {
            size_t i;
            {
                std::lock_guard<std::mutex> lock(mu);
                if (next_index >= count)
                    return;
                i = next_index++;
            }
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mu);
                if (i < first_error_index) {
                    first_error_index = i;
                    first_error = std::current_exception();
                }
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

std::vector<ExperimentResult>
runSweep(const std::vector<ExperimentConfig> &configs,
         const SweepOptions &opts)
{
    const size_t n = configs.size();
    std::vector<ExperimentResult> results;
    results.reserve(n);

    unsigned jobs = opts.jobs ? opts.jobs : defaultSweepJobs();
    jobs = static_cast<unsigned>(
        std::min<size_t>(jobs, std::max<size_t>(n, 1)));

    if (jobs <= 1) {
        // Inline serial path: byte-identical to a runExperiment loop.
        // Trace-cache grouping falls out naturally: the first run of a
        // fingerprint captures, later runs find the file and replay.
        for (size_t i = 0; i < n; ++i) {
            results.push_back(runExperiment(configs[i]));
            if (opts.progress)
                opts.progress(i, n, configs[i], results.back());
        }
        return results;
    }

    // One slot per config; workers fill slots in any order, the calling
    // thread consumes them strictly in submission order.
    struct Slot
    {
        ExperimentResult result;
        std::exception_ptr error;
        bool done = false;
    };
    std::vector<Slot> slots(n);
    std::mutex mu;
    std::condition_variable cv;
    size_t next_index = 0; // next config a worker should claim

    // Trace-cache plan: replays of a fingerprint group wait until the
    // group's capture (always the lowest submission index, hence
    // claimed first) has published its file. Captures never wait, so
    // some worker always makes progress.
    const std::vector<TracePlan> plans = planTraceCache(configs);
    std::vector<CaptureState> captures(n, CaptureState::Pending);

    auto runPlanned = [&](size_t i) -> ExperimentResult {
        const TracePlan &plan = plans[i];
        const ExperimentConfig &cfg = configs[i];
        switch (plan.action) {
        case TracePlan::kLive:
            return detail::runExperimentUnobserved(cfg);
        case TracePlan::kCapture:
            try {
                ExperimentResult r =
                    detail::runExperimentCaptured(cfg, plan.path);
                {
                    std::lock_guard<std::mutex> lock(mu);
                    captures[i] = CaptureState::Published;
                }
                cv.notify_all();
                return r;
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(mu);
                    captures[i] = CaptureState::Failed;
                }
                cv.notify_all();
                throw;
            }
        case TracePlan::kReplayReady:
            try {
                return detail::runExperimentReplayed(cfg, plan.path);
            } catch (const std::runtime_error &e) {
                // Pre-existing file failed full validation: recapture,
                // exactly as the serial path would.
                std::fprintf(stderr, "trace-cache: %s; recapturing\n",
                             e.what());
                return detail::runExperimentCaptured(cfg, plan.path);
            }
        case TracePlan::kReplayAfter: {
            CaptureState state;
            {
                std::unique_lock<std::mutex> lock(mu);
                cv.wait(lock, [&] {
                    return captures[plan.capture] !=
                        CaptureState::Pending;
                });
                state = captures[plan.capture];
            }
            if (state == CaptureState::Published)
                return detail::runExperimentReplayed(cfg, plan.path);
            // The capture failed and its exception will be the one the
            // sweep rethrows; still produce a correct result here.
            return detail::runExperimentLive(cfg);
        }
        }
        return detail::runExperimentUnobserved(cfg); // unreachable
    };

    auto worker = [&] {
        for (;;) {
            size_t i;
            {
                std::lock_guard<std::mutex> lock(mu);
                if (next_index >= n)
                    return;
                i = next_index++;
            }
            Slot filled;
            try {
                // Observer + progress fire later, on the calling
                // thread, in submission order.
                filled.result = runPlanned(i);
            } catch (...) {
                filled.error = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lock(mu);
                slots[i] = std::move(filled);
                slots[i].done = true;
            }
            cv.notify_all();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t)
        pool.emplace_back(worker);

    // Consume slots in submission order, firing the observer and the
    // progress callback exactly as a serial loop would have.
    std::exception_ptr first_error;
    for (size_t i = 0; i < n && !first_error; ++i) {
        Slot slot;
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [&] { return slots[i].done; });
            slot = std::move(slots[i]);
        }
        if (slot.error) {
            first_error = slot.error;
            break;
        }
        detail::notifyExperimentObserver(configs[i], slot.result);
        results.push_back(std::move(slot.result));
        if (opts.progress)
            opts.progress(i, n, configs[i], results.back());
    }

    for (std::thread &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
    return results;
}

} // namespace driver
} // namespace poat
