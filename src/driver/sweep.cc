#include "driver/sweep.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

namespace poat {
namespace driver {

unsigned
defaultSweepJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::vector<ExperimentResult>
runSweep(const std::vector<ExperimentConfig> &configs,
         const SweepOptions &opts)
{
    const size_t n = configs.size();
    std::vector<ExperimentResult> results;
    results.reserve(n);

    unsigned jobs = opts.jobs ? opts.jobs : defaultSweepJobs();
    jobs = static_cast<unsigned>(
        std::min<size_t>(jobs, std::max<size_t>(n, 1)));

    if (jobs <= 1) {
        // Inline serial path: byte-identical to a runExperiment loop.
        for (size_t i = 0; i < n; ++i) {
            results.push_back(runExperiment(configs[i]));
            if (opts.progress)
                opts.progress(i, n, configs[i], results.back());
        }
        return results;
    }

    // One slot per config; workers fill slots in any order, the calling
    // thread consumes them strictly in submission order.
    struct Slot
    {
        ExperimentResult result;
        std::exception_ptr error;
        bool done = false;
    };
    std::vector<Slot> slots(n);
    std::mutex mu;
    std::condition_variable cv;
    size_t next_index = 0; // next config a worker should claim

    auto worker = [&] {
        for (;;) {
            size_t i;
            {
                std::lock_guard<std::mutex> lock(mu);
                if (next_index >= n)
                    return;
                i = next_index++;
            }
            Slot filled;
            try {
                // Observer + progress fire later, on the calling
                // thread, in submission order.
                filled.result = detail::runExperimentUnobserved(configs[i]);
            } catch (...) {
                filled.error = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lock(mu);
                slots[i] = std::move(filled);
                slots[i].done = true;
            }
            cv.notify_all();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t)
        pool.emplace_back(worker);

    // Consume slots in submission order, firing the observer and the
    // progress callback exactly as a serial loop would have.
    std::exception_ptr first_error;
    for (size_t i = 0; i < n && !first_error; ++i) {
        Slot slot;
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [&] { return slots[i].done; });
            slot = std::move(slots[i]);
        }
        if (slot.error) {
            first_error = slot.error;
            break;
        }
        detail::notifyExperimentObserver(configs[i], slot.result);
        results.push_back(std::move(slot.result));
        if (opts.progress)
            opts.progress(i, n, configs[i], results.back());
    }

    for (std::thread &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
    return results;
}

} // namespace driver
} // namespace poat
