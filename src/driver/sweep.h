/**
 * @file
 * Parallel experiment sweeps.
 *
 * Every bench binary replays dozens of independent (workload, pattern,
 * mode, machine) runs. Runs are hermetic by construction — each gets a
 * fresh PmemRuntime and a fresh sim::Machine, and all randomness is
 * seeded per run — so they can execute concurrently as long as the few
 * process-wide touch points (the experiment observer, an attached
 * EventTracer) are kept per-run or serialized. runSweep() is that
 * fan-out: a fixed-size thread pool that preserves *serial semantics*:
 *
 *  - results come back in submission order, whatever the completion
 *    order was;
 *  - the process-wide experiment observer (setExperimentObserver) and
 *    the per-sweep progress callback fire on the calling thread, in
 *    submission order — never concurrently;
 *  - the first exception (by submission index) is rethrown on the
 *    calling thread after the pool has drained, exactly where a serial
 *    loop would have thrown it;
 *  - jobs = 1 runs inline on the calling thread with no pool at all,
 *    byte-identical to a hand-written runExperiment() loop.
 *
 * Because each run's telemetry is self-contained (the result carries
 * its own StatsRegistry; a tracer is attached per-config, see
 * ExperimentConfig::tracer), a parallel sweep produces bit-identical
 * ExperimentResults to a serial one — tests/driver/sweep_test.cc
 * proves this property on randomized batches.
 */
#ifndef POAT_DRIVER_SWEEP_H
#define POAT_DRIVER_SWEEP_H

#include <functional>
#include <vector>

#include "driver/experiment.h"

namespace poat {
namespace driver {

/** How a sweep executes its configs. */
struct SweepOptions
{
    /**
     * Worker threads; 0 = std::thread::hardware_concurrency(). 1 runs
     * everything inline on the calling thread (serial semantics with no
     * pool). The pool never exceeds the number of configs.
     */
    unsigned jobs = 0;

    /**
     * Invoked on the calling thread, in submission order, once per
     * finished run: (submission index, total, config, result). Fires
     * after the process-wide experiment observer saw the same run.
     */
    std::function<void(size_t, size_t, const ExperimentConfig &,
                       const ExperimentResult &)>
        progress;
};

/**
 * Run every config and return the results in submission order.
 *
 * Exception behavior matches a serial loop: if run i throws, runs
 * 0..i-1 are still observed (observer + progress) and the exception of
 * the *lowest* submission index is rethrown; later runs may have
 * executed but are never observed.
 */
std::vector<ExperimentResult>
runSweep(const std::vector<ExperimentConfig> &configs,
         const SweepOptions &opts = {});

/** The jobs count `jobs = 0` resolves to (>= 1). */
unsigned defaultSweepJobs();

/**
 * Generic fan-out over the sweep thread pool: invoke fn(i) for every
 * i in [0, count), up to @p jobs at a time (0 = hardware concurrency;
 * 1 = inline on the calling thread). Tasks must be hermetic, exactly
 * like sweep configs. Exception behavior matches runSweep: after the
 * pool drains, the exception from the lowest-index failing task is
 * rethrown. The crash-point fault explorer fans its trials out here.
 */
void runTasks(size_t count, unsigned jobs,
              const std::function<void(size_t)> &fn);

} // namespace driver
} // namespace poat

#endif // POAT_DRIVER_SWEEP_H
