#include "report/contention.h"

#include <cinttypes>
#include <cstdio>

namespace poat {
namespace report {

namespace {

/** Numeric leaf at @p path, or @p fallback when absent. */
double
num(const FlatJson &flat, const std::string &path, double fallback = 0)
{
    auto it = flat.numbers.find(path);
    return it == flat.numbers.end() ? fallback : it->second;
}

uint64_t
u64(const FlatJson &flat, const std::string &path)
{
    return static_cast<uint64_t>(num(flat, path));
}

bool
has(const FlatJson &flat, const std::string &path)
{
    return flat.numbers.count(path) != 0;
}

/**
 * Collect "<stem><name><leaf>" children of @p stem: every numeric
 * path of the form stem + <single segment> + leaf, in map order.
 */
std::vector<std::pair<std::string, uint64_t>>
children(const FlatJson &flat, const std::string &stem,
         const std::string &leaf)
{
    std::vector<std::pair<std::string, uint64_t>> out;
    for (auto it = flat.numbers.lower_bound(stem);
         it != flat.numbers.end() &&
         it->first.compare(0, stem.size(), stem) == 0;
         ++it) {
        const std::string tail = it->first.substr(stem.size());
        if (tail.size() > leaf.size() &&
            tail.compare(tail.size() - leaf.size(), leaf.size(), leaf) ==
                0 &&
            tail.find('.') == tail.size() - leaf.size())
            out.emplace_back(tail.substr(0, tail.size() - leaf.size()),
                             static_cast<uint64_t>(it->second));
    }
    return out;
}

void
jsonEscape(std::ostream &os, const std::string &s)
{
    for (const char c : s) {
        if (c == '"' || c == '\\')
            os << '\\' << c;
        else if (static_cast<unsigned char>(c) < 0x20)
            os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
               << "0123456789abcdef"[c & 0xf];
        else
            os << c;
    }
}

} // namespace

ContentionRun
extractContention(const FlatJson &flat, const std::string &prefix)
{
    const std::string s = prefix + "stats.";
    ContentionRun run;
    if (auto it = flat.strings.find(prefix + "label");
        it != flat.strings.end())
        run.label = it->second;
    if (!has(flat, s + "lock.acquisitions"))
        return run; // sequential run: no contention stats exported
    run.present = true;

    run.makespan = u64(flat, s + "core.cycles");
    run.lock_waits = u64(flat, s + "lock.waits");
    run.lock_acquisitions = u64(flat, s + "lock.acquisitions");
    run.waits_for_edges = u64(flat, s + "lock.waits_for_edges");
    run.deadlock_victims = u64(flat, s + "lock.deadlock_victims");
    run.wait_mean = num(flat, s + "lock.wait_cycles.mean");
    run.wait_p99 = num(flat, s + "lock.wait_cycles.p99");
    run.wait_max = num(flat, s + "lock.wait_cycles.max");
    run.hold_mean = num(flat, s + "lock.hold_cycles.mean");
    run.hold_p99 = num(flat, s + "lock.hold_cycles.p99");
    run.hold_max = num(flat, s + "lock.hold_cycles.max");

    const uint64_t topn = u64(flat, s + "lock.top.count");
    for (uint64_t r = 0; r < topn; ++r) {
        const std::string p =
            s + "lock.top." + std::to_string(r) + ".";
        ContentionLock l;
        l.key = u64(flat, p + "key");
        l.waits = u64(flat, p + "waits");
        l.wait_cycles = u64(flat, p + "wait_cycles");
        l.hold_cycles = u64(flat, p + "hold_cycles");
        l.acquisitions = u64(flat, p + "acquisitions");
        run.top.push_back(l);
    }

    while (has(flat, s + "sched.core." + std::to_string(run.cores) +
                         ".running"))
        ++run.cores;
    for (const char *r :
         {"token_wait", "lock_wait", "commit_wait", "idle_done"}) {
        const std::string p = s + "sched.blocked." + r;
        if (has(flat, p))
            run.blocked.emplace_back(r, u64(flat, p));
    }

    run.aborts = u64(flat, s + "tx.abort.count");
    run.wasted_cycles = u64(flat, s + "tx.abort.wasted_total");
    run.undo_bytes = u64(flat, s + "tx.abort.undo_bytes");
    run.retries = u64(flat, s + "engine.retries");
    run.commits = u64(flat, s + "engine.commits");
    run.batch_windows = u64(flat, s + "commit.batch.windows");
    run.fences_elided = u64(flat, s + "commit.batch.fences_elided");
    run.batch_occupancy_mean =
        num(flat, s + "commit.batch.occupancy.mean");

    run.cp_length = u64(flat, s + "cp.length");
    run.cp_pct = num(flat, s + "cp.pct");
    run.cp_segments = u64(flat, s + "cp.segments");
    run.cp_lock_edges = u64(flat, s + "cp.edges.lock");
    run.cp_ops = children(flat, s + "cp.op.", ".cycles");
    const uint64_t cpl = u64(flat, s + "cp.lock.count");
    for (uint64_t r = 0; r < cpl; ++r) {
        const std::string p = s + "cp.lock." + std::to_string(r) + ".";
        run.cp_locks.emplace_back(u64(flat, p + "key"),
                                  u64(flat, p + "cycles"));
    }
    return run;
}

std::vector<ContentionRun>
extractAllContention(const FlatJson &flat)
{
    std::vector<ContentionRun> out;
    bool sawRuns = false;
    for (size_t i = 0;; ++i) {
        const std::string prefix =
            "runs[" + std::to_string(i) + "].";
        if (!flat.strings.count(prefix + "label") &&
            !has(flat, prefix + "cycles"))
            break;
        sawRuns = true;
        ContentionRun run = extractContention(flat, prefix);
        if (run.present)
            out.push_back(std::move(run));
    }
    if (!sawRuns) {
        // Not a bench report; try the document as one stats object.
        ContentionRun run = extractContention(flat, "");
        if (run.present)
            out.push_back(std::move(run));
    }
    return out;
}

void
renderContentionText(const ContentionRun &run, std::ostream &os)
{
    char buf[256];
    auto line = [&](const char *fmt, auto... args) {
        std::snprintf(buf, sizeof(buf), fmt, args...);
        os << buf << "\n";
    };
    os << "== " << (run.label.empty() ? "(run)" : run.label) << " ==\n";
    line("  makespan %" PRIu64 " cycles on %" PRIu64 " cores",
         run.makespan, run.cores);

    line("  locks: %" PRIu64 " acquisitions, %" PRIu64
         " waits, %" PRIu64 " waits-for edges, %" PRIu64
         " deadlock victims",
         run.lock_acquisitions, run.lock_waits, run.waits_for_edges,
         run.deadlock_victims);
    line("    wait cycles mean %.1f p99 %.0f max %.0f; hold mean %.1f "
         "p99 %.0f max %.0f",
         run.wait_mean, run.wait_p99, run.wait_max, run.hold_mean,
         run.hold_p99, run.hold_max);
    if (!run.top.empty()) {
        line("    %-4s %-18s %10s %12s %12s %10s", "top", "key",
             "waits", "wait_cyc", "hold_cyc", "acq");
        for (size_t r = 0; r < run.top.size(); ++r) {
            const ContentionLock &l = run.top[r];
            line("    #%-3zu 0x%-16" PRIx64 " %10" PRIu64 " %12" PRIu64
                 " %12" PRIu64 " %10" PRIu64,
                 r, l.key, l.waits, l.wait_cycles, l.hold_cycles,
                 l.acquisitions);
        }
    }

    line("  aborts: %" PRIu64 " (%" PRIu64 " retries, %" PRIu64
         " commits); wasted %" PRIu64 " cycles, rolled back %" PRIu64
         " undo bytes",
         run.aborts, run.retries, run.commits, run.wasted_cycles,
         run.undo_bytes);
    line("  group commit: %" PRIu64 " windows, mean occupancy %.2f, "
         "%" PRIu64 " fences elided",
         run.batch_windows, run.batch_occupancy_mean,
         run.fences_elided);

    if (!run.blocked.empty()) {
        os << "  blocked cycles (all cores):";
        for (const auto &[reason, cyc] : run.blocked) {
            std::snprintf(buf, sizeof(buf), " %s=%" PRIu64,
                          reason.c_str(), cyc);
            os << buf;
        }
        os << "\n";
    }

    line("  critical path: %" PRIu64 " cycles (%.1f%% of makespan), "
         "%" PRIu64 " segments, %" PRIu64 " lock edges",
         run.cp_length, 100.0 * run.cp_pct, run.cp_segments,
         run.cp_lock_edges);
    for (const auto &[op, cyc] : run.cp_ops)
        line("    op   %-24s %12" PRIu64 " cycles", op.c_str(), cyc);
    for (size_t r = 0; r < run.cp_locks.size(); ++r)
        line("    lock #%zu 0x%-16" PRIx64 " %12" PRIu64 " cycles", r,
             run.cp_locks[r].first, run.cp_locks[r].second);
}

void
renderContentionJson(const std::vector<ContentionRun> &runs,
                     std::ostream &os)
{
    os << "[";
    for (size_t i = 0; i < runs.size(); ++i) {
        const ContentionRun &r = runs[i];
        os << (i ? ",\n " : "\n ") << "{\"label\": \"";
        jsonEscape(os, r.label);
        os << "\", \"makespan\": " << r.makespan
           << ", \"cores\": " << r.cores << ",\n  \"lock\": {\"waits\": "
           << r.lock_waits << ", \"acquisitions\": "
           << r.lock_acquisitions << ", \"waits_for_edges\": "
           << r.waits_for_edges << ", \"deadlock_victims\": "
           << r.deadlock_victims << ", \"top\": [";
        for (size_t t = 0; t < r.top.size(); ++t) {
            const ContentionLock &l = r.top[t];
            os << (t ? ", " : "") << "{\"key\": " << l.key
               << ", \"waits\": " << l.waits << ", \"wait_cycles\": "
               << l.wait_cycles << ", \"hold_cycles\": "
               << l.hold_cycles << ", \"acquisitions\": "
               << l.acquisitions << "}";
        }
        os << "]},\n  \"abort\": {\"count\": " << r.aborts
           << ", \"retries\": " << r.retries << ", \"commits\": "
           << r.commits << ", \"wasted_cycles\": " << r.wasted_cycles
           << ", \"undo_bytes\": " << r.undo_bytes
           << "},\n  \"commit_batch\": {\"windows\": "
           << r.batch_windows << ", \"fences_elided\": "
           << r.fences_elided << "},\n  \"blocked\": {";
        for (size_t b = 0; b < r.blocked.size(); ++b) {
            os << (b ? ", " : "") << "\"" << r.blocked[b].first
               << "\": " << r.blocked[b].second;
        }
        os << "},\n  \"critical_path\": {\"length\": " << r.cp_length
           << ", \"pct\": " << 100.0 * r.cp_pct << ", \"segments\": "
           << r.cp_segments << ", \"lock_edges\": " << r.cp_lock_edges
           << ", \"ops\": {";
        for (size_t o = 0; o < r.cp_ops.size(); ++o) {
            os << (o ? ", " : "") << "\"";
            jsonEscape(os, r.cp_ops[o].first);
            os << "\": " << r.cp_ops[o].second;
        }
        os << "}, \"locks\": [";
        for (size_t l = 0; l < r.cp_locks.size(); ++l)
            os << (l ? ", " : "") << "{\"key\": " << r.cp_locks[l].first
               << ", \"cycles\": " << r.cp_locks[l].second << "}";
        os << "]}}";
    }
    os << "\n]\n";
}

} // namespace report
} // namespace poat
