/**
 * @file
 * Contention-report extraction and rendering.
 *
 * Turns the concurrency-observability stats a multi-core run exports
 * (src/telemetry/contention.h: "lock.*", "sched.*", "commit.batch.*",
 * "tx.abort.*", "cp.*") back into a digestible report: the top
 * contended locks, the abort/retry summary, the machine-wide blocked
 * breakdown, and the critical path with its top contributors.
 *
 * The extractor consumes a flattened --stats-json document
 * (report::flattenJson), so it works on any bench report regardless of
 * which binary produced it: extractContention() reads one run given
 * its path prefix ("runs[3]." inside a bench report, "" for a bare
 * stats document) and extractAllContention() walks every
 * "runs[i]" record, skipping runs without contention stats
 * (sequential runs never export them). tools/contention_report wraps
 * this as a CLI; bench --contention prints the same text per run.
 */
#ifndef POAT_REPORT_CONTENTION_H
#define POAT_REPORT_CONTENTION_H

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "report/stats_diff.h"

namespace poat {
namespace report {

/** One row of the top-contended-locks table ("lock.top.<r>.*"). */
struct ContentionLock
{
    uint64_t key = 0;
    uint64_t waits = 0;
    uint64_t wait_cycles = 0;
    uint64_t hold_cycles = 0;
    uint64_t acquisitions = 0;
};

/** Contention stats of one run, extracted from a flattened report. */
struct ContentionRun
{
    std::string label;    ///< runs[i].label ("" for bare documents)
    bool present = false; ///< run exported contention stats at all

    uint64_t makespan = 0; ///< core.cycles (max over core clocks)
    uint64_t cores = 0;    ///< sched.core.<i>.* lanes found

    /// @name lock.*
    /// @{
    uint64_t lock_waits = 0;
    uint64_t lock_acquisitions = 0;
    uint64_t waits_for_edges = 0;
    uint64_t deadlock_victims = 0;
    double wait_mean = 0, wait_p99 = 0, wait_max = 0;
    double hold_mean = 0, hold_p99 = 0, hold_max = 0;
    std::vector<ContentionLock> top; ///< by wait cycles, descending
    /// @}

    /// @name tx.abort.* / commit.batch.*
    /// @{
    uint64_t aborts = 0;
    uint64_t wasted_cycles = 0;
    uint64_t undo_bytes = 0;
    uint64_t retries = 0; ///< engine.retries (functional twin)
    uint64_t commits = 0; ///< engine.commits
    uint64_t batch_windows = 0;
    uint64_t fences_elided = 0;
    double batch_occupancy_mean = 0;
    /// @}

    /// Machine-wide blocked cycles by reason ("sched.blocked.<r>"),
    /// in blockReasonName order where present.
    std::vector<std::pair<std::string, uint64_t>> blocked;

    /// @name cp.* (critical path)
    /// @{
    uint64_t cp_length = 0;
    double cp_pct = 0; ///< cp.length / makespan
    uint64_t cp_segments = 0;
    uint64_t cp_lock_edges = 0;
    std::vector<std::pair<std::string, uint64_t>> cp_ops;
    std::vector<std::pair<uint64_t, uint64_t>> cp_locks; ///< key, cycles
    /// @}
};

/**
 * Extract one run's contention stats from @p flat. @p prefix is the
 * flattened path up to (and including) the dot before "stats", e.g.
 * "runs[3]." for a bench report or "" for a document whose top level
 * is the stats object itself. Returns present=false when the run
 * carries no "stats.lock.acquisitions" leaf.
 */
ContentionRun extractContention(const FlatJson &flat,
                                const std::string &prefix);

/**
 * Extract every "runs[i]" record of a bench report, in index order,
 * keeping only runs with contention stats. Falls back to treating the
 * whole document as one bare stats object when it has no runs[] array.
 */
std::vector<ContentionRun> extractAllContention(const FlatJson &flat);

/** Render one run's report as human-readable text. */
void renderContentionText(const ContentionRun &run, std::ostream &os);

/** Render runs as a JSON array (machine-readable report). */
void renderContentionJson(const std::vector<ContentionRun> &runs,
                          std::ostream &os);

} // namespace report
} // namespace poat

#endif // POAT_REPORT_CONTENTION_H
