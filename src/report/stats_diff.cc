/** @file Implementation of the --stats-json tolerance diff. */
#include "report/stats_diff.h"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace poat {
namespace report {

namespace {

/** Recursive-descent parser over a complete JSON document, emitting
 *  leaves into a FlatJson as it goes. */
class Parser
{
  public:
    Parser(const std::string &text, FlatJson &out)
        : begin_(text.data()), p_(text.data()),
          end_(text.data() + text.size()), out_(out)
    {
    }

    void
    run()
    {
        ws();
        value("");
        ws();
        if (p_ != end_)
            fail("trailing content after document");
    }

  private:
    void
    ws()
    {
        while (p_ != end_ &&
               (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r'))
            ++p_;
    }

    [[noreturn]] void
    fail(const std::string &what)
    {
        throw std::runtime_error(
            "malformed JSON at byte " +
            std::to_string(static_cast<size_t>(p_ - begin_)) + ": " +
            what);
    }

    char
    peek()
    {
        if (p_ == end_)
            fail("unexpected end of input");
        return *p_;
    }

    void
    expect(char c)
    {
        if (p_ == end_ || *p_ != c)
            fail(std::string("expected '") + c + "'");
        ++p_;
    }

    bool
    consume(const char *lit)
    {
        const char *q = p_;
        for (const char *l = lit; *l; ++l, ++q)
            if (q == end_ || *q != *l)
                return false;
        p_ = q;
        return true;
    }

    void
    value(const std::string &path)
    {
        switch (peek()) {
        case '{':
            object(path);
            return;
        case '[':
            array(path);
            return;
        case '"':
            out_.strings[path] = string();
            return;
        case 't':
            if (!consume("true"))
                fail("bad literal");
            out_.numbers[path] = 1;
            return;
        case 'f':
            if (!consume("false"))
                fail("bad literal");
            out_.numbers[path] = 0;
            return;
        case 'n':
            if (!consume("null"))
                fail("bad literal");
            return; // nulls carry no value
        default:
            out_.numbers[path] = number();
            return;
        }
    }

    void
    object(const std::string &path)
    {
        expect('{');
        ws();
        if (peek() == '}') {
            ++p_;
            return;
        }
        for (;;) {
            ws();
            const std::string key = string();
            ws();
            expect(':');
            ws();
            value(path.empty() ? key : path + "." + key);
            ws();
            if (peek() == ',') {
                ++p_;
                continue;
            }
            expect('}');
            return;
        }
    }

    void
    array(const std::string &path)
    {
        expect('[');
        ws();
        if (peek() == ']') {
            ++p_;
            return;
        }
        for (size_t i = 0;; ++i) {
            ws();
            value(path + "[" + std::to_string(i) + "]");
            ws();
            if (peek() == ',') {
                ++p_;
                continue;
            }
            expect(']');
            return;
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string s;
        while (p_ != end_ && *p_ != '"') {
            if (*p_ == '\\') {
                ++p_;
                if (p_ == end_)
                    fail("unterminated escape");
                switch (*p_) {
                case '"': s += '"'; break;
                case '\\': s += '\\'; break;
                case '/': s += '/'; break;
                case 'b': s += '\b'; break;
                case 'f': s += '\f'; break;
                case 'n': s += '\n'; break;
                case 'r': s += '\r'; break;
                case 't': s += '\t'; break;
                case 'u':
                    // Keep the raw sequence: the diff only needs
                    // equality, not decoded code points.
                    s += "\\u";
                    for (int k = 0; k < 4; ++k) {
                        if (++p_ == end_)
                            fail("truncated \\u escape");
                        s += *p_;
                    }
                    break;
                default:
                    fail("bad escape");
                }
                ++p_;
            } else {
                s += *p_++;
            }
        }
        expect('"');
        return s;
    }

    double
    number()
    {
        char *after = nullptr;
        const double v = std::strtod(p_, &after);
        if (after == p_)
            fail("expected a value");
        p_ = after;
        return v;
    }

    const char *begin_;
    const char *p_;
    const char *end_;
    FlatJson &out_;
};

} // namespace

FlatJson
flattenJson(const std::string &text)
{
    FlatJson out;
    Parser(text, out).run();
    return out;
}

double
relativeDeviation(double a, double b)
{
    if (a == b)
        return 0;
    const double scale = std::max(std::fabs(a), std::fabs(b));
    return std::fabs(a - b) / scale;
}

double
toleranceFor(const std::string &path, const DiffOptions &opt)
{
    double tol = opt.tolerance;
    size_t best = 0;
    for (const auto &[prefix, t] : opt.overrides) {
        if (prefix.size() >= best &&
            path.compare(0, prefix.size(), prefix) == 0) {
            best = prefix.size();
            tol = t;
        }
    }
    return tol;
}

DiffResult
diffStats(const FlatJson &baseline, const FlatJson &candidate,
          const DiffOptions &opt)
{
    DiffResult res;

    for (const auto &[path, a] : baseline.numbers) {
        const auto it = candidate.numbers.find(path);
        if (it == candidate.numbers.end()) {
            res.only_baseline.push_back(path);
            continue;
        }
        ++res.compared;
        MetricDelta d;
        d.path = path;
        d.baseline = a;
        d.candidate = it->second;
        d.deviation = relativeDeviation(a, it->second);
        d.tolerance = toleranceFor(path, opt);
        d.regressed = d.deviation > d.tolerance;
        if (d.regressed)
            res.regressions.push_back(std::move(d));
    }
    for (const auto &[path, b] : candidate.numbers) {
        (void)b;
        if (!baseline.numbers.count(path))
            res.only_candidate.push_back(path);
    }

    for (const auto &[path, a] : baseline.strings) {
        const auto it = candidate.strings.find(path);
        if (it == candidate.strings.end())
            res.only_baseline.push_back(path);
        else if (it->second != a)
            res.mismatched_strings.push_back(path);
    }
    for (const auto &[path, b] : candidate.strings) {
        (void)b;
        if (!baseline.strings.count(path))
            res.only_candidate.push_back(path);
    }

    return res;
}

} // namespace report
} // namespace poat
