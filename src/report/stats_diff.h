/**
 * @file
 * Tolerance-band comparison of two --stats-json reports.
 *
 * Every bench binary can emit a machine-readable JSON report
 * (bench/bench_util.h, documented in docs/OBSERVABILITY.md). This
 * module flattens two such reports into metric paths
 * ("runs[3].stats.core.cpi.pot_walk", "summary.geomean_random") and
 * compares every numeric leaf under a symmetric relative tolerance:
 *
 *     deviation(a, b) = |a - b| / max(|a|, |b|)   (0 when both are 0)
 *
 * A metric regresses when its deviation exceeds its band — the default
 * --tolerance, or the longest matching path-prefix override. String
 * leaves (labels, config names) must match exactly and metrics present
 * on only one side are structural mismatches, so diffing reports from
 * different benches fails loudly instead of comparing nothing.
 *
 * tools/stats_diff wraps this as the CI perf-regression gate: exit 0
 * when every metric is within band, 1 on any regression, 2 on bad
 * input. The simulator is deterministic, so nightly BENCH_<date>.json
 * snapshots diff against a golden with tolerance 0 for counters and a
 * small band for derived rates.
 */
#ifndef POAT_REPORT_STATS_DIFF_H
#define POAT_REPORT_STATS_DIFF_H

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace poat {
namespace report {

/** A JSON document flattened to its leaves: numbers (booleans as 0/1)
 *  and strings, keyed by path. Nulls are dropped. */
struct FlatJson
{
    std::map<std::string, double> numbers;
    std::map<std::string, std::string> strings;
};

/**
 * Flatten @p text (a complete JSON document) into leaf paths. Object
 * members join with '.', array elements with "[i]".
 * @throws std::runtime_error on malformed input, with byte offset.
 */
FlatJson flattenJson(const std::string &text);

struct DiffOptions
{
    /** Default relative tolerance band for every numeric metric. */
    double tolerance = 0.05;
    /** Path-prefix overrides; the longest matching prefix wins.
     *  ("runs", 0.0) pins every per-run counter exactly while the
     *  default band still covers derived summary rates. */
    std::vector<std::pair<std::string, double>> overrides;
    /** Tolerate metrics present on only one side (default: fail). */
    bool ignore_missing = false;
};

/** One compared numeric metric. */
struct MetricDelta
{
    std::string path;
    double baseline = 0;
    double candidate = 0;
    double deviation = 0; ///< symmetric relative deviation
    double tolerance = 0; ///< band this metric was held to
    bool regressed = false;
};

struct DiffResult
{
    std::vector<MetricDelta> regressions; ///< metrics out of band
    std::vector<std::string> mismatched_strings;
    std::vector<std::string> only_baseline;  ///< paths missing from candidate
    std::vector<std::string> only_candidate; ///< paths missing from baseline
    size_t compared = 0; ///< numeric metrics present on both sides

    bool
    ok(bool ignore_missing = false) const
    {
        return regressions.empty() && mismatched_strings.empty() &&
            (ignore_missing ||
             (only_baseline.empty() && only_candidate.empty()));
    }
};

/** Symmetric relative deviation between two values. */
double relativeDeviation(double a, double b);

/** The band @p path is held to under @p opt. */
double toleranceFor(const std::string &path, const DiffOptions &opt);

/** Compare two flattened reports. */
DiffResult diffStats(const FlatJson &baseline, const FlatJson &candidate,
                     const DiffOptions &opt = {});

} // namespace report
} // namespace poat

#endif // POAT_REPORT_STATS_DIFF_H
