/**
 * @file
 * Concurrency observability: lock contention, blocked-cycle
 * attribution, commit-window occupancy, and critical-path extraction.
 *
 * A ContentionProfiler consumes the concurrency observer events the
 * runtime stack emits (TraceSink::lockWait/lockAcquired/lockReleased/
 * lockDeadlock/workerDone/commitJoin/commitBatch/coreSwitch/opSet) and
 * turns them into the `lock.*`, `sched.*`, `commit.batch.*`,
 * `tx.abort.*`, and `cp.*` stats subtrees (docs/OBSERVABILITY.md).
 * The profiler is a pure observer: it is fed by events that carry no
 * instructions and no cycles, so timing, metrics, and every
 * pre-existing stat are bit-identical with or without it.
 *
 * Time bases. Events are stamped with two clocks:
 *  - "makespan" cycles: max over the per-core clocks at the event, the
 *    monotone global clock of the deterministic schedule. Lock *wait*
 *    spans, commit-window waits, blocked-cycle attribution, and
 *    critical-path segment lengths use it (a waiting worker's own core
 *    clock is frozen, so its local clock cannot measure a wait; and
 *    core clocks desync at lock handoffs — grants follow the token
 *    order, not the simulated-clock order — so only the monotone
 *    makespan clock orders cross-core dependency edges correctly).
 *  - core-local cycles: the event core's own clock. Lock *hold* spans
 *    use it (work done while holding a lock is local work).
 *
 * Blocked-cycle attribution. Between two scheduling events exactly one
 * core runs; the makespan growth over that gap is charged to the
 * running core as `sched.core.<i>.running` and to every other core as
 * `sched.core.<i>.blocked.<reason>` under the core's current blocking
 * reason: lock_wait (an open lock wait), commit_wait (joined a commit
 * window that has not closed), idle_done (its worker finished), or
 * token_wait (otherwise: waiting for the scheduler token). By
 * construction, for every core, running + the four blocked counters
 * sum exactly to the makespan at export — asserted in tests.
 *
 * Critical path. The run is cut into per-core segments at core
 * switches, lock grants, lock releases, and op changes. Each segment
 * depends on its core predecessor and — when it begins at a lock
 * grant — on the segment that last released that key. Segment lengths
 * are makespan deltas: the scheduler is cooperative, so exactly one
 * segment is open at any instant and the segments tile [0, makespan]
 * with disjoint windows, which makes any dependency chain — and thus
 * the longest path (`cp.length`) — at most the makespan. `cp.pct`
 * relates it to the makespan, and the backtracked path attributes its
 * cycles to ops (`cp.op.<name>.cycles`) and to the lock keys whose
 * cross-core edges it rode (`cp.lock.<rank>.*`).
 */
#ifndef POAT_TELEMETRY_CONTENTION_H
#define POAT_TELEMETRY_CONTENTION_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace poat {

class StatsRegistry;

namespace telemetry {

/** Why a non-running core is not making progress. */
enum class BlockReason : uint8_t
{
    TokenWait,  ///< runnable, waiting for the scheduler token
    LockWait,   ///< blocked in LockManager::acquire
    CommitWait, ///< joined a commit window that has not closed yet
    IdleDone,   ///< its worker returned from the engine body
};

inline constexpr uint32_t kBlockReasons = 4;

/** Stat-key name of @p r ("lock_wait", "token_wait", ...). */
const char *blockReasonName(BlockReason r);

/** Lock-stripe count for the `lock.stripe.<i>.*` histograms. */
inline constexpr uint32_t kLockStripes = 16;

/** Rows in the `lock.top.<rank>.*` most-contended table. */
inline constexpr uint32_t kLockTopK = 8;

/** Rows in the `cp.lock.<rank>.*` critical-path lock table. */
inline constexpr uint32_t kCpTopLocks = 3;

/** Event-fed contention/blocking/critical-path profiler. */
class ContentionProfiler
{
  public:
    /**
     * True once any concurrency event (core switch, lock, commit,
     * worker lifecycle) was seen. Machines gate stats export on this so
     * purely sequential runs keep their exact pre-existing stats
     * schema (golden baselines). opSet/opName/txAborted alone do not
     * activate the profiler — sequential runs emit those too.
     */
    bool active() const { return active_; }

    /// @name Event feed (called by sim::Machine's TraceSink overrides)
    /// @{

    /**
     * Core @p core becomes the active core; @p prev was active.
     * @p makespan is the global clock at the switch.
     */
    void coreSwitchIn(uint32_t core, uint32_t prev, uint64_t makespan);

    /** Interning announcement (for `lock.op.*` / `cp.op.*` names). */
    void opName(uint32_t op, std::string name);

    /** The active core switched to workload op @p op. */
    void opSet(uint32_t core, uint32_t op, uint64_t makespan);

    void lockWait(uint32_t core, uint64_t key, uint8_t mode,
                  uint32_t edges, uint64_t makespan);
    void lockAcquired(uint32_t core, uint64_t key, uint64_t local,
                      uint64_t makespan);
    void lockReleased(uint32_t core, uint64_t key, uint64_t local,
                      uint64_t makespan);
    void lockDeadlock(uint32_t core, uint64_t key, uint64_t makespan);
    void workerDone(uint32_t core, uint64_t makespan);
    void commitJoin(uint32_t core, uint64_t makespan);
    void commitBatch(uint32_t members, uint32_t elided,
                     uint64_t makespan);

    /** A transaction rolled back after @p wasted core-local cycles. */
    void txAborted(uint64_t wasted);
    /// @}

    /**
     * Blocked cycles charged to (@p core, @p r) so far. Not settled to
     * "now" — exact after exportInto(), approximate between events.
     * Cheap enough for timeline gauges.
     */
    uint64_t blockedCycles(uint32_t core, BlockReason r) const;

    /**
     * Sync every contention stat into @p reg: settles blocked-cycle
     * attribution up to @p makespan, virtually closes the open
     * critical-path segment there, and (re)assigns the `lock.*`,
     * `sched.*`, `commit.batch.*`, `tx.abort.*`, and `cp.*` entries.
     * Idempotent: calling twice with the same clock exports the same
     * values.
     */
    void exportInto(StatsRegistry &reg, uint64_t makespan);

  private:
    /** Per-core scheduler/attribution state. */
    struct CoreInfo
    {
        BlockReason reason = BlockReason::TokenWait;
        uint64_t running = 0; ///< makespan growth while active
        uint64_t blocked[kBlockReasons] = {};
        uint64_t waitStart = 0;    ///< makespan at lockWait
        uint32_t waitOp = 0;       ///< op at lockWait
        uint64_t waitKey = 0;      ///< key being waited for
        bool waiting = false;      ///< an open wait span exists
        uint64_t joinM = 0;        ///< makespan at commitJoin
        bool joined = false;       ///< inside an open commit window
        uint32_t curOp = 0;        ///< last opSet on this core
        int64_t openSeg = -1;      ///< index into segs_, -1 if none
        uint64_t segStart = 0; ///< makespan at open-segment start
        int64_t lastSeg = -1;      ///< last closed segment on this core
    };

    /** One critical-path DAG node (closed segment). */
    struct Segment
    {
        uint32_t core = 0;
        uint32_t op = 0;
        uint64_t len = 0;      ///< makespan cycles
        int64_t pred = -1;     ///< previous segment on the same core
        int64_t joinPred = -1; ///< segment that last released joinKey
        uint64_t joinKey = 0;  ///< meaningful iff joinPred >= 0
    };

    /** Exact per-key contention record (top-K table source). */
    struct KeyStats
    {
        uint64_t waits = 0;
        uint64_t wait_cycles = 0;
        uint64_t hold_cycles = 0;
        uint64_t acquisitions = 0;
    };

    CoreInfo &core(uint32_t c);

    /** Charge makespan growth up to @p makespan (running + blocked). */
    void settle(uint64_t makespan);

    /** Close @p c's open segment at makespan clock @p makespan. */
    void endSegment(uint32_t c, uint64_t makespan);

    /** Open a new segment on @p c starting at @p makespan. */
    void beginSegment(uint32_t c, uint64_t makespan,
                      int64_t joinPred = -1, uint64_t joinKey = 0);

    /** Extend pathEnd_ over segments closed since the last export. */
    void computePath();

    bool active_ = false;
    uint32_t activeCore_ = 0;
    uint64_t lastM_ = 0; ///< makespan at the last settle point
    std::vector<CoreInfo> cores_;
    std::map<uint32_t, std::string> opNames_;

    // Lock contention.
    Histogram waitAll_, holdAll_;
    Histogram waitStripe_[kLockStripes];
    Histogram holdStripe_[kLockStripes];
    std::map<uint32_t, Histogram> waitByOp_; ///< op id -> wait hist
    std::map<uint64_t, KeyStats> byKey_;
    /** key -> (holder core, local clock at grant); Shared keeps the
     *  most recent grant (hold spans nest arbitrarily otherwise). */
    std::map<uint64_t, std::pair<uint32_t, uint64_t>> holds_;
    uint64_t lockWaits_ = 0;
    uint64_t lockAcquired_ = 0;
    uint64_t waitsForEdges_ = 0;
    uint64_t deadlockVictims_ = 0;

    // Commit windows.
    Histogram batchOccupancy_, batchWait_;
    uint64_t batches_ = 0;
    uint64_t fencesElided_ = 0;

    // Aborted work.
    Histogram abortWasted_;
    uint64_t aborts_ = 0;

    // Critical path.
    std::vector<Segment> segs_;
    std::vector<uint64_t> pathEnd_; ///< DP values, parallel to segs_
    std::map<uint64_t, int64_t> lastRelease_; ///< key -> releasing seg
    size_t pathComputed_ = 0; ///< segs_ prefix with pathEnd_ done
};

} // namespace telemetry
} // namespace poat

#endif // POAT_TELEMETRY_CONTENTION_H
