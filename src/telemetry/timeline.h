/**
 * @file
 * Interval telemetry: the "poat-timeline v2" format.
 *
 * A TimelineSampler turns the run's end-of-run aggregates into a time
 * series: every N cycles it snapshots the full StatsRegistry counter
 * set (CPI-stack components flattened in) and a set of live occupancy
 * gauges, and appends the *delta* since the previous sample to a
 * compact varint-encoded stream. The sampler is a pure observer — it
 * only reads already-synced stats and never touches core, cache, or
 * translation state — so attaching one leaves cycles, instructions,
 * and every aggregate stat bit-identical to an unsampled run (the
 * equivalence tests assert this).
 *
 * File layout (all fixed-width integers little-endian):
 *
 *   offset 0   magic "poattlv2" (8 bytes)
 *          8   u32 format version (2)
 *         12   u64 sampling interval (cycles)
 *         20   u64 sample count      (patched by finish())
 *         28   u32 counter series count
 *         32   u32 gauge series count
 *         36   u32 simulated core count (v2; 0 if never set)
 *         40   series names, counters then gauges, each varint length
 *              + raw bytes
 *          .   samples, appended as they are taken: varint end_cycle,
 *              one zigzag varint delta per counter series, one varint
 *              absolute value per gauge series
 *
 * v2 added the core-count header field and per-core lanes: multi-core
 * registries contribute "core.<i>.*" counter series (CPI deltas
 * included) and the machine can register per-core blocked-reason
 * gauges; dumpChrome() groups each core's series under its own Chrome
 * trace process so viewers render one lane per core. v1 files are not
 * read (timelines are transient run outputs, not cached artifacts).
 *
 * Sampling semantics: the sampler fires on the first event boundary at
 * or past each multiple of N. An event that jumps several multiples
 * emits the accumulated delta on the first crossed boundary and
 * zero-delta rows for the rest, and finish() appends a final partial
 * row for the tail, so a run of C cycles always yields exactly
 * ceil(C / N) rows and the per-row core.cpi.* deltas each sum to the
 * row's core.cycles delta.
 *
 * The counter schema is frozen at the first sample (the registry's
 * fixed counter set plus "<stack>.<component>" for every CPI stack);
 * counters that first appear later in the run are not retrofitted.
 * Later samples match the registry BY NAME against the frozen schema,
 * so mid-run registrations (the contention profiler's lock.top.* /
 * cp.* tables grow as the run contends) cannot shift the frozen
 * series' positions.
 */
#ifndef POAT_TELEMETRY_TIMELINE_H
#define POAT_TELEMETRY_TIMELINE_H

#include <cstdint>
#include <cstdio>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/logging.h"

namespace poat {

class StatsRegistry;

namespace telemetry {

/** File magic, first 8 bytes of every poat-timeline file. */
inline constexpr char kTimelineMagic[8] = {'p', 'o', 'a', 't',
                                           't', 'l', 'v', '2'};

/** Format version this build reads and writes. */
inline constexpr uint32_t kTimelineVersion = 2;

/** Bytes before the series names (magic + version + 5 fixed fields). */
inline constexpr size_t kTimelineHeaderSize = 40;

/** Cycle-driven delta sampler writing a poat-timeline v2 file. */
class TimelineSampler
{
  public:
    /**
     * @param interval Cycles per sample; must be nonzero.
     * @param path     Final path of the timeline file.
     * @throws std::runtime_error if the file cannot be created.
     */
    TimelineSampler(uint64_t interval, std::string path);
    ~TimelineSampler();

    TimelineSampler(const TimelineSampler &) = delete;
    TimelineSampler &operator=(const TimelineSampler &) = delete;

    /**
     * Bind the registry the sampler snapshots. The callable must sync
     * the registry's counters before returning it (sim::Machine::stats
     * does) and stay valid until finish().
     */
    void setStatsSource(std::function<const StatsRegistry &()> source)
    {
        source_ = std::move(source);
    }

    /**
     * Register a live occupancy gauge, sampled absolutely (not as a
     * delta). Registration order fixes the series order in the file;
     * all gauges must be registered before the first sample fires.
     */
    void addGauge(std::string name, std::function<uint64_t()> fn);

    /**
     * Record the simulated core count in the header (v2 field; the
     * machine sets it at attach). Must precede the first sample.
     */
    void setCores(uint32_t cores)
    {
        POAT_ASSERT(!schemaWritten_,
                    "timeline core count must be set before sampling");
        cores_ = cores;
    }

    /**
     * Cycle notification from the machine's event handlers: samples
     * once per crossed interval boundary. Cheap when no boundary was
     * crossed (one compare).
     */
    void
    tick(uint64_t now_cycles)
    {
        if (now_cycles >= next_)
            crossBoundaries(now_cycles);
    }

    /**
     * Take the final partial sample (if any cycles are unsampled),
     * patch the header, and close the file. Idempotent.
     * @throws std::runtime_error on I/O failure.
     */
    void finish(uint64_t now_cycles);

    /** Samples written so far. */
    uint64_t samples() const { return samples_; }

  private:
    /** Emit one row per multiple of the interval at or below @p now. */
    void crossBoundaries(uint64_t now_cycles);

    /** Freeze the series schema and write the file header. */
    void writeSchema();

    /** Snapshot the registry + gauges and append one delta row. */
    void sample(uint64_t end_cycle);

    /** Append a zero-delta row labelled @p end_cycle. */
    void emptySample(uint64_t end_cycle);

    void appendRow(uint64_t end_cycle,
                   const std::vector<uint64_t> &values,
                   const std::vector<uint64_t> &gauges);

    uint64_t interval_;
    uint64_t next_;
    std::string path_;
    std::FILE *f_ = nullptr;
    std::function<const StatsRegistry &()> source_;
    std::vector<std::string> counterNames_;
    size_t plainCounters_ = 0; ///< schema prefix from counters();
                               ///< the rest are CPI components
    std::vector<std::string> gaugeNames_;
    std::vector<std::function<uint64_t()>> gaugeFns_;
    std::vector<uint64_t> prev_; ///< previous counter snapshot
    uint64_t samples_ = 0;
    uint32_t cores_ = 0;
    bool schemaWritten_ = false;
    bool finished_ = false;
};

/** One decoded timeline row. */
struct TimelineSample
{
    uint64_t end_cycle = 0;
    std::vector<int64_t> deltas;  ///< one per counter series
    std::vector<uint64_t> gauges; ///< one per gauge series
};

/** Reader of a poat-timeline v2 file. */
class TimelineReader
{
  public:
    /**
     * Read and validate @p path.
     * @throws std::runtime_error naming the file and the defect.
     */
    explicit TimelineReader(const std::string &path);

    uint64_t interval() const { return interval_; }

    /** Simulated cores recorded in the header (0 if never set). */
    uint32_t cores() const { return cores_; }

    const std::vector<std::string> &counterNames() const
    {
        return counterNames_;
    }
    const std::vector<std::string> &gaugeNames() const
    {
        return gaugeNames_;
    }
    const std::vector<TimelineSample> &samples() const { return samples_; }

  private:
    uint64_t interval_ = 0;
    uint32_t cores_ = 0;
    std::vector<std::string> counterNames_;
    std::vector<std::string> gaugeNames_;
    std::vector<TimelineSample> samples_;
};

/** Write the timeline as CSV: end_cycle, counter deltas, gauges. */
void dumpCsv(const TimelineReader &tl, std::ostream &os);

/** Write the timeline as a JSON document (schema + sample rows). */
void dumpJson(const TimelineReader &tl, std::ostream &os);

/**
 * Write Chrome-trace counter events ("ph":"C", chrome://tracing /
 * Perfetto): one counter track per series, with the components of each
 * CPI stack merged into a single multi-value track so the viewer
 * stacks them.
 */
void dumpChrome(const TimelineReader &tl, std::ostream &os);

} // namespace telemetry
} // namespace poat

#endif // POAT_TELEMETRY_TIMELINE_H
