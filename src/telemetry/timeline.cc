#include "telemetry/timeline.h"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/logging.h"
#include "common/stats.h"

namespace poat {
namespace telemetry {

namespace {

void
putLe32(uint8_t *out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<uint8_t>(v >> (8 * i));
}

void
putLe64(uint8_t *out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t
getLe32(const uint8_t *in)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(in[i]) << (8 * i);
    return v;
}

uint64_t
getLe64(const uint8_t *in)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(in[i]) << (8 * i);
    return v;
}

void
appendVarint(std::vector<uint8_t> &buf, uint64_t v)
{
    while (v >= 0x80) {
        buf.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    buf.push_back(static_cast<uint8_t>(v));
}

/** Zigzag: small magnitudes of either sign encode small. */
uint64_t
zigzag(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
        static_cast<uint64_t>(v >> 63);
}

int64_t
unzigzag(uint64_t z)
{
    return static_cast<int64_t>(z >> 1) ^ -static_cast<int64_t>(z & 1);
}

[[noreturn]] void
badFile(const std::string &path, const std::string &why)
{
    throw std::runtime_error("poat-timeline: " + path + ": " + why);
}

uint64_t
readVarint(const std::string &path, const std::vector<uint8_t> &d,
           size_t *pos)
{
    uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        if (*pos >= d.size())
            badFile(path, "truncated varint");
        const uint8_t byte = d[(*pos)++];
        v |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return v;
    }
    badFile(path, "varint exceeds 64 bits");
}

} // namespace

// --------------------------------------------------------------------
// TimelineSampler

TimelineSampler::TimelineSampler(uint64_t interval, std::string path)
    : interval_(interval), next_(interval), path_(std::move(path))
{
    POAT_ASSERT(interval_ > 0, "timeline interval must be nonzero");
    f_ = std::fopen(path_.c_str(), "wb");
    if (!f_)
        badFile(path_, "cannot create timeline file");
}

TimelineSampler::~TimelineSampler()
{
    if (f_) {
        std::fclose(f_);
        f_ = nullptr;
    }
}

void
TimelineSampler::addGauge(std::string name, std::function<uint64_t()> fn)
{
    POAT_ASSERT(!schemaWritten_,
                "timeline gauges must be registered before sampling");
    gaugeNames_.push_back(std::move(name));
    gaugeFns_.push_back(std::move(fn));
}

void
TimelineSampler::writeSchema()
{
    POAT_ASSERT(source_, "timeline sampler has no stats source");
    const StatsRegistry &reg = source_();
    for (const auto &[name, value] : reg.counters()) {
        (void)value;
        counterNames_.push_back(name);
    }
    plainCounters_ = counterNames_.size();
    for (const auto &[name, stack] : reg.cpiStacks()) {
        (void)stack;
        for (size_t c = 0; c < kCpiComponents; ++c)
            counterNames_.push_back(
                name + "." +
                cpiComponentName(static_cast<CpiComponent>(c)));
    }
    prev_.assign(counterNames_.size(), 0);

    uint8_t header[kTimelineHeaderSize] = {};
    std::memcpy(header, kTimelineMagic, sizeof(kTimelineMagic));
    putLe32(header + 8, kTimelineVersion);
    putLe64(header + 12, interval_);
    // Sample count at offset 20 is patched by finish(); leave zeros.
    putLe32(header + 28, static_cast<uint32_t>(counterNames_.size()));
    putLe32(header + 32, static_cast<uint32_t>(gaugeNames_.size()));
    putLe32(header + 36, cores_);

    std::vector<uint8_t> buf(header, header + kTimelineHeaderSize);
    for (const auto *names : {&counterNames_, &gaugeNames_}) {
        for (const std::string &n : *names) {
            appendVarint(buf, n.size());
            buf.insert(buf.end(), n.begin(), n.end());
        }
    }
    if (std::fwrite(buf.data(), 1, buf.size(), f_) != buf.size())
        badFile(path_, "cannot write timeline header");
    schemaWritten_ = true;
}

void
TimelineSampler::appendRow(uint64_t end_cycle,
                           const std::vector<uint64_t> &values,
                           const std::vector<uint64_t> &gauges)
{
    std::vector<uint8_t> buf;
    appendVarint(buf, end_cycle);
    for (size_t i = 0; i < prev_.size(); ++i) {
        const int64_t delta = values.empty()
            ? 0
            : static_cast<int64_t>(values[i]) -
                static_cast<int64_t>(prev_[i]);
        appendVarint(buf, zigzag(delta));
    }
    for (uint64_t g : gauges)
        appendVarint(buf, g);
    if (!values.empty())
        prev_ = values;
    if (std::fwrite(buf.data(), 1, buf.size(), f_) != buf.size())
        badFile(path_, "short write while sampling");
    ++samples_;
}

void
TimelineSampler::sample(uint64_t end_cycle)
{
    if (!schemaWritten_)
        writeSchema();
    const StatsRegistry &reg = source_();
    // Match the registry against the frozen schema BY NAME: the
    // registry is append-only but sorted, so a counter registered
    // after the schema froze (the contention tables grow mid-run)
    // lands in the middle of the map — a positional copy would shift
    // every later series. The frozen names are a sorted subsequence of
    // the current map, so one linear merge recovers them.
    std::vector<uint64_t> values(counterNames_.size(), 0);
    size_t i = 0;
    for (auto it = reg.counters().begin();
         i < plainCounters_ && it != reg.counters().end(); ++it) {
        if (it->first == counterNames_[i])
            values[i++] = it->second;
    }
    POAT_ASSERT(i == plainCounters_,
                "stats registry lost counters mid-run");
    for (const auto &[name, stack] : reg.cpiStacks()) {
        if (i >= counterNames_.size())
            break;
        // A stack is in the schema wholesale or (registered after the
        // freeze) not at all; its first component name decides.
        if (counterNames_[i].rfind(name + ".", 0) != 0)
            continue;
        for (uint64_t c : stack.cycles)
            values[i++] = c;
    }
    POAT_ASSERT(i == counterNames_.size(),
                "stats registry lost CPI stacks mid-run");
    std::vector<uint64_t> gauges;
    gauges.reserve(gaugeFns_.size());
    for (const auto &fn : gaugeFns_)
        gauges.push_back(fn());
    appendRow(end_cycle, values, gauges);
}

void
TimelineSampler::emptySample(uint64_t end_cycle)
{
    std::vector<uint64_t> gauges;
    gauges.reserve(gaugeFns_.size());
    for (const auto &fn : gaugeFns_)
        gauges.push_back(fn());
    appendRow(end_cycle, {}, gauges);
}

void
TimelineSampler::crossBoundaries(uint64_t now_cycles)
{
    // The event that crossed one or more interval boundaries carries
    // the whole accumulated delta; further boundaries it jumped in the
    // same step get zero-delta rows so rows map 1:1 to intervals.
    sample(next_);
    next_ += interval_;
    while (now_cycles >= next_) {
        emptySample(next_);
        next_ += interval_;
    }
}

void
TimelineSampler::finish(uint64_t now_cycles)
{
    if (finished_)
        return;
    if (now_cycles >= next_)
        crossBoundaries(now_cycles);
    const uint64_t sampled = next_ - interval_; // last labelled boundary
    if (now_cycles > sampled || samples_ == 0)
        sample(now_cycles);

    uint8_t patch[8];
    putLe64(patch, samples_);
    const bool ok = std::fseek(f_, 20, SEEK_SET) == 0 &&
        std::fwrite(patch, 1, sizeof(patch), f_) == sizeof(patch) &&
        std::fclose(f_) == 0;
    f_ = nullptr;
    finished_ = true;
    if (!ok)
        badFile(path_, "cannot finalize timeline file");
}

// --------------------------------------------------------------------
// TimelineReader

TimelineReader::TimelineReader(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        badFile(path, "cannot open timeline file");
    std::fseek(f, 0, SEEK_END);
    const long end = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> file(end > 0 ? static_cast<size_t>(end) : 0);
    const size_t got = file.empty()
        ? 0
        : std::fread(file.data(), 1, file.size(), f);
    std::fclose(f);
    if (got != file.size())
        badFile(path, "cannot read timeline file");

    if (file.size() < kTimelineHeaderSize)
        badFile(path, "truncated header");
    if (std::memcmp(file.data(), kTimelineMagic,
                    sizeof(kTimelineMagic)) != 0)
        badFile(path, "not a poat-timeline file (bad magic)");
    const uint32_t version = getLe32(file.data() + 8);
    if (version != kTimelineVersion)
        badFile(path,
                "unsupported format version " + std::to_string(version));
    interval_ = getLe64(file.data() + 12);
    const uint64_t sample_count = getLe64(file.data() + 20);
    const uint32_t n_counters = getLe32(file.data() + 28);
    const uint32_t n_gauges = getLe32(file.data() + 32);
    cores_ = getLe32(file.data() + 36);

    size_t pos = kTimelineHeaderSize;
    auto read_name = [&]() {
        const uint64_t len = readVarint(path, file, &pos);
        if (len > file.size() - pos)
            badFile(path, "truncated series name");
        std::string name(
            reinterpret_cast<const char *>(file.data() + pos),
            static_cast<size_t>(len));
        pos += static_cast<size_t>(len);
        return name;
    };
    for (uint32_t i = 0; i < n_counters; ++i)
        counterNames_.push_back(read_name());
    for (uint32_t i = 0; i < n_gauges; ++i)
        gaugeNames_.push_back(read_name());

    samples_.reserve(static_cast<size_t>(sample_count));
    for (uint64_t s = 0; s < sample_count; ++s) {
        TimelineSample row;
        row.end_cycle = readVarint(path, file, &pos);
        row.deltas.reserve(n_counters);
        for (uint32_t i = 0; i < n_counters; ++i)
            row.deltas.push_back(
                unzigzag(readVarint(path, file, &pos)));
        row.gauges.reserve(n_gauges);
        for (uint32_t i = 0; i < n_gauges; ++i)
            row.gauges.push_back(readVarint(path, file, &pos));
        samples_.push_back(std::move(row));
    }
    if (pos != file.size())
        badFile(path, "trailing garbage after samples");
}

// --------------------------------------------------------------------
// Converters

namespace {

void
jsonEscape(std::ostream &os, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\' << c;
        else
            os << c;
    }
}

} // namespace

void
dumpCsv(const TimelineReader &tl, std::ostream &os)
{
    os << "end_cycle";
    for (const auto &n : tl.counterNames())
        os << "," << n;
    for (const auto &n : tl.gaugeNames())
        os << "," << n;
    os << "\n";
    for (const auto &row : tl.samples()) {
        os << row.end_cycle;
        for (int64_t d : row.deltas)
            os << "," << d;
        for (uint64_t g : row.gauges)
            os << "," << g;
        os << "\n";
    }
}

void
dumpJson(const TimelineReader &tl, std::ostream &os)
{
    os << "{\n  \"format\": \"poat-timeline v2\",\n  \"interval\": "
       << tl.interval() << ",\n  \"cores\": " << tl.cores()
       << ",\n  \"counters\": [";
    for (size_t i = 0; i < tl.counterNames().size(); ++i) {
        os << (i ? ", " : "") << '"';
        jsonEscape(os, tl.counterNames()[i]);
        os << '"';
    }
    os << "],\n  \"gauges\": [";
    for (size_t i = 0; i < tl.gaugeNames().size(); ++i) {
        os << (i ? ", " : "") << '"';
        jsonEscape(os, tl.gaugeNames()[i]);
        os << '"';
    }
    os << "],\n  \"samples\": [";
    for (size_t s = 0; s < tl.samples().size(); ++s) {
        const auto &row = tl.samples()[s];
        os << (s ? ",\n    " : "\n    ")
           << "{\"end_cycle\": " << row.end_cycle << ", \"deltas\": [";
        for (size_t i = 0; i < row.deltas.size(); ++i)
            os << (i ? ", " : "") << row.deltas[i];
        os << "], \"gauges\": [";
        for (size_t i = 0; i < row.gauges.size(); ++i)
            os << (i ? ", " : "") << row.gauges[i];
        os << "]}";
    }
    os << "\n  ]\n}\n";
}

namespace {

/**
 * Core a series belongs to: "core.<i>.*" and "sched.core.<i>.*" map
 * to core i, everything else to -1 (machine-wide).
 */
int
seriesCore(const std::string &name)
{
    size_t pos = std::string::npos;
    if (name.compare(0, 5, "core.") == 0)
        pos = 5;
    else if (name.compare(0, 11, "sched.core.") == 0)
        pos = 11;
    if (pos == std::string::npos || pos >= name.size() ||
        name[pos] < '0' || name[pos] > '9')
        return -1;
    int core = 0;
    size_t i = pos;
    while (i < name.size() && name[i] >= '0' && name[i] <= '9')
        core = core * 10 + (name[i++] - '0');
    if (i >= name.size() || name[i] != '.')
        return -1; // "core.cycles", "core.count", ... are machine-wide
    return core;
}

} // namespace

void
dumpChrome(const TimelineReader &tl, std::ostream &os)
{
    // One "ph":"C" counter event per series per sample, with the
    // components of a CPI stack ("<stack>.<component>") merged into a
    // single multi-value track named "<stack>" so viewers stack them.
    // Per-core series ("core.<i>.*", "sched.core.<i>.*") live under
    // their own Chrome process (pid 1 + i, named via process_name
    // metadata) so each core renders as a separate lane; machine-wide
    // series stay on pid 0.
    os << "[";
    bool first = true;
    os << "\n {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
          "\"args\": {\"name\": \"machine\"}}";
    first = false;
    for (uint32_t c = 0; c < tl.cores(); ++c)
        os << ",\n {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
           << 1 + c << ", \"args\": {\"name\": \"core " << c << "\"}}";

    auto event = [&](const std::string &name, uint64_t ts,
                     auto &&write_args) {
        const int core = seriesCore(name);
        os << (first ? "\n" : ",\n") << " {\"name\": \"";
        jsonEscape(os, name);
        os << "\", \"ph\": \"C\", \"ts\": " << ts
           << ", \"pid\": " << (core < 0 ? 0 : 1 + core)
           << ", \"tid\": 0, \"args\": {";
        write_args();
        os << "}}";
        first = false;
    };

    const auto &counters = tl.counterNames();
    for (const auto &row : tl.samples()) {
        // CPI-stack components share one event keyed by stack name.
        size_t i = 0;
        while (i < counters.size()) {
            const std::string &name = counters[i];
            const size_t dot = name.rfind('.');
            const std::string stack =
                dot == std::string::npos ? "" : name.substr(0, dot);
            const bool is_cpi = stack.size() >= 3 &&
                stack.compare(stack.size() - 3, 3, "cpi") == 0;
            if (!is_cpi) {
                event(name, row.end_cycle, [&] {
                    os << "\"value\": " << row.deltas[i];
                });
                ++i;
                continue;
            }
            event(stack, row.end_cycle, [&] {
                bool inner_first = true;
                while (i < counters.size() &&
                       counters[i].compare(0, stack.size() + 1,
                                           stack + ".") == 0) {
                    os << (inner_first ? "" : ", ") << '"';
                    jsonEscape(os,
                               counters[i].substr(stack.size() + 1));
                    os << "\": " << row.deltas[i];
                    inner_first = false;
                    ++i;
                }
            });
        }
        for (size_t g = 0; g < tl.gaugeNames().size(); ++g) {
            event(tl.gaugeNames()[g], row.end_cycle, [&] {
                os << "\"value\": " << row.gauges[g];
            });
        }
    }
    os << "\n]\n";
}

} // namespace telemetry
} // namespace poat
