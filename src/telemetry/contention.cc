#include "telemetry/contention.h"

#include <algorithm>

#include "common/stats.h"

namespace poat {
namespace telemetry {

namespace {

/** Stripe of a lock key (mix the bits so dense keys spread). */
uint32_t
stripeOf(uint64_t key)
{
    uint64_t h = key * 0x9e3779b97f4a7c15ull;
    return static_cast<uint32_t>(h >> 60) & (kLockStripes - 1);
}

} // namespace

const char *
blockReasonName(BlockReason r)
{
    switch (r) {
      case BlockReason::TokenWait:
        return "token_wait";
      case BlockReason::LockWait:
        return "lock_wait";
      case BlockReason::CommitWait:
        return "commit_wait";
      case BlockReason::IdleDone:
        return "idle_done";
    }
    return "?";
}

ContentionProfiler::CoreInfo &
ContentionProfiler::core(uint32_t c)
{
    if (c >= cores_.size()) {
        const size_t old = cores_.size();
        cores_.resize(c + 1);
        // A core first seen now has been waiting for the scheduler
        // token since time 0; backfill so running + blocked still sums
        // exactly to the makespan for every core.
        for (size_t i = old; i < cores_.size(); ++i)
            cores_[i].blocked[static_cast<uint32_t>(
                BlockReason::TokenWait)] += lastM_;
    }
    return cores_[c];
}

void
ContentionProfiler::settle(uint64_t makespan)
{
    if (makespan <= lastM_)
        return;
    const uint64_t growth = makespan - lastM_;
    // Ensure the running core exists BEFORE advancing lastM_: a core
    // created here is backfilled as token-waiting up to the old settle
    // point, then charged running for the growth — not both.
    core(activeCore_);
    lastM_ = makespan;
    for (uint32_t c = 0; c < cores_.size(); ++c) {
        if (c == activeCore_)
            cores_[c].running += growth;
        else
            cores_[c].blocked[static_cast<uint32_t>(
                cores_[c].reason)] += growth;
    }
}

void
ContentionProfiler::endSegment(uint32_t c, uint64_t makespan)
{
    CoreInfo &ci = core(c);
    if (ci.openSeg < 0)
        beginSegment(c, ci.segStart);
    Segment &s = segs_[static_cast<size_t>(ci.openSeg)];
    s.len = makespan >= ci.segStart ? makespan - ci.segStart : 0;
    ci.lastSeg = ci.openSeg;
    ci.openSeg = -1;
    ci.segStart = makespan;
}

void
ContentionProfiler::beginSegment(uint32_t c, uint64_t makespan,
                                 int64_t joinPred, uint64_t joinKey)
{
    CoreInfo &ci = core(c);
    Segment s;
    s.core = c;
    s.op = ci.curOp;
    s.pred = ci.lastSeg;
    s.joinPred = joinPred;
    s.joinKey = joinKey;
    ci.openSeg = static_cast<int64_t>(segs_.size());
    ci.segStart = makespan;
    segs_.push_back(s);
}

void
ContentionProfiler::coreSwitchIn(uint32_t core_id, uint32_t prev,
                                 uint64_t makespan)
{
    active_ = true;
    settle(makespan);
    if (prev != core_id)
        endSegment(prev, makespan);
    activeCore_ = core_id;
    // The very first segment starts at 0 so the segments tile the
    // whole run (the setup phase belongs to the first active core).
    if (core(core_id).openSeg < 0)
        beginSegment(core_id, segs_.empty() ? 0 : makespan);
}

void
ContentionProfiler::opName(uint32_t op, std::string name)
{
    opNames_[op] = std::move(name);
}

void
ContentionProfiler::opSet(uint32_t c, uint32_t op, uint64_t makespan)
{
    CoreInfo &ci = core(c);
    if (ci.curOp == op)
        return;
    if (!active_) {
        // Sequential runs emit opSet too; track the op (it seeds the
        // first segments if the run later turns concurrent) without
        // growing the segment DAG.
        ci.curOp = op;
        return;
    }
    endSegment(c, makespan);
    ci.curOp = op;
    beginSegment(c, makespan);
}

void
ContentionProfiler::lockWait(uint32_t c, uint64_t key, uint8_t,
                             uint32_t edges, uint64_t makespan)
{
    active_ = true;
    settle(makespan);
    CoreInfo &ci = core(c);
    ci.reason = BlockReason::LockWait;
    ci.waiting = true;
    ci.waitStart = makespan;
    ci.waitOp = ci.curOp;
    ci.waitKey = key;
    ++lockWaits_;
    waitsForEdges_ += edges;
    ++byKey_[key].waits;
}

void
ContentionProfiler::lockAcquired(uint32_t c, uint64_t key,
                                 uint64_t local, uint64_t makespan)
{
    active_ = true;
    settle(makespan);
    CoreInfo &ci = core(c);
    if (ci.waiting && ci.waitKey == key) {
        const uint64_t wait = makespan - ci.waitStart;
        waitAll_.record(wait);
        waitStripe_[stripeOf(key)].record(wait);
        waitByOp_[ci.waitOp].record(wait);
        byKey_[key].wait_cycles += wait;
        ci.waiting = false;
        ci.reason = BlockReason::TokenWait;
    }
    ++lockAcquired_;
    ++byKey_[key].acquisitions;
    holds_[key] = {c, local};

    // Critical-path join: this segment's start depends on whoever
    // last released the key (cross-core dependency edge).
    int64_t join = -1;
    if (auto it = lastRelease_.find(key); it != lastRelease_.end())
        join = it->second;
    endSegment(c, makespan);
    beginSegment(c, makespan, join, key);
}

void
ContentionProfiler::lockReleased(uint32_t c, uint64_t key,
                                 uint64_t local, uint64_t makespan)
{
    active_ = true;
    settle(makespan);
    if (auto it = holds_.find(key); it != holds_.end()) {
        if (it->second.first == c) {
            const uint64_t hold = local >= it->second.second
                ? local - it->second.second
                : 0;
            holdAll_.record(hold);
            holdStripe_[stripeOf(key)].record(hold);
            byKey_[key].hold_cycles += hold;
        }
        holds_.erase(it);
    }
    CoreInfo &ci = core(c);
    endSegment(c, makespan);
    lastRelease_[key] = ci.lastSeg;
    beginSegment(c, makespan);
}

void
ContentionProfiler::lockDeadlock(uint32_t c, uint64_t key,
                                 uint64_t makespan)
{
    active_ = true;
    settle(makespan);
    ++deadlockVictims_;
    CoreInfo &ci = core(c);
    if (ci.waiting && ci.waitKey == key) {
        // The aborted wait still happened; charge it.
        const uint64_t wait = makespan - ci.waitStart;
        waitAll_.record(wait);
        waitStripe_[stripeOf(key)].record(wait);
        waitByOp_[ci.waitOp].record(wait);
        byKey_[key].wait_cycles += wait;
        ci.waiting = false;
    }
    ci.reason = BlockReason::TokenWait;
}

void
ContentionProfiler::workerDone(uint32_t c, uint64_t makespan)
{
    active_ = true;
    settle(makespan);
    core(c).reason = BlockReason::IdleDone;
}

void
ContentionProfiler::commitJoin(uint32_t c, uint64_t makespan)
{
    active_ = true;
    settle(makespan);
    CoreInfo &ci = core(c);
    ci.joined = true;
    ci.joinM = makespan;
    if (ci.reason == BlockReason::TokenWait)
        ci.reason = BlockReason::CommitWait;
}

void
ContentionProfiler::commitBatch(uint32_t members, uint32_t elided,
                                uint64_t makespan)
{
    active_ = true;
    settle(makespan);
    ++batches_;
    batchOccupancy_.record(members);
    fencesElided_ += elided;
    for (CoreInfo &ci : cores_) {
        if (!ci.joined)
            continue;
        batchWait_.record(makespan - ci.joinM);
        ci.joined = false;
        if (ci.reason == BlockReason::CommitWait)
            ci.reason = BlockReason::TokenWait;
    }
}

void
ContentionProfiler::txAborted(uint64_t wasted)
{
    ++aborts_;
    abortWasted_.record(wasted);
}

uint64_t
ContentionProfiler::blockedCycles(uint32_t c, BlockReason r) const
{
    if (c >= cores_.size())
        return 0;
    return cores_[c].blocked[static_cast<uint32_t>(r)];
}

void
ContentionProfiler::computePath()
{
    // Only CLOSED segments enter the DP: an open segment still has
    // len 0, and exports can happen mid-run (timeline sampling), so
    // committing its value now would freeze the zero forever.
    size_t n = segs_.size();
    for (const CoreInfo &ci : cores_) {
        if (ci.openSeg >= 0)
            n = std::min(n, static_cast<size_t>(ci.openSeg));
    }
    pathEnd_.resize(segs_.size(), 0);
    for (size_t i = pathComputed_; i < n; ++i) {
        const Segment &s = segs_[i];
        uint64_t base = 0;
        if (s.pred >= 0)
            base = pathEnd_[static_cast<size_t>(s.pred)];
        if (s.joinPred >= 0)
            base = std::max(base,
                            pathEnd_[static_cast<size_t>(s.joinPred)]);
        pathEnd_[i] = base + s.len;
    }
    pathComputed_ = n;
}

void
ContentionProfiler::exportInto(StatsRegistry &reg, uint64_t makespan)
{
    settle(makespan);

    // ---- lock.* ---------------------------------------------------
    reg.counter("lock.waits") = lockWaits_;
    reg.counter("lock.acquisitions") = lockAcquired_;
    reg.counter("lock.waits_for_edges") = waitsForEdges_;
    reg.counter("lock.deadlock_victims") = deadlockVictims_;
    reg.histogram("lock.wait_cycles") = waitAll_;
    reg.histogram("lock.hold_cycles") = holdAll_;
    for (uint32_t i = 0; i < kLockStripes; ++i) {
        const std::string p = "lock.stripe." + std::to_string(i) + ".";
        reg.histogram(p + "wait_cycles") = waitStripe_[i];
        reg.histogram(p + "hold_cycles") = holdStripe_[i];
    }
    for (const auto &[op, h] : waitByOp_) {
        const auto it = opNames_.find(op);
        const std::string name =
            it != opNames_.end() ? it->second : std::to_string(op);
        reg.histogram("lock.op." + name + ".wait_cycles") = h;
    }

    // Top-K most contended keys, by wait cycles (ties: smaller key).
    std::vector<std::pair<uint64_t, const KeyStats *>> ranked;
    ranked.reserve(byKey_.size());
    for (const auto &[key, ks] : byKey_)
        ranked.emplace_back(key, &ks);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  if (a.second->wait_cycles != b.second->wait_cycles)
                      return a.second->wait_cycles >
                          b.second->wait_cycles;
                  return a.first < b.first;
              });
    // All kLockTopK rows are always written (zeros when fewer keys
    // exist): the timeline samples stats mid-run, so the exported key
    // set must not depend on WHEN the export happens — only counters
    // every later export rewrites may be registered.
    const uint32_t topn = static_cast<uint32_t>(
        std::min<size_t>(kLockTopK, ranked.size()));
    reg.counter("lock.top.count") = topn;
    for (uint32_t r = 0; r < kLockTopK; ++r) {
        const std::string p = "lock.top." + std::to_string(r) + ".";
        const bool live = r < topn;
        reg.counter(p + "key") = live ? ranked[r].first : 0;
        reg.counter(p + "waits") = live ? ranked[r].second->waits : 0;
        reg.counter(p + "wait_cycles") =
            live ? ranked[r].second->wait_cycles : 0;
        reg.counter(p + "hold_cycles") =
            live ? ranked[r].second->hold_cycles : 0;
        reg.counter(p + "acquisitions") =
            live ? ranked[r].second->acquisitions : 0;
    }

    // ---- sched.* --------------------------------------------------
    uint64_t blockedSum[kBlockReasons] = {};
    for (uint32_t c = 0; c < cores_.size(); ++c) {
        const std::string p = "sched.core." + std::to_string(c) + ".";
        reg.counter(p + "running") = cores_[c].running;
        for (uint32_t r = 0; r < kBlockReasons; ++r) {
            reg.counter(p + "blocked." +
                        blockReasonName(static_cast<BlockReason>(r))) =
                cores_[c].blocked[r];
            blockedSum[r] += cores_[c].blocked[r];
        }
    }
    for (uint32_t r = 0; r < kBlockReasons; ++r)
        reg.counter(std::string("sched.blocked.") +
                    blockReasonName(static_cast<BlockReason>(r))) =
            blockedSum[r];

    // ---- commit.batch.* / tx.abort.* ------------------------------
    reg.counter("commit.batch.windows") = batches_;
    reg.counter("commit.batch.fences_elided") = fencesElided_;
    reg.histogram("commit.batch.occupancy") = batchOccupancy_;
    reg.histogram("commit.batch.wait_cycles") = batchWait_;
    reg.counter("tx.abort.count") = aborts_;
    reg.counter("tx.abort.wasted_total") = abortWasted_.sum();
    reg.histogram("tx.abort.wasted_cycles") = abortWasted_;

    // ---- cp.* -----------------------------------------------------
    computePath();

    // Virtually close any open segment at the makespan so in-flight
    // work counts, without mutating the DAG (repeat exports must stay
    // idempotent). At most one segment is open per core, and only the
    // active core's can have nonzero virtual length.
    uint64_t best = 0;
    int64_t bestSeg = -1;     // closed segment the best path ends at
    uint64_t bestTailLen = 0; // virtual tail on top of it (open seg)
    uint32_t bestTailOp = 0;
    int64_t bestTailJoin = -1;
    uint64_t bestTailKey = 0;
    for (size_t i = 0; i < segs_.size(); ++i) {
        if (pathEnd_[i] > best) {
            best = pathEnd_[i];
            bestSeg = static_cast<int64_t>(i);
            bestTailLen = 0;
        }
    }
    for (uint32_t c = 0; c < cores_.size(); ++c) {
        const CoreInfo &ci = cores_[c];
        if (ci.openSeg < 0)
            continue;
        const Segment &s = segs_[static_cast<size_t>(ci.openSeg)];
        const uint64_t vlen =
            makespan >= ci.segStart ? makespan - ci.segStart : 0;
        uint64_t base = 0;
        if (s.pred >= 0)
            base = pathEnd_[static_cast<size_t>(s.pred)];
        if (s.joinPred >= 0)
            base = std::max(base,
                            pathEnd_[static_cast<size_t>(s.joinPred)]);
        if (base + vlen > best) {
            best = base + vlen;
            bestTailLen = vlen;
            bestTailOp = s.op;
            bestTailJoin = s.joinPred;
            bestTailKey = s.joinKey;
            // Backtrack continues from the tail's stronger predecessor.
            const uint64_t predEnd =
                s.pred >= 0 ? pathEnd_[static_cast<size_t>(s.pred)] : 0;
            const uint64_t joinEnd = s.joinPred >= 0
                ? pathEnd_[static_cast<size_t>(s.joinPred)]
                : 0;
            bestSeg = joinEnd > predEnd ? s.joinPred : s.pred;
        }
    }

    // Backtrack the winning path, attributing cycles to ops and lock
    // keys: the path segments upstream of a lock-join edge (back to
    // the previous edge) charge their length to that edge's key —
    // they are the cross-core work the path waited behind.
    std::map<uint32_t, uint64_t> opCycles;
    std::map<uint64_t, uint64_t> lockCycles;
    uint64_t lockEdges = 0;
    int64_t cursor = bestSeg;
    bool viaJoin = false;
    uint64_t viaKey = 0;
    if (bestTailLen > 0) {
        opCycles[bestTailOp] += bestTailLen;
        if (bestTailJoin >= 0 && bestSeg == bestTailJoin) {
            ++lockEdges;
            viaJoin = true;
            viaKey = bestTailKey;
        }
    }
    while (cursor >= 0) {
        const Segment &s = segs_[static_cast<size_t>(cursor)];
        opCycles[s.op] += s.len;
        if (viaJoin)
            lockCycles[viaKey] += s.len;
        const uint64_t predEnd =
            s.pred >= 0 ? pathEnd_[static_cast<size_t>(s.pred)] : 0;
        const uint64_t joinEnd = s.joinPred >= 0
            ? pathEnd_[static_cast<size_t>(s.joinPred)]
            : 0;
        if (s.joinPred >= 0 && joinEnd >= predEnd) {
            ++lockEdges;
            viaJoin = true;
            viaKey = s.joinKey;
            cursor = s.joinPred;
        } else {
            viaJoin = false;
            cursor = s.pred;
        }
    }

    reg.counter("cp.length") = best;
    reg.counter("cp.segments") = segs_.size();
    reg.counter("cp.edges.lock") = lockEdges;
    reg.formula("cp.pct", "cp.length", "core.cycles");
    // One row per announced op (plus untagged), zero when off the
    // path, so mid-run exports register no key a later export would
    // orphan (see the lock.top comment above).
    reg.counter("cp.op.untagged.cycles") = opCycles[0];
    for (const auto &[op, name] : opNames_) {
        if (op != 0)
            reg.counter("cp.op." + name + ".cycles") = opCycles[op];
    }
    std::vector<std::pair<uint64_t, uint64_t>> lranked(
        lockCycles.begin(), lockCycles.end());
    std::sort(lranked.begin(), lranked.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    const uint32_t ln = static_cast<uint32_t>(
        std::min<size_t>(kCpTopLocks, lranked.size()));
    reg.counter("cp.lock.count") = ln;
    for (uint32_t r = 0; r < kCpTopLocks; ++r) {
        const std::string p = "cp.lock." + std::to_string(r) + ".";
        const bool live = r < ln;
        reg.counter(p + "key") = live ? lranked[r].first : 0;
        reg.counter(p + "cycles") = live ? lranked[r].second : 0;
    }
}

} // namespace telemetry
} // namespace poat
