#include "sim/cache.h"

#include "common/bits.h"

namespace poat {
namespace sim {

Cache::Cache(std::string name, const CacheConfig &cfg)
    : name_(std::move(name)), assoc_(cfg.assoc), latency_(cfg.latency)
{
    const uint32_t lines = cfg.size_bytes / kLineBytes;
    POAT_ASSERT(lines % cfg.assoc == 0, "cache geometry mismatch");
    sets_ = lines / cfg.assoc;
    POAT_ASSERT(isPow2(sets_), "cache set count must be a power of two");
    lines_.resize(lines);
}

uint32_t
Cache::setOf(uint64_t paddr) const
{
    return static_cast<uint32_t>((paddr / kLineBytes) & (sets_ - 1));
}

uint64_t
Cache::tagOf(uint64_t paddr) const
{
    return paddr / kLineBytes / sets_;
}

bool
Cache::access(uint64_t paddr, bool is_write)
{
    const uint32_t set = setOf(paddr);
    const uint64_t tag = tagOf(paddr);
    Line *base = &lines_[static_cast<size_t>(set) * assoc_];
    ++tick_;

    Line *victim = base;
    for (uint32_t w = 0; w < assoc_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lru = tick_;
            line.dirty |= is_write;
            ++hits_;
            return true;
        }
        if (!line.valid) {
            victim = &line; // prefer an invalid way
        } else if (victim->valid && line.lru < victim->lru) {
            victim = &line;
        }
    }

    ++misses_;
    if (victim->valid && victim->dirty)
        ++writebacks_;
    victim->valid = true;
    victim->tag = tag;
    victim->lru = tick_;
    victim->dirty = is_write;
    return false;
}

bool
Cache::contains(uint64_t paddr) const
{
    const uint32_t set = setOf(paddr);
    const uint64_t tag = tagOf(paddr);
    const Line *base = &lines_[static_cast<size_t>(set) * assoc_];
    for (uint32_t w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

bool
Cache::flushLine(uint64_t paddr)
{
    const uint32_t set = setOf(paddr);
    const uint64_t tag = tagOf(paddr);
    Line *base = &lines_[static_cast<size_t>(set) * assoc_];
    for (uint32_t w = 0; w < assoc_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag && line.dirty) {
            line.dirty = false;
            ++writebacks_;
            return true;
        }
    }
    return false;
}

void
Cache::reset()
{
    for (Line &line : lines_)
        line = Line{};
    tick_ = 0;
}

CacheHierarchy::CacheHierarchy(const MachineConfig &cfg)
    : l3_("L3", cfg.l3), memLatency_(cfg.mem_latency)
{
    const uint32_t n = cfg.cores ? cfg.cores : 1;
    l1s_.reserve(n);
    l2s_.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        l1s_.emplace_back("L1D", cfg.l1d);
        l2s_.emplace_back("L2", cfg.l2);
    }
}

CacheHierarchy::AccessResult
CacheHierarchy::accessClassified(uint32_t core, uint64_t paddr,
                                 bool is_write)
{
    // Lower levels are filled (and LRU-touched) only when the upper
    // level misses, mimicking a mostly-inclusive hierarchy.
    if (l1s_[core].access(paddr, is_write))
        return {l1s_[core].latency(), Level::L1};
    if (l2s_[core].access(paddr, false))
        return {l2s_[core].latency(), Level::L2};
    if (l3_.access(paddr, false))
        return {l3_.latency(), Level::L3};
    ++memAccesses_;
    return {memLatency_, Level::Memory};
}

void
CacheHierarchy::flushLine(uint64_t paddr)
{
    for (Cache &c : l1s_)
        c.flushLine(paddr);
    for (Cache &c : l2s_)
        c.flushLine(paddr);
    l3_.flushLine(paddr);
}

void
CacheHierarchy::reset()
{
    for (Cache &c : l1s_)
        c.reset();
    for (Cache &c : l2s_)
        c.reset();
    l3_.reset();
}

} // namespace sim
} // namespace poat
