/**
 * @file
 * In-order five-stage pipeline timing model (paper section 4.5).
 *
 * The model assumes a classic IF/ID/EX/MEM/WB scalar pipeline:
 *
 *  - every instruction occupies one cycle of issue;
 *  - loads are blocking and charge the full access latency (an L1 hit
 *    costs its 3-cycle hit time), as in Sniper's in-order model;
 *  - translation work (POLB/POT/TLB walks) stalls the pipeline for its
 *    full duration, per section 4.5 ("the in-order pipeline stalls
 *    until the POT walk is completed");
 *  - stores retire into a small store buffer that drains one entry per
 *    memory access time; a full buffer stalls;
 *  - mispredicted branches flush (8-cycle penalty);
 *  - CLWB costs its fixed latency; SFENCE drains the store buffer.
 */
#ifndef POAT_SIM_CORE_INORDER_H
#define POAT_SIM_CORE_INORDER_H

#include <algorithm>
#include <vector>

#include "sim/config.h"
#include "sim/core.h"

namespace poat {
namespace sim {

/** Scalar in-order pipeline. */
class InOrderCore : public CoreModel
{
  public:
    explicit InOrderCore(const MachineConfig &cfg)
        : mispredictPenalty_(cfg.mispredict_penalty),
          storeBuf_(cfg.store_buffer_entries, 0)
    {
    }

    void
    alu(uint32_t count, uint64_t) override
    {
        cycle_ += count;
        breakdown_.alu += count;
        uops_ += count;
    }

    void
    branch(bool mispredict, uint64_t) override
    {
        cycle_ += 1 + (mispredict ? mispredictPenalty_ : 0);
        breakdown_.alu += 1;
        if (mispredict)
            breakdown_.branch += mispredictPenalty_;
        ++uops_;
    }

    uint64_t
    load(uint32_t pre_stall, uint32_t mem_latency, uint64_t,
         uint64_t) override
    {
        cycle_ += pre_stall + mem_latency;
        breakdown_.translation += pre_stall;
        breakdown_.memory += mem_latency;
        ++uops_;
        return ++tag_;
    }

    void
    store(uint32_t pre_stall, uint32_t mem_latency, uint64_t) override
    {
        cycle_ += 1 + pre_stall;
        breakdown_.memory += 1;
        breakdown_.translation += pre_stall;
        ++uops_;
        // Claim the store-buffer slot that frees the earliest; if it is
        // still draining, stall until it is free.
        auto slot = std::min_element(storeBuf_.begin(), storeBuf_.end());
        if (*slot > cycle_) {
            breakdown_.memory += *slot - cycle_;
            cycle_ = *slot;
        }
        *slot = cycle_ + mem_latency;
    }

    void
    clwb(uint32_t latency) override
    {
        cycle_ += latency;
        breakdown_.flush += latency;
        ++uops_;
    }

    void
    fence() override
    {
        for (uint64_t &slot : storeBuf_) {
            if (slot > cycle_) {
                breakdown_.fence += slot - cycle_;
                cycle_ = slot;
            }
        }
        ++cycle_;
        breakdown_.fence += 1;
        ++uops_;
    }

    uint64_t cycles() const override { return cycle_; }
    uint64_t uopCount() const override { return uops_; }
    CycleBreakdown breakdown() const override { return breakdown_; }

  private:
    uint32_t mispredictPenalty_;
    std::vector<uint64_t> storeBuf_; ///< per-slot drain-complete time
    CycleBreakdown breakdown_;
    uint64_t cycle_ = 0;
    uint64_t uops_ = 0;
    uint64_t tag_ = 0;
};

} // namespace sim
} // namespace poat

#endif // POAT_SIM_CORE_INORDER_H
