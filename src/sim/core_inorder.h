/**
 * @file
 * In-order five-stage pipeline timing model (paper section 4.5).
 *
 * The model assumes a classic IF/ID/EX/MEM/WB scalar pipeline:
 *
 *  - every instruction occupies one cycle of issue;
 *  - loads are blocking and charge the full access latency (an L1 hit
 *    costs its 3-cycle hit time), as in Sniper's in-order model;
 *  - translation work (POLB/POT/TLB walks) stalls the pipeline for its
 *    full duration, per section 4.5 ("the in-order pipeline stalls
 *    until the POT walk is completed");
 *  - stores retire into a small store buffer that drains one entry per
 *    memory access time; a full buffer stalls;
 *  - mispredicted branches flush (8-cycle penalty);
 *  - CLWB costs its fixed latency; SFENCE drains the store buffer.
 *
 * CPI accounting is trivially exact here: the pipeline is blocking, so
 * every `cycle_ +=` below is paired with a charge() of the same amount
 * to the component that caused it.
 */
#ifndef POAT_SIM_CORE_INORDER_H
#define POAT_SIM_CORE_INORDER_H

#include <algorithm>
#include <vector>

#include "sim/config.h"
#include "sim/core.h"

namespace poat {
namespace sim {

/** Scalar in-order pipeline. */
class InOrderCore : public CoreModel
{
  public:
    explicit InOrderCore(const MachineConfig &cfg)
        : mispredictPenalty_(cfg.mispredict_penalty),
          storeBuf_(cfg.store_buffer_entries, 0)
    {
    }

    void
    alu(uint32_t count, uint64_t) override
    {
        cycle_ += count;
        charge(CpiComponent::Base, count);
        uops_ += count;
    }

    void
    branch(bool mispredict, uint64_t) override
    {
        cycle_ += 1 + (mispredict ? mispredictPenalty_ : 0);
        charge(CpiComponent::Base, 1);
        if (mispredict)
            charge(CpiComponent::Branch, mispredictPenalty_);
        ++uops_;
    }

    uint64_t
    load(const AccessCosts &costs, uint64_t, uint64_t) override
    {
        cycle_ += costs.total();
        chargePre(costs);
        charge(costs.mem_comp, costs.mem);
        ++uops_;
        return ++tag_;
    }

    void
    store(const AccessCosts &costs, uint64_t) override
    {
        cycle_ += 1 + costs.preStall();
        charge(CpiComponent::Base, 1);
        chargePre(costs);
        ++uops_;
        // Claim the store-buffer slot that frees the earliest; if it is
        // still draining, stall until it is free.
        auto slot = std::min_element(storeBuf_.begin(), storeBuf_.end());
        if (*slot > cycle_) {
            charge(CpiComponent::Mem, *slot - cycle_);
            cycle_ = *slot;
        }
        *slot = cycle_ + costs.mem;
    }

    void
    clwb(const AccessCosts &costs, uint32_t flush_latency) override
    {
        cycle_ += costs.preStall() + flush_latency;
        chargePre(costs);
        charge(CpiComponent::Flush, flush_latency);
        ++uops_;
    }

    void
    fence() override
    {
        for (uint64_t &slot : storeBuf_) {
            if (slot > cycle_) {
                charge(CpiComponent::Fence, slot - cycle_);
                cycle_ = slot;
            }
        }
        ++cycle_;
        charge(CpiComponent::Fence, 1);
        ++uops_;
    }

    uint64_t cycles() const override { return cycle_; }
    uint64_t uopCount() const override { return uops_; }

  private:
    /** Charge the pre-access translation components of @p costs. */
    void
    chargePre(const AccessCosts &costs)
    {
        charge(CpiComponent::Polb, costs.polb);
        charge(CpiComponent::PotWalk, costs.pot);
        charge(CpiComponent::Tlb, costs.tlb);
    }

    uint32_t mispredictPenalty_;
    std::vector<uint64_t> storeBuf_; ///< per-slot drain-complete time
    uint64_t cycle_ = 0;
    uint64_t uops_ = 0;
    uint64_t tag_ = 0;
};

} // namespace sim
} // namespace poat

#endif // POAT_SIM_CORE_INORDER_H
