/**
 * @file
 * Out-of-order ROB-based timing model (paper section 4.4).
 *
 * A one-pass, instruction-window-centric model in the spirit of
 * Sniper's ROB core model: each uop is assigned a dispatch time
 * (bounded by fetch width, ROB occupancy, LQ/SQ occupancy, and branch
 * redirects), a ready time (producer completion via value tags), a
 * completion time (ready + execution latency), and an in-order,
 * width-limited commit time. Independent memory accesses overlap;
 * dependence chains — pointer chasing, translate-then-access —
 * serialize, which is exactly the structure the paper's OoO analysis
 * rests on (OoO hides part of the software-translation cost, shrinking
 * but not eliminating OPT's advantage).
 *
 * nvld/nvst translation latency arrives as the pre-access segments of
 * AccessCosts: the POLB sits in the AGEN stage, so its latency (and
 * any POT walk) extends the time until the access can start.
 *
 * CPI accounting uses commit-gap attribution. Commit times are
 * monotonically non-decreasing, so the gaps commit − prev_commit sum
 * exactly to cycles(); each gap is attributed by walking the committing
 * uop's own timeline backwards — commit-wait, then its execution
 * segments (each tagged with the component that produced the latency),
 * then the wait for its slowest producer (charged to that producer's
 * dominant component), and any remainder to whatever held dispatch
 * back (ROB/LQ/SQ pressure, a fence serialization, a mispredict
 * redirect, or plain issue bandwidth). Overlapped work is thus charged
 * to the component actually exposed on the commit-critical path,
 * Sniper-style, and the stack still sums exactly to total cycles.
 */
#ifndef POAT_SIM_CORE_OOO_H
#define POAT_SIM_CORE_OOO_H

#include <algorithm>
#include <vector>

#include "sim/config.h"
#include "sim/core.h"

namespace poat {
namespace sim {

/** ROB-based out-of-order superscalar model. */
class OooCore : public CoreModel
{
  public:
    explicit OooCore(const MachineConfig &cfg)
        : width_(cfg.issue_width), robSize_(cfg.rob_size),
          lqSize_(cfg.lq_size), sqSize_(cfg.sq_size),
          mispredictPenalty_(cfg.mispredict_penalty),
          commitRing_(cfg.rob_size, 0), loadRing_(cfg.lq_size, 0),
          storeRing_(cfg.sq_size, 0), completions_(kWindow)
    {
    }

    void
    alu(uint32_t count, uint64_t dep) override
    {
        const Seg seg{CpiComponent::Base, 1};
        for (uint32_t i = 0; i < count; ++i)
            processUop(&seg, 1, i == 0 ? dep : kNone, kNone, Slot::None,
                       CpiComponent::Base);
    }

    void
    branch(bool mispredict, uint64_t dep) override
    {
        const Seg seg{CpiComponent::Base, 1};
        const uint64_t complete =
            processUop(&seg, 1, dep, kNone, Slot::None,
                       CpiComponent::Base);
        if (mispredict)
            raiseFetchAvail(complete + mispredictPenalty_,
                            CpiComponent::Branch);
    }

    uint64_t
    load(const AccessCosts &costs, uint64_t dep, uint64_t dep2) override
    {
        Seg segs[4];
        const uint32_t n = preSegs(costs, segs);
        processUop(segs, n, dep, dep2, Slot::Load, CpiComponent::Mem);
        return seq_;
    }

    void
    store(const AccessCosts &costs, uint64_t dep) override
    {
        // The store completes once its address (incl. translation) is
        // generated; the data drains to memory after commit, which the
        // SQ-occupancy constraint models. The cache access latency
        // itself is off the critical path.
        Seg segs[4];
        uint32_t n = preSegs(costs, segs) - 1; // drop the mem segment
        segs[n++] = {CpiComponent::Base, 1};
        processUop(segs, n, dep, kNone, Slot::Store, CpiComponent::Mem);
    }

    void
    clwb(const AccessCosts &costs, uint32_t flush_latency) override
    {
        Seg segs[4];
        uint32_t n = preSegs(costs, segs) - 1; // drop the mem segment
        segs[n++] = {CpiComponent::Flush, flush_latency};
        processUop(segs, n, kNone, kNone, Slot::Store,
                   CpiComponent::Flush);
    }

    void
    fence() override
    {
        // SFENCE: dispatches only after every prior uop completed, and
        // later uops wait for it.
        serializePoint_ = maxComplete_;
        const Seg seg{CpiComponent::Fence, 1};
        const uint64_t complete = processUop(&seg, 1, kNone, kNone,
                                             Slot::None,
                                             CpiComponent::Fence);
        raiseFetchAvail(complete, CpiComponent::Fence);
        serializePoint_ = 0;
    }

    uint64_t cycles() const override { return lastCommit_; }
    uint64_t uopCount() const override { return seq_; }

  private:
    static constexpr uint64_t kNone = 0;
    static constexpr uint32_t kWindow = 8192; ///< completion-ring slots

    enum class Slot : uint8_t { None, Load, Store };

    /** One execution-latency segment and who it belongs to. */
    struct Seg
    {
        CpiComponent comp;
        uint32_t cycles;
    };

    struct Completion
    {
        uint64_t tag = 0;
        uint64_t cycle = 0;
        CpiComponent comp = CpiComponent::Base; ///< dominant cost
    };

    /**
     * Time-ordered pre-access + access segments of @p costs, written
     * to @p out (skipping zero-length ones). @return segment count
     * (>= 1: the mem segment is always emitted so callers can pop it).
     */
    static uint32_t
    preSegs(const AccessCosts &costs, Seg out[4])
    {
        uint32_t n = 0;
        if (costs.polb)
            out[n++] = {CpiComponent::Polb, costs.polb};
        if (costs.pot)
            out[n++] = {CpiComponent::PotWalk, costs.pot};
        if (costs.tlb)
            out[n++] = {CpiComponent::Tlb, costs.tlb};
        out[n++] = {costs.mem_comp, costs.mem};
        return n;
    }

    /** Completion time of producer @p tag; 0 if long since done. */
    uint64_t
    depComplete(uint64_t tag) const
    {
        if (tag == kNone || tag + kWindow <= seq_)
            return 0;
        const Completion &c = completions_[tag % kWindow];
        return c.tag == tag ? c.cycle : 0;
    }

    /** Dominant CPI component of producer @p tag (Base if retired). */
    CpiComponent
    depComp(uint64_t tag) const
    {
        if (tag == kNone || tag + kWindow <= seq_)
            return CpiComponent::Base;
        const Completion &c = completions_[tag % kWindow];
        return c.tag == tag ? c.comp : CpiComponent::Base;
    }

    /** Raise the fetch redirect point and remember who caused it. */
    void
    raiseFetchAvail(uint64_t t, CpiComponent comp)
    {
        if (t > fetchAvail_) {
            fetchAvail_ = t;
            fetchAvailComp_ = chargeComp(comp);
        }
    }

    uint64_t
    dispatchAt(uint64_t earliest)
    {
        uint64_t c = std::max({earliest, dispCycle_, fetchAvail_});
        if (c > dispCycle_) {
            dispCycle_ = c;
            dispSlots_ = 0;
        }
        if (++dispSlots_ == width_) {
            ++dispCycle_;
            dispSlots_ = 0;
        }
        return c;
    }

    uint64_t
    commitAt(uint64_t earliest)
    {
        uint64_t c = std::max(earliest, commitCycle_);
        if (c > commitCycle_) {
            commitCycle_ = c;
            commitSlots_ = 0;
        }
        if (++commitSlots_ == width_) {
            ++commitCycle_;
            commitSlots_ = 0;
        }
        return c;
    }

    /**
     * Run one uop through dispatch/ready/complete/commit and attribute
     * the commit-time advance. @p segs (time-ordered, @p nsegs of
     * them) make up the execution latency; @p stall_comp is charged
     * when a structural resource (ROB/LQ/SQ) delays dispatch.
     */
    uint64_t
    processUop(const Seg *segs, uint32_t nsegs, uint64_t dep,
               uint64_t dep2, Slot slot, CpiComponent stall_comp)
    {
        ++seq_;

        const CpiComponent issue_comp = chargeComp(CpiComponent::Base);
        CpiComponent pre_comp = issue_comp; ///< why dispatch waited
        uint64_t pre_t = dispCycle_;
        auto consider = [&](uint64_t t, CpiComponent c) {
            if (t > pre_t) {
                pre_t = t;
                pre_comp = c;
            }
        };

        // Structural constraints: a ROB entry frees when the uop
        // robSize_ back commits; LQ/SQ likewise.
        uint64_t earliest = commitRing_[seq_ % robSize_];
        consider(earliest, chargeComp(stall_comp));
        if (slot == Slot::Load) {
            const uint64_t t = loadRing_[nLoads_ % lqSize_];
            earliest = std::max(earliest, t);
            consider(t, chargeComp(stall_comp));
        } else if (slot == Slot::Store) {
            const uint64_t t = storeRing_[nStores_ % sqSize_];
            earliest = std::max(earliest, t);
            consider(t, chargeComp(stall_comp));
        }
        earliest = std::max(earliest, serializePoint_);
        consider(serializePoint_, CpiComponent::Fence);
        consider(fetchAvail_, fetchAvailComp_);

        uint32_t exec_latency = 0;
        for (uint32_t i = 0; i < nsegs; ++i)
            exec_latency += segs[i].cycles;

        const uint64_t dispatch = dispatchAt(earliest);
        const uint64_t c1 = depComplete(dep);
        const uint64_t c2 = depComplete(dep2);
        const uint64_t ready = std::max({dispatch, c1, c2});
        const uint64_t complete = ready + exec_latency;
        maxComplete_ = std::max(maxComplete_, complete);

        const uint64_t commit = commitAt(complete);

        // ---- CPI attribution: the commit-time advance is this uop's
        // exposed cost; walk its timeline backwards to name it.
        uint64_t remaining = commit > lastCommit_ ? commit - lastCommit_
                                                  : 0;
        auto take = [&](uint64_t span, CpiComponent c) {
            if (remaining == 0 || span == 0)
                return;
            const uint64_t t = std::min(span, remaining);
            cpi_[c] += t;
            remaining -= t;
        };
        take(commit - complete, issue_comp);
        CpiComponent dominant = issue_comp;
        uint32_t dominant_cycles = 0;
        for (uint32_t i = nsegs; i-- > 0;) {
            const CpiComponent c = chargeComp(segs[i].comp);
            take(segs[i].cycles, c);
            if (segs[i].cycles >= dominant_cycles) {
                dominant_cycles = segs[i].cycles;
                dominant = c;
            }
        }
        if (ready > dispatch)
            take(ready - dispatch, c1 >= c2 ? depComp(dep)
                                            : depComp(dep2));
        if (remaining)
            cpi_[pre_comp] += remaining;

        lastCommit_ = std::max(lastCommit_, commit);
        commitRing_[seq_ % robSize_] = commit;
        if (slot == Slot::Load)
            loadRing_[nLoads_++ % lqSize_] = commit;
        else if (slot == Slot::Store)
            storeRing_[nStores_++ % sqSize_] = commit;
        completions_[seq_ % kWindow] = {seq_, complete, dominant};
        return complete;
    }

    uint32_t width_;
    uint32_t robSize_;
    uint32_t lqSize_;
    uint32_t sqSize_;
    uint32_t mispredictPenalty_;

    std::vector<uint64_t> commitRing_;
    std::vector<uint64_t> loadRing_;
    std::vector<uint64_t> storeRing_;
    std::vector<Completion> completions_;

    uint64_t seq_ = 0;
    uint64_t nLoads_ = 0;
    uint64_t nStores_ = 0;
    uint64_t fetchAvail_ = 0;
    CpiComponent fetchAvailComp_ = CpiComponent::Base;
    uint64_t dispCycle_ = 0;
    uint32_t dispSlots_ = 0;
    uint64_t commitCycle_ = 0;
    uint32_t commitSlots_ = 0;
    uint64_t maxComplete_ = 0;
    uint64_t serializePoint_ = 0;
    uint64_t lastCommit_ = 0;
};

} // namespace sim
} // namespace poat

#endif // POAT_SIM_CORE_OOO_H
