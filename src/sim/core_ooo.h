/**
 * @file
 * Out-of-order ROB-based timing model (paper section 4.4).
 *
 * A one-pass, instruction-window-centric model in the spirit of
 * Sniper's ROB core model: each uop is assigned a dispatch time
 * (bounded by fetch width, ROB occupancy, LQ/SQ occupancy, and branch
 * redirects), a ready time (producer completion via value tags), a
 * completion time (ready + execution latency), and an in-order,
 * width-limited commit time. Independent memory accesses overlap;
 * dependence chains — pointer chasing, translate-then-access —
 * serialize, which is exactly the structure the paper's OoO analysis
 * rests on (OoO hides part of the software-translation cost, shrinking
 * but not eliminating OPT's advantage).
 *
 * nvld/nvst translation latency arrives here as part of the load's
 * @p pre_stall: the POLB sits in the AGEN stage, so its latency (and
 * any POT walk) extends the time until the access can start.
 */
#ifndef POAT_SIM_CORE_OOO_H
#define POAT_SIM_CORE_OOO_H

#include <algorithm>
#include <vector>

#include "sim/config.h"
#include "sim/core.h"

namespace poat {
namespace sim {

/** ROB-based out-of-order superscalar model. */
class OooCore : public CoreModel
{
  public:
    explicit OooCore(const MachineConfig &cfg)
        : width_(cfg.issue_width), robSize_(cfg.rob_size),
          lqSize_(cfg.lq_size), sqSize_(cfg.sq_size),
          mispredictPenalty_(cfg.mispredict_penalty),
          commitRing_(cfg.rob_size, 0), loadRing_(cfg.lq_size, 0),
          storeRing_(cfg.sq_size, 0), completions_(kWindow)
    {
    }

    void
    alu(uint32_t count, uint64_t dep) override
    {
        for (uint32_t i = 0; i < count; ++i)
            processUop(1, i == 0 ? dep : kNone, kNone, Slot::None);
    }

    void
    branch(bool mispredict, uint64_t dep) override
    {
        const uint64_t complete = processUop(1, dep, kNone, Slot::None);
        if (mispredict) {
            fetchAvail_ =
                std::max(fetchAvail_, complete + mispredictPenalty_);
        }
    }

    uint64_t
    load(uint32_t pre_stall, uint32_t mem_latency, uint64_t dep,
         uint64_t dep2) override
    {
        processUop(pre_stall + mem_latency, dep, dep2, Slot::Load);
        return seq_;
    }

    void
    store(uint32_t pre_stall, uint32_t mem_latency, uint64_t dep) override
    {
        // The store completes once its address (incl. translation) is
        // generated; the data drains to memory after commit, which the
        // SQ-occupancy constraint models. The cache access latency
        // itself is off the critical path.
        (void)mem_latency;
        processUop(1 + pre_stall, dep, kNone, Slot::Store);
    }

    void
    clwb(uint32_t latency) override
    {
        processUop(latency, kNone, kNone, Slot::Store);
    }

    void
    fence() override
    {
        // SFENCE: dispatches only after every prior uop completed, and
        // later uops wait for it.
        serializePoint_ = maxComplete_;
        const uint64_t complete = processUop(1, kNone, kNone, Slot::None);
        fetchAvail_ = std::max(fetchAvail_, complete);
        serializePoint_ = 0;
    }

    uint64_t cycles() const override { return lastCommit_; }
    uint64_t uopCount() const override { return seq_; }

  private:
    static constexpr uint64_t kNone = 0;
    static constexpr uint32_t kWindow = 8192; ///< completion-ring slots

    enum class Slot : uint8_t { None, Load, Store };

    struct Completion
    {
        uint64_t tag = 0;
        uint64_t cycle = 0;
    };

    /** Completion time of producer @p tag; 0 if long since done. */
    uint64_t
    depComplete(uint64_t tag) const
    {
        if (tag == kNone || tag + kWindow <= seq_)
            return 0;
        const Completion &c = completions_[tag % kWindow];
        return c.tag == tag ? c.cycle : 0;
    }

    uint64_t
    dispatchAt(uint64_t earliest)
    {
        uint64_t c = std::max({earliest, dispCycle_, fetchAvail_});
        if (c > dispCycle_) {
            dispCycle_ = c;
            dispSlots_ = 0;
        }
        if (++dispSlots_ == width_) {
            ++dispCycle_;
            dispSlots_ = 0;
        }
        return c;
    }

    uint64_t
    commitAt(uint64_t earliest)
    {
        uint64_t c = std::max(earliest, commitCycle_);
        if (c > commitCycle_) {
            commitCycle_ = c;
            commitSlots_ = 0;
        }
        if (++commitSlots_ == width_) {
            ++commitCycle_;
            commitSlots_ = 0;
        }
        return c;
    }

    /** Run one uop through dispatch/ready/complete/commit. */
    uint64_t
    processUop(uint32_t exec_latency, uint64_t dep, uint64_t dep2,
               Slot slot)
    {
        ++seq_;

        // Structural constraints: a ROB entry frees when the uop
        // robSize_ back commits; LQ/SQ likewise.
        uint64_t earliest = commitRing_[seq_ % robSize_];
        if (slot == Slot::Load) {
            earliest = std::max(earliest, loadRing_[nLoads_ % lqSize_]);
        } else if (slot == Slot::Store) {
            earliest = std::max(earliest, storeRing_[nStores_ % sqSize_]);
        }
        earliest = std::max(earliest, serializePoint_);

        const uint64_t dispatch = dispatchAt(earliest);
        const uint64_t ready = std::max(
            {dispatch, depComplete(dep), depComplete(dep2)});
        const uint64_t complete = ready + exec_latency;
        maxComplete_ = std::max(maxComplete_, complete);

        const uint64_t commit = commitAt(complete);
        lastCommit_ = std::max(lastCommit_, commit);
        commitRing_[seq_ % robSize_] = commit;
        if (slot == Slot::Load)
            loadRing_[nLoads_++ % lqSize_] = commit;
        else if (slot == Slot::Store)
            storeRing_[nStores_++ % sqSize_] = commit;
        completions_[seq_ % kWindow] = {seq_, complete};
        return complete;
    }

    uint32_t width_;
    uint32_t robSize_;
    uint32_t lqSize_;
    uint32_t sqSize_;
    uint32_t mispredictPenalty_;

    std::vector<uint64_t> commitRing_;
    std::vector<uint64_t> loadRing_;
    std::vector<uint64_t> storeRing_;
    std::vector<Completion> completions_;

    uint64_t seq_ = 0;
    uint64_t nLoads_ = 0;
    uint64_t nStores_ = 0;
    uint64_t fetchAvail_ = 0;
    uint64_t dispCycle_ = 0;
    uint32_t dispSlots_ = 0;
    uint64_t commitCycle_ = 0;
    uint32_t commitSlots_ = 0;
    uint64_t maxComplete_ = 0;
    uint64_t serializePoint_ = 0;
    uint64_t lastCommit_ = 0;
};

} // namespace sim
} // namespace poat

#endif // POAT_SIM_CORE_OOO_H
