/**
 * @file
 * Machine: the full simulated system (paper Figure 5), generalized to
 * N cores.
 *
 * Machine implements TraceSink and simulates the dynamic instruction
 * stream online as the workload executes: it resolves every address
 * through the POLB/POT (nv accesses), TLB + page table (virtual
 * addresses), and the cache hierarchy, then hands each instruction with
 * its latency components to the configured core timing model.
 *
 * Multi-core: each core owns a private timing model, L1/L2, TLB,
 * branch predictor, and POLB; L3, memory, the page table, and the POT
 * are shared (paper section 3.3: the POT is a per-process OS
 * structure). The TraceSink::coreSwitch event selects which core the
 * following instructions retire on — the deterministic scheduler in
 * pmem/concurrent/sched.h interleaves software threads one at a time, so the
 * stream stays sequential and runs are bit-identical. Closing or
 * remapping a pool broadcasts a POLB shootdown to every core, the
 * hardware analogue of a TLB shootdown IPI.
 *
 * Observability: the machine owns the run's hierarchical StatsRegistry
 * ("polb.hits", "pot.walk_latency", ...; see docs/OBSERVABILITY.md).
 * Single-core machines emit exactly the original flat naming
 * ("core.cycles", "core.cpi", "cache.l1d.*") so existing golden
 * baselines survive; multi-core machines add per-core groups
 * ("core.<i>.cycles", "core.<i>.cpi") next to machine-wide aggregates
 * (cycles = makespan across cores, instruction and cache counters
 * summed). The per-core CPI invariant — components sum exactly to that
 * core's cycles — is asserted for every core on every stats sync.
 *
 * A POT miss on an nv access corresponds to the paper's trap to the
 * OS; since every pool a workload touches is mapped via poolMapped(),
 * hitting one here means a bug, so it panics.
 */
#ifndef POAT_SIM_MACHINE_H
#define POAT_SIM_MACHINE_H

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/trace_event.h"
#include "pmem/trace.h"
#include "telemetry/contention.h"
#include "sim/branch.h"
#include "sim/cache.h"
#include "sim/config.h"
#include "sim/core.h"
#include "sim/polb.h"
#include "sim/pot.h"
#include "sim/vm.h"

namespace poat {

namespace telemetry {
class TimelineSampler;
}

namespace sim {

/** Aggregate run metrics exported after simulation. */
struct MachineMetrics
{
    uint64_t cycles = 0; ///< makespan: max over cores
    uint64_t instructions = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t nv_loads = 0;
    uint64_t nv_stores = 0;
    uint64_t clwbs = 0;
    uint64_t fences = 0;
    uint64_t polb_hits = 0;
    uint64_t polb_misses = 0;
    uint64_t polb_evictions = 0;
    uint64_t polb_shootdowns = 0;
    uint64_t tlb_misses = 0;
    uint64_t l1d_misses = 0;
    uint64_t branch_mispredicts = 0;
    uint64_t pot_walks = 0;
    uint64_t pot_walk_probes = 0;

    double
    polbMissRate() const
    {
        const uint64_t n = polb_hits + polb_misses;
        return n ? static_cast<double>(polb_misses) / n : 0.0;
    }

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) / cycles : 0.0;
    }
};

/** N simulated cores plus their memory system and translation hardware. */
class Machine : public TraceSink
{
  public:
    explicit Machine(const MachineConfig &cfg);
    ~Machine() override { setTracer(nullptr); }

    /// @name TraceSink interface
    /// @{
    void alu(uint32_t count, uint64_t dep) override;
    void branch(bool taken, uint64_t pc, uint64_t dep) override;
    uint64_t load(uint64_t vaddr, uint64_t dep, uint64_t dep2) override;
    void store(uint64_t vaddr, uint64_t dep) override;
    uint64_t nvLoad(ObjectID oid, uint64_t dep, uint64_t dep2) override;
    void nvStore(ObjectID oid, uint64_t dep) override;
    void clwb(uint64_t vaddr) override;
    void nvClwb(ObjectID oid) override;
    void fence() override;
    void poolMapped(uint32_t pool_id, uint64_t vbase,
                    uint64_t size) override;
    void poolUnmapped(uint32_t pool_id) override;
    void coreSwitch(uint32_t core) override;
    void swTranslateBegin() override;
    void swTranslateEnd() override;
    void txBegin(uint32_t pool_id, uint32_t op) override;
    void txCommit(uint32_t pool_id) override;
    void txAbort(uint32_t pool_id) override;
    void opName(uint32_t op, const char *name) override;
    void opSet(uint32_t op) override;
    void lockWait(uint32_t worker, uint64_t key, uint8_t mode,
                  uint32_t edges) override;
    void lockAcquired(uint32_t worker, uint64_t key, uint8_t mode) override;
    void lockReleased(uint32_t worker, uint64_t key) override;
    void lockDeadlock(uint32_t worker, uint64_t key) override;
    void workerDone(uint32_t worker) override;
    void commitJoin(uint32_t worker) override;
    void commitBatch(uint32_t members, uint32_t elided) override;
    /// @}

    /** Collected metrics for the run so far. */
    MachineMetrics metrics() const;

    /** Makespan: cycles elapsed on the furthest-ahead core. */
    uint64_t cycles() const;

    /** Dynamic instructions observed, summed over cores. */
    uint64_t instructions() const;

    /** Number of simulated cores. */
    uint32_t numCores() const
    {
        return static_cast<uint32_t>(cores_.size());
    }

    /** Core the next instruction retires on (see coreSwitch). */
    uint32_t activeCore() const { return active_; }

    /**
     * Core @p core's CPI stack. Components sum exactly to that core's
     * cycles — both core models maintain the invariant per instruction,
     * and syncStats() asserts it for every core on every stats access.
     */
    const CpiStack &cpi(uint32_t core = 0) const
    {
        return cores_[core]->model->cpi();
    }

    /** Cycles elapsed on one specific core. */
    uint64_t coreCycles(uint32_t core) const
    {
        return cores_[core]->model->cycles();
    }

    /**
     * The machine's hierarchical statistics registry, with every scalar
     * counter synced to the components' current values. Histograms
     * (e.g. "pot.walk_latency") accumulate live during simulation.
     */
    const StatsRegistry &stats() const;

    /**
     * Write every counter the machine tracks as "name value" lines
     * (Sniper sim.out style), histogram summaries and formula stats
     * included.
     */
    void dumpStats(std::ostream &os) const;

    /** Emit the full registry as hierarchical JSON. */
    void dumpStatsJson(std::ostream &os, int indent = 0) const;

    /**
     * Attach (or detach, with nullptr) a cycle-stamped event tracer.
     * The machine does not own it, but holds exclusive producer rights
     * while attached: attaching a tracer that another machine already
     * holds panics (its ring buffer is single-producer; see
     * trace_event.h). Detach — or destroy the machine — to hand the
     * tracer to the next run.
     */
    void
    setTracer(EventTracer *tracer)
    {
        if (tracer_ == tracer)
            return;
        if (tracer_)
            tracer_->release();
        if (tracer)
            tracer->acquire();
        tracer_ = tracer;
    }
    EventTracer *tracer() const { return tracer_; }

    /**
     * Attach (or detach, with nullptr) an interval timeline sampler.
     * Binds the sampler's stats source to this machine's registry and
     * registers the machine-side occupancy gauges ("polb.occupancy",
     * "pot.outstanding_walks"); the caller adds any runtime-side
     * gauges afterwards and calls finish() when the run ends. The
     * sampler observes only — attaching one changes no simulated
     * state, so metrics and stats stay bit-identical.
     */
    /**
     * Attach (or detach, with nullptr) an interval timeline sampler.
     * With @p per_core_lanes set (and more than one core), also
     * registers per-core blocked-reason gauges
     * ("sched.core.<i>.blocked.<reason>.total", cumulative cycles) so
     * multi-core timelines carry one lane per core. Reporting-only:
     * simulated state and aggregate stats stay bit-identical.
     */
    void attachTimeline(telemetry::TimelineSampler *timeline,
                        bool per_core_lanes = false);
    telemetry::TimelineSampler *timeline() const { return timeline_; }

    /** The run's contention/blocking profiler (always-on observer). */
    const telemetry::ContentionProfiler &contention() const
    {
        return contention_;
    }

    const MachineConfig &config() const { return cfg_; }
    Polb &polb(uint32_t core = 0) { return cores_[core]->polb; }
    Pot &pot() { return pot_; }
    Tlb &tlb(uint32_t core = 0) { return cores_[core]->tlb; }
    CacheHierarchy &caches() { return caches_; }
    BranchPredictor &branchPredictor(uint32_t core = 0)
    {
        return cores_[core]->bp;
    }

  private:
    /**
     * Resolved translation of one nv access, with the pre-access
     * cycles kept per source so the core can attribute them.
     */
    struct NvXlat
    {
        uint32_t polb = 0; ///< POLB lookup latency
        uint32_t pot = 0;  ///< POT walk cycles (on a POLB miss)
        uint32_t tlb = 0;  ///< TLB-miss walk cycles
        uint64_t paddr = 0;

        uint32_t preStall() const { return polb + pot + tlb; }
    };

    /** An in-flight transaction span (see TraceSink::txBegin). */
    struct TxSpan
    {
        uint64_t begin_cycle = 0;
        uint32_t op = 0;
        uint64_t durab_at_begin = 0; ///< clwbs + fences when it opened
    };

    /** Everything private to one simulated core. */
    struct CoreState
    {
        explicit CoreState(const MachineConfig &cfg);

        std::unique_ptr<CoreModel> model;
        Tlb tlb;
        Polb polb;
        BranchPredictor bp;

        uint64_t instructions = 0;
        uint32_t swDepth = 0; ///< software-translation region nesting
        uint64_t loads = 0;
        uint64_t stores = 0;
        uint64_t nvLoads = 0;
        uint64_t nvStores = 0;
        uint64_t clwbs = 0;
        uint64_t fences = 0;

        // Transaction-span profiling (pure observation; no timing).
        std::map<uint32_t, TxSpan> openTx; ///< pool id -> open span
        uint64_t txBegins = 0;
        uint64_t txCommits = 0;
        uint64_t txAborts = 0;
    };

    /** Physical region where the in-memory POT walk reads its slots. */
    static constexpr uint64_t kPotPhysBase = 1ull << 46;

    CoreState &cur() { return *cores_[active_]; }
    const CoreState &cur() const { return *cores_[active_]; }

    /** TLB charge for a virtual access on the active core (0 on hit). */
    uint32_t tlbPenalty(uint64_t vaddr);

    /** Cycles a resolved POT walk costs under the configured model. */
    uint32_t potWalkCharge(const PotWalk &walk, bool parallel);

    /** Run @p oid through the configured POLB/POT design. */
    NvXlat translateNv(ObjectID oid);

    /** Sync every component counter and formula into stats_. */
    void syncStats() const;

    /** Give the timeline sampler the current cycle (if one is on). */
    void timelineTick();

    MachineConfig cfg_;
    std::vector<std::unique_ptr<CoreState>> cores_;
    uint32_t active_ = 0; ///< core the next instruction retires on
    CacheHierarchy caches_;
    PageTable pageTable_;
    Pot pot_;
    EventTracer *tracer_ = nullptr;
    telemetry::TimelineSampler *timeline_ = nullptr;

    mutable StatsRegistry stats_;
    // Hot-path histogram handles (stable: std::map nodes don't move).
    Histogram *hXlatLat_;    ///< polb.lookup_latency
    Histogram *hPotProbes_;  ///< pot.walk_probes
    Histogram *hPotLat_;     ///< pot.walk_latency
    Histogram *hNvLoadLat_;  ///< mem.nv_load_latency
    Histogram *hNvStoreLat_; ///< mem.nv_store_latency
    Histogram *hTxLat_;      ///< tx.latency
    Histogram *hTxDurab_;    ///< tx.durability_events

    std::map<uint32_t, Histogram *> opLat_; ///< op id -> tx.op.* hist

    /**
     * Concurrency observability (lock.*, sched.*, commit.batch.*,
     * tx.abort.*, cp.* stats). Always-on and purely observational;
     * syncStats() exports it only for multi-core machines or once
     * concurrency events were seen, so sequential runs keep their
     * exact pre-existing stats schema. Mutable: exportInto settles
     * attribution from const stats accessors.
     */
    mutable telemetry::ContentionProfiler contention_;

    uint64_t txRetries_ = 0; ///< concurrent-tx retry loops (see engine)
    uint64_t polbShootdowns_ = 0; ///< remote invalidations broadcast

    /**
     * POT walks in flight, exposed as the "pot.outstanding_walks"
     * timeline gauge. Today's walk model is atomic within a single
     * event, so samples always read 0; the gauge is the hook for
     * future overlapped/MSHR-style walk models.
     */
    uint64_t potOutstanding_ = 0;

  public:
    /**
     * Count an abort-retry loop iteration of the concurrent engine
     * ("tx.retries"). Pure bookkeeping: no instructions, no cycles.
     */
    void noteTxRetry() { ++txRetries_; }
};

} // namespace sim
} // namespace poat

#endif // POAT_SIM_MACHINE_H
