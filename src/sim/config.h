/**
 * @file
 * Machine configuration: the paper's Table 4 plus the POLB/POT knobs
 * swept in the evaluation (Figures 11 and 12).
 *
 * Defaults model the QuadCore Intel Xeon X5550 Gainestown (Nehalem-EP)
 * configuration the paper simulates with Sniper 6.1, at 2.66 GHz (so
 * 1 ns = ~3 cycles). One core is modeled: every workload in the paper
 * is single-threaded.
 */
#ifndef POAT_SIM_CONFIG_H
#define POAT_SIM_CONFIG_H

#include <cstdint>

namespace poat {
namespace sim {

/** Which pipeline timing model runs the trace. */
enum class CoreType : uint8_t
{
    InOrder,    ///< five-stage scalar pipeline
    OutOfOrder, ///< ROB-based superscalar (paper's ROB core model)
};

/** Which POLB organization translates nv accesses (paper section 4.1). */
enum class PolbDesign : uint8_t
{
    Pipelined, ///< pool id -> virtual base; before TLB/L1
    Parallel,  ///< (pool id, page) -> physical frame; beside L1
};

/** Replacement policy within a POLB set (see polb.h). */
enum class PolbReplacement : uint8_t
{
    Lru,
    Fifo,
    Random,
};

/** Parameters of one cache level. */
struct CacheConfig
{
    uint32_t size_bytes;
    uint32_t assoc;
    uint32_t latency; ///< total hit latency in cycles
};

/** Full machine configuration. */
struct MachineConfig
{
    CoreType core = CoreType::InOrder;

    /**
     * Simulated cores. Each core has a private L1/L2, TLB, branch
     * state, and POLB; L3, memory, the page table, and the POT are
     * shared. 1 reproduces the paper's single-core machine (and the
     * original flat stats naming, see Machine::syncStats).
     */
    uint32_t cores = 1;

    /// @name Out-of-order core (paper Table 4)
    /// @{
    uint32_t issue_width = 4;
    uint32_t rob_size = 128;
    uint32_t lq_size = 48;
    uint32_t sq_size = 32;
    /// @}

    /// @name Branches
    /// @{
    uint32_t mispredict_penalty = 8;
    /// @}

    /// @name Memory hierarchy (paper Table 4); line size 64 B
    /// @{
    CacheConfig l1d{32 * 1024, 8, 3};
    CacheConfig l2{256 * 1024, 8, 8};
    CacheConfig l3{8 * 1024 * 1024, 16, 27};
    uint32_t mem_latency = 120; ///< DRAM and NVM (battery-backed DRAM)
    uint32_t dtlb_entries = 64;
    uint32_t tlb_miss_penalty = 30;
    uint32_t store_buffer_entries = 8; ///< in-order core store buffer
    /// @}

    /// @name Proposed hardware
    /// @{
    PolbDesign polb_design = PolbDesign::Pipelined;
    uint32_t polb_entries = 32;   ///< 0 = no POLB (every access walks)
    uint32_t polb_latency = 3;    ///< tag lookup + translate (Pipelined)
    /**
     * Visible per-hit cost of the Pipelined POLB on the in-order core.
     * The POLB is a pipelined stage in front of the TLB/L1 access:
     * back-to-back accesses stream through it, so a hit exposes no
     * extra latency on the scalar pipeline (matching the paper's
     * evaluation, where the Pipelined design tracks the ideal closely
     * and beats Parallel via its lower miss rate and penalty). The
     * out-of-order core instead adds the full polb_latency to address
     * generation and hides it with ILP (paper section 4.4). The
     * ablation bench sweeps this knob.
     */
    uint32_t polb_inorder_hit_charge = 0;
    uint32_t pot_walk_pipelined = 30; ///< POLB-miss penalty (Pipelined)
    uint32_t pot_walk_parallel = 60;  ///< POT walk + page walk (Parallel)
    uint32_t pot_entries = 16384;
    /** POLB ways per set; 0 = fully associative (the paper's CAM). */
    uint32_t polb_assoc = 0;
    PolbReplacement polb_replacement = PolbReplacement::Lru;
    /**
     * Model the POT walk as real memory accesses instead of a fixed
     * charge: each probe reads its POT slot through the cache
     * hierarchy (the POT lives in cacheable memory, so hot walks cost
     * an L1 hit and cold ones a memory round trip). This answers the
     * paper's section 6.4 expectation that "caching [would] reduce the
     * penalty of POT accesses". Parallel additionally pays
     * page_walk_cycles for the page-table walk that follows.
     */
    bool pot_walk_in_memory = false;
    uint32_t pot_probe_logic_cycles = 2; ///< compare/advance per probe
    uint32_t page_walk_cycles = 30; ///< Parallel's follow-on page walk
    /**
     * Ideal translation (the red dots in Figure 9): POLB access and POT
     * walks cost zero cycles.
     */
    bool ideal_translation = false;
    /// @}

    uint32_t clwb_latency = 100; ///< pessimistic fixed CLWB cost

    /** Convenience: the ideal-hardware variant of this config. */
    MachineConfig
    ideal() const
    {
        MachineConfig c = *this;
        c.ideal_translation = true;
        return c;
    }
};

} // namespace sim
} // namespace poat

#endif // POAT_SIM_CONFIG_H
