/**
 * @file
 * Persistent Object Table (paper sections 3.2 and 4.2).
 *
 * The per-process, in-memory table backing the POLB, walked by hardware
 * the way x86 walks page tables (Figure 7): hash the pool id to an
 * index, then linearly probe until the entry's pool id matches (legal
 * translation) or an invalid entry is reached (missing translation ->
 * trap). Pool id 0 marks an invalid entry, which is why pool id 0 can
 * never exist. The paper sizes the POT at 16384 entries (256 KB).
 */
#ifndef POAT_SIM_POT_H
#define POAT_SIM_POT_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/logging.h"

namespace poat {
namespace sim {

/** Result of a POT walk. */
struct PotWalk
{
    static constexpr uint32_t kMaxRecorded = 16;

    bool found = false;
    uint64_t base = 0;   ///< virtual base address of the pool
    uint32_t probes = 0; ///< slots inspected (>=1)
    /** Indices of the first probed slots (for memory-walk modeling). */
    uint32_t slots[kMaxRecorded] = {};
};

/** Hash table with linear probing, walked on POLB misses. */
class Pot
{
  public:
    explicit Pot(uint32_t entries) : slots_(entries)
    {
        POAT_ASSERT(entries != 0 && (entries & (entries - 1)) == 0,
                    "POT size must be a power of two");
    }

    /** Install a pool's translation (pool_create / pool_open). */
    void
    insert(uint32_t pool_id, uint64_t base)
    {
        POAT_ASSERT(pool_id != 0, "pool id 0 is the invalid marker");
        uint32_t idx = hash(pool_id);
        Slot *reusable = nullptr;
        for (uint32_t i = 0; i < slots_.size(); ++i) {
            Slot &s = slots_[idx];
            if (s.pool_id == pool_id) { // refresh in place
                s.base = base;
                return;
            }
            if (s.pool_id == kTombstone && !reusable) {
                reusable = &s;
            } else if (s.pool_id == 0) {
                Slot &dst = reusable ? *reusable : s;
                dst.pool_id = pool_id;
                dst.base = base;
                ++live_;
                return;
            }
            idx = (idx + 1) & (slots_.size() - 1);
        }
        if (reusable) {
            reusable->pool_id = pool_id;
            reusable->base = base;
            ++live_;
            return;
        }
        POAT_FATAL("POT is full");
    }

    /**
     * Remove a pool (pool_close). Uses tombstones so linear-probe
     * chains through the removed slot stay intact.
     */
    void
    remove(uint32_t pool_id)
    {
        uint32_t idx = hash(pool_id);
        for (uint32_t i = 0; i < slots_.size(); ++i) {
            Slot &s = slots_[idx];
            if (s.pool_id == pool_id) {
                s.pool_id = kTombstone;
                --live_;
                return;
            }
            if (s.pool_id == 0)
                return; // never present
            idx = (idx + 1) & (slots_.size() - 1);
        }
    }

    /** Hardware walk: probe until match or invalid entry. */
    PotWalk
    walk(uint32_t pool_id)
    {
        PotWalk r;
        uint32_t idx = hash(pool_id);
        for (uint32_t i = 0; i < slots_.size(); ++i) {
            if (r.probes < PotWalk::kMaxRecorded)
                r.slots[r.probes] = idx;
            ++r.probes;
            const Slot &s = slots_[idx];
            if (s.pool_id == pool_id) {
                r.found = true;
                r.base = s.base;
                ++walks_;
                probesTotal_ += r.probes;
                return r;
            }
            if (s.pool_id == 0)
                break; // invalid entry: translation missing -> trap
            idx = (idx + 1) & (slots_.size() - 1);
        }
        ++walks_;
        probesTotal_ += r.probes;
        return r;
    }

    size_t liveEntries() const { return live_; }
    uint64_t walks() const { return walks_; }
    uint64_t probesTotal() const { return probesTotal_; }

    double
    avgProbes() const
    {
        return walks_ ? static_cast<double>(probesTotal_) / walks_ : 0.0;
    }

  private:
    // Tombstone: probing continues through it, but it never matches a
    // real pool id (real ids are 32-bit nonzero; slot ids are 64-bit).
    static constexpr uint64_t kTombstone = 1ull << 40;

    struct Slot
    {
        uint64_t pool_id = 0;
        uint64_t base = 0;
    };

    uint32_t
    hash(uint32_t pool_id) const
    {
        // Fibonacci hash onto the table (power-of-two size).
        const uint32_t h = pool_id * 2654435761u;
        return h & (slots_.size() - 1);
    }

    std::vector<Slot> slots_;
    size_t live_ = 0;
    uint64_t walks_ = 0;
    uint64_t probesTotal_ = 0;
};

} // namespace sim
} // namespace poat

#endif // POAT_SIM_POT_H
