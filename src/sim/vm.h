/**
 * @file
 * Virtual memory: demand-paged page table and the D-TLB.
 *
 * The paper relies on the conventional VA->PA machinery underneath both
 * translation designs: the Pipelined POLB emits virtual addresses that
 * go through the TLB like any load, and the Parallel POLB's miss path
 * performs a page-table walk after the POT walk. Frames are assigned on
 * first touch, sequentially, so physical addresses are dense and
 * deterministic for a given access order.
 */
#ifndef POAT_SIM_VM_H
#define POAT_SIM_VM_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "pmem/addrspace.h"

namespace poat {
namespace sim {

/** Demand-paged page table: vpn -> pfn, filling frames on first use. */
class PageTable
{
  public:
    /** Physical frame of @p vaddr's page, allocating on first touch. */
    uint64_t
    translate(uint64_t vaddr)
    {
        const uint64_t vpn = vaddr / kPageSize;
        auto [it, inserted] = map_.try_emplace(vpn, nextFrame_);
        if (inserted)
            ++nextFrame_;
        return it->second * kPageSize + vaddr % kPageSize;
    }

    /** Frame number of @p vaddr's page (allocating on first touch). */
    uint64_t
    frameOf(uint64_t vaddr)
    {
        return translate(vaddr) / kPageSize;
    }

    size_t mappedPages() const { return map_.size(); }

  private:
    std::unordered_map<uint64_t, uint64_t> map_;
    uint64_t nextFrame_ = 1; // frame 0 unused so paddr 0 never appears
};

/** Fully associative, true-LRU data TLB. */
class Tlb
{
  public:
    explicit Tlb(uint32_t entries) : entries_(entries) {}

    /**
     * Look up @p vaddr's page, installing it on miss.
     * @return true on hit.
     */
    bool
    access(uint64_t vaddr)
    {
        const uint64_t vpn = vaddr / kPageSize;
        ++tick_;
        for (auto &e : slots_) {
            if (e.vpn == vpn) {
                e.lru = tick_;
                ++hits_;
                return true;
            }
        }
        ++misses_;
        if (slots_.size() < entries_) {
            slots_.push_back({vpn, tick_});
            return false;
        }
        auto victim = slots_.begin();
        for (auto it = slots_.begin(); it != slots_.end(); ++it) {
            if (it->lru < victim->lru)
                victim = it;
        }
        *victim = {vpn, tick_};
        return false;
    }

    void
    reset()
    {
        slots_.clear();
        tick_ = 0;
    }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

    double
    missRate() const
    {
        const uint64_t n = hits_ + misses_;
        return n ? static_cast<double>(misses_) / n : 0.0;
    }

  private:
    struct Slot
    {
        uint64_t vpn;
        uint64_t lru;
    };

    uint32_t entries_;
    std::vector<Slot> slots_;
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace sim
} // namespace poat

#endif // POAT_SIM_VM_H
