/**
 * @file
 * Core timing-model interface.
 *
 * The Machine (the TraceSink) resolves all address translation and
 * memory-system latencies, then presents each dynamic instruction to a
 * CoreModel in terms of two latency components:
 *
 *  - @p pre_stall: cycles spent *before* the cache access can start
 *    (POLB lookup, POT walk, TLB-miss walk). The in-order pipeline
 *    stalls for these; the out-of-order core adds them to the
 *    instruction's address-generation latency (paper section 4.4: the
 *    POLB sits in AGEN, and the AGU stalls for a POT walk).
 *  - @p mem_latency: end-to-end latency of the cache/memory access.
 *
 * Load-like operations return monotonically increasing value tags;
 * later operations name their producers by tag (see pmem/trace.h).
 */
#ifndef POAT_SIM_CORE_H
#define POAT_SIM_CORE_H

#include <cstdint>

namespace poat {
namespace sim {

/**
 * Where the cycles went: a CPI-stack-style breakdown maintained by the
 * in-order core (the out-of-order core overlaps components, so only
 * the total is meaningful there and the breakdown stays zero).
 */
struct CycleBreakdown
{
    uint64_t alu = 0;        ///< issue cycles of ALU ops and branches
    uint64_t branch = 0;     ///< mispredict flush cycles
    uint64_t memory = 0;     ///< cache/memory access cycles
    uint64_t translation = 0; ///< POLB/POT/TLB walk stalls (pre-stall)
    uint64_t flush = 0;      ///< CLWB latencies
    uint64_t fence = 0;      ///< store-buffer drain waits

    uint64_t
    total() const
    {
        return alu + branch + memory + translation + flush + fence;
    }
};

/** Abstract pipeline timing model. */
class CoreModel
{
  public:
    virtual ~CoreModel() = default;

    /** @p count single-cycle ALU ops; first consumes tag @p dep. */
    virtual void alu(uint32_t count, uint64_t dep) = 0;

    /** A conditional branch; @p mispredict charges the redirect. */
    virtual void branch(bool mispredict, uint64_t dep) = 0;

    /**
     * A load: @p pre_stall cycles of translation work, then a
     * @p mem_latency -cycle access. @return the value tag.
     */
    virtual uint64_t load(uint32_t pre_stall, uint32_t mem_latency,
                          uint64_t dep, uint64_t dep2) = 0;

    /** A store (retires through a store buffer / the SQ). */
    virtual void store(uint32_t pre_stall, uint32_t mem_latency,
                       uint64_t dep) = 0;

    /** A CLWB with fixed @p latency (paper: 100 cycles). */
    virtual void clwb(uint32_t latency) = 0;

    /** SFENCE: later work waits for outstanding stores/flushes. */
    virtual void fence() = 0;

    /** Cycles elapsed so far (time of the last committed uop). */
    virtual uint64_t cycles() const = 0;

    /** Dynamic uops processed. */
    virtual uint64_t uopCount() const = 0;

    /** CPI-stack breakdown; all-zero for models that overlap work. */
    virtual CycleBreakdown breakdown() const { return {}; }
};

} // namespace sim
} // namespace poat

#endif // POAT_SIM_CORE_H
