/**
 * @file
 * Core timing-model interface.
 *
 * The Machine (the TraceSink) resolves all address translation and
 * memory-system latencies, then presents each dynamic instruction to a
 * CoreModel as an AccessCosts record: the translation work that happens
 * *before* the cache access can start (POLB lookup, POT walk, TLB-miss
 * walk — the in-order pipeline stalls for these; the out-of-order core
 * adds them to the instruction's address-generation latency, paper
 * section 4.4), plus the end-to-end cache/memory access latency with
 * the level that serviced it.
 *
 * Keeping the components separate (instead of one pre_stall scalar) is
 * what lets both cores maintain an exact CPI stack: every cycle of a
 * run is charged to one named CpiComponent, and the components sum to
 * cycles() — sim::Machine asserts this on every stats sync.
 *
 * Load-like operations return monotonically increasing value tags;
 * later operations name their producers by tag (see pmem/trace.h).
 */
#ifndef POAT_SIM_CORE_H
#define POAT_SIM_CORE_H

#include <cstdint>

#include "common/cpi.h"

namespace poat {
namespace sim {

/**
 * Latency components of one memory operation, as resolved by the
 * Machine. polb/pot/tlb happen before the access starts; mem is the
 * access itself, attributed to the servicing level via mem_comp.
 */
struct AccessCosts
{
    uint32_t polb = 0; ///< POLB lookup latency (AGEN path)
    uint32_t pot = 0;  ///< POT hash-walk cycles on a POLB miss
    uint32_t tlb = 0;  ///< TLB-miss page-walk cycles
    uint32_t mem = 0;  ///< cache/memory access latency
    CpiComponent mem_comp = CpiComponent::L1D; ///< who serviced mem

    /** Cycles before the cache access can start. */
    uint32_t preStall() const { return polb + pot + tlb; }

    /** End-to-end latency of the operation. */
    uint32_t total() const { return preStall() + mem; }
};

/** Abstract pipeline timing model. */
class CoreModel
{
  public:
    virtual ~CoreModel() = default;

    /** @p count single-cycle ALU ops; first consumes tag @p dep. */
    virtual void alu(uint32_t count, uint64_t dep) = 0;

    /** A conditional branch; @p mispredict charges the redirect. */
    virtual void branch(bool mispredict, uint64_t dep) = 0;

    /** A load with the given latency components. @return value tag. */
    virtual uint64_t load(const AccessCosts &costs, uint64_t dep,
                          uint64_t dep2) = 0;

    /** A store (retires through a store buffer / the SQ). */
    virtual void store(const AccessCosts &costs, uint64_t dep) = 0;

    /**
     * A CLWB: @p costs carries the translation work (mem is unused),
     * @p flush_latency the fixed flush cost (paper: 100 cycles).
     */
    virtual void clwb(const AccessCosts &costs,
                      uint32_t flush_latency) = 0;

    /** SFENCE: later work waits for outstanding stores/flushes. */
    virtual void fence() = 0;

    /** Cycles elapsed so far (time of the last committed uop). */
    virtual uint64_t cycles() const = 0;

    /** Dynamic uops processed. */
    virtual uint64_t uopCount() const = 0;

    /**
     * The core's CPI stack. Invariant: cpi().total() == cycles() at
     * every instruction boundary, for every model.
     */
    const CpiStack &cpi() const { return cpi_; }

    /**
     * Enter/leave a software-translation region (the Machine forwards
     * TraceSink::swTranslateBegin/End here). While active, every cycle
     * the core would charge anywhere is charged to sw_translate: the
     * translator's loads, branches, and stalls are all overhead the
     * paper's hardware removes (Table 2, Figure 12).
     */
    void setSwTranslate(bool active) { swRegion_ = active; }

  protected:
    /** Component @p c, redirected to SwTranslate inside a region. */
    CpiComponent
    chargeComp(CpiComponent c) const
    {
        return swRegion_ ? CpiComponent::SwTranslate : c;
    }

    /** Charge @p n cycles to component @p c (region-redirected). */
    void charge(CpiComponent c, uint64_t n) { cpi_[chargeComp(c)] += n; }

    CpiStack cpi_;
    bool swRegion_ = false;
};

} // namespace sim
} // namespace poat

#endif // POAT_SIM_CORE_H
