/**
 * @file
 * Branch predictor: a Pentium M-class hybrid, as configured in the
 * paper's Sniper setup (Table 4: "Branch predictor: Pentium M").
 *
 * The Pentium M combines a local bimodal table with a global-history
 * predictor; we model that as a bimodal table plus a gshare table with
 * a per-entry chooser. Branch sites are identified by the synthetic
 * `pc` values workloads attach to branch events.
 */
#ifndef POAT_SIM_BRANCH_H
#define POAT_SIM_BRANCH_H

#include <cstdint>
#include <vector>

namespace poat {
namespace sim {

/** Hybrid bimodal/gshare predictor with a chooser. */
class BranchPredictor
{
  public:
    static constexpr uint32_t kTableBits = 12;
    static constexpr uint32_t kTableSize = 1u << kTableBits;

    BranchPredictor()
        : bimodal_(kTableSize, 2), gshare_(kTableSize, 2),
          chooser_(kTableSize, 2)
    {
    }

    /**
     * Predict, then update with the actual outcome.
     * @return true iff the prediction was wrong (mispredict).
     */
    bool
    predictAndUpdate(uint64_t pc, bool taken)
    {
        const uint32_t bi = indexOf(pc);
        const uint32_t gi = indexOf(pc ^ (history_ << 2));

        const bool bim_pred = bimodal_[bi] >= 2;
        const bool gsh_pred = gshare_[gi] >= 2;
        const bool use_gshare = chooser_[bi] >= 2;
        const bool pred = use_gshare ? gsh_pred : bim_pred;

        // Chooser trains toward whichever component was right.
        if (bim_pred != gsh_pred) {
            if (gsh_pred == taken)
                bump(chooser_[bi], true);
            else
                bump(chooser_[bi], false);
        }
        bump(bimodal_[bi], taken);
        bump(gshare_[gi], taken);
        history_ = ((history_ << 1) | (taken ? 1 : 0)) &
            (kTableSize - 1);

        ++branches_;
        if (pred != taken)
            ++mispredicts_;
        return pred != taken;
    }

    uint64_t branches() const { return branches_; }
    uint64_t mispredicts() const { return mispredicts_; }

    double
    mispredictRate() const
    {
        return branches_ ? static_cast<double>(mispredicts_) / branches_
                         : 0.0;
    }

  private:
    static uint32_t
    indexOf(uint64_t pc)
    {
        return static_cast<uint32_t>((pc >> 2) ^ (pc >> 14)) &
            (kTableSize - 1);
    }

    static void
    bump(uint8_t &ctr, bool up)
    {
        if (up && ctr < 3)
            ++ctr;
        else if (!up && ctr > 0)
            --ctr;
    }

    std::vector<uint8_t> bimodal_;
    std::vector<uint8_t> gshare_;
    std::vector<uint8_t> chooser_;
    uint32_t history_ = 0;
    uint64_t branches_ = 0;
    uint64_t mispredicts_ = 0;
};

} // namespace sim
} // namespace poat

#endif // POAT_SIM_BRANCH_H
