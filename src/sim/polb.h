/**
 * @file
 * Persistent Object Look-aside Buffer (paper sections 3.2 and 4.1).
 *
 * A small CAM-tagged translation cache inside the core. The two designs
 * differ only in what a key/value pair means, so one structure serves
 * both:
 *
 *  - Pipelined: key = pool id (32 bits), value = the pool's 64-bit
 *    virtual base address. Sized to the number of live pools.
 *  - Parallel: key = the upper 52 bits of the ObjectID (pool id plus
 *    page-within-pool), value = the 52-bit physical frame number. Sized
 *    to the number of *active pages*, hence the contention the paper
 *    reports in Table 8/9.
 *
 * The paper evaluates a fully associative, true-LRU CAM; this model
 * additionally supports set-associative organizations and FIFO/random
 * replacement for the associativity ablation (a cheaper POLB is the
 * natural follow-up question for a structure on the load path).
 *
 * polb_entries == 0 models the "no POLB" bar of Figure 11: every nv
 * access pays the POT walk.
 */
#ifndef POAT_SIM_POLB_H
#define POAT_SIM_POLB_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/logging.h"
#include "sim/config.h"

namespace poat {
namespace sim {

/** Set-associative (or fully associative) translation buffer. */
class Polb
{
  public:
    /**
     * @param entries Total entries; 0 disables the structure.
     * @param assoc Ways per set; 0 means fully associative.
     */
    explicit Polb(uint32_t entries, uint32_t assoc = 0,
                  PolbReplacement repl = PolbReplacement::Lru)
        : entries_(entries), repl_(repl)
    {
        if (entries_ == 0) {
            sets_ = 0;
            assoc_ = 0;
            return;
        }
        assoc_ = (assoc == 0 || assoc > entries_) ? entries_ : assoc;
        POAT_ASSERT(entries_ % assoc_ == 0,
                    "POLB entries must divide evenly into ways");
        sets_ = entries_ / assoc_;
        slots_.resize(entries_);
    }

    /**
     * Look up @p key, updating recency on hit and counting statistics.
     * @return the cached value, or nullopt on miss.
     */
    std::optional<uint64_t>
    lookup(uint64_t key)
    {
        ++tick_;
        if (entries_ != 0) {
            Slot *set = setOf(key);
            for (uint32_t w = 0; w < assoc_; ++w) {
                if (set[w].valid && set[w].key == key) {
                    if (repl_ == PolbReplacement::Lru)
                        set[w].stamp = tick_;
                    ++hits_;
                    return set[w].value;
                }
            }
        }
        ++misses_;
        return std::nullopt;
    }

    /** Probe without statistics or recency effects (tests). */
    bool
    contains(uint64_t key) const
    {
        if (entries_ == 0)
            return false;
        const Slot *set = setOf(key);
        for (uint32_t w = 0; w < assoc_; ++w) {
            if (set[w].valid && set[w].key == key)
                return true;
        }
        return false;
    }

    /** Install a translation, evicting per the policy when full. */
    void
    insert(uint64_t key, uint64_t value)
    {
        if (entries_ == 0)
            return;
        Slot *set = setOf(key);
        Slot *victim = &set[0];
        for (uint32_t w = 0; w < assoc_; ++w) {
            Slot &s = set[w];
            if (s.valid && s.key == key) { // refresh in place
                s.value = value;
                if (repl_ == PolbReplacement::Lru)
                    s.stamp = tick_;
                return;
            }
            if (!s.valid) {
                victim = &s;
                break;
            }
            if (victim->valid && s.stamp < victim->stamp)
                victim = &s;
        }
        if (victim->valid && repl_ == PolbReplacement::Random)
            victim = &set[xorshift() % assoc_];
        if (victim->valid)
            ++evictions_;
        victim->valid = true;
        victim->key = key;
        victim->value = value;
        victim->stamp = tick_; // LRU recency == FIFO insertion time here
    }

    /**
     * Drop every entry whose key satisfies @p pred; used on pool_close
     * (unmap must not leave stale translations behind).
     */
    template <typename Pred>
    void
    invalidateIf(Pred &&pred)
    {
        for (Slot &s : slots_) {
            if (s.valid && pred(s.key))
                s.valid = false;
        }
    }

    void
    reset()
    {
        for (Slot &s : slots_)
            s.valid = false;
        tick_ = 0;
    }

    uint32_t capacity() const { return entries_; }
    uint32_t associativity() const { return assoc_; }

    size_t
    occupancy() const
    {
        size_t n = 0;
        for (const Slot &s : slots_)
            n += s.valid;
        return n;
    }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t accesses() const { return hits_ + misses_; }
    uint64_t evictions() const { return evictions_; }

    double
    missRate() const
    {
        const uint64_t n = accesses();
        return n ? static_cast<double>(misses_) / n : 0.0;
    }

  private:
    struct Slot
    {
        uint64_t key = 0;
        uint64_t value = 0;
        uint64_t stamp = 0;
        bool valid = false;
    };

    Slot *
    setOf(uint64_t key)
    {
        // Multiplicative hash spreads pool ids and page keys evenly.
        const uint64_t h = (key * 0x9e3779b97f4a7c15ull) >> 32;
        return &slots_[(h % sets_) * assoc_];
    }

    const Slot *
    setOf(uint64_t key) const
    {
        const uint64_t h = (key * 0x9e3779b97f4a7c15ull) >> 32;
        return &slots_[(h % sets_) * assoc_];
    }

    uint32_t
    xorshift()
    {
        rngState_ ^= rngState_ << 13;
        rngState_ ^= rngState_ >> 7;
        rngState_ ^= rngState_ << 17;
        return static_cast<uint32_t>(rngState_);
    }

    uint32_t entries_;
    uint32_t assoc_ = 0;
    uint32_t sets_ = 0;
    PolbReplacement repl_;
    std::vector<Slot> slots_;
    uint64_t tick_ = 0;
    uint64_t rngState_ = 0x2545f4914f6cdd1dull;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
};

} // namespace sim
} // namespace poat

#endif // POAT_SIM_POLB_H
