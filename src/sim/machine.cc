#include "sim/machine.h"

#include <algorithm>

#include "sim/core_inorder.h"
#include "sim/core_ooo.h"
#include "telemetry/timeline.h"

namespace poat {
namespace sim {

namespace {

/** CPI component of the cache level that serviced an access. */
CpiComponent
levelComp(CacheHierarchy::Level level)
{
    switch (level) {
      case CacheHierarchy::Level::L1:
        return CpiComponent::L1D;
      case CacheHierarchy::Level::L2:
        return CpiComponent::L2;
      case CacheHierarchy::Level::L3:
        return CpiComponent::L3;
      case CacheHierarchy::Level::Memory:
        break;
    }
    return CpiComponent::Mem;
}

} // namespace

Machine::Machine(const MachineConfig &cfg)
    : cfg_(cfg), caches_(cfg), tlb_(cfg.dtlb_entries),
      polb_(cfg.polb_entries, cfg.polb_assoc, cfg.polb_replacement),
      pot_(cfg.pot_entries)
{
    if (cfg.core == CoreType::InOrder)
        core_ = std::make_unique<InOrderCore>(cfg);
    else
        core_ = std::make_unique<OooCore>(cfg);

    hXlatLat_ = &stats_.histogram("polb.lookup_latency");
    hPotProbes_ = &stats_.histogram("pot.walk_probes");
    hPotLat_ = &stats_.histogram("pot.walk_latency");
    hNvLoadLat_ = &stats_.histogram("mem.nv_load_latency");
    hNvStoreLat_ = &stats_.histogram("mem.nv_store_latency");
    hTxLat_ = &stats_.histogram("tx.latency");
    hTxDurab_ = &stats_.histogram("tx.durability_events");

    stats_.formula("polb.miss_rate", "polb.misses", "polb.accesses");
    stats_.formula("tlb.miss_rate", "tlb.misses", "tlb.accesses");
    stats_.formula("cache.l1d.miss_rate", "cache.l1d.misses",
                   "cache.l1d.accesses");
    stats_.formula("cache.l2.miss_rate", "cache.l2.misses",
                   "cache.l2.accesses");
    stats_.formula("cache.l3.miss_rate", "cache.l3.misses",
                   "cache.l3.accesses");
    stats_.formula("branch.mispredict_rate", "branch.mispredicts",
                   "branch.lookups");
    stats_.formula("core.ipc", "core.instructions", "core.cycles");
}

uint32_t
Machine::tlbPenalty(uint64_t vaddr)
{
    return tlb_.access(vaddr) ? 0 : cfg_.tlb_miss_penalty;
}

void
Machine::timelineTick()
{
    timeline_->tick(core_->cycles());
}

void
Machine::alu(uint32_t count, uint64_t dep)
{
    instructions_ += count;
    core_->alu(count, dep);
    if (timeline_)
        timelineTick();
}

void
Machine::branch(bool taken, uint64_t pc, uint64_t dep)
{
    ++instructions_;
    const bool mispredict = bp_.predictAndUpdate(pc, taken);
    core_->branch(mispredict, dep);
    if (timeline_)
        timelineTick();
}

uint64_t
Machine::load(uint64_t vaddr, uint64_t dep, uint64_t dep2)
{
    ++instructions_;
    ++loads_;
    AccessCosts costs;
    costs.tlb = tlbPenalty(vaddr);
    const uint64_t pa = pageTable_.translate(vaddr);
    const auto acc = caches_.accessClassified(pa, false);
    costs.mem = acc.latency;
    costs.mem_comp = levelComp(acc.level);
    const uint64_t tag = core_->load(costs, dep, dep2);
    if (timeline_)
        timelineTick();
    return tag;
}

void
Machine::store(uint64_t vaddr, uint64_t dep)
{
    ++instructions_;
    ++stores_;
    AccessCosts costs;
    costs.tlb = tlbPenalty(vaddr);
    const uint64_t pa = pageTable_.translate(vaddr);
    const auto acc = caches_.accessClassified(pa, true);
    costs.mem = acc.latency;
    costs.mem_comp = levelComp(acc.level);
    core_->store(costs, dep);
    if (timeline_)
        timelineTick();
}

uint32_t
Machine::potWalkCharge(const PotWalk &walk, bool parallel)
{
    if (!cfg_.pot_walk_in_memory)
        return parallel ? cfg_.pot_walk_parallel
                        : cfg_.pot_walk_pipelined;
    // Memory-mode walk: each probe reads its 16-byte POT slot through
    // the cache hierarchy (the POT is ordinary cacheable memory at a
    // dedicated physical region), plus per-probe compare logic.
    uint32_t cycles = 0;
    const uint32_t recorded =
        std::min(walk.probes, PotWalk::kMaxRecorded);
    for (uint32_t i = 0; i < recorded; ++i) {
        const uint64_t pa = kPotPhysBase + 16ull * walk.slots[i];
        cycles += caches_.access(pa, false) +
            cfg_.pot_probe_logic_cycles;
    }
    if (parallel)
        cycles += cfg_.page_walk_cycles;
    return cycles;
}

Machine::NvXlat
Machine::translateNv(ObjectID oid)
{
    const bool ideal = cfg_.ideal_translation;
    NvXlat x;

    if (cfg_.polb_design == PolbDesign::Pipelined) {
        // POLB lookup happens in AGEN, before the TLB/L1 access. The
        // in-order pipeline sees only the residual bubble of this
        // extra (pipelined) stage; the OoO core adds the full latency
        // to address generation.
        x.polb = ideal ? 0
                 : cfg_.core == CoreType::InOrder
                     ? cfg_.polb_inorder_hit_charge
                     : cfg_.polb_latency;
        uint64_t base;
        if (auto hit = polb_.lookup(oid.poolId())) {
            base = *hit;
            POAT_TRACE(tracer_, core_->cycles(), TraceComponent::Polb,
                       TraceOutcome::Hit, oid.raw, x.polb);
        } else {
            const PotWalk w = pot_.walk(oid.poolId());
            if (!w.found)
                POAT_PANIC("POT miss: nv access to an unmapped pool");
            ++potOutstanding_;
            x.pot = ideal ? 0 : potWalkCharge(w, /*parallel=*/false);
            --potOutstanding_;
            hPotProbes_->record(w.probes);
            hPotLat_->record(x.pot);
            POAT_TRACE(tracer_, core_->cycles(), TraceComponent::Pot,
                       TraceOutcome::Walk, oid.raw, x.pot);
            base = w.base;
            polb_.insert(oid.poolId(), base);
        }
        hXlatLat_->record(x.polb + x.pot);
        const uint64_t vaddr = base + oid.offset();
        x.tlb = tlbPenalty(vaddr);
        if (x.tlb != 0) {
            POAT_TRACE(tracer_, core_->cycles(), TraceComponent::Tlb,
                       TraceOutcome::Miss, oid.raw, x.tlb);
        }
        x.paddr = pageTable_.translate(vaddr);
        return x;
    }

    // Parallel: the POLB maps the upper 52 ObjectID bits straight to a
    // physical frame; the low 12 bits index the VIPT L1 in parallel, so
    // a hit costs nothing extra and the TLB is not consulted.
    const uint64_t key = oid.raw >> 12;
    if (auto hit = polb_.lookup(key)) {
        x.paddr = (*hit) * kPageSize + oid.offset() % kPageSize;
        hXlatLat_->record(0);
        POAT_TRACE(tracer_, core_->cycles(), TraceComponent::Polb,
                   TraceOutcome::Hit, oid.raw, 0);
        return x;
    }
    const PotWalk w = pot_.walk(oid.poolId());
    if (!w.found)
        POAT_PANIC("POT miss: nv access to an unmapped pool");
    ++potOutstanding_;
    if (!ideal)
        x.pot = potWalkCharge(w, /*parallel=*/true);
    --potOutstanding_;
    hPotProbes_->record(w.probes);
    hPotLat_->record(x.pot);
    hXlatLat_->record(x.pot);
    POAT_TRACE(tracer_, core_->cycles(), TraceComponent::Pot,
               TraceOutcome::Walk, oid.raw, x.pot);
    const uint64_t vaddr = w.base + oid.offset();
    const uint64_t pfn = pageTable_.frameOf(vaddr);
    polb_.insert(key, pfn);
    x.paddr = pfn * kPageSize + oid.offset() % kPageSize;
    return x;
}

uint64_t
Machine::nvLoad(ObjectID oid, uint64_t dep, uint64_t dep2)
{
    ++instructions_;
    ++nvLoads_;
    const NvXlat x = translateNv(oid);
    const auto acc = caches_.accessClassified(x.paddr, false);
    hNvLoadLat_->record(x.preStall() + acc.latency);
    POAT_TRACE(tracer_, core_->cycles(), TraceComponent::NvAccess,
               TraceOutcome::Load, oid.raw, x.preStall() + acc.latency);
    AccessCosts costs{x.polb, x.pot, x.tlb, acc.latency,
                      levelComp(acc.level)};
    const uint64_t tag = core_->load(costs, dep, dep2);
    if (timeline_)
        timelineTick();
    return tag;
}

void
Machine::nvStore(ObjectID oid, uint64_t dep)
{
    ++instructions_;
    ++nvStores_;
    const NvXlat x = translateNv(oid);
    const auto acc = caches_.accessClassified(x.paddr, true);
    hNvStoreLat_->record(x.preStall() + acc.latency);
    POAT_TRACE(tracer_, core_->cycles(), TraceComponent::NvAccess,
               TraceOutcome::Store, oid.raw, x.preStall() + acc.latency);
    AccessCosts costs{x.polb, x.pot, x.tlb, acc.latency,
                      levelComp(acc.level)};
    core_->store(costs, dep);
    if (timeline_)
        timelineTick();
}

void
Machine::clwb(uint64_t vaddr)
{
    ++instructions_;
    ++clwbs_;
    AccessCosts costs;
    costs.tlb = tlbPenalty(vaddr);
    const uint64_t pa = pageTable_.translate(vaddr);
    caches_.flushLine(pa);
    core_->clwb(costs, cfg_.clwb_latency);
    if (timeline_)
        timelineTick();
}

void
Machine::nvClwb(ObjectID oid)
{
    ++instructions_;
    ++clwbs_;
    const NvXlat x = translateNv(oid);
    caches_.flushLine(x.paddr);
    POAT_TRACE(tracer_, core_->cycles(), TraceComponent::NvAccess,
               TraceOutcome::Flush, oid.raw,
               cfg_.clwb_latency + x.preStall());
    AccessCosts costs{x.polb, x.pot, x.tlb, 0, CpiComponent::L1D};
    core_->clwb(costs, cfg_.clwb_latency);
    if (timeline_)
        timelineTick();
}

void
Machine::fence()
{
    ++instructions_;
    ++fences_;
    core_->fence();
    if (timeline_)
        timelineTick();
}

void
Machine::poolMapped(uint32_t pool_id, uint64_t vbase, uint64_t)
{
    pot_.insert(pool_id, vbase);
}

void
Machine::swTranslateBegin()
{
    if (swDepth_++ == 0)
        core_->setSwTranslate(true);
}

void
Machine::swTranslateEnd()
{
    POAT_ASSERT(swDepth_ > 0, "unbalanced swTranslateEnd");
    if (--swDepth_ == 0)
        core_->setSwTranslate(false);
}

void
Machine::txBegin(uint32_t pool_id, uint32_t op)
{
    ++txBegins_;
    openTx_[pool_id] = TxSpan{core_->cycles(), op, clwbs_ + fences_};
}

void
Machine::txCommit(uint32_t pool_id)
{
    const auto it = openTx_.find(pool_id);
    POAT_ASSERT(it != openTx_.end(), "txCommit without txBegin");
    ++txCommits_;
    const uint64_t latency = core_->cycles() - it->second.begin_cycle;
    hTxLat_->record(latency);
    hTxDurab_->record(clwbs_ + fences_ - it->second.durab_at_begin);
    const auto op = opLat_.find(it->second.op);
    if (op != opLat_.end())
        op->second->record(latency);
    openTx_.erase(it);
}

void
Machine::txAbort(uint32_t pool_id)
{
    const auto it = openTx_.find(pool_id);
    POAT_ASSERT(it != openTx_.end(), "txAbort without txBegin");
    ++txAborts_;
    openTx_.erase(it);
}

void
Machine::opName(uint32_t op, const char *name)
{
    opLat_[op] =
        &stats_.histogram("tx.op." + std::string(name) + ".latency");
}

void
Machine::attachTimeline(telemetry::TimelineSampler *timeline)
{
    timeline_ = timeline;
    if (!timeline_)
        return;
    timeline_->setStatsSource(
        [this]() -> const StatsRegistry & { return stats(); });
    timeline_->addGauge("polb.occupancy", [this] {
        return static_cast<uint64_t>(polb_.occupancy());
    });
    timeline_->addGauge("pot.outstanding_walks",
                        [this] { return potOutstanding_; });
}

void
Machine::poolUnmapped(uint32_t pool_id)
{
    pot_.remove(pool_id);
    if (cfg_.polb_design == PolbDesign::Pipelined) {
        polb_.invalidateIf(
            [pool_id](uint64_t key) { return key == pool_id; });
    } else {
        polb_.invalidateIf([pool_id](uint64_t key) {
            return (key >> 20) == pool_id;
        });
    }
}

void
Machine::syncStats() const
{
    StatsRegistry &reg = stats_;
    const CpiStack &cpi = core_->cpi();
    POAT_ASSERT(cpi.total() == core_->cycles(),
                "CPI stack does not sum to total cycles");
    reg.counter("core.cycles") = core_->cycles();
    reg.counter("core.instructions") = instructions_;
    reg.counter("core.uops") = core_->uopCount();
    reg.cpiStack("core.cpi") = cpi;
    reg.counter("mem.loads") = loads_;
    reg.counter("mem.stores") = stores_;
    reg.counter("mem.nv_loads") = nvLoads_;
    reg.counter("mem.nv_stores") = nvStores_;
    reg.counter("mem.clwbs") = clwbs_;
    reg.counter("mem.fences") = fences_;
    reg.counter("cache.l1d.hits") = caches_.l1().hits();
    reg.counter("cache.l1d.misses") = caches_.l1().misses();
    reg.counter("cache.l1d.accesses") =
        caches_.l1().hits() + caches_.l1().misses();
    reg.counter("cache.l1d.writebacks") = caches_.l1().writebacks();
    reg.counter("cache.l2.hits") = caches_.l2().hits();
    reg.counter("cache.l2.misses") = caches_.l2().misses();
    reg.counter("cache.l2.accesses") =
        caches_.l2().hits() + caches_.l2().misses();
    reg.counter("cache.l2.writebacks") = caches_.l2().writebacks();
    reg.counter("cache.l3.hits") = caches_.l3().hits();
    reg.counter("cache.l3.misses") = caches_.l3().misses();
    reg.counter("cache.l3.accesses") =
        caches_.l3().hits() + caches_.l3().misses();
    reg.counter("cache.l3.writebacks") = caches_.l3().writebacks();
    reg.counter("cache.mem_accesses") = caches_.memAccesses();
    reg.counter("tlb.hits") = tlb_.hits();
    reg.counter("tlb.misses") = tlb_.misses();
    reg.counter("tlb.accesses") = tlb_.hits() + tlb_.misses();
    reg.counter("polb.hits") = polb_.hits();
    reg.counter("polb.misses") = polb_.misses();
    reg.counter("polb.accesses") = polb_.accesses();
    reg.counter("polb.evictions") = polb_.evictions();
    reg.counter("polb.capacity") = polb_.capacity();
    reg.counter("pot.walks") = pot_.walks();
    reg.counter("pot.probes") = pot_.probesTotal();
    reg.counter("pot.live_entries") = pot_.liveEntries();
    reg.counter("branch.lookups") = bp_.branches();
    reg.counter("branch.mispredicts") = bp_.mispredicts();
    reg.counter("vm.mapped_pages") = pageTable_.mappedPages();
    reg.counter("tx.begins") = txBegins_;
    reg.counter("tx.commits") = txCommits_;
    reg.counter("tx.aborts") = txAborts_;
    reg.counter("tx.retries") = txRetries_;
}

const StatsRegistry &
Machine::stats() const
{
    syncStats();
    return stats_;
}

void
Machine::dumpStats(std::ostream &os) const
{
    stats().dump(os);
}

void
Machine::dumpStatsJson(std::ostream &os, int indent) const
{
    stats().dumpJson(os, indent);
}

MachineMetrics
Machine::metrics() const
{
    MachineMetrics m;
    m.cycles = core_->cycles();
    m.instructions = instructions_;
    m.loads = loads_;
    m.stores = stores_;
    m.nv_loads = nvLoads_;
    m.nv_stores = nvStores_;
    m.clwbs = clwbs_;
    m.fences = fences_;
    m.polb_hits = polb_.hits();
    m.polb_misses = polb_.misses();
    m.polb_evictions = polb_.evictions();
    m.tlb_misses = tlb_.misses();
    m.l1d_misses = caches_.l1().misses();
    m.branch_mispredicts = bp_.mispredicts();
    m.pot_walks = pot_.walks();
    m.pot_walk_probes = pot_.probesTotal();
    return m;
}

} // namespace sim
} // namespace poat
