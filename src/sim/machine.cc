#include "sim/machine.h"

#include <algorithm>

#include "sim/core_inorder.h"
#include "sim/core_ooo.h"

namespace poat {
namespace sim {

Machine::Machine(const MachineConfig &cfg)
    : cfg_(cfg), caches_(cfg), tlb_(cfg.dtlb_entries),
      polb_(cfg.polb_entries, cfg.polb_assoc, cfg.polb_replacement),
      pot_(cfg.pot_entries)
{
    if (cfg.core == CoreType::InOrder)
        core_ = std::make_unique<InOrderCore>(cfg);
    else
        core_ = std::make_unique<OooCore>(cfg);

    hXlatLat_ = &stats_.histogram("polb.lookup_latency");
    hPotProbes_ = &stats_.histogram("pot.walk_probes");
    hPotLat_ = &stats_.histogram("pot.walk_latency");
    hNvLoadLat_ = &stats_.histogram("mem.nv_load_latency");
    hNvStoreLat_ = &stats_.histogram("mem.nv_store_latency");

    stats_.formula("polb.miss_rate", "polb.misses", "polb.accesses");
    stats_.formula("tlb.miss_rate", "tlb.misses", "tlb.accesses");
    stats_.formula("cache.l1d.miss_rate", "cache.l1d.misses",
                   "cache.l1d.accesses");
    stats_.formula("cache.l2.miss_rate", "cache.l2.misses",
                   "cache.l2.accesses");
    stats_.formula("cache.l3.miss_rate", "cache.l3.misses",
                   "cache.l3.accesses");
    stats_.formula("branch.mispredict_rate", "branch.mispredicts",
                   "branch.lookups");
    stats_.formula("core.ipc", "core.instructions", "core.cycles");
}

uint32_t
Machine::tlbPenalty(uint64_t vaddr)
{
    return tlb_.access(vaddr) ? 0 : cfg_.tlb_miss_penalty;
}

void
Machine::alu(uint32_t count, uint64_t dep)
{
    instructions_ += count;
    core_->alu(count, dep);
}

void
Machine::branch(bool taken, uint64_t pc, uint64_t dep)
{
    ++instructions_;
    const bool mispredict = bp_.predictAndUpdate(pc, taken);
    core_->branch(mispredict, dep);
}

uint64_t
Machine::load(uint64_t vaddr, uint64_t dep, uint64_t dep2)
{
    ++instructions_;
    ++loads_;
    const uint32_t pre = tlbPenalty(vaddr);
    const uint64_t pa = pageTable_.translate(vaddr);
    const uint32_t lat = caches_.access(pa, false);
    return core_->load(pre, lat, dep, dep2);
}

void
Machine::store(uint64_t vaddr, uint64_t dep)
{
    ++instructions_;
    ++stores_;
    const uint32_t pre = tlbPenalty(vaddr);
    const uint64_t pa = pageTable_.translate(vaddr);
    const uint32_t lat = caches_.access(pa, true);
    core_->store(pre, lat, dep);
}

uint32_t
Machine::potWalkCharge(const PotWalk &walk, bool parallel)
{
    if (!cfg_.pot_walk_in_memory)
        return parallel ? cfg_.pot_walk_parallel
                        : cfg_.pot_walk_pipelined;
    // Memory-mode walk: each probe reads its 16-byte POT slot through
    // the cache hierarchy (the POT is ordinary cacheable memory at a
    // dedicated physical region), plus per-probe compare logic.
    uint32_t cycles = 0;
    const uint32_t recorded =
        std::min(walk.probes, PotWalk::kMaxRecorded);
    for (uint32_t i = 0; i < recorded; ++i) {
        const uint64_t pa = kPotPhysBase + 16ull * walk.slots[i];
        cycles += caches_.access(pa, false) +
            cfg_.pot_probe_logic_cycles;
    }
    if (parallel)
        cycles += cfg_.page_walk_cycles;
    return cycles;
}

Machine::NvXlat
Machine::translateNv(ObjectID oid)
{
    const bool ideal = cfg_.ideal_translation;
    NvXlat x{0, 0};

    if (cfg_.polb_design == PolbDesign::Pipelined) {
        // POLB lookup happens in AGEN, before the TLB/L1 access. The
        // in-order pipeline sees only the residual bubble of this
        // extra (pipelined) stage; the OoO core adds the full latency
        // to address generation.
        x.pre_stall = ideal ? 0
                      : cfg_.core == CoreType::InOrder
                          ? cfg_.polb_inorder_hit_charge
                          : cfg_.polb_latency;
        uint64_t base;
        if (auto hit = polb_.lookup(oid.poolId())) {
            base = *hit;
            POAT_TRACE(tracer_, core_->cycles(), TraceComponent::Polb,
                       TraceOutcome::Hit, oid.raw, x.pre_stall);
        } else {
            const PotWalk w = pot_.walk(oid.poolId());
            if (!w.found)
                POAT_PANIC("POT miss: nv access to an unmapped pool");
            const uint32_t walk_cycles =
                ideal ? 0 : potWalkCharge(w, /*parallel=*/false);
            x.pre_stall += walk_cycles;
            hPotProbes_->record(w.probes);
            hPotLat_->record(walk_cycles);
            POAT_TRACE(tracer_, core_->cycles(), TraceComponent::Pot,
                       TraceOutcome::Walk, oid.raw, walk_cycles);
            base = w.base;
            polb_.insert(oid.poolId(), base);
        }
        hXlatLat_->record(x.pre_stall);
        const uint64_t vaddr = base + oid.offset();
        const uint32_t tlb_pen = tlbPenalty(vaddr);
        if (tlb_pen != 0) {
            POAT_TRACE(tracer_, core_->cycles(), TraceComponent::Tlb,
                       TraceOutcome::Miss, oid.raw, tlb_pen);
        }
        x.pre_stall += tlb_pen;
        x.paddr = pageTable_.translate(vaddr);
        return x;
    }

    // Parallel: the POLB maps the upper 52 ObjectID bits straight to a
    // physical frame; the low 12 bits index the VIPT L1 in parallel, so
    // a hit costs nothing extra and the TLB is not consulted.
    const uint64_t key = oid.raw >> 12;
    if (auto hit = polb_.lookup(key)) {
        x.paddr = (*hit) * kPageSize + oid.offset() % kPageSize;
        hXlatLat_->record(0);
        POAT_TRACE(tracer_, core_->cycles(), TraceComponent::Polb,
                   TraceOutcome::Hit, oid.raw, 0);
        return x;
    }
    const PotWalk w = pot_.walk(oid.poolId());
    if (!w.found)
        POAT_PANIC("POT miss: nv access to an unmapped pool");
    if (!ideal)
        x.pre_stall = potWalkCharge(w, /*parallel=*/true);
    hPotProbes_->record(w.probes);
    hPotLat_->record(x.pre_stall);
    hXlatLat_->record(x.pre_stall);
    POAT_TRACE(tracer_, core_->cycles(), TraceComponent::Pot,
               TraceOutcome::Walk, oid.raw, x.pre_stall);
    const uint64_t vaddr = w.base + oid.offset();
    const uint64_t pfn = pageTable_.frameOf(vaddr);
    polb_.insert(key, pfn);
    x.paddr = pfn * kPageSize + oid.offset() % kPageSize;
    return x;
}

uint64_t
Machine::nvLoad(ObjectID oid, uint64_t dep, uint64_t dep2)
{
    ++instructions_;
    ++nvLoads_;
    const NvXlat x = translateNv(oid);
    const uint32_t lat = caches_.access(x.paddr, false);
    hNvLoadLat_->record(x.pre_stall + lat);
    POAT_TRACE(tracer_, core_->cycles(), TraceComponent::NvAccess,
               TraceOutcome::Load, oid.raw, x.pre_stall + lat);
    return core_->load(x.pre_stall, lat, dep, dep2);
}

void
Machine::nvStore(ObjectID oid, uint64_t dep)
{
    ++instructions_;
    ++nvStores_;
    const NvXlat x = translateNv(oid);
    const uint32_t lat = caches_.access(x.paddr, true);
    hNvStoreLat_->record(x.pre_stall + lat);
    POAT_TRACE(tracer_, core_->cycles(), TraceComponent::NvAccess,
               TraceOutcome::Store, oid.raw, x.pre_stall + lat);
    core_->store(x.pre_stall, lat, dep);
}

void
Machine::clwb(uint64_t vaddr)
{
    ++instructions_;
    ++clwbs_;
    const uint32_t pre = tlbPenalty(vaddr);
    const uint64_t pa = pageTable_.translate(vaddr);
    caches_.flushLine(pa);
    core_->clwb(cfg_.clwb_latency + pre);
}

void
Machine::nvClwb(ObjectID oid)
{
    ++instructions_;
    ++clwbs_;
    const NvXlat x = translateNv(oid);
    caches_.flushLine(x.paddr);
    POAT_TRACE(tracer_, core_->cycles(), TraceComponent::NvAccess,
               TraceOutcome::Flush, oid.raw,
               cfg_.clwb_latency + x.pre_stall);
    core_->clwb(cfg_.clwb_latency + x.pre_stall);
}

void
Machine::fence()
{
    ++instructions_;
    ++fences_;
    core_->fence();
}

void
Machine::poolMapped(uint32_t pool_id, uint64_t vbase, uint64_t)
{
    pot_.insert(pool_id, vbase);
}

void
Machine::poolUnmapped(uint32_t pool_id)
{
    pot_.remove(pool_id);
    if (cfg_.polb_design == PolbDesign::Pipelined) {
        polb_.invalidateIf(
            [pool_id](uint64_t key) { return key == pool_id; });
    } else {
        polb_.invalidateIf([pool_id](uint64_t key) {
            return (key >> 20) == pool_id;
        });
    }
}

void
Machine::syncStats() const
{
    StatsRegistry &reg = stats_;
    const CycleBreakdown b = core_->breakdown();
    reg.counter("core.cycles") = core_->cycles();
    reg.counter("core.instructions") = instructions_;
    reg.counter("core.uops") = core_->uopCount();
    reg.counter("core.cycles.alu") = b.alu;
    reg.counter("core.cycles.branch") = b.branch;
    reg.counter("core.cycles.memory") = b.memory;
    reg.counter("core.cycles.translation") = b.translation;
    reg.counter("core.cycles.flush") = b.flush;
    reg.counter("core.cycles.fence") = b.fence;
    reg.counter("mem.loads") = loads_;
    reg.counter("mem.stores") = stores_;
    reg.counter("mem.nv_loads") = nvLoads_;
    reg.counter("mem.nv_stores") = nvStores_;
    reg.counter("mem.clwbs") = clwbs_;
    reg.counter("mem.fences") = fences_;
    reg.counter("cache.l1d.hits") = caches_.l1().hits();
    reg.counter("cache.l1d.misses") = caches_.l1().misses();
    reg.counter("cache.l1d.accesses") =
        caches_.l1().hits() + caches_.l1().misses();
    reg.counter("cache.l1d.writebacks") = caches_.l1().writebacks();
    reg.counter("cache.l2.hits") = caches_.l2().hits();
    reg.counter("cache.l2.misses") = caches_.l2().misses();
    reg.counter("cache.l2.accesses") =
        caches_.l2().hits() + caches_.l2().misses();
    reg.counter("cache.l2.writebacks") = caches_.l2().writebacks();
    reg.counter("cache.l3.hits") = caches_.l3().hits();
    reg.counter("cache.l3.misses") = caches_.l3().misses();
    reg.counter("cache.l3.accesses") =
        caches_.l3().hits() + caches_.l3().misses();
    reg.counter("cache.l3.writebacks") = caches_.l3().writebacks();
    reg.counter("cache.mem_accesses") = caches_.memAccesses();
    reg.counter("tlb.hits") = tlb_.hits();
    reg.counter("tlb.misses") = tlb_.misses();
    reg.counter("tlb.accesses") = tlb_.hits() + tlb_.misses();
    reg.counter("polb.hits") = polb_.hits();
    reg.counter("polb.misses") = polb_.misses();
    reg.counter("polb.accesses") = polb_.accesses();
    reg.counter("polb.evictions") = polb_.evictions();
    reg.counter("polb.capacity") = polb_.capacity();
    reg.counter("pot.walks") = pot_.walks();
    reg.counter("pot.probes") = pot_.probesTotal();
    reg.counter("pot.live_entries") = pot_.liveEntries();
    reg.counter("branch.lookups") = bp_.branches();
    reg.counter("branch.mispredicts") = bp_.mispredicts();
    reg.counter("vm.mapped_pages") = pageTable_.mappedPages();
}

const StatsRegistry &
Machine::stats() const
{
    syncStats();
    return stats_;
}

void
Machine::dumpStats(std::ostream &os) const
{
    stats().dump(os);
}

void
Machine::dumpStatsJson(std::ostream &os, int indent) const
{
    stats().dumpJson(os, indent);
}

MachineMetrics
Machine::metrics() const
{
    MachineMetrics m;
    m.cycles = core_->cycles();
    m.instructions = instructions_;
    m.loads = loads_;
    m.stores = stores_;
    m.nv_loads = nvLoads_;
    m.nv_stores = nvStores_;
    m.clwbs = clwbs_;
    m.fences = fences_;
    m.polb_hits = polb_.hits();
    m.polb_misses = polb_.misses();
    m.polb_evictions = polb_.evictions();
    m.tlb_misses = tlb_.misses();
    m.l1d_misses = caches_.l1().misses();
    m.branch_mispredicts = bp_.mispredicts();
    m.pot_walks = pot_.walks();
    m.pot_walk_probes = pot_.probesTotal();
    return m;
}

} // namespace sim
} // namespace poat
