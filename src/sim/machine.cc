#include "sim/machine.h"

#include <algorithm>

#include "sim/core_inorder.h"
#include "sim/core_ooo.h"
#include "telemetry/timeline.h"

namespace poat {
namespace sim {

namespace {

/** CPI component of the cache level that serviced an access. */
CpiComponent
levelComp(CacheHierarchy::Level level)
{
    switch (level) {
      case CacheHierarchy::Level::L1:
        return CpiComponent::L1D;
      case CacheHierarchy::Level::L2:
        return CpiComponent::L2;
      case CacheHierarchy::Level::L3:
        return CpiComponent::L3;
      case CacheHierarchy::Level::Memory:
        break;
    }
    return CpiComponent::Mem;
}

} // namespace

Machine::CoreState::CoreState(const MachineConfig &cfg)
    : tlb(cfg.dtlb_entries),
      polb(cfg.polb_entries, cfg.polb_assoc, cfg.polb_replacement)
{
    if (cfg.core == CoreType::InOrder)
        model = std::make_unique<InOrderCore>(cfg);
    else
        model = std::make_unique<OooCore>(cfg);
}

Machine::Machine(const MachineConfig &cfg)
    : cfg_(cfg), caches_(cfg), pot_(cfg.pot_entries)
{
    const uint32_t n = cfg.cores ? cfg.cores : 1;
    cores_.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        cores_.push_back(std::make_unique<CoreState>(cfg));

    hXlatLat_ = &stats_.histogram("polb.lookup_latency");
    hPotProbes_ = &stats_.histogram("pot.walk_probes");
    hPotLat_ = &stats_.histogram("pot.walk_latency");
    hNvLoadLat_ = &stats_.histogram("mem.nv_load_latency");
    hNvStoreLat_ = &stats_.histogram("mem.nv_store_latency");
    hTxLat_ = &stats_.histogram("tx.latency");
    hTxDurab_ = &stats_.histogram("tx.durability_events");

    stats_.formula("polb.miss_rate", "polb.misses", "polb.accesses");
    stats_.formula("tlb.miss_rate", "tlb.misses", "tlb.accesses");
    stats_.formula("cache.l1d.miss_rate", "cache.l1d.misses",
                   "cache.l1d.accesses");
    stats_.formula("cache.l2.miss_rate", "cache.l2.misses",
                   "cache.l2.accesses");
    stats_.formula("cache.l3.miss_rate", "cache.l3.misses",
                   "cache.l3.accesses");
    stats_.formula("branch.mispredict_rate", "branch.mispredicts",
                   "branch.lookups");
    stats_.formula("core.ipc", "core.instructions", "core.cycles");
}

uint64_t
Machine::cycles() const
{
    uint64_t makespan = 0;
    for (const auto &c : cores_)
        makespan = std::max(makespan, c->model->cycles());
    return makespan;
}

uint64_t
Machine::instructions() const
{
    uint64_t n = 0;
    for (const auto &c : cores_)
        n += c->instructions;
    return n;
}

uint32_t
Machine::tlbPenalty(uint64_t vaddr)
{
    return cur().tlb.access(vaddr) ? 0 : cfg_.tlb_miss_penalty;
}

void
Machine::timelineTick()
{
    timeline_->tick(cur().model->cycles());
}

void
Machine::coreSwitch(uint32_t core)
{
    POAT_ASSERT(core < cores_.size(), "coreSwitch to a core beyond N");
    const uint32_t prev = active_;
    contention_.coreSwitchIn(core, prev, cycles());
    active_ = core;
    POAT_TRACE(tracer_, cores_[core]->model->cycles(),
               TraceComponent::Core, TraceOutcome::Switch, core, 0);
}

void
Machine::alu(uint32_t count, uint64_t dep)
{
    CoreState &c = cur();
    c.instructions += count;
    c.model->alu(count, dep);
    if (timeline_)
        timelineTick();
}

void
Machine::branch(bool taken, uint64_t pc, uint64_t dep)
{
    CoreState &c = cur();
    ++c.instructions;
    const bool mispredict = c.bp.predictAndUpdate(pc, taken);
    c.model->branch(mispredict, dep);
    if (timeline_)
        timelineTick();
}

uint64_t
Machine::load(uint64_t vaddr, uint64_t dep, uint64_t dep2)
{
    CoreState &c = cur();
    ++c.instructions;
    ++c.loads;
    AccessCosts costs;
    costs.tlb = tlbPenalty(vaddr);
    const uint64_t pa = pageTable_.translate(vaddr);
    const auto acc = caches_.accessClassified(active_, pa, false);
    costs.mem = acc.latency;
    costs.mem_comp = levelComp(acc.level);
    const uint64_t tag = c.model->load(costs, dep, dep2);
    if (timeline_)
        timelineTick();
    return tag;
}

void
Machine::store(uint64_t vaddr, uint64_t dep)
{
    CoreState &c = cur();
    ++c.instructions;
    ++c.stores;
    AccessCosts costs;
    costs.tlb = tlbPenalty(vaddr);
    const uint64_t pa = pageTable_.translate(vaddr);
    const auto acc = caches_.accessClassified(active_, pa, true);
    costs.mem = acc.latency;
    costs.mem_comp = levelComp(acc.level);
    c.model->store(costs, dep);
    if (timeline_)
        timelineTick();
}

uint32_t
Machine::potWalkCharge(const PotWalk &walk, bool parallel)
{
    if (!cfg_.pot_walk_in_memory)
        return parallel ? cfg_.pot_walk_parallel
                        : cfg_.pot_walk_pipelined;
    // Memory-mode walk: each probe reads its 16-byte POT slot through
    // the cache hierarchy (the POT is ordinary cacheable memory at a
    // dedicated physical region), plus per-probe compare logic.
    uint32_t cycles = 0;
    const uint32_t recorded =
        std::min(walk.probes, PotWalk::kMaxRecorded);
    for (uint32_t i = 0; i < recorded; ++i) {
        const uint64_t pa = kPotPhysBase + 16ull * walk.slots[i];
        cycles += caches_.access(active_, pa, false) +
            cfg_.pot_probe_logic_cycles;
    }
    if (parallel)
        cycles += cfg_.page_walk_cycles;
    return cycles;
}

Machine::NvXlat
Machine::translateNv(ObjectID oid)
{
    const bool ideal = cfg_.ideal_translation;
    CoreState &c = cur();
    NvXlat x;

    if (cfg_.polb_design == PolbDesign::Pipelined) {
        // POLB lookup happens in AGEN, before the TLB/L1 access. The
        // in-order pipeline sees only the residual bubble of this
        // extra (pipelined) stage; the OoO core adds the full latency
        // to address generation.
        x.polb = ideal ? 0
                 : cfg_.core == CoreType::InOrder
                     ? cfg_.polb_inorder_hit_charge
                     : cfg_.polb_latency;
        uint64_t base;
        if (auto hit = c.polb.lookup(oid.poolId())) {
            base = *hit;
            POAT_TRACE(tracer_, c.model->cycles(), TraceComponent::Polb,
                       TraceOutcome::Hit, oid.raw, x.polb);
        } else {
            const PotWalk w = pot_.walk(oid.poolId());
            if (!w.found)
                POAT_PANIC("POT miss: nv access to an unmapped pool");
            ++potOutstanding_;
            x.pot = ideal ? 0 : potWalkCharge(w, /*parallel=*/false);
            --potOutstanding_;
            hPotProbes_->record(w.probes);
            hPotLat_->record(x.pot);
            POAT_TRACE(tracer_, c.model->cycles(), TraceComponent::Pot,
                       TraceOutcome::Walk, oid.raw, x.pot);
            base = w.base;
            c.polb.insert(oid.poolId(), base);
        }
        hXlatLat_->record(x.polb + x.pot);
        const uint64_t vaddr = base + oid.offset();
        x.tlb = tlbPenalty(vaddr);
        if (x.tlb != 0) {
            POAT_TRACE(tracer_, c.model->cycles(), TraceComponent::Tlb,
                       TraceOutcome::Miss, oid.raw, x.tlb);
        }
        x.paddr = pageTable_.translate(vaddr);
        return x;
    }

    // Parallel: the POLB maps the upper 52 ObjectID bits straight to a
    // physical frame; the low 12 bits index the VIPT L1 in parallel, so
    // a hit costs nothing extra and the TLB is not consulted.
    const uint64_t key = oid.raw >> 12;
    if (auto hit = c.polb.lookup(key)) {
        x.paddr = (*hit) * kPageSize + oid.offset() % kPageSize;
        hXlatLat_->record(0);
        POAT_TRACE(tracer_, c.model->cycles(), TraceComponent::Polb,
                   TraceOutcome::Hit, oid.raw, 0);
        return x;
    }
    const PotWalk w = pot_.walk(oid.poolId());
    if (!w.found)
        POAT_PANIC("POT miss: nv access to an unmapped pool");
    ++potOutstanding_;
    if (!ideal)
        x.pot = potWalkCharge(w, /*parallel=*/true);
    --potOutstanding_;
    hPotProbes_->record(w.probes);
    hPotLat_->record(x.pot);
    hXlatLat_->record(x.pot);
    POAT_TRACE(tracer_, c.model->cycles(), TraceComponent::Pot,
               TraceOutcome::Walk, oid.raw, x.pot);
    const uint64_t vaddr = w.base + oid.offset();
    const uint64_t pfn = pageTable_.frameOf(vaddr);
    c.polb.insert(key, pfn);
    x.paddr = pfn * kPageSize + oid.offset() % kPageSize;
    return x;
}

uint64_t
Machine::nvLoad(ObjectID oid, uint64_t dep, uint64_t dep2)
{
    CoreState &c = cur();
    ++c.instructions;
    ++c.nvLoads;
    const NvXlat x = translateNv(oid);
    const auto acc = caches_.accessClassified(active_, x.paddr, false);
    hNvLoadLat_->record(x.preStall() + acc.latency);
    POAT_TRACE(tracer_, c.model->cycles(), TraceComponent::NvAccess,
               TraceOutcome::Load, oid.raw, x.preStall() + acc.latency);
    AccessCosts costs{x.polb, x.pot, x.tlb, acc.latency,
                      levelComp(acc.level)};
    const uint64_t tag = c.model->load(costs, dep, dep2);
    if (timeline_)
        timelineTick();
    return tag;
}

void
Machine::nvStore(ObjectID oid, uint64_t dep)
{
    CoreState &c = cur();
    ++c.instructions;
    ++c.nvStores;
    const NvXlat x = translateNv(oid);
    const auto acc = caches_.accessClassified(active_, x.paddr, true);
    hNvStoreLat_->record(x.preStall() + acc.latency);
    POAT_TRACE(tracer_, c.model->cycles(), TraceComponent::NvAccess,
               TraceOutcome::Store, oid.raw, x.preStall() + acc.latency);
    AccessCosts costs{x.polb, x.pot, x.tlb, acc.latency,
                      levelComp(acc.level)};
    c.model->store(costs, dep);
    if (timeline_)
        timelineTick();
}

void
Machine::clwb(uint64_t vaddr)
{
    CoreState &c = cur();
    ++c.instructions;
    ++c.clwbs;
    AccessCosts costs;
    costs.tlb = tlbPenalty(vaddr);
    const uint64_t pa = pageTable_.translate(vaddr);
    caches_.flushLine(pa);
    c.model->clwb(costs, cfg_.clwb_latency);
    if (timeline_)
        timelineTick();
}

void
Machine::nvClwb(ObjectID oid)
{
    CoreState &c = cur();
    ++c.instructions;
    ++c.clwbs;
    const NvXlat x = translateNv(oid);
    caches_.flushLine(x.paddr);
    POAT_TRACE(tracer_, c.model->cycles(), TraceComponent::NvAccess,
               TraceOutcome::Flush, oid.raw,
               cfg_.clwb_latency + x.preStall());
    AccessCosts costs{x.polb, x.pot, x.tlb, 0, CpiComponent::L1D};
    c.model->clwb(costs, cfg_.clwb_latency);
    if (timeline_)
        timelineTick();
}

void
Machine::fence()
{
    CoreState &c = cur();
    ++c.instructions;
    ++c.fences;
    c.model->fence();
    if (timeline_)
        timelineTick();
}

void
Machine::poolMapped(uint32_t pool_id, uint64_t vbase, uint64_t)
{
    pot_.insert(pool_id, vbase);
}

void
Machine::swTranslateBegin()
{
    CoreState &c = cur();
    if (c.swDepth++ == 0)
        c.model->setSwTranslate(true);
}

void
Machine::swTranslateEnd()
{
    CoreState &c = cur();
    POAT_ASSERT(c.swDepth > 0, "unbalanced swTranslateEnd");
    if (--c.swDepth == 0)
        c.model->setSwTranslate(false);
}

void
Machine::txBegin(uint32_t pool_id, uint32_t op)
{
    CoreState &c = cur();
    ++c.txBegins;
    c.openTx[pool_id] =
        TxSpan{c.model->cycles(), op, c.clwbs + c.fences};
}

void
Machine::txCommit(uint32_t pool_id)
{
    CoreState &c = cur();
    const auto it = c.openTx.find(pool_id);
    POAT_ASSERT(it != c.openTx.end(), "txCommit without txBegin");
    ++c.txCommits;
    const uint64_t latency = c.model->cycles() - it->second.begin_cycle;
    hTxLat_->record(latency);
    hTxDurab_->record(c.clwbs + c.fences - it->second.durab_at_begin);
    const auto op = opLat_.find(it->second.op);
    if (op != opLat_.end())
        op->second->record(latency);
    c.openTx.erase(it);
}

void
Machine::txAbort(uint32_t pool_id)
{
    CoreState &c = cur();
    const auto it = c.openTx.find(pool_id);
    POAT_ASSERT(it != c.openTx.end(), "txAbort without txBegin");
    ++c.txAborts;
    contention_.txAborted(c.model->cycles() - it->second.begin_cycle);
    c.openTx.erase(it);
}

void
Machine::opName(uint32_t op, const char *name)
{
    opLat_[op] =
        &stats_.histogram("tx.op." + std::string(name) + ".latency");
    contention_.opName(op, name);
}

void
Machine::opSet(uint32_t op)
{
    contention_.opSet(active_, op, cycles());
}

void
Machine::lockWait(uint32_t, uint64_t key, uint8_t mode, uint32_t edges)
{
    contention_.lockWait(active_, key, mode, edges, cycles());
}

void
Machine::lockAcquired(uint32_t, uint64_t key, uint8_t)
{
    contention_.lockAcquired(active_, key, cur().model->cycles(),
                             cycles());
}

void
Machine::lockReleased(uint32_t, uint64_t key)
{
    contention_.lockReleased(active_, key, cur().model->cycles(),
                             cycles());
}

void
Machine::lockDeadlock(uint32_t, uint64_t key)
{
    contention_.lockDeadlock(active_, key, cycles());
}

void
Machine::workerDone(uint32_t)
{
    contention_.workerDone(active_, cycles());
}

void
Machine::commitJoin(uint32_t)
{
    contention_.commitJoin(active_, cycles());
}

void
Machine::commitBatch(uint32_t members, uint32_t elided)
{
    contention_.commitBatch(members, elided, cycles());
}

void
Machine::attachTimeline(telemetry::TimelineSampler *timeline,
                        bool per_core_lanes)
{
    timeline_ = timeline;
    if (!timeline_)
        return;
    timeline_->setStatsSource(
        [this]() -> const StatsRegistry & { return stats(); });
    timeline_->addGauge("polb.occupancy", [this] {
        uint64_t occ = 0;
        for (const auto &c : cores_)
            occ += static_cast<uint64_t>(c->polb.occupancy());
        return occ;
    });
    timeline_->addGauge("pot.outstanding_walks",
                        [this] { return potOutstanding_; });
    timeline_->setCores(static_cast<uint32_t>(cores_.size()));
    if (!per_core_lanes || cores_.size() <= 1)
        return;
    // Per-core blocked-reason lanes: cumulative cycles charged so far
    // (".total" suffix keeps the names distinct from the per-interval
    // delta series the registry counters already contribute).
    for (uint32_t i = 0; i < cores_.size(); ++i) {
        for (uint32_t r = 0; r < telemetry::kBlockReasons; ++r) {
            const auto reason = static_cast<telemetry::BlockReason>(r);
            timeline_->addGauge(
                "sched.core." + std::to_string(i) + ".blocked." +
                    telemetry::blockReasonName(reason) + ".total",
                [this, i, reason] {
                    return contention_.blockedCycles(i, reason);
                });
        }
    }
}

void
Machine::poolUnmapped(uint32_t pool_id)
{
    pot_.remove(pool_id);
    // POLB shootdown: every core's POLB drops its entries for the
    // pool, the hardware analogue of a TLB shootdown IPI. The
    // initiating core's invalidation is local; remote cores count as
    // broadcast shootdowns.
    for (auto &c : cores_) {
        if (cfg_.polb_design == PolbDesign::Pipelined) {
            c->polb.invalidateIf(
                [pool_id](uint64_t key) { return key == pool_id; });
        } else {
            c->polb.invalidateIf([pool_id](uint64_t key) {
                return (key >> 20) == pool_id;
            });
        }
    }
    polbShootdowns_ += cores_.size() - 1;
}

void
Machine::syncStats() const
{
    StatsRegistry &reg = stats_;
    const bool multi = cores_.size() > 1;

    uint64_t cyc_max = 0, ins = 0, uops = 0;
    uint64_t loads = 0, stores = 0, nv_loads = 0, nv_stores = 0;
    uint64_t clwbs = 0, fences = 0;
    uint64_t tlb_hits = 0, tlb_misses = 0;
    uint64_t polb_hits = 0, polb_misses = 0, polb_accesses = 0;
    uint64_t polb_evictions = 0, polb_capacity = 0;
    uint64_t br_lookups = 0, br_mispredicts = 0;
    uint64_t l1_hits = 0, l1_misses = 0, l1_wbs = 0;
    uint64_t l2_hits = 0, l2_misses = 0, l2_wbs = 0;
    uint64_t tx_begins = 0, tx_commits = 0, tx_aborts = 0;

    for (size_t i = 0; i < cores_.size(); ++i) {
        const CoreState &c = *cores_[i];
        const CpiStack &cpi = c.model->cpi();
        POAT_ASSERT(cpi.total() == c.model->cycles(),
                    "CPI stack does not sum to total cycles");
        if (multi) {
            const std::string p = "core." + std::to_string(i) + ".";
            reg.counter(p + "cycles") = c.model->cycles();
            reg.counter(p + "instructions") = c.instructions;
            reg.counter(p + "uops") = c.model->uopCount();
            reg.cpiStack(p + "cpi") = cpi;
        }
        cyc_max = std::max(cyc_max, c.model->cycles());
        ins += c.instructions;
        uops += c.model->uopCount();
        loads += c.loads;
        stores += c.stores;
        nv_loads += c.nvLoads;
        nv_stores += c.nvStores;
        clwbs += c.clwbs;
        fences += c.fences;
        tlb_hits += c.tlb.hits();
        tlb_misses += c.tlb.misses();
        polb_hits += c.polb.hits();
        polb_misses += c.polb.misses();
        polb_accesses += c.polb.accesses();
        polb_evictions += c.polb.evictions();
        polb_capacity += c.polb.capacity();
        br_lookups += c.bp.branches();
        br_mispredicts += c.bp.mispredicts();
        const uint32_t ci = static_cast<uint32_t>(i);
        l1_hits += caches_.l1(ci).hits();
        l1_misses += caches_.l1(ci).misses();
        l1_wbs += caches_.l1(ci).writebacks();
        l2_hits += caches_.l2(ci).hits();
        l2_misses += caches_.l2(ci).misses();
        l2_wbs += caches_.l2(ci).writebacks();
        tx_begins += c.txBegins;
        tx_commits += c.txCommits;
        tx_aborts += c.txAborts;
    }

    // Flat machine-wide keys: identical to the single-core naming when
    // N == 1 (the aggregates degenerate to core 0's counters), so
    // golden baselines and stats_diff gates survive unchanged.
    reg.counter("core.cycles") = cyc_max;
    reg.counter("core.instructions") = ins;
    reg.counter("core.uops") = uops;
    if (!multi) {
        reg.cpiStack("core.cpi") = cores_[0]->model->cpi();
    } else {
        // An aggregate stack would sum to total core-cycles, not the
        // makespan "core.cycles" reports; per-core stacks above are
        // the truth, and a machine-wide one would break the
        // sum == cycles contract, so none is emitted.
        reg.counter("core.count") = cores_.size();
        reg.counter("polb.shootdowns") = polbShootdowns_;
    }
    reg.counter("mem.loads") = loads;
    reg.counter("mem.stores") = stores;
    reg.counter("mem.nv_loads") = nv_loads;
    reg.counter("mem.nv_stores") = nv_stores;
    reg.counter("mem.clwbs") = clwbs;
    reg.counter("mem.fences") = fences;
    reg.counter("cache.l1d.hits") = l1_hits;
    reg.counter("cache.l1d.misses") = l1_misses;
    reg.counter("cache.l1d.accesses") = l1_hits + l1_misses;
    reg.counter("cache.l1d.writebacks") = l1_wbs;
    reg.counter("cache.l2.hits") = l2_hits;
    reg.counter("cache.l2.misses") = l2_misses;
    reg.counter("cache.l2.accesses") = l2_hits + l2_misses;
    reg.counter("cache.l2.writebacks") = l2_wbs;
    reg.counter("cache.l3.hits") = caches_.l3().hits();
    reg.counter("cache.l3.misses") = caches_.l3().misses();
    reg.counter("cache.l3.accesses") =
        caches_.l3().hits() + caches_.l3().misses();
    reg.counter("cache.l3.writebacks") = caches_.l3().writebacks();
    reg.counter("cache.mem_accesses") = caches_.memAccesses();
    reg.counter("tlb.hits") = tlb_hits;
    reg.counter("tlb.misses") = tlb_misses;
    reg.counter("tlb.accesses") = tlb_hits + tlb_misses;
    reg.counter("polb.hits") = polb_hits;
    reg.counter("polb.misses") = polb_misses;
    reg.counter("polb.accesses") = polb_accesses;
    reg.counter("polb.evictions") = polb_evictions;
    reg.counter("polb.capacity") = polb_capacity;
    reg.counter("pot.walks") = pot_.walks();
    reg.counter("pot.probes") = pot_.probesTotal();
    reg.counter("pot.live_entries") = pot_.liveEntries();
    reg.counter("branch.lookups") = br_lookups;
    reg.counter("branch.mispredicts") = br_mispredicts;
    reg.counter("vm.mapped_pages") = pageTable_.mappedPages();
    reg.counter("tx.begins") = tx_begins;
    reg.counter("tx.commits") = tx_commits;
    reg.counter("tx.aborts") = tx_aborts;
    reg.counter("tx.retries") = txRetries_;

    // Concurrency observability: exported for multi-core machines and
    // for any machine that saw concurrency events, so single-threaded
    // sequential runs keep their exact pre-existing schema (golden
    // baselines, stats_diff gates).
    if (multi || contention_.active())
        contention_.exportInto(reg, cyc_max);
}

const StatsRegistry &
Machine::stats() const
{
    syncStats();
    return stats_;
}

void
Machine::dumpStats(std::ostream &os) const
{
    stats().dump(os);
}

void
Machine::dumpStatsJson(std::ostream &os, int indent) const
{
    stats().dumpJson(os, indent);
}

MachineMetrics
Machine::metrics() const
{
    MachineMetrics m;
    m.cycles = cycles();
    for (const auto &cp : cores_) {
        const CoreState &c = *cp;
        m.instructions += c.instructions;
        m.loads += c.loads;
        m.stores += c.stores;
        m.nv_loads += c.nvLoads;
        m.nv_stores += c.nvStores;
        m.clwbs += c.clwbs;
        m.fences += c.fences;
        m.polb_hits += c.polb.hits();
        m.polb_misses += c.polb.misses();
        m.polb_evictions += c.polb.evictions();
        m.tlb_misses += c.tlb.misses();
        m.branch_mispredicts += c.bp.mispredicts();
    }
    for (uint32_t i = 0; i < caches_.cores(); ++i)
        m.l1d_misses += caches_.l1(i).misses();
    m.polb_shootdowns = polbShootdowns_;
    m.pot_walks = pot_.walks();
    m.pot_walk_probes = pot_.probesTotal();
    return m;
}

} // namespace sim
} // namespace poat
