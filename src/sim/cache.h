/**
 * @file
 * Set-associative cache model and the three-level hierarchy of the
 * paper's Table 4 (L1D 32 KB/8-way/3cy, L2 256 KB/8-way/8cy, L3
 * 8 MB/16-way/27cy, 64 B lines, write-back write-allocate, LRU).
 *
 * The model tracks tag state only (no data): enough for hit/miss timing
 * and dirty-line bookkeeping. Caches are indexed and tagged with
 * physical addresses; writeback traffic is tracked statistically but
 * charged no extra latency, matching the paper's fixed per-level hit
 * costs.
 */
#ifndef POAT_SIM_CACHE_H
#define POAT_SIM_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "sim/config.h"

namespace poat {
namespace sim {

/** One set-associative, write-back, true-LRU cache. */
class Cache
{
  public:
    static constexpr uint32_t kLineBytes = 64;

    Cache(std::string name, const CacheConfig &cfg);

    /**
     * Look up (and on miss, fill) the line containing @p paddr.
     * @param is_write marks the line dirty on hit/fill.
     * @return true on hit.
     */
    bool access(uint64_t paddr, bool is_write);

    /** Probe without fill or LRU update. */
    bool contains(uint64_t paddr) const;

    /**
     * CLWB semantics: if present and dirty, write the line back (clean
     * it) but keep it resident.
     * @return true iff a writeback happened.
     */
    bool flushLine(uint64_t paddr);

    /** Invalidate everything (between experiment phases). */
    void reset();

    const std::string &name() const { return name_; }
    uint32_t latency() const { return latency_; }
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t writebacks() const { return writebacks_; }

    double
    missRate() const
    {
        const uint64_t n = hits_ + misses_;
        return n ? static_cast<double>(misses_) / n : 0.0;
    }

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t lru = 0;
        bool valid = false;
        bool dirty = false;
    };

    uint32_t setOf(uint64_t paddr) const;
    uint64_t tagOf(uint64_t paddr) const;

    std::string name_;
    uint32_t sets_;
    uint32_t assoc_;
    uint32_t latency_;
    std::vector<Line> lines_; ///< sets_ * assoc_, set-major
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t writebacks_ = 0;
};

/** The L1D/L2/L3 + memory stack; returns end-to-end access latency. */
class CacheHierarchy
{
  public:
    /** The level that ultimately serviced an access. */
    enum class Level : uint8_t { L1, L2, L3, Memory };

    /** Latency of one access plus who serviced it (CPI attribution). */
    struct AccessResult
    {
        uint32_t latency;
        Level level;
    };

    explicit CacheHierarchy(const MachineConfig &cfg);

    /**
     * Perform a data access.
     * @return the hit latency of the first level that hits (or memory
     *         latency on a full miss), tagged with that level.
     */
    AccessResult accessClassified(uint64_t paddr, bool is_write);

    /** accessClassified() for callers that only need the latency. */
    uint32_t
    access(uint64_t paddr, bool is_write)
    {
        return accessClassified(paddr, is_write).latency;
    }

    /** CLWB the line in every level (clean, keep resident). */
    void flushLine(uint64_t paddr);

    void reset();

    Cache &l1() { return l1_; }
    Cache &l2() { return l2_; }
    Cache &l3() { return l3_; }
    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return l2_; }
    const Cache &l3() const { return l3_; }
    uint64_t memAccesses() const { return memAccesses_; }

  private:
    Cache l1_;
    Cache l2_;
    Cache l3_;
    uint32_t memLatency_;
    uint64_t memAccesses_ = 0;
};

} // namespace sim
} // namespace poat

#endif // POAT_SIM_CACHE_H
