/**
 * @file
 * Set-associative cache model and the three-level hierarchy of the
 * paper's Table 4 (L1D 32 KB/8-way/3cy, L2 256 KB/8-way/8cy, L3
 * 8 MB/16-way/27cy, 64 B lines, write-back write-allocate, LRU).
 *
 * The model tracks tag state only (no data): enough for hit/miss timing
 * and dirty-line bookkeeping. Caches are indexed and tagged with
 * physical addresses; writeback traffic is tracked statistically but
 * charged no extra latency, matching the paper's fixed per-level hit
 * costs.
 */
#ifndef POAT_SIM_CACHE_H
#define POAT_SIM_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "sim/config.h"

namespace poat {
namespace sim {

/** One set-associative, write-back, true-LRU cache. */
class Cache
{
  public:
    static constexpr uint32_t kLineBytes = 64;

    Cache(std::string name, const CacheConfig &cfg);

    /**
     * Look up (and on miss, fill) the line containing @p paddr.
     * @param is_write marks the line dirty on hit/fill.
     * @return true on hit.
     */
    bool access(uint64_t paddr, bool is_write);

    /** Probe without fill or LRU update. */
    bool contains(uint64_t paddr) const;

    /**
     * CLWB semantics: if present and dirty, write the line back (clean
     * it) but keep it resident.
     * @return true iff a writeback happened.
     */
    bool flushLine(uint64_t paddr);

    /** Invalidate everything (between experiment phases). */
    void reset();

    const std::string &name() const { return name_; }
    uint32_t latency() const { return latency_; }
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t writebacks() const { return writebacks_; }

    double
    missRate() const
    {
        const uint64_t n = hits_ + misses_;
        return n ? static_cast<double>(misses_) / n : 0.0;
    }

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t lru = 0;
        bool valid = false;
        bool dirty = false;
    };

    uint32_t setOf(uint64_t paddr) const;
    uint64_t tagOf(uint64_t paddr) const;

    std::string name_;
    uint32_t sets_;
    uint32_t assoc_;
    uint32_t latency_;
    std::vector<Line> lines_; ///< sets_ * assoc_, set-major
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t writebacks_ = 0;
};

/**
 * The L1D/L2/L3 + memory stack; returns end-to-end access latency.
 *
 * With cfg.cores > 1 the hierarchy holds one private L1/L2 pair per
 * core in front of the shared L3. The model is tag-only and the
 * multi-core scheduler interleaves cores one at a time, so no coherence
 * protocol is modeled: a line can be resident in several private
 * caches, and CLWB cleans it everywhere (a real CLWB is coherent).
 */
class CacheHierarchy
{
  public:
    /** The level that ultimately serviced an access. */
    enum class Level : uint8_t { L1, L2, L3, Memory };

    /** Latency of one access plus who serviced it (CPI attribution). */
    struct AccessResult
    {
        uint32_t latency;
        Level level;
    };

    explicit CacheHierarchy(const MachineConfig &cfg);

    /**
     * Perform a data access through core @p core's private L1/L2.
     * @return the hit latency of the first level that hits (or memory
     *         latency on a full miss), tagged with that level.
     */
    AccessResult accessClassified(uint32_t core, uint64_t paddr,
                                  bool is_write);

    /** Single-core convenience (core 0). */
    AccessResult
    accessClassified(uint64_t paddr, bool is_write)
    {
        return accessClassified(0, paddr, is_write);
    }

    /** accessClassified() for callers that only need the latency. */
    uint32_t
    access(uint64_t paddr, bool is_write)
    {
        return accessClassified(0, paddr, is_write).latency;
    }

    /** Per-core access() for callers that only need the latency. */
    uint32_t
    access(uint32_t core, uint64_t paddr, bool is_write)
    {
        return accessClassified(core, paddr, is_write).latency;
    }

    /** CLWB the line in every level of every core (clean, resident). */
    void flushLine(uint64_t paddr);

    void reset();

    uint32_t cores() const { return static_cast<uint32_t>(l1s_.size()); }

    Cache &l1(uint32_t core = 0) { return l1s_[core]; }
    Cache &l2(uint32_t core = 0) { return l2s_[core]; }
    Cache &l3() { return l3_; }
    const Cache &l1(uint32_t core = 0) const { return l1s_[core]; }
    const Cache &l2(uint32_t core = 0) const { return l2s_[core]; }
    const Cache &l3() const { return l3_; }
    uint64_t memAccesses() const { return memAccesses_; }

  private:
    std::vector<Cache> l1s_; ///< one private L1D per core
    std::vector<Cache> l2s_; ///< one private L2 per core
    Cache l3_;               ///< shared
    uint32_t memLatency_;
    uint64_t memAccesses_ = 0;
};

} // namespace sim
} // namespace poat

#endif // POAT_SIM_CACHE_H
