#include "fault/media.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "common/bits.h"
#include "driver/sweep.h"
#include "fault/trial.h"

namespace poat {
namespace fault {

using detail::checkRecovered;
using detail::runSteps;
using detail::StepWindow;

namespace {

/** Counters one media trial contributes; aggregated after the fan-out. */
struct MediaTrialStats
{
    uint64_t trials = 0;
    uint64_t injected = 0;
    uint64_t repaired = 0;
    uint64_t diagnosed = 0;
    uint64_t benign = 0;
    std::vector<Failure> failures;
};

/**
 * Seed for the injection RNG of fault f at crash point k: every random
 * choice the injection makes (which bit, which line, which garbage
 * bytes) derives from (seed, k, f) alone, so the ":mF" reproducer token
 * replays the byte-identical corruption.
 */
uint64_t
faultSeed(uint64_t seed, uint64_t k, uint64_t f)
{
    uint64_t x = seed + 0x632be59bd9b4e019ull;
    x ^= k * 0xbf58476d1ce4e5b9ull;
    x ^= f * 0x94d049bb133111ebull;
    return x;
}

/** "17" or "17+42" -> fault indices; throws on anything else. */
std::vector<uint64_t>
parseSpec(const std::string &spec)
{
    auto bad = [&]() -> std::invalid_argument {
        return std::invalid_argument("bad media fault spec '" + spec +
                                     "' (expected F or F1+F2)");
    };
    std::vector<uint64_t> out;
    std::string cur;
    for (char c : spec + "+") {
        if (c == '+') {
            if (cur.empty())
                throw bad();
            for (char d : cur) {
                if (d < '0' || d > '9')
                    throw bad();
            }
            try {
                out.push_back(std::stoull(cur));
            } catch (const std::exception &) {
                throw bad();
            }
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (out.empty() || out.size() > 2)
        throw bad();
    return out;
}

/** Inject fault @p f into the durable image per the site table. */
void
injectFault(PoolRegistry &registry, const std::vector<MediaSite> &sites,
            uint64_t f, uint64_t rng_seed)
{
    const uint64_t site_idx = f / 2;
    if (site_idx >= sites.size()) {
        throw std::invalid_argument(
            "media fault index " + std::to_string(f) + " out of range (" +
            std::to_string(2 * sites.size()) + " faults in this image)");
    }
    const MediaSite &site = sites[site_idx];
    Pool &pool = registry.get(site.pool_id).pool;
    Rng rng(rng_seed);

    if (f % 2 == 0) {
        // Bit flip: one random bit anywhere in the site's extent.
        const uint32_t byte = site.off +
            static_cast<uint32_t>(rng.below(site.len));
        const uint8_t flipped = pool.durableView()[byte] ^
            static_cast<uint8_t>(1u << rng.below(8));
        pool.corruptDurable(byte, &flipped, 1);
        return;
    }

    // Torn write: a 64-byte line that was mid-flight when power failed
    // carries garbage — but only where it overlaps the checksummed
    // structure (user payload bytes carry no checksum by design, so
    // tearing them would be legitimately undetectable; see media.h).
    const uint32_t line_sz = static_cast<uint32_t>(kLineSize);
    const uint32_t first_line = site.off / line_sz;
    const uint32_t last_line = (site.off + site.len - 1) / line_sz;
    const uint32_t line = first_line +
        static_cast<uint32_t>(rng.below(last_line - first_line + 1));
    const uint32_t lo = std::max(site.off, line * line_sz);
    const uint32_t hi = std::min(site.off + site.len,
                                 (line + 1) * line_sz);
    std::vector<uint8_t> garbage(hi - lo);
    for (uint8_t &b : garbage)
        b = static_cast<uint8_t>(rng.next());
    pool.corruptDurable(lo, garbage.data(), garbage.size());
}

/** Do the options allow faulting this site? */
bool
siteAllowed(const MediaSite &site, const MediaOptions &opts)
{
    if (!opts.kinds.empty() &&
        std::find(opts.kinds.begin(), opts.kinds.end(), site.kind) ==
            opts.kinds.end())
        return false;
    if (site.kind == MediaStructure::BlockHeader) {
        if (opts.block_filter == 1 && !site.allocated_block)
            return false;
        if (opts.block_filter == 2 && site.allocated_block)
            return false;
    }
    return true;
}

/**
 * One media trial: run to crash point k, inject the fault(s) in @p spec
 * into the frozen durable image, recover, and classify the outcome
 * (repaired / benign / diagnosed / Failure). See media.h.
 */
void
runMediaTrial(const ExploreOptions &opts, uint64_t k,
              const std::string &spec, MediaTrialStats &ts)
{
    PmemRuntime rt(detail::trialRuntimeOptions(opts));
    std::unique_ptr<workloads::CrashDriver> driver =
        workloads::makeCrashDriver(opts.workload, opts.steps, opts.seed,
                                   opts.threads, opts.sched_seed);
    driver->setup(rt);
    ++ts.trials;

    auto fail = [&](const std::string &why) {
        Failure f;
        f.workload = opts.workload;
        f.steps = opts.steps;
        f.seed = opts.seed;
        f.k = k;
        f.media = spec;
        f.evict_num = opts.evict_num;
        f.evict_den = opts.evict_den;
        f.sched_seed = opts.sched_seed;
        f.threads = opts.threads;
        f.why = why;
        ts.failures.push_back(std::move(f));
    };

    CrashAtEvent crash_hook(k);
    rt.registry().setDurabilityHook(&crash_hook);
    const StepWindow w = runSteps(rt, *driver, opts, crash_hook);
    rt.registry().setDurabilityHook(nullptr);
    rt.registry().crashAll();

    // Enumerate on the uncorrupted image, then corrupt the durable copy
    // and crash again so the working image sees it, as a reboot would.
    const std::vector<MediaSite> sites =
        enumerateMediaSites(rt.registry());
    for (uint64_t f : parseSpec(spec)) {
        injectFault(rt.registry(), sites, f,
                    faultSeed(opts.seed, k, f));
        ++ts.injected;
    }
    rt.registry().crashAll();

    try {
        rt.registry().recoverAll();
    } catch (const MediaError &) {
        // Fail-stop with a precise diagnostic is a correct outcome for
        // unrepairable corruption — the one wrong answer is no answer.
        ++ts.diagnosed;
        return;
    } catch (const std::runtime_error &e) {
        fail(std::string("recovery failed without a media diagnostic "
                         "(undetected corruption?): ") +
             e.what());
        return;
    }

    if (rt.registry().lastScrubStats().repairs() > 0)
        ++ts.repaired;
    else
        ++ts.benign;

    uint64_t leaked = 0;
    std::string why;
    if (!checkRecovered(rt, *driver, w, &leaked, &why)) {
        fail("after media fault: " + why);
        return;
    }

    // Idempotence: the repaired image must recover to itself.
    try {
        rt.registry().recoverAll();
    } catch (const std::runtime_error &e) {
        fail(std::string("second recovery after repair threw: ") +
             e.what());
        return;
    }
    if (!checkRecovered(rt, *driver, w, &leaked, &why))
        fail("after second recovery: " + why);
}

} // namespace

std::vector<MediaSite>
enumerateMediaSites(PoolRegistry &registry)
{
    std::vector<MediaSite> sites;
    for (uint32_t id : registry.openIds()) {
        Pool &pool = registry.get(id).pool;
        const PoolHeader &ph = pool.header();

        sites.push_back({id, 0, sizeof(PoolHeader),
                         MediaStructure::Superblock, false});
        sites.push_back({id, PoolHeader::kMirrorOff, sizeof(PoolHeader),
                         MediaStructure::Superblock, false});

        sites.push_back({id, ph.log_off, sizeof(LogHeader),
                         MediaStructure::LogHeader, false});
        sites.push_back({id, ph.log_off + LogHeader::kMirrorLineOff,
                         sizeof(LogHeader), MediaStructure::LogHeader,
                         false});

        const LogHeader lh = pool.readAs<LogHeader>(ph.log_off);
        uint32_t off = ph.log_off + LogHeader::kEntriesOff;
        for (uint32_t i = 0; i < lh.num_entries; ++i) {
            const LogEntryHeader eh = pool.readAs<LogEntryHeader>(off);
            sites.push_back({id, off, sizeof(LogEntryHeader),
                             MediaStructure::LogEntry, false});
            if (eh.payload_size != 0) {
                sites.push_back({id,
                                 off + static_cast<uint32_t>(
                                           sizeof(LogEntryHeader)),
                                 eh.payload_size,
                                 MediaStructure::LogEntry, false});
            }
            off += sizeof(LogEntryHeader) +
                static_cast<uint32_t>(alignUp(eh.payload_size, 16));
        }

        const uint32_t heap_end = ph.heap_off + ph.heap_size;
        uint32_t boff = ph.heap_off;
        while (boff + sizeof(BlockHeader) <= heap_end) {
            const BlockHeader bh = pool.readAs<BlockHeader>(boff);
            if (!bh.crcValid())
                break; // unformatted (fresh) heap tail
            sites.push_back({id, boff, sizeof(BlockHeader),
                             MediaStructure::BlockHeader,
                             bh.allocated()});
            if (bh.size < PoolAllocator::kMinBlock)
                break;
            boff += bh.size;
        }
    }
    return sites;
}

void
MediaReport::publish(StatsRegistry &stats) const
{
    stats.counter("fault.media.events") += total_events;
    stats.counter("fault.media.points") += points;
    stats.counter("fault.media.sites") += sites;
    stats.counter("fault.media.trials") += trials;
    stats.counter("fault.media.injected") += injected;
    stats.counter("fault.media.repaired") += repaired;
    stats.counter("fault.media.diagnosed") += diagnosed;
    stats.counter("fault.media.benign") += benign;
    stats.counter("fault.media.failures") += failures.size();
}

MediaReport
exploreMedia(const MediaOptions &opts)
{
    MediaReport report;

    // ---- profile pass: count the durability events ------------------
    {
        PmemRuntime rt(detail::trialRuntimeOptions(opts.base));
        std::unique_ptr<workloads::CrashDriver> driver =
            workloads::makeCrashDriver(
                opts.base.workload, opts.base.steps, opts.base.seed,
                opts.base.threads, opts.base.sched_seed);
        driver->setup(rt);
        EventCounter counter;
        rt.registry().setDurabilityHook(&counter);
        Rng evict_rng(detail::evictSeed(opts.base));
        for (uint64_t i = 0; i < opts.base.steps; ++i) {
            driver->step(rt, i);
            detail::maybeEvict(rt, evict_rng, opts.base);
        }
        rt.registry().setDurabilityHook(nullptr);
        report.total_events = counter.total();
    }

    // ---- crash points -----------------------------------------------
    const uint64_t T = report.total_events;
    std::set<uint64_t> point_set;
    if (opts.points.empty()) {
        // Default spread: fresh image, three mid-run images, and the
        // quiescent image of the completed run (k == T never crashes).
        for (uint64_t k : {uint64_t(0), T / 4, T / 2, 3 * T / 4, T})
            point_set.insert(k);
    } else {
        for (uint64_t k : opts.points)
            point_set.insert(std::min(k, T));
    }
    const std::vector<uint64_t> points(point_set.begin(),
                                       point_set.end());
    report.points = points.size();

    // ---- per-point fault selection ----------------------------------
    // One clean (uninjected) pass per point enumerates the site table;
    // the fault index space is over ALL sites so reproducers do not
    // depend on the filters below.
    struct Trial
    {
        uint64_t k;
        std::string spec;
    };
    std::vector<Trial> trials;
    for (uint64_t k : points) {
        PmemRuntime rt(detail::trialRuntimeOptions(opts.base));
        std::unique_ptr<workloads::CrashDriver> driver =
            workloads::makeCrashDriver(
                opts.base.workload, opts.base.steps, opts.base.seed,
                opts.base.threads, opts.base.sched_seed);
        driver->setup(rt);
        CrashAtEvent hook(k);
        rt.registry().setDurabilityHook(&hook);
        runSteps(rt, *driver, opts.base, hook);
        rt.registry().setDurabilityHook(nullptr);
        rt.registry().crashAll();

        const std::vector<MediaSite> sites =
            enumerateMediaSites(rt.registry());
        report.sites += sites.size();

        std::vector<uint64_t> cand;
        for (size_t i = 0; i < sites.size(); ++i) {
            if (!siteAllowed(sites[i], opts))
                continue;
            cand.push_back(2 * i);
            cand.push_back(2 * i + 1);
        }
        if (cand.empty())
            continue;

        std::vector<uint64_t> picks = detail::choosePoints(
            cand.size(), opts.sample,
            opts.base.seed ^ (k * 0xd6e8feb86659fd93ull + 3));
        for (uint64_t p : picks)
            trials.push_back({k, std::to_string(cand[p])});

        Rng pair_rng(opts.base.seed ^
                     (k * 0xa0761d6478bd642full + 5));
        for (uint64_t d = 0; d < opts.doubles; ++d) {
            const uint64_t a = cand[pair_rng.below(cand.size())];
            uint64_t b = cand[pair_rng.below(cand.size())];
            if (cand.size() > 1) {
                while (b == a)
                    b = cand[pair_rng.below(cand.size())];
            }
            trials.push_back({k, std::to_string(a) + "+" +
                                     std::to_string(b)});
        }
    }

    // ---- trial fan-out ----------------------------------------------
    std::vector<MediaTrialStats> slots(trials.size());
    driver::runTasks(trials.size(), opts.base.jobs, [&](size_t idx) {
        runMediaTrial(opts.base, trials[idx].k, trials[idx].spec,
                      slots[idx]);
    });

    for (const MediaTrialStats &ts : slots) {
        report.trials += ts.trials;
        report.injected += ts.injected;
        report.repaired += ts.repaired;
        report.diagnosed += ts.diagnosed;
        report.benign += ts.benign;
        report.failures.insert(report.failures.end(),
                               ts.failures.begin(), ts.failures.end());
    }
    return report;
}

std::vector<Failure>
replayMediaTrial(const ExploreOptions &opts, uint64_t k,
                 const std::string &spec)
{
    MediaTrialStats ts;
    runMediaTrial(opts, k, spec, ts);
    return ts.failures;
}

} // namespace fault
} // namespace poat
