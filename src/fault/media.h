/**
 * @file
 * Deterministic media-fault exploration.
 *
 * The crash-point explorer (fault/explore.h) proves recovery works from
 * any *power-failure* image; this explorer proves recovery also
 * survives the images NVM itself damages at rest — latent bit flips and
 * torn 64-byte lines. For each chosen crash point k it freezes the
 * durable image exactly as a crash trial would, then corrupts one (or
 * two) checksummed on-media structures and requires recovery to end in
 * one of exactly three states:
 *
 *   repaired  — the scrub pass fixed the corruption (mirror resync,
 *               dead-snapshot reseal, or block-header rebuild) and every
 *               crash-consistency invariant still holds, including
 *               recovery idempotence;
 *   benign    — recovery succeeded and the scrub found nothing to do
 *               (the injected bytes happened to be a no-op);
 *   diagnosed — recovery failed stopped with a MediaError naming the
 *               pool, offset, and structure kind.
 *
 * Anything else — a wrong recovered state, a non-diagnostic exception,
 * a failed idempotence check — is an undetected or mishandled
 * corruption and becomes a Failure with a self-contained reproducer.
 *
 * Fault-site enumeration. After the crash at k, the (uncorrupted)
 * durable image is walked and every checksummed structure becomes a
 * site, in a fixed order: superblock primary and mirror, log-header
 * primary and mirror, then each published log entry (header site, then
 * payload site if the entry has one), then every heap block header, all
 * in pool-id order. The fault index space is two faults per site:
 *
 *   f = 2 * i     — flip one seeded-random bit of site i;
 *   f = 2 * i + 1 — torn write: fill the intersection of one
 *                   seeded-random 64-byte line with site i's extent
 *                   with seeded-random garbage.
 *
 * Torn faults deliberately stay inside checksummed extents: user
 * payload data carries no checksum by design (the paper's object format
 * seals headers and metadata), so tearing an arbitrary heap line could
 * produce corruption that is *legitimately* undetectable and would make
 * the explorer cry wolf.
 *
 * The fault index is over ALL sites, never over a filtered subset, so a
 * reproducer token ":mF" (or ":mF1+F2" for a double fault) replays the
 * identical injection regardless of what filters produced it.
 */
#ifndef POAT_FAULT_MEDIA_H
#define POAT_FAULT_MEDIA_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "fault/explore.h"
#include "pmem/registry.h"

namespace poat {
namespace fault {

/**
 * One checksummed extent a media fault can hit. The kind vocabulary is
 * the pmem layer's own (poat::MediaStructure, checksum.h), so explorer
 * filters and MediaError diagnostics speak the same names; an undo-log
 * entry's header and payload are separate sites of the same LogEntry
 * kind.
 */
struct MediaSite
{
    uint32_t pool_id = 0;
    uint32_t off = 0; ///< pool offset of the structure
    uint32_t len = 0; ///< extent in bytes
    MediaStructure kind = MediaStructure::Superblock;
    /** For BlockHeader sites: the block's allocated flag. */
    bool allocated_block = false;
};

/**
 * Enumerate every fault site of every open pool, in the canonical
 * order (see file comment). Call on a crashed, uncorrupted image —
 * i.e. after crashAll() and before any injection.
 */
std::vector<MediaSite> enumerateMediaSites(PoolRegistry &registry);

/** What to corrupt and how hard. */
struct MediaOptions
{
    /** Workload, steps, seed, eviction — shared with crash trials. */
    ExploreOptions base;

    /**
     * Crash points (durability-event indexes) at which to freeze the
     * image before injecting. Empty means the default spread
     * {0, T/4, T/2, 3*T/4, T} where T is the profile-pass event count;
     * T itself is legal and means "the run completed, corrupt the
     * quiescent image".
     */
    std::vector<uint64_t> points;

    /**
     * Single faults to inject per crash point; 0 tries every fault
     * index exhaustively. Sampled indices are drawn without
     * replacement by a generator seeded from base.seed and k.
     */
    uint64_t sample = 0;

    /** Seeded double-fault trials per crash point (0 = none). */
    uint64_t doubles = 0;

    /** Restrict to these structure kinds; empty = all kinds. */
    std::vector<MediaStructure> kinds;

    /**
     * BlockHeader site filter: 0 = any block, 1 = allocated blocks
     * only, 2 = free blocks only. Other kinds are unaffected.
     */
    int block_filter = 0;
};

/** Outcome of a media exploration. */
struct MediaReport
{
    uint64_t total_events = 0; ///< durability events (profile pass)
    uint64_t points = 0;       ///< crash points actually used
    uint64_t sites = 0;        ///< fault sites (summed over points)
    uint64_t trials = 0;       ///< injection trials run
    uint64_t injected = 0;     ///< individual faults injected
    uint64_t repaired = 0;     ///< trials the scrub pass repaired
    uint64_t diagnosed = 0;    ///< trials that fail-stopped (MediaError)
    uint64_t benign = 0;       ///< trials where scrub found nothing
    std::vector<Failure> failures;

    bool ok() const { return failures.empty(); }

    /** Publish the aggregate counters under "fault.media." in @p stats. */
    void publish(StatsRegistry &stats) const;
};

/**
 * Profile, then for each crash point inject each chosen fault into a
 * freshly frozen image and classify recovery; deterministic for fixed
 * options within one build. Workload or driver errors (as opposed to
 * invariant violations) propagate as exceptions.
 */
MediaReport exploreMedia(const MediaOptions &opts);

/**
 * Re-run one media trial: crash at @p k, inject per @p spec ("17" or
 * "17+42"), recover, classify. Used by replayRepro for ":m" tokens.
 * @return the failure if the trial fails, or an empty vector.
 * @throws std::invalid_argument on a malformed spec or a fault index
 *         past the site space of this image.
 */
std::vector<Failure> replayMediaTrial(const ExploreOptions &opts,
                                      uint64_t k,
                                      const std::string &spec);

} // namespace fault
} // namespace poat

#endif // POAT_FAULT_MEDIA_H
