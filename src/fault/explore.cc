#include "fault/explore.h"

#include <algorithm>
#include <stdexcept>

#include "driver/sweep.h"
#include "fault/media.h"
#include "fault/reorder.h"
#include "fault/trial.h"

namespace poat {
namespace fault {

using detail::checkEventContract;
using detail::checkRecovered;
using detail::choosePoints;
using detail::kNoExpectedEvents;
using detail::runSteps;
using detail::StepWindow;

namespace {

/** Counters one trial contributes; aggregated after the fan-out. */
struct TrialStats
{
    uint64_t crashes_injected = 0;
    uint64_t undo_entries_rolled_back = 0;
    uint64_t frees_redone = 0;
    uint64_t blocks_leaked = 0;
    uint64_t recovery_events = 0; ///< M_k (outer trials only)
    uint64_t trials = 0;
    uint64_t recovery_trials = 0;
    uint64_t reorder_states = 0;
    uint64_t torn_states = 0;
    uint64_t max_depth = 0;
    std::vector<Failure> failures;
};

/**
 * In-recovery crash-point sampling seed for the level after @p stack.
 * The empty stack reproduces the historic one-level constant so old
 * reproducers and determinism tests keep their exact trial sets; deeper
 * levels fold the stack values in.
 */
uint64_t
innerSeed(const ExploreOptions &opts, uint64_t k,
          const std::vector<uint64_t> &stack)
{
    uint64_t s = opts.seed ^ (k * 0x9e3779b97f4a7c15ull + 1);
    for (uint64_t j : stack)
        s = (s ^ j) * 0xd1b54a32d192ed03ull + 1;
    return s;
}

/**
 * One complete crash trial: run the workload and freeze the durable
 * image at event k — either the plain prefix freeze or, when @p drain
 * is non-null, a CrashWithDrain over the batch starting at k (subset /
 * torn-line reorder state). Then crash, recover, crash the recovery
 * stack level by level per @p stack, recover fully, and check every
 * invariant — including that recovering a second time changes nothing.
 *
 * @param expected_events Profile-pass event total; every trial must
 *        observe exactly this many durability events (see
 *        checkEventContract) or the whole exploration aborts. Pass
 *        kNoExpectedEvents on the replay path, which has no profile.
 * @return the number of durability events the final (fully completing)
 *         recovery emitted — the crash-point space one level below
 *         @p stack.
 */
uint64_t
runTrial(const ExploreOptions &opts, uint64_t k,
         const std::vector<uint64_t> &stack,
         const std::vector<uint8_t> *drain, uint64_t expected_events,
         TrialStats &ts)
{
    PmemRuntime rt(detail::trialRuntimeOptions(opts));
    if (opts.strict)
        rt.registry().setDurabilityPolicy(DurabilityPolicy::Strict);
    std::unique_ptr<workloads::CrashDriver> driver =
        workloads::makeCrashDriver(opts.workload, opts.steps, opts.seed,
                                   opts.threads, opts.sched_seed);
    driver->setup(rt);

    if (drain != nullptr) {
        ++ts.reorder_states;
        const bool torn =
            std::any_of(drain->begin(), drain->end(), [](uint8_t m) {
                return m != 0 && m != DurabilityHook::kFullLineMask;
            });
        if (torn)
            ++ts.torn_states;
    } else if (stack.empty()) {
        ++ts.trials;
    } else {
        ++ts.recovery_trials;
    }
    ts.max_depth = std::max<uint64_t>(ts.max_depth, stack.size());

    auto fail = [&](const std::string &why) {
        Failure f;
        f.workload = opts.workload;
        f.steps = opts.steps;
        f.seed = opts.seed;
        f.k = k;
        f.stack = stack;
        if (drain != nullptr)
            f.drain = encodeDrainMasks(*drain);
        f.strict = opts.strict;
        f.evict_num = opts.evict_num;
        f.evict_den = opts.evict_den;
        f.sched_seed = opts.sched_seed;
        f.threads = opts.threads;
        f.why = why;
        f.diag = driver->diagnostics();
        ts.failures.push_back(std::move(f));
    };

    CrashAtEvent prefix_hook(k);
    CrashWithDrain drain_hook(k, drain != nullptr
                                     ? *drain
                                     : std::vector<uint8_t>{});
    CrashHook &crash_hook =
        drain != nullptr ? static_cast<CrashHook &>(drain_hook)
                         : static_cast<CrashHook &>(prefix_hook);
    rt.registry().setDurabilityHook(&crash_hook);
    const StepWindow w = runSteps(rt, *driver, opts, crash_hook);
    rt.registry().setDurabilityHook(nullptr);
    checkEventContract(crash_hook.observed(), expected_events);
    if (crash_hook.fired())
        ++ts.crashes_injected;

    rt.registry().crashAll();

    // Recovery's own first step is the scrub pass (see recoverAll), so
    // the legality walk below must inspect the image recovery will
    // actually see: a torn-line drain state legitimately leaves a
    // checksummed header line invalid, and the mirror-copy repair is
    // exactly the mechanism that makes such a state recoverable. A
    // crash state the scrub cannot make structurally legal IS the
    // invariant violation.
    try {
        for (uint32_t id : rt.registry().openIds())
            scrubPool(rt.registry().get(id).pool);
    } catch (const std::runtime_error &e) {
        fail(std::string("scrub of crashed image failed: ") + e.what());
        return 0;
    }

    // Pre-recovery log inspection: the work recovery is about to do.
    // An illegal on-media log here is itself an invariant violation —
    // the commit protocol must never publish one at any reachable
    // crash state, torn lines included.
    try {
        for (uint32_t id : rt.registry().openIds()) {
            OpenPool &op = rt.registry().get(id);
            // Every slot: a concurrent crash can leave several workers'
            // logs in flight, and each must be on-media legal.
            op.forEachLog([&op, &ts](UndoLog &log) {
                log.validateLog();
                const uint32_t st = log.state();
                if (st == LogHeader::kActive) {
                    ts.undo_entries_rolled_back += log.records().size();
                } else if (st == LogHeader::kCommitting) {
                    for (const UndoLog::Record &r : log.records()) {
                        if (r.type == LogEntryHeader::kFree &&
                            op.alloc.isAllocated(r.target_off))
                            ++ts.frees_redone;
                    }
                }
            });
        }
    } catch (const std::runtime_error &e) {
        fail(std::string("crashed image has an illegal undo log: ") +
             e.what());
        return 0;
    }

    // Power fails again at stack[l] during recovery level l + 1: freeze
    // that recovery's durable progress and recover from *that* image.
    for (size_t l = 0; l < stack.size(); ++l) {
        CrashAtEvent inner_hook(stack[l]);
        rt.registry().setDurabilityHook(&inner_hook);
        try {
            rt.registry().recoverAll();
        } catch (const std::runtime_error &e) {
            rt.registry().setDurabilityHook(nullptr);
            fail("recovery (level " + std::to_string(l + 1) +
                 ") threw: " + e.what());
            return 0;
        }
        rt.registry().setDurabilityHook(nullptr);
        if (inner_hook.fired())
            ++ts.crashes_injected;
        rt.registry().crashAll();
    }

    // The final recovery completes; its event count is the crash-point
    // space for a stack one level deeper.
    EventCounter recovery_counter;
    rt.registry().setDurabilityHook(&recovery_counter);
    try {
        rt.registry().recoverAll();
    } catch (const std::runtime_error &e) {
        rt.registry().setDurabilityHook(nullptr);
        fail(std::string("final recovery threw: ") + e.what());
        return 0;
    }
    rt.registry().setDurabilityHook(nullptr);

    std::string why;
    if (!checkRecovered(rt, *driver, w, &ts.blocks_leaked, &why)) {
        fail(why);
        return recovery_counter.total();
    }

    // Idempotence: a second recovery pass must find nothing to do and
    // leave every invariant intact.
    try {
        rt.registry().recoverAll();
    } catch (const std::runtime_error &e) {
        fail(std::string("second recovery threw: ") + e.what());
        return recovery_counter.total();
    }
    uint64_t dummy_leaked = 0;
    if (!checkRecovered(rt, *driver, w, &dummy_leaked, &why))
        fail("after second recovery: " + why);
    return recovery_counter.total();
}

/**
 * Depth-first expansion of the in-recovery crash stacks below @p stack,
 * whose final recovery emitted @p events durability events. Level d + 1
 * is explored only while d < depth.
 */
void
expandRecoveryCrashes(const ExploreOptions &opts, uint64_t k,
                      const std::vector<uint64_t> &stack, uint64_t events,
                      uint64_t expected_events, TrialStats &ts)
{
    if (stack.size() >= opts.depth || events == 0)
        return;
    const std::vector<uint64_t> js =
        choosePoints(events, opts.inner_cap, innerSeed(opts, k, stack));
    for (uint64_t j : js) {
        std::vector<uint64_t> next = stack;
        next.push_back(j);
        const uint64_t m =
            runTrial(opts, k, next, nullptr, expected_events, ts);
        expandRecoveryCrashes(opts, k, next, m, expected_events, ts);
    }
}

} // namespace

std::string
Failure::repro() const
{
    std::string s = workload + ":" + std::to_string(steps) + ":" +
        std::to_string(seed) + ":" + std::to_string(k);
    if (stack.size() == 1) {
        s += ":" + std::to_string(stack[0]); // legacy one-level spelling
    } else if (stack.size() > 1) {
        s += ":d";
        for (size_t i = 0; i < stack.size(); ++i)
            s += (i ? "," : "") + std::to_string(stack[i]);
    }
    if (!drain.empty())
        s += ":r" + drain;
    if (strict)
        s += ":S";
    if (workloads::isConcurrentCrashWorkload(workload)) {
        s += ":t" + std::to_string(sched_seed);
        if (threads != 0)
            s += ":n" + std::to_string(threads);
    }
    if (!media.empty())
        s += ":m" + media;
    if (evict_num != 0) {
        s += ":e" + std::to_string(evict_num) + "/" +
            std::to_string(evict_den);
    }
    return s;
}

void
ExploreReport::publish(StatsRegistry &stats) const
{
    stats.counter("fault.events") += total_events;
    stats.counter("fault.trials") += trials;
    stats.counter("fault.recovery_trials") += recovery_trials;
    stats.counter("fault.crashes_injected") += crashes_injected;
    stats.counter("fault.undo_entries_rolled_back") +=
        undo_entries_rolled_back;
    stats.counter("fault.frees_redone") += frees_redone;
    stats.counter("fault.blocks_leaked") += blocks_leaked;
    stats.counter("fault.reorder.states") += reorder_states;
    stats.counter("fault.reorder.torn_states") += torn_states;
    stats.counter("fault.reorder.max_depth") += max_depth;
    stats.counter("fault.failures") += failures.size();
}

ExploreReport
explore(const ExploreOptions &opts)
{
    ExploreReport report;

    // ---- profile pass: count the durability events ------------------
    {
        PmemRuntime rt(detail::trialRuntimeOptions(opts));
        if (opts.strict)
            rt.registry().setDurabilityPolicy(DurabilityPolicy::Strict);
        std::unique_ptr<workloads::CrashDriver> driver =
            workloads::makeCrashDriver(opts.workload, opts.steps,
                                       opts.seed, opts.threads,
                                       opts.sched_seed);
        driver->setup(rt);
        EventCounter counter;
        rt.registry().setDurabilityHook(&counter);
        Rng evict_rng(detail::evictSeed(opts));
        for (uint64_t i = 0; i < opts.steps; ++i) {
            driver->step(rt, i);
            detail::maybeEvict(rt, evict_rng, opts);
        }
        rt.registry().setDurabilityHook(nullptr);
        report.total_events = counter.total();
        report.clwb_events = counter.count(WriteBackCause::Clwb);
        report.fence_events = counter.count(WriteBackCause::Fence);
        report.evict_events = counter.count(WriteBackCause::Evict);
    }

    // ---- outer fan-out ----------------------------------------------
    const uint64_t depth = opts.in_recovery ? opts.depth : 0;
    ExploreOptions trial_opts = opts;
    trial_opts.depth = depth;
    const std::vector<uint64_t> ks = choosePoints(
        report.total_events, opts.sample,
        opts.seed + 0x517cc1b727220a95ull);
    std::vector<TrialStats> slots(ks.size());
    driver::runTasks(ks.size(), opts.jobs, [&](size_t idx) {
        TrialStats &ts = slots[idx];
        const uint64_t k = ks[idx];
        const uint64_t recovery_events = runTrial(
            trial_opts, k, {}, nullptr, report.total_events, ts);
        ts.recovery_events = recovery_events;
        // In-recovery crash stacks below this k, up to `depth` levels.
        expandRecoveryCrashes(trial_opts, k, {}, recovery_events,
                              report.total_events, ts);
    });

    // ---- reorder fan-out (drain subsets and torn lines) -------------
    std::vector<TrialStats> rslots;
    if (opts.reorder) {
        // Probe pass: group the identical event stream into batches.
        DrainProbe probe;
        {
            PmemRuntime rt(detail::trialRuntimeOptions(opts));
            if (opts.strict)
                rt.registry().setDurabilityPolicy(
                    DurabilityPolicy::Strict);
            std::unique_ptr<workloads::CrashDriver> driver =
                workloads::makeCrashDriver(opts.workload, opts.steps,
                                           opts.seed, opts.threads,
                                           opts.sched_seed);
            driver->setup(rt);
            rt.registry().setDurabilityHook(&probe);
            Rng evict_rng(detail::evictSeed(opts));
            for (uint64_t i = 0; i < opts.steps; ++i) {
                driver->step(rt, i);
                detail::maybeEvict(rt, evict_rng, opts);
            }
            rt.registry().setDurabilityHook(nullptr);
        }
        checkEventContract(probe.total(), report.total_events);

        // When crash points are sampled, sample batches the same way.
        const std::vector<DrainBatch> &batches = probe.batches();
        const std::vector<uint64_t> bidx = choosePoints(
            batches.size(), opts.sample,
            opts.seed + 0x2545f4914f6cdd1dull);

        struct ReorderTrial
        {
            uint64_t start;
            std::vector<uint8_t> masks;
        };
        std::vector<ReorderTrial> plans;
        for (uint64_t bi : bidx) {
            const DrainBatch &b = batches[bi];
            for (DrainPlan &p : planDrainStates(
                     b, opts.drain_bound, opts.drain_sample,
                     opts.seed ^ (b.start * 0x9e3779b97f4a7c15ull + 2)))
                plans.push_back({p.start, std::move(p.masks)});
        }

        rslots.resize(plans.size());
        driver::runTasks(plans.size(), opts.jobs, [&](size_t idx) {
            // Reorder trials do not recurse into recovery: the subset
            // space is already a per-batch multiplier, and the
            // recovery-crash dimension is covered by the prefix trials.
            runTrial(trial_opts, plans[idx].start, {},
                     &plans[idx].masks, report.total_events,
                     rslots[idx]);
        });
    }

    auto merge = [&report](const TrialStats &ts) {
        report.trials += ts.trials;
        report.recovery_trials += ts.recovery_trials;
        report.crashes_injected += ts.crashes_injected;
        report.undo_entries_rolled_back += ts.undo_entries_rolled_back;
        report.frees_redone += ts.frees_redone;
        report.blocks_leaked += ts.blocks_leaked;
        report.reorder_states += ts.reorder_states;
        report.torn_states += ts.torn_states;
        report.max_depth = std::max(report.max_depth, ts.max_depth);
        report.failures.insert(report.failures.end(),
                               ts.failures.begin(), ts.failures.end());
    };
    for (const TrialStats &ts : slots)
        merge(ts);
    for (const TrialStats &ts : rslots)
        merge(ts);
    return report;
}

std::vector<Failure>
replayRepro(const std::string &repro, const ExploreOptions &base)
{
    std::vector<std::string> tok;
    std::string cur;
    for (char c : repro) {
        if (c == ':') {
            tok.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    tok.push_back(cur);

    auto bad = [&]() -> std::invalid_argument {
        return std::invalid_argument(
            "bad reproducer '" + repro +
            "' (expected workload:steps:seed:k[:j | :dJ1,J2,..]"
            "[:rMASKS][:S][:tSEED][:nTHREADS][:mFAULT][:eNUM/DEN])");
    };
    if (tok.size() < 4)
        throw bad();

    ExploreOptions opts = base;
    opts.workload = tok[0];
    uint64_t k;
    std::vector<uint64_t> stack;
    std::vector<uint8_t> drain;
    std::string media;
    try {
        opts.steps = std::stoull(tok[1]);
        opts.seed = std::stoull(tok[2]);
        k = std::stoull(tok[3]);

        // Optional tokens, in order: a bare numeric j or a ":dJ1,J2,.."
        // stack, then the prefixed drain-mask, Strict, scheduler-seed,
        // thread-count, media, and eviction tokens. A bare numeric
        // anywhere after the stack position is malformed.
        size_t pos = 4;
        if (pos < tok.size() && !tok[pos].empty() &&
            tok[pos][0] >= '0' && tok[pos][0] <= '9') {
            stack.push_back(std::stoull(tok[pos]));
            ++pos;
        } else if (pos < tok.size() && tok[pos].size() > 1 &&
                   tok[pos][0] == 'd') {
            std::string item;
            for (char c : tok[pos].substr(1) + ",") {
                if (c == ',') {
                    if (item.empty())
                        throw bad();
                    stack.push_back(std::stoull(item));
                    item.clear();
                } else {
                    item += c;
                }
            }
            ++pos;
        }
        if (pos < tok.size() && tok[pos].size() > 1 && tok[pos][0] == 'r') {
            drain = decodeDrainMasks(tok[pos].substr(1));
            ++pos;
        }
        if (pos < tok.size() && tok[pos] == "S") {
            opts.strict = true;
            ++pos;
        }
        if (pos < tok.size() && !tok[pos].empty() && tok[pos][0] == 't') {
            const std::string ts = tok[pos].substr(1);
            if (ts.empty())
                throw bad();
            opts.sched_seed = std::stoull(ts);
            ++pos;
        }
        if (pos < tok.size() && !tok[pos].empty() && tok[pos][0] == 'n') {
            const std::string nt = tok[pos].substr(1);
            if (nt.empty())
                throw bad();
            opts.threads = static_cast<uint32_t>(std::stoul(nt));
            ++pos;
        }
        if (pos < tok.size() && !tok[pos].empty() && tok[pos][0] == 'm') {
            media = tok[pos].substr(1);
            if (media.empty())
                throw bad();
            ++pos;
        }
        if (pos < tok.size() && !tok[pos].empty() && tok[pos][0] == 'e') {
            const std::string ev = tok[pos].substr(1);
            const size_t slash = ev.find('/');
            if (slash == std::string::npos)
                throw bad();
            opts.evict_num = std::stoull(ev.substr(0, slash));
            opts.evict_den = std::stoull(ev.substr(slash + 1));
            if (opts.evict_den == 0)
                throw bad();
            ++pos;
        }
        if (pos != tok.size())
            throw bad();
    } catch (const std::invalid_argument &) {
        throw bad();
    } catch (const std::out_of_range &) {
        throw bad();
    }

    // A drain state is a crash *during* the outer run; recursing into
    // recovery from it is not a state the explorer generates.
    if (!drain.empty() && !stack.empty())
        throw bad();
    if (!media.empty()) {
        // Media trials have no in-recovery crash point and run under
        // the Eager policy only.
        if (!stack.empty() || !drain.empty() || opts.strict)
            throw bad();
        return replayMediaTrial(opts, k, media);
    }

    TrialStats ts;
    runTrial(opts, k, stack, drain.empty() ? nullptr : &drain,
             kNoExpectedEvents, ts);
    return ts.failures;
}

} // namespace fault
} // namespace poat
