#include "fault/explore.h"

#include <stdexcept>

#include "driver/sweep.h"
#include "fault/media.h"
#include "fault/trial.h"

namespace poat {
namespace fault {

using detail::checkRecovered;
using detail::choosePoints;
using detail::runSteps;
using detail::StepWindow;

namespace {

/** Counters one trial contributes; aggregated after the fan-out. */
struct TrialStats
{
    uint64_t crashes_injected = 0;
    uint64_t undo_entries_rolled_back = 0;
    uint64_t frees_redone = 0;
    uint64_t blocks_leaked = 0;
    uint64_t recovery_events = 0; ///< M_k (outer trials only)
    uint64_t trials = 0;
    uint64_t recovery_trials = 0;
    std::vector<Failure> failures;
};

/**
 * One complete crash trial: run, freeze the durable image at event k
 * (and, for in-recovery trials, freeze the recovery at event j), then
 * recover and check every invariant — including that recovering a
 * second time changes nothing. Returns the number of durability events
 * the (first) recovery emitted, which is the in-recovery crash-point
 * space for this k.
 */
uint64_t
runTrial(const ExploreOptions &opts, uint64_t k, uint64_t j,
         TrialStats &ts)
{
    PmemRuntime rt(detail::trialRuntimeOptions(opts));
    std::unique_ptr<workloads::CrashDriver> driver =
        workloads::makeCrashDriver(opts.workload, opts.steps, opts.seed,
                                   opts.threads, opts.sched_seed);
    driver->setup(rt);

    const bool inner = j != Failure::kNoInner;
    ++(inner ? ts.recovery_trials : ts.trials);

    auto fail = [&](const std::string &why) {
        Failure f;
        f.workload = opts.workload;
        f.steps = opts.steps;
        f.seed = opts.seed;
        f.k = k;
        f.j = j;
        f.evict_num = opts.evict_num;
        f.evict_den = opts.evict_den;
        f.sched_seed = opts.sched_seed;
        f.threads = opts.threads;
        f.why = why;
        ts.failures.push_back(std::move(f));
    };

    CrashAtEvent crash_hook(k);
    rt.registry().setDurabilityHook(&crash_hook);
    const StepWindow w = runSteps(rt, *driver, opts, crash_hook);
    rt.registry().setDurabilityHook(nullptr);
    if (crash_hook.fired())
        ++ts.crashes_injected;

    rt.registry().crashAll();

    // Pre-recovery log inspection: the work recovery is about to do.
    // An illegal on-media log here is itself an invariant violation —
    // the commit protocol must never publish one.
    try {
        for (uint32_t id : rt.registry().openIds()) {
            OpenPool &op = rt.registry().get(id);
            // Every slot: a concurrent crash can leave several workers'
            // logs in flight, and each must be on-media legal.
            op.forEachLog([&op, &ts](UndoLog &log) {
                log.validateLog();
                const uint32_t st = log.state();
                if (st == LogHeader::kActive) {
                    ts.undo_entries_rolled_back += log.records().size();
                } else if (st == LogHeader::kCommitting) {
                    for (const UndoLog::Record &r : log.records()) {
                        if (r.type == LogEntryHeader::kFree &&
                            op.alloc.isAllocated(r.target_off))
                            ++ts.frees_redone;
                    }
                }
            });
        }
    } catch (const std::runtime_error &e) {
        fail(std::string("crashed image has an illegal undo log: ") +
             e.what());
        return 0;
    }

    EventCounter recovery_counter;
    CrashAtEvent inner_hook(inner ? j : 0);
    rt.registry().setDurabilityHook(
        inner ? static_cast<DurabilityHook *>(&inner_hook)
              : &recovery_counter);
    try {
        rt.registry().recoverAll();
    } catch (const std::runtime_error &e) {
        rt.registry().setDurabilityHook(nullptr);
        fail(std::string("recovery threw: ") + e.what());
        return 0;
    }
    rt.registry().setDurabilityHook(nullptr);

    if (inner) {
        if (inner_hook.fired())
            ++ts.crashes_injected;
        // Power fails again mid-recovery: revert to the frozen partial
        // recovery image and recover from *that*.
        rt.registry().crashAll();
        try {
            rt.registry().recoverAll();
        } catch (const std::runtime_error &e) {
            fail(std::string("re-recovery threw: ") + e.what());
            return 0;
        }
    }

    std::string why;
    if (!checkRecovered(rt, *driver, w, &ts.blocks_leaked, &why)) {
        fail(why);
        return recovery_counter.total();
    }

    // Idempotence: a second recovery pass must find nothing to do and
    // leave every invariant intact.
    try {
        rt.registry().recoverAll();
    } catch (const std::runtime_error &e) {
        fail(std::string("second recovery threw: ") + e.what());
        return recovery_counter.total();
    }
    uint64_t dummy_leaked = 0;
    if (!checkRecovered(rt, *driver, w, &dummy_leaked, &why))
        fail("after second recovery: " + why);
    return recovery_counter.total();
}

} // namespace

std::string
Failure::repro() const
{
    std::string s = workload + ":" + std::to_string(steps) + ":" +
        std::to_string(seed) + ":" + std::to_string(k);
    if (j != kNoInner)
        s += ":" + std::to_string(j);
    if (workloads::isConcurrentCrashWorkload(workload)) {
        s += ":t" + std::to_string(sched_seed);
        if (threads != 0)
            s += ":n" + std::to_string(threads);
    }
    if (!media.empty())
        s += ":m" + media;
    if (evict_num != 0) {
        s += ":e" + std::to_string(evict_num) + "/" +
            std::to_string(evict_den);
    }
    return s;
}

void
ExploreReport::publish(StatsRegistry &stats) const
{
    stats.counter("fault.events") += total_events;
    stats.counter("fault.trials") += trials;
    stats.counter("fault.recovery_trials") += recovery_trials;
    stats.counter("fault.crashes_injected") += crashes_injected;
    stats.counter("fault.undo_entries_rolled_back") +=
        undo_entries_rolled_back;
    stats.counter("fault.frees_redone") += frees_redone;
    stats.counter("fault.blocks_leaked") += blocks_leaked;
    stats.counter("fault.failures") += failures.size();
}

ExploreReport
explore(const ExploreOptions &opts)
{
    ExploreReport report;

    // ---- profile pass: count the durability events ------------------
    {
        PmemRuntime rt(detail::trialRuntimeOptions(opts));
        std::unique_ptr<workloads::CrashDriver> driver =
            workloads::makeCrashDriver(opts.workload, opts.steps,
                                       opts.seed, opts.threads,
                                       opts.sched_seed);
        driver->setup(rt);
        EventCounter counter;
        rt.registry().setDurabilityHook(&counter);
        Rng evict_rng(detail::evictSeed(opts));
        for (uint64_t i = 0; i < opts.steps; ++i) {
            driver->step(rt, i);
            detail::maybeEvict(rt, evict_rng, opts);
        }
        rt.registry().setDurabilityHook(nullptr);
        report.total_events = counter.total();
        report.clwb_events = counter.count(WriteBackCause::Clwb);
        report.fence_events = counter.count(WriteBackCause::Fence);
        report.evict_events = counter.count(WriteBackCause::Evict);
    }

    // ---- outer fan-out ----------------------------------------------
    const std::vector<uint64_t> ks = choosePoints(
        report.total_events, opts.sample,
        opts.seed + 0x517cc1b727220a95ull);
    std::vector<TrialStats> slots(ks.size());
    driver::runTasks(ks.size(), opts.jobs, [&](size_t idx) {
        TrialStats &ts = slots[idx];
        const uint64_t k = ks[idx];
        const uint64_t recovery_events =
            runTrial(opts, k, Failure::kNoInner, ts);
        ts.recovery_events = recovery_events;
        if (!opts.in_recovery)
            return;
        // In-recovery crash points for this k (one level deep).
        const std::vector<uint64_t> js = choosePoints(
            recovery_events, opts.inner_cap,
            opts.seed ^ (k * 0x9e3779b97f4a7c15ull + 1));
        for (uint64_t j : js)
            runTrial(opts, k, j, ts);
    });

    for (const TrialStats &ts : slots) {
        report.trials += ts.trials;
        report.recovery_trials += ts.recovery_trials;
        report.crashes_injected += ts.crashes_injected;
        report.undo_entries_rolled_back += ts.undo_entries_rolled_back;
        report.frees_redone += ts.frees_redone;
        report.blocks_leaked += ts.blocks_leaked;
        report.failures.insert(report.failures.end(),
                               ts.failures.begin(), ts.failures.end());
    }
    return report;
}

std::vector<Failure>
replayRepro(const std::string &repro, const ExploreOptions &base)
{
    std::vector<std::string> tok;
    std::string cur;
    for (char c : repro) {
        if (c == ':') {
            tok.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    tok.push_back(cur);

    auto bad = [&]() -> std::invalid_argument {
        return std::invalid_argument(
            "bad reproducer '" + repro +
            "' (expected workload:steps:seed:k[:j][:tSEED][:nTHREADS]"
            "[:mFAULT][:eNUM/DEN])");
    };
    if (tok.size() < 4)
        throw bad();

    ExploreOptions opts = base;
    opts.workload = tok[0];
    uint64_t k, j = Failure::kNoInner;
    std::string media;
    try {
        opts.steps = std::stoull(tok[1]);
        opts.seed = std::stoull(tok[2]);
        k = std::stoull(tok[3]);

        // Optional tokens, in order: a bare numeric j, then the
        // prefixed scheduler-seed, thread-count, media, and eviction
        // tokens. A bare numeric anywhere after position 4 is
        // malformed.
        size_t pos = 4;
        if (pos < tok.size() && !tok[pos].empty() &&
            tok[pos][0] != 't' && tok[pos][0] != 'n' &&
            tok[pos][0] != 'm' && tok[pos][0] != 'e') {
            j = std::stoull(tok[pos]);
            ++pos;
        }
        if (pos < tok.size() && !tok[pos].empty() && tok[pos][0] == 't') {
            const std::string ts = tok[pos].substr(1);
            if (ts.empty())
                throw bad();
            opts.sched_seed = std::stoull(ts);
            ++pos;
        }
        if (pos < tok.size() && !tok[pos].empty() && tok[pos][0] == 'n') {
            const std::string nt = tok[pos].substr(1);
            if (nt.empty())
                throw bad();
            opts.threads = static_cast<uint32_t>(std::stoul(nt));
            ++pos;
        }
        if (pos < tok.size() && !tok[pos].empty() && tok[pos][0] == 'm') {
            media = tok[pos].substr(1);
            if (media.empty())
                throw bad();
            ++pos;
        }
        if (pos < tok.size() && !tok[pos].empty() && tok[pos][0] == 'e') {
            const std::string ev = tok[pos].substr(1);
            const size_t slash = ev.find('/');
            if (slash == std::string::npos)
                throw bad();
            opts.evict_num = std::stoull(ev.substr(0, slash));
            opts.evict_den = std::stoull(ev.substr(slash + 1));
            if (opts.evict_den == 0)
                throw bad();
            ++pos;
        }
        if (pos != tok.size())
            throw bad();
    } catch (const std::invalid_argument &) {
        throw bad();
    } catch (const std::out_of_range &) {
        throw bad();
    }

    if (!media.empty()) {
        if (j != Failure::kNoInner)
            throw bad(); // media trials have no in-recovery crash point
        return replayMediaTrial(opts, k, media);
    }

    TrialStats ts;
    runTrial(opts, k, j, ts);
    return ts.failures;
}

} // namespace fault
} // namespace poat
