#include "fault/explore.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>

#include "common/rng.h"
#include "driver/sweep.h"
#include "fault/injector.h"
#include "pmem/runtime.h"
#include "workloads/crash_support.h"

namespace poat {
namespace fault {

namespace {

/**
 * Completed-step counts the recovered state may legally show. A crash
 * that fired inside step s can recover to s (rolled back) or s + 1
 * (commit point was already durable); a crash during the eviction pass
 * after step i — or no crash at all — must recover to exactly the last
 * completed count, because eviction only writes back lines of data the
 * transactions already persisted.
 */
struct StepWindow
{
    uint64_t lo = 0;
    uint64_t hi = 0;
};

/** Counters one trial contributes; aggregated after the fan-out. */
struct TrialStats
{
    uint64_t crashes_injected = 0;
    uint64_t undo_entries_rolled_back = 0;
    uint64_t frees_redone = 0;
    uint64_t blocks_leaked = 0;
    uint64_t recovery_events = 0; ///< M_k (outer trials only)
    uint64_t trials = 0;
    uint64_t recovery_trials = 0;
    std::vector<Failure> failures;
};

uint64_t
evictSeed(const ExploreOptions &opts)
{
    return opts.seed ^ 0x9e3779b97f4a7c15ull;
}

void
maybeEvict(PmemRuntime &rt, Rng &rng, const ExploreOptions &opts)
{
    if (opts.evict_num == 0)
        return;
    for (uint32_t id : rt.registry().openIds()) {
        rt.registry().get(id).pool.evictRandomLines(rng, opts.evict_num,
                                                    opts.evict_den);
    }
}

/**
 * Run all workload steps with @p hook installed, attributing the first
 * suppressed write-back to the step (or eviction pass) it fired in.
 */
StepWindow
runSteps(PmemRuntime &rt, workloads::CrashDriver &driver,
         const ExploreOptions &opts, const CrashAtEvent &hook)
{
    Rng evict_rng(evictSeed(opts));
    StepWindow w{opts.steps, opts.steps};
    bool attributed = false;
    for (uint64_t i = 0; i < opts.steps; ++i) {
        driver.step(rt, i);
        if (!attributed && hook.fired()) {
            w.lo = i;
            w.hi = i + 1;
            attributed = true;
        }
        maybeEvict(rt, evict_rng, opts);
        if (!attributed && hook.fired()) {
            w.lo = w.hi = i + 1;
            attributed = true;
        }
    }
    return w;
}

/**
 * Post-recovery invariants: idle and legal undo logs, valid allocator
 * metadata, a recovered state the workload model accepts, and no
 * allocated-but-unreachable blocks. @p leaked accumulates leak counts
 * (only meaningful when the check fails with a leak).
 */
bool
checkRecovered(PmemRuntime &rt, workloads::CrashDriver &driver,
               const StepWindow &w, uint64_t *leaked, std::string *why)
{
    for (uint32_t id : rt.registry().openIds()) {
        OpenPool &op = rt.registry().get(id);
        if (op.log.state() != LogHeader::kIdle) {
            *why = "undo log of pool '" + op.pool.name() +
                "' not idle after recovery";
            return false;
        }
        if (!op.alloc.validate()) {
            *why = "allocator metadata of pool '" + op.pool.name() +
                "' invalid after recovery";
            return false;
        }
    }
    if (!driver.verifyRecovered(rt, w.lo, w.hi, why))
        return false;
    std::map<uint32_t, std::set<uint32_t>> reach;
    if (driver.reachable(rt, &reach)) {
        uint64_t n = 0;
        for (uint32_t id : rt.registry().openIds()) {
            const std::set<uint32_t> &set = reach[id];
            for (uint32_t p :
                 rt.registry().get(id).alloc.allocatedPayloads()) {
                if (set.count(p) == 0)
                    ++n;
            }
        }
        if (n != 0) {
            *leaked += n;
            *why = std::to_string(n) +
                " allocated block(s) unreachable after recovery (leak)";
            return false;
        }
    }
    return true;
}

/**
 * One complete crash trial: run, freeze the durable image at event k
 * (and, for in-recovery trials, freeze the recovery at event j), then
 * recover and check every invariant — including that recovering a
 * second time changes nothing. Returns the number of durability events
 * the (first) recovery emitted, which is the in-recovery crash-point
 * space for this k.
 */
uint64_t
runTrial(const ExploreOptions &opts, uint64_t k, uint64_t j,
         TrialStats &ts)
{
    PmemRuntime rt;
    std::unique_ptr<workloads::CrashDriver> driver =
        workloads::makeCrashDriver(opts.workload, opts.steps, opts.seed);
    driver->setup(rt);

    const bool inner = j != Failure::kNoInner;
    ++(inner ? ts.recovery_trials : ts.trials);

    auto fail = [&](const std::string &why) {
        Failure f;
        f.workload = opts.workload;
        f.steps = opts.steps;
        f.seed = opts.seed;
        f.k = k;
        f.j = j;
        f.why = why;
        ts.failures.push_back(std::move(f));
    };

    CrashAtEvent crash_hook(k);
    rt.registry().setDurabilityHook(&crash_hook);
    const StepWindow w = runSteps(rt, *driver, opts, crash_hook);
    rt.registry().setDurabilityHook(nullptr);
    if (crash_hook.fired())
        ++ts.crashes_injected;

    rt.registry().crashAll();

    // Pre-recovery log inspection: the work recovery is about to do.
    // An illegal on-media log here is itself an invariant violation —
    // the commit protocol must never publish one.
    try {
        for (uint32_t id : rt.registry().openIds()) {
            OpenPool &op = rt.registry().get(id);
            op.log.validateLog();
            const uint32_t st = op.log.state();
            if (st == LogHeader::kActive) {
                ts.undo_entries_rolled_back += op.log.records().size();
            } else if (st == LogHeader::kCommitting) {
                for (const UndoLog::Record &r : op.log.records()) {
                    if (r.type == LogEntryHeader::kFree &&
                        op.alloc.isAllocated(r.target_off))
                        ++ts.frees_redone;
                }
            }
        }
    } catch (const std::runtime_error &e) {
        fail(std::string("crashed image has an illegal undo log: ") +
             e.what());
        return 0;
    }

    EventCounter recovery_counter;
    CrashAtEvent inner_hook(inner ? j : 0);
    rt.registry().setDurabilityHook(
        inner ? static_cast<DurabilityHook *>(&inner_hook)
              : &recovery_counter);
    try {
        rt.registry().recoverAll();
    } catch (const std::runtime_error &e) {
        rt.registry().setDurabilityHook(nullptr);
        fail(std::string("recovery threw: ") + e.what());
        return 0;
    }
    rt.registry().setDurabilityHook(nullptr);

    if (inner) {
        if (inner_hook.fired())
            ++ts.crashes_injected;
        // Power fails again mid-recovery: revert to the frozen partial
        // recovery image and recover from *that*.
        rt.registry().crashAll();
        try {
            rt.registry().recoverAll();
        } catch (const std::runtime_error &e) {
            fail(std::string("re-recovery threw: ") + e.what());
            return 0;
        }
    }

    std::string why;
    if (!checkRecovered(rt, *driver, w, &ts.blocks_leaked, &why)) {
        fail(why);
        return recovery_counter.total();
    }

    // Idempotence: a second recovery pass must find nothing to do and
    // leave every invariant intact.
    try {
        rt.registry().recoverAll();
    } catch (const std::runtime_error &e) {
        fail(std::string("second recovery threw: ") + e.what());
        return recovery_counter.total();
    }
    uint64_t dummy_leaked = 0;
    if (!checkRecovered(rt, *driver, w, &dummy_leaked, &why))
        fail("after second recovery: " + why);
    return recovery_counter.total();
}

/** Event indices to crash at: all of [0, total) or a seeded sample. */
std::vector<uint64_t>
choosePoints(uint64_t total, uint64_t sample, uint64_t rng_seed)
{
    std::vector<uint64_t> ks;
    if (sample == 0 || sample >= total) {
        ks.resize(total);
        std::iota(ks.begin(), ks.end(), 0ull);
        return ks;
    }
    std::set<uint64_t> chosen;
    Rng rng(rng_seed);
    while (chosen.size() < sample)
        chosen.insert(rng.below(total));
    ks.assign(chosen.begin(), chosen.end());
    return ks;
}

} // namespace

std::string
Failure::repro() const
{
    std::string s = workload + ":" + std::to_string(steps) + ":" +
        std::to_string(seed) + ":" + std::to_string(k);
    if (j != kNoInner)
        s += ":" + std::to_string(j);
    return s;
}

void
ExploreReport::publish(StatsRegistry &stats) const
{
    stats.counter("fault.events") += total_events;
    stats.counter("fault.trials") += trials;
    stats.counter("fault.recovery_trials") += recovery_trials;
    stats.counter("fault.crashes_injected") += crashes_injected;
    stats.counter("fault.undo_entries_rolled_back") +=
        undo_entries_rolled_back;
    stats.counter("fault.frees_redone") += frees_redone;
    stats.counter("fault.blocks_leaked") += blocks_leaked;
    stats.counter("fault.failures") += failures.size();
}

ExploreReport
explore(const ExploreOptions &opts)
{
    ExploreReport report;

    // ---- profile pass: count the durability events ------------------
    {
        PmemRuntime rt;
        std::unique_ptr<workloads::CrashDriver> driver =
            workloads::makeCrashDriver(opts.workload, opts.steps,
                                       opts.seed);
        driver->setup(rt);
        EventCounter counter;
        rt.registry().setDurabilityHook(&counter);
        Rng evict_rng(evictSeed(opts));
        for (uint64_t i = 0; i < opts.steps; ++i) {
            driver->step(rt, i);
            maybeEvict(rt, evict_rng, opts);
        }
        rt.registry().setDurabilityHook(nullptr);
        report.total_events = counter.total();
        report.clwb_events = counter.count(WriteBackCause::Clwb);
        report.fence_events = counter.count(WriteBackCause::Fence);
        report.evict_events = counter.count(WriteBackCause::Evict);
    }

    // ---- outer fan-out ----------------------------------------------
    const std::vector<uint64_t> ks = choosePoints(
        report.total_events, opts.sample,
        opts.seed + 0x517cc1b727220a95ull);
    std::vector<TrialStats> slots(ks.size());
    driver::runTasks(ks.size(), opts.jobs, [&](size_t idx) {
        TrialStats &ts = slots[idx];
        const uint64_t k = ks[idx];
        const uint64_t recovery_events =
            runTrial(opts, k, Failure::kNoInner, ts);
        ts.recovery_events = recovery_events;
        if (!opts.in_recovery)
            return;
        // In-recovery crash points for this k (one level deep).
        const std::vector<uint64_t> js = choosePoints(
            recovery_events, opts.inner_cap,
            opts.seed ^ (k * 0x9e3779b97f4a7c15ull + 1));
        for (uint64_t j : js)
            runTrial(opts, k, j, ts);
    });

    for (const TrialStats &ts : slots) {
        report.trials += ts.trials;
        report.recovery_trials += ts.recovery_trials;
        report.crashes_injected += ts.crashes_injected;
        report.undo_entries_rolled_back += ts.undo_entries_rolled_back;
        report.frees_redone += ts.frees_redone;
        report.blocks_leaked += ts.blocks_leaked;
        report.failures.insert(report.failures.end(),
                               ts.failures.begin(), ts.failures.end());
    }
    return report;
}

std::vector<Failure>
replayRepro(const std::string &repro, const ExploreOptions &base)
{
    std::vector<std::string> tok;
    std::string cur;
    for (char c : repro) {
        if (c == ':') {
            tok.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    tok.push_back(cur);
    if (tok.size() != 4 && tok.size() != 5) {
        throw std::invalid_argument(
            "bad reproducer '" + repro +
            "' (expected workload:steps:seed:k[:j])");
    }
    ExploreOptions opts = base;
    opts.workload = tok[0];
    uint64_t k, j = Failure::kNoInner;
    try {
        opts.steps = std::stoull(tok[1]);
        opts.seed = std::stoull(tok[2]);
        k = std::stoull(tok[3]);
        if (tok.size() == 5)
            j = std::stoull(tok[4]);
    } catch (const std::exception &) {
        throw std::invalid_argument(
            "bad reproducer '" + repro +
            "' (expected workload:steps:seed:k[:j])");
    }
    TrialStats ts;
    runTrial(opts, k, j, ts);
    return ts.failures;
}

} // namespace fault
} // namespace poat
