/**
 * @file
 * Persistence-reordering crash states: drain batches and their subsets.
 *
 * The prefix-freeze explorer (fault/explore.h) crashes between
 * durability events, which covers every reachable crash state only if
 * each event persists one full line in program order. Under the Strict
 * policy that assumption breaks at every fence: the fence retires a
 * *batch* of staged lines with no ordering among them until it
 * completes, so a real power failure mid-drain persists an arbitrary
 * subset of the batch — and may additionally tear the line it was
 * writing at 8-byte-word granularity. This module enumerates that
 * per-event crash-state space:
 *
 *  1. A probe pass runs the workload under DrainProbe, which records
 *     every durability event and groups the fence-retired ones into
 *     batches (Pool::fence announces each drain via onFenceDrainBegin;
 *     CLWB and eviction write-backs are singleton batches).
 *  2. For each batch [b, b+n) the explorer plans CrashWithDrain trials:
 *     every proper, non-empty subset of the batch when 2^n - 2 fits the
 *     exhaustive bound, a seeded sample of subsets otherwise, plus torn
 *     states — the drain stops mid-line at each batch position, with
 *     the interrupted line persisting only a proper prefix or suffix of
 *     its eight 8-byte words (the word-mask analogue of the media
 *     injector's torn-64B faults).
 *
 * The empty subset equals CrashAtEvent(b) and the full subset equals
 * CrashAtEvent(b + n), so both are covered by the prefix trials and
 * skipped here (the bit-identity of the full subset is asserted by
 * tests, not re-explored).
 */
#ifndef POAT_FAULT_REORDER_H
#define POAT_FAULT_REORDER_H

#include <cstdint>
#include <string>
#include <vector>

#include "fault/injector.h"

namespace poat {
namespace fault {

/**
 * One drain batch of the profiled event stream: the write-back events
 * [start, start + lines.size()) retire together and reach media in no
 * guaranteed order. A CLWB or eviction write-back is its own batch of
 * one (the line can still tear mid-write).
 */
struct DrainBatch
{
    uint64_t start = 0;           ///< event index of the first event
    std::vector<uint32_t> lines;  ///< line numbers, in event order
    uint32_t pool_id = 0;
    WriteBackCause cause = WriteBackCause::Clwb;

    uint64_t size() const { return lines.size(); }
};

/**
 * Profiling hook that records every durability event and groups
 * fence-drain batches (see file comment). Non-interfering: every
 * write-back proceeds.
 */
class DrainProbe final : public DurabilityHook
{
  public:
    bool onWriteBack(Pool &pool, uint32_t line,
                     WriteBackCause cause) override;
    void onFenceDrainBegin(Pool &pool,
                           const std::vector<uint32_t> &pending) override;

    const std::vector<DrainBatch> &batches() const { return batches_; }

    /** Total durability events observed (== sum of batch sizes). */
    uint64_t total() const { return total_; }

  private:
    std::vector<DrainBatch> batches_;
    uint64_t total_ = 0;
    uint32_t fencePool_ = 0; ///< pool of the announced drain
    uint64_t fenceLeft_ = 0; ///< events remaining in the announced drain
};

/**
 * The 14 torn-line word masks: every proper, non-empty prefix and
 * suffix of a line's eight 8-byte words (7 prefixes + 7 suffixes;
 * never 0 or kFullLineMask, which are the untorn subset states).
 */
const std::vector<uint8_t> &tornWordMasks();

/**
 * One planned reorder trial: CrashWithDrain(start, masks). torn is true
 * when any mask is a partial line (for the fault.reorder.torn counter).
 */
struct DrainPlan
{
    uint64_t start = 0;
    std::vector<uint8_t> masks;
    bool torn = false;
};

/**
 * Plan the reorder trials for one batch (see file comment): proper
 * subsets — exhaustive when 2^size - 2 <= exhaustive bound 2^bound,
 * i.e. size <= bound, else @p sample seeded draws — plus the torn
 * states at every batch position. Deterministic for a fixed seed.
 */
std::vector<DrainPlan> planDrainStates(const DrainBatch &batch,
                                       uint64_t bound, uint64_t sample,
                                       uint64_t seed);

/** Hex encoding of a drain-mask vector (two digits per event). */
std::string encodeDrainMasks(const std::vector<uint8_t> &masks);

/**
 * Parse a ":r" reproducer payload back into masks.
 * @throws std::invalid_argument on an empty, odd-length, or non-hex
 *         string.
 */
std::vector<uint8_t> decodeDrainMasks(const std::string &hex);

} // namespace fault
} // namespace poat

#endif // POAT_FAULT_REORDER_H
