/**
 * @file
 * Shared trial machinery for the crash-point and media-fault explorers
 * (internal to src/fault/): deterministic step running under a
 * durability hook, the recovered-state invariant checks, and seeded
 * point selection. Both explorers must agree on these bit-for-bit or a
 * reproducer from one would replay differently in the other.
 */
#ifndef POAT_FAULT_TRIAL_H
#define POAT_FAULT_TRIAL_H

#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fault/explore.h"
#include "fault/injector.h"
#include "pmem/runtime.h"
#include "workloads/crash_support.h"

namespace poat {
namespace fault {
namespace detail {

/**
 * Completed-step counts the recovered state may legally show. A crash
 * that fired inside step s can recover to s (rolled back) or s + 1
 * (commit point was already durable); a crash during the eviction pass
 * after step i — or no crash at all — must recover to exactly the last
 * completed count, because eviction only writes back lines of data the
 * transactions already persisted.
 */
struct StepWindow
{
    uint64_t lo = 0;
    uint64_t hi = 0;
};

inline uint64_t
evictSeed(const ExploreOptions &opts)
{
    return opts.seed ^ 0x9e3779b97f4a7c15ull;
}

/**
 * Runtime options for one trial: concurrent workloads need one undo-log
 * slot per engine worker (the drivers default to 2 when opts.threads is
 * 0, so the slot count must match that default).
 */
inline RuntimeOptions
trialRuntimeOptions(const ExploreOptions &opts)
{
    RuntimeOptions ro;
    if (workloads::isConcurrentCrashWorkload(opts.workload))
        ro.log_slots = opts.threads != 0 ? opts.threads : 2;
    return ro;
}

inline void
maybeEvict(PmemRuntime &rt, Rng &rng, const ExploreOptions &opts)
{
    if (opts.evict_num == 0)
        return;
    for (uint32_t id : rt.registry().openIds()) {
        rt.registry().get(id).pool.evictRandomLines(rng, opts.evict_num,
                                                    opts.evict_den);
    }
}

/**
 * Sentinel for "no profiled event count to check against" (replay of a
 * reproducer string runs without a profile pass).
 */
constexpr uint64_t kNoExpectedEvents = UINT64_MAX;

/**
 * Profile-pass contract: the profile and every trial must observe the
 * same durability-event count, or crash-point indices silently mean
 * different instants in different runs (a nondeterministic workload
 * truncates or shifts the crash-point space). Fails fast, naming both
 * counts.
 */
inline void
checkEventContract(uint64_t observed, uint64_t expected)
{
    if (expected == kNoExpectedEvents || observed == expected)
        return;
    throw std::runtime_error(
        "durability-event contract violated: profile pass counted " +
        std::to_string(expected) + " events but the trial observed " +
        std::to_string(observed) +
        " — the workload is nondeterministic under the hook");
}

/**
 * Run all workload steps with @p hook installed, attributing the first
 * suppressed write-back to the step (or eviction pass) it fired in.
 */
inline StepWindow
runSteps(PmemRuntime &rt, workloads::CrashDriver &driver,
         const ExploreOptions &opts, const CrashHook &hook)
{
    Rng evict_rng(evictSeed(opts));
    StepWindow w{opts.steps, opts.steps};
    bool attributed = false;
    for (uint64_t i = 0; i < opts.steps; ++i) {
        driver.step(rt, i);
        if (!attributed && hook.fired()) {
            w.lo = i;
            w.hi = i + 1;
            attributed = true;
        }
        maybeEvict(rt, evict_rng, opts);
        if (!attributed && hook.fired()) {
            w.lo = w.hi = i + 1;
            attributed = true;
        }
    }
    return w;
}

/**
 * Post-recovery invariants: idle and legal undo logs, valid allocator
 * metadata, a recovered state the workload model accepts, and no
 * allocated-but-unreachable blocks. @p leaked accumulates leak counts
 * (only meaningful when the check fails with a leak).
 */
inline bool
checkRecovered(PmemRuntime &rt, workloads::CrashDriver &driver,
               const StepWindow &w, uint64_t *leaked, std::string *why)
{
    for (uint32_t id : rt.registry().openIds()) {
        OpenPool &op = rt.registry().get(id);
        // Every slot: a concurrent crash image can hold several
        // workers' undo logs in flight at once, and recovery must have
        // settled all of them.
        bool logs_idle = true;
        op.forEachLog([&logs_idle](UndoLog &log) {
            logs_idle = logs_idle && log.state() == LogHeader::kIdle;
        });
        if (!logs_idle) {
            *why = "undo log of pool '" + op.pool.name() +
                "' not idle after recovery";
            return false;
        }
        if (!op.alloc.validate()) {
            *why = "allocator metadata of pool '" + op.pool.name() +
                "' invalid after recovery";
            return false;
        }
    }
    if (!driver.verifyRecovered(rt, w.lo, w.hi, why))
        return false;
    std::map<uint32_t, std::set<uint32_t>> reach;
    if (driver.reachable(rt, &reach)) {
        uint64_t n = 0;
        for (uint32_t id : rt.registry().openIds()) {
            const std::set<uint32_t> &set = reach[id];
            for (uint32_t p :
                 rt.registry().get(id).alloc.allocatedPayloads()) {
                if (set.count(p) == 0)
                    ++n;
            }
        }
        if (n != 0) {
            *leaked += n;
            *why = std::to_string(n) +
                " allocated block(s) unreachable after recovery (leak)";
            return false;
        }
    }
    return true;
}

/** Event indices to crash at: all of [0, total) or a seeded sample. */
inline std::vector<uint64_t>
choosePoints(uint64_t total, uint64_t sample, uint64_t rng_seed)
{
    std::vector<uint64_t> ks;
    if (sample == 0 || sample >= total) {
        ks.resize(total);
        for (uint64_t i = 0; i < total; ++i)
            ks[i] = i;
        return ks;
    }
    std::set<uint64_t> chosen;
    Rng rng(rng_seed);
    while (chosen.size() < sample)
        chosen.insert(rng.below(total));
    ks.assign(chosen.begin(), chosen.end());
    return ks;
}

} // namespace detail
} // namespace fault
} // namespace poat

#endif // POAT_FAULT_TRIAL_H
