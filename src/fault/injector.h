/**
 * @file
 * Durability-path fault injection hooks.
 *
 * All hooks plug into Pool's write-back path (see DurabilityHook in
 * pmem/pool.h). The model is *freeze semantics*: a suppressed
 * write-back drops only the durable copy of the line — every piece of
 * volatile bookkeeping proceeds unchanged — so the program's execution
 * after the crash point is bit-identical to an uninjected run. The
 * explorer lets the workload run to completion, then simulates the
 * power failure (crashAll) and recovers from the frozen durable image.
 * That turns "crash at instruction X" into a deterministic, replayable
 * experiment: the durable image equals what real hardware would hold
 * had the power failed right before event k.
 *
 * Two crash hooks cover two shapes of failure:
 *
 *  - CrashAtEvent(k): the classic prefix freeze — the first k events
 *    persist in full, everything later is suppressed.
 *  - CrashWithDrain(b, masks): a crash *inside* a fence-drain batch
 *    starting at event b — each batch event gets its own word mask
 *    (full, suppressed, or torn), modeling the arbitrary subset of
 *    staged lines a real power failure lets reach media, including a
 *    line torn at 8-byte-word granularity mid-write-back.
 *
 * Both count every durability event they observe (observed()), which
 * the explorer checks against the profile pass so a nondeterministic
 * workload cannot silently truncate the crash-point space.
 */
#ifndef POAT_FAULT_INJECTOR_H
#define POAT_FAULT_INJECTOR_H

#include <array>
#include <cstdint>
#include <vector>

#include "pmem/pool.h"

namespace poat {
namespace fault {

/** Counts durability events (write-backs) without interfering. */
class EventCounter final : public DurabilityHook
{
  public:
    bool
    onWriteBack(Pool &, uint32_t, WriteBackCause cause) override
    {
        ++total_;
        ++byCause_[static_cast<size_t>(cause)];
        return true;
    }

    uint64_t total() const { return total_; }

    uint64_t
    count(WriteBackCause cause) const
    {
        return byCause_[static_cast<size_t>(cause)];
    }

    void
    reset()
    {
        total_ = 0;
        byCause_ = {};
    }

  private:
    uint64_t total_ = 0;
    std::array<uint64_t, 3> byCause_{}; ///< indexed by WriteBackCause
};

/**
 * Common base of the crash-injection hooks: whether a crash was
 * actually injected (fired) and how many durability events the run
 * emitted in total (observed — suppressed events included).
 */
class CrashHook : public DurabilityHook
{
  public:
    /** True once at least one write-back was suppressed or torn. */
    bool fired() const { return fired_; }

    /** Total durability events observed, suppressed ones included. */
    uint64_t observed() const { return observed_; }

  protected:
    uint64_t observed_ = 0;
    bool fired_ = false;
};

/**
 * Lets the first @p k write-backs through, then suppresses every later
 * one: the durable image freezes exactly as if power failed right
 * before event index k. k = 0 freezes immediately; a k at or past the
 * run's event total never fires (equivalent to no crash).
 */
class CrashAtEvent final : public CrashHook
{
  public:
    explicit CrashAtEvent(uint64_t k) : k_(k) {}

    bool
    onWriteBack(Pool &, uint32_t, WriteBackCause) override
    {
        ++observed_;
        if (seen_ < k_) {
            ++seen_;
            return true;
        }
        fired_ = true;
        return false;
    }

    /** Write-backs allowed through so far (<= k). */
    uint64_t seen() const { return seen_; }

  private:
    uint64_t k_;
    uint64_t seen_ = 0;
};

/**
 * Crash inside the drain batch starting at event @p batch_start: events
 * before the batch persist in full, batch event i persists per
 * masks[i] (a word mask — kFullLineMask, 0, or a torn in-between), and
 * everything past the masks is suppressed. With all masks equal to
 * kFullLineMask this is bit-identical to CrashAtEvent(batch_start +
 * masks.size()) — the full-subset drain is exactly the prefix freeze.
 */
class CrashWithDrain final : public CrashHook
{
  public:
    CrashWithDrain(uint64_t batch_start, std::vector<uint8_t> masks)
        : start_(batch_start), masks_(std::move(masks))
    {}

    uint8_t
    onWriteBackWords(Pool &, uint32_t, WriteBackCause) override
    {
        const uint64_t i = observed_++;
        if (i < start_)
            return kFullLineMask;
        const uint64_t rel = i - start_;
        const uint8_t mask =
            rel < masks_.size() ? masks_[rel] : static_cast<uint8_t>(0);
        if (mask != kFullLineMask)
            fired_ = true;
        return mask;
    }

    bool
    onWriteBack(Pool &pool, uint32_t line, WriteBackCause cause) override
    {
        // Pool dispatches through onWriteBackWords(); this boolean view
        // exists only for callers of the legacy entry point.
        return onWriteBackWords(pool, line, cause) == kFullLineMask;
    }

  private:
    uint64_t start_;
    std::vector<uint8_t> masks_;
};

} // namespace fault
} // namespace poat

#endif // POAT_FAULT_INJECTOR_H
