/**
 * @file
 * Durability-path fault injection hooks.
 *
 * Both hooks plug into Pool's write-back path (see DurabilityHook in
 * pmem/pool.h). The model is *freeze semantics*: a suppressed
 * write-back drops only the durable copy of the line — every piece of
 * volatile bookkeeping proceeds unchanged — so the program's execution
 * after the crash point is bit-identical to an uninjected run. The
 * explorer lets the workload run to completion, then simulates the
 * power failure (crashAll) and recovers from the frozen durable image.
 * That turns "crash at instruction X" into a deterministic, replayable
 * experiment: the durable image equals what real hardware would hold
 * had the power failed right before event k.
 */
#ifndef POAT_FAULT_INJECTOR_H
#define POAT_FAULT_INJECTOR_H

#include <array>
#include <cstdint>

#include "pmem/pool.h"

namespace poat {
namespace fault {

/** Counts durability events (write-backs) without interfering. */
class EventCounter final : public DurabilityHook
{
  public:
    bool
    onWriteBack(Pool &, uint32_t, WriteBackCause cause) override
    {
        ++total_;
        ++byCause_[static_cast<size_t>(cause)];
        return true;
    }

    uint64_t total() const { return total_; }

    uint64_t
    count(WriteBackCause cause) const
    {
        return byCause_[static_cast<size_t>(cause)];
    }

    void
    reset()
    {
        total_ = 0;
        byCause_ = {};
    }

  private:
    uint64_t total_ = 0;
    std::array<uint64_t, 3> byCause_{}; ///< indexed by WriteBackCause
};

/**
 * Lets the first @p k write-backs through, then suppresses every later
 * one: the durable image freezes exactly as if power failed right
 * before event index k. k = 0 freezes immediately; a k at or past the
 * run's event total never fires (equivalent to no crash).
 */
class CrashAtEvent final : public DurabilityHook
{
  public:
    explicit CrashAtEvent(uint64_t k) : k_(k) {}

    bool
    onWriteBack(Pool &, uint32_t, WriteBackCause) override
    {
        if (seen_ < k_) {
            ++seen_;
            return true;
        }
        fired_ = true;
        return false;
    }

    /** True once at least one write-back has been suppressed. */
    bool fired() const { return fired_; }

    /** Write-backs allowed through so far (<= k). */
    uint64_t seen() const { return seen_; }

  private:
    uint64_t k_;
    uint64_t seen_ = 0;
    bool fired_ = false;
};

} // namespace fault
} // namespace poat

#endif // POAT_FAULT_INJECTOR_H
