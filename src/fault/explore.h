/**
 * @file
 * Deterministic crash-point exploration.
 *
 * The explorer answers "does recovery work from EVERY possible crash
 * point of this workload?" by construction instead of by luck:
 *
 *  1. Profile pass: run the workload once with an EventCounter hook and
 *     count its durability events (64-byte line write-backs) — the
 *     complete set of instants at which a power failure could leave a
 *     distinct durable image.
 *  2. Exploration: for each chosen event index k, re-run the workload
 *     with a CrashAtEvent(k) hook (freeze semantics, see injector.h),
 *     simulate the power failure, recover, and check every invariant:
 *       - atomicity: the recovered state equals the volatile model
 *         after exactly s or s+1 completed steps, where s is the step
 *         the crash point landed in (per-workload verifiers, see
 *         workloads/crash_support.h);
 *       - undo-log legality: every log is structurally valid and idle
 *         after recovery (UndoLog::recover validates on entry);
 *       - allocator integrity: heap metadata validates, and no block
 *         is allocated yet unreachable (leak) for workloads that can
 *         enumerate reachability;
 *       - idempotence: recovering a second time changes nothing.
 *  3. In-recovery crashes (recursive, budgeted by `depth`): every
 *     durability event of a recovery is itself a crash point. A stack
 *     [j1, .., jd] crashes the workload at k, the first recovery at j1,
 *     the recovery of THAT crash at j2, and so on, then recovers fully
 *     and re-checks all invariants. depth = 0 disables in-recovery
 *     crashes; the historic one-level behaviour is depth = 1.
 *  4. Reorder states (opt-in, see fault/reorder.h): a probe pass groups
 *     the event stream into drain batches; each batch gets
 *     CrashWithDrain trials persisting proper subsets of the batch
 *     (exhaustive up to `drain_bound`, seeded-sampled beyond) plus
 *     torn-line states that persist only a prefix/suffix of one line's
 *     8-byte words. Under --strict the workload runs with the Strict
 *     durability policy so fences produce multi-line batches.
 *
 * Small runs explore exhaustively; large runs sample crash points with
 * a seeded generator. Every failure carries a self-contained reproducer
 * string
 * "workload:steps:seed:k[:j | :dJ1,J2,..][:rMASKS][:S][:tSEED]
 * [:nTHREADS][:mFAULT][:eNUM/DEN]" that replays the exact trial within
 * one build (hash-container iteration makes event order build-local, so
 * a reproducer is not portable across compilers or standard libraries).
 * The optional tokens carry the in-recovery crash stack (":j" is the
 * legacy one-level spelling of ":dJ"), the drain-subset word masks (hex,
 * two digits per batch event), the Strict policy flag, the scheduler
 * seed and engine workers, the media-fault index (see fault/media.h),
 * and the eviction schedule, so no out-of-band options are needed to
 * replay a sampled run.
 */
#ifndef POAT_FAULT_EXPLORE_H
#define POAT_FAULT_EXPLORE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"

namespace poat {
namespace fault {

/** What to explore and how hard. */
struct ExploreOptions
{
    /** Workload abbreviation (see workloads::crashWorkloadNames()). */
    std::string workload = "B+T";

    /** Steps (transactions) the workload runs. */
    uint64_t steps = 50;

    /** Workload seed; also seeds crash-point sampling. */
    uint64_t seed = 1;

    /**
     * Number of crash points to try; 0 explores every event index
     * exhaustively. Sampled points are drawn without replacement by a
     * generator seeded from `seed`.
     */
    uint64_t sample = 0;

    /** Worker threads for the trial fan-out; 0 = hardware concurrency. */
    unsigned jobs = 0;

    /** Also crash at every durability event during recovery. */
    bool in_recovery = true;

    /**
     * Cap on in-recovery crash points per outer crash point; 0 = all.
     * Sampled (seeded) when the cap is smaller than the event count.
     */
    uint64_t inner_cap = 0;

    /**
     * How many recovery levels may themselves crash (ignored when
     * in_recovery is false). 1 = the historic single level; 2 crashes
     * the recovery of the crashed recovery too. Each level multiplies
     * trials by its (inner_cap-capped) event count.
     */
    uint64_t depth = 2;

    /**
     * Also explore drain-subset and torn-line reorder states (see
     * fault/reorder.h). Reorder trials do not recurse into recovery —
     * their crash-state space is already a multiplier per batch.
     */
    bool reorder = false;

    /**
     * Exhaustive subset enumeration for batches of at most this many
     * events (2^n - 2 proper subsets); larger batches draw
     * `drain_sample` distinct subsets from a seeded generator.
     */
    uint64_t drain_bound = 6;
    uint64_t drain_sample = 32;

    /**
     * Run the workload under the Strict durability policy (CLWBs stage,
     * fences retire). This is what makes fence-drain batches bigger
     * than one line, so reorder exploration has real subsets to visit.
     */
    bool strict = false;

    /**
     * Run a random line eviction pass (cache pressure) over all pools
     * after every step, with the given per-line probability num/den.
     * num = 0 disables eviction.
     */
    uint64_t evict_num = 0;
    uint64_t evict_den = 8;

    /**
     * Engine workers for the concurrent workloads (LHT, MTPCC), whose
     * steps are rounds of one transaction per worker; 0 = the drivers'
     * default (2). Sequential workloads ignore it. Distinct from
     * `jobs`, which parallelizes trials on the host.
     */
    uint32_t threads = 0;

    /**
     * Deterministic-scheduler interleaving seed for the concurrent
     * workloads (the ":tSEED" reproducer token). Different values
     * explore different interleavings of the same transactions.
     */
    uint64_t sched_seed = 0;
};

/** One invariant violation, with enough context to replay it. */
struct Failure
{
    std::string workload;
    uint64_t steps = 0;
    uint64_t seed = 0;
    uint64_t k = 0; ///< outer crash point (event index)

    /**
     * In-recovery crash stack: stack[l] crashes recovery level l + 1 at
     * that event index. Empty for plain outer-crash trials. A
     * single-element stack round-trips through the legacy ":j" token;
     * deeper stacks use ":dJ1,J2,...".
     */
    std::vector<uint64_t> stack;

    /**
     * Drain-subset word masks (":rMASKS" token): lowercase hex, two
     * digits per batch event starting at k. Empty for prefix-freeze
     * trials. Mutually exclusive with a non-empty stack (reorder trials
     * do not recurse into recovery).
     */
    std::string drain;

    /** Producing run used the Strict durability policy (":S" token). */
    bool strict = false;

    /**
     * Media-fault spec ("17" or "17+42" for a double fault), empty for
     * pure crash trials. See fault/media.h for the index space.
     */
    std::string media;

    /**
     * Eviction schedule of the producing run; zero num means none. Part
     * of the reproducer (":eNUM/DEN" token) so sampled-eviction
     * failures replay without out-of-band options.
     */
    uint64_t evict_num = 0;
    uint64_t evict_den = 0;

    /**
     * Concurrency knobs of the producing run (":tSEED" and ":nTHREADS"
     * tokens, emitted for the concurrent workloads only so sequential
     * reproducers keep their historical shape).
     */
    uint64_t sched_seed = 0;
    uint32_t threads = 0;

    std::string why;

    /**
     * Concurrency diagnostics captured from the driver when the trial
     * failed (CrashDriver::diagnostics(): per-slot commit/abort and
     * lock counters); empty for sequential workloads. Reporting-only —
     * not part of the reproducer string.
     */
    std::string diag;

    /**
     * "workload:steps:seed:k[:j | :dJ1,J2,..][:rMASKS][:S][:tSEED]
     * [:nTHREADS][:mFAULT][:eNUM/DEN]" — feed to crash_explore
     * --repro. Self-contained: every input the trial consumed
     * (including the recovery-crash stack, the drain-subset masks, the
     * durability policy, the eviction RNG schedule, the scheduler
     * interleaving seed, and the media-fault index) is encoded in the
     * string.
     */
    std::string repro() const;
};

/** Outcome of an exploration. */
struct ExploreReport
{
    uint64_t total_events = 0;    ///< durability events in the profile pass
    uint64_t clwb_events = 0;     ///< ... caused by CLWB
    uint64_t fence_events = 0;    ///< ... caused by fences (Strict)
    uint64_t evict_events = 0;    ///< ... caused by forced eviction
    uint64_t trials = 0;          ///< outer crash trials run
    uint64_t recovery_trials = 0; ///< in-recovery crash trials run
    uint64_t crashes_injected = 0;
    uint64_t undo_entries_rolled_back = 0;
    uint64_t frees_redone = 0;
    uint64_t blocks_leaked = 0;
    uint64_t reorder_states = 0; ///< drain-subset + torn trials run
    uint64_t torn_states = 0;    ///< ... of which tore a line mid-write
    uint64_t max_depth = 0;      ///< deepest recovery-crash stack reached
    std::vector<Failure> failures;

    bool ok() const { return failures.empty(); }

    /** Publish the aggregate counters under "fault." in @p stats. */
    void publish(StatsRegistry &stats) const;
};

/**
 * Profile then explore per the options; deterministic for fixed
 * options within one build. Workload or driver errors (as opposed to
 * invariant violations) propagate as exceptions.
 */
ExploreReport explore(const ExploreOptions &opts);

/**
 * Re-run the single trial a Failure::repro() string describes. Fields
 * encoded in the string (workload, steps, seed, crash points, media
 * fault, eviction schedule) override @p base; anything not encoded is
 * taken from @p base. Media reproducers (":mFAULT" token) replay
 * through the media explorer's trial path.
 * @return the failure if it still reproduces, or an empty vector.
 * @throws std::invalid_argument on a malformed reproducer string.
 */
std::vector<Failure> replayRepro(const std::string &repro,
                                 const ExploreOptions &base = {});

} // namespace fault
} // namespace poat

#endif // POAT_FAULT_EXPLORE_H
