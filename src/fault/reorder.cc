#include "fault/reorder.h"

#include <set>
#include <stdexcept>

#include "common/rng.h"

namespace poat {
namespace fault {

bool
DrainProbe::onWriteBack(Pool &pool, uint32_t line, WriteBackCause cause)
{
    const uint64_t idx = total_++;
    if (cause == WriteBackCause::Fence && fenceLeft_ > 0 &&
        pool.id() == fencePool_) {
        // Continuation of the announced drain: append to its batch.
        DrainBatch &b = batches_.back();
        if (b.start + b.size() == idx && b.cause == WriteBackCause::Fence &&
            b.pool_id == pool.id()) {
            b.lines.push_back(line);
            --fenceLeft_;
            return true;
        }
    }
    fenceLeft_ = 0;
    DrainBatch b;
    b.start = idx;
    b.lines.push_back(line);
    b.pool_id = pool.id();
    b.cause = cause;
    batches_.push_back(std::move(b));
    return true;
}

void
DrainProbe::onFenceDrainBegin(Pool &pool,
                              const std::vector<uint32_t> &pending)
{
    fencePool_ = pool.id();
    fenceLeft_ = pending.size();
    // Open the batch lazily at the first drain write-back so `start`
    // lands on a real event index; announce only arms the grouping.
    if (!pending.empty()) {
        DrainBatch b;
        b.start = total_;
        b.pool_id = pool.id();
        b.cause = WriteBackCause::Fence;
        batches_.push_back(std::move(b));
        // The batch is empty until onWriteBack appends; pop it again if
        // nothing arrives (cannot happen: fence() writes every pending
        // line), guarded in onWriteBack by the start/size check.
        batches_.back().lines.clear();
    }
}

const std::vector<uint8_t> &
tornWordMasks()
{
    static const std::vector<uint8_t> masks = [] {
        std::vector<uint8_t> m;
        for (uint32_t w = 1; w < 8; ++w)
            m.push_back(static_cast<uint8_t>((1u << w) - 1)); // prefix
        for (uint32_t w = 1; w < 8; ++w)
            m.push_back(static_cast<uint8_t>(0xffu << (8 - w))); // suffix
        return m;
    }();
    return masks;
}

std::vector<DrainPlan>
planDrainStates(const DrainBatch &batch, uint64_t bound, uint64_t sample,
                uint64_t seed)
{
    const uint64_t n = batch.size();
    std::vector<DrainPlan> plans;

    auto subsetPlan = [&](const std::vector<bool> &in) {
        DrainPlan p;
        p.start = batch.start;
        p.masks.resize(n, 0);
        for (uint64_t i = 0; i < n; ++i)
            p.masks[i] = in[i] ? DurabilityHook::kFullLineMask : 0;
        return p;
    };

    if (n >= 2) {
        if (n <= bound && n < 64) {
            // Exhaustive: every proper, non-empty subset. Empty equals
            // the prefix trial at `start`, full the one at `start + n`.
            for (uint64_t bits = 1; bits + 1 < (1ull << n); ++bits) {
                std::vector<bool> in(n);
                for (uint64_t i = 0; i < n; ++i)
                    in[i] = (bits >> i) & 1;
                plans.push_back(subsetPlan(in));
            }
        } else {
            // Seeded sample of distinct proper subsets.
            Rng rng(seed);
            std::set<std::vector<bool>> chosen;
            // 2^n - 2 >= 2 here, so `sample` distinct subsets exist
            // whenever sample <= 2^n - 2; cap draws to stay bounded.
            uint64_t attempts = 0;
            while (chosen.size() < sample && attempts < sample * 16) {
                ++attempts;
                std::vector<bool> in(n);
                bool any = false, all = true;
                for (uint64_t i = 0; i < n; ++i) {
                    in[i] = rng.below(2) != 0;
                    any = any || in[i];
                    all = all && in[i];
                }
                if (!any || all)
                    continue;
                if (chosen.insert(in).second)
                    plans.push_back(subsetPlan(std::move(in)));
            }
        }
    }

    // Torn states: the drain stops mid-line at position i — everything
    // the drain wrote before i is durable, line i persists a proper
    // prefix/suffix of its words, everything later is lost.
    for (uint64_t i = 0; i < n; ++i) {
        for (uint8_t m : tornWordMasks()) {
            DrainPlan p;
            p.start = batch.start;
            p.masks.assign(i + 1, DurabilityHook::kFullLineMask);
            p.masks[i] = m;
            p.torn = true;
            plans.push_back(std::move(p));
        }
    }
    return plans;
}

std::string
encodeDrainMasks(const std::vector<uint8_t> &masks)
{
    static const char *digits = "0123456789abcdef";
    std::string s;
    s.reserve(masks.size() * 2);
    for (uint8_t m : masks) {
        s += digits[m >> 4];
        s += digits[m & 0xf];
    }
    return s;
}

std::vector<uint8_t>
decodeDrainMasks(const std::string &hex)
{
    auto bad = [&]() {
        return std::invalid_argument("bad drain-mask spec '" + hex +
                                     "' (expected a non-empty even-length "
                                     "hex string, two digits per event)");
    };
    if (hex.empty() || hex.size() % 2 != 0)
        throw bad();
    auto nibble = [&](char c) -> uint32_t {
        if (c >= '0' && c <= '9')
            return static_cast<uint32_t>(c - '0');
        if (c >= 'a' && c <= 'f')
            return static_cast<uint32_t>(c - 'a' + 10);
        if (c >= 'A' && c <= 'F')
            return static_cast<uint32_t>(c - 'A' + 10);
        throw bad();
    };
    std::vector<uint8_t> masks(hex.size() / 2);
    for (size_t i = 0; i < masks.size(); ++i) {
        masks[i] = static_cast<uint8_t>((nibble(hex[2 * i]) << 4) |
                                        nibble(hex[2 * i + 1]));
    }
    return masks;
}

} // namespace fault
} // namespace poat
