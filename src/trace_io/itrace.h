/**
 * @file
 * Instruction-trace capture & replay: the "poat-itrace" format (v5).
 *
 * The simulator is execution-driven: workloads run natively and report
 * every dynamic instruction to a TraceSink (pmem/trace.h). A machine-
 * config sweep therefore re-executes identical functional work once per
 * design point. This subsystem is the classic Pin-front-end split the
 * paper itself relied on (Sniper driven by Pin traces): TraceRecorder
 * captures the stream once into a compact varint-encoded file, and
 * TraceReplayer streams that file back into any TraceSink — replaying
 * into a sim::Machine produces bit-identical MachineMetrics and stats
 * to the live run, so only the first run of a functional configuration
 * pays for native execution.
 *
 * File layout (all integers little-endian):
 *
 *   offset 0   magic "poatitrc" (8 bytes)
 *          8   u32 format version (5)
 *         12   u32 fingerprint length
 *         16   u64 event count      (patched by finish())
 *         24   u64 record bytes     (patched by finish())
 *         32   u64 record hash      (FNV-1a over the record region)
 *         40   fingerprint bytes    (canonical functional-config string)
 *          .   records: one kind byte + varint operands per event
 *          .   u32 profile length + profile bytes (opaque sidecar blob
 *              the driver uses for the run's functional profile)
 *
 * Value tags are canonicalized: the workload-visible tag of the n-th
 * load-like event (load/nvLoad) is its 1-based sequence number, and dep
 * operands are stored as those sequence numbers, so a trace is
 * position-independent of whatever tags the inner sink hands out. The
 * recorder translates sequence numbers back to inner-sink tags when
 * forwarding, so a captured run drives its machine with exactly the
 * values a direct run would; the replayer does the same for its sink.
 *
 * Every malformed input — bad magic, wrong version, truncation, record
 * corruption, a dep referencing a load that never happened — raises
 * std::runtime_error with a message naming the file and the problem.
 */
#ifndef POAT_TRACE_IO_ITRACE_H
#define POAT_TRACE_IO_ITRACE_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "pmem/trace.h"

namespace poat {
namespace trace_io {

/** File magic, first 8 bytes of every poat-itrace file. */
inline constexpr char kMagic[8] = {'p', 'o', 'a', 't', 'i', 't', 'r', 'c'};

/**
 * Format version this build reads and writes. v2 added the
 * SwTranslateBegin/SwTranslateEnd region markers (CPI-stack
 * attribution); v3 added the transaction-span records
 * (TxBegin/TxCommit/TxAbort/OpName) feeding the tx.* stats subtree;
 * v4 added the CoreSwitch scheduling record (deterministic multi-core
 * interleaving); v5 added the concurrency-observability records
 * (lock waits/grants/releases/deadlocks, worker lifecycle, commit
 * windows, op switches) feeding the lock.* / sched.* / cp.* stats.
 * Older files fail matches() and are silently recaptured.
 */
inline constexpr uint32_t kFormatVersion = 5;

/** Bytes before the fingerprint (magic + version + 3 patched fields). */
inline constexpr size_t kHeaderSize = 40;

/** Record kinds, one per TraceSink event. */
enum class EventKind : uint8_t
{
    Alu = 1,      ///< count, dep
    Branch,       ///< taken, pc, dep
    Load,         ///< vaddr, dep, dep2 (assigns the next sequence number)
    Store,        ///< vaddr, dep
    NvLoad,       ///< oid, dep, dep2 (assigns the next sequence number)
    NvStore,      ///< oid, dep
    Clwb,         ///< vaddr
    NvClwb,       ///< oid
    Fence,        ///< (no operands)
    PoolMapped,   ///< pool_id, vbase, size
    PoolUnmapped, ///< pool_id
    SwTranslateBegin, ///< (no operands; v2)
    SwTranslateEnd,   ///< (no operands; v2)
    TxBegin,          ///< pool_id, op (v3)
    TxCommit,         ///< pool_id (v3)
    TxAbort,          ///< pool_id (v3)
    OpName,           ///< op, name length, raw name bytes (v3)
    CoreSwitch,       ///< core (v4)
    LockWait,         ///< worker, key, mode, edges (v5)
    LockAcquired,     ///< worker, key, mode (v5)
    LockReleased,     ///< worker, key (v5)
    LockDeadlock,     ///< worker, key (v5)
    OpSet,            ///< op (v5)
    WorkerDone,       ///< worker (v5)
    CommitJoin,       ///< worker (v5)
    CommitBatch,      ///< members, elided (v5)
};

inline constexpr uint8_t kMinEventKind = 1;
inline constexpr uint8_t kMaxEventKind = 26;

/** Human-readable name of a record kind ("?" if out of range). */
const char *eventKindName(uint8_t kind);

/** Append @p v LEB128-encoded to @p buf. */
void appendVarint(std::vector<uint8_t> &buf, uint64_t v);

/**
 * Decode one LEB128 varint from @p data at @p *pos, advancing @p *pos.
 * @throws std::runtime_error on truncation or a >64-bit encoding.
 */
uint64_t readVarint(const uint8_t *data, size_t size, size_t *pos);

/**
 * TraceSink that forwards every event to an inner sink while appending
 * its record to a poat-itrace file.
 *
 * The file is written to a unique temporary name next to @p path and
 * atomically renamed into place by finish(), so readers never observe
 * a partial trace; destroying an unfinished recorder discards the
 * temporary. The recorder is transparent to the machine it wraps: the
 * inner sink sees exactly the calls (tags included) a direct run would
 * make, so a capture run's metrics equal an uncaptured run's.
 */
class TraceRecorder : public TraceSink
{
  public:
    /**
     * @param inner       Sink every event is forwarded to (not owned;
     *                    may be null to record without simulating).
     * @param path        Final path of the trace file.
     * @param fingerprint Canonical functional-config string stored in
     *                    the header (driver::traceFingerprint).
     * @throws std::runtime_error if the temporary file cannot be
     *         created.
     */
    TraceRecorder(TraceSink *inner, std::string path,
                  std::string fingerprint);
    ~TraceRecorder() override;

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /** Attach the opaque sidecar blob stored after the records. */
    void setProfile(std::string profile) { profile_ = std::move(profile); }

    /**
     * Flush, patch the header, and atomically publish the file at the
     * final path. @throws std::runtime_error on any I/O failure.
     */
    void finish();

    /** Discard the temporary file without publishing (idempotent). */
    void abandon() noexcept;

    /** Events recorded so far. */
    uint64_t eventCount() const { return events_; }

    /// @name TraceSink interface
    /// @{
    void alu(uint32_t count, uint64_t dep) override;
    void branch(bool taken, uint64_t pc, uint64_t dep) override;
    uint64_t load(uint64_t vaddr, uint64_t dep, uint64_t dep2) override;
    void store(uint64_t vaddr, uint64_t dep) override;
    uint64_t nvLoad(ObjectID oid, uint64_t dep, uint64_t dep2) override;
    void nvStore(ObjectID oid, uint64_t dep) override;
    void clwb(uint64_t vaddr) override;
    void nvClwb(ObjectID oid) override;
    void fence() override;
    void poolMapped(uint32_t pool_id, uint64_t vbase,
                    uint64_t size) override;
    void poolUnmapped(uint32_t pool_id) override;
    void swTranslateBegin() override;
    void swTranslateEnd() override;
    void txBegin(uint32_t pool_id, uint32_t op) override;
    void txCommit(uint32_t pool_id) override;
    void txAbort(uint32_t pool_id) override;
    void opName(uint32_t op, const char *name) override;
    void coreSwitch(uint32_t core) override;
    void opSet(uint32_t op) override;
    void lockWait(uint32_t worker, uint64_t key, uint8_t mode,
                  uint32_t edges) override;
    void lockAcquired(uint32_t worker, uint64_t key, uint8_t mode) override;
    void lockReleased(uint32_t worker, uint64_t key) override;
    void lockDeadlock(uint32_t worker, uint64_t key) override;
    void workerDone(uint32_t worker) override;
    void commitJoin(uint32_t worker) override;
    void commitBatch(uint32_t members, uint32_t elided) override;
    /// @}

  private:
    /** Bound a caller-supplied dep to a sequence number we handed out. */
    uint64_t clampSeq(uint64_t seq) const
    {
        return seq < seqToTag_.size() ? seq : kNoDep;
    }

    /** Inner-sink tag for canonical sequence number @p seq. */
    uint64_t innerDep(uint64_t seq) const { return seqToTag_[seq]; }

    void begin(EventKind kind);
    void put(uint64_t v) { appendVarint(buf_, v); }
    void flushBuf();

    TraceSink *inner_;
    std::string path_;
    std::string tmpPath_;
    std::string fingerprint_;
    std::string profile_;
    std::FILE *f_ = nullptr;
    std::vector<uint8_t> buf_;
    std::vector<uint64_t> seqToTag_; ///< canonical seq -> inner tag
    uint64_t events_ = 0;
    uint64_t recordBytes_ = 0;
    uint64_t hash_;
    bool finished_ = false;
};

/** Reader of a poat-itrace file. */
class TraceReplayer
{
  public:
    /**
     * Read and validate @p path: magic, version, region bounds, and
     * the record hash. @throws std::runtime_error naming the file and
     * the defect on any mismatch.
     */
    explicit TraceReplayer(const std::string &path);

    /** The header's canonical functional-config string. */
    const std::string &fingerprint() const { return fingerprint_; }

    /** The opaque sidecar blob (empty if none was stored). */
    const std::string &profile() const { return profile_; }

    /** Events in the record region. */
    uint64_t eventCount() const { return eventCount_; }

    /**
     * Stream every record into @p sink, translating canonical dep
     * sequence numbers to the tags @p sink returns. Safe to call more
     * than once (each replay starts a fresh tag mapping).
     * @throws std::runtime_error on a corrupt record.
     */
    void replayInto(TraceSink &sink) const;

    /**
     * True iff @p path exists, is a structurally sound poat-itrace
     * file of this build's format version, and carries exactly
     * @p fingerprint. Never throws: any
     * defect reads as "no usable cached trace". (The record hash is
     * not checked here — construction does that.)
     */
    static bool matches(const std::string &path,
                        const std::string &fingerprint) noexcept;

  private:
    std::string path_;
    std::string fingerprint_;
    std::string profile_;
    std::vector<uint8_t> records_;
    uint64_t eventCount_ = 0;
};

} // namespace trace_io
} // namespace poat

#endif // POAT_TRACE_IO_ITRACE_H
