#include "trace_io/itrace.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace poat {
namespace trace_io {

namespace {

/** Soft cap on the recorder's in-memory buffer before an fwrite. */
constexpr size_t kFlushThreshold = 1u << 20;

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t
fnv1a(uint64_t hash, const uint8_t *data, size_t size)
{
    for (size_t i = 0; i < size; ++i) {
        hash ^= data[i];
        hash *= kFnvPrime;
    }
    return hash;
}

void
putLe32(uint8_t *out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<uint8_t>(v >> (8 * i));
}

void
putLe64(uint8_t *out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t
getLe32(const uint8_t *in)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(in[i]) << (8 * i);
    return v;
}

uint64_t
getLe64(const uint8_t *in)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(in[i]) << (8 * i);
    return v;
}

[[noreturn]] void
badFile(const std::string &path, const std::string &why)
{
    throw std::runtime_error("poat-itrace: " + path + ": " + why);
}

} // namespace

const char *
eventKindName(uint8_t kind)
{
    switch (static_cast<EventKind>(kind)) {
      case EventKind::Alu:
        return "alu";
      case EventKind::Branch:
        return "branch";
      case EventKind::Load:
        return "load";
      case EventKind::Store:
        return "store";
      case EventKind::NvLoad:
        return "nvLoad";
      case EventKind::NvStore:
        return "nvStore";
      case EventKind::Clwb:
        return "clwb";
      case EventKind::NvClwb:
        return "nvClwb";
      case EventKind::Fence:
        return "fence";
      case EventKind::PoolMapped:
        return "poolMapped";
      case EventKind::PoolUnmapped:
        return "poolUnmapped";
      case EventKind::SwTranslateBegin:
        return "swTranslateBegin";
      case EventKind::SwTranslateEnd:
        return "swTranslateEnd";
      case EventKind::TxBegin:
        return "txBegin";
      case EventKind::TxCommit:
        return "txCommit";
      case EventKind::TxAbort:
        return "txAbort";
      case EventKind::OpName:
        return "opName";
      case EventKind::CoreSwitch:
        return "coreSwitch";
      case EventKind::LockWait:
        return "lockWait";
      case EventKind::LockAcquired:
        return "lockAcquired";
      case EventKind::LockReleased:
        return "lockReleased";
      case EventKind::LockDeadlock:
        return "lockDeadlock";
      case EventKind::OpSet:
        return "opSet";
      case EventKind::WorkerDone:
        return "workerDone";
      case EventKind::CommitJoin:
        return "commitJoin";
      case EventKind::CommitBatch:
        return "commitBatch";
    }
    return "?";
}

void
appendVarint(std::vector<uint8_t> &buf, uint64_t v)
{
    while (v >= 0x80) {
        buf.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    buf.push_back(static_cast<uint8_t>(v));
}

uint64_t
readVarint(const uint8_t *data, size_t size, size_t *pos)
{
    uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        if (*pos >= size)
            throw std::runtime_error(
                "poat-itrace: truncated varint in record region");
        const uint8_t byte = data[(*pos)++];
        v |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return v;
    }
    throw std::runtime_error("poat-itrace: varint exceeds 64 bits");
}

// --------------------------------------------------------------------
// TraceRecorder

TraceRecorder::TraceRecorder(TraceSink *inner, std::string path,
                             std::string fingerprint)
    : inner_(inner), path_(std::move(path)),
      fingerprint_(std::move(fingerprint)), hash_(kFnvOffset)
{
    // Unique temporary within the process and across processes sharing
    // a cache directory; the atomic rename in finish() publishes it.
    static std::atomic<uint64_t> counter{0};
    tmpPath_ = path_ + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(counter.fetch_add(1));

    f_ = std::fopen(tmpPath_.c_str(), "wb");
    if (!f_)
        badFile(tmpPath_, "cannot create temporary trace file");

    uint8_t header[kHeaderSize] = {};
    std::memcpy(header, kMagic, sizeof(kMagic));
    putLe32(header + 8, kFormatVersion);
    putLe32(header + 12, static_cast<uint32_t>(fingerprint_.size()));
    // Event count, record bytes, and record hash are patched by
    // finish(); leave zeros.
    if (std::fwrite(header, 1, kHeaderSize, f_) != kHeaderSize ||
        std::fwrite(fingerprint_.data(), 1, fingerprint_.size(), f_) !=
            fingerprint_.size()) {
        abandon();
        badFile(tmpPath_, "cannot write trace header");
    }

    buf_.reserve(kFlushThreshold + 64);
    seqToTag_.push_back(kNoDep); // sequence number 0 = "no producer"
}

TraceRecorder::~TraceRecorder()
{
    abandon();
}

void
TraceRecorder::flushBuf()
{
    if (buf_.empty() || !f_)
        return;
    hash_ = fnv1a(hash_, buf_.data(), buf_.size());
    recordBytes_ += buf_.size();
    if (std::fwrite(buf_.data(), 1, buf_.size(), f_) != buf_.size()) {
        abandon();
        badFile(tmpPath_, "short write while recording");
    }
    buf_.clear();
}

void
TraceRecorder::begin(EventKind kind)
{
    if (buf_.size() >= kFlushThreshold)
        flushBuf();
    buf_.push_back(static_cast<uint8_t>(kind));
    ++events_;
}

void
TraceRecorder::finish()
{
    if (finished_)
        return;
    if (!f_)
        badFile(tmpPath_, "recorder already abandoned");
    flushBuf();

    uint8_t len[4];
    putLe32(len, static_cast<uint32_t>(profile_.size()));
    uint8_t patch[24];
    putLe64(patch + 0, events_);
    putLe64(patch + 8, recordBytes_);
    putLe64(patch + 16, hash_);
    const bool ok =
        std::fwrite(len, 1, sizeof(len), f_) == sizeof(len) &&
        std::fwrite(profile_.data(), 1, profile_.size(), f_) ==
            profile_.size() &&
        std::fseek(f_, 16, SEEK_SET) == 0 &&
        std::fwrite(patch, 1, sizeof(patch), f_) == sizeof(patch) &&
        std::fclose(f_) == 0;
    f_ = nullptr;
    if (!ok) {
        abandon();
        badFile(tmpPath_, "cannot finalize trace file");
    }
    if (std::rename(tmpPath_.c_str(), path_.c_str()) != 0) {
        abandon();
        badFile(path_, "cannot publish trace file");
    }
    finished_ = true;
}

void
TraceRecorder::abandon() noexcept
{
    if (f_) {
        std::fclose(f_);
        f_ = nullptr;
    }
    if (!finished_ && !tmpPath_.empty())
        std::remove(tmpPath_.c_str());
}

void
TraceRecorder::alu(uint32_t count, uint64_t dep)
{
    dep = clampSeq(dep);
    begin(EventKind::Alu);
    put(count);
    put(dep);
    if (inner_)
        inner_->alu(count, innerDep(dep));
}

void
TraceRecorder::branch(bool taken, uint64_t pc, uint64_t dep)
{
    dep = clampSeq(dep);
    begin(EventKind::Branch);
    put(taken ? 1 : 0);
    put(pc);
    put(dep);
    if (inner_)
        inner_->branch(taken, pc, innerDep(dep));
}

uint64_t
TraceRecorder::load(uint64_t vaddr, uint64_t dep, uint64_t dep2)
{
    dep = clampSeq(dep);
    dep2 = clampSeq(dep2);
    begin(EventKind::Load);
    put(vaddr);
    put(dep);
    put(dep2);
    const uint64_t tag =
        inner_ ? inner_->load(vaddr, innerDep(dep), innerDep(dep2)) : 0;
    seqToTag_.push_back(tag);
    return seqToTag_.size() - 1;
}

void
TraceRecorder::store(uint64_t vaddr, uint64_t dep)
{
    dep = clampSeq(dep);
    begin(EventKind::Store);
    put(vaddr);
    put(dep);
    if (inner_)
        inner_->store(vaddr, innerDep(dep));
}

uint64_t
TraceRecorder::nvLoad(ObjectID oid, uint64_t dep, uint64_t dep2)
{
    dep = clampSeq(dep);
    dep2 = clampSeq(dep2);
    begin(EventKind::NvLoad);
    put(oid.raw);
    put(dep);
    put(dep2);
    const uint64_t tag =
        inner_ ? inner_->nvLoad(oid, innerDep(dep), innerDep(dep2)) : 0;
    seqToTag_.push_back(tag);
    return seqToTag_.size() - 1;
}

void
TraceRecorder::nvStore(ObjectID oid, uint64_t dep)
{
    dep = clampSeq(dep);
    begin(EventKind::NvStore);
    put(oid.raw);
    put(dep);
    if (inner_)
        inner_->nvStore(oid, innerDep(dep));
}

void
TraceRecorder::clwb(uint64_t vaddr)
{
    begin(EventKind::Clwb);
    put(vaddr);
    if (inner_)
        inner_->clwb(vaddr);
}

void
TraceRecorder::nvClwb(ObjectID oid)
{
    begin(EventKind::NvClwb);
    put(oid.raw);
    if (inner_)
        inner_->nvClwb(oid);
}

void
TraceRecorder::fence()
{
    begin(EventKind::Fence);
    if (inner_)
        inner_->fence();
}

void
TraceRecorder::poolMapped(uint32_t pool_id, uint64_t vbase, uint64_t size)
{
    begin(EventKind::PoolMapped);
    put(pool_id);
    put(vbase);
    put(size);
    if (inner_)
        inner_->poolMapped(pool_id, vbase, size);
}

void
TraceRecorder::poolUnmapped(uint32_t pool_id)
{
    begin(EventKind::PoolUnmapped);
    put(pool_id);
    if (inner_)
        inner_->poolUnmapped(pool_id);
}

void
TraceRecorder::swTranslateBegin()
{
    begin(EventKind::SwTranslateBegin);
    if (inner_)
        inner_->swTranslateBegin();
}

void
TraceRecorder::swTranslateEnd()
{
    begin(EventKind::SwTranslateEnd);
    if (inner_)
        inner_->swTranslateEnd();
}

void
TraceRecorder::txBegin(uint32_t pool_id, uint32_t op)
{
    begin(EventKind::TxBegin);
    put(pool_id);
    put(op);
    if (inner_)
        inner_->txBegin(pool_id, op);
}

void
TraceRecorder::txCommit(uint32_t pool_id)
{
    begin(EventKind::TxCommit);
    put(pool_id);
    if (inner_)
        inner_->txCommit(pool_id);
}

void
TraceRecorder::txAbort(uint32_t pool_id)
{
    begin(EventKind::TxAbort);
    put(pool_id);
    if (inner_)
        inner_->txAbort(pool_id);
}

void
TraceRecorder::coreSwitch(uint32_t core)
{
    begin(EventKind::CoreSwitch);
    put(core);
    if (inner_)
        inner_->coreSwitch(core);
}

void
TraceRecorder::opSet(uint32_t op)
{
    begin(EventKind::OpSet);
    put(op);
    if (inner_)
        inner_->opSet(op);
}

void
TraceRecorder::lockWait(uint32_t worker, uint64_t key, uint8_t mode,
                        uint32_t edges)
{
    begin(EventKind::LockWait);
    put(worker);
    put(key);
    put(mode);
    put(edges);
    if (inner_)
        inner_->lockWait(worker, key, mode, edges);
}

void
TraceRecorder::lockAcquired(uint32_t worker, uint64_t key, uint8_t mode)
{
    begin(EventKind::LockAcquired);
    put(worker);
    put(key);
    put(mode);
    if (inner_)
        inner_->lockAcquired(worker, key, mode);
}

void
TraceRecorder::lockReleased(uint32_t worker, uint64_t key)
{
    begin(EventKind::LockReleased);
    put(worker);
    put(key);
    if (inner_)
        inner_->lockReleased(worker, key);
}

void
TraceRecorder::lockDeadlock(uint32_t worker, uint64_t key)
{
    begin(EventKind::LockDeadlock);
    put(worker);
    put(key);
    if (inner_)
        inner_->lockDeadlock(worker, key);
}

void
TraceRecorder::workerDone(uint32_t worker)
{
    begin(EventKind::WorkerDone);
    put(worker);
    if (inner_)
        inner_->workerDone(worker);
}

void
TraceRecorder::commitJoin(uint32_t worker)
{
    begin(EventKind::CommitJoin);
    put(worker);
    if (inner_)
        inner_->commitJoin(worker);
}

void
TraceRecorder::commitBatch(uint32_t members, uint32_t elided)
{
    begin(EventKind::CommitBatch);
    put(members);
    put(elided);
    if (inner_)
        inner_->commitBatch(members, elided);
}

void
TraceRecorder::opName(uint32_t op, const char *name)
{
    const size_t len = std::strlen(name);
    begin(EventKind::OpName);
    put(op);
    put(len);
    buf_.insert(buf_.end(), name, name + len);
    if (inner_)
        inner_->opName(op, name);
}

// --------------------------------------------------------------------
// TraceReplayer

TraceReplayer::TraceReplayer(const std::string &path) : path_(path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        badFile(path, "cannot open trace file");
    std::fseek(f, 0, SEEK_END);
    const long end = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> file(end > 0 ? static_cast<size_t>(end) : 0);
    const size_t got = file.empty()
        ? 0
        : std::fread(file.data(), 1, file.size(), f);
    std::fclose(f);
    if (got != file.size())
        badFile(path, "cannot read trace file");

    if (file.size() < kHeaderSize)
        badFile(path, "truncated header");
    if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0)
        badFile(path, "not a poat-itrace file (bad magic)");
    const uint32_t version = getLe32(file.data() + 8);
    if (version != kFormatVersion)
        badFile(path,
                "unsupported format version " + std::to_string(version) +
                    " (this build reads version " +
                    std::to_string(kFormatVersion) + ")");
    const uint32_t fpr_len = getLe32(file.data() + 12);
    eventCount_ = getLe64(file.data() + 16);
    const uint64_t record_bytes = getLe64(file.data() + 24);
    const uint64_t record_hash = getLe64(file.data() + 32);

    const size_t records_at = kHeaderSize + fpr_len;
    if (records_at > file.size() ||
        record_bytes > file.size() - records_at)
        badFile(path, "truncated record region");
    fingerprint_.assign(
        reinterpret_cast<const char *>(file.data() + kHeaderSize),
        fpr_len);

    const size_t trailer_at = records_at + static_cast<size_t>(record_bytes);
    if (file.size() - trailer_at < 4)
        badFile(path, "missing profile trailer");
    const uint32_t prof_len = getLe32(file.data() + trailer_at);
    if (file.size() - trailer_at - 4 != prof_len)
        badFile(path, "trailing garbage after profile");
    profile_.assign(
        reinterpret_cast<const char *>(file.data() + trailer_at + 4),
        prof_len);

    records_.assign(file.begin() + records_at,
                    file.begin() + trailer_at);
    if (fnv1a(kFnvOffset, records_.data(), records_.size()) !=
        record_hash)
        badFile(path, "record region corrupt (hash mismatch)");
}

void
TraceReplayer::replayInto(TraceSink &sink) const
{
    const uint8_t *d = records_.data();
    const size_t n = records_.size();
    size_t pos = 0;
    uint64_t events = 0;

    std::vector<uint64_t> tags;
    tags.reserve(1024);
    tags.push_back(kNoDep); // sequence number 0 = "no producer"
    auto dep = [&](uint64_t seq) -> uint64_t {
        if (seq >= tags.size())
            badFile(path_, "dep references a load that never happened");
        return tags[seq];
    };

    while (pos < n) {
        const uint8_t kind = d[pos++];
        switch (static_cast<EventKind>(kind)) {
          case EventKind::Alu: {
            const uint64_t count = readVarint(d, n, &pos);
            const uint64_t dp = readVarint(d, n, &pos);
            sink.alu(static_cast<uint32_t>(count), dep(dp));
            break;
          }
          case EventKind::Branch: {
            const uint64_t taken = readVarint(d, n, &pos);
            const uint64_t pc = readVarint(d, n, &pos);
            const uint64_t dp = readVarint(d, n, &pos);
            sink.branch(taken != 0, pc, dep(dp));
            break;
          }
          case EventKind::Load: {
            const uint64_t vaddr = readVarint(d, n, &pos);
            const uint64_t d1 = readVarint(d, n, &pos);
            const uint64_t d2 = readVarint(d, n, &pos);
            tags.push_back(sink.load(vaddr, dep(d1), dep(d2)));
            break;
          }
          case EventKind::Store: {
            const uint64_t vaddr = readVarint(d, n, &pos);
            const uint64_t dp = readVarint(d, n, &pos);
            sink.store(vaddr, dep(dp));
            break;
          }
          case EventKind::NvLoad: {
            const uint64_t oid = readVarint(d, n, &pos);
            const uint64_t d1 = readVarint(d, n, &pos);
            const uint64_t d2 = readVarint(d, n, &pos);
            tags.push_back(
                sink.nvLoad(ObjectID(oid), dep(d1), dep(d2)));
            break;
          }
          case EventKind::NvStore: {
            const uint64_t oid = readVarint(d, n, &pos);
            const uint64_t dp = readVarint(d, n, &pos);
            sink.nvStore(ObjectID(oid), dep(dp));
            break;
          }
          case EventKind::Clwb:
            sink.clwb(readVarint(d, n, &pos));
            break;
          case EventKind::NvClwb:
            sink.nvClwb(ObjectID(readVarint(d, n, &pos)));
            break;
          case EventKind::Fence:
            sink.fence();
            break;
          case EventKind::PoolMapped: {
            const uint64_t pool = readVarint(d, n, &pos);
            const uint64_t vbase = readVarint(d, n, &pos);
            const uint64_t size = readVarint(d, n, &pos);
            sink.poolMapped(static_cast<uint32_t>(pool), vbase, size);
            break;
          }
          case EventKind::PoolUnmapped:
            sink.poolUnmapped(
                static_cast<uint32_t>(readVarint(d, n, &pos)));
            break;
          case EventKind::SwTranslateBegin:
            sink.swTranslateBegin();
            break;
          case EventKind::SwTranslateEnd:
            sink.swTranslateEnd();
            break;
          case EventKind::TxBegin: {
            const uint64_t pool = readVarint(d, n, &pos);
            const uint64_t op = readVarint(d, n, &pos);
            sink.txBegin(static_cast<uint32_t>(pool),
                         static_cast<uint32_t>(op));
            break;
          }
          case EventKind::TxCommit:
            sink.txCommit(static_cast<uint32_t>(readVarint(d, n, &pos)));
            break;
          case EventKind::TxAbort:
            sink.txAbort(static_cast<uint32_t>(readVarint(d, n, &pos)));
            break;
          case EventKind::CoreSwitch:
            sink.coreSwitch(
                static_cast<uint32_t>(readVarint(d, n, &pos)));
            break;
          case EventKind::OpSet:
            sink.opSet(static_cast<uint32_t>(readVarint(d, n, &pos)));
            break;
          case EventKind::LockWait: {
            const uint64_t worker = readVarint(d, n, &pos);
            const uint64_t key = readVarint(d, n, &pos);
            const uint64_t mode = readVarint(d, n, &pos);
            const uint64_t edges = readVarint(d, n, &pos);
            sink.lockWait(static_cast<uint32_t>(worker), key,
                          static_cast<uint8_t>(mode),
                          static_cast<uint32_t>(edges));
            break;
          }
          case EventKind::LockAcquired: {
            const uint64_t worker = readVarint(d, n, &pos);
            const uint64_t key = readVarint(d, n, &pos);
            const uint64_t mode = readVarint(d, n, &pos);
            sink.lockAcquired(static_cast<uint32_t>(worker), key,
                              static_cast<uint8_t>(mode));
            break;
          }
          case EventKind::LockReleased: {
            const uint64_t worker = readVarint(d, n, &pos);
            const uint64_t key = readVarint(d, n, &pos);
            sink.lockReleased(static_cast<uint32_t>(worker), key);
            break;
          }
          case EventKind::LockDeadlock: {
            const uint64_t worker = readVarint(d, n, &pos);
            const uint64_t key = readVarint(d, n, &pos);
            sink.lockDeadlock(static_cast<uint32_t>(worker), key);
            break;
          }
          case EventKind::WorkerDone:
            sink.workerDone(
                static_cast<uint32_t>(readVarint(d, n, &pos)));
            break;
          case EventKind::CommitJoin:
            sink.commitJoin(
                static_cast<uint32_t>(readVarint(d, n, &pos)));
            break;
          case EventKind::CommitBatch: {
            const uint64_t members = readVarint(d, n, &pos);
            const uint64_t elided = readVarint(d, n, &pos);
            sink.commitBatch(static_cast<uint32_t>(members),
                             static_cast<uint32_t>(elided));
            break;
          }
          case EventKind::OpName: {
            const uint64_t op = readVarint(d, n, &pos);
            const uint64_t len = readVarint(d, n, &pos);
            if (len > n - pos)
                badFile(path_, "truncated opName record");
            std::string name(reinterpret_cast<const char *>(d + pos),
                             static_cast<size_t>(len));
            pos += static_cast<size_t>(len);
            sink.opName(static_cast<uint32_t>(op), name.c_str());
            break;
          }
          default:
            badFile(path_,
                    "unknown record kind " + std::to_string(kind) +
                        " at offset " + std::to_string(pos - 1));
        }
        ++events;
    }
    if (events != eventCount_)
        badFile(path_,
                "event count mismatch: header says " +
                    std::to_string(eventCount_) + ", decoded " +
                    std::to_string(events));
}

bool
TraceReplayer::matches(const std::string &path,
                       const std::string &fingerprint) noexcept
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    uint8_t header[kHeaderSize];
    bool ok = std::fread(header, 1, kHeaderSize, f) == kHeaderSize &&
        std::memcmp(header, kMagic, sizeof(kMagic)) == 0 &&
        getLe32(header + 8) == kFormatVersion &&
        getLe32(header + 12) == fingerprint.size();
    if (ok) {
        std::string fpr(fingerprint.size(), '\0');
        ok = std::fread(fpr.data(), 1, fpr.size(), f) == fpr.size() &&
            fpr == fingerprint;
    }
    std::fclose(f);
    return ok;
}

} // namespace trace_io
} // namespace poat
