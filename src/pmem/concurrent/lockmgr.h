/**
 * @file
 * Two-phase lock manager for concurrent persistent transactions.
 *
 * Locks are named by opaque 64-bit keys (workloads pack row/object/
 * stripe identities into them) and come in Shared and Exclusive modes.
 * Waiting is FIFO — a request joins the key's queue and is granted
 * only at the queue head, so writers cannot starve — and cooperative:
 * a blocked worker yields to the scheduler and re-checks on resume.
 *
 * Deadlock handling is detection, not avoidance: before every wait the
 * manager runs a depth-first search over the waits-for graph (worker
 * w waits for the holders of its key, plus the waiters ahead of it in
 * the FIFO). If the search finds a cycle through w, the REQUESTER is
 * the victim: its request is withdrawn and DeadlockAbort is thrown,
 * unwinding the transaction body so the engine can undo-abort and
 * retry. Victim selection is thereby deterministic — the worker that
 * closes the cycle dies — which keeps multi-core runs bit-identical.
 *
 * Everything runs under the cooperative scheduler (one worker at a
 * time), so the manager's state needs no internal mutex.
 */
#ifndef POAT_PMEM_CONCURRENT_LOCKMGR_H
#define POAT_PMEM_CONCURRENT_LOCKMGR_H

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "pmem/concurrent/sched.h"
#include "pmem/trace.h"

namespace poat {
namespace concurrent {

/** Lock compatibility: Shared/Shared coexists, anything else conflicts. */
enum class LockMode : uint8_t
{
    Shared,
    Exclusive,
};

/**
 * Thrown when granting a request would close a waits-for cycle. The
 * requester is the victim; the engine catches this, aborts the undo
 * transaction, releases the worker's locks, and retries the body.
 */
class DeadlockAbort
{
  public:
    DeadlockAbort(uint32_t worker, uint64_t key)
        : worker_(worker), key_(key)
    {
    }

    uint32_t worker() const { return worker_; }
    uint64_t key() const { return key_; }

  private:
    uint32_t worker_;
    uint64_t key_;
};

/** FIFO two-phase lock manager with deadlock detection. */
class LockManager
{
  public:
    /**
     * Acquire @p key in @p mode for worker @p w, cooperatively waiting
     * through @p sched on conflict. Re-acquiring a held lock is a
     * no-op (Shared under Exclusive included); Shared->Exclusive is an
     * upgrade, granted once @p w is the sole holder (upgrades bypass
     * the FIFO, else two upgraders would block behind each other).
     * @throws DeadlockAbort if waiting would close a cycle.
     */
    void acquire(uint32_t w, uint64_t key, LockMode mode,
                 CoopScheduler &sched);

    /** Acquire without waiting: true if granted immediately. */
    bool tryAcquire(uint32_t w, uint64_t key, LockMode mode);

    /** Release one lock held by @p w (fatal if not held). */
    void release(uint32_t w, uint64_t key);

    /** Release every lock @p w holds (commit/abort unlock point). */
    void releaseAll(uint32_t w);

    bool holds(uint32_t w, uint64_t key) const;

    /** Locks @p w currently holds. */
    size_t heldCount(uint32_t w) const;

    /// @name Statistics
    /// @{
    uint64_t acquisitions() const { return acquisitions_; }
    uint64_t waits() const { return waits_; }
    uint64_t deadlocks() const { return deadlocks_; }
    /// @}

    /**
     * Sink receiving the observability events (lockWait/lockAcquired/
     * lockReleased/lockDeadlock; see pmem/trace.h). Null (the default)
     * emits nothing. The events are pure observers — granting order,
     * victim choice, and counters are identical with or without one.
     */
    void setSink(TraceSink *sink) { sink_ = sink; }

  private:
    struct Waiter
    {
        uint32_t worker;
        LockMode mode;
    };

    struct LockState
    {
        /** Current holders; mode applies to all (Shared) or one. */
        std::vector<uint32_t> holders;
        LockMode mode = LockMode::Shared;
        std::deque<Waiter> queue;
    };

    /** Can @p w's queued request on @p key be granted right now? */
    bool grantable(const LockState &ls, uint32_t w, LockMode mode) const;

    /** Record the grant of @p key to @p w in @p mode. */
    void grant(LockState &ls, uint32_t w, LockMode mode, uint64_t key);

    /**
     * Workers @p w is (or would be) waiting for: the holders of its
     * key, plus — for FIFO waits — every waiter ahead of it.
     */
    void waitTargets(uint32_t w, std::vector<uint32_t> *out) const;

    /** Waits-for edges @p w currently has (lockWait operand). */
    uint32_t waitEdges(uint32_t w) const;

    /** DFS over the waits-for graph: does a cycle pass through @p w? */
    bool wouldDeadlock(uint32_t w) const;

    void removeWaiter(uint64_t key, uint32_t w);

    // std::map keeps iteration deterministic (diagnostics, tests).
    std::map<uint64_t, LockState> locks_;
    std::map<uint32_t, std::set<uint64_t>> held_;
    std::map<uint32_t, uint64_t> waitKey_;    ///< FIFO waits
    std::map<uint32_t, uint64_t> upgradeKey_; ///< Shared->Exclusive waits

    uint64_t acquisitions_ = 0;
    uint64_t waits_ = 0;
    uint64_t deadlocks_ = 0;

    TraceSink *sink_ = nullptr; ///< observability only; never affects grants
};

} // namespace concurrent
} // namespace poat

#endif // POAT_PMEM_CONCURRENT_LOCKMGR_H
