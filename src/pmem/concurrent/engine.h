/**
 * @file
 * ConcurrentEngine: ties the cooperative scheduler, the lock manager,
 * the transaction table, and the group-commit coordinator into the
 * execution harness concurrent workloads run on.
 *
 * A workload calls run(body): the engine installs a switch handler
 * that, on every control transfer, selects the incoming worker's
 * runtime context (PmemRuntime::setWorker — undo-log slot, load-tag
 * chain, open-transaction set) and emits TraceSink::coreSwitch so the
 * simulated machine retires the worker's instructions on its own core.
 * Inside the body, txRun(fn) executes fn as one transaction under
 * strict two-phase locking with deadlock abort-retry: a DeadlockAbort
 * unwinds fn, the engine rolls back the undo transaction, releases the
 * worker's locks, notifies the retry hook (the driver counts retries
 * on the simulated core), backs off one yield, and re-executes.
 */
#ifndef POAT_PMEM_CONCURRENT_ENGINE_H
#define POAT_PMEM_CONCURRENT_ENGINE_H

#include <cstdint>
#include <functional>

#include "pmem/concurrent/groupcommit.h"
#include "pmem/concurrent/lockmgr.h"
#include "pmem/concurrent/sched.h"
#include "pmem/concurrent/txtable.h"
#include "pmem/runtime.h"

namespace poat {
namespace concurrent {

/** Knobs for one engine instance. */
struct EngineOptions
{
    uint32_t threads = 2;
    /** Commits per group-commit window (<= 1 disables batching). */
    uint32_t commit_window = 4;
    /** Abort-retry budget per transaction before declaring livelock. */
    uint32_t max_retries = 64;
};

/** Aggregated concurrency statistics of one engine run. */
struct EngineStats
{
    uint64_t commits = 0;
    uint64_t aborts = 0;  ///< deadlock aborts
    uint64_t retries = 0; ///< re-executions after aborts
    uint64_t lock_acquisitions = 0;
    uint64_t lock_waits = 0;
    uint64_t deadlocks = 0;
    uint64_t gc_windows = 0;
    uint64_t gc_members = 0;
    uint64_t fences_elided = 0;
    uint64_t switches = 0;
};

/** The concurrent-transaction execution harness. */
class ConcurrentEngine
{
  public:
    ConcurrentEngine(PmemRuntime &rt, CoopScheduler &sched,
                     const EngineOptions &opts);

    /**
     * Run @p body(worker) on every worker under the scheduler. Not
     * reentrant. Restores worker 0 and emits a final coreSwitch(0)
     * before returning, so subsequent single-threaded emission lands
     * on core 0.
     */
    void run(const std::function<void(uint32_t)> &body);

    /**
     * Execute @p fn as one transaction with deadlock abort-retry.
     * @p fn opens undo transactions as usual (txBegin or TxScope) and
     * takes locks via lockShared/lockExclusive; the engine commits
     * through the group-commit window and releases all locks after.
     * Only call from inside a body passed to run().
     */
    void txRun(const std::function<void()> &fn);

    /** Acquire a Shared lock for the calling worker (waits). */
    void
    lockShared(uint64_t key)
    {
        locks_.acquire(sched_.self(), key, LockMode::Shared, sched_);
    }

    /** Acquire an Exclusive lock for the calling worker (waits). */
    void
    lockExclusive(uint64_t key)
    {
        locks_.acquire(sched_.self(), key, LockMode::Exclusive, sched_);
    }

    /** A cooperative yield point (workloads sprinkle these). */
    void yield() { sched_.yield(); }

    /** Worker id of the calling body. */
    uint32_t self() const { return sched_.self(); }

    /**
     * Hook invoked (with the worker id) on every abort-retry; the
     * driver charges the simulated core's retry penalty here. The
     * engine itself never touches the simulator.
     */
    void setRetryHook(std::function<void(uint32_t)> hook)
    {
        retryHook_ = std::move(hook);
    }

    PmemRuntime &runtime() { return rt_; }
    CoopScheduler &scheduler() { return sched_; }
    LockManager &locks() { return locks_; }
    TxTable &table() { return table_; }
    GroupCommit &groupCommit() { return gc_; }
    const EngineOptions &options() const { return opts_; }

    /** Aggregate statistics (valid during and after run()). */
    EngineStats stats() const;

  private:
    PmemRuntime &rt_;
    CoopScheduler &sched_;
    EngineOptions opts_;
    LockManager locks_;
    TxTable table_;
    GroupCommit gc_;
    std::function<void(uint32_t)> retryHook_;
};

} // namespace concurrent
} // namespace poat

#endif // POAT_PMEM_CONCURRENT_ENGINE_H
