/**
 * @file
 * Group-commit coordinator: batches the SFENCEs of transactions that
 * commit in the same window.
 *
 * While a window is open the runtime withholds every commit-path fence
 * (PmemRuntime::setCommitFenceBatching); when the window fills — or
 * the engine drains it at the end of a run — ONE fence is emitted on
 * the committing worker's core, standing for all of them. The win is
 * purely a timing effect in the simulated instruction stream: the
 * host-side undo logs persist with real per-transaction ordering
 * regardless, so crash consistency and recovery are identical with
 * batching on or off (the explorer exercises exactly this).
 */
#ifndef POAT_PMEM_CONCURRENT_GROUPCOMMIT_H
#define POAT_PMEM_CONCURRENT_GROUPCOMMIT_H

#include <algorithm>
#include <cstdint>

#include "pmem/runtime.h"

namespace poat {
namespace concurrent {

/** Windowed commit-fence batching over one PmemRuntime. */
class GroupCommit
{
  public:
    /**
     * @param window commits per window; <= 1 disables batching (every
     *        commit fences itself, the classic behavior).
     */
    GroupCommit(PmemRuntime &rt, uint32_t window)
        : rt_(rt), window_(window == 0 ? 1 : window)
    {
    }

    /**
     * Commit the active worker's open transactions as a member of the
     * current window; closes the window when it fills.
     */
    void
    commit()
    {
        if (rt_.txActive())
            rt_.txEnd();
        if (window_ <= 1)
            return;
        ++members_;
        ++inWindow_;
        if (inWindow_ >= window_)
            close();
    }

    /** Drain a partial window (end of run); safe when empty. */
    void
    close()
    {
        if (window_ <= 1)
            return;
        const uint64_t elided = rt_.flushCommitFences();
        fencesElided_ += elided;
        if (inWindow_ > 0) {
            rt_.sink().commitBatch(inWindow_,
                                   static_cast<uint32_t>(elided));
            ++windows_;
            maxWindow_ = std::max(maxWindow_, inWindow_);
            inWindow_ = 0;
        }
    }

    uint32_t window() const { return window_; }

    /// @name Statistics
    /// @{
    uint64_t windows() const { return windows_; }     ///< windows closed
    uint64_t members() const { return members_; }     ///< commits batched
    uint64_t fencesElided() const { return fencesElided_; }
    uint32_t maxWindow() const { return maxWindow_; } ///< fullest window
    /// @}

  private:
    PmemRuntime &rt_;
    const uint32_t window_;
    uint32_t inWindow_ = 0;
    uint32_t maxWindow_ = 0;
    uint64_t windows_ = 0;
    uint64_t members_ = 0;
    uint64_t fencesElided_ = 0;
};

} // namespace concurrent
} // namespace poat

#endif // POAT_PMEM_CONCURRENT_GROUPCOMMIT_H
