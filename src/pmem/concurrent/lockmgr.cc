#include "pmem/concurrent/lockmgr.h"

#include <algorithm>

#include "common/logging.h"

namespace poat {
namespace concurrent {

bool
LockManager::holds(uint32_t w, uint64_t key) const
{
    auto it = held_.find(w);
    return it != held_.end() && it->second.count(key) != 0;
}

size_t
LockManager::heldCount(uint32_t w) const
{
    auto it = held_.find(w);
    return it == held_.end() ? 0 : it->second.size();
}

bool
LockManager::grantable(const LockState &ls, uint32_t w, LockMode mode) const
{
    if (ls.queue.empty() || ls.queue.front().worker != w)
        return false; // FIFO: only the head may be granted
    if (ls.holders.empty())
        return true;
    return mode == LockMode::Shared && ls.mode == LockMode::Shared;
}

void
LockManager::grant(LockState &ls, uint32_t w, LockMode mode, uint64_t key)
{
    if (ls.holders.empty())
        ls.mode = mode;
    ls.holders.push_back(w);
    held_[w].insert(key);
    ++acquisitions_;
}

void
LockManager::waitTargets(uint32_t w, std::vector<uint32_t> *out) const
{
    if (auto it = upgradeKey_.find(w); it != upgradeKey_.end()) {
        const LockState &ls = locks_.at(it->second);
        for (uint32_t h : ls.holders) {
            if (h != w)
                out->push_back(h);
        }
        return;
    }
    auto it = waitKey_.find(w);
    if (it == waitKey_.end())
        return;
    const LockState &ls = locks_.at(it->second);
    for (uint32_t h : ls.holders)
        out->push_back(h);
    for (const Waiter &q : ls.queue) {
        if (q.worker == w)
            break; // FIFO: w also waits on everyone ahead of it
        out->push_back(q.worker);
    }
}

uint32_t
LockManager::waitEdges(uint32_t w) const
{
    std::vector<uint32_t> targets;
    waitTargets(w, &targets);
    return static_cast<uint32_t>(targets.size());
}

bool
LockManager::wouldDeadlock(uint32_t w) const
{
    std::vector<uint32_t> stack;
    std::set<uint32_t> visited;
    waitTargets(w, &stack);
    while (!stack.empty()) {
        const uint32_t x = stack.back();
        stack.pop_back();
        if (x == w)
            return true;
        if (!visited.insert(x).second)
            continue;
        waitTargets(x, &stack);
    }
    return false;
}

void
LockManager::removeWaiter(uint64_t key, uint32_t w)
{
    LockState &ls = locks_[key];
    auto it = std::find_if(ls.queue.begin(), ls.queue.end(),
                           [&](const Waiter &q) { return q.worker == w; });
    POAT_ASSERT(it != ls.queue.end(), "waiter vanished from lock queue");
    ls.queue.erase(it);
    if (ls.holders.empty() && ls.queue.empty())
        locks_.erase(key);
}

void
LockManager::acquire(uint32_t w, uint64_t key, LockMode mode,
                     CoopScheduler &sched)
{
    if (holds(w, key)) {
        LockState &ls = locks_[key];
        if (ls.mode == LockMode::Exclusive || mode == LockMode::Shared)
            return; // already covered
        // Shared -> Exclusive upgrade: wait (off-queue) until sole
        // holder. Going through the FIFO instead would deadlock two
        // upgraders against each other by construction.
        upgradeKey_[w] = key;
        if (sink_ && ls.holders.size() > 1)
            sink_->lockWait(w, key, 1, waitEdges(w));
        while (ls.holders.size() > 1) {
            if (wouldDeadlock(w)) {
                upgradeKey_.erase(w);
                ++deadlocks_;
                if (sink_)
                    sink_->lockDeadlock(w, key);
                throw DeadlockAbort(w, key);
            }
            ++waits_;
            sched.yield();
        }
        upgradeKey_.erase(w);
        ls.mode = LockMode::Exclusive;
        ++acquisitions_;
        if (sink_)
            sink_->lockAcquired(w, key, 1);
        return;
    }

    LockState &ls = locks_[key];
    ls.queue.push_back({w, mode});
    waitKey_[w] = key;
    if (sink_ && !grantable(ls, w, mode))
        sink_->lockWait(w, key, mode == LockMode::Exclusive ? 1 : 0,
                        waitEdges(w));
    while (!grantable(ls, w, mode)) {
        if (wouldDeadlock(w)) {
            waitKey_.erase(w);
            removeWaiter(key, w);
            ++deadlocks_;
            if (sink_)
                sink_->lockDeadlock(w, key);
            throw DeadlockAbort(w, key);
        }
        ++waits_;
        sched.yield();
    }
    waitKey_.erase(w);
    POAT_ASSERT(ls.queue.front().worker == w, "grant out of FIFO order");
    ls.queue.pop_front();
    grant(ls, w, mode, key);
    if (sink_)
        sink_->lockAcquired(w, key, mode == LockMode::Exclusive ? 1 : 0);
}

bool
LockManager::tryAcquire(uint32_t w, uint64_t key, LockMode mode)
{
    if (holds(w, key)) {
        LockState &ls = locks_[key];
        if (ls.mode == LockMode::Exclusive || mode == LockMode::Shared)
            return true;
        if (ls.holders.size() > 1)
            return false;
        ls.mode = LockMode::Exclusive;
        ++acquisitions_;
        if (sink_)
            sink_->lockAcquired(w, key, 1);
        return true;
    }
    auto it = locks_.find(key);
    if (it == locks_.end() || (it->second.queue.empty() &&
                               (it->second.holders.empty() ||
                                (mode == LockMode::Shared &&
                                 it->second.mode == LockMode::Shared)))) {
        LockState &ls = locks_[key];
        grant(ls, w, mode, key);
        if (sink_)
            sink_->lockAcquired(w, key,
                                mode == LockMode::Exclusive ? 1 : 0);
        return true;
    }
    return false;
}

void
LockManager::release(uint32_t w, uint64_t key)
{
    auto held_it = held_.find(w);
    POAT_ASSERT(held_it != held_.end() && held_it->second.count(key),
                "release of a lock not held");
    held_it->second.erase(key);

    LockState &ls = locks_[key];
    auto it = std::find(ls.holders.begin(), ls.holders.end(), w);
    POAT_ASSERT(it != ls.holders.end(), "holder missing from lock state");
    ls.holders.erase(it);
    if (ls.holders.empty() && ls.queue.empty())
        locks_.erase(key);
    if (sink_)
        sink_->lockReleased(w, key);
    // Waiters poll on their next resume; no handoff needed here.
}

void
LockManager::releaseAll(uint32_t w)
{
    auto it = held_.find(w);
    if (it == held_.end())
        return;
    // Copy: release() mutates the held set.
    const std::vector<uint64_t> keys(it->second.begin(), it->second.end());
    for (uint64_t key : keys)
        release(w, key);
    held_.erase(w);
}

} // namespace concurrent
} // namespace poat
