#include "pmem/concurrent/sched.h"

#include <thread>

#include "common/logging.h"

namespace poat {
namespace concurrent {

DetScheduler::DetScheduler(uint64_t seed, uint32_t max_quantum)
    : seed_(seed), maxQuantum_(max_quantum == 0 ? 1 : max_quantum)
{
}

void
DetScheduler::run(uint32_t nthreads,
                  const std::function<void(uint32_t)> &body)
{
    POAT_ASSERT(nthreads >= 1, "scheduler needs at least one worker");
    POAT_ASSERT(nthreads <= 4096, "worker count out of range");
    POAT_ASSERT(!running_, "DetScheduler::run is not reentrant");

    // Reseed per run: the interleaving is a function of the seed and
    // the workers' yield sequences alone, never of previous runs.
    rng_ = Rng(seed_);
    nthreads_ = nthreads;
    done_.assign(nthreads, 0);
    current_ = 0;
    quantum_ = nextQuantum();
    running_ = true;

    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (uint32_t t = 0; t < nthreads; ++t)
        threads.emplace_back([this, t, &body] { workerMain(t, body); });

    {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return !running_; });
    }
    for (auto &th : threads)
        th.join();
}

void
DetScheduler::workerMain(uint32_t t,
                         const std::function<void(uint32_t)> &body)
{
    {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return current_ == t; });
    }
    // First entry: announce the switch-in (the engine emits coreSwitch
    // and selects the worker's runtime context here). Only the token
    // holder runs, so the handler needs no lock; the condition-variable
    // handoff orders it after the previous worker's last action.
    if (handler_)
        handler_(t);

    body(t);

    std::unique_lock<std::mutex> lk(mu_);
    done_[t] = 1;
    const uint32_t next = pickNext(t);
    if (next == nthreads_) {
        running_ = false;
        cv_.notify_all();
        return;
    }
    ++switches_;
    current_ = next;
    quantum_ = nextQuantum();
    cv_.notify_all();
}

void
DetScheduler::yield()
{
    uint32_t t;
    {
        std::unique_lock<std::mutex> lk(mu_);
        POAT_ASSERT(running_, "yield outside a scheduler run");
        t = current_;
        ++yields_;
        if (quantum_ > 1) {
            --quantum_;
            return;
        }
        const uint32_t next = pickNext(t);
        quantum_ = nextQuantum();
        if (next == nthreads_ || next == t)
            return; // nobody else runnable: keep the token
        ++switches_;
        current_ = next;
        cv_.notify_all();
        cv_.wait(lk, [&] { return current_ == t; });
    }
    // Token came back: announce the switch-in for the resumed worker.
    if (handler_)
        handler_(t);
}

uint32_t
DetScheduler::self() const
{
    // Only the token holder executes user code, so `current_` is the
    // caller's id by construction.
    return current_;
}

void
DetScheduler::setSwitchHandler(std::function<void(uint32_t)> handler)
{
    handler_ = std::move(handler);
}

uint32_t
DetScheduler::pickNext(uint32_t from)
{
    // Collect runnable peers in index order so the Rng draw maps to a
    // stable candidate list.
    uint32_t cands[4096];
    uint32_t n = 0;
    for (uint32_t t = 0; t < nthreads_; ++t) {
        if (!done_[t] && t != from)
            cands[n++] = t;
    }
    if (n == 0)
        return done_[from] ? nthreads_ : from;
    return cands[rng_.below(n)];
}

} // namespace concurrent
} // namespace poat
