#include "pmem/concurrent/engine.h"

#include "common/logging.h"

namespace poat {
namespace concurrent {

ConcurrentEngine::ConcurrentEngine(PmemRuntime &rt, CoopScheduler &sched,
                                   const EngineOptions &opts)
    : rt_(rt), sched_(sched), opts_(opts),
      table_(opts.threads == 0 ? 1 : opts.threads),
      gc_(rt, opts.commit_window)
{
    POAT_ASSERT(opts_.threads >= 1, "engine needs at least one worker");
    // Observability only: the lock manager narrates waits/grants/
    // deadlocks into the runtime's sink. Grant order is unaffected.
    locks_.setSink(&rt_.sink());
}

void
ConcurrentEngine::run(const std::function<void(uint32_t)> &body)
{
    rt_.setCommitFenceBatching(opts_.commit_window > 1);
    sched_.setSwitchHandler([this](uint32_t t) {
        // Order matters: select the worker context first so anything
        // the sink's consumers read back from the runtime is already
        // the incoming worker's, then retarget the simulated core.
        rt_.setWorker(t);
        rt_.sink().coreSwitch(t);
    });

    sched_.run(opts_.threads, [this, &body](uint32_t t) {
        body(t);
        // Observer: lets profilers distinguish "done" from "blocked"
        // for the rest of the run. Carries no cycles.
        rt_.sink().workerDone(t);
    });

    gc_.close();
    rt_.setCommitFenceBatching(false);
    sched_.setSwitchHandler({});
    rt_.setWorker(0);
    if (opts_.threads > 1)
        rt_.sink().coreSwitch(0);
}

void
ConcurrentEngine::txRun(const std::function<void()> &fn)
{
    const uint32_t w = sched_.self();
    for (uint32_t attempt = 0;; ++attempt) {
        table_.noteBegin(w, attempt > 0);
        try {
            fn();
            if (opts_.commit_window > 1)
                rt_.sink().commitJoin(w);
            gc_.commit();
            locks_.releaseAll(w);
            table_.noteCommit(w);
            return;
        } catch (const DeadlockAbort &) {
            // fn unwound; any TxScope inside already rolled its undo
            // transaction back, but a raw txBegin may still be open.
            if (rt_.txActive())
                rt_.txAbort();
            locks_.releaseAll(w);
            table_.noteAbort(w);
            POAT_ASSERT(attempt + 1 < opts_.max_retries,
                        "transaction retry budget exhausted (livelock?)");
            if (retryHook_)
                retryHook_(w);
            // Back off one yield point so a conflicting transaction
            // can finish before the retry re-collides.
            sched_.yield();
        }
    }
}

EngineStats
ConcurrentEngine::stats() const
{
    EngineStats s;
    s.commits = table_.totalCommits();
    s.aborts = table_.totalAborts();
    s.retries = table_.totalRetries();
    s.lock_acquisitions = locks_.acquisitions();
    s.lock_waits = locks_.waits();
    s.deadlocks = locks_.deadlocks();
    s.gc_windows = gc_.windows();
    s.gc_members = gc_.members();
    s.fences_elided = gc_.fencesElided();
    s.switches = sched_.switches();
    return s;
}

} // namespace concurrent
} // namespace poat
