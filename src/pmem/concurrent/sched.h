/**
 * @file
 * Cooperative scheduling for concurrent persistent transactions.
 *
 * The simulator is a sequential timing model: it consumes ONE dynamic
 * instruction stream, with TraceSink::coreSwitch records selecting the
 * core each instruction retires on. Concurrency therefore runs under a
 * cooperative scheduler that serializes worker threads — exactly one
 * worker executes at any instant, and control transfers only at
 * explicit yield points (lock waits, transaction boundaries, workload
 * checkpoints). The interleaving is a pure function of the scheduler
 * seed and the workers' yield sequences, so multi-core runs replay
 * bit-for-bit: same seed, same schedule, same trace, same stats.
 *
 * DetScheduler is the production implementation: real std::threads
 * passing a run token through a condition variable, with pseudo-random
 * quantum lengths drawn from a seeded Rng (the `tSEED` component of
 * crash-trial reproducer strings). SerialScheduler runs each worker to
 * completion in index order — the degenerate schedule, useful for
 * tests that want concurrency plumbing without interleaving.
 */
#ifndef POAT_PMEM_CONCURRENT_SCHED_H
#define POAT_PMEM_CONCURRENT_SCHED_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/rng.h"

namespace poat {
namespace concurrent {

/**
 * Abstract cooperative scheduler: runs N worker bodies one-at-a-time,
 * switching between them at yield points.
 */
class CoopScheduler
{
  public:
    virtual ~CoopScheduler() = default;

    /**
     * Run @p body(t) for every worker t in [0, nthreads) to
     * completion, interleaved at yield points. The switch handler (if
     * set) fires in the incoming worker's context on every control
     * transfer, including each worker's first entry — that is where
     * the engine emits TraceSink::coreSwitch and flips the runtime's
     * worker context.
     */
    virtual void run(uint32_t nthreads,
                     const std::function<void(uint32_t)> &body) = 0;

    /**
     * A yield point: the scheduler may transfer control to another
     * runnable worker. Only call from inside a body passed to run().
     */
    virtual void yield() = 0;

    /** Worker id of the currently running body. */
    virtual uint32_t self() const = 0;

    /** Install @p handler (may be empty) for switch notifications. */
    virtual void setSwitchHandler(std::function<void(uint32_t)> handler) = 0;

    /** Control transfers performed so far (worker-to-worker). */
    virtual uint64_t switches() const = 0;
};

/**
 * Deterministic preempting-at-yield scheduler over real threads.
 *
 * One token circulates; a worker runs until its quantum (a seeded
 * pseudo-random number of yield points) expires, then hands the token
 * to a pseudo-randomly chosen runnable peer. Host thread scheduling
 * cannot perturb the interleaving: a worker off-token blocks on the
 * condition variable, so the instruction stream the workers emit is a
 * pure function of (seed, yield sequence).
 */
class DetScheduler final : public CoopScheduler
{
  public:
    /**
     * @param seed the interleaving seed (`tSEED` in reproducers).
     * @param max_quantum most yield points a worker runs between
     *        switches (quantum is drawn uniformly from [1, max]).
     */
    explicit DetScheduler(uint64_t seed, uint32_t max_quantum = 8);

    void run(uint32_t nthreads,
             const std::function<void(uint32_t)> &body) override;
    void yield() override;
    uint32_t self() const override;
    void setSwitchHandler(std::function<void(uint32_t)> handler) override;
    uint64_t switches() const override { return switches_; }

    /** Yield points observed (whether or not they switched). */
    uint64_t yields() const { return yields_; }

    uint64_t seed() const { return seed_; }

  private:
    void workerMain(uint32_t t, const std::function<void(uint32_t)> &body);

    /** Next runnable worker other than @p from; nthreads_ if none. */
    uint32_t pickNext(uint32_t from);

    uint32_t nextQuantum() { return 1 + static_cast<uint32_t>(
                                      rng_.below(maxQuantum_)); }

    const uint64_t seed_;
    const uint32_t maxQuantum_;

    std::mutex mu_;
    std::condition_variable cv_;
    std::function<void(uint32_t)> handler_;
    Rng rng_{0};
    uint32_t nthreads_ = 0;
    uint32_t current_ = 0; ///< token holder (valid while running_)
    uint32_t quantum_ = 0; ///< yield points left in the current slice
    bool running_ = false;
    std::vector<uint8_t> done_;
    uint64_t switches_ = 0;
    uint64_t yields_ = 0;
};

/**
 * Degenerate schedule: worker 0 runs to completion, then worker 1, ...
 * yield() is a no-op. Safe only for bodies whose locks are always
 * released by completion (strict two-phase transactions qualify).
 */
class SerialScheduler final : public CoopScheduler
{
  public:
    void
    run(uint32_t nthreads,
        const std::function<void(uint32_t)> &body) override
    {
        for (uint32_t t = 0; t < nthreads; ++t) {
            current_ = t;
            if (handler_)
                handler_(t);
            body(t);
            if (t + 1 < nthreads)
                ++switches_;
        }
    }

    void yield() override {}
    uint32_t self() const override { return current_; }

    void
    setSwitchHandler(std::function<void(uint32_t)> handler) override
    {
        handler_ = std::move(handler);
    }

    uint64_t switches() const override { return switches_; }

  private:
    std::function<void(uint32_t)> handler_;
    uint32_t current_ = 0;
    uint64_t switches_ = 0;
};

} // namespace concurrent
} // namespace poat

#endif // POAT_PMEM_CONCURRENT_SCHED_H
