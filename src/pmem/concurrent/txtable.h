/**
 * @file
 * Transaction table: one slot per worker thread, tracking the state
 * and lifetime counters of that worker's transactions. The table is
 * the concurrency subsystem's bookkeeping spine — the lock manager
 * consults it for victim diagnostics, the engine drives status
 * transitions, and the experiment driver exports its aggregates as
 * `engine.*` statistics.
 *
 * All access happens under the cooperative scheduler (one worker runs
 * at a time), so the table needs no internal locking.
 */
#ifndef POAT_PMEM_CONCURRENT_TXTABLE_H
#define POAT_PMEM_CONCURRENT_TXTABLE_H

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace poat {
namespace concurrent {

/** Where a worker's current transaction attempt stands. */
enum class TxStatus : uint8_t
{
    Idle,      ///< no transaction open
    Running,   ///< executing its body
    Committed, ///< last attempt committed (until the next begin)
    Aborted,   ///< last attempt deadlock-aborted (a retry follows)
};

/** One worker's slot in the transaction table. */
struct TxSlot
{
    TxStatus status = TxStatus::Idle;
    uint64_t tx_id = 0;  ///< id of the current/last attempt (global seq)
    uint64_t begins = 0; ///< attempts started (retries included)
    uint64_t commits = 0;
    uint64_t aborts = 0;  ///< deadlock aborts
    uint64_t retries = 0; ///< re-executions after an abort
};

/** The per-worker transaction table. */
class TxTable
{
  public:
    explicit TxTable(uint32_t nworkers) : slots_(nworkers) {}

    uint32_t workers() const
    {
        return static_cast<uint32_t>(slots_.size());
    }

    TxSlot &
    slot(uint32_t w)
    {
        POAT_ASSERT(w < slots_.size(), "worker id out of range");
        return slots_[w];
    }

    const TxSlot &
    slot(uint32_t w) const
    {
        POAT_ASSERT(w < slots_.size(), "worker id out of range");
        return slots_[w];
    }

    /** A new attempt (first try or retry) starts on worker @p w. */
    void
    noteBegin(uint32_t w, bool is_retry)
    {
        TxSlot &s = slot(w);
        s.status = TxStatus::Running;
        s.tx_id = ++nextId_;
        ++s.begins;
        if (is_retry)
            ++s.retries;
    }

    void
    noteCommit(uint32_t w)
    {
        TxSlot &s = slot(w);
        POAT_ASSERT(s.status == TxStatus::Running,
                    "commit without a running transaction");
        s.status = TxStatus::Committed;
        ++s.commits;
    }

    void
    noteAbort(uint32_t w)
    {
        TxSlot &s = slot(w);
        POAT_ASSERT(s.status == TxStatus::Running,
                    "abort without a running transaction");
        s.status = TxStatus::Aborted;
        ++s.aborts;
    }

    /// @name Aggregates (exported as engine.* statistics)
    /// @{
    uint64_t
    totalCommits() const
    {
        uint64_t n = 0;
        for (const TxSlot &s : slots_)
            n += s.commits;
        return n;
    }

    uint64_t
    totalAborts() const
    {
        uint64_t n = 0;
        for (const TxSlot &s : slots_)
            n += s.aborts;
        return n;
    }

    uint64_t
    totalRetries() const
    {
        uint64_t n = 0;
        for (const TxSlot &s : slots_)
            n += s.retries;
        return n;
    }
    /// @}

  private:
    std::vector<TxSlot> slots_;
    uint64_t nextId_ = 0;
};

} // namespace concurrent
} // namespace poat

#endif // POAT_PMEM_CONCURRENT_TXTABLE_H
