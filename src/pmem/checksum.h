/**
 * @file
 * Media-fault vocabulary shared by the pmem layer: which on-media
 * structures carry checksums, the error recovery raises when corruption
 * cannot be repaired, and the host-side counters that feed the
 * `pmem.checksum.*` stats subtree.
 *
 * Coverage map (see docs/ROBUSTNESS.md):
 *
 *   Superblock   PoolHeader, crc32c-sealed, mirrored at offset 128
 *   LogHeader    undo-log header, crc32c-sealed, mirrored one line up
 *   LogEntry     per-entry header crc + payload crc
 *   BlockHeader  allocator block header (object header when allocated,
 *                allocator metadata when free), crc replaces the magic
 *
 * Detection is mandatory everywhere ("never UB or silent wrong
 * answers"); repair uses the mirror (superblock, log header), the undo
 * log (heap block headers), or payload resealing (dead snapshots of a
 * committing transaction). Anything else surfaces as a MediaError with
 * pool, offset, and structure kind.
 */
#ifndef POAT_PMEM_CHECKSUM_H
#define POAT_PMEM_CHECKSUM_H

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/crc32c.h"

namespace poat {

/** On-media structure kinds, for diagnostics and fault-site labels. */
enum class MediaStructure : uint8_t
{
    Superblock,  ///< PoolHeader (primary or mirror)
    LogHeader,   ///< undo-log header (primary or mirror)
    LogEntry,    ///< one undo-log entry (header or payload)
    BlockHeader, ///< heap block header (object header / alloc metadata)
};

inline const char *
mediaStructureName(MediaStructure s)
{
    switch (s) {
      case MediaStructure::Superblock:
        return "superblock";
      case MediaStructure::LogHeader:
        return "log header";
      case MediaStructure::LogEntry:
        return "log entry";
      case MediaStructure::BlockHeader:
        return "block header";
    }
    return "?";
}

/**
 * Unrepairable media corruption: detected by a checksum or replica
 * mismatch, with no intact copy to repair from. Carries the precise
 * location so an operator can map it back to the failing device range.
 */
class MediaError : public std::runtime_error
{
  public:
    MediaError(std::string pool, uint32_t offset, MediaStructure kind,
               const std::string &detail)
        : std::runtime_error("media fault in pool '" + pool + "': " +
                             mediaStructureName(kind) + " at offset " +
                             std::to_string(offset) + ": " + detail),
          pool_(std::move(pool)), offset_(offset), kind_(kind)
    {}

    const std::string &poolName() const { return pool_; }
    uint32_t offset() const { return offset_; }
    MediaStructure kind() const { return kind_; }

  private:
    std::string pool_;
    uint32_t offset_;
    MediaStructure kind_;
};

/**
 * Host-side checksum work counters, aggregated per registry and
 * published as `pmem.checksum.*`. Every count corresponds to cycle
 * emission in PmemRuntime (costs::kCrc*), so the stats subtree is the
 * functional mirror of the overhead the CPI stacks charge.
 */
struct ChecksumCounters
{
    uint64_t superblock_updates = 0;   ///< PoolHeader seals (both copies)
    uint64_t block_header_updates = 0; ///< allocator header seals
    uint64_t log_header_updates = 0;   ///< log-header seals (both copies)
    uint64_t log_entry_updates = 0;    ///< log-entry seals
    uint64_t bytes_summed = 0;         ///< payload bytes through crc32c
    uint64_t verifies = 0;             ///< scrub/validate checksum checks

    void
    merge(const ChecksumCounters &o)
    {
        superblock_updates += o.superblock_updates;
        block_header_updates += o.block_header_updates;
        log_header_updates += o.log_header_updates;
        log_entry_updates += o.log_entry_updates;
        bytes_summed += o.bytes_summed;
        verifies += o.verifies;
    }
};

} // namespace poat

#endif // POAT_PMEM_CHECKSUM_H
