/**
 * @file
 * ObjectID: the persistent object address space (paper Figure 1).
 *
 * An ObjectID is a 64-bit value: the upper 32 bits hold a system-wide
 * unique pool identifier, the lower 32 bits a byte offset within that
 * pool. Pool id 0 is reserved for the null ObjectID, so every pool's 4 GB
 * segment begins at a nonzero pool id. The space of all ObjectIDs can be
 * read either as a segmented address space (one 4 GB segment per pool) or
 * as a flat 64-bit space, since an object in one pool may hold a
 * legitimate ObjectID referencing any other pool.
 */
#ifndef POAT_PMEM_OID_H
#define POAT_PMEM_OID_H

#include <cstdint>
#include <functional>

namespace poat {

/** 64-bit persistent object identifier: (pool id << 32) | offset. */
struct ObjectID
{
    uint64_t raw = 0;

    constexpr ObjectID() = default;
    constexpr explicit ObjectID(uint64_t r) : raw(r) {}
    constexpr ObjectID(uint32_t pool_id, uint32_t offset)
        : raw((static_cast<uint64_t>(pool_id) << 32) | offset)
    {}

    /** System-wide unique identifier of the containing pool. */
    constexpr uint32_t poolId() const { return raw >> 32; }

    /** Byte offset of the object within its pool. */
    constexpr uint32_t offset() const { return raw & 0xffffffffu; }

    /** True for the distinguished null ObjectID (pool id 0). */
    constexpr bool isNull() const { return poolId() == 0; }

    /** ObjectID @p delta bytes further into the same pool. */
    constexpr ObjectID
    plus(uint32_t delta) const
    {
        return ObjectID(poolId(), offset() + delta);
    }

    constexpr bool operator==(const ObjectID &o) const { return raw == o.raw; }
    constexpr bool operator!=(const ObjectID &o) const { return raw != o.raw; }
};

/** The null ObjectID: pool id 0 can never exist. */
inline constexpr ObjectID OID_NULL{};

} // namespace poat

template <>
struct std::hash<poat::ObjectID>
{
    size_t
    operator()(const poat::ObjectID &oid) const noexcept
    {
        return std::hash<uint64_t>{}(oid.raw);
    }
};

#endif // POAT_PMEM_OID_H
