/**
 * @file
 * In-pool persistent heap allocator (pmalloc/pfree substrate).
 *
 * Block headers live inside the pool so the heap survives reopen and
 * crash; the free list is volatile and rebuilt by a header scan when the
 * allocator is attached, mirroring how NVML reconstructs runtime state
 * on pool open. Blocks are 16-byte aligned, carry boundary information
 * (prev_size) for O(1) physical coalescing, and are first-fit allocated.
 *
 * Crash-atomicity of an individual allocation is the transaction layer's
 * job: tx_pmalloc writes an ALLOC undo record before the allocation is
 * made durable, so recovery can return a half-visible block. A non-
 * transactional pmalloc interrupted by a crash may leak its block, the
 * same contract NVML's non-transactional allocations have.
 */
#ifndef POAT_PMEM_ALLOC_H
#define POAT_PMEM_ALLOC_H

#include <cstdint>
#include <map>
#include <vector>

#include "pmem/pool.h"

namespace poat {

/**
 * On-media header preceding every heap block.
 *
 * The trailing word doubles as discriminator and integrity check: it is
 * the crc32c of the sealed fields seeded with kMagic, so a header that
 * was never written (fresh heap: all zeros) and a header a media fault
 * touched both fail validation — there is no way to forge a valid
 * header by luck short of a 2^-32 collision. For an allocated block
 * this is the paper-level "object header" checksum; for a free block it
 * protects the allocator's own metadata.
 *
 * Field order is load-bearing for torn-write recovery. Media persists
 * whole 8-byte words even when a cache line tears, so the header's two
 * words are each internally consistent with SOME version of the header:
 *
 *  - word 0 (size, flags) is the sealed semantic state — an atomic
 *    (extent, liveness) pair from one version;
 *  - word 1 (prev_size, crc) carries the checksum plus the back-link,
 *    which is derivable redundancy: the forward chain walk can always
 *    recompute prev_size, so it is deliberately OUTSIDE the checksum
 *    and scrub/rescan repair a stale value silently.
 *
 * Consequence: a neighbour update that only rewrites prev_size (an
 * alloc split or free coalesce touching the block after the changed
 * region) never changes word 0 or the crc, so a torn write-back of that
 * update cannot invalidate the header — the one crash state that used
 * to be unrecoverable, because nothing else records a bystander block's
 * liveness. When (size, flags) do change, a tear interleaves two
 * versions and scrubHeap recovers one of them: the observed crc seals
 * exactly one version's word 0, and the observed word 0 IS a version's
 * truth whenever its size matches the reconstructed extent.
 */
struct BlockHeader
{
    static constexpr uint32_t kMagic = 0xb10cb10c; ///< crc seed
    static constexpr uint32_t kAllocated = 1u << 0;

    uint32_t size;      ///< total block bytes including this header
    uint32_t flags;
    uint32_t prev_size; ///< total bytes of the physically previous block
    uint32_t crc;       ///< crc32c(size, flags; seed kMagic)

    bool allocated() const { return flags & kAllocated; }

    uint32_t
    computeCrc() const
    {
        // Word 0 only: prev_size is unsealed (see the class comment).
        return crc32c(this, offsetof(BlockHeader, prev_size), kMagic);
    }
    bool crcValid() const { return crc == computeCrc(); }
    void seal() { crc = computeCrc(); }
};

static_assert(sizeof(BlockHeader) == 16);

/** First-fit allocator over one pool's heap region. */
class PoolAllocator
{
  public:
    static constexpr uint32_t kAlign = 16;
    static constexpr uint32_t kMinBlock = sizeof(BlockHeader) + kAlign;

    /**
     * Attach to @p pool, scanning headers to rebuild the free list. A
     * fresh heap (first header all zeros) is formatted as one free
     * block; a checksum-invalid header anywhere raises MediaError —
     * recovery paths run the scrub pass first so this never fires on a
     * repairable image.
     */
    explicit PoolAllocator(Pool &pool);

    /**
     * Allocate @p size payload bytes.
     *
     * With @p persist_now false the headers are written but NOT made
     * durable; the caller must call persistTouched() once its undo
     * record for the allocation is durable, or the ordering contract
     * above (log entry before durable allocation) is broken.
     *
     * @return payload offset within the pool, or 0 on exhaustion.
     */
    uint32_t alloc(uint32_t size, bool persist_now = true);

    /** Persist every header the last alloc/free wrote. */
    void persistTouched();

    /** Free the block whose payload begins at @p payload_off. */
    void free(uint32_t payload_off);

    /** Total payload capacity of the block at @p payload_off. */
    uint32_t blockPayloadSize(uint32_t payload_off) const;

    /**
     * True iff @p payload_off names a live allocated block. Offsets
     * inside a free-list extent return false even when stale absorbed-
     * header bytes there still read as allocated — coalescing rewrites
     * only the surviving header, and recovery's redo/rollback decisions
     * must not trust the leftovers.
     */
    bool isAllocated(uint32_t payload_off) const;

    /// @name Introspection for tests and the runtime cost model
    /// @{
    uint64_t freeBytes() const;
    uint64_t usedBytes() const;
    size_t freeBlockCount() const { return freeList_.size(); }

    /**
     * Pool offsets whose headers the last alloc/free wrote; the runtime
     * replays these as persistent stores in the instruction trace.
     */
    const std::vector<uint32_t> &lastTouched() const { return touched_; }

    /**
     * Re-scan headers and rebuild the volatile free list; required after
     * a simulated crash reverted the working image.
     */
    void rescan() { rebuildFreeList(); }

    /**
     * Walk the whole heap checking header-chain invariants (magic
     * values, size chaining, no two adjacent free blocks).
     * @return true iff the heap is consistent.
     */
    bool validate() const;

    /**
     * Payload offsets of every allocated block, in heap order. The
     * crash-point explorer compares this against the set of offsets a
     * workload can still reach to account for leaks and double uses.
     */
    std::vector<uint32_t> allocatedPayloads() const;
    /// @}

  private:
    BlockHeader readHeader(uint32_t block_off) const;
    void writeHeader(uint32_t block_off, const BlockHeader &h);

    /**
     * Zero a dead header absorbed by a coalesce. A crc-valid header
     * left inside a free extent is a landmine: if the covering block's
     * header is later torn by a partial fence drain, scrub's extent
     * reconstruction can mistake the stale bytes for a live block and
     * resurrect an allocation no log record covers — a permanent leak.
     * Zeroed bytes instead read as never-written space, which the
     * scrub proof ladder already classifies correctly. Must be queued
     * on touched_ AFTER the merged header that covers the position, so
     * a crash between the two fences only ever exposes the stale
     * header under a still-valid covering extent (swept on the next
     * pool open by rebuildFreeList).
     */
    void poisonHeader(uint32_t block_off);
    void rebuildFreeList();
    uint32_t heapEnd() const;

    Pool &pool_;
    uint32_t heapOff_;
    uint32_t heapSize_;
    std::map<uint32_t, uint32_t> freeList_; ///< block off -> total size
    std::vector<uint32_t> touched_;
};

} // namespace poat

#endif // POAT_PMEM_ALLOC_H
