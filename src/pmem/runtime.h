/**
 * @file
 * PmemRuntime: the programmer-facing persistent memory API (paper
 * Table 1) in both evaluated flavors.
 *
 * TranslationMode::Software is the BASE system: every object dereference
 * calls the software oid_direct (SoftwareTranslator), and data accesses
 * are ordinary loads/stores at the translated virtual address.
 * TranslationMode::Hardware is the OPT system: dereferences are free and
 * data accesses are nvld/nvst events carrying the ObjectID, translated
 * by the simulated POLB/POT.
 *
 * Durability emission can be disabled (the *_NTX configurations): library
 * paths then skip CLWB/fence events. Host-side semantics (the real undo
 * log, the real durable image) are unaffected by the mode — BASE and OPT
 * runs of the same workload produce byte-identical persistent state,
 * which the integration tests assert.
 */
#ifndef POAT_PMEM_RUNTIME_H
#define POAT_PMEM_RUNTIME_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <type_traits>
#include <vector>

#include "pmem/costs.h"
#include "pmem/registry.h"
#include "pmem/trace.h"
#include "pmem/translate.h"

namespace poat {

/** Which translation machinery dereferences pay for (paper Table 7). */
enum class TranslationMode : uint8_t
{
    Software, ///< BASE: oid_direct in software
    Hardware, ///< OPT: nvld/nvst with POLB/POT translation
};

/** Construction options for a runtime instance. */
struct RuntimeOptions
{
    TranslationMode mode = TranslationMode::Software;
    /** Emit CLWB/fence events in library paths (off for *_NTX). */
    bool durability = true;
    /** Seed for ASLR-style placement; fixed seed => replayable layout. */
    uint64_t aslr_seed = 1;
    /**
     * BASE-side ablation: disable oid_direct's most-recent-translation
     * predictor so every software translation pays the full lookup.
     */
    bool base_predictor = true;

    /**
     * Undo-log slots carved into every pool this runtime creates: one
     * per concurrent worker thread. 1 (the default) keeps the classic
     * single-log layout and a byte-identical pool image.
     */
    uint32_t log_slots = 1;
};

/**
 * A dereferenced object: what the paper's programmer juggles manually.
 *
 * In Software mode it carries the translated virtual address plus the
 * value tag of the translation's base-address load; in Hardware mode
 * only the ObjectID (plus the tag of whatever load produced it, for
 * pointer-chase dependence tracking).
 */
struct ObjectRef
{
    ObjectID oid{};
    uint64_t vaddr = 0; ///< Software mode only
    uint64_t dep_a = kNoDep; ///< translation result tag (Software)
    uint64_t dep_b = kNoDep; ///< tag of the load that produced the oid

    bool isNull() const { return oid.isNull(); }
};

/** The persistent-memory programming interface. */
class PmemRuntime
{
  public:
    explicit PmemRuntime(const RuntimeOptions &opts = {},
                         TraceSink *sink = nullptr);

    /// @name Pool management
    /// @{
    /** pool_create: create, map, and register a pool. @return pool id */
    uint32_t poolCreate(const std::string &name, uint64_t size,
                        uint32_t log_size = Pool::kDefaultLogSize);

    /** pool_open: reopen a closed pool (with recovery). @return id */
    uint32_t poolOpen(const std::string &name);

    /** pool_close: unmap and deregister. */
    void poolClose(uint32_t pool_id);

    /**
     * pool_root: ObjectID of the pool's root object, allocating it (and
     * zeroing it) with @p size bytes on first use.
     */
    ObjectID poolRoot(uint32_t pool_id, uint32_t size);
    /// @}

    /// @name Object management
    /// @{
    /** pmalloc: allocate @p size bytes in @p pool_id. Fatal if full. */
    ObjectID pmalloc(uint32_t pool_id, uint32_t size);

    /** pfree: release the object at @p oid. */
    void pfree(ObjectID oid);
    /// @}

    /// @name Translation and data access
    /// @{
    /**
     * Dereference an ObjectID: the BASE system's oid_direct call (with
     * its full instruction cost) or a free operation under OPT.
     * @param oid_tag value tag of the load that produced @p oid, when it
     *        was read out of another persistent object (pointer chase).
     */
    ObjectRef deref(ObjectID oid, uint64_t oid_tag = kNoDep);

    /** Read a scalar field at @p ref.oid + @p off. */
    template <typename T>
    T
    read(const ObjectRef &ref, uint32_t off = 0)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        emitRead(ref, off, sizeof(T));
        return poolOf(ref).pool.readAs<T>(ref.oid.offset() + off);
    }

    /** Write a scalar field at @p ref.oid + @p off. */
    template <typename T>
    void
    write(const ObjectRef &ref, uint32_t off, const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        emitWrite(ref, off, sizeof(T));
        poolOf(ref).pool.writeAs<T>(ref.oid.offset() + off, v);
    }

    /** Bulk read of @p n bytes starting at @p ref.oid + @p off. */
    void readBytes(const ObjectRef &ref, uint32_t off, void *dst, size_t n);

    /** Bulk write of @p n bytes starting at @p ref.oid + @p off. */
    void writeBytes(const ObjectRef &ref, uint32_t off, const void *src,
                    size_t n);

    /** Value tag of the most recent data load (for chase chains). */
    uint64_t lastLoadTag() const { return cur().lastLoadTag; }
    /// @}

    /// @name Durability
    /// @{
    /** persist(oid, size): CLWB the range, then fence. */
    void persist(ObjectID oid, uint32_t size);
    /// @}

    /// @name Failure safety
    ///
    /// Each pool has its own undo log (as in NVML); a logical operation
    /// that spans pools opens one transaction per pool, and txEnd()
    /// commits them in pool-id order. Atomicity is per pool: this is
    /// the same contract NVML's single-pool transactions give a
    /// multi-pool data structure.
    /// @{
    void txBegin(uint32_t pool_id);
    void txAddRange(ObjectID oid, uint32_t size);
    ObjectID txPmalloc(uint32_t pool_id, uint32_t size);
    void txPfree(ObjectID oid);
    void txEnd();
    void txAbort();

    /**
     * Tag subsequent transactions with the logical workload operation
     * @p name ("insert", "new_order", ...). Interns the name to a small
     * id (announced to the sink once via TraceSink::opName) and stamps
     * it into every TraceSink::txBegin until the next setOp. Purely
     * observational: emits no instructions.
     */
    void setOp(const char *name);
    bool txActive() const { return !cur().txPools.empty(); }
    bool txActiveOn(uint32_t pool_id) const
    {
        return cur().txPools.count(pool_id) != 0;
    }
    /// @}

    /// @name Concurrency (worker threads and group commit)
    ///
    /// Worker model: the deterministic scheduler serializes worker
    /// threads (one runs at a time), and setWorker() selects whose
    /// context — open transactions, load-tag chain, operation tag —
    /// subsequent calls run under. Worker t of a multi-slot pool
    /// drives undo-log slot t % slots, so concurrent transactions
    /// never share a write-ahead log. Single-threaded code never calls
    /// setWorker and runs entirely as worker 0, bit-identical to the
    /// pre-concurrency runtime.
    /// @{
    /** Switch the active worker context (grown on first use). */
    void setWorker(uint32_t worker);

    /** The active worker id. */
    uint32_t worker() const { return worker_; }

    /** Worker contexts materialized so far (>= 1). */
    uint32_t workerCount() const
    {
        return static_cast<uint32_t>(workers_.size());
    }

    /**
     * Group-commit fence batching. While on, the fences the commit
     * emission path (txEnd) would issue are withheld and counted; the
     * group-commit coordinator ends a window by calling
     * flushCommitFences(), which emits ONE fence covering every
     * withheld one. Emission-side only: the host-side undo logs
     * persist with real per-transaction fences regardless, so crash
     * consistency is unaffected — batching models the *timing* win of
     * amortizing SFENCE stalls across a commit window.
     */
    void setCommitFenceBatching(bool on) { fenceBatch_ = on; }

    /**
     * Close a group-commit window: emit one fence standing for every
     * withheld commit fence. @return fences elided (withheld - 1, or 0
     * if the window was empty) — the group-commit win.
     */
    uint64_t flushCommitFences();

    /** Commit fences withheld in the current window. */
    uint64_t pendingCommitFences() const { return pendingFences_; }

    /**
     * Undo-log bytes copied back by txAbort() over the runtime's
     * lifetime (across all workers and pools). Counted host-side from
     * the log records, so live and replayed runs agree; feeds the
     * tx.abort.undo_bytes functional-profile counter.
     */
    uint64_t abortUndoBytes() const { return abortUndoBytes_; }
    /// @}

    /// @name Workload support
    /// @{
    /** Reserve @p size bytes of volatile address space (buffers). */
    uint64_t mapVolatile(uint64_t size);

    /** Emit @p count generic ALU instructions (workload compute). */
    void
    compute(uint32_t count, uint64_t dep = kNoDep)
    {
        sink_->alu(count, dep);
    }

    /** Emit a conditional branch (workload control flow). */
    void
    branchEvent(bool taken, uint64_t pc, uint64_t dep = kNoDep)
    {
        sink_->branch(taken, pc, dep);
    }
    /// @}

    /// @name Substrate access (tests, experiments, recovery flows)
    /// @{
    PoolRegistry &registry() { return registry_; }
    const PoolRegistry &registry() const { return registry_; }
    SoftwareTranslator &translator() { return translator_; }
    const SoftwareTranslator &translator() const { return translator_; }
    TraceSink &sink() { return *sink_; }
    void setSink(TraceSink *sink) { sink_ = sink ? sink : &nullSink_; }
    TranslationMode mode() const { return opts_.mode; }
    bool durability() const { return opts_.durability; }

    /** Power-failure simulation: crash all pools, then recover them. */
    void crashAndRecover();
    /// @}

  private:
    /** Per-worker runtime context (see setWorker). */
    struct WorkerCtx
    {
        std::set<uint32_t> txPools; ///< pools with an open transaction
        uint64_t lastLoadTag = kNoDep;
        uint32_t currentOp = 0; ///< id stamped into txBegin (0 = none)
    };

    WorkerCtx &cur() { return workers_[worker_]; }
    const WorkerCtx &cur() const { return workers_[worker_]; }

    /** The undo-log slot the active worker drives in @p op. */
    UndoLog &
    logFor(OpenPool &op)
    {
        return op.logSlot(worker_ % op.logSlotCount());
    }

    OpenPool &poolOf(const ObjectRef &ref);
    OpenPool &poolOf(ObjectID oid);

    /** Emit the instruction(s) for a data read of @p size bytes. */
    void emitRead(const ObjectRef &ref, uint32_t off, size_t size);
    /** Emit the instruction(s) for a data write of @p size bytes. */
    void emitWrite(const ObjectRef &ref, uint32_t off, size_t size);

    /** Emit flush events for [oid, oid+size) if durability is on. */
    void emitPersist(ObjectID oid, uint32_t size, uint64_t vaddr);

    /** Emit direct (library-internal) stores for allocator headers. */
    void emitAllocatorTouches(OpenPool &op);

    /** Emit the store+flush pair publishing a log append. */
    void emitLogAppend(OpenPool &op, UndoLog &log);

    /** Commit one pool's transaction (host already committed). */
    void emitCommit(OpenPool &op, UndoLog &log,
                    const std::vector<UndoLog::Record> &records);

    /** A commit-path fence: withheld when a group window is open. */
    void commitFence();

    RuntimeOptions opts_;
    NullTraceSink nullSink_;
    TraceSink *sink_;
    PoolRegistry registry_;
    SoftwareTranslator translator_;
    std::vector<WorkerCtx> workers_{1}; ///< index = worker id
    uint32_t worker_ = 0;               ///< active worker context
    bool fenceBatch_ = false;    ///< group-commit window open
    uint64_t pendingFences_ = 0; ///< commit fences withheld so far
    uint64_t abortUndoBytes_ = 0; ///< undo bytes rolled back (all time)
    std::map<std::string, uint32_t> opIds_; ///< interned setOp names
};

} // namespace poat

#endif // POAT_PMEM_RUNTIME_H
