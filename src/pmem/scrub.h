/**
 * @file
 * Recovery-time scrub-and-repair pass (Pangolin-style, see PAPERS.md).
 *
 * Crash-point recovery (PR 4) assumes the durable image is *intact*;
 * real NVM also suffers media faults — latent bit flips and torn
 * 64-byte lines. The scrub pass walks every checksummed on-media
 * structure of a pool before the allocator rescan and undo-log recovery
 * touch it, and for each corruption found either
 *
 *   - repairs it from a replica (superblock and log-header mirrors),
 *   - repairs it from the undo log (heap block headers whose liveness a
 *     published ALLOC/FREE/DATA record proves, with the extent
 *     recovered from the next block's back-link),
 *   - retires it (a dead snapshot payload of an already-committed
 *     transaction is resealed), or
 *   - throws MediaError naming the pool, offset, and structure kind —
 *     never undefined behavior, never a silent wrong answer.
 *
 * Scrub order matters: superblock first (it locates everything), then
 * the log header (mirror repair), then the published log entries (the
 * walk needs trusted sizes), then the heap chain (flag reconstruction
 * needs trusted log records).
 */
#ifndef POAT_PMEM_SCRUB_H
#define POAT_PMEM_SCRUB_H

#include <cstdint>

#include "pmem/tx.h"

namespace poat {

/** What one scrub pass checked and fixed. */
struct ScrubStats
{
    uint64_t structures_checked = 0;
    uint64_t corruptions_detected = 0;
    uint64_t superblock_repairs = 0;   ///< incl. mirror resyncs
    uint64_t log_header_repairs = 0;   ///< incl. mirror resyncs
    uint64_t log_entry_repairs = 0;    ///< dead snapshots resealed
    uint64_t block_header_repairs = 0; ///< rebuilt from log + back-link

    uint64_t
    repairs() const
    {
        return superblock_repairs + log_header_repairs +
            log_entry_repairs + block_header_repairs;
    }

    void
    merge(const ScrubStats &o)
    {
        structures_checked += o.structures_checked;
        corruptions_detected += o.corruptions_detected;
        superblock_repairs += o.superblock_repairs;
        log_header_repairs += o.log_header_repairs;
        log_entry_repairs += o.log_entry_repairs;
        block_header_repairs += o.block_header_repairs;
    }
};

/**
 * Scrub @p pool's working image (call after Pool::crash() or on a
 * freshly reopened image, before the allocator attaches/rescans and
 * before UndoLog::recover). Repairs are persisted to the durable image.
 * @throws MediaError on unrepairable corruption.
 */
ScrubStats scrubPool(Pool &pool);

} // namespace poat

#endif // POAT_PMEM_SCRUB_H
