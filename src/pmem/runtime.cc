#include "pmem/runtime.h"

#include <vector>

namespace poat {

namespace {

/** Branch-site id for the persist/copy loops (predictable loops). */
constexpr uint64_t kPcLibLoop = 0x5000;

} // namespace

PmemRuntime::PmemRuntime(const RuntimeOptions &opts, TraceSink *sink)
    : opts_(opts), sink_(sink ? sink : &nullSink_),
      registry_(opts.aslr_seed), translator_(registry_.addressSpace())
{
    translator_.setPredictorEnabled(opts.base_predictor);
}

OpenPool &
PmemRuntime::poolOf(const ObjectRef &ref)
{
    return registry_.get(ref.oid.poolId());
}

OpenPool &
PmemRuntime::poolOf(ObjectID oid)
{
    return registry_.get(oid.poolId());
}

// --------------------------------------------------------------------
// Pool management
// --------------------------------------------------------------------

uint32_t
PmemRuntime::poolCreate(const std::string &name, uint64_t size,
                        uint32_t log_size)
{
    OpenPool &op = registry_.create(name, size, log_size,
                                    opts_.log_slots);
    translator_.addPool(op.pool.id(), op.pool.vbase());
    sink_->alu(costs::kPoolOpen);
    sink_->poolMapped(op.pool.id(), op.pool.vbase(), op.pool.size());
    return op.pool.id();
}

uint32_t
PmemRuntime::poolOpen(const std::string &name)
{
    OpenPool &op = registry_.open(name);
    translator_.addPool(op.pool.id(), op.pool.vbase());
    sink_->alu(costs::kPoolOpen);
    sink_->poolMapped(op.pool.id(), op.pool.vbase(), op.pool.size());
    return op.pool.id();
}

void
PmemRuntime::poolClose(uint32_t pool_id)
{
    sink_->alu(costs::kPoolClose);
    sink_->poolUnmapped(pool_id);
    translator_.removePool(pool_id);
    registry_.close(pool_id);
}

ObjectID
PmemRuntime::poolRoot(uint32_t pool_id, uint32_t size)
{
    OpenPool &op = registry_.get(pool_id);
    sink_->alu(costs::kPoolRoot);
    // The library reads the root descriptor from the pool header, which
    // it addresses directly through its own mapping.
    sink_->load(op.pool.vbase() + offsetof(PoolHeader, root_off));

    PoolHeader h = op.pool.header();
    if (h.root_off != 0) {
        POAT_ASSERT(h.root_size >= size, "pool_root: size grew");
        return ObjectID(pool_id, h.root_off);
    }

    // First use: allocate and zero the root object, then publish it in
    // the header.
    const ObjectID root = pmalloc(pool_id, size);
    std::vector<uint8_t> zeros(size, 0);
    op.pool.writeRaw(root.offset(), zeros.data(), size);
    const uint64_t base = op.pool.vbase() + root.offset();
    for (uint32_t w = 0; w < size; w += 8)
        sink_->store(base + w);
    op.pool.persist(root.offset(), size);

    h = op.pool.header();
    h.root_off = root.offset();
    h.root_size = size;
    op.pool.storeHeader(h); // seals + writes primary and mirror copies
    op.pool.persistHeader();
    sink_->alu(costs::crcCost(offsetof(PoolHeader, crc)));
    sink_->store(op.pool.vbase() + offsetof(PoolHeader, root_off));
    sink_->store(op.pool.vbase() + PoolHeader::kMirrorOff +
                 offsetof(PoolHeader, root_off));
    if (opts_.durability) {
        sink_->clwb(op.pool.vbase() + root.offset());
        sink_->clwb(op.pool.vbase());
        sink_->clwb(op.pool.vbase() + PoolHeader::kMirrorOff);
        sink_->fence();
    }
    return root;
}

// --------------------------------------------------------------------
// Object management
// --------------------------------------------------------------------

void
PmemRuntime::emitAllocatorTouches(OpenPool &op)
{
    // Each touched header is a read-modify-write the allocator performs
    // through its own mapping (Software mode) or through nv instructions
    // (Hardware mode, paper section 3.3).
    const bool hw = opts_.mode == TranslationMode::Hardware;
    // Each header write reseals its crc (costs::kCrcHeader ALU apiece).
    if (!op.alloc.lastTouched().empty()) {
        sink_->alu(costs::kCrcHeader *
                   static_cast<uint32_t>(op.alloc.lastTouched().size()));
    }
    for (uint32_t t : op.alloc.lastTouched()) {
        if (hw) {
            sink_->nvLoad(ObjectID(op.pool.id(), t));
            sink_->nvStore(ObjectID(op.pool.id(), t));
            sink_->nvStore(ObjectID(op.pool.id(), t + 8));
        } else {
            const uint64_t va = op.pool.vbase() + t;
            sink_->load(va);
            sink_->store(va);
            sink_->store(va + 8);
        }
    }
    if (opts_.durability && !op.alloc.lastTouched().empty()) {
        for (uint32_t t : op.alloc.lastTouched()) {
            if (hw)
                sink_->nvClwb(ObjectID(op.pool.id(), t));
            else
                sink_->clwb(op.pool.vbase() + t);
        }
        sink_->fence();
    }
}

ObjectID
PmemRuntime::pmalloc(uint32_t pool_id, uint32_t size)
{
    OpenPool &op = registry_.get(pool_id);
    sink_->alu(costs::kPmalloc);
    const uint32_t off = op.alloc.alloc(size);
    if (off == 0)
        POAT_FATAL("pmalloc: pool exhausted");
    emitAllocatorTouches(op);
    return ObjectID(pool_id, off);
}

void
PmemRuntime::pfree(ObjectID oid)
{
    OpenPool &op = poolOf(oid);
    // NVML's by-oid entry points locate the pool from the oid: that is
    // a software translation in the BASE system.
    if (opts_.mode == TranslationMode::Software)
        translator_.translate(oid, *sink_);
    sink_->alu(costs::kPfree);
    op.alloc.free(oid.offset());
    emitAllocatorTouches(op);
}

// --------------------------------------------------------------------
// Translation and data access
// --------------------------------------------------------------------

ObjectRef
PmemRuntime::deref(ObjectID oid, uint64_t oid_tag)
{
    POAT_ASSERT(!oid.isNull(), "deref of OID_NULL");
    if (opts_.mode == TranslationMode::Software) {
        uint64_t vtag = kNoDep;
        const uint64_t va = translator_.translate(oid, *sink_, &vtag);
        return ObjectRef{oid, va, vtag, oid_tag};
    }
    return ObjectRef{oid, 0, kNoDep, oid_tag};
}

void
PmemRuntime::emitRead(const ObjectRef &ref, uint32_t off, size_t size)
{
    const uint32_t words = static_cast<uint32_t>((size + 7) / 8);
    for (uint32_t w = 0; w < words; ++w) {
        if (opts_.mode == TranslationMode::Software) {
            cur().lastLoadTag = sink_->load(ref.vaddr + off + 8ull * w,
                                            ref.dep_a, ref.dep_b);
        } else {
            cur().lastLoadTag = sink_->nvLoad(ref.oid.plus(off + 8 * w),
                                              ref.dep_a, ref.dep_b);
        }
    }
}

void
PmemRuntime::emitWrite(const ObjectRef &ref, uint32_t off, size_t size)
{
    const uint32_t words = static_cast<uint32_t>((size + 7) / 8);
    for (uint32_t w = 0; w < words; ++w) {
        if (opts_.mode == TranslationMode::Software)
            sink_->store(ref.vaddr + off + 8ull * w, ref.dep_a);
        else
            sink_->nvStore(ref.oid.plus(off + 8 * w), ref.dep_a);
    }
}

void
PmemRuntime::readBytes(const ObjectRef &ref, uint32_t off, void *dst,
                       size_t n)
{
    emitRead(ref, off, n);
    poolOf(ref).pool.readRaw(ref.oid.offset() + off, dst, n);
}

void
PmemRuntime::writeBytes(const ObjectRef &ref, uint32_t off, const void *src,
                        size_t n)
{
    emitWrite(ref, off, n);
    poolOf(ref).pool.writeRaw(ref.oid.offset() + off, src, n);
}

// --------------------------------------------------------------------
// Durability
// --------------------------------------------------------------------

void
PmemRuntime::emitPersist(ObjectID oid, uint32_t size, uint64_t vaddr)
{
    sink_->alu(costs::kPersistSetup);
    const uint32_t lines = Pool::lineSpan(oid.offset(), size);
    const uint32_t first = alignDown(oid.offset(), kLineSize);
    for (uint32_t i = 0; i < lines; ++i) {
        if (opts_.mode == TranslationMode::Software)
            sink_->clwb(alignDown(vaddr, kLineSize) + kLineSize * i);
        else
            sink_->nvClwb(ObjectID(oid.poolId(), first + kLineSize * i));
        sink_->branch(i + 1 < lines, kPcLibLoop);
    }
    sink_->fence();
}

void
PmemRuntime::persist(ObjectID oid, uint32_t size)
{
    OpenPool &op = poolOf(oid);
    op.pool.persist(oid.offset(), size);

    uint64_t vaddr = 0;
    if (opts_.mode == TranslationMode::Software)
        vaddr = translator_.translate(oid, *sink_);
    emitPersist(oid, size, vaddr);
}

// --------------------------------------------------------------------
// Failure safety
// --------------------------------------------------------------------

void
PmemRuntime::emitLogAppend(OpenPool &op, UndoLog &log)
{
    const uint32_t pool_id = op.pool.id();
    const uint32_t entry = log.lastEntryOff();
    const uint32_t entry_bytes = log.lastEntryBytes();
    const uint32_t hdr = log.headerOff();
    const uint32_t mirror = hdr + LogHeader::kMirrorLineOff;
    const bool hw = opts_.mode == TranslationMode::Hardware;
    // Sealing the entry checksums the payload + 28 header bytes; the
    // header publish reseals the log header and stores both copies.
    sink_->alu(costs::crcCost(entry_bytes) + costs::kCrcHeader);
    if (hw) {
        sink_->nvStore(ObjectID(pool_id, entry));
        for (uint32_t l = 0; l < Pool::lineSpan(entry, entry_bytes); ++l)
            sink_->nvClwb(ObjectID(pool_id, entry + kLineSize * l));
        sink_->fence();
        sink_->nvStore(ObjectID(pool_id, hdr));
        sink_->nvClwb(ObjectID(pool_id, hdr));
        sink_->nvStore(ObjectID(pool_id, mirror));
        sink_->nvClwb(ObjectID(pool_id, mirror));
        sink_->fence();
    } else {
        sink_->store(op.pool.vbase() + entry);
        for (uint32_t l = 0; l < Pool::lineSpan(entry, entry_bytes); ++l)
            sink_->clwb(op.pool.vbase() + entry + kLineSize * l);
        sink_->fence();
        sink_->store(op.pool.vbase() + hdr);
        sink_->clwb(op.pool.vbase() + hdr);
        sink_->store(op.pool.vbase() + mirror);
        sink_->clwb(op.pool.vbase() + mirror);
        sink_->fence();
    }
}

void
PmemRuntime::txBegin(uint32_t pool_id)
{
    POAT_ASSERT(!cur().txPools.count(pool_id),
                "nested transaction on the same pool");
    OpenPool &op = registry_.get(pool_id);
    UndoLog &log = logFor(op);
    log.begin();
    cur().txPools.insert(pool_id);

    sink_->txBegin(pool_id, cur().currentOp);
    sink_->alu(costs::kTxBegin + costs::kCrcHeader);
    const uint32_t hdr = log.headerOff();
    const uint32_t mirror = hdr + LogHeader::kMirrorLineOff;
    if (opts_.mode == TranslationMode::Hardware) {
        sink_->nvStore(ObjectID(pool_id, hdr));
        sink_->nvClwb(ObjectID(pool_id, hdr));
        sink_->nvStore(ObjectID(pool_id, mirror));
        sink_->nvClwb(ObjectID(pool_id, mirror));
    } else {
        sink_->store(op.pool.vbase() + hdr);
        sink_->clwb(op.pool.vbase() + hdr);
        sink_->store(op.pool.vbase() + mirror);
        sink_->clwb(op.pool.vbase() + mirror);
    }
    sink_->fence();
}

void
PmemRuntime::txAddRange(ObjectID oid, uint32_t size)
{
    POAT_ASSERT(cur().txPools.count(oid.poolId()),
                "tx_add_range on a pool without an open transaction");
    OpenPool &op = registry_.get(oid.poolId());
    UndoLog &log = logFor(op);
    log.addRange(oid.offset(), size);

    sink_->alu(costs::kTxAddRange);
    const bool hw = opts_.mode == TranslationMode::Hardware;
    const uint32_t payload = log.lastEntryOff() +
        static_cast<uint32_t>(sizeof(LogEntryHeader));

    uint64_t src_va = 0;
    if (!hw)
        src_va = translator_.translate(oid, *sink_);

    // Copy loop: snapshot the range into the log entry.
    for (uint32_t w = 0; w < (size + 7) / 8; ++w) {
        if (hw) {
            const uint64_t t = sink_->nvLoad(oid.plus(8 * w));
            sink_->nvStore(ObjectID(oid.poolId(), payload + 8 * w), t);
        } else {
            const uint64_t t = sink_->load(src_va + 8ull * w);
            sink_->store(op.pool.vbase() + payload + 8ull * w, t);
        }
        sink_->branch(8u * (w + 1) < size, kPcLibLoop);
    }
    emitLogAppend(op, log);
}

ObjectID
PmemRuntime::txPmalloc(uint32_t pool_id, uint32_t size)
{
    POAT_ASSERT(cur().txPools.count(pool_id),
                "tx_pmalloc on a pool without an open transaction");
    OpenPool &op = registry_.get(pool_id);
    UndoLog &log = logFor(op);

    sink_->alu(costs::kPmalloc);

    // The ALLOC undo record must be durable before the allocation is:
    // a crash between a durably-allocated header and its log record
    // would leak the block forever. So allocate with header persistence
    // deferred, log, then persist the headers.
    const uint32_t off = op.alloc.alloc(size, /*persist_now=*/false);
    if (off == 0)
        POAT_FATAL("tx_pmalloc: pool exhausted");

    try {
        log.logAlloc(off, size);
    } catch (...) {
        // Exhausted log: give the block back before surfacing the
        // error, otherwise the failed tx_pmalloc would leak it.
        op.alloc.free(off);
        throw;
    }
    emitLogAppend(op, log);

    op.alloc.persistTouched();
    emitAllocatorTouches(op);
    return ObjectID(pool_id, off);
}

void
PmemRuntime::txPfree(ObjectID oid)
{
    POAT_ASSERT(cur().txPools.count(oid.poolId()),
                "tx_pfree on a pool without an open transaction");
    OpenPool &op = registry_.get(oid.poolId());
    UndoLog &log = logFor(op);
    if (opts_.mode == TranslationMode::Software)
        translator_.translate(oid, *sink_);
    log.logFree(oid.offset());

    sink_->alu(costs::kPfree / 2); // deferred: only the log append now
    emitLogAppend(op, log);
}

void
PmemRuntime::commitFence()
{
    // A group-commit window withholds commit-path fences; the window
    // close (flushCommitFences) emits one fence standing for all of
    // them. Timing-side only — see setCommitFenceBatching().
    if (fenceBatch_)
        ++pendingFences_;
    else
        sink_->fence();
}

uint64_t
PmemRuntime::flushCommitFences()
{
    if (pendingFences_ == 0)
        return 0;
    const uint64_t elided = pendingFences_ - 1;
    pendingFences_ = 0;
    sink_->fence();
    return elided;
}

void
PmemRuntime::setWorker(uint32_t worker)
{
    POAT_ASSERT(worker < 4096, "worker id out of range");
    if (worker >= workers_.size())
        workers_.resize(worker + 1);
    worker_ = worker;
}

void
PmemRuntime::emitCommit(OpenPool &op, UndoLog &log,
                        const std::vector<UndoLog::Record> &records)
{
    const bool hw = opts_.mode == TranslationMode::Hardware;
    const uint32_t pool_id = op.pool.id();
    const uint32_t hdr = log.headerOff();
    const uint32_t mirror = hdr + LogHeader::kMirrorLineOff;

    auto flush_header = [&] {
        sink_->alu(costs::kCrcHeader);
        if (hw) {
            sink_->nvStore(ObjectID(pool_id, hdr));
            sink_->nvClwb(ObjectID(pool_id, hdr));
            sink_->nvStore(ObjectID(pool_id, mirror));
            sink_->nvClwb(ObjectID(pool_id, mirror));
        } else {
            sink_->store(op.pool.vbase() + hdr);
            sink_->clwb(op.pool.vbase() + hdr);
            sink_->store(op.pool.vbase() + mirror);
            sink_->clwb(op.pool.vbase() + mirror);
        }
        commitFence();
    };

    // Phase 1: flush every modified data range.
    for (const auto &r : records) {
        if (r.type != LogEntryHeader::kData)
            continue;
        const uint32_t first = alignDown(r.target_off, kLineSize);
        for (uint32_t l = 0; l < Pool::lineSpan(r.target_off, r.size); ++l) {
            if (hw)
                sink_->nvClwb(ObjectID(pool_id, first + kLineSize * l));
            else
                sink_->clwb(op.pool.vbase() + first + kLineSize * l);
        }
    }
    commitFence();

    // Commit point, deferred frees, then log reset.
    flush_header();
    for (const auto &r : records) {
        if (r.type != LogEntryHeader::kFree)
            continue;
        sink_->alu(costs::kPfree);
        const uint32_t block = r.target_off -
            static_cast<uint32_t>(sizeof(BlockHeader));
        if (hw) {
            sink_->nvLoad(ObjectID(pool_id, block));
            sink_->nvStore(ObjectID(pool_id, block));
            sink_->nvClwb(ObjectID(pool_id, block));
        } else {
            const uint64_t va = op.pool.vbase() + block;
            sink_->load(va);
            sink_->store(va);
            sink_->clwb(va);
        }
        commitFence();
    }
    flush_header();
}

void
PmemRuntime::txEnd()
{
    POAT_ASSERT(!cur().txPools.empty(), "tx_end outside a transaction");
    sink_->alu(costs::kTxEnd);
    for (const uint32_t pool_id : cur().txPools) {
        OpenPool &op = registry_.get(pool_id);
        UndoLog &log = logFor(op);
        const auto records = log.records();
        log.commit();
        emitCommit(op, log, records);
        sink_->txCommit(pool_id);
    }
    cur().txPools.clear();
}

void
PmemRuntime::txAbort()
{
    POAT_ASSERT(!cur().txPools.empty(), "tx_abort outside a transaction");
    sink_->alu(costs::kTxEnd);
    const bool hw = opts_.mode == TranslationMode::Hardware;
    for (const uint32_t pool_id : cur().txPools) {
        OpenPool &op = registry_.get(pool_id);
        UndoLog &log = logFor(op);
        const auto records = log.records();
        log.abort();

        // Undo copy-back loops, newest entry first.
        for (auto it = records.rbegin(); it != records.rend(); ++it) {
            if (it->type != LogEntryHeader::kData)
                continue;
            abortUndoBytes_ += it->size;
            const uint32_t payload = it->entry_off +
                static_cast<uint32_t>(sizeof(LogEntryHeader));
            for (uint32_t w = 0; w < (it->size + 7) / 8; ++w) {
                if (hw) {
                    const uint64_t t =
                        sink_->nvLoad(ObjectID(pool_id, payload + 8 * w));
                    sink_->nvStore(
                        ObjectID(pool_id, it->target_off + 8 * w), t);
                } else {
                    const uint64_t t =
                        sink_->load(op.pool.vbase() + payload + 8ull * w);
                    sink_->store(
                        op.pool.vbase() + it->target_off + 8ull * w, t);
                }
                sink_->branch(8u * (w + 1) < it->size, kPcLibLoop);
            }
        }
        sink_->fence();
        sink_->txAbort(pool_id);
    }
    cur().txPools.clear();
}

void
PmemRuntime::setOp(const char *name)
{
    auto [it, fresh] =
        opIds_.emplace(name, static_cast<uint32_t>(opIds_.size()) + 1);
    if (fresh)
        sink_->opName(it->second, name);
    cur().currentOp = it->second;
    sink_->opSet(it->second);
}

// --------------------------------------------------------------------
// Workload support
// --------------------------------------------------------------------

uint64_t
PmemRuntime::mapVolatile(uint64_t size)
{
    return registry_.addressSpace().mapRandom(size);
}

void
PmemRuntime::crashAndRecover()
{
    registry_.crashAll();
    registry_.recoverAll();
    translator_.invalidatePredictor();
    for (WorkerCtx &w : workers_)
        w.txPools.clear();
    pendingFences_ = 0;
}

} // namespace poat
