/**
 * @file
 * Simulated process virtual address space with ASLR-style placement.
 *
 * The paper's motivation for ObjectIDs is that pools are relocatable:
 * each pool is mmapped at an arbitrary (randomized) virtual base, so
 * persistent data cannot hold raw pointers. This class hands out
 * randomized, page-aligned, non-overlapping virtual regions for pools and
 * for the runtime's own data (translation hash table, volatile heap,
 * stack), mirroring mmap under ASLR. Addresses are *simulated*: they feed
 * the timing model's TLB/caches; host storage is separate.
 */
#ifndef POAT_PMEM_ADDRSPACE_H
#define POAT_PMEM_ADDRSPACE_H

#include <cstdint>
#include <map>

#include "common/bits.h"
#include "common/logging.h"
#include "common/rng.h"

namespace poat {

/** Page size assumed throughout (paper Table 4). */
inline constexpr uint64_t kPageSize = 4096;
/** Cache line size assumed throughout (paper Table 4). */
inline constexpr uint64_t kLineSize = 64;

/** Allocator of randomized virtual address regions for one process. */
class AddressSpace
{
  public:
    /**
     * @param seed Determines the (reproducible) random placement.
     */
    explicit AddressSpace(uint64_t seed = 1) : rng_(seed ^ 0xa5a5a5a5ull) {}

    /**
     * Reserve a region of @p size bytes at a random page-aligned base
     * within the mmap range. Never overlaps a live region.
     */
    uint64_t
    mapRandom(uint64_t size)
    {
        size = alignUp(size, kPageSize);
        for (int attempt = 0; attempt < 4096; ++attempt) {
            uint64_t base = kMmapLo +
                rng_.below((kMmapHi - kMmapLo - size) / kPageSize) *
                    kPageSize;
            if (insertIfFree(base, size))
                return base;
        }
        POAT_PANIC("address space exhausted (random placement failed)");
    }

    /** Release a previously mapped region starting at @p base. */
    void
    unmap(uint64_t base)
    {
        auto it = regions_.find(base);
        POAT_ASSERT(it != regions_.end(), "unmap of unknown region");
        regions_.erase(it);
    }

    /** True iff @p vaddr falls inside some live region. */
    bool
    contains(uint64_t vaddr) const
    {
        auto it = regions_.upper_bound(vaddr);
        if (it == regions_.begin())
            return false;
        --it;
        return vaddr < it->first + it->second;
    }

    size_t regionCount() const { return regions_.size(); }

  private:
    bool
    insertIfFree(uint64_t base, uint64_t size)
    {
        auto next = regions_.lower_bound(base);
        if (next != regions_.end() && base + size > next->first)
            return false;
        if (next != regions_.begin()) {
            auto prev = std::prev(next);
            if (prev->first + prev->second > base)
                return false;
        }
        regions_.emplace(base, size);
        return true;
    }

    // Placement range mimics the Linux x86-64 mmap area.
    static constexpr uint64_t kMmapLo = 0x0000'1000'0000'0000ull;
    static constexpr uint64_t kMmapHi = 0x0000'7000'0000'0000ull;

    Rng rng_;
    std::map<uint64_t, uint64_t> regions_; ///< base -> size
};

} // namespace poat

#endif // POAT_PMEM_ADDRSPACE_H
