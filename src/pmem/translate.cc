#include "pmem/translate.h"

#include <algorithm>

#include "common/logging.h"
#include "pmem/costs.h"

namespace poat {

namespace {

// Synthetic branch-site ids for the predictor (stable per static site).
constexpr uint64_t kPcValidCheck = 0x4000;
constexpr uint64_t kPcIdCheck = 0x4008;
constexpr uint64_t kPcProbeLoop = 0x4010;
constexpr uint64_t kPcReturn = 0x4018;

// Layout of the translator's own data segment.
constexpr uint64_t kOffGlobValid = 0;
constexpr uint64_t kOffGlobId = 8;
constexpr uint64_t kOffGlobBase = 16;
constexpr uint64_t kOffBuckets = 64;
constexpr uint64_t kOffNodes = 64 + 8 * SoftwareTranslator::kBuckets;
constexpr uint64_t kNodeStride = 32;
constexpr uint64_t kSegmentSize = 4 * 1024 * 1024;

} // namespace

SoftwareTranslator::SoftwareTranslator(AddressSpace &space)
    : space_(space), chains_(kBuckets)
{
    rtBase_ = space_.mapRandom(kSegmentSize);
    nodeBump_ = rtBase_ + kOffNodes;
}

uint32_t
SoftwareTranslator::bucketOf(uint32_t pool_id)
{
    // Fibonacci multiplicative hash; what the emitted kTranslateHash ALU
    // block stands for.
    return (pool_id * 2654435761u) >> (32 - 10);
}

void
SoftwareTranslator::addPool(uint32_t pool_id, uint64_t vbase)
{
    POAT_ASSERT(!pools_.count(pool_id), "translator: pool already added");
    PoolInfo info{vbase, nodeBump_};
    nodeBump_ += kNodeStride;
    POAT_ASSERT(nodeBump_ <= rtBase_ + kSegmentSize,
                "translator node arena exhausted");
    pools_.emplace(pool_id, info);
    chains_[bucketOf(pool_id)].push_back(pool_id);
}

void
SoftwareTranslator::removePool(uint32_t pool_id)
{
    auto it = pools_.find(pool_id);
    POAT_ASSERT(it != pools_.end(), "translator: removing unknown pool");
    pools_.erase(it);
    auto &chain = chains_[bucketOf(pool_id)];
    chain.erase(std::remove(chain.begin(), chain.end(), pool_id),
                chain.end());
    if (recentValid_ && recentId_ == pool_id)
        recentValid_ = false;
}

uint64_t
SoftwareTranslator::translateQuiet(ObjectID oid) const
{
    auto it = pools_.find(oid.poolId());
    if (it == pools_.end())
        POAT_FATAL("oid_direct: pool is not open");
    return it->second.base + oid.offset();
}

uint64_t
SoftwareTranslator::translate(ObjectID oid, TraceSink &sink,
                              uint64_t *value_tag)
{
    ++calls_;
    const uint64_t insns_at_entry = insns_;
    if (value_tag)
        *value_tag = kNoDep;

    // Bracket everything we emit so timing sinks can charge the whole
    // expansion to the sw_translate CPI component (covers both the
    // fast-path and slow-path returns).
    struct SwRegion
    {
        TraceSink &s;
        explicit SwRegion(TraceSink &sink) : s(sink)
        {
            s.swTranslateBegin();
        }
        ~SwRegion() { s.swTranslateEnd(); }
    } region(sink);

    // Local emit helpers that also count for Table 2.
    auto alu = [&](uint32_t n, uint64_t dep = kNoDep) {
        sink.alu(n, dep);
        insns_ += n;
    };
    auto lod = [&](uint64_t vaddr, uint64_t dep = kNoDep) {
        ++insns_;
        return sink.load(vaddr, dep);
    };
    auto sto = [&](uint64_t vaddr) {
        sink.store(vaddr);
        ++insns_;
    };
    auto brn = [&](bool taken, uint64_t pc, uint64_t dep = kNoDep) {
        sink.branch(taken, pc, dep);
        ++insns_;
    };

    // --- shared prefix: call, entry, predictor checks -----------------
    alu(costs::kTranslateCall);
    alu(costs::kTranslateEntry);
    uint64_t t_valid = lod(rtBase_ + kOffGlobValid);
    alu(costs::kTranslateCmp, t_valid);
    const bool valid = recentValid_ && predictorEnabled_;
    brn(!valid, kPcValidCheck, t_valid); // taken = jump to slow path

    bool hit = false;
    if (valid) {
        uint64_t t_id = lod(rtBase_ + kOffGlobId);
        alu(costs::kTranslateCmp, t_id);
        hit = (recentId_ == oid.poolId());
        brn(!hit, kPcIdCheck, t_id);
    }

    if (hit) {
        // --- fast path: 17 instructions total -------------------------
        uint64_t t_base = lod(rtBase_ + kOffGlobBase);
        alu(costs::kTranslateAdd, t_base);
        alu(costs::kTranslateRet);
        brn(true, kPcReturn);
        if (value_tag)
            *value_tag = t_base;
        insnHist_.record(insns_ - insns_at_entry);
        return recentBase_ + oid.offset();
    }

    // --- slow path: hash-map lookup ------------------------------------
    ++misses_;
    auto it = pools_.find(oid.poolId());
    if (it == pools_.end())
        POAT_FATAL("oid_direct: pool is not open");

    alu(costs::kTranslateHash);
    const uint32_t bucket = bucketOf(oid.poolId());
    uint64_t t_chain = lod(rtBase_ + kOffBuckets + 8ull * bucket);

    // Walk the chain; each probe is a dependent (pointer-chasing) load.
    const auto &chain = chains_[bucket];
    for (uint32_t probed : chain) {
        ++probes_;
        t_chain = lod(pools_.at(probed).nodeVaddr, t_chain);
        alu(costs::kTranslateProbe, t_chain);
        const bool match = (probed == oid.poolId());
        brn(match, kPcProbeLoop, t_chain);
        if (match)
            break;
    }

    // The matched node's base field; feeds the final address add.
    uint64_t t_base = lod(it->second.nodeVaddr + 8, t_chain);
    alu(costs::kTranslateUpdate);
    sto(rtBase_ + kOffGlobId);
    sto(rtBase_ + kOffGlobBase);
    alu(costs::kTranslateAdd, t_base);
    alu(costs::kTranslateRet);
    brn(true, kPcReturn);
    if (value_tag)
        *value_tag = t_base;

    recentValid_ = predictorEnabled_;
    recentId_ = oid.poolId();
    recentBase_ = it->second.base;
    insnHist_.record(insns_ - insns_at_entry);
    return it->second.base + oid.offset();
}

void
SoftwareTranslator::fillStats(StatsRegistry &reg,
                              const std::string &prefix) const
{
    reg.counter(prefix + ".calls") = calls_;
    reg.counter(prefix + ".predictor_hits") = calls_ - misses_;
    reg.counter(prefix + ".predictor_misses") = misses_;
    reg.counter(prefix + ".instructions") = insns_;
    reg.counter(prefix + ".hash_probes") = probes_;
    reg.counter(prefix + ".pools") = pools_.size();
    reg.histogram(prefix + ".insns_per_call") = insnHist_;
    reg.formula(prefix + ".predictor_miss_rate",
                prefix + ".predictor_misses", prefix + ".calls");
}

void
SoftwareTranslator::resetStats()
{
    calls_ = misses_ = insns_ = probes_ = 0;
    insnHist_.reset();
}

} // namespace poat
