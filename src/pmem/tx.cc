#include "pmem/tx.h"

#include <stdexcept>
#include <string>
#include <vector>

#include "common/bits.h"

namespace poat {

UndoLog::UndoLog(Pool &pool, PoolAllocator &alloc, uint32_t slot)
    : pool_(pool), alloc_(alloc), slot_(slot),
      logOff_(slotOffset(pool.header(), slot)),
      logSize_(slotSize(pool.header()))
{
    POAT_ASSERT(slot < slotCount(pool.header()),
                "undo-log slot out of range for this pool");
    POAT_ASSERT(logSize_ >=
                    LogHeader::kEntriesOff + sizeof(LogEntryHeader),
                "log region too small");
}

LogHeader
UndoLog::readHeader() const
{
    LogHeader h{};
    pool_.readRaw(logOff_, &h, sizeof(h));
    return h;
}

void
UndoLog::writeState(uint32_t state, uint32_t num, uint32_t used)
{
    LogHeader h{state, num, used, 0};
    h.seal();
    pool_.checksumCounters().log_header_updates += 1;
    pool_.checksumCounters().bytes_summed += offsetof(LogHeader, crc);
    // Primary first (the commit point), then the mirror, each on its
    // own 64-byte line so one media fault cannot take out both.
    pool_.writeRaw(logOff_, &h, sizeof(h));
    pool_.persist(logOff_, sizeof(h));
    pool_.writeRaw(logOff_ + LogHeader::kMirrorLineOff, &h, sizeof(h));
    pool_.persist(logOff_ + LogHeader::kMirrorLineOff, sizeof(h));
}

uint32_t
UndoLog::entriesBase() const
{
    return logOff_ + LogHeader::kEntriesOff;
}

void
UndoLog::throwExhausted(const char *api, uint32_t entry_bytes,
                        const LogHeader &h) const
{
    // A full log is a caller-visible resource limit, not a library bug:
    // report it as an exception the transaction can abort on, with
    // enough context to size the pool's log region correctly.
    throw std::runtime_error(
        std::string("undo log exhausted in ") + api + ": pool '" +
        pool_.name() + "' log_size=" + std::to_string(logSize_) +
        " used=" + std::to_string(LogHeader::kEntriesOff + h.used) +
        " requested=" + std::to_string(entry_bytes) +
        " bytes; the transaction is too large for this log region");
}

LogEntryHeader
UndoLog::readEntryHeader(uint32_t entry_off) const
{
    LogEntryHeader eh{};
    pool_.readRaw(entry_off, &eh, sizeof(eh));
    return eh;
}

template <typename Fn>
void
UndoLog::forEachEntry(Fn &&fn) const
{
    const LogHeader h = readHeader();
    uint32_t off = entriesBase();
    for (uint32_t i = 0; i < h.num_entries; ++i) {
        const LogEntryHeader eh = readEntryHeader(off);
        fn(off, eh);
        off += sizeof(LogEntryHeader) +
            static_cast<uint32_t>(alignUp(eh.payload_size, 16));
    }
}

void
UndoLog::begin()
{
    POAT_ASSERT(!active_, "nested transactions are not supported");
    writeState(LogHeader::kActive, 0, 0);
    active_ = true;
}

void
UndoLog::addRange(uint32_t off, uint32_t size)
{
    POAT_ASSERT(active_, "tx_add_range outside a transaction");
    POAT_ASSERT(size > 0, "tx_add_range of empty range");

    const LogHeader h = readHeader();
    const uint32_t entry_bytes = sizeof(LogEntryHeader) +
        static_cast<uint32_t>(alignUp(size, 16));
    const uint32_t entry_off = entriesBase() + h.used;
    if (entry_off + entry_bytes > logOff_ + logSize_)
        throwExhausted("tx_add_range", entry_bytes, h);

    // Write the snapshot entry and make it durable *before* publishing
    // it via the entry count; a torn entry is then never observed.
    std::vector<uint8_t> snap(size);
    pool_.readRaw(off, snap.data(), size);
    LogEntryHeader eh{};
    eh.type = LogEntryHeader::kData;
    eh.payload_size = size;
    eh.target_off = off;
    eh.data_crc = crc32c(snap.data(), size, LogEntryHeader::kCrcSeed);
    eh.seal();
    pool_.checksumCounters().log_entry_updates += 1;
    pool_.checksumCounters().bytes_summed +=
        size + offsetof(LogEntryHeader, hdr_crc);
    pool_.writeRaw(entry_off, &eh, sizeof(eh));
    pool_.writeRaw(entry_off + sizeof(eh), snap.data(), size);
    pool_.persist(entry_off, entry_bytes);
    lastEntryOff_ = entry_off;
    lastEntryBytes_ = entry_bytes;

    writeState(LogHeader::kActive, h.num_entries + 1, h.used + entry_bytes);
}

void
UndoLog::logAlloc(uint32_t payload_off, uint32_t payload_bytes)
{
    POAT_ASSERT(active_, "tx_pmalloc outside a transaction");
    const LogHeader h = readHeader();
    const uint32_t entry_bytes = sizeof(LogEntryHeader);
    const uint32_t entry_off = entriesBase() + h.used;
    if (entry_off + entry_bytes > logOff_ + logSize_)
        throwExhausted("tx_pmalloc", entry_bytes, h);

    LogEntryHeader eh{};
    eh.type = LogEntryHeader::kAlloc;
    eh.target_off = payload_off;
    eh.alloc_size = payload_bytes;
    eh.seal();
    pool_.checksumCounters().log_entry_updates += 1;
    pool_.checksumCounters().bytes_summed += offsetof(LogEntryHeader,
                                                      hdr_crc);
    pool_.writeRaw(entry_off, &eh, sizeof(eh));
    pool_.persist(entry_off, entry_bytes);
    lastEntryOff_ = entry_off;
    lastEntryBytes_ = entry_bytes;
    writeState(LogHeader::kActive, h.num_entries + 1, h.used + entry_bytes);
}

void
UndoLog::logFree(uint32_t payload_off)
{
    POAT_ASSERT(active_, "tx_pfree outside a transaction");
    const LogHeader h = readHeader();
    const uint32_t entry_bytes = sizeof(LogEntryHeader);
    const uint32_t entry_off = entriesBase() + h.used;
    if (entry_off + entry_bytes > logOff_ + logSize_)
        throwExhausted("tx_pfree", entry_bytes, h);

    LogEntryHeader eh{};
    eh.type = LogEntryHeader::kFree;
    eh.target_off = payload_off;
    eh.seal();
    pool_.checksumCounters().log_entry_updates += 1;
    pool_.checksumCounters().bytes_summed += offsetof(LogEntryHeader,
                                                      hdr_crc);
    pool_.writeRaw(entry_off, &eh, sizeof(eh));
    pool_.persist(entry_off, entry_bytes);
    lastEntryOff_ = entry_off;
    lastEntryBytes_ = entry_bytes;
    writeState(LogHeader::kActive, h.num_entries + 1, h.used + entry_bytes);
}

std::vector<UndoLog::Record>
UndoLog::records() const
{
    std::vector<Record> out;
    forEachEntry([&out](uint32_t off, const LogEntryHeader &eh) {
        out.push_back({eh.type, eh.payload_size, eh.target_off, off});
    });
    return out;
}

void
UndoLog::persistDataRanges()
{
    forEachEntry([this](uint32_t, const LogEntryHeader &eh) {
        if (eh.type == LogEntryHeader::kData)
            pool_.persist(eh.target_off, eh.payload_size);
        else if (eh.type == LogEntryHeader::kAlloc && eh.alloc_size != 0)
            pool_.persist(eh.target_off, eh.alloc_size);
    });
}

void
UndoLog::applyDeferredFrees()
{
    forEachEntry([this](uint32_t, const LogEntryHeader &eh) {
        if (eh.type == LogEntryHeader::kFree &&
            alloc_.isAllocated(eh.target_off)) {
            alloc_.free(eh.target_off);
        }
    });
}

void
UndoLog::applyUndo()
{
    // Collect entry offsets so snapshots restore in reverse order: the
    // oldest snapshot of a twice-logged range must win.
    std::vector<std::pair<uint32_t, LogEntryHeader>> entries;
    forEachEntry([&entries](uint32_t off, const LogEntryHeader &eh) {
        entries.emplace_back(off, eh);
    });
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        const auto &[off, eh] = *it;
        switch (eh.type) {
          case LogEntryHeader::kData: {
            std::vector<uint8_t> snap(eh.payload_size);
            pool_.readRaw(off + sizeof(LogEntryHeader), snap.data(),
                          eh.payload_size);
            pool_.writeRaw(eh.target_off, snap.data(), eh.payload_size);
            pool_.persist(eh.target_off, eh.payload_size);
            break;
          }
          case LogEntryHeader::kAlloc:
            if (alloc_.isAllocated(eh.target_off))
                alloc_.free(eh.target_off);
            break;
          case LogEntryHeader::kFree:
            break; // the free was deferred and never happened
          default:
            POAT_PANIC("corrupt undo log entry type");
        }
    }
}

void
UndoLog::commitPhase1()
{
    POAT_ASSERT(active_ && !committing_,
                "commitPhase1 outside a transaction");
    const LogHeader h = readHeader();

    // Phase 1: make every modified range durable while the undo log is
    // still valid; a crash here rolls the whole transaction back.
    persistDataRanges();

    // Commit point: after this is durable the transaction has happened.
    writeState(LogHeader::kCommitting, h.num_entries, h.used);
    committing_ = true;
}

void
UndoLog::commitPhase2()
{
    POAT_ASSERT(active_ && committing_,
                "commitPhase2 before commitPhase1");

    // Phase 2: deferred frees; idempotent, so recovery can redo them.
    applyDeferredFrees();

    writeState(LogHeader::kIdle, 0, 0);
    active_ = false;
    committing_ = false;
}

void
UndoLog::commit()
{
    POAT_ASSERT(active_, "tx_end outside a transaction");
    commitPhase1();
    commitPhase2();
}

void
UndoLog::abort()
{
    POAT_ASSERT(active_ && !committing_, "abort outside a transaction");
    applyUndo();
    writeState(LogHeader::kIdle, 0, 0);
    active_ = false;
}

void
UndoLog::validateLog() const
{
    const LogHeader h = readHeader();
    auto corrupt = [&](const std::string &what) {
        throw std::runtime_error(
            "corrupt undo log in pool '" + pool_.name() + "': " + what +
            " (state=" + std::to_string(h.state) +
            " num_entries=" + std::to_string(h.num_entries) +
            " used=" + std::to_string(h.used) + ")");
    };

    if (h.state != LogHeader::kIdle && h.state != LogHeader::kActive &&
        h.state != LogHeader::kCommitting) {
        corrupt("unknown state machine value");
    }
    pool_.checksumCounters().verifies += 1;
    if (!h.crcValid())
        corrupt("header checksum mismatch");
    const uint32_t end = logOff_ + logSize_;
    uint32_t off = entriesBase();
    for (uint32_t i = 0; i < h.num_entries; ++i) {
        if (off + sizeof(LogEntryHeader) > end)
            corrupt("entry " + std::to_string(i) +
                    " header truncated past the log region");
        const LogEntryHeader eh = readEntryHeader(off);
        pool_.checksumCounters().verifies += 1;
        if (!eh.hdrCrcValid())
            corrupt("entry " + std::to_string(i) +
                    " header checksum mismatch");
        if (eh.type != LogEntryHeader::kData &&
            eh.type != LogEntryHeader::kAlloc &&
            eh.type != LogEntryHeader::kFree) {
            corrupt("entry " + std::to_string(i) + " has unknown type " +
                    std::to_string(eh.type));
        }
        const uint64_t entry_bytes = sizeof(LogEntryHeader) +
            alignUp(eh.payload_size, 16);
        if (off + entry_bytes > end)
            corrupt("entry " + std::to_string(i) +
                    " payload truncated past the log region");
        if (eh.payload_size != 0) {
            std::vector<uint8_t> payload(eh.payload_size);
            pool_.readRaw(off + sizeof(LogEntryHeader), payload.data(),
                          eh.payload_size);
            if (eh.data_crc != crc32c(payload.data(), payload.size(),
                                      LogEntryHeader::kCrcSeed)) {
                corrupt("entry " + std::to_string(i) +
                        " payload checksum mismatch");
            }
        }
        if (static_cast<uint64_t>(eh.target_off) + eh.payload_size >
            pool_.size()) {
            corrupt("entry " + std::to_string(i) +
                    " targets past the end of the pool");
        }
        if (eh.type == LogEntryHeader::kAlloc &&
            static_cast<uint64_t>(eh.target_off) + eh.alloc_size >
                pool_.size()) {
            corrupt("entry " + std::to_string(i) +
                    " allocation extends past the end of the pool");
        }
        off += static_cast<uint32_t>(entry_bytes);
    }
    // num_entries and used are published together in one atomic header
    // write, so a walk that disagrees with used means torn media.
    if (off - entriesBase() != h.used)
        corrupt("entry walk covers " + std::to_string(off - entriesBase()) +
                " bytes but the header claims " + std::to_string(h.used));
}

bool
UndoLog::recover()
{
    POAT_ASSERT(!active_, "recover while a transaction is active");
    validateLog();
    const LogHeader h = readHeader();
    switch (h.state) {
      case LogHeader::kIdle:
        return false;
      case LogHeader::kActive:
        applyUndo();
        writeState(LogHeader::kIdle, 0, 0);
        return true;
      case LogHeader::kCommitting:
        applyDeferredFrees();
        writeState(LogHeader::kIdle, 0, 0);
        return true;
      default:
        POAT_PANIC("corrupt undo log state"); // validateLog threw already
    }
}

uint32_t
UndoLog::entryCount() const
{
    return readHeader().num_entries;
}

uint32_t
UndoLog::remainingCapacity() const
{
    const LogHeader h = readHeader();
    const uint32_t used_total = LogHeader::kEntriesOff + h.used;
    return logSize_ > used_total ? logSize_ - used_total : 0;
}

} // namespace poat
