/**
 * @file
 * Write-ahead undo log: the failure-safety substrate (paper section
 * 2.1.4).
 *
 * Each pool reserves a log region. A transaction snapshots every range
 * it is about to modify (tx_add_range) into the log and makes the
 * snapshot durable *before* the caller mutates the range; allocations
 * and frees inside a transaction are logged so they can be reverted or
 * completed.
 *
 * Commit is two-phase so that deferred frees survive a crash:
 *
 *   active (1)      — undo on recovery: restore data snapshots in
 *                     reverse order, free blocks from ALLOC records.
 *   committing (2)  — the transaction's effects are durable; redo on
 *                     recovery: perform any FREE records not yet done.
 *   idle (0)        — nothing to do.
 *
 * A non-transactional pmalloc interrupted by a crash may leak its block
 * (same contract as NVML non-transactional allocation); everything else
 * is exactly-once.
 */
#ifndef POAT_PMEM_TX_H
#define POAT_PMEM_TX_H

#include <cstdint>

#include "pmem/alloc.h"
#include "pmem/pool.h"

namespace poat {

/**
 * On-media header at the start of a pool's log region, crc32c-sealed
 * and replicated: the mirror copy lives one 64-byte line up
 * (log_off + kMirrorLineOff) and entries start two lines in, so a
 * media fault in either header line repairs from the other. Every
 * state write stores both copies, primary first; between two *valid*
 * copies the primary wins — it is the commit point of the state
 * machine, the mirror is its backup.
 *
 * The crc seed is 0 so a freshly zeroed log region decodes as a validly
 * sealed idle header (crc32c of zeros from seed 0 is 0), exactly the
 * "nothing to recover" a fresh pool means.
 */
struct LogHeader
{
    static constexpr uint32_t kIdle = 0;
    static constexpr uint32_t kActive = 1;
    static constexpr uint32_t kCommitting = 2;
    /** Mirror copy offset relative to the log region start. */
    static constexpr uint32_t kMirrorLineOff = 64;
    /** Entries start this far into the log region (after both copies). */
    static constexpr uint32_t kEntriesOff = 128;

    uint32_t state;
    uint32_t num_entries;
    uint32_t used; ///< bytes of entries written after this header
    uint32_t crc;  ///< crc32c over the preceding fields (seed 0)

    uint32_t
    computeCrc() const
    {
        return crc32c(this, offsetof(LogHeader, crc));
    }
    bool crcValid() const { return crc == computeCrc(); }
    void seal() { crc = computeCrc(); }
};

/**
 * On-media header of one log entry, followed by its payload.
 *
 * Two checksums: hdr_crc seals every preceding header field (so the
 * entry walk can trust sizes and targets), data_crc seals the payload
 * snapshot bytes (so recovery never copies corrupt old data back over
 * a live object). Both are verified by validateLog and the recovery
 * scrub.
 */
struct LogEntryHeader
{
    static constexpr uint32_t kData = 1;  ///< payload = old bytes
    static constexpr uint32_t kAlloc = 2; ///< target = allocated payload
    static constexpr uint32_t kFree = 3;  ///< target = deferred free
    /** Seed for both entry checksums; nonzero so zeroed media fails. */
    static constexpr uint32_t kCrcSeed = 0x106e7221;

    uint32_t type;
    uint32_t payload_size;
    uint32_t target_off;

    /**
     * kAlloc: payload bytes of the new block, persisted at commit so
     * stores into a freshly tx-allocated object become durable with
     * the transaction (they have no kData snapshot to persist through).
     * Zero for other entry types.
     */
    uint32_t alloc_size;

    uint32_t data_crc; ///< crc32c of the payload bytes; 0 if no payload
    uint32_t pad0;
    uint32_t pad1;
    uint32_t hdr_crc;  ///< crc32c over all preceding fields

    uint32_t
    computeHdrCrc() const
    {
        return crc32c(this, offsetof(LogEntryHeader, hdr_crc), kCrcSeed);
    }
    bool hdrCrcValid() const { return hdr_crc == computeHdrCrc(); }
    void seal() { hdr_crc = computeHdrCrc(); }
};

static_assert(sizeof(LogHeader) == 16);
static_assert(sizeof(LogEntryHeader) == 32);

/**
 * Undo-log manager bound to one pool and its allocator.
 *
 * Concurrency: a pool created with log_slots > 1 carves its log region
 * into equal line-aligned slots, one per worker thread, each with its
 * own independent LogHeader state machine at slotOffset(). Every slot
 * recovers independently, so a crash with several transactions frozen
 * mid-flight (some active, some committing) replays each to its own
 * consistent end state. Slot 0 of a single-slot pool is byte-identical
 * to the classic whole-region log.
 */
class UndoLog
{
  public:
    /** Bind to @p slot of the pool's log region (see slotCount). */
    UndoLog(Pool &pool, PoolAllocator &alloc, uint32_t slot = 0);

    /** Slots the pool's log region is carved into (header `pad`). */
    static uint32_t slotCount(const PoolHeader &h)
    {
        return PoolHeader::decodeLogSlots(h.pad);
    }

    /** Bytes of one slot: the region divided evenly, line-aligned. */
    static uint32_t slotSize(const PoolHeader &h)
    {
        return alignDown(h.log_size / slotCount(h), kLineSize);
    }

    /** Pool offset where @p slot's LogHeader lives. */
    static uint32_t slotOffset(const PoolHeader &h, uint32_t slot)
    {
        return h.log_off + slot * slotSize(h);
    }

    /** Begin a transaction; nesting is not supported. */
    void begin();

    /**
     * Snapshot [off, off+size) into the log and persist the snapshot.
     * Must be called before the range is modified.
     *
     * @throws std::runtime_error if the log region cannot hold the
     *         entry (transaction too large for the pool's log_size);
     *         the log itself is left untouched, so the transaction can
     *         still be aborted cleanly.
     */
    void addRange(uint32_t off, uint32_t size);

    /**
     * Record that @p payload_off was allocated inside this tx.
     * @p payload_bytes is persisted at commit (see
     * LogEntryHeader::alloc_size); pass the object's size so stores
     * into it survive a post-commit crash.
     */
    void logAlloc(uint32_t payload_off, uint32_t payload_bytes = 0);

    /**
     * Record a deferred free of @p payload_off; the block is actually
     * freed during commit, after the commit point is durable.
     */
    void logFree(uint32_t payload_off);

    /** Commit: persist modified ranges, run deferred frees, clear log. */
    void commit();

    /**
     * Commit phase 1: persist every modified range, then make the
     * commit point (kCommitting) durable. After this returns the
     * transaction has logically happened — a crash before phase 2
     * redoes only the deferred frees. Split out for the group-commit
     * coordinator, which batches several transactions' phase-2 work
     * (and their emitted fences) into one window.
     */
    void commitPhase1();

    /** Commit phase 2: deferred frees + log reset (after phase 1). */
    void commitPhase2();

    /** Abort: roll every logged change back, then clear the log. */
    void abort();

    /**
     * Post-crash recovery; call once after reopening the pool. Applies
     * undo (active) or redo of deferred frees (committing) as needed.
     * Validates the on-media log first and throws std::runtime_error
     * (never UB) if the state machine or an entry is corrupt — e.g. a
     * garbage state word, an unknown entry type, or a trailing entry
     * truncated past the log region.
     * @return true if any recovery action was taken.
     */
    bool recover();

    /**
     * Check the on-media log for structural legality: a known state,
     * every published entry in bounds with a known type, targets inside
     * the pool, and the byte count consistent with the entry walk.
     * @throws std::runtime_error describing the first violation.
     */
    void validateLog() const;

    /**
     * Reset the volatile notion of an in-flight transaction after a
     * simulated crash; the on-media state drives recovery from here.
     */
    void markCrashed() { active_ = false; committing_ = false; }

    bool active() const { return active_; }

    /** True between commitPhase1() and commitPhase2(). */
    bool committing() const { return committing_; }

    /** The log-region slot this manager is bound to. */
    uint32_t slot() const { return slot_; }

    uint32_t entryCount() const;

    /** Current on-media state (LogHeader::kIdle/kActive/kCommitting). */
    uint32_t state() const { return readHeader().state; }

    /** Snapshot of one log entry for introspection. */
    struct Record
    {
        uint32_t type;
        uint32_t size;
        uint32_t target_off;
        uint32_t entry_off; ///< pool offset of the entry itself
    };

    /** All current log entries (oldest first). */
    std::vector<Record> records() const;

    /** Pool offset of the most recently appended entry. */
    uint32_t lastEntryOff() const { return lastEntryOff_; }
    /** Total bytes (header + payload) of the most recent entry. */
    uint32_t lastEntryBytes() const { return lastEntryBytes_; }
    /** Pool offset of the log header (for trace emission). */
    uint32_t headerOff() const { return logOff_; }

    /** Bytes still available for log entries. */
    uint32_t remainingCapacity() const;

    /** Bytes of entries currently in the log (a telemetry gauge). */
    uint32_t usedBytes() const { return readHeader().used; }

  private:
    LogHeader readHeader() const;
    void writeState(uint32_t state, uint32_t num, uint32_t used);

    /** Throw std::runtime_error: @p entry_bytes does not fit the log. */
    [[noreturn]] void throwExhausted(const char *api, uint32_t entry_bytes,
                                     const LogHeader &h) const;
    LogEntryHeader readEntryHeader(uint32_t entry_off) const;
    uint32_t entriesBase() const;

    /** Walk entries forward, invoking fn(entry_off, header). */
    template <typename Fn> void forEachEntry(Fn &&fn) const;

    /** Restore snapshots in reverse; free ALLOC blocks. */
    void applyUndo();

    /** Execute deferred frees (idempotent per block). */
    void applyDeferredFrees();

    /** Persist every kData target range (commit step one). */
    void persistDataRanges();

    Pool &pool_;
    PoolAllocator &alloc_;
    uint32_t slot_;
    uint32_t logOff_;
    uint32_t logSize_;
    bool active_ = false;
    bool committing_ = false; ///< between commitPhase1 and commitPhase2
    uint32_t lastEntryOff_ = 0;
    uint32_t lastEntryBytes_ = 0;
};

} // namespace poat

#endif // POAT_PMEM_TX_H
