/**
 * @file
 * Write-ahead undo log: the failure-safety substrate (paper section
 * 2.1.4).
 *
 * Each pool reserves a log region. A transaction snapshots every range
 * it is about to modify (tx_add_range) into the log and makes the
 * snapshot durable *before* the caller mutates the range; allocations
 * and frees inside a transaction are logged so they can be reverted or
 * completed.
 *
 * Commit is two-phase so that deferred frees survive a crash:
 *
 *   active (1)      — undo on recovery: restore data snapshots in
 *                     reverse order, free blocks from ALLOC records.
 *   committing (2)  — the transaction's effects are durable; redo on
 *                     recovery: perform any FREE records not yet done.
 *   idle (0)        — nothing to do.
 *
 * A non-transactional pmalloc interrupted by a crash may leak its block
 * (same contract as NVML non-transactional allocation); everything else
 * is exactly-once.
 */
#ifndef POAT_PMEM_TX_H
#define POAT_PMEM_TX_H

#include <cstdint>

#include "pmem/alloc.h"
#include "pmem/pool.h"

namespace poat {

/** On-media header at the start of a pool's log region. */
struct LogHeader
{
    static constexpr uint32_t kIdle = 0;
    static constexpr uint32_t kActive = 1;
    static constexpr uint32_t kCommitting = 2;

    uint32_t state;
    uint32_t num_entries;
    uint32_t used; ///< bytes of entries written after this header
    uint32_t pad;
};

/** On-media header of one log entry, followed by its payload. */
struct LogEntryHeader
{
    static constexpr uint32_t kData = 1;  ///< payload = old bytes
    static constexpr uint32_t kAlloc = 2; ///< target = allocated payload
    static constexpr uint32_t kFree = 3;  ///< target = deferred free

    uint32_t type;
    uint32_t payload_size;
    uint32_t target_off;
    uint32_t pad;
};

/** Undo-log manager bound to one pool and its allocator. */
class UndoLog
{
  public:
    UndoLog(Pool &pool, PoolAllocator &alloc);

    /** Begin a transaction; nesting is not supported. */
    void begin();

    /**
     * Snapshot [off, off+size) into the log and persist the snapshot.
     * Must be called before the range is modified.
     */
    void addRange(uint32_t off, uint32_t size);

    /** Record that @p payload_off was allocated inside this tx. */
    void logAlloc(uint32_t payload_off);

    /**
     * Record a deferred free of @p payload_off; the block is actually
     * freed during commit, after the commit point is durable.
     */
    void logFree(uint32_t payload_off);

    /** Commit: persist modified ranges, run deferred frees, clear log. */
    void commit();

    /** Abort: roll every logged change back, then clear the log. */
    void abort();

    /**
     * Post-crash recovery; call once after reopening the pool. Applies
     * undo (active) or redo of deferred frees (committing) as needed.
     * @return true if any recovery action was taken.
     */
    bool recover();

    /**
     * Reset the volatile notion of an in-flight transaction after a
     * simulated crash; the on-media state drives recovery from here.
     */
    void markCrashed() { active_ = false; }

    bool active() const { return active_; }
    uint32_t entryCount() const;

    /** Snapshot of one log entry for introspection. */
    struct Record
    {
        uint32_t type;
        uint32_t size;
        uint32_t target_off;
        uint32_t entry_off; ///< pool offset of the entry itself
    };

    /** All current log entries (oldest first). */
    std::vector<Record> records() const;

    /** Pool offset of the most recently appended entry. */
    uint32_t lastEntryOff() const { return lastEntryOff_; }
    /** Total bytes (header + payload) of the most recent entry. */
    uint32_t lastEntryBytes() const { return lastEntryBytes_; }
    /** Pool offset of the log header (for trace emission). */
    uint32_t headerOff() const { return logOff_; }

    /** Bytes still available for log entries. */
    uint32_t remainingCapacity() const;

  private:
    LogHeader readHeader() const;
    void writeState(uint32_t state, uint32_t num, uint32_t used);
    LogEntryHeader readEntryHeader(uint32_t entry_off) const;
    uint32_t entriesBase() const;

    /** Walk entries forward, invoking fn(entry_off, header). */
    template <typename Fn> void forEachEntry(Fn &&fn) const;

    /** Restore snapshots in reverse; free ALLOC blocks. */
    void applyUndo();

    /** Execute deferred frees (idempotent per block). */
    void applyDeferredFrees();

    /** Persist every kData target range (commit step one). */
    void persistDataRanges();

    Pool &pool_;
    PoolAllocator &alloc_;
    uint32_t logOff_;
    uint32_t logSize_;
    bool active_ = false;
    uint32_t lastEntryOff_ = 0;
    uint32_t lastEntryBytes_ = 0;
};

} // namespace poat

#endif // POAT_PMEM_TX_H
