/**
 * @file
 * Persistent pool: storage, on-media layout, and the NVM durability model.
 *
 * A pool is the file-like unit of persistence (paper section 2.1.1). Its
 * on-media layout is self-describing so a pool can be reopened (or
 * recovered after a crash) from its durable image alone:
 *
 *   [ PoolHeader | heap (allocator blocks) ... | undo-log region ]
 *
 * Durability model. The pool keeps two images: `data` (what the program
 * reads/writes — memory + caches) and `durable` (what is actually on
 * NVM). Stores touch only `data` and mark 64-byte lines dirty; CLWB plus
 * a fence makes lines durable. A simulated crash discards `data` in
 * favor of `durable`. Because a real cache may write back a dirty line
 * at any moment, tests can also force random early evictions; correct
 * failure-safe code (the undo log) must tolerate both extremes, which is
 * exactly what the recovery property tests check.
 */
#ifndef POAT_PMEM_POOL_H
#define POAT_PMEM_POOL_H

#include <cstdint>
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "pmem/addrspace.h"
#include "pmem/checksum.h"
#include "pmem/oid.h"

namespace poat {

/**
 * On-media header at offset 0 of every pool, crc32c-sealed and
 * replicated: a second copy lives at kMirrorOff (a different 64-byte
 * line inside the reserved header region), so a media fault in either
 * copy repairs from the other. Every header update writes and persists
 * both copies, primary first; on conflict between two *valid* copies
 * the primary wins (it is the commit point of a header update).
 */
struct PoolHeader
{
    static constexpr uint64_t kMagic = 0x504f41545f504f4cull; // "POAT_POL"
    static constexpr uint32_t kVersion = 2; ///< v2: crc + mirror
    /** Offset of the mirror copy (line 2 of the reserved header). */
    static constexpr uint32_t kMirrorOff = 128;

    uint64_t magic;
    uint32_t version;
    uint32_t pool_id;   ///< system-wide id; informational on media
    uint64_t pool_size; ///< total bytes including header and log
    uint32_t root_off;  ///< offset of root object payload; 0 = unset
    uint32_t root_size;
    uint32_t heap_off;  ///< first allocator block
    uint32_t heap_size;
    uint32_t log_off;   ///< undo-log region
    uint32_t log_size;
    uint32_t crc;       ///< crc32c over all preceding fields

    /**
     * Undo-log slot count, self-checked: the low half carries the
     * count, the high half its complement (encodeLogSlots). 0 — the
     * value every pool written before multi-slot logs existed carries —
     * decodes as one slot, so old images open unchanged. The field
     * sits after `crc` deliberately: it is outside the sealed region
     * (its complement is its own integrity check), so single-slot
     * pools stay byte- and checksum-identical to pre-slot ones.
     */
    uint32_t pad;

    /** Largest supported undo-log slot count (one per worker thread). */
    static constexpr uint32_t kMaxLogSlots = 256;

    /** Encode @p slots for `pad`; 1 slot encodes as legacy 0. */
    static constexpr uint32_t
    encodeLogSlots(uint32_t slots)
    {
        return slots <= 1 ? 0u
                          : (slots | ((slots ^ 0xffffu) << 16));
    }

    /**
     * Decode `pad` into a slot count. Anything that fails the
     * complement self-check or the range [1, kMaxLogSlots] reads as
     * one slot — the legacy layout — never as garbage geometry.
     */
    static constexpr uint32_t
    decodeLogSlots(uint32_t pad_value)
    {
        const uint32_t lo = pad_value & 0xffffu;
        const uint32_t hi = pad_value >> 16;
        if (pad_value == 0 || (lo ^ 0xffffu) != hi || lo < 2 ||
            lo > kMaxLogSlots) {
            return 1;
        }
        return lo;
    }

    /** CRC over every field before `crc`. */
    uint32_t
    computeCrc() const
    {
        return crc32c(this, offsetof(PoolHeader, crc));
    }
    bool crcValid() const { return crc == computeCrc(); }
    void seal() { crc = computeCrc(); }
    /** Full validity: sealed, magic, and sized for @p image_size. */
    bool
    valid(uint64_t image_size) const
    {
        return crcValid() && magic == kMagic && pool_size == image_size;
    }
};

static_assert(sizeof(PoolHeader) == 56);
static_assert(PoolHeader::kMirrorOff >= kLineSize &&
              PoolHeader::kMirrorOff % kLineSize == 0);

/** How CLWB interacts with the durable image (see file comment). */
enum class DurabilityPolicy : uint8_t
{
    Eager,  ///< CLWB writes the line back immediately (fence is ordering)
    Strict, ///< lines become durable only when a fence retires the CLWB
};

/** Why a dirty line is crossing into the durable image. */
enum class WriteBackCause : uint8_t
{
    Clwb,  ///< CLWB under the Eager policy
    Fence, ///< a fence retiring a staged CLWB (Strict policy)
    Evict, ///< simulated cache pressure (evictRandomLines)
};

class Pool;

/**
 * Fault-injection hook on the durability path.
 *
 * Every 64-byte line write-back into the durable image — the only way
 * data ever becomes persistent — first consults the installed hook.
 * Returning true lets the write-back happen; returning false suppresses
 * the durable copy while all volatile bookkeeping (dirty/staged sets)
 * proceeds unchanged, so the program's execution after a suppressed
 * write-back is bit-identical to an uninjected run. A crash-point
 * explorer uses this to freeze the durable image after the first k
 * events and then simulate power failure (see src/fault/).
 *
 * The word-granular entry point onWriteBackWords() refines the veto to
 * a bitmask over the line's eight 8-byte words, modeling a write-back
 * torn by the power failure itself: the masked-in words reach media,
 * the rest keep their old durable contents. The default implementation
 * delegates to onWriteBack(), so boolean hooks keep their exact
 * semantics (all words or none).
 */
class DurabilityHook
{
  public:
    /** All eight 8-byte words of a 64-byte line (an untorn write-back). */
    static constexpr uint8_t kFullLineMask = 0xff;

    virtual ~DurabilityHook() = default;

    /** Called before line @p line of @p pool is made durable. */
    virtual bool onWriteBack(Pool &pool, uint32_t line,
                             WriteBackCause cause) = 0;

    /**
     * Word-granular veto: bit w of the returned mask persists bytes
     * [8w, 8w+8) of the line. kFullLineMask is an ordinary write-back,
     * 0 a full suppression, anything else a torn line. Pool calls only
     * this entry point; the default routes to onWriteBack().
     */
    virtual uint8_t
    onWriteBackWords(Pool &pool, uint32_t line, WriteBackCause cause)
    {
        return onWriteBack(pool, line, cause) ? kFullLineMask : 0;
    }

    /**
     * Called by Pool::fence() under the Strict policy, before the first
     * write-back of a drain, with the full staged-line set about to be
     * retired (sorted ascending). The onWriteBackWords() calls that
     * follow — one per listed line, in the listed order, all with cause
     * Fence — are a single drain batch: hardware gives them no ordering
     * until the fence retires, so a real power failure mid-drain
     * persists an arbitrary subset. Not called for an empty staged set.
     */
    virtual void onFenceDrainBegin(Pool &pool,
                                   const std::vector<uint32_t> &pending)
    {
        (void)pool;
        (void)pending;
    }
};

/**
 * A persistent memory pool.
 *
 * Pool does storage and durability only; it emits no trace events and
 * applies no policy. Allocation lives in PoolAllocator, transactions in
 * UndoLog, and instruction accounting in PmemRuntime.
 */
class Pool
{
  public:
    /** Fraction of a fresh pool reserved for the undo log. */
    static constexpr uint32_t kDefaultLogSize = 64 * 1024;
    static constexpr uint32_t kHeaderSize = 256;
    /** Minimum total size that leaves room for header, heap, and log. */
    static constexpr uint64_t kMinSize = kHeaderSize + 4096 + kDefaultLogSize;

    /**
     * Create a fresh pool image.
     *
     * @param name User-visible pool name (like a file name).
     * @param pool_id System-wide id assigned by the registry; nonzero.
     * @param size Total pool bytes; clamped to [kMinSize, 4 GB].
     * @param log_size Bytes reserved for the undo-log region.
     * @param log_slots Undo-log slots the region is carved into (one
     *        per concurrent worker thread); 1 = the classic layout,
     *        byte-identical to pools created before slots existed.
     */
    Pool(std::string name, uint32_t pool_id, uint64_t size,
         uint32_t log_size = kDefaultLogSize, uint32_t log_slots = 1);

    /**
     * Reopen a pool from a durable image (recovery path). The image
     * becomes both the durable and the working copy. The superblock is
     * checksum-verified: a corrupt primary repairs from the mirror
     * (and vice versa, during the scrub pass that follows).
     * @throws MediaError if both superblock copies are corrupt.
     */
    Pool(std::string name, uint32_t pool_id,
         std::vector<uint8_t> durable_image);

    const std::string &name() const { return name_; }
    uint32_t id() const { return id_; }
    uint64_t size() const { return data_.size(); }
    const PoolHeader &header() const { return cachedHeader_; }

    /** Undo-log slots this pool's log region is carved into (>= 1). */
    uint32_t logSlots() const
    {
        return PoolHeader::decodeLogSlots(cachedHeader_.pad);
    }

    /** Virtual base address where this pool is currently mapped. */
    uint64_t vbase() const { return vbase_; }
    void setVbase(uint64_t vbase) { vbase_ = vbase; }

    /** Simulated virtual address of byte @p off within the pool. */
    uint64_t vaddrOf(uint32_t off) const { return vbase_ + off; }

    /** ObjectID of byte @p off within the pool. */
    ObjectID oidOf(uint32_t off) const { return ObjectID(id_, off); }

    /// @name Raw access (volatile image; marks dirty lines)
    /// @{
    void writeRaw(uint32_t off, const void *src, size_t n);
    void readRaw(uint32_t off, void *dst, size_t n) const;

    template <typename T>
    T
    readAs(uint32_t off) const
    {
        T v;
        readRaw(off, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    writeAs(uint32_t off, const T &v)
    {
        writeRaw(off, &v, sizeof(T));
    }
    /// @}

    /// @name Durability (CLWB / SFENCE semantics)
    /// @{
    /** CLWB the line containing @p off. */
    void clwb(uint32_t off);

    /** SFENCE: all CLWB'd lines are durable after this returns. */
    void fence();

    /** Convenience: CLWB every line in [off, off+n) then fence. */
    void persist(uint32_t off, size_t n);

    /** Number of lines spanned by [off, off+n): the CLWB count. */
    static uint32_t lineSpan(uint32_t off, size_t n);

    /**
     * Simulate cache pressure: each currently dirty, un-flushed line is
     * independently written back with probability @p num/@p den.
     * Failure-safe code must remain correct under any such schedule.
     */
    void evictRandomLines(Rng &rng, uint64_t num, uint64_t den);

    /** Simulate power failure: the working image reverts to durable. */
    void crash();

    /** Copy of the durable image (for offline recovery testing). */
    std::vector<uint8_t> durableImage() const { return durable_; }

    /**
     * Zero-copy view of the durable image. Valid until the next
     * durability-affecting call on this pool (write-back, crash,
     * destruction); callers that need the bytes to outlive the pool
     * must use durableImage().
     */
    const std::vector<uint8_t> &durableView() const { return durable_; }

    /**
     * Install (or with nullptr, remove) the fault-injection hook on
     * this pool's durability path. Not owned; must outlive the pool or
     * be removed first.
     */
    void setDurabilityHook(DurabilityHook *hook) { hook_ = hook; }
    DurabilityHook *durabilityHook() const { return hook_; }

    void setDurabilityPolicy(DurabilityPolicy p) { policy_ = p; }
    DurabilityPolicy durabilityPolicy() const { return policy_; }

    /** Count of lines dirty in cache and not yet written back. */
    size_t dirtyLineCount() const { return dirty_.size(); }

    /**
     * Lines CLWB'd but not yet retired by a fence (Strict policy),
     * sorted ascending — the set a fence would drain right now. Always
     * empty under the Eager policy.
     */
    std::vector<uint32_t> stagedLines() const;
    /// @}

    /** Re-read the cached header copy from the working image. */
    void refreshHeader();

    /**
     * Seal @p h and write both superblock copies (primary then mirror)
     * into the working image; the caller persists them. Also updates
     * the cached header.
     */
    void storeHeader(PoolHeader h);

    /** Persist both superblock copies (after storeHeader). */
    void persistHeader();

    /**
     * Media-fault injection: overwrite @p n bytes at @p off of the
     * DURABLE image directly, bypassing the store/CLWB path — the model
     * of NVM losing or corrupting bits at rest. Call crash() afterwards
     * to expose the corruption to the working image, as a reboot would.
     */
    void corruptDurable(uint32_t off, const void *src, size_t n);

    /**
     * Host-side checksum work accounting. Each pool defaults to a
     * private counter block; the registry points all of its pools at
     * one shared block so `pmem.checksum.*` aggregates per process.
     */
    ChecksumCounters &checksumCounters()
    {
        return counters_ ? *counters_ : ownCounters_;
    }

    /**
     * Point this pool at a shared counter block (nullptr reverts to the
     * private one). Work already counted privately — e.g. header seals
     * during construction, before the registry wires the shared block —
     * is folded into @p c so nothing is lost.
     */
    void
    setChecksumCounters(ChecksumCounters *c)
    {
        if (c && counters_ != c) {
            c->merge(ownCounters_);
            ownCounters_ = ChecksumCounters{};
        }
        counters_ = c;
    }

  private:
    void writeBackLine(uint32_t line, WriteBackCause cause);

    std::string name_;
    uint32_t id_;
    uint64_t vbase_ = 0;
    std::vector<uint8_t> data_;    ///< working image (memory + caches)
    std::vector<uint8_t> durable_; ///< NVM image
    std::unordered_set<uint32_t> dirty_;  ///< lines modified, not flushed
    std::unordered_set<uint32_t> staged_; ///< lines CLWB'd, fence pending
    DurabilityPolicy policy_ = DurabilityPolicy::Eager;
    DurabilityHook *hook_ = nullptr; ///< not owned; may be null
    PoolHeader cachedHeader_{};
    ChecksumCounters ownCounters_{};
    ChecksumCounters *counters_ = nullptr; ///< shared block, if any
};

} // namespace poat

#endif // POAT_PMEM_POOL_H
