/**
 * @file
 * Software ObjectID translation: the paper's oid_direct (Figure 3).
 *
 * This is the BASE system's translation path and the cost the proposed
 * hardware removes. It follows NVML's strategy exactly: a most-recent
 * (pool id, base address) predictor pair in globals, backed by a hash
 * map from pool id to mapped base address. Besides *performing* the
 * translation, translate() emits the dynamic instruction stream of the
 * corresponding -O2 compiled code — including the real memory references
 * to the predictor globals and hash-chain nodes, which is what creates
 * the extra cache pressure the paper attributes to software translation.
 *
 * Instruction-count anchors (paper Table 2): a predictor hit costs
 * exactly 17 instructions; a full lookup costs ~95-110 depending on the
 * hash-chain probe count. tests/pmem/translate_test.cc pins both.
 */
#ifndef POAT_PMEM_TRANSLATE_H
#define POAT_PMEM_TRANSLATE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/stats.h"
#include "pmem/addrspace.h"
#include "pmem/oid.h"
#include "pmem/trace.h"

namespace poat {

/** NVML-style software translator with last-value prediction. */
class SoftwareTranslator
{
  public:
    /** Buckets in the pool-id hash map (power of two). */
    static constexpr uint32_t kBuckets = 1024;

    /**
     * @param space Address space used to place the translator's own
     *              data (globals, bucket array, chain nodes) so its
     *              memory traffic has realistic virtual addresses.
     */
    explicit SoftwareTranslator(AddressSpace &space);

    /** Register a mapped pool (called from pool_create/pool_open). */
    void addPool(uint32_t pool_id, uint64_t vbase);

    /** Deregister a pool (called from pool_close). */
    void removePool(uint32_t pool_id);

    /**
     * Translate @p oid to a virtual address, emitting the oid_direct
     * instruction stream into @p sink. Fatal if the pool is unknown
     * (the paper treats this as a program error).
     *
     * @param value_tag If non-null, receives the value tag of the base-
     *        address load, so callers can express that a subsequent data
     *        access's address depends on the translation result.
     */
    uint64_t translate(ObjectID oid, TraceSink &sink,
                       uint64_t *value_tag = nullptr);

    /** Translate without emitting anything (host-side convenience). */
    uint64_t translateQuiet(ObjectID oid) const;

    /// @name Statistics for Table 2
    /// @{
    uint64_t calls() const { return calls_; }
    uint64_t predictorMisses() const { return misses_; }
    uint64_t instructionsEmitted() const { return insns_; }
    uint64_t probesTotal() const { return probes_; }

    double
    avgInstructionsPerCall() const
    {
        return calls_ ? static_cast<double>(insns_) / calls_ : 0.0;
    }

    double
    predictorMissRate() const
    {
        return calls_ ? static_cast<double>(misses_) / calls_ : 0.0;
    }

    /** Distribution of emitted instructions per translate() call. */
    const Histogram &insnsPerCallHistogram() const { return insnHist_; }

    /**
     * Publish this translator's counters and histograms into @p reg
     * under "@p prefix." (e.g. "sw_translate.calls").
     */
    void fillStats(StatsRegistry &reg,
                   const std::string &prefix = "sw_translate") const;

    void resetStats();
    /// @}

    /** Forget the most-recent translation (e.g., across phases). */
    void invalidatePredictor() { recentValid_ = false; }

    /**
     * Disable the most-recent-translation predictor entirely: every
     * call takes the full hash-lookup path. Models an NVML-like
     * library without the last-value optimization (ablation).
     */
    void setPredictorEnabled(bool on) { predictorEnabled_ = on; }
    bool predictorEnabled() const { return predictorEnabled_; }

    size_t poolCount() const { return pools_.size(); }

  private:
    struct PoolInfo
    {
        uint64_t base;      ///< mapped virtual base of the pool
        uint64_t nodeVaddr; ///< vaddr of this pool's hash-chain node
    };

    static uint32_t bucketOf(uint32_t pool_id);

    AddressSpace &space_;
    uint64_t rtBase_;       ///< base of the translator's data segment
    uint64_t nodeBump_;     ///< bump pointer for chain-node vaddrs

    std::unordered_map<uint32_t, PoolInfo> pools_;
    std::vector<std::vector<uint32_t>> chains_; ///< bucket -> pool ids

    // Most-recent-translation predictor (the paper's globals).
    bool predictorEnabled_ = true;
    bool recentValid_ = false;
    uint32_t recentId_ = 0;
    uint64_t recentBase_ = 0;

    uint64_t calls_ = 0;
    uint64_t misses_ = 0;
    uint64_t insns_ = 0;
    uint64_t probes_ = 0;
    Histogram insnHist_; ///< emitted instructions per call
};

} // namespace poat

#endif // POAT_PMEM_TRANSLATE_H
