/**
 * @file
 * Dynamic-instruction cost model for library internals.
 *
 * The paper instrumented real x86 binaries with Pin; poat instead
 * executes the library natively and *emits* the instruction stream each
 * operation would have executed. The constants here fix the ALU filler
 * between the memory references and branches that are emitted explicitly
 * (those are real: every load/store in the stream corresponds to an
 * actual data access the operation performs).
 *
 * Calibration anchor: paper Table 2 measures oid_direct at ~17 dynamic
 * instructions when the most-recent-pool predictor hits and ~95-110 when
 * the hash lookup runs. The translation-path constants below are chosen
 * so a CountingTraceSink reproduces those numbers; tests/pmem
 * translate_test pins them. The remaining constants are estimates of
 * -O2 x86 instruction counts for the corresponding NVML code paths; all
 * compared configurations share them, so results are insensitive to
 * their absolute values.
 */
#ifndef POAT_PMEM_COSTS_H
#define POAT_PMEM_COSTS_H

#include <cstdint>

namespace poat {
namespace costs {

/// @name oid_direct (software translation; see SoftwareTranslator)
/// @{
/** Caller-side call sequence: argument setup + call. */
inline constexpr uint32_t kTranslateCall = 3;
/** Function entry + pool-id extraction (shift/mask). */
inline constexpr uint32_t kTranslateEntry = 2;
/** Compare/test ALU per predictor check (valid, then id). */
inline constexpr uint32_t kTranslateCmp = 1;
/** Offset mask + base add on the hit path. */
inline constexpr uint32_t kTranslateAdd = 2;
/** Return sequence (epilogue ALU; the ret itself is a branch event). */
inline constexpr uint32_t kTranslateRet = 2;
/** Hash computation + map-call overhead on the miss path. */
inline constexpr uint32_t kTranslateHash = 82;
/** ALU per hash-chain probe (compare + advance). */
inline constexpr uint32_t kTranslateProbe = 2;
/** Predictor-global update ALU on the miss path. */
inline constexpr uint32_t kTranslateUpdate = 2;
/// @}

/// @name Allocator (pmalloc / pfree)
/// @{
/** Free-list search and bookkeeping for pmalloc. */
inline constexpr uint32_t kPmalloc = 60;
/** Coalescing and bookkeeping for pfree. */
inline constexpr uint32_t kPfree = 45;
/// @}

/// @name Transactions (undo log)
/// @{
/** tx_begin: log-header reset + setup. */
inline constexpr uint32_t kTxBegin = 30;
/** tx_add_range fixed part (entry header construction, capacity). */
inline constexpr uint32_t kTxAddRange = 40;
/** tx_end fixed part (walk + commit-point publication). */
inline constexpr uint32_t kTxEnd = 50;
/// @}

/// @name Pool management
/// @{
/** pool_create / pool_open syscall-and-setup cost. */
inline constexpr uint32_t kPoolOpen = 400;
/** pool_close cost. */
inline constexpr uint32_t kPoolClose = 200;
/** pool_root lookup cost. */
inline constexpr uint32_t kPoolRoot = 10;
/// @}

/** persist(): loop setup before the per-line CLWBs. */
inline constexpr uint32_t kPersistSetup = 6;

/// @name Checksums (crc32c sealing of on-media metadata)
/// @{
/** Fixed setup of one crc32c computation (seed load, loop entry). */
inline constexpr uint32_t kCrcSetup = 5;
/** ALU per 8-byte word through the hardware crc32 instruction. */
inline constexpr uint32_t kCrcPerWord = 1;

/** Dynamic instructions to checksum @p bytes (one crc32c call). */
inline constexpr uint32_t
crcCost(uint32_t bytes)
{
    return kCrcSetup + kCrcPerWord * ((bytes + 7) / 8);
}

/** Sealing one 16-byte structure header (block / log headers). */
inline constexpr uint32_t kCrcHeader = crcCost(12);
/// @}

} // namespace costs
} // namespace poat

#endif // POAT_PMEM_COSTS_H
