#include "pmem/scrub.h"

#include <cstring>
#include <vector>

#include "common/bits.h"

namespace poat {

namespace {

/**
 * Repair a replicated structure pair: if exactly one copy is valid,
 * copy it over the other; if both are valid but disagree (a crash
 * between the two line write-backs), the primary wins and the mirror is
 * resynced — the primary write-back is the commit point of an update.
 * @return true if a repair/resync was persisted.
 * @throws MediaError (via @p both_bad) when neither copy is usable.
 */
template <typename T, typename ValidFn, typename BothBadFn>
bool
repairPair(Pool &pool, uint32_t prim_off, uint32_t mirr_off,
           ValidFn &&valid, BothBadFn &&both_bad, ScrubStats &st)
{
    T prim{}, mirr{};
    pool.readRaw(prim_off, &prim, sizeof(T));
    pool.readRaw(mirr_off, &mirr, sizeof(T));
    st.structures_checked += 2;
    pool.checksumCounters().verifies += 2;

    const bool pok = valid(prim);
    const bool mok = valid(mirr);
    if (pok && mok) {
        if (std::memcmp(&prim, &mirr, sizeof(T)) == 0)
            return false;
        pool.writeRaw(mirr_off, &prim, sizeof(T));
        pool.persist(mirr_off, sizeof(T));
        return true;
    }
    st.corruptions_detected += 1;
    if (!pok && !mok)
        both_bad();
    const T &good = pok ? prim : mirr;
    const uint32_t bad_off = pok ? mirr_off : prim_off;
    pool.writeRaw(bad_off, &good, sizeof(T));
    pool.persist(bad_off, sizeof(T));
    return true;
}

void
scrubSuperblock(Pool &pool, ScrubStats &st)
{
    const bool repaired = repairPair<PoolHeader>(
        pool, 0, PoolHeader::kMirrorOff,
        [&](const PoolHeader &h) { return h.valid(pool.size()); },
        [&]() -> void {
            throw MediaError(pool.name(), 0, MediaStructure::Superblock,
                             "both superblock copies are corrupt");
        },
        st);
    if (repaired)
        st.superblock_repairs += 1;
    pool.refreshHeader();
}

void
scrubLogHeaders(Pool &pool, ScrubStats &st)
{
    // One independent header state machine per undo-log slot (one slot
    // per worker thread; single-slot pools have exactly one).
    const PoolHeader &ph = pool.header();
    for (uint32_t s = 0; s < UndoLog::slotCount(ph); ++s) {
        const uint32_t log_off = UndoLog::slotOffset(ph, s);
        const bool repaired = repairPair<LogHeader>(
            pool, log_off, log_off + LogHeader::kMirrorLineOff,
            [](const LogHeader &h) {
                return h.crcValid() && h.state <= LogHeader::kCommitting;
            },
            [&]() -> void {
                throw MediaError(pool.name(), log_off,
                                 MediaStructure::LogHeader,
                                 "both log header copies are corrupt");
            },
            st);
        if (repaired)
            st.log_header_repairs += 1;
    }
}

/** A trusted view of one published log record (post log scrub). */
struct LogRecord
{
    uint32_t type;
    uint32_t target_off;
    uint32_t payload_size;
    uint32_t alloc_size;
};

/**
 * Checksum-walk the published log entries; dead snapshot payloads of a
 * committing transaction are resealed, anything else corrupt is fatal
 * (the snapshot bytes have no replica to repair from).
 * @return the trusted records, for heap-header reconstruction.
 */
void
scrubSlotEntries(Pool &pool, uint32_t log_off, uint32_t log_size,
                 std::vector<LogRecord> &records, ScrubStats &st)
{
    LogHeader lh{};
    pool.readRaw(log_off, &lh, sizeof(lh));
    if (lh.num_entries == 0)
        return;

    const uint32_t end = log_off + log_size;
    uint32_t off = log_off + LogHeader::kEntriesOff;
    for (uint32_t i = 0; i < lh.num_entries; ++i) {
        if (off + sizeof(LogEntryHeader) > end) {
            st.corruptions_detected += 1;
            throw MediaError(pool.name(), off, MediaStructure::LogEntry,
                             "entry " + std::to_string(i) +
                                 " truncated past the log region");
        }
        LogEntryHeader eh{};
        pool.readRaw(off, &eh, sizeof(eh));
        st.structures_checked += 1;
        pool.checksumCounters().verifies += 1;
        if (!eh.hdrCrcValid()) {
            // Without the header the walk cannot even size this entry;
            // and an active transaction's undo needs it verbatim.
            st.corruptions_detected += 1;
            throw MediaError(pool.name(), off, MediaStructure::LogEntry,
                             "entry " + std::to_string(i) +
                                 " header checksum mismatch");
        }
        const uint32_t entry_bytes =
            static_cast<uint32_t>(sizeof(LogEntryHeader)) +
            static_cast<uint32_t>(alignUp(eh.payload_size, 16));
        if (off + entry_bytes > end) {
            st.corruptions_detected += 1;
            throw MediaError(pool.name(), off, MediaStructure::LogEntry,
                             "entry " + std::to_string(i) +
                                 " payload truncated past the log region");
        }
        if (eh.payload_size != 0) {
            std::vector<uint8_t> payload(eh.payload_size);
            pool.readRaw(off + sizeof(LogEntryHeader), payload.data(),
                         payload.size());
            pool.checksumCounters().verifies += 1;
            if (eh.data_crc != crc32c(payload.data(), payload.size(),
                                      LogEntryHeader::kCrcSeed)) {
                st.corruptions_detected += 1;
                if (lh.state == LogHeader::kCommitting &&
                    eh.type == LogEntryHeader::kData) {
                    // The commit point is durable: this snapshot is
                    // dead (recovery only redoes FREEs). Reseal it so
                    // the log validates clean again.
                    eh.data_crc = crc32c(payload.data(), payload.size(),
                                         LogEntryHeader::kCrcSeed);
                    eh.seal();
                    pool.writeRaw(off, &eh, sizeof(eh));
                    pool.persist(off, sizeof(eh));
                    st.log_entry_repairs += 1;
                } else {
                    throw MediaError(
                        pool.name(), off, MediaStructure::LogEntry,
                        "entry " + std::to_string(i) +
                            " snapshot payload checksum mismatch "
                            "(undo data unrecoverable)");
                }
            }
        }
        records.push_back(
            {eh.type, eh.target_off, eh.payload_size, eh.alloc_size});
        off += entry_bytes;
    }
}

/**
 * Walk every log slot's published entries and merge their trusted
 * records: a multi-slot pool crashed mid-flight can hold several
 * independent transactions' records, all of which prove liveness for
 * heap-header reconstruction.
 */
std::vector<LogRecord>
scrubLogEntries(Pool &pool, ScrubStats &st)
{
    std::vector<LogRecord> records;
    const PoolHeader &ph = pool.header();
    for (uint32_t s = 0; s < UndoLog::slotCount(ph); ++s) {
        scrubSlotEntries(pool, UndoLog::slotOffset(ph, s),
                         UndoLog::slotSize(ph), records, st);
    }
    return records;
}

/**
 * Does some published log record prove the block at @p block_off (with
 * payload [block_off+16, block_off+size)) was live at the crash? An
 * ALLOC or FREE record names the payload directly; a DATA snapshot of
 * any range inside the payload proves a live object too.
 */
bool
provenAllocated(const std::vector<LogRecord> &records, uint32_t block_off,
                uint32_t size)
{
    const uint32_t payload = block_off +
        static_cast<uint32_t>(sizeof(BlockHeader));
    const uint32_t payload_end = block_off + size;
    for (const LogRecord &r : records) {
        if (r.target_off == payload)
            return true;
        if (r.type == LogEntryHeader::kData && r.target_off >= payload &&
            static_cast<uint64_t>(r.target_off) + r.payload_size <=
                payload_end) {
            return true;
        }
    }
    return false;
}

void
scrubHeap(Pool &pool, const std::vector<LogRecord> &records,
          ScrubStats &st)
{
    const PoolHeader &ph = pool.header();
    const uint32_t heap_off = ph.heap_off;
    const uint32_t heap_end = ph.heap_off + ph.heap_size;

    // A heap that was never formatted (no allocator ever attached, and
    // no root published) is all zeros: nothing to scrub, the allocator
    // will format it on attach.
    {
        BlockHeader first{};
        pool.readRaw(heap_off, &first, sizeof(first));
        if (ph.root_off == 0 && first.size == 0 && first.prev_size == 0 &&
            first.flags == 0 && first.crc == 0) {
            return;
        }
    }

    uint32_t off = heap_off;
    uint32_t prev_size = 0;
    bool prev_allocated = false;
    while (off < heap_end) {
        BlockHeader h{};
        pool.readRaw(off, &h, sizeof(h));
        st.structures_checked += 1;
        pool.checksumCounters().verifies += 1;
        const bool ok = h.crcValid() && h.size >= PoolAllocator::kMinBlock &&
            off + static_cast<uint64_t>(h.size) <= heap_end;
        if (!ok) {
            st.corruptions_detected += 1;
            // Extent reconstruction: the next block's header back-links
            // to us via prev_size, so scan forward for a valid header
            // whose back-link lands exactly here. Failing that, accept
            // a back-link that spans the corrupt block and lands on the
            // PREVIOUS block's start: that successor last saw a single
            // block covering both, i.e. the corrupt header is a
            // remainder an alloc split freshly carved and the
            // successor's prev_size update has not persisted yet. No
            // match of either kind means this was the last block.
            const uint32_t prev_off = off - prev_size;
            uint32_t size = 0;
            bool stale_span = false;
            for (int pass = 0; pass < 2 && size == 0; ++pass) {
                for (uint32_t cand = off + PoolAllocator::kMinBlock;
                     cand + sizeof(BlockHeader) <= heap_end;
                     cand += PoolAllocator::kAlign) {
                    BlockHeader next{};
                    pool.readRaw(cand, &next, sizeof(next));
                    const uint32_t want =
                        pass == 0 ? cand - off : cand - prev_off;
                    if (next.crcValid() &&
                        cand + static_cast<uint64_t>(next.size) <=
                            heap_end &&
                        next.prev_size == want) {
                        size = cand - off;
                        stale_span = pass == 1;
                        break;
                    }
                }
            }
            if (size == 0 && heap_end - off >= PoolAllocator::kMinBlock)
                size = heap_end - off;
            if (size == 0) {
                throw MediaError(pool.name(), off,
                                 MediaStructure::BlockHeader,
                                 "block header checksum mismatch and no "
                                 "reconstructible extent");
            }
            // Liveness: three independent proofs, strongest first.
            // (1) The crc is word-atomic and seals one version's
            //     (size, flags): if it validates the reconstructed
            //     extent under one flags candidate, that version's
            //     whole sealed word is recovered.
            // (2) The observed (size, flags) word is itself atomic —
            //     a torn write interleaves versions, it does not
            //     invent words — so if its size agrees with the
            //     reconstructed extent, its flags are that version's
            //     truth.
            // (3) A published log record naming the payload proves a
            //     live allocation.
            // Anything else diagnoses instead of guessing, because a
            // wrong guess is a silent leak or a silent data loss.
            bool have_flags = false;
            uint32_t flags = 0;
            for (uint32_t cand : {BlockHeader::kAllocated, 0u}) {
                BlockHeader t{};
                t.size = size;
                t.flags = cand;
                pool.checksumCounters().verifies += 1;
                if (h.crc == t.computeCrc()) {
                    flags = cand;
                    have_flags = true;
                    break;
                }
            }
            if (!have_flags && h.size == size) {
                flags = h.flags & BlockHeader::kAllocated;
                have_flags = true;
            }
            if (!have_flags && provenAllocated(records, off, size)) {
                flags = BlockHeader::kAllocated;
                have_flags = true;
            }
            // (4) Two signatures of an interrupted alloc split, whose
            //     freshly carved remainder is the one header rules 1-3
            //     cannot speak for (its old bytes never held a header):
            //     a stale spanning back-link — the successor last saw a
            //     single block covering predecessor + this one, and
            //     blocks only shrink when a free block is carved into
            //     an allocated head plus a free remainder — or an
            //     all-zero sealed word, which is the old image of
            //     never-written space (a torn write interleaves old and
            //     new words; a live block's header word is never zero).
            //     Either way the predecessor must be the freshly
            //     allocated head, and the remainder is rebuilt free.
            if (!have_flags &&
                (stale_span || (h.size == 0 && h.flags == 0)) &&
                off > heap_off && prev_allocated) {
                flags = 0;
                have_flags = true;
            }
            if (!have_flags) {
                throw MediaError(
                    pool.name(), off, MediaStructure::BlockHeader,
                    "block header checksum mismatch (extent " +
                        std::to_string(size) +
                        " bytes recovered, but neither the torn "
                        "header's words nor any log record proves "
                        "the block's liveness)");
            }
            BlockHeader rebuilt{};
            rebuilt.size = size;
            rebuilt.prev_size = prev_size;
            rebuilt.flags = flags;
            rebuilt.seal();
            pool.checksumCounters().block_header_updates += 1;
            pool.writeRaw(off, &rebuilt, sizeof(rebuilt));
            pool.persist(off, sizeof(rebuilt));
            st.block_header_repairs += 1;
            h = rebuilt;
        } else if (h.prev_size != prev_size) {
            // prev_size lives outside the sealed word on purpose: a
            // torn neighbour update legitimately leaves it stale while
            // the header stays valid. The walk knows the truth.
            h.prev_size = prev_size;
            h.seal();
            pool.checksumCounters().block_header_updates += 1;
            pool.writeRaw(off, &h, sizeof(h));
            pool.persist(off, sizeof(h));
            st.block_header_repairs += 1;
        }
        prev_size = h.size;
        prev_allocated = h.allocated();
        off += h.size;
    }
    if (off != heap_end) {
        throw MediaError(pool.name(), off, MediaStructure::BlockHeader,
                         "heap block chain overruns the region");
    }
}

} // namespace

ScrubStats
scrubPool(Pool &pool)
{
    ScrubStats st;
    scrubSuperblock(pool, st);
    scrubLogHeaders(pool, st);
    const std::vector<LogRecord> records = scrubLogEntries(pool, st);
    scrubHeap(pool, records, st);
    return st;
}

} // namespace poat
