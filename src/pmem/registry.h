/**
 * @file
 * Process-level pool registry: pool_create / pool_open / pool_close.
 *
 * The registry plays the role of the OS plus filesystem for pools: it
 * assigns system-wide pool ids at creation, keeps durable images of
 * closed pools (the "disk"), maps open pools at randomized virtual bases
 * through the AddressSpace, and attaches each open pool's allocator and
 * undo log. Reopening a pool runs the allocator's self-healing scan and
 * undo-log recovery, so a crash-then-open cycle lands on a consistent
 * image.
 */
#ifndef POAT_PMEM_REGISTRY_H
#define POAT_PMEM_REGISTRY_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "pmem/addrspace.h"
#include "pmem/alloc.h"
#include "pmem/pool.h"
#include "pmem/scrub.h"
#include "pmem/tx.h"

namespace poat {

/**
 * An open pool bundled with its runtime helpers.
 *
 * Concurrency: a pool created with log_slots > 1 gets one UndoLog per
 * slot — `log` is slot 0 (so all single-threaded code keeps its exact
 * shape) and extra_logs holds slots 1..n-1. Worker thread t drives
 * slot t, giving each concurrent transaction a private write-ahead log
 * carved from the shared region.
 */
struct OpenPool
{
    /** Create-fresh constructor. */
    OpenPool(std::string name, uint32_t id, uint64_t size,
             uint32_t log_size, uint32_t log_slots = 1)
        : pool(std::move(name), id, size, log_size, log_slots),
          alloc(pool), log(pool, alloc)
    {
        makeExtraLogs();
    }

    /**
     * Reopen-from-image constructor: scrubs the image for media faults
     * (repairing or throwing MediaError), then runs the allocator scan.
     */
    OpenPool(std::string name, uint32_t id, std::vector<uint8_t> image)
        : pool(std::move(name), id, std::move(image)),
          alloc(scrubbed(pool, open_scrub)), log(pool, alloc)
    {
        makeExtraLogs();
    }

    Pool pool;
    /** Results of the reopen-time scrub (zeros for a created pool). */
    ScrubStats open_scrub{};
    PoolAllocator alloc;
    UndoLog log; ///< slot 0; the only slot of a single-slot pool
    /** Undo-log slots 1..n-1 of a multi-slot pool (stable addresses). */
    std::vector<std::unique_ptr<UndoLog>> extra_logs;

    /** Undo-log slots this pool carries (>= 1). */
    uint32_t logSlotCount() const
    {
        return 1 + static_cast<uint32_t>(extra_logs.size());
    }

    /** The UndoLog bound to @p slot (0 = `log`). */
    UndoLog &
    logSlot(uint32_t slot)
    {
        POAT_ASSERT(slot < logSlotCount(), "log slot out of range");
        return slot == 0 ? log : *extra_logs[slot - 1];
    }

    /** Invoke @p fn on every slot's UndoLog, slot order. */
    template <typename Fn>
    void
    forEachLog(Fn &&fn)
    {
        fn(log);
        for (auto &l : extra_logs)
            fn(*l);
    }

    /** True if any slot has a live (uncommitted) transaction. */
    bool
    anyLogActive() const
    {
        if (log.active())
            return true;
        for (const auto &l : extra_logs)
            if (l->active())
                return true;
        return false;
    }

  private:
    void
    makeExtraLogs()
    {
        for (uint32_t s = 1; s < UndoLog::slotCount(pool.header()); ++s)
            extra_logs.push_back(std::make_unique<UndoLog>(pool, alloc, s));
    }

    /** Scrub before the allocator ever reads a (possibly corrupt) heap. */
    static Pool &
    scrubbed(Pool &p, ScrubStats &st)
    {
        st = scrubPool(p);
        return p;
    }
};

/** Registry of pools for one simulated process. */
class PoolRegistry
{
  public:
    explicit PoolRegistry(uint64_t aslr_seed = 1) : space_(aslr_seed) {}

    /**
     * Create a pool named @p name of @p size total bytes, map it, and
     * return it. Fails fatally if the name already exists.
     * @param log_slots Undo-log slots (one per worker thread; 1 = the
     *        classic single-log layout).
     */
    OpenPool &create(const std::string &name, uint64_t size,
                     uint32_t log_size = Pool::kDefaultLogSize,
                     uint32_t log_slots = 1);

    /**
     * Reopen a previously created (and closed) pool by name, running
     * recovery. Fails fatally if the name is unknown or already open.
     */
    OpenPool &open(const std::string &name);

    /** Close a pool: unmap it and keep its durable image on "disk". */
    void close(uint32_t pool_id);

    /** Look up an open pool by id; nullptr if not open. */
    OpenPool *find(uint32_t pool_id);
    const OpenPool *find(uint32_t pool_id) const;

    /** Look up an open pool by id; fatal if not open. */
    OpenPool &get(uint32_t pool_id);

    /**
     * Write a pool's durable image to @p path (the pool may be open or
     * closed). The format is the on-media pool layout itself, so the
     * file can be inspected offline (tools/pool_inspect) and imported
     * into another registry or process run.
     */
    void exportPool(const std::string &name, const std::string &path);

    /**
     * Load a pool image from @p path onto this registry's "disk" under
     * @p name; open it with open(name) afterwards (which runs
     * recovery). Fatal if the name already exists or the image is not
     * a valid pool.
     */
    void importPool(const std::string &name, const std::string &path);

    /** Simulate a machine-wide power failure across all open pools. */
    void crashAll();

    /**
     * Run recovery on every open pool (after crashAll): scrub the
     * durable image for media faults (repair or throw MediaError),
     * rescan the allocator, then replay the undo log.
     */
    void recoverAll();

    /** Merged scrub results of the most recent recoverAll(). */
    const ScrubStats &lastScrubStats() const { return lastScrub_; }

    /** Process-wide checksum work counters (shared by all pools). */
    const ChecksumCounters &checksumCounters() const { return counters_; }

    /**
     * Install @p hook (may be nullptr to remove) on the durability path
     * of every open pool and of every pool created or opened later.
     * Not owned; the hook must outlive the registry or be removed.
     */
    void setDurabilityHook(DurabilityHook *hook);

    /**
     * Switch the durability policy (Eager CLWB write-back vs Strict
     * fence-retired staging) of every open pool and of every pool
     * created or opened later. The crash-point explorer uses Strict to
     * generate fence-drain batches; everything else defaults to Eager.
     */
    void setDurabilityPolicy(DurabilityPolicy policy);
    DurabilityPolicy durabilityPolicy() const { return policy_; }

    size_t openCount() const { return open_.size(); }
    AddressSpace &addressSpace() { return space_; }

    /** Ids of all currently open pools (sorted). */
    std::vector<uint32_t> openIds() const;

  private:
    AddressSpace space_;
    uint32_t nextId_ = 1;
    ScrubStats lastScrub_{};      ///< merged over the last recoverAll
    ChecksumCounters counters_{}; ///< shared by every pool we open
    DurabilityHook *hook_ = nullptr; ///< installed on every pool
    DurabilityPolicy policy_ = DurabilityPolicy::Eager;
    std::unordered_map<uint32_t, std::unique_ptr<OpenPool>> open_;
    std::unordered_map<std::string, uint32_t> idByName_;
    std::unordered_map<std::string, std::vector<uint8_t>> disk_;
};

} // namespace poat

#endif // POAT_PMEM_REGISTRY_H
