#include "pmem/registry.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace poat {

OpenPool &
PoolRegistry::create(const std::string &name, uint64_t size,
                     uint32_t log_size, uint32_t log_slots)
{
    if (idByName_.count(name))
        POAT_FATAL("pool_create: name already exists");
    const uint32_t id = nextId_++;
    auto op = std::make_unique<OpenPool>(name, id, size, log_size,
                                         log_slots);
    op->pool.setVbase(space_.mapRandom(op->pool.size()));
    op->pool.setDurabilityHook(hook_);
    op->pool.setDurabilityPolicy(policy_);
    op->pool.setChecksumCounters(&counters_);
    idByName_[name] = id;
    auto &ref = *op;
    open_[id] = std::move(op);
    return ref;
}

OpenPool &
PoolRegistry::open(const std::string &name)
{
    auto it = idByName_.find(name);
    if (it == idByName_.end())
        POAT_FATAL("pool_open: unknown pool name");
    const uint32_t id = it->second;
    if (open_.count(id))
        POAT_FATAL("pool_open: pool is already open");
    auto disk_it = disk_.find(name);
    POAT_ASSERT(disk_it != disk_.end(), "pool known but image missing");

    auto op = std::make_unique<OpenPool>(name, id, disk_it->second);
    op->pool.setVbase(space_.mapRandom(op->pool.size()));
    op->pool.setDurabilityHook(hook_);
    op->pool.setDurabilityPolicy(policy_);
    op->pool.setChecksumCounters(&counters_);
    lastScrub_ = op->open_scrub;
    op->forEachLog([](UndoLog &log) { log.recover(); });
    disk_.erase(disk_it);
    auto &ref = *op;
    open_[id] = std::move(op);
    return ref;
}

void
PoolRegistry::close(uint32_t pool_id)
{
    auto it = open_.find(pool_id);
    if (it == open_.end())
        POAT_FATAL("pool_close: pool is not open");
    OpenPool &op = *it->second;
    POAT_ASSERT(!op.anyLogActive(), "pool_close with a live transaction");
    // Close semantics mirror closing a file: dirty cache lines are
    // written back before the mapping goes away.
    disk_[op.pool.name()] = [&] {
        // Flush everything still dirty, then take the durable image.
        Pool &p = op.pool;
        for (uint64_t off = 0; off < p.size(); off += kLineSize)
            p.clwb(static_cast<uint32_t>(off));
        p.fence();
        return p.durableImage();
    }();
    space_.unmap(op.pool.vbase());
    open_.erase(it);
}

OpenPool *
PoolRegistry::find(uint32_t pool_id)
{
    auto it = open_.find(pool_id);
    return it == open_.end() ? nullptr : it->second.get();
}

const OpenPool *
PoolRegistry::find(uint32_t pool_id) const
{
    auto it = open_.find(pool_id);
    return it == open_.end() ? nullptr : it->second.get();
}

OpenPool &
PoolRegistry::get(uint32_t pool_id)
{
    OpenPool *op = find(pool_id);
    if (!op)
        POAT_FATAL("access to a pool that is not open");
    return *op;
}

void
PoolRegistry::exportPool(const std::string &name, const std::string &path)
{
    const std::vector<uint8_t> *image = nullptr;
    auto id_it = idByName_.find(name);
    if (id_it != idByName_.end() && open_.count(id_it->second)) {
        image = &open_.at(id_it->second)->pool.durableView();
    } else if (auto it = disk_.find(name); it != disk_.end()) {
        image = &it->second;
    } else {
        POAT_FATAL("exportPool: unknown pool name");
    }

    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        POAT_FATAL("exportPool: cannot open output file");
    const size_t written = std::fwrite(image->data(), 1, image->size(), f);
    std::fclose(f);
    if (written != image->size())
        POAT_FATAL("exportPool: short write");
}

void
PoolRegistry::importPool(const std::string &name, const std::string &path)
{
    if (idByName_.count(name))
        POAT_FATAL("importPool: name already exists");

    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        POAT_FATAL("importPool: cannot open input file");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (size < static_cast<long>(sizeof(PoolHeader))) {
        std::fclose(f);
        POAT_FATAL("importPool: file too small to be a pool image");
    }
    std::vector<uint8_t> image(static_cast<size_t>(size));
    const size_t got = std::fread(image.data(), 1, image.size(), f);
    std::fclose(f);
    if (got != image.size())
        POAT_FATAL("importPool: short read");

    PoolHeader h{};
    std::memcpy(&h, image.data(), sizeof(h));
    if (h.magic != PoolHeader::kMagic || h.pool_size != image.size())
        POAT_FATAL("importPool: not a valid pool image");

    // Assign a fresh system-wide id on import: the image may come from
    // a different process whose ids collide with ours. ObjectIDs inside
    // the pool are offsets relative to *its own* id, which external
    // references must re-derive anyway (same contract as NVML pools
    // moved between systems).
    idByName_[name] = nextId_++;
    disk_[name] = std::move(image);
}

void
PoolRegistry::crashAll()
{
    // Pool-id order so machine-wide crash and recovery emit their
    // durability events in a reproducible sequence (the crash-point
    // explorer indexes events by position in this stream).
    for (uint32_t id : openIds()) {
        OpenPool &op = *open_.at(id);
        op.pool.crash();
        // No allocator rescan here: the post-crash image may carry
        // media faults, and only recoverAll's scrub pass may read it.
        op.forEachLog([](UndoLog &log) { log.markCrashed(); });
    }
}

void
PoolRegistry::recoverAll()
{
    lastScrub_ = ScrubStats{};
    for (uint32_t id : openIds()) {
        OpenPool &op = *open_.at(id);
        // Order matters: scrub repairs (or diagnoses) media faults
        // first, the allocator rescan then trusts every block header,
        // and undo replay finally trusts the log entries.
        lastScrub_.merge(scrubPool(op.pool));
        op.alloc.rescan();
        // Each slot recovers independently: a crash can freeze several
        // concurrent transactions mid-flight, some active (undo), some
        // committing (redo of deferred frees), in the same pool.
        op.forEachLog([](UndoLog &log) { log.recover(); });
    }
}

void
PoolRegistry::setDurabilityHook(DurabilityHook *hook)
{
    hook_ = hook;
    for (auto &kv : open_)
        kv.second->pool.setDurabilityHook(hook);
}

void
PoolRegistry::setDurabilityPolicy(DurabilityPolicy policy)
{
    policy_ = policy;
    for (auto &kv : open_)
        kv.second->pool.setDurabilityPolicy(policy);
}

std::vector<uint32_t>
PoolRegistry::openIds() const
{
    std::vector<uint32_t> ids;
    ids.reserve(open_.size());
    for (const auto &kv : open_)
        ids.push_back(kv.first);
    std::sort(ids.begin(), ids.end());
    return ids;
}

} // namespace poat
