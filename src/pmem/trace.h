/**
 * @file
 * Dynamic-instruction trace interface: poat's substitute for the paper's
 * Pin front-end.
 *
 * Workloads and the pmem library execute natively (real data structures,
 * real allocator, real undo log) and report each dynamic instruction to a
 * TraceSink as it happens. A timing model (sim::Machine) implements the
 * sink and simulates the stream online; a NullTraceSink lets the library
 * run standalone (examples, functional tests) at full host speed.
 *
 * Dependence model. Load-like events (load, nvLoad) return a nonzero
 * *value tag* identifying the produced value. Any later event whose
 * address (loads/stores) or first input (alu) is computed from that
 * value passes the tag as its @p dep argument; kNoDep means the operand
 * is ready at dispatch. This is enough to reconstruct the critical paths
 * the paper's analysis relies on — pointer-chasing chains and
 * translation-before-use ordering — without a full register-renaming
 * front end.
 */
#ifndef POAT_PMEM_TRACE_H
#define POAT_PMEM_TRACE_H

#include <cstdint>

#include "pmem/oid.h"

namespace poat {

/** Dependence tag meaning "no producer; ready at dispatch". */
inline constexpr uint64_t kNoDep = 0;

/**
 * Receiver of the dynamic instruction stream.
 *
 * Every virtual method has a benign default so sinks only override what
 * they model. `pc` parameters are synthetic call-site identifiers used
 * to index the branch predictor; they need only be stable per static
 * branch site.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /**
     * @p count generic single-cycle ALU instructions; the first consumes
     * the value tagged @p dep (if nonzero), the rest chain.
     */
    virtual void alu(uint32_t count, uint64_t dep = kNoDep)
    {
        (void)count;
        (void)dep;
    }

    /** A conditional branch that resolved @p taken, at site @p pc. */
    virtual void branch(bool taken, uint64_t pc = 0, uint64_t dep = kNoDep)
    {
        (void)taken;
        (void)pc;
        (void)dep;
    }

    /**
     * A regular load from simulated virtual address @p vaddr whose
     * address was computed from the values tagged @p dep and @p dep2.
     * @return the value tag of the loaded value (nonzero).
     */
    virtual uint64_t load(uint64_t vaddr, uint64_t dep = kNoDep,
                          uint64_t dep2 = kNoDep)
    {
        (void)vaddr;
        (void)dep;
        (void)dep2;
        return ++fallbackTag_;
    }

    /** A regular store to @p vaddr (address produced by @p dep). */
    virtual void store(uint64_t vaddr, uint64_t dep = kNoDep)
    {
        (void)vaddr;
        (void)dep;
    }

    /**
     * An nvld: load through an ObjectID, translated in hardware.
     * @return the value tag of the loaded value (nonzero).
     */
    virtual uint64_t nvLoad(ObjectID oid, uint64_t dep = kNoDep,
                            uint64_t dep2 = kNoDep)
    {
        (void)oid;
        (void)dep;
        (void)dep2;
        return ++fallbackTag_;
    }

    /** An nvst: store through an ObjectID, translated in hardware. */
    virtual void nvStore(ObjectID oid, uint64_t dep = kNoDep)
    {
        (void)oid;
        (void)dep;
    }

    /** CLWB of the cache line containing virtual address @p vaddr. */
    virtual void clwb(uint64_t vaddr) { (void)vaddr; }

    /** CLWB addressed via ObjectID (OPT-mode persist path). */
    virtual void nvClwb(ObjectID oid) { (void)oid; }

    /** SFENCE: orders stores and retires pending CLWBs. */
    virtual void fence() {}

    /**
     * System event: pool @p pool_id was mapped at virtual base @p vbase
     * with @p size bytes. The OS updates the process's POT here (paper
     * section 3.3).
     */
    virtual void poolMapped(uint32_t pool_id, uint64_t vbase, uint64_t size)
    {
        (void)pool_id;
        (void)vbase;
        (void)size;
    }

    /** System event: pool @p pool_id was unmapped (pool_close). */
    virtual void poolUnmapped(uint32_t pool_id) { (void)pool_id; }

    /**
     * Scheduling event: subsequent instructions execute on simulated
     * core @p core (deterministic multi-core interleaving). Sinks that
     * model one core ignore it; sinks that wrap another sink must
     * forward it so replays interleave identically. Never emitted by
     * single-threaded runs, which keeps their traces and stats
     * byte-identical to the pre-multi-core format.
     */
    virtual void coreSwitch(uint32_t core) { (void)core; }

    /**
     * Region markers bracketing the software translator's emitted
     * instructions (SoftwareTranslator::translate). Timing sinks use
     * them to charge every cycle of the enclosed instructions to the
     * sw_translate CPI component — the cost the paper's hardware
     * removes (Table 2, Figure 12). Regions may nest; sinks that wrap
     * another sink must forward both markers (the trace recorder
     * persists them so replays attribute identically).
     */
    virtual void swTranslateBegin() {}

    /** End of a software-translation region (see swTranslateBegin). */
    virtual void swTranslateEnd() {}

    /**
     * Transaction-span markers (observability, not timing): a
     * transaction opened on pool @p pool_id while the workload op
     * interned as @p op (0 = untagged; see opName) was running. Spans
     * carry no instructions and no cycles — sinks that do not profile
     * transactions ignore them, and sinks that wrap another sink must
     * forward all four so replays profile identically.
     */
    virtual void txBegin(uint32_t pool_id, uint32_t op)
    {
        (void)pool_id;
        (void)op;
    }

    /** The transaction on pool @p pool_id committed. */
    virtual void txCommit(uint32_t pool_id) { (void)pool_id; }

    /** The transaction on pool @p pool_id rolled back. */
    virtual void txAbort(uint32_t pool_id) { (void)pool_id; }

    /**
     * Interning announcement: workload-op id @p op means @p name from
     * here on. Emitted once per distinct name, before the first txBegin
     * that carries the id.
     */
    virtual void opName(uint32_t op, const char *name)
    {
        (void)op;
        (void)name;
    }

    /**
     * The current worker switched to the workload op interned as @p op
     * (observability, not timing; see opName). Contention profilers use
     * it to attribute lock waits to operations; every other sink may
     * ignore it. Wrapping sinks must forward it.
     */
    virtual void opSet(uint32_t op) { (void)op; }

    /// @name Concurrency observability events
    ///
    /// Emitted by the concurrent engine stack (lock manager, group
    /// commit, worker lifecycle). Pure observers: they carry no
    /// instructions and no cycles, so timing and stats are bit-identical
    /// whether a sink models them or not. Never emitted by
    /// single-threaded sequential runs. Wrapping sinks (the trace
    /// recorder) must forward all of them so replays profile
    /// identically.
    /// @{

    /**
     * Worker @p worker started blocking on lock @p key in mode @p mode
     * (0 = shared, 1 = exclusive). @p edges is the number of waits-for
     * edges the deadlock detector saw for this wait.
     */
    virtual void lockWait(uint32_t worker, uint64_t key, uint8_t mode,
                          uint32_t edges)
    {
        (void)worker;
        (void)key;
        (void)mode;
        (void)edges;
    }

    /** Worker @p worker was granted lock @p key in mode @p mode. */
    virtual void lockAcquired(uint32_t worker, uint64_t key, uint8_t mode)
    {
        (void)worker;
        (void)key;
        (void)mode;
    }

    /** Worker @p worker released lock @p key. */
    virtual void lockReleased(uint32_t worker, uint64_t key)
    {
        (void)worker;
        (void)key;
    }

    /**
     * Worker @p worker was chosen as the deadlock victim while
     * requesting lock @p key (a DeadlockAbort is about to unwind it).
     */
    virtual void lockDeadlock(uint32_t worker, uint64_t key)
    {
        (void)worker;
        (void)key;
    }

    /** Worker @p worker finished its engine body (no more work). */
    virtual void workerDone(uint32_t worker) { (void)worker; }

    /** Worker @p worker's transaction joined the open commit window. */
    virtual void commitJoin(uint32_t worker) { (void)worker; }

    /**
     * The commit window closed with @p members enrolled transactions,
     * eliding @p elided commit fences into the one emitted.
     */
    virtual void commitBatch(uint32_t members, uint32_t elided)
    {
        (void)members;
        (void)elided;
    }
    /// @}

  private:
    uint64_t fallbackTag_ = 0;
};

/** Sink that ignores everything: native-speed library execution. */
class NullTraceSink : public TraceSink
{
};

/**
 * Sink that counts dynamic instructions but models no timing. Used by
 * the Table 2 experiment and by tests that pin down the exact
 * instruction expansion of library operations.
 */
class CountingTraceSink : public TraceSink
{
  public:
    void alu(uint32_t count, uint64_t) override { instructions += count; }

    void
    branch(bool, uint64_t, uint64_t) override
    {
        ++instructions;
        ++branches;
    }

    uint64_t
    load(uint64_t, uint64_t, uint64_t) override
    {
        ++instructions;
        return ++loads;
    }

    void store(uint64_t, uint64_t) override { ++instructions; ++stores; }

    uint64_t
    nvLoad(ObjectID, uint64_t, uint64_t) override
    {
        ++instructions;
        return ++nvLoads;
    }

    void nvStore(ObjectID, uint64_t) override { ++instructions; ++nvStores; }
    void clwb(uint64_t) override { ++instructions; ++clwbs; }
    void nvClwb(ObjectID) override { ++instructions; ++clwbs; }
    void fence() override { ++instructions; ++fences; }

    void
    reset()
    {
        instructions = branches = loads = stores = 0;
        nvLoads = nvStores = clwbs = fences = 0;
    }

    uint64_t instructions = 0;
    uint64_t branches = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t nvLoads = 0;
    uint64_t nvStores = 0;
    uint64_t clwbs = 0;
    uint64_t fences = 0;
};

} // namespace poat

#endif // POAT_PMEM_TRACE_H
