#include "pmem/pool.h"

#include <algorithm>

namespace poat {

Pool::Pool(std::string name, uint32_t pool_id, uint64_t size,
           uint32_t log_size, uint32_t log_slots)
    : name_(std::move(name)), id_(pool_id)
{
    POAT_ASSERT(pool_id != 0, "pool id 0 is reserved for OID_NULL");
    POAT_ASSERT(log_slots >= 1 && log_slots <= PoolHeader::kMaxLogSlots,
                "log slot count out of range");
    // Leave room for the header, at least a page of heap, and the log.
    size = std::max<uint64_t>(size, kHeaderSize + 4096 + log_size);
    size = std::min<uint64_t>(size, 1ull << 32);
    size = alignUp(size, kLineSize);
    POAT_ASSERT(log_size + kHeaderSize + kLineSize <= size,
                "log region does not fit in pool");

    data_.assign(size, 0);

    PoolHeader h{};
    h.magic = PoolHeader::kMagic;
    h.version = PoolHeader::kVersion;
    h.pool_id = pool_id;
    h.pool_size = size;
    h.root_off = 0;
    h.root_size = 0;
    h.heap_off = kHeaderSize;
    h.log_size = log_size;
    h.log_off = static_cast<uint32_t>(size - log_size);
    h.heap_size = h.log_off - h.heap_off;
    h.pad = PoolHeader::encodeLogSlots(log_slots);
    storeHeader(h);

    // A fresh pool is fully durable from the start, like a newly created
    // and synced file.
    dirty_.clear();
    durable_ = data_;
}

Pool::Pool(std::string name, uint32_t pool_id,
           std::vector<uint8_t> durable_image)
    : name_(std::move(name)), id_(pool_id), data_(std::move(durable_image))
{
    POAT_ASSERT(data_.size() >= kHeaderSize, "pool image too small");
    PoolHeader primary{};
    std::memcpy(&primary, data_.data(), sizeof(primary));
    if (primary.valid(data_.size())) {
        cachedHeader_ = primary;
    } else {
        // Corrupt primary superblock: repair from the mirror, or fail
        // with a precise diagnostic if both copies are gone. The scrub
        // pass re-checks (and re-syncs) both copies on recovery.
        PoolHeader mirror{};
        std::memcpy(&mirror, data_.data() + PoolHeader::kMirrorOff,
                    sizeof(mirror));
        checksumCounters().verifies += 2;
        if (!mirror.valid(data_.size())) {
            throw MediaError(name_, 0, MediaStructure::Superblock,
                             "both superblock copies are corrupt");
        }
        std::memcpy(data_.data(), &mirror, sizeof(mirror));
        cachedHeader_ = mirror;
    }
    durable_ = data_;
}

void
Pool::storeHeader(PoolHeader h)
{
    h.seal();
    checksumCounters().superblock_updates += 1;
    checksumCounters().bytes_summed += offsetof(PoolHeader, crc);
    writeRaw(0, &h, sizeof(h));
    writeRaw(PoolHeader::kMirrorOff, &h, sizeof(h));
    cachedHeader_ = h;
}

void
Pool::persistHeader()
{
    persist(0, sizeof(PoolHeader));
    persist(PoolHeader::kMirrorOff, sizeof(PoolHeader));
}

void
Pool::corruptDurable(uint32_t off, const void *src, size_t n)
{
    POAT_ASSERT(static_cast<uint64_t>(off) + n <= durable_.size(),
                "media fault out of range");
    std::memcpy(durable_.data() + off, src, n);
}

void
Pool::writeRaw(uint32_t off, const void *src, size_t n)
{
    POAT_ASSERT(static_cast<uint64_t>(off) + n <= data_.size(),
                "pool write out of range");
    std::memcpy(data_.data() + off, src, n);
    const uint32_t first = off / kLineSize;
    const uint32_t last = (off + static_cast<uint32_t>(n) - 1) / kLineSize;
    for (uint32_t line = first; line <= last; ++line) {
        dirty_.insert(line);
        staged_.erase(line); // a new store re-dirties a staged line
    }
}

void
Pool::readRaw(uint32_t off, void *dst, size_t n) const
{
    POAT_ASSERT(static_cast<uint64_t>(off) + n <= data_.size(),
                "pool read out of range");
    std::memcpy(dst, data_.data() + off, n);
}

void
Pool::writeBackLine(uint32_t line, WriteBackCause cause)
{
    // The hook sees (and may veto or tear) every durable transition.
    // Volatile bookkeeping in the callers proceeds either way so that
    // execution after a suppressed write-back matches an uninjected run
    // exactly.
    uint8_t mask = DurabilityHook::kFullLineMask;
    if (hook_ != nullptr) {
        mask = hook_->onWriteBackWords(*this, line, cause);
        if (mask == 0)
            return;
    }
    const uint64_t base = static_cast<uint64_t>(line) * kLineSize;
    const uint64_t n = std::min<uint64_t>(kLineSize, data_.size() - base);
    if (mask == DurabilityHook::kFullLineMask) {
        std::memcpy(durable_.data() + base, data_.data() + base, n);
        return;
    }
    // Torn write-back: only the masked-in 8-byte words reach media; the
    // rest of the durable line keeps its pre-crash contents.
    static_assert(kLineSize == 8 * sizeof(uint64_t));
    for (uint32_t w = 0; w < 8; ++w) {
        if ((mask & (1u << w)) == 0)
            continue;
        const uint64_t off = base + w * sizeof(uint64_t);
        if (off >= base + n)
            break;
        const uint64_t wn = std::min<uint64_t>(sizeof(uint64_t),
                                               base + n - off);
        std::memcpy(durable_.data() + off, data_.data() + off, wn);
    }
}

void
Pool::clwb(uint32_t off)
{
    const uint32_t line = off / kLineSize;
    if (!dirty_.count(line))
        return; // clean line: CLWB is a no-op
    if (policy_ == DurabilityPolicy::Eager) {
        writeBackLine(line, WriteBackCause::Clwb);
        dirty_.erase(line);
    } else {
        staged_.insert(line);
    }
}

void
Pool::fence()
{
    if (staged_.empty())
        return;
    // Drain in sorted line order: the hash set's iteration order is
    // build-local, and the crash-point explorer indexes drain events by
    // position, so the order must be a deterministic function of the
    // staged set. The hook sees the whole batch before the first
    // write-back (a mid-drain power failure persists any subset).
    const std::vector<uint32_t> lines = stagedLines();
    if (hook_ != nullptr)
        hook_->onFenceDrainBegin(*this, lines);
    for (uint32_t line : lines) {
        writeBackLine(line, WriteBackCause::Fence);
        dirty_.erase(line);
    }
    staged_.clear();
}

std::vector<uint32_t>
Pool::stagedLines() const
{
    std::vector<uint32_t> lines(staged_.begin(), staged_.end());
    std::sort(lines.begin(), lines.end());
    return lines;
}

void
Pool::persist(uint32_t off, size_t n)
{
    if (n == 0)
        return;
    const uint32_t first = off / kLineSize;
    const uint32_t last = (off + static_cast<uint32_t>(n) - 1) / kLineSize;
    for (uint32_t line = first; line <= last; ++line)
        clwb(line * kLineSize);
    fence();
}

uint32_t
Pool::lineSpan(uint32_t off, size_t n)
{
    if (n == 0)
        return 0;
    const uint32_t first = off / kLineSize;
    const uint32_t last = (off + static_cast<uint32_t>(n) - 1) / kLineSize;
    return last - first + 1;
}

void
Pool::evictRandomLines(Rng &rng, uint64_t num, uint64_t den)
{
    std::vector<uint32_t> evicted;
    for (uint32_t line : dirty_) {
        if (staged_.count(line))
            continue;
        if (rng.chance(num, den)) {
            writeBackLine(line, WriteBackCause::Evict);
            evicted.push_back(line);
        }
    }
    for (uint32_t line : evicted)
        dirty_.erase(line);
}

void
Pool::crash()
{
    data_ = durable_;
    dirty_.clear();
    staged_.clear();
    refreshHeader();
}

void
Pool::refreshHeader()
{
    std::memcpy(&cachedHeader_, data_.data(), sizeof(cachedHeader_));
}

} // namespace poat
