#include "pmem/alloc.h"

#include "common/bits.h"

namespace poat {

PoolAllocator::PoolAllocator(Pool &pool)
    : pool_(pool),
      heapOff_(pool.header().heap_off),
      heapSize_(pool.header().heap_size)
{
    BlockHeader first{};
    pool_.readRaw(heapOff_, &first, sizeof(first));
    if (first.size == 0 && first.prev_size == 0 && first.flags == 0 &&
        first.crc == 0) {
        // Fresh heap: one giant free block spanning the whole region.
        BlockHeader h{};
        h.size = heapSize_;
        h.prev_size = 0;
        h.flags = 0;
        writeHeader(heapOff_, h);
        pool_.persist(heapOff_, sizeof(h));
    }
    rebuildFreeList();
}

BlockHeader
PoolAllocator::readHeader(uint32_t block_off) const
{
    BlockHeader h{};
    pool_.readRaw(block_off, &h, sizeof(h));
    if (!h.crcValid()) {
        // Checksum-detected corruption, never UB: recovery paths scrub
        // before attaching, so reaching this means an unrepaired fault.
        throw MediaError(pool_.name(), block_off,
                         MediaStructure::BlockHeader,
                         "block header checksum mismatch");
    }
    return h;
}

void
PoolAllocator::writeHeader(uint32_t block_off, const BlockHeader &h)
{
    BlockHeader sealed = h;
    sealed.seal();
    pool_.checksumCounters().block_header_updates += 1;
    pool_.checksumCounters().bytes_summed += offsetof(BlockHeader, prev_size);
    pool_.writeRaw(block_off, &sealed, sizeof(sealed));
    touched_.push_back(block_off);
}

void
PoolAllocator::poisonHeader(uint32_t block_off)
{
    const uint8_t zeros[sizeof(BlockHeader)] = {};
    pool_.writeRaw(block_off, zeros, sizeof(zeros));
    touched_.push_back(block_off);
}

uint32_t
PoolAllocator::heapEnd() const
{
    return heapOff_ + heapSize_;
}

void
PoolAllocator::rebuildFreeList()
{
    // The scan is self-healing: a crash can leave torn *linkage* (a
    // stale prev_size, or two adjacent free blocks whose merge did not
    // reach the media) even though each block header itself is written
    // atomically at persist points. Both conditions are repaired here,
    // mirroring the recovery scan real persistent allocators perform on
    // pool open. Torn block *extents* cannot occur because a block's
    // own header is the commit point of alloc/free.
    freeList_.clear();
    uint32_t off = heapOff_;
    uint32_t prev_size = 0;
    uint32_t prev_free_off = 0; // offset of previous block if free, else 0
    while (off < heapEnd()) {
        BlockHeader h = readHeader(off);
        if (h.size < kMinBlock || off + h.size > heapEnd()) {
            throw MediaError(pool_.name(), off,
                             MediaStructure::BlockHeader,
                             "bad block extent");
        }
        if (h.prev_size != prev_size) {
            h.prev_size = prev_size;
            h.seal();
            pool_.writeRaw(off, &h, sizeof(h));
            pool_.persist(off, sizeof(h));
        }
        if (!h.allocated()) {
            if (prev_free_off != 0) {
                // Merge with the previous free block (crash-interrupted
                // coalesce) and restart the scan position there.
                BlockHeader prev = readHeader(prev_free_off);
                prev.size += h.size;
                prev.seal();
                pool_.writeRaw(prev_free_off, &prev, sizeof(prev));
                pool_.persist(prev_free_off, sizeof(prev));
                const uint8_t zeros[sizeof(BlockHeader)] = {};
                pool_.writeRaw(off, zeros, sizeof(zeros));
                pool_.persist(off, sizeof(BlockHeader));
                freeList_[prev_free_off] = prev.size;
                prev_size = prev.size;
                off = prev_free_off + prev.size;
                continue;
            }
            freeList_.emplace(off, h.size);
            prev_free_off = off;
        } else {
            prev_free_off = 0;
        }
        prev_size = h.size;
        off += h.size;
    }
    if (off != heapEnd()) {
        throw MediaError(pool_.name(), off, MediaStructure::BlockHeader,
                         "blocks overrun the heap region");
    }

    // Hygiene sweep: no crc-valid header may survive inside a free
    // extent. free() poisons absorbed headers itself, but a crash
    // between the merged-header fence and the poison fence leaves the
    // stale bytes behind; scrub's extent reconstruction could later
    // mistake them for a live block (see poisonHeader). Idempotent —
    // a clean image has nothing to poison.
    for (const auto &[free_off, free_size] : freeList_) {
        for (uint32_t p = free_off + static_cast<uint32_t>(kAlign);
             p + sizeof(BlockHeader) <= free_off + free_size;
             p += static_cast<uint32_t>(kAlign)) {
            BlockHeader stale{};
            pool_.readRaw(p, &stale, sizeof(stale));
            if (!stale.crcValid())
                continue;
            const uint8_t zeros[sizeof(BlockHeader)] = {};
            pool_.writeRaw(p, zeros, sizeof(zeros));
            pool_.persist(p, sizeof(BlockHeader));
        }
    }
}

void
PoolAllocator::persistTouched()
{
    for (uint32_t t : touched_)
        pool_.persist(t, sizeof(BlockHeader));
}

uint32_t
PoolAllocator::alloc(uint32_t size, bool persist_now)
{
    touched_.clear();
    const uint32_t need = static_cast<uint32_t>(
        alignUp(size + sizeof(BlockHeader), kAlign));

    // First fit in address order.
    for (auto it = freeList_.begin(); it != freeList_.end(); ++it) {
        const uint32_t block_off = it->first;
        const uint32_t block_size = it->second;
        if (block_size < need)
            continue;

        BlockHeader h = readHeader(block_off);
        const uint32_t remainder = block_size - need;
        freeList_.erase(it);

        if (remainder >= kMinBlock) {
            // Split: new free block follows the allocated one.
            const uint32_t rem_off = block_off + need;
            BlockHeader rem{};
            rem.size = remainder;
            rem.prev_size = need;
            rem.flags = 0;
            writeHeader(rem_off, rem);
            freeList_.emplace(rem_off, remainder);

            // The block after the remainder keeps its size but its
            // prev_size now names the remainder.
            const uint32_t next_off = block_off + block_size;
            if (next_off < heapEnd()) {
                BlockHeader next = readHeader(next_off);
                next.prev_size = remainder;
                writeHeader(next_off, next);
            }
            h.size = need;
        }
        h.flags |= BlockHeader::kAllocated;
        writeHeader(block_off, h);

        if (persist_now)
            persistTouched();
        return block_off + sizeof(BlockHeader);
    }
    return 0; // exhausted
}

void
PoolAllocator::free(uint32_t payload_off)
{
    touched_.clear();
    POAT_ASSERT(payload_off >= heapOff_ + sizeof(BlockHeader) &&
                    payload_off < heapEnd(),
                "pfree of offset outside heap");
    uint32_t block_off = payload_off - sizeof(BlockHeader);
    BlockHeader h = readHeader(block_off);
    POAT_ASSERT(h.allocated(), "double pfree");

    h.flags &= ~BlockHeader::kAllocated;

    // Coalesce with the physically next block if it is free.
    uint32_t next_off = block_off + h.size;
    uint32_t absorbed_next = 0;
    if (next_off < heapEnd()) {
        BlockHeader next = readHeader(next_off);
        if (!next.allocated()) {
            freeList_.erase(next_off);
            absorbed_next = next_off;
            h.size += next.size;
            next_off = block_off + h.size;
        }
    }

    // Coalesce with the physically previous block if it is free.
    uint32_t absorbed_self = 0;
    if (h.prev_size != 0) {
        const uint32_t prev_off = block_off - h.prev_size;
        BlockHeader prev = readHeader(prev_off);
        if (!prev.allocated()) {
            freeList_.erase(prev_off);
            prev.size += h.size;
            h = prev;
            absorbed_self = block_off;
            block_off = prev_off;
        }
    }

    writeHeader(block_off, h);
    freeList_.emplace(block_off, h.size);
    // Headers the merge absorbed die AFTER the merged header that
    // covers them is queued (see poisonHeader on the ordering).
    if (absorbed_next != 0)
        poisonHeader(absorbed_next);
    if (absorbed_self != 0)
        poisonHeader(absorbed_self);

    // The block following the merged region must name it in prev_size.
    if (next_off < heapEnd()) {
        BlockHeader next = readHeader(next_off);
        next.prev_size = h.size;
        writeHeader(next_off, next);
    }

    for (uint32_t t : touched_)
        pool_.persist(t, sizeof(BlockHeader));
}

uint32_t
PoolAllocator::blockPayloadSize(uint32_t payload_off) const
{
    const BlockHeader h = readHeader(payload_off - sizeof(BlockHeader));
    return h.size - sizeof(BlockHeader);
}

bool
PoolAllocator::isAllocated(uint32_t payload_off) const
{
    if (payload_off < heapOff_ + sizeof(BlockHeader) ||
        payload_off >= heapEnd()) {
        return false;
    }
    const uint32_t block_off =
        payload_off - static_cast<uint32_t>(sizeof(BlockHeader));
    BlockHeader h{};
    pool_.readRaw(block_off, &h, sizeof(h));
    if (!h.crcValid() || !h.allocated())
        return false;
    // A header can read as valid-and-allocated yet be stale: freeing a
    // block that coalesces into its *previous* neighbour rewrites only
    // the surviving merged header, leaving the absorbed block's old
    // bytes inside the free extent. The free list is the authority on
    // free extents, so an offset one covers is not a live block —
    // recovery depends on this when it asks whether a logged alloc or
    // free already took effect before re-applying it.
    auto it = freeList_.upper_bound(block_off);
    if (it != freeList_.begin()) {
        --it;
        if (block_off < it->first + it->second)
            return false;
    }
    return true;
}

uint64_t
PoolAllocator::freeBytes() const
{
    uint64_t total = 0;
    for (const auto &kv : freeList_)
        total += kv.second;
    return total;
}

uint64_t
PoolAllocator::usedBytes() const
{
    return heapSize_ - freeBytes();
}

bool
PoolAllocator::validate() const
{
    uint32_t off = heapOff_;
    uint32_t prev_size = 0;
    bool prev_free = false;
    while (off < heapEnd()) {
        BlockHeader h{};
        pool_.readRaw(off, &h, sizeof(h));
        if (!h.crcValid())
            return false;
        if (h.prev_size != prev_size)
            return false;
        if (h.size < kMinBlock)
            return false;
        if (off + h.size > heapEnd())
            return false;
        const bool is_free = !h.allocated();
        if (is_free && prev_free)
            return false; // adjacent free blocks must have coalesced
        if (is_free != (freeList_.count(off) != 0))
            return false; // volatile free list out of sync
        prev_free = is_free;
        prev_size = h.size;
        off += h.size;
    }
    return off == heapEnd();
}

std::vector<uint32_t>
PoolAllocator::allocatedPayloads() const
{
    std::vector<uint32_t> out;
    uint32_t off = heapOff_;
    while (off < heapEnd()) {
        const BlockHeader h = readHeader(off);
        if (h.allocated())
            out.push_back(off + static_cast<uint32_t>(sizeof(BlockHeader)));
        off += h.size;
    }
    return out;
}

} // namespace poat
